module dais

go 1.22
