// Package dais_test holds the testing.B counterparts of the evaluation
// suite E1–E11 (see DESIGN.md §4 and EXPERIMENTS.md). cmd/daisbench
// prints the full parameter-sweep tables; these benchmarks expose the
// same code paths to `go test -bench` so regressions are visible in
// standard tooling. One benchmark (family) per experiment.
package dais_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dais/internal/bench"
	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
)

// E1/E2 — direct vs indirect access and third-party delivery (Fig. 1,
// Fig. 5): one sub-benchmark per result size and pattern.
func BenchmarkE1DirectVsIndirect(b *testing.B) {
	f := bench.MustSQLFixture(bench.FixtureOption{Rows: 1000, Concurrent: true, WSRF: true})
	defer f.Close()
	for _, n := range []int{1, 10, 100, 1000} {
		query := fmt.Sprintf(`SELECT id, payload, num FROM data ORDER BY id LIMIT %d`, n)
		b.Run(fmt.Sprintf("direct/rows=%d", n), func(b *testing.B) {
			c := client.New(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.SQLExecute(context.Background(), f.Ref, query, nil, ""); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.BytesReceived())/float64(b.N), "wire-B/op")
		})
		b.Run(fmt.Sprintf("indirect/rows=%d", n), func(b *testing.B) {
			c := client.New(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				respRef, err := c.SQLExecuteFactory(context.Background(), f.Ref, query, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				rowsetRef, err := c.SQLRowsetFactory(context.Background(), respRef, "", 0, nil)
				if err != nil {
					b.Fatal(err)
				}
				reader := client.New(nil)
				if _, err := reader.GetTuplesSet(context.Background(), rowsetRef, 1, n+1); err != nil {
					b.Fatal(err)
				}
				c.DestroyDataResource(context.Background(), rowsetRef) //nolint:errcheck
				c.DestroyDataResource(context.Background(), respRef)   //nolint:errcheck
			}
			b.ReportMetric(float64(c.BytesReceived())/float64(b.N), "consumer1-wire-B/op")
		})
	}
}

// BenchmarkE2ThirdPartyDelivery measures only consumer 1's side of the
// hand-off: relay (pull everything) vs EPR-only factory chain.
func BenchmarkE2ThirdPartyDelivery(b *testing.B) {
	f := bench.MustSQLFixture(bench.FixtureOption{Rows: 1000, Concurrent: true, WSRF: true})
	defer f.Close()
	query := `SELECT id, payload, num FROM data ORDER BY id LIMIT 1000`
	b.Run("relay", func(b *testing.B) {
		c := client.New(nil)
		for i := 0; i < b.N; i++ {
			if _, err := c.SQLExecute(context.Background(), f.Ref, query, nil, ""); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(c.BytesReceived())/float64(b.N), "consumer1-wire-B/op")
	})
	b.Run("epr-handoff", func(b *testing.B) {
		c := client.New(nil)
		for i := 0; i < b.N; i++ {
			respRef, err := c.SQLExecuteFactory(context.Background(), f.Ref, query, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			rowsetRef, err := c.SQLRowsetFactory(context.Background(), respRef, "", 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			c.DestroyDataResource(context.Background(), rowsetRef) //nolint:errcheck
			c.DestroyDataResource(context.Background(), respRef)   //nolint:errcheck
		}
		b.ReportMetric(float64(c.BytesReceived())/float64(b.N), "consumer1-wire-B/op")
	})
}

// E3 — WSRF fine-grained property access vs whole property document.
func BenchmarkE3PropertyGranularity(b *testing.B) {
	for _, tables := range []int{0, 50} {
		f := bench.MustSQLFixture(bench.FixtureOption{Rows: 10, Concurrent: true, WSRF: true, ExtraTables: tables})
		b.Run(fmt.Sprintf("wholedoc/tables=%d", tables), func(b *testing.B) {
			c := client.New(nil)
			for i := 0; i < b.N; i++ {
				if _, err := c.GetPropertyDocument(context.Background(), f.Ref); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.BytesReceived())/float64(b.N), "wire-B/op")
		})
		b.Run(fmt.Sprintf("singleprop/tables=%d", tables), func(b *testing.B) {
			c := client.New(nil)
			for i := 0; i < b.N; i++ {
				if _, err := c.GetResourceProperty(context.Background(), f.Ref, "Readable"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.BytesReceived())/float64(b.N), "wire-B/op")
		})
		f.Close()
	}
}

// E4 — GetTuples paging with different page sizes over a 2000-row
// rowset resource.
func BenchmarkE4TuplePaging(b *testing.B) {
	const totalRows = 2000
	f := bench.MustSQLFixture(bench.FixtureOption{Rows: totalRows, Concurrent: true, WSRF: true})
	defer f.Close()
	c := client.New(nil)
	respRef, err := c.SQLExecuteFactory(context.Background(), f.Ref, `SELECT id, payload, num FROM data ORDER BY id`, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	rowsetRef, err := c.SQLRowsetFactory(context.Background(), respRef, "", 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, page := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("page=%d", page), func(b *testing.B) {
			pc := client.New(nil)
			for i := 0; i < b.N; i++ {
				got := 0
				for pos := 1; ; pos += page {
					set, err := pc.GetTuplesSet(context.Background(), rowsetRef, pos, page)
					if err != nil {
						b.Fatal(err)
					}
					got += len(set.Rows)
					if len(set.Rows) < page {
						break
					}
				}
				if got != totalRows {
					b.Fatalf("paged %d rows", got)
				}
			}
			b.ReportMetric(float64(b.Elapsed())/float64(b.N)/totalRows, "ns/row")
		})
	}
}

// E5 — thin vs thick wrapper, in-process so the wrapper cost is not
// drowned in HTTP noise.
func BenchmarkE5ThinThickWrapper(b *testing.B) {
	eng := sqlengine.New("bench")
	eng.MustExec(`CREATE TABLE data (id INTEGER PRIMARY KEY, payload VARCHAR(64))`)
	for i := 0; i < 100; i++ {
		eng.MustExec(`INSERT INTO data VALUES (?, ?)`, sqlengine.NewInt(int64(i)), sqlengine.NewString("p"))
	}
	const query = `SELECT id, payload FROM data WHERE id > 10 AND id < 60 ORDER BY id DESC LIMIT 5`
	b.Run("thin", func(b *testing.B) {
		r := dair.NewSQLDataResource(eng)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.SQLExecute(context.Background(), query, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("thick", func(b *testing.B) {
		r := dair.NewSQLDataResource(eng, dair.WithWrapper(dair.ThickWrapper{}))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.SQLExecute(context.Background(), query, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E6 — ConcurrentAccess: latency of a fast probe while a simulated
// I/O-bound resource (bench.SlowWrapper) is being queried through the
// same service. The serialised service head-of-line blocks the probe.
func BenchmarkE6ConcurrentAccess(b *testing.B) {
	for _, concurrent := range []bool{true, false} {
		name := "serialized"
		if concurrent {
			name = "concurrent"
		}
		b.Run(name, func(b *testing.B) {
			rows, err := bench.RunE6([]int{1}, b.N)
			if err != nil {
				b.Fatal(err)
			}
			var per time.Duration
			if concurrent {
				per = rows[0].ShortConcurrent
			} else {
				per = rows[0].ShortSerialized
			}
			b.ReportMetric(float64(per.Nanoseconds()), "probe-ns/op")
		})
	}
}

// E7 — SOAP wrapper overhead: raw engine vs full SOAP/HTTP round trip.
func BenchmarkE7SOAPOverhead(b *testing.B) {
	f := bench.MustSQLFixture(bench.FixtureOption{Rows: 1000, Concurrent: true, WSRF: false})
	defer f.Close()
	for _, n := range []int{1, 100} {
		query := fmt.Sprintf(`SELECT id, payload, num FROM data ORDER BY id LIMIT %d`, n)
		b.Run(fmt.Sprintf("engine/rows=%d", n), func(b *testing.B) {
			sess := f.Engine.NewSession()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Execute(query); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("soap/rows=%d", n), func(b *testing.B) {
			c := client.New(nil)
			for i := 0; i < b.N; i++ {
				if _, err := c.SQLExecute(context.Background(), f.Ref, query, nil, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8 — lifetime management: explicit destroy vs soft-state sweep of a
// derived resource.
func BenchmarkE8Lifetime(b *testing.B) {
	f := bench.MustSQLFixture(bench.FixtureOption{Rows: 10, Concurrent: true, WSRF: true})
	defer f.Close()
	c := client.New(nil)
	b.Run("explicit-destroy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ref, err := c.SQLExecuteFactory(context.Background(), f.Ref, `SELECT id FROM data`, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.DestroyDataResource(context.Background(), ref); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("soft-state", func(b *testing.B) {
		past := time.Now().Add(-time.Second)
		for i := 0; i < b.N; i++ {
			ref, err := c.SQLExecuteFactory(context.Background(), f.Ref, `SELECT id FROM data`, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.SetTerminationTime(context.Background(), ref, &past); err != nil {
				b.Fatal(err)
			}
			if swept := f.Endpoint.WSRF().SweepExpired(); len(swept) != 1 {
				b.Fatalf("swept %d", len(swept))
			}
		}
	})
}

// E9 — dataset format encode/decode over a 1000-row result.
func BenchmarkE9DatasetFormats(b *testing.B) {
	set := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{
			{Name: "id", Type: sqlengine.TypeInteger},
			{Name: "payload", Type: sqlengine.TypeVarchar},
			{Name: "num", Type: sqlengine.TypeDouble},
		},
	}
	for i := 0; i < 1000; i++ {
		set.Rows = append(set.Rows, []sqlengine.Value{
			sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("row-%06d-payload", i)),
			sqlengine.NewDouble(float64(i) * 1.5),
		})
	}
	reg := rowset.NewRegistry()
	for _, uri := range reg.URIs() {
		codec, err := reg.Lookup(uri)
		if err != nil {
			b.Fatal(err)
		}
		data, err := codec.Encode(set)
		if err != nil {
			b.Fatal(err)
		}
		short := uri[len(uri)-10:]
		b.Run("encode/"+short, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Encode(set); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(data)), "payload-B")
		})
		b.Run("decode/"+short, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E10 — transaction initiation modes, in-process.
func BenchmarkE10Transactions(b *testing.B) {
	for _, mode := range []core.TransactionInitiation{
		core.TransactionNotSupported,
		core.TransactionPerMessage,
		core.TransactionConsumerControlled,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			eng := sqlengine.New("bench")
			eng.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)`)
			eng.MustExec(`INSERT INTO acct VALUES (1, 0)`)
			res := dair.NewSQLDataResource(eng, dair.WithConfiguration(core.Configuration{
				Readable: true, Writeable: true,
				TransactionInitiation: mode,
				TransactionIsolation:  sqlengine.ReadCommitted.String(),
			}))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := res.SQLExecute(context.Background(), `UPDATE acct SET bal = bal + 1`, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E11 — WS-DAIF staging (extension): relay vs select-and-stage through
// the coordinating consumer.
func BenchmarkE11FileStaging(b *testing.B) {
	for _, mode := range []string{"relay", "stage"} {
		b.Run(mode, func(b *testing.B) {
			rows, err := bench.RunE11([]int{10}, 8192)
			if err != nil {
				b.Fatal(err)
			}
			_ = rows
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := bench.RunE11([]int{10}, 8192)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "relay" {
					b.ReportMetric(float64(r[0].RelayBytes), "coordinator-B")
				} else {
					b.ReportMetric(float64(r[0].StageBytes), "coordinator-B")
				}
			}
		})
	}
}

// E13 — hot-path allocation profile: the three optimised paths
// (pooled envelope encoding, windowed GetTuples delivery, hash join)
// plus the composed SQLExecute round trip. EXPERIMENTS.md E13 records
// the before/after tables; daisbench -only E13 regenerates them and
// writes BENCH_E13.json.
func BenchmarkE13EnvelopeMarshal(b *testing.B)     { bench.E13EnvelopeMarshal(b) }
func BenchmarkE13GetTuplesPage(b *testing.B)       { bench.E13GetTuplesPage(b) }
func BenchmarkE13EquiJoin(b *testing.B)            { bench.E13EquiJoin(b) }
func BenchmarkE13SQLExecuteRoundTrip(b *testing.B) { bench.E13SQLExecuteRoundTrip(b) }

// Planner additions to E13: the same round trip with the prepared-plan
// cache disabled (cold parse+plan each exchange) and a ~1%-selective
// range predicate over an ordered index vs the unindexed twin column.
func BenchmarkE13SQLExecuteRoundTripCold(b *testing.B) { bench.E13SQLExecuteRoundTripCold(b) }
func BenchmarkE13RangeScanIndexed(b *testing.B)        { bench.E13RangeScanIndexed(b) }
func BenchmarkE13RangeScanFullScan(b *testing.B)       { bench.E13RangeScanFullScan(b) }

// E12 — telemetry overhead: the same SQLExecute round trip against a
// bare fixture (telemetry interceptors stripped on both sides) and an
// instrumented one (the default). The difference is the full cost of
// the metrics, span and byte accounting on the hot path; EXPERIMENTS.md
// E12 records the expected near-zero gap.
func BenchmarkE12TelemetryOverhead(b *testing.B) {
	query := `SELECT id, payload, num FROM data ORDER BY id LIMIT 10`
	for _, mode := range []struct {
		name string
		bare bool
	}{{"bare", true}, {"instrumented", false}} {
		b.Run(mode.name, func(b *testing.B) {
			f := bench.MustSQLFixture(bench.FixtureOption{
				Rows: 100, Concurrent: true, WSRF: true, NoTelemetry: mode.bare})
			defer f.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Client.SQLExecute(context.Background(), f.Ref, query, nil, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
