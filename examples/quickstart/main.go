// Quickstart: host a relational data resource behind a WS-DAIR data
// service, then access it as a consumer — property document, direct
// SQLExecute, and a GenericQuery — all in one process.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/service"
	"dais/internal/sqlengine"
)

func main() {
	ctx := context.Background()
	// 1. The "existing database" the DAIS service wraps.
	eng := sqlengine.New("hr")
	eng.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(64) NOT NULL, salary DOUBLE)`)
	eng.MustExec(`INSERT INTO emp VALUES (1, 'ann', 120000), (2, 'bob', 95000), (3, 'carol', 87000)`)

	// 2. Wrap it as an externally managed data resource and expose it
	//    through a data service endpoint.
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService("quickstart", core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithWSRF())
	ep.Register(res)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	svc.SetAddress("http://" + ln.Addr().String())
	go http.Serve(ln, ep) //nolint:errcheck
	fmt.Println("data service:", svc.Address())
	fmt.Println("data resource:", res.AbstractName())

	// 3. A consumer discovers and queries the resource.
	c := client.New(nil)
	names, err := c.GetResourceList(ctx, svc.Address())
	if err != nil {
		log.Fatal(err)
	}
	ref := client.Ref(svc.Address(), names[0])

	doc, err := c.GetPropertyDocument(ctx, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nproperty document highlights:")
	for _, p := range []string{"DataResourceManagement", "ConcurrentAccess", "Readable", "Writeable"} {
		fmt.Printf("  %-24s %s\n", p, doc.FindText(core.NSDAI, p))
	}

	result, err := c.SQLExecute(ctx, ref, `SELECT name, salary FROM emp WHERE salary > ? ORDER BY salary DESC`,
		[]sqlengine.Value{sqlengine.NewDouble(90000)}, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSELECT name, salary FROM emp WHERE salary > 90000:")
	for _, row := range result.Set.Rows {
		fmt.Printf("  %-8s %s\n", row[0], row[1])
	}
	fmt.Printf("SQLSTATE %s, %d row(s)\n", result.CA.SQLState, result.CA.RowsFetched)

	// 4. The same data through the model-agnostic GenericQuery.
	generic, err := c.GenericQuery(ctx, ref, dair.LanguageSQL92, `SELECT COUNT(*) FROM emp`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGenericQuery(COUNT(*)) returned a %s element\n", generic.Name.Local)
}
