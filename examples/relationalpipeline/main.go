// Relational pipeline: a faithful reproduction of the paper's Fig. 5
// use case with three data services and three consumers.
//
//	Consumer 1 --SQLExecuteFactory--> Data Service 1 (SQLAccess + SQLFactory)
//	                                   creates an SQLResponse resource on
//	Consumer 2 --SQLRowsetFactory--->  Data Service 2 (ResponseAccess + ResponseFactory)
//	                                   creates a WebRowSet resource on
//	Consumer 3 --GetTuples---------->  Data Service 3 (RowsetAccess)
//
// Consumers hand EPRs to each other — indirect third-party delivery —
// so the query result bytes never pass through Consumers 1 or 2.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/sqlengine"
)

func serve(ep *service.Endpoint) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ep.Service().SetAddress("http://" + ln.Addr().String())
	go http.Serve(ln, ep) //nolint:errcheck
	return ep.Service().Address()
}

func main() {
	ctx := context.Background()
	// The externally managed relational resource behind Data Service 1.
	eng := sqlengine.New("sensors")
	eng.MustExec(`CREATE TABLE reading (id INTEGER PRIMARY KEY, station VARCHAR(16), value DOUBLE)`)
	sess := eng.NewSession()
	for i := 1; i <= 500; i++ {
		sess.Execute(`INSERT INTO reading VALUES (?, ?, ?)`, //nolint:errcheck
			sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("st-%02d", i%7)),
			sqlengine.NewDouble(float64(i%100)))
	}
	src := dair.NewSQLDataResource(eng)

	// Three differently-shaped services, as Fig. 5 draws them.
	ds3 := service.NewEndpoint(core.NewDataService("ds3"),
		service.WithInterfaces(service.SQLRowsetAccess|service.CoreDataAccess))
	ds2 := service.NewEndpoint(core.NewDataService("ds2"),
		service.WithInterfaces(service.SQLResponseAccess|service.SQLResponseFactory|service.CoreDataAccess),
		service.WithFactoryTarget(ds3))
	ds1 := service.NewEndpoint(core.NewDataService("ds1"),
		service.WithInterfaces(service.SQLAccess|service.SQLFactory|service.CoreDataAccess),
		service.WithFactoryTarget(ds2))
	ds1.Register(src)
	fmt.Println("data service 1 (SQLAccess, SQLFactory):          ", serve(ds1))
	fmt.Println("data service 2 (ResponseAccess, ResponseFactory):", serve(ds2))
	fmt.Println("data service 3 (RowsetAccess):                   ", serve(ds3))

	// Consumer 1 runs the query indirectly: only an EPR comes back.
	consumer1 := client.New(nil)
	respRef, err := consumer1.SQLExecuteFactory(ctx,
		client.Ref(ds1.Service().Address(), src.AbstractName()),
		`SELECT station, AVG(value) AS mean FROM reading GROUP BY station ORDER BY station`, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsumer1: created response resource %s\n           on %s (%d bytes moved)\n",
		respRef.AbstractName, respRef.Address, consumer1.BytesReceived())

	// Consumer 1 hands the EPR to Consumer 2 (out of band).
	consumer2 := client.New(nil)
	rowsetRef, err := consumer2.SQLRowsetFactory(ctx, respRef, rowset.FormatWebRowSet, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer2: derived WebRowSet resource %s\n           on %s (%d bytes moved)\n",
		rowsetRef.AbstractName, rowsetRef.Address, consumer2.BytesReceived())

	// Consumer 2 hands that EPR to Consumer 3, who pulls the data.
	consumer3 := client.New(nil)
	fmt.Println("\nconsumer3: station means pulled page by page:")
	for pos := 1; ; pos += 3 {
		page, err := consumer3.GetTuplesSet(ctx, rowsetRef, pos, 3)
		if err != nil {
			log.Fatal(err)
		}
		if len(page.Rows) == 0 {
			break
		}
		for _, row := range page.Rows {
			fmt.Printf("  %-8s %.2f\n", row[0], row[1].F)
		}
	}
	fmt.Printf("consumer3 moved %d bytes — the only consumer that touched the data\n",
		consumer3.BytesReceived())

	// Clean up the derived, service-managed resources.
	if err := consumer3.DestroyDataResource(ctx, rowsetRef); err != nil {
		log.Fatal(err)
	}
	if err := consumer2.DestroyDataResource(ctx, respRef); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nderived resources destroyed; the external database remains in place:")
	rows, _ := eng.Exec(`SELECT COUNT(*) FROM reading`)
	fmt.Printf("  reading table still has %s rows\n", rows.Set.Rows[0][0])
}
