// Virtual organisation: several independent DAIS services on one grid,
// exercised through the discovery and lifetime machinery — resource
// lists, Resolve, WSRF fine-grained properties, scheduled termination
// with a running reaper, and cross-service derived data.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/service"
	"dais/internal/sqlengine"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

func serve(ep *service.Endpoint) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ep.Service().SetAddress("http://" + ln.Addr().String())
	go http.Serve(ln, ep) //nolint:errcheck
	return ep.Service().Address()
}

func main() {
	ctx := context.Background()
	// Site A: experiment metadata in a relational database.
	engA := sqlengine.New("siteA")
	engA.MustExec(`CREATE TABLE run (id INTEGER PRIMARY KEY, detector VARCHAR(16), events INTEGER)`)
	engA.MustExec(`INSERT INTO run VALUES (1, 'atlas', 5200), (2, 'cms', 4100), (3, 'atlas', 6100)`)
	resA := dair.NewSQLDataResource(engA)
	epA := service.NewEndpoint(core.NewDataService("siteA"), service.WithWSRF())
	epA.Register(resA)
	urlA := serve(epA)

	// Site B: the same VO publishes calibration documents as XML.
	storeB := xmldb.NewStore("siteB")
	resB := daix.NewXMLCollectionResource(storeB, "")
	calib, _ := xmlutil.ParseString(`<calibration detector="atlas"><gain>1.07</gain></calibration>`)
	storeB.AddDocument("", "atlas.xml", calib) //nolint:errcheck
	epB := service.NewEndpoint(core.NewDataService("siteB"), service.WithWSRF())
	epB.Register(resB)
	urlB := serve(epB)

	// The reaper collects expired derived resources at Site A.
	stopReaper := epA.WSRF().StartReaper(20 * time.Millisecond)
	defer stopReaper()

	fmt.Println("virtual organisation members:")
	fmt.Println("  site A (relational):", urlA)
	fmt.Println("  site B (xml):       ", urlB)

	// A consumer discovers both sites' resources.
	c := client.New(nil)
	for _, url := range []string{urlA, urlB} {
		names, err := c.GetResourceList(ctx, url)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			ref, err := c.Resolve(ctx, url, n)
			if err != nil {
				log.Fatal(err)
			}
			mgmt, err := c.GetResourceProperty(ctx, ref, "DataResourceManagement")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  discovered %s (%s)\n", n, mgmt[0].Text())
		}
	}

	// Fine-grained WSRF property access: one property, not the whole
	// document.
	refA := client.Ref(urlA, resA.AbstractName())
	langs, err := c.QueryResourceProperties(ctx, refA, "GenericQueryLanguage")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsite A query language: %s\n", langs[0].Text())

	// Derive a summary resource at site A and give it a 50ms lifetime —
	// soft-state lifetime management instead of an explicit destroy.
	summary, err := c.SQLExecuteFactory(ctx, refA,
		`SELECT detector, SUM(events) FROM run GROUP BY detector ORDER BY detector`, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	set, err := c.GetSQLRowset(ctx, summary, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nevents per detector (derived resource):")
	for _, row := range set.Rows {
		fmt.Printf("  %-8s %s\n", row[0], row[1])
	}

	tt := time.Now().Add(50 * time.Millisecond)
	if _, err := c.SetTerminationTime(ctx, summary, &tt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nscheduled termination in 50ms; waiting for the reaper...")
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.GetSQLRowset(ctx, summary, 0); err != nil {
			fmt.Println("  derived resource reaped:", err)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("reaper never collected the resource")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The externally managed resources live on.
	names, _ := c.GetResourceList(ctx, urlA)
	fmt.Printf("\nsite A still hosts %d externally managed resource(s)\n", len(names))
}
