// File staging: the experimental WS-DAIF files realisation (the
// paper's §6 future-work direction) applied to the classic grid
// data-staging workflow — a producer site publishes run files, a
// coordinator stages a selection into a pinned, service-managed
// snapshot, and hands the EPR to an analysis consumer that pulls the
// bytes in ranges. The producer can keep rewriting files; the staged
// snapshot is immutable.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/filestore"
	"dais/internal/service"
)

func main() {
	ctx := context.Background()
	// The producer site's file store.
	store := filestore.NewStore("detector-site")
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("runs/2005/run-%03d.dat", i)
		payload := make([]byte, 0, 256)
		for j := 0; j < 16; j++ {
			payload = append(payload, []byte(fmt.Sprintf("evt-%03d-%02d;", i, j))...)
		}
		if err := store.Write(name, payload); err != nil {
			log.Fatal(err)
		}
	}
	store.Write("runs/2006/run-201.dat", []byte("next-year")) //nolint:errcheck
	store.Write("README", []byte("detector archive"))         //nolint:errcheck

	res := daif.NewFileDataResource(store)
	svc := core.NewDataService("files", core.WithConfigurationMap(daif.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithWSRF())
	ep.Register(res)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	svc.SetAddress("http://" + ln.Addr().String())
	go http.Serve(ln, ep) //nolint:errcheck
	fmt.Println("file data service:", svc.Address())

	coordinator := client.New(nil)
	ref := client.Ref(svc.Address(), res.AbstractName())

	// Discover what the site holds (GenericQuery with the glob language).
	infos, err := coordinator.ListFiles(ctx, ref, "runs/2005/*.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2005 run files at the producer:")
	for _, fi := range infos {
		fmt.Printf("  %-24s %4d bytes\n", fi.Name, fi.Size)
	}

	// Stage the 2005 selection: the coordinator moves no data, only the
	// factory request and the EPR.
	stagedRef, err := coordinator.FileSelectFactory(ctx, ref, "runs/2005/*.dat", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstaged resource %s\n  coordinator moved %d bytes (control only)\n",
		stagedRef.AbstractName, coordinator.BytesReceived())

	// The producer keeps working — it overwrites a run file.
	if err := coordinator.WriteFile(ctx, ref, "runs/2005/run-001.dat", []byte("REPROCESSED")); err != nil {
		log.Fatal(err)
	}

	// The analysis consumer pulls the pinned snapshot in 64-byte chunks.
	analysis := client.New(nil)
	fmt.Println("\nanalysis consumer pulls the staged snapshot:")
	staged, err := analysis.ListFiles(ctx, stagedRef, "")
	if err != nil {
		log.Fatal(err)
	}
	for _, fi := range staged {
		var got []byte
		for off := int64(0); ; off += 64 {
			chunk, err := analysis.ReadFile(ctx, stagedRef, fi.Name, off, 64)
			if err != nil {
				log.Fatal(err)
			}
			if len(chunk) == 0 {
				break
			}
			got = append(got, chunk...)
		}
		fmt.Printf("  %-24s %4d bytes (first event: %.11s)\n", fi.Name, len(got), got)
	}

	// Proof of pinning: the parent changed, the snapshot did not.
	live, _ := analysis.ReadFile(ctx, ref, "runs/2005/run-001.dat", 0, -1)
	snap, _ := analysis.ReadFile(ctx, stagedRef, "runs/2005/run-001.dat", 0, 16)
	fmt.Printf("\nparent run-001 now: %q\nstaged run-001 still begins: %q\n", live, snap)

	// Done: destroy the staged resource; the site's files remain.
	if err := analysis.DestroyDataResource(ctx, stagedRef); err != nil {
		log.Fatal(err)
	}
	left, _ := coordinator.ListFiles(ctx, ref, "**")
	fmt.Printf("\nstaged snapshot destroyed; producer still holds %d files\n", len(left))
}
