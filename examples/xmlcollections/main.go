// XML collections: a WS-DAIX walk-through — build a collection of
// documents, query it with XPath and XQuery, modify a document with
// XUpdate, and derive a sequence resource through the XQuery factory.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/daix"
	"dais/internal/service"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

func main() {
	ctx := context.Background()
	store := xmldb.NewStore("library")
	res := daix.NewXMLCollectionResource(store, "")
	svc := core.NewDataService("xml", core.WithConfigurationMap(daix.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithWSRF())
	ep.Register(res)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	svc.SetAddress("http://" + ln.Addr().String())
	go http.Serve(ln, ep) //nolint:errcheck
	fmt.Println("xml data service:", svc.Address())

	c := client.New(nil)
	ref := client.Ref(svc.Address(), res.AbstractName())

	// Populate the collection through the service.
	books := map[string]string{
		"ozsu.xml":   `<book genre="db"><title>Principles of Distributed Database Systems</title><price>85</price></book>`,
		"foster.xml": `<book genre="grid"><title>The Grid</title><price>60</price></book>`,
		"gray.xml":   `<book genre="db"><title>Transaction Processing</title><price>110</price></book>`,
	}
	for name, xml := range books {
		doc, err := xmlutil.ParseString(xml)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.AddDocument(ctx, ref, name, doc); err != nil {
			log.Fatal(err)
		}
	}
	names, _ := c.ListDocuments(ctx, ref)
	fmt.Println("documents:", names)

	// Direct XPath access.
	items, err := c.XPathExecute(ctx, ref, `/book[@genre='db']/title`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndatabase books (XPath):")
	for _, it := range items {
		fmt.Printf("  %-12s %s\n", it.Document, it.Value)
	}

	// Direct XQuery access with ordering.
	items, err = c.XQueryExecute(ctx, ref,
		`for $b in /book where $b/price < 100 order by $b/price return <cheap><t>{$b/title}</t><p>{$b/price}</p></cheap>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbooks under 100, cheapest first (XQuery):")
	for _, it := range items {
		fmt.Printf("  %-4s %s\n", it.Node.FindText("", "p"), it.Node.FindText("", "t"))
	}

	// XUpdate: apply a price change in place.
	mods, _ := xmlutil.ParseString(`<xu:modifications xmlns:xu="` + xmldb.NSXUpdate + `">
		<xu:update select="/book/price">95</xu:update>
		<xu:append select="/book"><xu:element name="onsale">true</xu:element></xu:append>
	</xu:modifications>`)
	n, err := c.XUpdateExecute(ctx, ref, "gray.xml", mods)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nXUpdate modified %d node(s) in gray.xml\n", n)
	doc, _ := c.GetDocument(ctx, ref, "gray.xml")
	fmt.Printf("  new price: %s, onsale: %s\n", doc.FindText("", "price"), doc.FindText("", "onsale"))

	// Indirect access: derive a sequence resource and page through it.
	seqRef, err := c.XQueryExecuteFactory(ctx, ref,
		`for $b in /book order by $b/price descending return <entry>{$b/title}</entry>`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderived sequence resource %s\n", seqRef.AbstractName)
	for pos := 1; ; pos++ {
		page, err := c.GetItems(ctx, seqRef, pos, 1)
		if err != nil {
			log.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		fmt.Printf("  item %d: %s\n", pos, page[0].Value)
	}
	if err := c.DestroyDataResource(ctx, seqRef); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sequence resource destroyed")
}
