package dais_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example end-to-end and checks for the
// output lines that prove the scenario exercised what it claims. The
// examples are the public-API documentation; this keeps them honest.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn subprocesses; skipped in -short mode")
	}
	cases := map[string][]string{
		"quickstart": {
			"property document highlights",
			"SQLSTATE 00000, 2 row(s)",
			"returned a SQLRowset element",
		},
		"relationalpipeline": {
			"consumer1: created response resource",
			"consumer2: derived WebRowSet resource",
			"the only consumer that touched the data",
			"reading table still has 500 rows",
		},
		"xmlcollections": {
			"database books (XPath)",
			"XUpdate modified 2 node(s)",
			"sequence resource destroyed",
		},
		"virtualorg": {
			"virtual organisation members",
			"events per detector",
			"derived resource reaped",
		},
		"filestaging": {
			"staged resource urn:dais:staged:",
			"analysis consumer pulls the staged snapshot",
			`staged run-001 still begins: "evt-001-00;evt-0"`,
			"producer still holds 5 files",
		},
	}
	for name, wants := range cases {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				cmd.Process.Kill() //nolint:errcheck
				<-done
				t.Fatalf("example timed out\n%s", out)
			}
			if runErr != nil {
				t.Fatalf("run: %v\n%s", runErr, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q\n%s", want, out)
				}
			}
		})
	}
}
