package loadgen

import (
	"fmt"
	"math/rand"
)

// Popularity maps a uniform RNG to an index with zipfian popularity:
// index 0 is the hottest resource, and the k-th most popular receives
// a share proportional to 1/(k+v)^s. Wrapping the standard library
// generator keeps the distribution deterministic per request RNG (each
// request goroutine owns a private seeded rand.Rand, so Pick needs no
// locking beyond what the caller already holds).
type Popularity struct {
	s, v float64
	n    int
}

// NewPopularity describes a zipfian population of n resources with
// exponent s > 1 (DAIS access skew defaults to 1.2: the classic
// "few hot catalogs, long cold tail") and offset v >= 1.
func NewPopularity(n int, s, v float64) (*Popularity, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: population size %d", n)
	}
	if s <= 1 || v < 1 {
		return nil, fmt.Errorf("loadgen: zipf parameters s=%v v=%v (need s>1, v>=1)", s, v)
	}
	return &Popularity{s: s, v: v, n: n}, nil
}

// Pick draws one resource index in [0, n).
func (p *Popularity) Pick(r *rand.Rand) int {
	z := rand.NewZipf(r, p.s, p.v, uint64(p.n-1))
	return int(z.Uint64())
}

// N reports the population size.
func (p *Popularity) N() int { return p.n }
