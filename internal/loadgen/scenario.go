package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"dais/internal/client"
)

// Target is one system under load: a consumer client plus the
// pre-created resource populations the scenarios address. The same
// scenario set points at a single daisd and at a daisgw cluster — the
// target only carries addresses, so the capacity curves are directly
// comparable.
type Target struct {
	// Name labels the target in results ("daisd", "daisgw-3").
	Name string
	// Client issues every request (share one: it models the consumer
	// population's connection pool).
	Client *client.Client
	// SQLRefs is the relational resource population, hottest-first
	// under the zipf pick.
	SQLRefs []client.ResourceRef
	// XMLRefs is the XML collection population.
	XMLRefs []client.ResourceRef
	// MetricsURL is the target's Prometheus endpoint; "" skips
	// server-side percentiles.
	MetricsURL string
}

// StandardMix returns the default multi-tenant scenario set against a
// target: the access-pattern spread the DAIS specifications describe
// (direct and indirect relational access, XML querying, WSRF property
// traffic), weighted the way a consumer population skews — reads
// dominate, indirect sessions and lifetime writes are the minority.
//
//	sql-direct   w=6  SQLExecute on a zipf-picked resource
//	sql-indirect w=2  SQLExecuteFactory → GetSQLRowset → WSRFDestroy
//	xml-xpath    w=2  XPathExecute on a zipf-picked collection
//	wsrf-props   w=2  GetResourceProperty, 1-in-5 SetTerminationTime
func StandardMix(t *Target, pop *Popularity) []Scenario {
	xmlPop := pop
	if len(t.XMLRefs) > 0 && len(t.XMLRefs) != pop.N() {
		if p, err := NewPopularity(len(t.XMLRefs), 1.2, 1.5); err == nil {
			xmlPop = p
		}
	}
	scenarios := []Scenario{
		{
			Name: "sql-direct", Weight: 6, Op: "SQLExecute",
			Run: func(ctx context.Context, r *rand.Rand) error {
				ref := t.SQLRefs[pop.Pick(r)%len(t.SQLRefs)]
				lo := r.Intn(900)
				q := fmt.Sprintf(`SELECT id, payload, num FROM data WHERE id BETWEEN %d AND %d`, lo, lo+19)
				_, err := t.Client.SQLExecute(ctx, ref, q, nil, "")
				return err
			},
		},
		{
			Name: "sql-indirect", Weight: 2, Op: "SQLExecuteFactory",
			Run: func(ctx context.Context, r *rand.Rand) error {
				src := t.SQLRefs[pop.Pick(r)%len(t.SQLRefs)]
				lo := r.Intn(900)
				q := fmt.Sprintf(`SELECT id, payload FROM data WHERE id BETWEEN %d AND %d`, lo, lo+9)
				derived, err := t.Client.SQLExecuteFactory(ctx, src, q, nil, nil)
				if err != nil {
					return err
				}
				if _, err := t.Client.GetSQLRowset(ctx, derived, 0); err != nil {
					return fmt.Errorf("fetch: %w", err)
				}
				if err := t.Client.WSRFDestroy(ctx, derived); err != nil {
					return fmt.Errorf("destroy: %w", err)
				}
				return nil
			},
		},
		{
			Name: "wsrf-props", Weight: 2, Op: "GetResourceProperty",
			Run: func(ctx context.Context, r *rand.Rand) error {
				ref := t.SQLRefs[pop.Pick(r)%len(t.SQLRefs)]
				if r.Intn(5) == 0 {
					// Lifetime refresh far in the future: exercises the
					// SetTerminationTime write path without ever letting
					// the reaper near the standing population.
					tt := time.Now().Add(time.Hour)
					_, err := t.Client.SetTerminationTime(ctx, ref, &tt)
					return err
				}
				props, err := t.Client.GetResourceProperty(ctx, ref, "Readable")
				if err != nil {
					return err
				}
				if len(props) == 0 {
					return fmt.Errorf("wsrf-props: empty property reply")
				}
				return nil
			},
		},
	}
	if len(t.XMLRefs) > 0 {
		scenarios = append(scenarios, Scenario{
			Name: "xml-xpath", Weight: 2, Op: "XPathExecute",
			Run: func(ctx context.Context, r *rand.Rand) error {
				ref := t.XMLRefs[xmlPop.Pick(r)%len(t.XMLRefs)]
				items, err := t.Client.XPathExecute(ctx, ref, `//book[price>15]/title`)
				if err != nil {
					return err
				}
				if len(items) == 0 {
					return fmt.Errorf("xml-xpath: empty result")
				}
				return nil
			},
		})
	}
	return scenarios
}
