package loadgen_test

import (
	"context"
	"testing"
	"time"

	"dais/internal/loadgen"
)

// TestOpenLoopSmoke drives the standard multi-tenant mix against an
// in-process endpoint at a modest rate and checks the run's basic
// health: every scenario class completes requests, nothing errors, and
// the sweep machinery produces a curve with server-side percentiles
// from the /metrics delta.
func TestOpenLoopSmoke(t *testing.T) {
	f := newLoadFixture(t, fixtureOpt{sqlResources: 8, xmlResources: 3, reap: 5 * time.Millisecond})
	pop, err := loadgen.NewPopularity(len(f.target.SQLRefs), 1.2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := loadgen.StandardMix(f.target, pop)
	if len(scenarios) != 4 {
		t.Fatalf("standard mix has %d classes, want 4", len(scenarios))
	}

	curve, err := loadgen.Sweep(context.Background(), f.target, scenarios, loadgen.SweepConfig{
		Rates:        []float64{150, 300},
		StepDuration: 700 * time.Millisecond,
		SLO:          250 * time.Millisecond,
		Seed:         42,
		Timeout:      5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("curve has %d points, want 2", len(curve.Points))
	}
	for _, pt := range curve.Points {
		if pt.Errors > 0 {
			t.Errorf("rate %v: %d errors in a healthy run", pt.OfferedRPS, pt.Errors)
		}
		if pt.Dropped > 0 {
			t.Errorf("rate %v: harness dropped %d arrivals below saturation", pt.OfferedRPS, pt.Dropped)
		}
		byClass := map[string]loadgen.ClassPoint{}
		for _, cp := range pt.Classes {
			byClass[cp.Class] = cp
		}
		for _, cls := range []string{"sql-direct", "sql-indirect", "xml-xpath", "wsrf-props"} {
			cp, ok := byClass[cls]
			if !ok {
				t.Fatalf("rate %v: class %s missing from curve point", pt.OfferedRPS, cls)
			}
			if cp.OK == 0 {
				t.Errorf("rate %v: class %s completed no requests", pt.OfferedRPS, cls)
			}
			if cp.ClientP50Ms <= 0 {
				t.Errorf("rate %v: class %s has no client p50", pt.OfferedRPS, cls)
			}
			if cp.ServerP50Ms <= 0 || cp.ServerP999Ms < cp.ServerP50Ms {
				t.Errorf("rate %v: class %s server percentiles broken: p50=%v p999=%v",
					pt.OfferedRPS, cls, cp.ServerP50Ms, cp.ServerP999Ms)
			}
		}
	}
	// A healthy 2-point sweep well under capacity meets the SLO at the
	// top rate, so the knee is the top point's achieved throughput.
	if curve.KneeRPS <= 0 {
		t.Error("no knee found in an unsaturated sweep")
	}
	// The run is open-loop: issued counts track offered rate, not
	// service speed. 300 rps × 0.7s ≈ 210 arrivals ± Poisson noise.
	last := curve.Points[1]
	if last.Issued < 130 || last.Issued > 300 {
		t.Errorf("arrivals %d far from offered 210", last.Issued)
	}

	// The indirect create-fetch-destroy sessions must not leak derived
	// resources: after the sweep, live count returns to the standing
	// population.
	deadlineWait(t, func() bool {
		return f.ep.WSRF().LiveCount() == len(f.target.SQLRefs)+len(f.target.XMLRefs)
	})
}

// TestSweepKneeDetection scores synthetic curve points through the real
// sweep SLO logic by running one saturated step: a slow fixture offered
// far more than it can serve must produce a point that violates the SLO
// (sheds or latency), leaving the knee at the sustainable step.
func TestSweepKneeDetection(t *testing.T) {
	// 8ms handler delay and 16 in-flight slots ≈ 2000 rps ceiling, but
	// the admission gate is set tight so overload sheds fast.
	f := newLoadFixture(t, fixtureOpt{
		sqlResources: 4,
		handlerDelay: 8 * time.Millisecond,
		admission:    admission(16),
	})
	pop, err := loadgen.NewPopularity(len(f.target.SQLRefs), 1.2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []loadgen.Scenario{sqlOnly(f.target, pop)}
	curve, err := loadgen.Sweep(context.Background(), f.target, scenarios, loadgen.SweepConfig{
		Rates:        []float64{100, 4000},
		StepDuration: 600 * time.Millisecond,
		SLO:          150 * time.Millisecond,
		Seed:         7,
		Timeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	low, high := curve.Points[0], curve.Points[1]
	if !low.WithinSLO {
		t.Errorf("low rate violated SLO: %+v", low)
	}
	if high.WithinSLO {
		t.Errorf("saturated rate met SLO: %+v", high)
	}
	if high.Shed == 0 {
		t.Error("saturated step shed nothing through the admission gate")
	}
	if curve.KneeRPS <= 0 || curve.KneeOfferedRPS != 100 {
		t.Errorf("knee at offered %v rps (achieved %v), want the 100 rps step",
			curve.KneeOfferedRPS, curve.KneeRPS)
	}
}

func deadlineWait(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("condition not reached within 5s")
}
