package loadgen

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestNormalizeWeightsValidation(t *testing.T) {
	mk := func(ws ...float64) []Scenario {
		var out []Scenario
		for i, w := range ws {
			out = append(out, Scenario{Name: string(rune('a' + i)), Weight: w})
		}
		return out
	}
	cases := []struct {
		name      string
		scenarios []Scenario
		wantErr   bool
	}{
		{"empty mix", nil, true},
		{"negative weight", mk(1, -2), true},
		{"zero sum", mk(0, 0, 0), true},
		{"nan weight", mk(1, nanF()), true},
		{"duplicate name", []Scenario{{Name: "x", Weight: 1}, {Name: "x", Weight: 1}}, true},
		{"unnamed", []Scenario{{Weight: 1}}, true},
		{"valid", mk(6, 2, 2), false},
		{"zero weight allowed when sum positive", mk(1, 0), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cum, err := NormalizeWeights(tc.scenarios)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tc.wantErr)
			}
			if err == nil && cum[len(cum)-1] != 1 {
				t.Errorf("cumulative shares end at %v, want 1", cum[len(cum)-1])
			}
		})
	}
}

func nanF() float64 {
	z := 0.0
	return z / z
}

func TestNormalizeWeightsShares(t *testing.T) {
	cum, err := NormalizeWeights([]Scenario{
		{Name: "a", Weight: 6}, {Name: "b", Weight: 2}, {Name: "c", Weight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.6, 0.8, 1.0}
	for i := range want {
		if diff := cum[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("cum[%d] = %v, want %v", i, cum[i], want[i])
		}
	}
	// A weight-zero scenario must never be picked.
	cum2, err := NormalizeWeights([]Scenario{{Name: "hot", Weight: 1}, {Name: "off", Weight: 0}})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		if pickScenario(cum2, r.Float64()) == 1 {
			t.Fatal("picked a weight-zero scenario")
		}
	}
}

// TestRunDeterministicMix proves the offered load is a pure function of
// the seed: two runs with the same seed issue the identical number of
// requests per class (arrival gaps and scenario choices are drawn from
// the master RNG on a planned timeline, independent of actual service
// latency), and a different seed produces a different trace.
func TestRunDeterministicMix(t *testing.T) {
	run := func(seed int64) map[string]int {
		var mu sync.Mutex
		counts := map[string]int{}
		noop := func(name string) func(ctx context.Context, r *rand.Rand) error {
			return func(ctx context.Context, r *rand.Rand) error {
				mu.Lock()
				counts[name]++
				mu.Unlock()
				return nil
			}
		}
		res, err := Run(context.Background(), Config{
			Rate:     2000,
			Duration: 250 * time.Millisecond,
			Seed:     seed,
			Scenarios: []Scenario{
				{Name: "a", Weight: 6, Run: noop("a")},
				{Name: "b", Weight: 2, Run: noop("b")},
				{Name: "c", Weight: 2, Run: noop("c")},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dropped != 0 || res.Errors != 0 {
			t.Fatalf("noop run dropped=%d errors=%d", res.Dropped, res.Errors)
		}
		mu.Lock()
		defer mu.Unlock()
		out := map[string]int{}
		for k, v := range counts {
			out[k] = v
		}
		return out
	}
	a1, a2, b := run(11), run(11), run(12)
	for _, cls := range []string{"a", "b", "c"} {
		if a1[cls] != a2[cls] {
			t.Errorf("class %s: same seed issued %d vs %d", cls, a1[cls], a2[cls])
		}
	}
	same := true
	for _, cls := range []string{"a", "b", "c"} {
		if a1[cls] != b[cls] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
	// Poisson sanity: ~500 arrivals expected (2000/s × 0.25s); allow a
	// wide band — this is a distribution check, not a timing check.
	total := a1["a"] + a1["b"] + a1["c"]
	if total < 350 || total > 700 {
		t.Errorf("arrivals %d far from expected ~500", total)
	}
	// The weighted mix must show through: class a is 60% of arrivals.
	if a1["a"] <= a1["b"] || a1["a"] <= a1["c"] {
		t.Errorf("mix weights not respected: %v", a1)
	}
}

// TestRunOutstandingCap proves the open loop sheds arrivals at the
// harness boundary instead of blocking the arrival clock when the
// service hangs.
func TestRunOutstandingCap(t *testing.T) {
	block := make(chan struct{})
	res, err := Run(context.Background(), Config{
		Rate:           2000,
		Duration:       200 * time.Millisecond,
		Seed:           1,
		Timeout:        50 * time.Millisecond,
		MaxOutstanding: 4,
		Scenarios: []Scenario{{Name: "hang", Weight: 1,
			Run: func(ctx context.Context, r *rand.Rand) error {
				select {
				case <-block:
				case <-ctx.Done():
				}
				return ctx.Err()
			}}},
	})
	close(block)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("hung service produced no harness drops")
	}
	if res.Issued < 100 {
		t.Errorf("arrival clock stalled: only %d issued", res.Issued)
	}
}

func TestPopularityZipfShape(t *testing.T) {
	if _, err := NewPopularity(0, 1.2, 1.5); err == nil {
		t.Error("accepted empty population")
	}
	if _, err := NewPopularity(10, 1.0, 1.5); err == nil {
		t.Error("accepted s<=1")
	}
	pop, err := NewPopularity(100, 1.2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	const picks = 200_000
	freq := make([]int, pop.N())
	for i := 0; i < picks; i++ {
		idx := pop.Pick(r)
		if idx < 0 || idx >= pop.N() {
			t.Fatalf("pick %d out of range", idx)
		}
		freq[idx]++
	}
	// Zipfian shape: strong head, long tail. Rank 0 clearly beats rank
	// 9, which clearly beats rank 49; the top decile carries a
	// disproportionate share; every comparison uses wide margins so the
	// test pins the distribution, not RNG minutiae.
	if freq[0] < 2*freq[9] {
		t.Errorf("rank 0 (%d) not ≫ rank 9 (%d)", freq[0], freq[9])
	}
	if freq[9] < 2*freq[49] {
		t.Errorf("rank 9 (%d) not ≫ rank 49 (%d)", freq[9], freq[49])
	}
	top10 := 0
	for _, f := range freq[:10] {
		top10 += f
	}
	if share := float64(top10) / picks; share < 0.40 {
		t.Errorf("top-10 share %.3f, want ≥ 0.40 (zipfian head missing)", share)
	}
	tailZero := 0
	for _, f := range freq[50:] {
		if f == 0 {
			tailZero++
		}
	}
	if tailZero == 50 {
		t.Error("tail never sampled at all: population effectively truncated")
	}
	// Determinism: the same request-RNG seed picks the same target.
	r1, r2 := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if pop.Pick(r1) != pop.Pick(r2) {
			t.Fatal("zipf pick not deterministic under a fixed seed")
		}
	}
}
