package loadgen_test

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"dais/internal/loadgen"
)

// serviceChurnCycles returns the cycle count for the end-to-end churn
// test: 10k by default (the full SOAP/HTTP round trip per cycle is the
// cost driver), scalable via DAIS_CHURN_CYCLES for soak runs.
func serviceChurnCycles(t testing.TB) int {
	if v := os.Getenv("DAIS_CHURN_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("DAIS_CHURN_CYCLES=%q: want a positive integer", v)
		}
		return n
	}
	return 10_000
}

// TestChurnServiceLifetime is the full-stack lifetime-churn proof: the
// factory mints short-TTL derived resources over real SOAP/HTTP while
// the reaper sweeps every millisecond, half the cycles racing it with
// an explicit destroy. It asserts the soft-state contract end to end —
// destroy-after-reap is the typed unknown-resource fault and nothing
// else, reaped EPRs stay dead, and the registry drains back to the
// standing population with zero leaked resources.
func TestChurnServiceLifetime(t *testing.T) {
	f := newLoadFixture(t, fixtureOpt{sqlResources: 2, rows: 10, reap: time.Millisecond})
	baseline := f.ep.WSRF().LiveCount()
	if baseline != 2 {
		t.Fatalf("baseline live count %d, want the 2 standing resources", baseline)
	}

	cycles := serviceChurnCycles(t)
	rep, err := loadgen.RunChurn(context.Background(), loadgen.ChurnConfig{
		Client:  f.target.Client,
		Source:  f.target.SQLRefs[0],
		Cycles:  cycles,
		Workers: 8,
		TTL:     4 * time.Millisecond,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("churn: %+v", rep)

	if got := int(rep.Cycles); got != cycles {
		t.Errorf("completed %d cycles, want %d", got, cycles)
	}
	if rep.Misclassified != 0 {
		t.Errorf("%d destroy-after-reap attempts failed with the wrong fault type", rep.Misclassified)
	}
	if rep.FetchAfterReapOK != 0 {
		t.Errorf("%d reads succeeded through reaped EPRs", rep.FetchAfterReapOK)
	}
	if rep.DestroyWon == 0 {
		t.Error("no cycle's explicit destroy ever beat the reaper — race not exercised")
	}

	// Zero leaks: once the longest TTL has passed and the reaper has
	// swept, every derived resource is gone and only the standing
	// population remains — both in the registry and on the exported
	// live-resource gauge.
	deadlineWait(t, func() bool { return f.ep.WSRF().LiveCount() == baseline })
	if live := f.ep.WSRF().LiveCount(); live != baseline {
		t.Fatalf("leaked %d resources after churn (live=%d baseline=%d)",
			live-baseline, live, baseline)
	}
}
