package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dais/internal/client"
	"dais/internal/core"
)

// ChurnConfig parameterises the lifetime-churn mode: workers minting
// short-TTL service-managed resources through the SQL factory while
// the WSRF reaper sweeps, half of them racing the reaper with an
// explicit destroy.
type ChurnConfig struct {
	Client *client.Client
	// Source is the relational resource whose factory mints the
	// derived short-TTL resources.
	Source client.ResourceRef
	// Cycles is the total number of create(/destroy) cycles.
	Cycles int
	// Workers is the number of concurrent producers (default 8).
	Workers int
	// TTL is the upper bound of the random termination offset; a zero
	// offset schedules the resource as already-expired (default 5ms).
	TTL time.Duration
	// DestroyFraction is the share of cycles that issue an explicit
	// WSRFDestroy racing the reaper (default 0.5).
	DestroyFraction float64
	// Seed makes each worker's TTL/destroy choices reproducible.
	Seed int64
}

// ChurnReport is the churn mode's outcome. The invariants the caller
// asserts: Misclassified == 0, FetchAfterReapOK == 0, and — once TTLs
// have passed and the reaper has swept — the target's live-resource
// count back at its pre-churn baseline.
type ChurnReport struct {
	Cycles     int64 `json:"cycles"`
	DestroyWon int64 `json:"destroy_won"` // explicit destroy beat the reaper
	ReaperWon  int64 `json:"reaper_won"`  // destroy raced and lost: typed unknown-resource fault
	// Misclassified counts destroy-after-reap attempts that failed with
	// anything other than the typed InvalidResourceNameFault.
	Misclassified int64 `json:"misclassified"`
	// FetchAfterReapOK counts reads through an EPR whose resource the
	// reaper had already destroyed that nevertheless succeeded — a
	// soft-state consistency violation.
	FetchAfterReapOK int64   `json:"fetch_after_reap_ok"`
	Elapsed          string  `json:"elapsed"`
	CyclesPerSec     float64 `json:"cycles_per_sec"`
}

// RunChurn drives the configured create/destroy cycles and classifies
// every outcome. Errors other than the raced-destroy kinds abort the
// run: churn is a correctness proof, not a best-effort load shape.
func RunChurn(ctx context.Context, cfg ChurnConfig) (*ChurnReport, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("loadgen: churn cycles %d", cfg.Cycles)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = 5 * time.Millisecond
	}
	destroyFrac := cfg.DestroyFraction
	if destroyFrac <= 0 {
		destroyFrac = 0.5
	}

	rep := &ChurnReport{}
	var destroyWon, reaperWon, misclassified, fetchAfterReap, cycles atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	per := cfg.Cycles / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		n := per
		if w == 0 {
			n += cfg.Cycles % workers // worker 0 absorbs the remainder
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					errCh <- ctx.Err()
					return
				}
				derived, err := cfg.Client.SQLExecuteFactory(ctx, cfg.Source,
					`SELECT id FROM data WHERE id < 3`, nil, nil)
				if err != nil {
					errCh <- fmt.Errorf("churn factory: %w", err)
					return
				}
				cycles.Add(1)
				tt := time.Now().Add(time.Duration(r.Int63n(int64(ttl))))
				if _, err := cfg.Client.SetTerminationTime(ctx, derived, &tt); err != nil {
					// The reaper may have already won if the TTL raced to
					// zero before this call landed; that is the typed
					// unknown-resource outcome, anything else is fatal.
					if isUnknownResource(err) {
						reaperWon.Add(1)
						continue
					}
					errCh <- fmt.Errorf("churn set-termination: %w", err)
					return
				}
				if r.Float64() < destroyFrac {
					switch err := cfg.Client.WSRFDestroy(ctx, derived); {
					case err == nil:
						destroyWon.Add(1)
					case isUnknownResource(err):
						reaperWon.Add(1)
						// The EPR must now be dead for reads too.
						if _, err := cfg.Client.GetSQLRowset(ctx, derived, 0); err == nil {
							fetchAfterReap.Add(1)
						}
					default:
						misclassified.Add(1)
					}
				}
			}
		}(w, n)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	rep.Cycles = cycles.Load()
	rep.DestroyWon = destroyWon.Load()
	rep.ReaperWon = reaperWon.Load()
	rep.Misclassified = misclassified.Load()
	rep.FetchAfterReapOK = fetchAfterReap.Load()
	elapsed := time.Since(start)
	rep.Elapsed = elapsed.Round(time.Millisecond).String()
	rep.CyclesPerSec = float64(rep.Cycles) / elapsed.Seconds()
	return rep, nil
}

// isUnknownResource recognises the typed fault a destroyed (reaped)
// resource's EPR must produce.
func isUnknownResource(err error) bool {
	var f *core.InvalidResourceNameFault
	return errors.As(err, &f)
}
