package loadgen

import (
	"fmt"

	"dais/internal/sqlengine"
)

// SeedEngine builds the canonical load-harness engine: a `data` table
// (id INTEGER PRIMARY KEY, payload VARCHAR(64), num DOUBLE) with an
// ordered index on id and `rows` sequential rows — the shape the
// StandardMix queries assume. The loadgen tests and the E17 bench
// fixtures share it so their capacity numbers describe the same data.
func SeedEngine(name string, rows int) *sqlengine.Engine {
	eng := sqlengine.New(name)
	eng.MustExec(`CREATE TABLE data (id INTEGER PRIMARY KEY, payload VARCHAR(64), num DOUBLE)`)
	eng.MustExec(`CREATE ORDERED INDEX data_id_ord ON data (id)`)
	sess := eng.NewSession()
	for i := 0; i < rows; i++ {
		if _, err := sess.Execute(`INSERT INTO data VALUES (?, ?, ?)`,
			sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("row-%06d-payload-abcdefghij", i)),
			sqlengine.NewDouble(float64(i)*1.5)); err != nil {
			panic(err)
		}
	}
	return eng
}
