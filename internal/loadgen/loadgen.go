// Package loadgen is the open-loop multi-tenant load harness for the
// DAIS stack (ROADMAP item 5, EXPERIMENTS.md E17). Every earlier
// benchmark (E1–E18) is closed-loop — a fixed set of callers, each
// issuing its next request only after the previous one returns — which
// can never exhibit the regime the specifications were written for:
// thousands of independent consumers whose arrivals do not slow down
// just because the service does.
//
// The harness models that population directly: request arrivals follow
// a Poisson process at a configured rate (exponential inter-arrival
// times drawn from a seeded RNG, so a run is reproducible), each
// arrival picks a scenario from a weighted mix (SQL-direct execution,
// SQL-indirect create-fetch-destroy, XML XPath, WSRF property reads and
// lifetime writes), and scenarios pick their target resource with
// zipfian popularity over a pre-created population — a few resources
// take most of the traffic, the tail is cold, exactly the shape a
// shared data federation sees.
//
// Because the loop is open, overload is visible instead of being
// absorbed: when the service slows past the arrival rate, in-flight
// requests pile up until the admission gate sheds them, and the
// capacity sweep (sweep.go) turns that into a knee — the maximum
// sustainable request rate at which the p99 latency still meets the
// SLO. churn.go adds the soft-state counterpart: factories minting
// short-TTL resources that race the WSRF reaper.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dais/internal/core"
)

// Scenario is one request class in the workload mix.
type Scenario struct {
	// Name labels the class in results ("sql-direct", ...).
	Name string
	// Weight is the class's relative share of arrivals (>0).
	Weight float64
	// Op is the server-side operation whose /metrics histogram carries
	// this class's latency (the first request of multi-call scenarios);
	// the sweep scrapes it for server-side percentiles.
	Op string
	// Run issues one request (or one short session, for scenarios like
	// create-fetch-destroy). r is private to the call and seeded from
	// the dispatcher sequence, so runs are reproducible.
	Run func(ctx context.Context, r *rand.Rand) error
}

// Config parameterises one open-loop run.
type Config struct {
	// Rate is the offered arrival rate in requests per second.
	Rate float64
	// Duration bounds the arrival window; in-flight requests are
	// drained (up to Timeout) after the last arrival.
	Duration time.Duration
	// Scenarios is the weighted mix; weights are validated as in
	// NormalizeWeights.
	Scenarios []Scenario
	// Seed makes the arrival process and scenario choice reproducible.
	Seed int64
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
	// MaxOutstanding caps concurrently in-flight requests (default
	// 4096). An open loop must not block arrivals on completions, but a
	// hung service would otherwise accumulate goroutines without bound;
	// arrivals past the cap are counted as Dropped, which the sweep
	// treats as an SLO violation.
	MaxOutstanding int
}

// ClassResult aggregates one scenario class's outcomes.
type ClassResult struct {
	Name   string
	Issued int
	OK     int
	// Shed counts requests rejected by the admission gate with a typed
	// ServiceBusyFault. They are neither successes nor errors: the gate
	// behaving as designed.
	Shed int
	// Errors counts everything else (timeouts included).
	Errors int

	mu        sync.Mutex
	latencies []time.Duration // client-observed, successes only
	sorted    bool
}

// observe records one completed call.
func (c *ClassResult) observe(d time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err == nil:
		c.OK++
		c.latencies = append(c.latencies, d)
		c.sorted = false
	case isShed(err):
		c.Shed++
	default:
		c.Errors++
	}
}

// Quantile reports a client-observed latency percentile over the
// class's successful requests (exact, not bucketed).
func (c *ClassResult) Quantile(q float64) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.latencies) == 0 {
		return 0
	}
	if !c.sorted {
		sort.Slice(c.latencies, func(i, j int) bool { return c.latencies[i] < c.latencies[j] })
		c.sorted = true
	}
	i := int(q * float64(len(c.latencies)))
	if i >= len(c.latencies) {
		i = len(c.latencies) - 1
	}
	return c.latencies[i]
}

// isShed recognises the admission gate's typed rejection, both as the
// decoded client-side fault and as the raw server-side error.
func isShed(err error) bool {
	var busy *core.ServiceBusyFault
	return errors.As(err, &busy)
}

// Result is one open-loop run's outcome.
type Result struct {
	Rate    float64
	Elapsed time.Duration
	Classes map[string]*ClassResult
	Issued  int
	OK      int
	Shed    int
	Errors  int
	// Dropped counts arrivals discarded because MaxOutstanding was
	// reached — the harness itself refusing to model more concurrency,
	// which only happens deep past saturation.
	Dropped int
}

// AchievedRPS is the completed-successfully rate over the arrival
// window.
func (r *Result) AchievedRPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// Quantile reports the all-classes client-observed percentile.
func (r *Result) Quantile(q float64) time.Duration {
	all := &ClassResult{}
	for _, c := range r.Classes {
		c.mu.Lock()
		all.latencies = append(all.latencies, c.latencies...)
		c.mu.Unlock()
	}
	return all.Quantile(q)
}

// NormalizeWeights validates a mix and returns each scenario's
// cumulative probability share. It rejects an empty mix, negative or
// NaN weights, a zero weight sum and duplicate class names.
func NormalizeWeights(scenarios []Scenario) ([]float64, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("loadgen: empty scenario mix")
	}
	seen := map[string]bool{}
	sum := 0.0
	for _, s := range scenarios {
		if s.Name == "" {
			return nil, fmt.Errorf("loadgen: scenario with empty name")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("loadgen: duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		if s.Weight < 0 || s.Weight != s.Weight {
			return nil, fmt.Errorf("loadgen: scenario %q has invalid weight %v", s.Name, s.Weight)
		}
		sum += s.Weight
	}
	if sum <= 0 {
		return nil, fmt.Errorf("loadgen: scenario weights sum to zero")
	}
	cum := make([]float64, len(scenarios))
	acc := 0.0
	for i, s := range scenarios {
		acc += s.Weight / sum
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against accumulated rounding
	return cum, nil
}

// pickScenario maps one uniform draw to a scenario index.
func pickScenario(cum []float64, u float64) int {
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// Run executes one open-loop window at cfg.Rate and returns the
// aggregated result. The dispatcher draws inter-arrival gaps and
// scenario choices from one seeded RNG (deterministic offered load);
// each request goroutine gets a private RNG seeded from that sequence,
// so zipf target picks are reproducible too without sharing state.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cum, err := NormalizeWeights(cfg.Scenarios)
	if err != nil {
		return nil, err
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive arrival rate %v", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive duration %v", cfg.Duration)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	maxOut := cfg.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 4096
	}

	res := &Result{Rate: cfg.Rate, Classes: map[string]*ClassResult{}}
	for _, s := range cfg.Scenarios {
		res.Classes[s.Name] = &ClassResult{Name: s.Name}
	}

	master := rand.New(rand.NewSource(cfg.Seed))
	sem := make(chan struct{}, maxOut)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards res.Issued/Dropped during dispatch

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	next := start
	for {
		// Absolute schedule: gaps accumulate on the planned timeline,
		// not on the post-sleep clock, so the offered rate does not
		// drift under scheduler noise. A dispatcher running behind
		// issues immediately (open loop: lateness is the service's
		// problem to reveal, not the generator's to absorb).
		gap := time.Duration(master.ExpFloat64() / cfg.Rate * float64(time.Second))
		next = next.Add(gap)
		if next.After(deadline) {
			break
		}
		idx := pickScenario(cum, master.Float64())
		reqSeed := master.Int63()
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		sc := &cfg.Scenarios[idx]
		cls := res.Classes[sc.Name]
		select {
		case sem <- struct{}{}:
		default:
			mu.Lock()
			res.Dropped++
			res.Issued++
			mu.Unlock()
			continue
		}
		mu.Lock()
		res.Issued++
		mu.Unlock()
		cls.mu.Lock()
		cls.Issued++
		cls.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			r := rand.New(rand.NewSource(reqSeed))
			t0 := time.Now()
			err := sc.Run(rctx, r)
			cls.observe(time.Since(t0), err)
		}()
	}
	// Elapsed is the arrival window, not the drain: achieved RPS
	// relates completions to the time load was offered over.
	window := time.Since(start)
	wg.Wait()
	res.Elapsed = window
	for _, c := range res.Classes {
		res.OK += c.OK
		res.Shed += c.Shed
		res.Errors += c.Errors
	}
	return res, nil
}
