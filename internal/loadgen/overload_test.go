package loadgen_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dais/internal/core"
	"dais/internal/loadgen"
	"dais/internal/resil"
	"dais/internal/telemetry"
)

func admission(maxInFlight int) *resil.AdmissionConfig {
	return &resil.AdmissionConfig{MaxInFlight: maxInFlight, RetryAfter: 250 * time.Millisecond}
}

// sqlOnly is a single-class mix over the direct-SQL scenario, used by
// tests that need a known capacity ceiling without mix noise.
func sqlOnly(target *loadgen.Target, pop *loadgen.Popularity) loadgen.Scenario {
	for _, s := range loadgen.StandardMix(target, pop) {
		if s.Name == "sql-direct" {
			s.Weight = 1
			return s
		}
	}
	panic("sql-direct missing from StandardMix")
}

// TestOverloadShedding pushes the harness well past the fixture's
// admission ceiling and verifies graceful degradation: every shed
// exchange carries a typed ServiceBusyFault with a Retry-After pacing
// hint, nothing hangs or comes back malformed, and — because the
// latency histogram only records successful exchanges — the flood of
// fast 503s cannot masquerade as a latency improvement.
func TestOverloadShedding(t *testing.T) {
	f := newLoadFixture(t, fixtureOpt{
		sqlResources: 4,
		handlerDelay: 10 * time.Millisecond,
		admission:    admission(8), // ≈ 800 rps ceiling
	})
	pop, err := loadgen.NewPopularity(len(f.target.SQLRefs), 1.2, 1.5)
	if err != nil {
		t.Fatal(err)
	}

	// Wrap the scenario so every error is captured for inspection; the
	// plain non-retrying client means sheds surface instead of being
	// absorbed by backoff.
	base := sqlOnly(f.target, pop)
	var mu sync.Mutex
	var failures []error
	wrapped := base
	wrapped.Run = func(ctx context.Context, r *rand.Rand) error {
		err := base.Run(ctx, r)
		if err != nil {
			mu.Lock()
			failures = append(failures, err)
			mu.Unlock()
		}
		return err
	}

	before := f.obs.Registry.Snapshot()
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Rate:      2500, // ~3× the ceiling
		Duration:  800 * time.Millisecond,
		Seed:      5,
		Timeout:   3 * time.Second,
		Scenarios: []loadgen.Scenario{wrapped},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := f.obs.Registry.Snapshot()

	if res.Shed == 0 {
		t.Fatal("3× overload produced no sheds")
	}
	if res.OK == 0 {
		t.Fatal("overload starved out all successes")
	}
	if res.Errors > 0 {
		t.Errorf("%d non-shed errors under overload (hangs or malformed replies)", res.Errors)
	}

	// Every captured failure must be the typed busy fault with a
	// positive pacing hint — not a raw 503, not a parse error.
	mu.Lock()
	defer mu.Unlock()
	if len(failures) == 0 {
		t.Fatal("sheds counted but no errors captured")
	}
	for _, err := range failures {
		var busy *core.ServiceBusyFault
		if !errors.As(err, &busy) {
			t.Fatalf("shed error is not a typed ServiceBusyFault: %v", err)
		}
		if busy.RetryAfter <= 0 {
			t.Fatalf("shed fault carries no Retry-After hint: %+v", busy)
		}
	}

	// Server-side bookkeeping: the shed counter moved, and the success
	// latency histogram recorded exactly the OK exchanges — shed
	// requests are excluded, so overload cannot fake a latency win.
	shed := telemetry.DeltaCount(before, after, resil.MetricShed, nil)
	if shed <= 0 {
		t.Errorf("%s did not increase under overload", resil.MetricShed)
	}
	latencyCount := telemetry.DeltaCount(before, after, telemetry.MetricLatency+"_count",
		map[string]string{"side": telemetry.SideServer, "op": base.Op})
	if latencyCount != float64(res.OK) {
		t.Errorf("server latency histogram recorded %.0f exchanges, want OK=%d (sheds must be excluded)",
			latencyCount, res.OK)
	}
	// Harness accounting separates sheds from error/success classes.
	cls := res.Classes[base.Name]
	if cls.Issued != cls.OK+cls.Shed+cls.Errors {
		t.Errorf("class accounting leak: issued=%d ok=%d shed=%d errors=%d",
			cls.Issued, cls.OK, cls.Shed, cls.Errors)
	}
}
