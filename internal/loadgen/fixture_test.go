package loadgen_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/loadgen"
	"dais/internal/resil"
	"dais/internal/service"
	"dais/internal/soap"
	"dais/internal/telemetry"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

// fixtureOpt shapes the system under load.
type fixtureOpt struct {
	sqlResources int
	xmlResources int
	rows         int
	admission    *resil.AdmissionConfig
	// handlerDelay slows every dispatched request, giving the fixture a
	// known capacity ceiling for overload tests.
	handlerDelay time.Duration
	reap         time.Duration // reaper interval (0: no reaper)
}

// loadFixture is an in-process daisd-shaped endpoint hosting a
// population of relational resources (one shared engine) and XML
// collections, served with /metrics like an operator deployment.
type loadFixture struct {
	target *loadgen.Target
	ep     *service.Endpoint
	obs    *telemetry.Observer
}

func newLoadFixture(t testing.TB, opt fixtureOpt) *loadFixture {
	t.Helper()
	if opt.sqlResources <= 0 {
		opt.sqlResources = 8
	}
	if opt.rows <= 0 {
		opt.rows = 1000
	}
	eng := loadgen.SeedEngine("load", opt.rows)
	svc := core.NewDataService("load",
		core.WithConcurrentAccess(true),
		core.WithConfigurationMap(dair.StandardConfigurationMaps()...),
		core.WithConfigurationMap(daix.StandardConfigurationMaps()...))
	obs := telemetry.NewObserver(telemetry.WithSlowThreshold(0))
	epOpts := []service.EndpointOption{service.WithWSRF(), service.WithTelemetry(obs)}
	if opt.admission != nil {
		epOpts = append(epOpts, service.WithAdmission(*opt.admission))
	}
	if opt.handlerDelay > 0 {
		delay := opt.handlerDelay
		epOpts = append(epOpts, service.WithServerInterceptors(
			func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return next(ctx, action, env)
			}))
	}
	ep := service.NewEndpoint(svc, epOpts...)

	var sqlRefs, xmlRefs []client.ResourceRef
	for i := 0; i < opt.sqlResources; i++ {
		res := dair.NewSQLDataResource(eng)
		res.Name = fmt.Sprintf("urn:dais:load:sql-%03d", i)
		ep.Register(res)
	}
	for i := 0; i < opt.xmlResources; i++ {
		store := xmldb.NewStore(fmt.Sprintf("col-%03d", i))
		seedBooks(t, store)
		res := daix.NewXMLCollectionResource(store, "")
		res.Name = fmt.Sprintf("urn:dais:load:xml-%03d", i)
		ep.Register(res)
	}

	mux := http.NewServeMux()
	mux.Handle("/", ep)
	mux.Handle("/metrics", obs.Registry.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	svc.SetAddress(ts.URL)

	if opt.reap > 0 {
		stop := ep.WSRF().StartReaper(opt.reap)
		t.Cleanup(stop)
	}

	for i := 0; i < opt.sqlResources; i++ {
		sqlRefs = append(sqlRefs, client.Ref(ts.URL, fmt.Sprintf("urn:dais:load:sql-%03d", i)))
	}
	for i := 0; i < opt.xmlResources; i++ {
		xmlRefs = append(xmlRefs, client.Ref(ts.URL, fmt.Sprintf("urn:dais:load:xml-%03d", i)))
	}
	return &loadFixture{
		target: &loadgen.Target{
			Name: "daisd",
			// Zero resilience policy: no retries, no circuit breaker. The
			// harness must see every shed and fault as-is — a retrying
			// client would hide the very overload behaviour under test.
			Client:     client.NewResilient(nil, nil, resil.ClientConfig{}),
			SQLRefs:    sqlRefs,
			XMLRefs:    xmlRefs,
			MetricsURL: ts.URL + "/metrics",
		},
		ep:  ep,
		obs: obs,
	}
}

func seedBooks(t testing.TB, store *xmldb.Store) {
	t.Helper()
	for i, doc := range []string{
		`<book id="1"><title>Alpha</title><price>10</price></book>`,
		`<book id="2"><title>Beta</title><price>30</price></book>`,
		`<book id="3"><title>Gamma</title><price>45</price></book>`,
	} {
		e, err := xmlutil.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.AddDocument("", fmt.Sprintf("b%d.xml", i), e); err != nil {
			t.Fatal(err)
		}
	}
}
