package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"dais/internal/telemetry"
)

// SweepConfig parameterises a capacity sweep: the same open-loop mix
// offered at each rate in turn, each step scored against the SLO.
type SweepConfig struct {
	// Rates are the offered arrival rates (requests/second), swept in
	// order (ascending, so saturation effects don't bleed backwards).
	Rates []float64
	// StepDuration is the arrival window per rate.
	StepDuration time.Duration
	// SLO is the p99 latency objective the knee is defined against.
	SLO time.Duration
	// MaxShedFraction is the tolerated shed share per step (default
	// 0.01): a step shedding more is past the knee even if the
	// successes it did serve were fast.
	MaxShedFraction float64
	// Seed derives each step's seed (Seed + step index).
	Seed int64
	// Timeout and MaxOutstanding pass through to each step's Config.
	Timeout        time.Duration
	MaxOutstanding int
}

// ClassPoint is one scenario class's score at one offered rate.
// Durations are milliseconds in the JSON so BENCH_E17.json diffs read
// naturally.
type ClassPoint struct {
	Class        string  `json:"class"`
	Issued       int     `json:"issued"`
	OK           int     `json:"ok"`
	Shed         int     `json:"shed"`
	Errors       int     `json:"errors"`
	ClientP50Ms  float64 `json:"client_p50_ms"`
	ClientP99Ms  float64 `json:"client_p99_ms"`
	ClientP999Ms float64 `json:"client_p999_ms"`
	ServerP50Ms  float64 `json:"server_p50_ms,omitempty"`
	ServerP99Ms  float64 `json:"server_p99_ms,omitempty"`
	ServerP999Ms float64 `json:"server_p999_ms,omitempty"`
}

// CurvePoint is one offered rate's aggregate score.
type CurvePoint struct {
	OfferedRPS  float64      `json:"offered_rps"`
	AchievedRPS float64      `json:"achieved_rps"`
	Issued      int          `json:"issued"`
	OK          int          `json:"ok"`
	Shed        int          `json:"shed"`
	Errors      int          `json:"errors"`
	Dropped     int          `json:"dropped"`
	P50Ms       float64      `json:"p50_ms"`
	P99Ms       float64      `json:"p99_ms"`
	P999Ms      float64      `json:"p999_ms"`
	WithinSLO   bool         `json:"within_slo"`
	Classes     []ClassPoint `json:"classes"`
}

// Curve is one target's capacity curve — the standing trip-wire
// BENCH_E17.json records per target.
type Curve struct {
	Target string       `json:"target"`
	SLOMs  float64      `json:"slo_ms"`
	Seed   int64        `json:"seed"`
	Points []CurvePoint `json:"points"`
	// KneeRPS is the maximum sustainable throughput: the highest
	// achieved RPS among SLO-meeting points (0 when no point meets it).
	KneeRPS float64 `json:"knee_rps"`
	// KneeOfferedRPS is the offered rate at that point.
	KneeOfferedRPS float64 `json:"knee_offered_rps"`
}

// Sweep runs the mix against a target at each configured rate and
// assembles the capacity curve. Server-side percentiles come from
// scraping the target's /metrics before and after each step and
// estimating quantiles over the delta, so each point reflects only its
// own window.
func Sweep(ctx context.Context, target *Target, scenarios []Scenario, cfg SweepConfig) (*Curve, error) {
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("loadgen: sweep with no rates")
	}
	if cfg.SLO <= 0 {
		return nil, fmt.Errorf("loadgen: sweep needs a positive SLO")
	}
	maxShed := cfg.MaxShedFraction
	if maxShed <= 0 {
		maxShed = 0.01
	}
	curve := &Curve{Target: target.Name, SLOMs: ms(cfg.SLO), Seed: cfg.Seed}
	for i, rate := range cfg.Rates {
		before, err := scrape(target.MetricsURL)
		if err != nil {
			return nil, fmt.Errorf("loadgen: scrape before step %d: %w", i, err)
		}
		res, err := Run(ctx, Config{
			Rate:           rate,
			Duration:       cfg.StepDuration,
			Scenarios:      scenarios,
			Seed:           cfg.Seed + int64(i),
			Timeout:        cfg.Timeout,
			MaxOutstanding: cfg.MaxOutstanding,
		})
		if err != nil {
			return nil, err
		}
		after, err := scrape(target.MetricsURL)
		if err != nil {
			return nil, fmt.Errorf("loadgen: scrape after step %d: %w", i, err)
		}
		pt := CurvePoint{
			OfferedRPS:  rate,
			AchievedRPS: res.AchievedRPS(),
			Issued:      res.Issued,
			OK:          res.OK,
			Shed:        res.Shed,
			Errors:      res.Errors,
			Dropped:     res.Dropped,
			P50Ms:       ms(res.Quantile(0.50)),
			P99Ms:       ms(res.Quantile(0.99)),
			P999Ms:      ms(res.Quantile(0.999)),
		}
		shedFrac := 0.0
		if res.Issued > 0 {
			shedFrac = float64(res.Shed+res.Dropped) / float64(res.Issued)
		}
		pt.WithinSLO = res.OK > 0 && res.Errors == 0 &&
			res.Quantile(0.99) <= cfg.SLO && shedFrac <= maxShed
		for _, s := range scenarios {
			c := res.Classes[s.Name]
			cp := ClassPoint{
				Class:        c.Name,
				Issued:       c.Issued,
				OK:           c.OK,
				Shed:         c.Shed,
				Errors:       c.Errors,
				ClientP50Ms:  ms(c.Quantile(0.50)),
				ClientP99Ms:  ms(c.Quantile(0.99)),
				ClientP999Ms: ms(c.Quantile(0.999)),
			}
			if before != nil && after != nil && s.Op != "" {
				filter := map[string]string{"side": telemetry.SideServer, "op": s.Op}
				cp.ServerP50Ms = ms(telemetry.DeltaQuantile(before, after, telemetry.MetricLatency, filter, 0.50))
				cp.ServerP99Ms = ms(telemetry.DeltaQuantile(before, after, telemetry.MetricLatency, filter, 0.99))
				cp.ServerP999Ms = ms(telemetry.DeltaQuantile(before, after, telemetry.MetricLatency, filter, 0.999))
			}
			pt.Classes = append(pt.Classes, cp)
		}
		curve.Points = append(curve.Points, pt)
		if pt.WithinSLO && pt.AchievedRPS > curve.KneeRPS {
			curve.KneeRPS = pt.AchievedRPS
			curve.KneeOfferedRPS = pt.OfferedRPS
		}
	}
	return curve, nil
}

// scrape fetches and parses a Prometheus exposition ("" URL → nil,
// meaning server-side percentiles are skipped).
func scrape(url string) ([]telemetry.Sample, error) {
	if url == "" {
		return nil, nil
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return telemetry.ParsePrometheus(string(body))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
