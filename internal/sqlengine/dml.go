package sqlengine

import (
	"context"
	"fmt"
	"strings"
)

// undoEntry reverses one physical change; applied in reverse order on
// rollback while holding the database write lock.
type undoEntry struct {
	table string
	kind  undoKind
	rowID int64
	row   []Value // previous image for update/delete
}

type undoKind int

const (
	undoInsert undoKind = iota // delete the inserted row
	undoDelete                 // re-insert the previous image
	undoUpdate                 // restore the previous image
)

// execInsert applies an INSERT. Caller holds d.mu for writing. Returns
// the rows inserted and the undo entries recorded.
func (d *Database) execInsert(ctx context.Context, st *InsertStmt, params []Value) (int, []undoEntry, error) {
	t, err := d.table(st.Table)
	if err != nil {
		return 0, nil, err
	}
	// Resolve target columns.
	var targets []int
	if len(st.Columns) == 0 {
		targets = make([]int, len(t.Columns))
		for i := range t.Columns {
			targets[i] = i
		}
	} else {
		targets = make([]int, len(st.Columns))
		for i, name := range st.Columns {
			ci := t.ColumnIndex(name)
			if ci < 0 {
				return 0, nil, fmt.Errorf("column %q not in table %q", name, st.Table)
			}
			targets[i] = ci
		}
	}
	env := &evalEnv{params: params, db: d, ctx: ctx}
	exprRows := st.Rows
	if st.Query != nil {
		// INSERT ... SELECT: materialise the query first, then insert
		// its rows as literal expression rows so the shared validation
		// and undo paths apply unchanged.
		set, err := d.execSelectEnv(st.Query, &evalEnv{params: params, db: d, ctx: ctx})
		if err != nil {
			return 0, nil, err
		}
		if len(set.Columns) != len(targets) {
			return 0, nil, fmt.Errorf("INSERT SELECT has %d columns for %d targets", len(set.Columns), len(targets))
		}
		exprRows = make([][]Expr, len(set.Rows))
		for i, r := range set.Rows {
			row := make([]Expr, len(r))
			for j, v := range r {
				row[j] = &LiteralExpr{Value: v}
			}
			exprRows[i] = row
		}
	}
	var undo []undoEntry
	count := 0
	for _, exprRow := range exprRows {
		if err := env.checkCtx(); err != nil {
			return count, undo, err
		}
		if len(exprRow) != len(targets) {
			return count, undo, fmt.Errorf("INSERT has %d values for %d columns", len(exprRow), len(targets))
		}
		row := make([]Value, len(t.Columns))
		assigned := make([]bool, len(t.Columns))
		for i, e := range exprRow {
			v, err := eval(e, env)
			if err != nil {
				return count, undo, err
			}
			cv, err := v.Coerce(t.Columns[targets[i]].Type)
			if err != nil {
				return count, undo, fmt.Errorf("column %q: %w", t.Columns[targets[i]].Name, err)
			}
			row[targets[i]] = cv
			assigned[targets[i]] = true
		}
		for i := range row {
			if !assigned[i] {
				if t.Columns[i].Default != nil {
					v, err := eval(t.Columns[i].Default, env)
					if err != nil {
						return count, undo, err
					}
					cv, err := v.Coerce(t.Columns[i].Type)
					if err != nil {
						return count, undo, err
					}
					row[i] = cv
				} else {
					row[i] = Null
				}
			}
		}
		for i, c := range t.Columns {
			if c.NotNull && row[i].IsNull() {
				return count, undo, fmt.Errorf("column %q may not be NULL", c.Name)
			}
		}
		id, err := t.insertRow(row)
		if err != nil {
			return count, undo, err
		}
		undo = append(undo, undoEntry{table: t.Name, kind: undoInsert, rowID: id})
		count++
	}
	return count, undo, nil
}

// execUpdate applies an UPDATE. Caller holds d.mu for writing.
func (d *Database) execUpdate(ctx context.Context, st *UpdateStmt, params []Value) (int, []undoEntry, error) {
	t, err := d.table(st.Table)
	if err != nil {
		return 0, nil, err
	}
	env := &evalEnv{params: params, cols: tableBindings(t), db: d, ctx: ctx}
	// Pre-resolve SET targets.
	type setTarget struct {
		col  int
		expr Expr
	}
	sets := make([]setTarget, len(st.Set))
	for i, sc := range st.Set {
		ci := t.ColumnIndex(sc.Column)
		if ci < 0 {
			return 0, nil, fmt.Errorf("column %q not in table %q", sc.Column, st.Table)
		}
		sets[i] = setTarget{col: ci, expr: sc.Value}
	}
	var undo []undoEntry
	count := 0
	// Snapshot IDs first: updates must not see their own effects.
	ids := append([]int64(nil), t.scan()...)
	for _, id := range ids {
		if err := env.checkCtx(); err != nil {
			return count, undo, err
		}
		row := t.rows[id]
		env.row = row
		if st.Where != nil {
			v, err := eval(st.Where, env)
			if err != nil {
				return count, undo, err
			}
			ok, err := truthy(v)
			if err != nil {
				return count, undo, err
			}
			if !ok {
				continue
			}
		}
		newRow := append([]Value(nil), row...)
		for _, s := range sets {
			v, err := eval(s.expr, env)
			if err != nil {
				return count, undo, err
			}
			cv, err := v.Coerce(t.Columns[s.col].Type)
			if err != nil {
				return count, undo, fmt.Errorf("column %q: %w", t.Columns[s.col].Name, err)
			}
			if t.Columns[s.col].NotNull && cv.IsNull() {
				return count, undo, fmt.Errorf("column %q may not be NULL", t.Columns[s.col].Name)
			}
			newRow[s.col] = cv
		}
		prev := append([]Value(nil), row...)
		if err := t.updateRow(id, newRow); err != nil {
			return count, undo, err
		}
		undo = append(undo, undoEntry{table: t.Name, kind: undoUpdate, rowID: id, row: prev})
		count++
	}
	return count, undo, nil
}

// execDelete applies a DELETE. Caller holds d.mu for writing.
func (d *Database) execDelete(ctx context.Context, st *DeleteStmt, params []Value) (int, []undoEntry, error) {
	t, err := d.table(st.Table)
	if err != nil {
		return 0, nil, err
	}
	env := &evalEnv{params: params, cols: tableBindings(t), db: d, ctx: ctx}
	var doomed []int64
	for _, id := range t.scan() {
		if err := env.checkCtx(); err != nil {
			return 0, nil, err
		}
		if st.Where != nil {
			env.row = t.rows[id]
			v, err := eval(st.Where, env)
			if err != nil {
				return 0, nil, err
			}
			ok, err := truthy(v)
			if err != nil {
				return 0, nil, err
			}
			if !ok {
				continue
			}
		}
		doomed = append(doomed, id)
	}
	var undo []undoEntry
	for _, id := range doomed {
		prev := append([]Value(nil), t.rows[id]...)
		t.deleteRow(id)
		undo = append(undo, undoEntry{table: t.Name, kind: undoDelete, rowID: id, row: prev})
	}
	return len(doomed), undo, nil
}

// applyUndo reverses recorded changes, newest first. Caller holds d.mu
// for writing.
func (d *Database) applyUndo(entries []undoEntry) {
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		t, err := d.table(e.table)
		if err != nil {
			continue // table dropped; nothing to restore into
		}
		switch e.kind {
		case undoInsert:
			t.deleteRow(e.rowID)
		case undoDelete:
			// Restore with the original rowID to keep ordering stable.
			// This splices into the middle of scan order, so the chunk
			// cache (rebuilt on append order) must be dropped.
			t.rows[e.rowID] = e.row
			t.order = append(t.order, e.rowID)
			sortIDs(t.order)
			t.invalidateChunks()
			for _, idx := range t.indexes {
				ci := t.ColumnIndex(idx.Column)
				if v := e.row[ci]; !v.IsNull() {
					idx.buckets[v.groupKey()] = append(idx.buckets[v.groupKey()], e.rowID)
				}
			}
			for _, ix := range t.ordIndexes {
				ix.insert(e.row[t.ColumnIndex(ix.Column)], e.rowID)
			}
		case undoUpdate:
			// updateRow re-validates unique constraints; restoring the
			// previous image cannot violate them, but fall back to a
			// raw write if it reports an error (it cannot in practice).
			if err := t.updateRow(e.rowID, e.row); err != nil {
				t.rows[e.rowID] = e.row
				t.invalidateChunks()
			}
		}
	}
}

func sortIDs(ids []int64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

// tableBindings builds evaluation bindings for a single table.
func tableBindings(t *Table) []boundColumn {
	cols := make([]boundColumn, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = boundColumn{
			qualifier: strings.ToLower(t.Name),
			name:      strings.ToLower(c.Name),
			typ:       c.Type,
			origName:  c.Name,
		}
	}
	return cols
}
