package sqlengine

import (
	"fmt"
	"testing"
	"testing/quick"
)

// seedIndexed builds a table with an indexed and an unindexed column
// holding identical data, so results through both access paths can be
// compared.
func seedIndexed(t testing.TB, rows int) *Engine {
	t.Helper()
	e := New("idx")
	e.MustExec(`CREATE TABLE d (id INTEGER PRIMARY KEY, grp INTEGER, grp_noix INTEGER, label VARCHAR(32))`)
	e.MustExec(`CREATE INDEX ix_grp ON d (grp)`)
	s := e.NewSession()
	for i := 0; i < rows; i++ {
		if _, err := s.Execute(`INSERT INTO d VALUES (?, ?, ?, ?)`,
			NewInt(int64(i)), NewInt(int64(i%10)), NewInt(int64(i%10)),
			NewString(fmt.Sprintf("row-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestIndexPathMatchesScan(t *testing.T) {
	e := seedIndexed(t, 500)
	queries := [][2]string{
		{`SELECT id FROM d WHERE grp = 3 ORDER BY id`, `SELECT id FROM d WHERE grp_noix = 3 ORDER BY id`},
		{`SELECT COUNT(*) FROM d WHERE grp = 7`, `SELECT COUNT(*) FROM d WHERE grp_noix = 7`},
		{`SELECT id FROM d WHERE grp = 2 AND id > 100 ORDER BY id`, `SELECT id FROM d WHERE grp_noix = 2 AND id > 100 ORDER BY id`},
		{`SELECT id FROM d WHERE 4 = grp ORDER BY id`, `SELECT id FROM d WHERE 4 = grp_noix ORDER BY id`},
		{`SELECT label FROM d WHERE grp = 99`, `SELECT label FROM d WHERE grp_noix = 99`}, // no matches
	}
	for _, q := range queries {
		a := queryStrings(t, e, q[0])
		b := queryStrings(t, e, q[1])
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows vs %d", q[0], len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: row %d differs: %v vs %v", q[0], i, a[i], b[i])
				}
			}
		}
	}
}

func TestIndexPathWithParams(t *testing.T) {
	e := seedIndexed(t, 200)
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM d WHERE grp = ?`, NewInt(5))
	if rows[0][0] != "20" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIndexPathWithAlias(t *testing.T) {
	e := seedIndexed(t, 100)
	rows := queryStrings(t, e, `SELECT t.id FROM d t WHERE t.grp = 1 ORDER BY t.id LIMIT 2`)
	if len(rows) != 2 || rows[0][0] != "1" || rows[1][0] != "11" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIndexPathTypeCoercion(t *testing.T) {
	e := New("c")
	e.MustExec(`CREATE TABLE p (v DOUBLE)`)
	e.MustExec(`CREATE INDEX ix_v ON p (v)`)
	e.MustExec(`INSERT INTO p VALUES (5), (5.0), (6)`)
	// Integer literal against DOUBLE column must still hit the index.
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM p WHERE v = 5`)
	if rows[0][0] != "2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIndexPathSeesUpdatesAndDeletes(t *testing.T) {
	e := seedIndexed(t, 50)
	e.MustExec(`UPDATE d SET grp = 42 WHERE id = 3`)
	rows := queryStrings(t, e, `SELECT id FROM d WHERE grp = 42`)
	if len(rows) != 1 || rows[0][0] != "3" {
		t.Fatalf("rows = %v", rows)
	}
	// Old bucket no longer contains the row.
	rows = queryStrings(t, e, `SELECT COUNT(*) FROM d WHERE grp = 3`)
	if rows[0][0] != "4" { // was 5 per group of 50/10, one moved away
		t.Fatalf("rows = %v", rows)
	}
	e.MustExec(`DELETE FROM d WHERE id = 13`)
	rows = queryStrings(t, e, `SELECT COUNT(*) FROM d WHERE grp = 3`)
	if rows[0][0] != "3" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPrimaryKeyIndexUsedForPointLookups(t *testing.T) {
	e := seedIndexed(t, 100)
	rows := queryStrings(t, e, `SELECT label FROM d WHERE id = 42`)
	if len(rows) != 1 || rows[0][0] != "row-42" {
		t.Fatalf("rows = %v", rows)
	}
}

// Property: the index path and a full scan agree for random data and
// random probes.
func TestQuickIndexEquivalence(t *testing.T) {
	f := func(vals []int16, probe int16) bool {
		e := New("q")
		e.MustExec(`CREATE TABLE d (a INTEGER, b INTEGER)`)
		e.MustExec(`CREATE INDEX ix_a ON d (a)`)
		s := e.NewSession()
		for _, v := range vals {
			if _, err := s.Execute(`INSERT INTO d VALUES (?, ?)`,
				NewInt(int64(v%50)), NewInt(int64(v%50))); err != nil {
				return false
			}
		}
		p := NewInt(int64(probe % 50))
		ra, err := e.Exec(`SELECT COUNT(*) FROM d WHERE a = ?`, p)
		if err != nil {
			return false
		}
		rb, err := e.Exec(`SELECT COUNT(*) FROM d WHERE b = ?`, p)
		if err != nil {
			return false
		}
		return ra.Set.Rows[0][0].I == rb.Set.Rows[0][0].I
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIndexLookupVsScan(b *testing.B) {
	e := seedIndexed(b, 10000)
	b.Run("indexed", func(b *testing.B) {
		s := e.NewSession()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(`SELECT COUNT(*) FROM d WHERE grp = 3`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		s := e.NewSession()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(`SELECT COUNT(*) FROM d WHERE grp_noix = 3`); err != nil {
				b.Fatal(err)
			}
		}
	})
}
