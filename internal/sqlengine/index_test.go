package sqlengine

import (
	"fmt"
	"testing"
	"testing/quick"
)

// seedIndexed builds a table with an indexed and an unindexed column
// holding identical data, so results through both access paths can be
// compared.
func seedIndexed(t testing.TB, rows int) *Engine {
	t.Helper()
	e := New("idx")
	e.MustExec(`CREATE TABLE d (id INTEGER PRIMARY KEY, grp INTEGER, grp_noix INTEGER, label VARCHAR(32))`)
	e.MustExec(`CREATE INDEX ix_grp ON d (grp)`)
	s := e.NewSession()
	for i := 0; i < rows; i++ {
		if _, err := s.Execute(`INSERT INTO d VALUES (?, ?, ?, ?)`,
			NewInt(int64(i)), NewInt(int64(i%10)), NewInt(int64(i%10)),
			NewString(fmt.Sprintf("row-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestIndexPathMatchesScan(t *testing.T) {
	e := seedIndexed(t, 500)
	queries := [][2]string{
		{`SELECT id FROM d WHERE grp = 3 ORDER BY id`, `SELECT id FROM d WHERE grp_noix = 3 ORDER BY id`},
		{`SELECT COUNT(*) FROM d WHERE grp = 7`, `SELECT COUNT(*) FROM d WHERE grp_noix = 7`},
		{`SELECT id FROM d WHERE grp = 2 AND id > 100 ORDER BY id`, `SELECT id FROM d WHERE grp_noix = 2 AND id > 100 ORDER BY id`},
		{`SELECT id FROM d WHERE 4 = grp ORDER BY id`, `SELECT id FROM d WHERE 4 = grp_noix ORDER BY id`},
		{`SELECT label FROM d WHERE grp = 99`, `SELECT label FROM d WHERE grp_noix = 99`}, // no matches
	}
	for _, q := range queries {
		a := queryStrings(t, e, q[0])
		b := queryStrings(t, e, q[1])
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows vs %d", q[0], len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: row %d differs: %v vs %v", q[0], i, a[i], b[i])
				}
			}
		}
	}
}

func TestIndexPathWithParams(t *testing.T) {
	e := seedIndexed(t, 200)
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM d WHERE grp = ?`, NewInt(5))
	if rows[0][0] != "20" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIndexPathWithAlias(t *testing.T) {
	e := seedIndexed(t, 100)
	rows := queryStrings(t, e, `SELECT t.id FROM d t WHERE t.grp = 1 ORDER BY t.id LIMIT 2`)
	if len(rows) != 2 || rows[0][0] != "1" || rows[1][0] != "11" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIndexPathTypeCoercion(t *testing.T) {
	e := New("c")
	e.MustExec(`CREATE TABLE p (v DOUBLE)`)
	e.MustExec(`CREATE INDEX ix_v ON p (v)`)
	e.MustExec(`INSERT INTO p VALUES (5), (5.0), (6)`)
	// Integer literal against DOUBLE column must still hit the index.
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM p WHERE v = 5`)
	if rows[0][0] != "2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIndexPathSeesUpdatesAndDeletes(t *testing.T) {
	e := seedIndexed(t, 50)
	e.MustExec(`UPDATE d SET grp = 42 WHERE id = 3`)
	rows := queryStrings(t, e, `SELECT id FROM d WHERE grp = 42`)
	if len(rows) != 1 || rows[0][0] != "3" {
		t.Fatalf("rows = %v", rows)
	}
	// Old bucket no longer contains the row.
	rows = queryStrings(t, e, `SELECT COUNT(*) FROM d WHERE grp = 3`)
	if rows[0][0] != "4" { // was 5 per group of 50/10, one moved away
		t.Fatalf("rows = %v", rows)
	}
	e.MustExec(`DELETE FROM d WHERE id = 13`)
	rows = queryStrings(t, e, `SELECT COUNT(*) FROM d WHERE grp = 3`)
	if rows[0][0] != "3" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPrimaryKeyIndexUsedForPointLookups(t *testing.T) {
	e := seedIndexed(t, 100)
	rows := queryStrings(t, e, `SELECT label FROM d WHERE id = 42`)
	if len(rows) != 1 || rows[0][0] != "row-42" {
		t.Fatalf("rows = %v", rows)
	}
}

// Property: the index path and a full scan agree for random data and
// random probes.
func TestQuickIndexEquivalence(t *testing.T) {
	f := func(vals []int16, probe int16) bool {
		e := New("q")
		e.MustExec(`CREATE TABLE d (a INTEGER, b INTEGER)`)
		e.MustExec(`CREATE INDEX ix_a ON d (a)`)
		s := e.NewSession()
		for _, v := range vals {
			if _, err := s.Execute(`INSERT INTO d VALUES (?, ?)`,
				NewInt(int64(v%50)), NewInt(int64(v%50))); err != nil {
				return false
			}
		}
		p := NewInt(int64(probe % 50))
		ra, err := e.Exec(`SELECT COUNT(*) FROM d WHERE a = ?`, p)
		if err != nil {
			return false
		}
		rb, err := e.Exec(`SELECT COUNT(*) FROM d WHERE b = ?`, p)
		if err != nil {
			return false
		}
		return ra.Set.Rows[0][0].I == rb.Set.Rows[0][0].I
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// seedBothIndexed extends the twin-column harness to both index kinds:
// hv carries a hash index, ov an ordered index, and each has an
// unindexed twin holding identical data.
func seedBothIndexed(t testing.TB, rows int) *Engine {
	t.Helper()
	e := New("idx2")
	e.MustExec(`CREATE TABLE m (id INTEGER PRIMARY KEY, hv INTEGER, hv_noix INTEGER, ov INTEGER, ov_noix INTEGER)`)
	e.MustExec(`CREATE INDEX ix_hv ON m (hv)`)
	e.MustExec(`CREATE ORDERED INDEX ox_ov ON m (ov)`)
	s := e.NewSession()
	for i := 0; i < rows; i++ {
		if _, err := s.Execute(`INSERT INTO m VALUES (?, ?, ?, ?, ?)`,
			NewInt(int64(i)), NewInt(int64(i%10)), NewInt(int64(i%10)),
			NewInt(int64(i%25)), NewInt(int64(i%25))); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// assertIndexesConsistent compares every indexed access path against
// its unindexed twin: hash point lookups, ordered point/range lookups
// and index-satisfied ORDER BY must all agree with the scan answer.
func assertIndexesConsistent(t *testing.T, e *Engine) {
	t.Helper()
	queries := [][2]string{
		{`SELECT id FROM m WHERE hv = 3 ORDER BY id`, `SELECT id FROM m WHERE hv_noix = 3 ORDER BY id`},
		{`SELECT COUNT(*) FROM m WHERE hv = 7`, `SELECT COUNT(*) FROM m WHERE hv_noix = 7`},
		{`SELECT id FROM m WHERE ov = 12 ORDER BY id`, `SELECT id FROM m WHERE ov_noix = 12 ORDER BY id`},
		{`SELECT id, ov FROM m WHERE ov > 5 AND ov <= 11 ORDER BY id`, `SELECT id, ov_noix FROM m WHERE ov_noix > 5 AND ov_noix <= 11 ORDER BY id`},
		{`SELECT id, ov FROM m WHERE ov BETWEEN 20 AND 24 ORDER BY id`, `SELECT id, ov_noix FROM m WHERE ov_noix BETWEEN 20 AND 24 ORDER BY id`},
		{`SELECT id FROM m ORDER BY ov, id`, `SELECT id FROM m ORDER BY ov_noix, id`},
		{`SELECT COUNT(*) FROM m WHERE ov < 0`, `SELECT COUNT(*) FROM m WHERE ov_noix < 0`},
	}
	for _, q := range queries {
		a := queryStrings(t, e, q[0])
		b := queryStrings(t, e, q[1])
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows vs %d", q[0], len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: row %d differs: %v vs %v", q[0], i, a[i], b[i])
				}
			}
		}
	}
}

// TestIndexMaintenanceUnderUpdateDelete churns committed DML through
// both index kinds and re-checks indexed-vs-scan agreement after every
// batch: moves between buckets, moves to NULL and back, and deletes.
func TestIndexMaintenanceUnderUpdateDelete(t *testing.T) {
	e := seedBothIndexed(t, 300)
	assertIndexesConsistent(t, e)

	e.MustExec(`UPDATE m SET hv = 42, hv_noix = 42 WHERE id % 7 = 0`)
	e.MustExec(`UPDATE m SET ov = ov + 100, ov_noix = ov_noix + 100 WHERE id % 5 = 0`)
	assertIndexesConsistent(t, e)

	e.MustExec(`UPDATE m SET ov = NULL, ov_noix = NULL WHERE id % 11 = 0`)
	e.MustExec(`UPDATE m SET hv = NULL, hv_noix = NULL WHERE id % 13 = 0`)
	assertIndexesConsistent(t, e)

	e.MustExec(`UPDATE m SET ov = 3, ov_noix = 3 WHERE ov = NULL OR id % 11 = 0`)
	e.MustExec(`DELETE FROM m WHERE id % 3 = 0`)
	assertIndexesConsistent(t, e)

	e.MustExec(`DELETE FROM m WHERE ov > 100`)
	assertIndexesConsistent(t, e)
}

// TestIndexMaintenanceUnderRollback aborts a transaction full of
// inserts, updates and deletes, then verifies both index kinds were
// rolled back in lockstep with the table: contents match the
// pre-transaction snapshot and every access path still agrees with its
// scan twin.
func TestIndexMaintenanceUnderRollback(t *testing.T) {
	e := seedBothIndexed(t, 200)
	snapshot := func() [][]string {
		return queryStrings(t, e, `SELECT id, hv, ov FROM m ORDER BY id`)
	}
	before := snapshot()

	s := e.NewSession()
	for _, sql := range []string{
		`BEGIN`,
		`UPDATE m SET hv = 77 WHERE id < 50`,
		`UPDATE m SET ov = NULL WHERE id >= 50 AND id < 100`,
		`DELETE FROM m WHERE id >= 100 AND id < 150`,
		`INSERT INTO m VALUES (9001, 1, 1, 1, 1)`,
		`ROLLBACK`,
	} {
		if _, err := s.Execute(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}

	after := snapshot()
	if len(after) != len(before) {
		t.Fatalf("rollback changed row count: %d -> %d", len(before), len(after))
	}
	for i := range after {
		for j := range after[i] {
			if after[i][j] != before[i][j] {
				t.Fatalf("row %d changed across rollback: %v vs %v", i, after[i], before[i])
			}
		}
	}
	assertIndexesConsistent(t, e)

	// The aborted insert must be gone from both index paths.
	for _, q := range []string{
		`SELECT COUNT(*) FROM m WHERE id = 9001`,
		`SELECT COUNT(*) FROM m WHERE hv = 77`,
	} {
		if rows := queryStrings(t, e, q); rows[0][0] != "0" {
			t.Fatalf("%s = %v after rollback", q, rows)
		}
	}
}

// TestIndexMaintenanceCommitAfterRollback makes sure an aborted
// transaction leaves the indexes usable: a following committed
// transaction lands in both index kinds normally.
func TestIndexMaintenanceCommitAfterRollback(t *testing.T) {
	e := seedBothIndexed(t, 60)
	s := e.NewSession()
	for _, sql := range []string{
		`BEGIN`, `UPDATE m SET ov = 500 WHERE id = 1`, `ROLLBACK`,
		`BEGIN`, `UPDATE m SET ov = 500, ov_noix = 500 WHERE id = 2`, `COMMIT`,
	} {
		if _, err := s.Execute(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	rows := queryStrings(t, e, `SELECT id FROM m WHERE ov = 500`)
	if len(rows) != 1 || rows[0][0] != "2" {
		t.Fatalf("committed update via ordered index = %v", rows)
	}
	rows = queryStrings(t, e, `SELECT id FROM m WHERE ov BETWEEN 499 AND 501`)
	if len(rows) != 1 || rows[0][0] != "2" {
		t.Fatalf("range over ordered index = %v", rows)
	}
	assertIndexesConsistent(t, e)
}

func BenchmarkIndexLookupVsScan(b *testing.B) {
	e := seedIndexed(b, 10000)
	b.Run("indexed", func(b *testing.B) {
		s := e.NewSession()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(`SELECT COUNT(*) FROM d WHERE grp = 3`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		s := e.NewSession()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(`SELECT COUNT(*) FROM d WHERE grp_noix = 3`); err != nil {
				b.Fatal(err)
			}
		}
	})
}
