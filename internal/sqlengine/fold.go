package sqlengine

// Constant folding collapses literal-only predicate subtrees at plan
// time so `WHERE 1=1 AND x > 5` reaches the access-path chooser and
// the vector-predicate compiler as `WHERE x > 5`. The folded tree is
// used ONLY for planning (conjunct extraction, vector compilation);
// the row executor keeps the original tree, so any expression the
// fold cannot prove error-free keeps its exact interpreted behaviour.
//
// Folding is pure: input trees are never mutated (plans share ASTs
// with the statement cache), and a subtree is only eliminated when
// the eliminated side is literal — `X AND FALSE` is NOT folded because
// the interpreter evaluates X first and X may error.

// isFoldedLiteral reports e is a literal after folding.
func isFoldedLiteral(e Expr) (Value, bool) {
	if l, ok := e.(*LiteralExpr); ok {
		return l.Value, true
	}
	return Null, false
}

// boolShaped reports that e always evaluates to BOOLEAN or NULL (never
// another type, though it may error), so `TRUE AND e` ≡ `e` exactly.
func boolShaped(e Expr) bool {
	switch n := e.(type) {
	case *BinaryExpr:
		switch n.Op {
		case "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE":
			return true
		}
		return false
	case *UnaryExpr:
		return n.Op == "NOT"
	case *IsNullExpr, *BetweenExpr, *InExpr, *ExistsExpr:
		return true
	case *LiteralExpr:
		return n.Value.Type == TypeBoolean || n.Value.IsNull()
	}
	return false
}

// tryFoldEval evaluates a literal-only expression with an empty
// environment; ok=false (evaluation error) leaves the tree unfolded so
// the interpreter surfaces the error with its own row-scoped timing.
func tryFoldEval(e Expr) (Expr, bool) {
	v, err := eval(e, &evalEnv{})
	if err != nil {
		return nil, false
	}
	return &LiteralExpr{Value: v}, true
}

// foldConstants returns a tree with literal-only subtrees evaluated
// and degenerate AND/OR arms removed. It accepts both parsed and
// rewritten (boundColExpr) trees. The result may share nodes with the
// input; neither is mutated.
func foldConstants(e Expr) Expr {
	switch n := e.(type) {
	case *BinaryExpr:
		l := foldConstants(n.Left)
		r := foldConstants(n.Right)
		lv, lLit := isFoldedLiteral(l)
		rv, rLit := isFoldedLiteral(r)
		switch n.Op {
		case "AND", "OR":
			if lLit && rLit {
				if f, ok := tryFoldEval(&BinaryExpr{Op: n.Op, Left: l, Right: r}); ok {
					return f
				}
			}
			// One-sided folds: only when the ELIMINATED side is the
			// literal, so no possibly-erroring expression is skipped
			// (AND/OR evaluate left first, so a left literal TRUE/FALSE
			// matches the interpreter's short-circuit exactly).
			if lLit && !lv.IsNull() {
				if lt, err := truthy(lv); err == nil {
					switch {
					case n.Op == "AND" && !lt:
						return &LiteralExpr{Value: NewBool(false)}
					case n.Op == "OR" && lt:
						return &LiteralExpr{Value: NewBool(true)}
					case n.Op == "AND" && lt && boolShaped(r):
						return r
					case n.Op == "OR" && !lt && boolShaped(r):
						return r
					}
				}
			}
			if rLit && !rv.IsNull() {
				if rt, err := truthy(rv); err == nil {
					// X AND TRUE ≡ X and X OR FALSE ≡ X when X is
					// bool-shaped: X runs first either way, and the
					// literal arm cannot change a boolean/NULL result.
					if (n.Op == "AND" && rt || n.Op == "OR" && !rt) && boolShaped(l) {
						return l
					}
				}
			}
		default:
			if lLit && rLit {
				if f, ok := tryFoldEval(&BinaryExpr{Op: n.Op, Left: l, Right: r}); ok {
					return f
				}
			}
		}
		if l == n.Left && r == n.Right {
			return n
		}
		return &BinaryExpr{Op: n.Op, Left: l, Right: r}
	case *UnaryExpr:
		op := foldConstants(n.Operand)
		if _, ok := isFoldedLiteral(op); ok {
			if f, ok := tryFoldEval(&UnaryExpr{Op: n.Op, Operand: op}); ok {
				return f
			}
		}
		if op == n.Operand {
			return n
		}
		return &UnaryExpr{Op: n.Op, Operand: op}
	case *IsNullExpr:
		op := foldConstants(n.Operand)
		if _, ok := isFoldedLiteral(op); ok {
			if f, ok := tryFoldEval(&IsNullExpr{Operand: op, Negate: n.Negate}); ok {
				return f
			}
		}
		if op == n.Operand {
			return n
		}
		return &IsNullExpr{Operand: op, Negate: n.Negate}
	case *BetweenExpr:
		op := foldConstants(n.Operand)
		lo := foldConstants(n.Lo)
		hi := foldConstants(n.Hi)
		_, opLit := isFoldedLiteral(op)
		_, loLit := isFoldedLiteral(lo)
		_, hiLit := isFoldedLiteral(hi)
		if opLit && loLit && hiLit {
			if f, ok := tryFoldEval(&BetweenExpr{Operand: op, Lo: lo, Hi: hi, Negate: n.Negate}); ok {
				return f
			}
		}
		if op == n.Operand && lo == n.Lo && hi == n.Hi {
			return n
		}
		return &BetweenExpr{Operand: op, Lo: lo, Hi: hi, Negate: n.Negate}
	case *InExpr:
		if n.Subquery != nil {
			return n
		}
		op := foldConstants(n.Operand)
		allLit := true
		if _, ok := isFoldedLiteral(op); !ok {
			allLit = false
		}
		list := make([]Expr, len(n.List))
		changed := op != n.Operand
		for i, it := range n.List {
			list[i] = foldConstants(it)
			if list[i] != it {
				changed = true
			}
			if _, ok := isFoldedLiteral(list[i]); !ok {
				allLit = false
			}
		}
		if allLit {
			if f, ok := tryFoldEval(&InExpr{Operand: op, List: list, Negate: n.Negate}); ok {
				return f
			}
		}
		if !changed {
			return n
		}
		return &InExpr{Operand: op, List: list, Negate: n.Negate}
	case *CastExpr:
		op := foldConstants(n.Operand)
		if _, ok := isFoldedLiteral(op); ok {
			if f, ok := tryFoldEval(&CastExpr{Operand: op, Target: n.Target}); ok {
				return f
			}
		}
		if op == n.Operand {
			return n
		}
		return &CastExpr{Operand: op, Target: n.Target}
	}
	return e
}
