package sqlengine

import (
	"fmt"
	"sync"
	"time"
)

// lockMode is the strength of a logical table lock.
type lockMode int

const (
	lockShared lockMode = iota
	lockExclusive
)

// lockManager implements table-granularity strict two-phase locking for
// transaction isolation. Physical consistency is separately guaranteed
// by the Database mutex; these logical locks only control statement
// interleaving between transactions, which is what the ANSI isolation
// levels observable through the DAIS TransactionIsolation property
// describe.
//
// Deadlocks are resolved by timeout: a transaction that cannot acquire
// a lock within the configured wait fails with a serialization error
// (SQLSTATE 40001) and should be rolled back by the caller.
type lockManager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tables  map[string]*tableLock
	timeout time.Duration
}

type tableLock struct {
	// holders maps owner tokens to the strongest mode held.
	holders map[*Session]lockMode
}

func newLockManager(timeout time.Duration) *lockManager {
	lm := &lockManager{tables: make(map[string]*tableLock), timeout: timeout}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// errLockTimeout marks a lock wait that expired (deadlock surrogate).
type errLockTimeout struct{ table string }

func (e *errLockTimeout) Error() string {
	return fmt.Sprintf("lock wait timeout on table %q (possible deadlock)", e.table)
}

// acquire blocks until the session holds the table in at least the
// given mode, or the timeout elapses.
func (lm *lockManager) acquire(s *Session, table string, mode lockMode) error {
	deadline := time.Now().Add(lm.timeout)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	tl, ok := lm.tables[table]
	if !ok {
		tl = &tableLock{holders: make(map[*Session]lockMode)}
		lm.tables[table] = tl
	}
	for {
		if held, ok := tl.holders[s]; ok && held >= mode {
			return nil // already strong enough
		}
		if tl.compatible(s, mode) {
			tl.holders[s] = mode
			return nil
		}
		if !lm.waitUntil(deadline) {
			return &errLockTimeout{table: table}
		}
		// Re-fetch: the table entry may have been cleaned up while waiting.
		if nt, ok := lm.tables[table]; ok {
			tl = nt
		} else {
			tl = &tableLock{holders: make(map[*Session]lockMode)}
			lm.tables[table] = tl
		}
	}
}

// compatible reports whether the session may take mode given the other
// holders.
func (tl *tableLock) compatible(s *Session, mode lockMode) bool {
	for holder, held := range tl.holders {
		if holder == s {
			continue
		}
		if mode == lockExclusive || held == lockExclusive {
			return false
		}
	}
	return true
}

// waitUntil waits on the condition variable with a deadline, returning
// false when the deadline has passed. Cond has no native timeout, so a
// timer goroutine broadcasts wakeups.
func (lm *lockManager) waitUntil(deadline time.Time) bool {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return false
	}
	done := make(chan struct{})
	t := time.AfterFunc(remaining, func() {
		lm.mu.Lock()
		lm.cond.Broadcast()
		lm.mu.Unlock()
		close(done)
	})
	lm.cond.Wait()
	if !t.Stop() {
		select {
		case <-done:
		default:
		}
	}
	return time.Now().Before(deadline)
}

// releaseShared drops the session's shared locks, keeping exclusive
// ones (READ COMMITTED releases read locks at statement end).
func (lm *lockManager) releaseShared(s *Session) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for name, tl := range lm.tables {
		if mode, ok := tl.holders[s]; ok && mode == lockShared {
			delete(tl.holders, s)
			if len(tl.holders) == 0 {
				delete(lm.tables, name)
			}
		}
	}
	lm.cond.Broadcast()
}

// releaseAll drops every lock the session holds (end of transaction).
func (lm *lockManager) releaseAll(s *Session) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for name, tl := range lm.tables {
		if _, ok := tl.holders[s]; ok {
			delete(tl.holders, s)
			if len(tl.holders) == 0 {
				delete(lm.tables, name)
			}
		}
	}
	lm.cond.Broadcast()
}
