package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// IsolationLevel enumerates the ANSI transaction isolation levels,
// mirroring the values of the DAIS TransactionIsolation property.
type IsolationLevel int

// Isolation levels, weakest first.
const (
	ReadUncommitted IsolationLevel = iota
	ReadCommitted
	RepeatableRead
	Serializable
)

// String returns the SQL name of the isolation level.
func (l IsolationLevel) String() string {
	switch l {
	case ReadUncommitted:
		return "READ UNCOMMITTED"
	case ReadCommitted:
		return "READ COMMITTED"
	case RepeatableRead:
		return "REPEATABLE READ"
	case Serializable:
		return "SERIALIZABLE"
	}
	return fmt.Sprintf("IsolationLevel(%d)", int(l))
}

// ParseIsolationLevel resolves a level name (case/format tolerant).
func ParseIsolationLevel(s string) (IsolationLevel, error) {
	switch strings.ToUpper(strings.NewReplacer("-", " ", "_", " ").Replace(strings.TrimSpace(s))) {
	case "READ UNCOMMITTED", "READUNCOMMITTED":
		return ReadUncommitted, nil
	case "READ COMMITTED", "READCOMMITTED":
		return ReadCommitted, nil
	case "REPEATABLE READ", "REPEATABLEREAD":
		return RepeatableRead, nil
	case "SERIALIZABLE":
		return Serializable, nil
	}
	return ReadCommitted, fmt.Errorf("unknown isolation level %q", s)
}

// SQLCA is the SQL communication area returned with every WS-DAIR
// response (paper Fig. 2: "the SQL realisation extends the message
// pattern to also include information from the SQL communication
// area").
type SQLCA struct {
	SQLState    string // five-character SQLSTATE
	SQLCode     int    // 0 success, 100 no data, negative on error
	Message     string
	UpdateCount int
	RowsFetched int
}

// Common SQLSTATE values.
const (
	StateSuccess       = "00000"
	StateNoData        = "02000"
	StateSyntax        = "42000"
	StateConstraint    = "23000"
	StateSerialization = "40001"
	StateInvalidTxn    = "25000"
	StateCancelled     = "57014"
	StateGeneral       = "HY000"
)

// Result is the outcome of executing one statement.
type Result struct {
	// Set is non-nil for queries.
	Set *ResultSet
	// UpdateCount is the number of rows affected by DML; -1 for queries
	// and DDL.
	UpdateCount int
	CA          SQLCA
}

// Engine wraps a Database with session, transaction and locking
// machinery. One Engine corresponds to one "externally managed data
// resource" in DAIS terms.
type Engine struct {
	db    *Database
	locks *lockManager
	plans *planCache // nil when caching is disabled
}

// Option configures engine construction.
type Option func(*Engine)

// WithLockTimeout sets the lock-wait timeout used to break deadlocks.
func WithLockTimeout(d time.Duration) Option {
	return func(e *Engine) { e.locks.timeout = d }
}

// WithVectorDisabled turns off columnar (vectorised) execution for this
// engine: every statement runs through the row operators or the
// interpreter. Intended for equivalence testing and benchmarking.
func WithVectorDisabled() Option {
	return func(e *Engine) { e.db.vectorOff = true }
}

// VectorStats is a point-in-time snapshot of columnar execution
// counters.
type VectorStats struct {
	// Batches is the number of column chunks evaluated by vector
	// kernels.
	Batches uint64
	// ChunksSkipped is the number of column chunks eliminated by
	// zone-map analysis without touching their vectors.
	ChunksSkipped uint64
}

// VectorStats returns the engine's columnar execution counters.
func (e *Engine) VectorStats() VectorStats {
	return VectorStats{
		Batches:       e.db.vecBatches.Load(),
		ChunksSkipped: e.db.vecSkipped.Load(),
	}
}

// New creates an empty engine whose database has the given name.
func New(name string, opts ...Option) *Engine {
	e := &Engine{
		db:    NewDatabase(name),
		locks: newLockManager(2 * time.Second),
		plans: newPlanCache(defaultPlanCacheSize),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Database exposes catalog metadata (table names, schemas, indexes).
func (e *Engine) Database() *Database { return e.db }

// NewSession opens a session with READ COMMITTED isolation.
func (e *Engine) NewSession() *Session {
	return &Session{engine: e, isolation: ReadCommitted}
}

// Exec is a convenience for one-shot statements on a throwaway session.
func (e *Engine) Exec(sql string, params ...Value) (*Result, error) {
	return e.NewSession().Execute(sql, params...)
}

// ExecContext is Exec under a context.
func (e *Engine) ExecContext(ctx context.Context, sql string, params ...Value) (*Result, error) {
	return e.NewSession().ExecuteContext(ctx, sql, params...)
}

// MustExec executes and panics on error; intended for test and example
// seeding only.
func (e *Engine) MustExec(sql string, params ...Value) *Result {
	r, err := e.Exec(sql, params...)
	if err != nil {
		panic(fmt.Sprintf("sqlengine: %s: %v", sql, err))
	}
	return r
}

// Session is a connection-like execution context owning at most one
// open transaction. Sessions are not safe for concurrent use by
// multiple goroutines; open one session per consumer.
type Session struct {
	engine    *Engine
	isolation IsolationLevel
	inTxn     bool
	undo      []undoEntry
	aborted   bool

	// prep threads the compiled plan of the statement currently being
	// executed from ExecutePrepared down to run()'s SELECT dispatch.
	prep *Prepared
}

// SetIsolation changes the isolation level for subsequent transactions.
// It is an error to change the level inside an open transaction.
func (s *Session) SetIsolation(l IsolationLevel) error {
	if s.inTxn {
		return errors.New("cannot change isolation inside a transaction")
	}
	s.isolation = l
	return nil
}

// Isolation returns the session's isolation level.
func (s *Session) Isolation() IsolationLevel { return s.isolation }

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.inTxn }

// Execute parses and runs one statement, returning its result. SQL
// errors are reflected both in the error and in Result.CA so service
// layers can ship the communication area regardless.
func (s *Session) Execute(sql string, params ...Value) (*Result, error) {
	return s.ExecuteContext(context.Background(), sql, params...)
}

// ExecuteContext is Execute under a context: long scans observe
// cancellation at row granularity and return a *CancelledError wrapping
// the context error.
func (s *Session) ExecuteContext(ctx context.Context, sql string, params ...Value) (*Result, error) {
	prep, err := s.engine.Prepare(sql)
	if err != nil {
		return errResult(StateSyntax, err), err
	}
	return s.ExecutePrepared(ctx, prep, params...)
}

// ExecutePrepared runs a statement prepared by Engine.Prepare. When the
// Prepared carries a compiled plan built at the current schema epoch,
// the planned executor runs it; otherwise (or when the schema has moved
// since planning) execution falls back to the interpreter, which is
// always correct.
func (s *Session) ExecutePrepared(ctx context.Context, prep *Prepared, params ...Value) (*Result, error) {
	if _, isExplain := prep.stmt.(*ExplainStmt); !isExplain && prep.nparams > len(params) {
		err := fmt.Errorf("statement requires %d parameters, got %d", prep.nparams, len(params))
		return errResult(StateSyntax, err), err
	}
	s.prep = prep
	defer func() { s.prep = nil }()
	return s.ExecuteStmtContext(ctx, prep.stmt, params)
}

// ExecuteStmt runs an already-parsed statement. This is the entry point
// thick DAIS wrappers use after their own parse/validate pass.
func (s *Session) ExecuteStmt(st Statement, params []Value) (*Result, error) {
	return s.ExecuteStmtContext(context.Background(), st, params)
}

// ExecuteStmtContext is ExecuteStmt under a context.
func (s *Session) ExecuteStmtContext(ctx context.Context, st Statement, params []Value) (*Result, error) {
	switch st.(type) {
	case *BeginStmt:
		return s.begin()
	case *CommitStmt:
		return s.commit()
	case *RollbackStmt:
		return s.rollback()
	}
	if s.aborted {
		err := errors.New("transaction is aborted; ROLLBACK required")
		return errResult(StateInvalidTxn, err), err
	}
	implicit := !s.inTxn
	res, err := s.run(ctx, st, params)
	if err != nil {
		if implicit {
			// Auto-commit statement failed: undo its partial effects.
			s.engine.db.mu.Lock()
			s.engine.db.applyUndo(s.undo)
			s.engine.db.mu.Unlock()
			s.undo = nil
			s.engine.locks.releaseAll(s)
		} else {
			var lt *errLockTimeout
			if errors.As(err, &lt) {
				// Serialization failure: abort the transaction.
				s.aborted = true
			}
		}
		return res, err
	}
	if implicit {
		s.undo = nil
		s.engine.locks.releaseAll(s)
	} else if s.isolation <= ReadCommitted {
		s.engine.locks.releaseShared(s)
	}
	return res, nil
}

func (s *Session) begin() (*Result, error) {
	if s.inTxn {
		err := errors.New("transaction already open")
		return errResult(StateInvalidTxn, err), err
	}
	s.inTxn = true
	s.aborted = false
	s.undo = nil
	return okResult(-1), nil
}

func (s *Session) commit() (*Result, error) {
	if !s.inTxn {
		err := errors.New("no transaction open")
		return errResult(StateInvalidTxn, err), err
	}
	if s.aborted {
		s.engine.db.mu.Lock()
		s.engine.db.applyUndo(s.undo)
		s.engine.db.mu.Unlock()
		s.finishTxn()
		err := errors.New("transaction was aborted and has been rolled back")
		return errResult(StateInvalidTxn, err), err
	}
	s.finishTxn()
	return okResult(-1), nil
}

func (s *Session) rollback() (*Result, error) {
	if !s.inTxn {
		err := errors.New("no transaction open")
		return errResult(StateInvalidTxn, err), err
	}
	s.engine.db.mu.Lock()
	s.engine.db.applyUndo(s.undo)
	s.engine.db.mu.Unlock()
	s.finishTxn()
	return okResult(-1), nil
}

func (s *Session) finishTxn() {
	s.inTxn = false
	s.aborted = false
	s.undo = nil
	s.engine.locks.releaseAll(s)
}

// run executes a single non-transaction-control statement.
func (s *Session) run(ctx context.Context, st Statement, params []Value) (*Result, error) {
	db := s.engine.db
	switch n := st.(type) {
	case *SelectStmt:
		if err := s.lockForRead(tablesOfSelect(n)); err != nil {
			return errResult(StateSerialization, err), err
		}
		db.mu.RLock()
		var set *ResultSet
		var err error
		handled := false
		if p := s.currentPlan(n); p != nil && p.epoch == db.epoch {
			set, err = db.execPlan(ctx, p, params)
			handled = true
		} else if ap := s.currentAggPlan(n); ap != nil && ap.epoch == db.epoch {
			// handled=false here is a bind-time fallback; the interpreter
			// below reproduces the statement exactly (including errors).
			set, handled, err = db.execAggPlan(ctx, ap, params)
		}
		if !handled && err == nil {
			set, err = db.execSelect(ctx, n, params)
		}
		db.mu.RUnlock()
		if err != nil {
			return errResult(stateFor(err), err), err
		}
		ca := SQLCA{SQLState: StateSuccess, UpdateCount: -1, RowsFetched: len(set.Rows)}
		if len(set.Rows) == 0 {
			ca.SQLState = StateNoData
			ca.SQLCode = 100
		}
		return &Result{Set: set, UpdateCount: -1, CA: ca}, nil
	case *InsertStmt:
		return s.runDML(n.Table, func() (int, []undoEntry, error) { return db.execInsert(ctx, n, params) })
	case *UpdateStmt:
		return s.runDML(n.Table, func() (int, []undoEntry, error) { return db.execUpdate(ctx, n, params) })
	case *DeleteStmt:
		return s.runDML(n.Table, func() (int, []undoEntry, error) { return db.execDelete(ctx, n, params) })
	case *CreateTableStmt:
		return s.runDDL(func() error { return db.createTable(n) })
	case *DropTableStmt:
		return s.runDDL(func() error { return db.dropTable(n) })
	case *CreateViewStmt:
		return s.runDDL(func() error { return db.createView(n) })
	case *DropViewStmt:
		return s.runDDL(func() error { return db.dropView(n) })
	case *CreateIndexStmt:
		return s.runDDL(func() error { return db.createIndex(n) })
	case *DropIndexStmt:
		return s.runDDL(func() error { return db.dropIndex(n) })
	case *ExplainStmt:
		db.mu.RLock()
		lines := db.explainStatement(n.Stmt)
		db.mu.RUnlock()
		set := &ResultSet{Columns: []ResultColumn{{Name: "plan", Type: TypeVarchar}}}
		for _, l := range lines {
			set.Rows = append(set.Rows, []Value{NewString(l)})
		}
		ca := SQLCA{SQLState: StateSuccess, UpdateCount: -1, RowsFetched: len(set.Rows)}
		return &Result{Set: set, UpdateCount: -1, CA: ca}, nil
	}
	err := fmt.Errorf("unsupported statement %T", st)
	return errResult(StateGeneral, err), err
}

func (s *Session) runDML(table string, f func() (int, []undoEntry, error)) (*Result, error) {
	if err := s.engine.locks.acquire(s, strings.ToLower(table), lockExclusive); err != nil {
		return errResult(StateSerialization, err), err
	}
	db := s.engine.db
	db.mu.Lock()
	n, undo, err := f()
	if err != nil {
		// Undo this statement's partial effects immediately; statement
		// atomicity holds inside explicit transactions too.
		db.applyUndo(undo)
		db.mu.Unlock()
		return errResult(stateFor(err), err), err
	}
	db.mu.Unlock()
	s.undo = append(s.undo, undo...)
	res := okResult(n)
	if n == 0 {
		res.CA.SQLState = StateNoData
		res.CA.SQLCode = 100
	}
	return res, nil
}

func (s *Session) runDDL(f func() error) (*Result, error) {
	if s.inTxn {
		err := errors.New("DDL is not allowed inside a transaction")
		return errResult(StateInvalidTxn, err), err
	}
	db := s.engine.db
	db.mu.Lock()
	err := f()
	db.mu.Unlock()
	if err != nil {
		return errResult(stateFor(err), err), err
	}
	return okResult(-1), nil
}

// currentPlan returns the compiled plan threaded through ExecutePrepared
// when it belongs to exactly this statement and planning is enabled. The
// caller still re-validates the schema epoch under the database latch.
func (s *Session) currentPlan(n *SelectStmt) *selectPlan {
	if disablePlanner || s.prep == nil || s.prep.plan == nil || s.prep.plan.sel != n {
		return nil
	}
	return s.prep.plan
}

// currentAggPlan is currentPlan for vectorised aggregate plans; it also
// honours the vector toggles so disabled engines always interpret.
func (s *Session) currentAggPlan(n *SelectStmt) *aggPlan {
	if disablePlanner || s.prep == nil || s.prep.agg == nil || s.prep.agg.sel != n {
		return nil
	}
	if !s.engine.db.vectorEnabled() {
		return nil
	}
	return s.prep.agg
}

// Explain describes the physical plan the engine would use for one
// statement: the access path (and index) for plannable SELECTs, or the
// interpreted path (with the reason) for everything else. It never
// executes the statement.
func (s *Session) Explain(sql string) ([]string, error) {
	st, _, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if ex, ok := st.(*ExplainStmt); ok {
		st = ex.Stmt
	}
	db := s.engine.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.explainStatement(st), nil
}

// lockForRead acquires shared locks for the given tables according to
// the isolation level: READ UNCOMMITTED takes none (dirty reads
// allowed); everything stronger takes shared locks, whose release
// policy in ExecuteStmt distinguishes READ COMMITTED from
// REPEATABLE READ/SERIALIZABLE.
func (s *Session) lockForRead(tables []string) error {
	if s.isolation == ReadUncommitted {
		return nil
	}
	// Views expand to the base tables they read, so the lock set covers
	// the whole access path.
	for _, t := range s.engine.db.expandViewTables(tables) {
		if err := s.engine.locks.acquire(s, t, lockShared); err != nil {
			return err
		}
	}
	return nil
}

// tablesOfSelect collects every table a SELECT touches, including
// union arms and subqueries, so read locks cover the whole statement.
func tablesOfSelect(st *SelectStmt) []string {
	seen := map[string]bool{}
	var collectSelect func(*SelectStmt)
	var collectExpr func(Expr)
	collectExpr = func(e Expr) {
		switch n := e.(type) {
		case nil:
		case *SubqueryExpr:
			collectSelect(n.Select)
		case *ExistsExpr:
			collectSelect(n.Select)
		case *InExpr:
			collectExpr(n.Operand)
			for _, it := range n.List {
				collectExpr(it)
			}
			if n.Subquery != nil {
				collectSelect(n.Subquery)
			}
		case *BinaryExpr:
			collectExpr(n.Left)
			collectExpr(n.Right)
		case *UnaryExpr:
			collectExpr(n.Operand)
		case *IsNullExpr:
			collectExpr(n.Operand)
		case *BetweenExpr:
			collectExpr(n.Operand)
			collectExpr(n.Lo)
			collectExpr(n.Hi)
		case *FuncExpr:
			for _, a := range n.Args {
				collectExpr(a)
			}
		case *CaseExpr:
			collectExpr(n.Operand)
			collectExpr(n.Else)
			for _, w := range n.Whens {
				collectExpr(w.When)
				collectExpr(w.Then)
			}
		case *CastExpr:
			collectExpr(n.Operand)
		}
	}
	collectSelect = func(s *SelectStmt) {
		if s == nil {
			return
		}
		ref := func(tr *TableRef) {
			if tr == nil {
				return
			}
			if tr.Subquery != nil {
				collectSelect(tr.Subquery)
				return
			}
			seen[strings.ToLower(tr.Table)] = true
		}
		ref(s.From)
		for _, j := range s.Joins {
			ref(j.Table)
			collectExpr(j.On)
		}
		collectExpr(s.Where)
		collectExpr(s.Having)
		for _, it := range s.Items {
			collectExpr(it.Expr)
		}
		for _, g := range s.GroupBy {
			collectExpr(g)
		}
		for _, u := range s.Unions {
			collectSelect(u.Sel)
		}
	}
	collectSelect(st)
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out) // deterministic lock order prevents ABBA deadlocks
	return out
}

func okResult(updateCount int) *Result {
	return &Result{
		UpdateCount: updateCount,
		CA:          SQLCA{SQLState: StateSuccess, UpdateCount: updateCount},
	}
}

func errResult(state string, err error) *Result {
	return &Result{
		UpdateCount: -1,
		CA:          SQLCA{SQLState: state, SQLCode: -1, Message: err.Error(), UpdateCount: -1},
	}
}

// stateFor maps engine errors to SQLSTATE classes.
func stateFor(err error) string {
	var ce *CancelledError
	if errors.As(err, &ce) {
		return StateCancelled
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "unique constraint"), strings.Contains(msg, "may not be NULL"):
		return StateConstraint
	case strings.Contains(msg, "lock wait timeout"):
		return StateSerialization
	case strings.Contains(msg, "does not exist"), strings.Contains(msg, "unknown column"),
		strings.Contains(msg, "not in table"):
		return StateSyntax
	}
	return StateGeneral
}
