package sqlengine

import (
	"container/list"
	"strings"
	"sync"
)

// Prepared pairs a parsed statement with the physical plan compiled for
// it (nil when the statement is outside the plannable class — the
// interpreter runs it). Prepared values are immutable and safe to share
// across sessions; the plan carries the schema epoch it was built
// against and is only dispatched while that epoch is current.
type Prepared struct {
	SQL     string
	stmt    Statement
	nparams int
	plan    *selectPlan
	agg     *aggPlan // vectorised aggregate plan; set only when plan is nil
	reason  string   // why plan is nil, for diagnostics
}

// Statement returns the parsed statement.
func (p *Prepared) Statement() Statement { return p.stmt }

// NumParams returns the number of positional parameters the statement
// requires.
func (p *Prepared) NumParams() int { return p.nparams }

// Planned reports whether a compiled physical plan is attached.
func (p *Prepared) Planned() bool { return p.plan != nil }

// PlanCacheStats is a point-in-time snapshot of prepared-plan cache
// counters.
type PlanCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	Capacity  int
}

// planCache is a bounded LRU of Prepared statements keyed by normalised
// (whitespace-trimmed) query text. Entries record the schema epoch at
// build time; a lookup under a different epoch is a miss and the stale
// entry is replaced, so DDL invalidates every cached plan at once
// without a sweep.
type planCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used

	hits      uint64
	misses    uint64
	evictions uint64
}

type planCacheEntry struct {
	key   string
	prep  *Prepared
	epoch uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// lookup returns the cached Prepared for key when it was built at the
// given epoch. A stale entry (epoch moved) is returned separately so
// the caller can re-plan without re-parsing; either way a non-hit
// counts as a miss.
func (c *planCache) lookup(key string, epoch uint64) (hit, stale *Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, nil
	}
	e := el.Value.(*planCacheEntry)
	if e.epoch != epoch {
		c.misses++
		return nil, e.prep
	}
	c.hits++
	c.lru.MoveToFront(el)
	return e.prep, nil
}

// put stores (or replaces) the Prepared for key, evicting the least
// recently used entry when at capacity.
func (c *planCache) put(key string, prep *Prepared, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*planCacheEntry)
		e.prep, e.epoch = prep, epoch
		c.lru.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		delete(c.entries, back.Value.(*planCacheEntry).key)
		c.lru.Remove(back)
		c.evictions++
	}
	c.entries[key] = c.lru.PushFront(&planCacheEntry{key: key, prep: prep, epoch: epoch})
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      len(c.entries),
		Capacity:  c.capacity,
	}
}

// defaultPlanCacheSize bounds the per-engine prepared-plan cache.
const defaultPlanCacheSize = 256

// WithPlanCacheSize sets the prepared-plan cache capacity; 0 disables
// caching (every Prepare parses and plans from scratch).
func WithPlanCacheSize(n int) Option {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		if n == 0 {
			e.plans = nil
			return
		}
		e.plans = newPlanCache(n)
	}
}

// PlanCacheStats returns the engine's prepared-plan cache counters; the
// zero value when caching is disabled.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	if e.plans == nil {
		return PlanCacheStats{}
	}
	return e.plans.stats()
}

// Prepare parses one statement and compiles a physical plan when it is
// plannable, consulting the engine's plan cache. A cached entry built
// under an older schema epoch is re-planned (the parse is reused) and
// replaced. EXPLAIN statements are never cached — they are diagnostic
// and each execution should observe the current catalog.
func (e *Engine) Prepare(sql string) (*Prepared, error) {
	key := strings.TrimSpace(sql)
	epoch := e.db.SchemaEpoch()

	var stmt Statement
	var nparams int
	if e.plans != nil {
		hit, stale := e.plans.lookup(key, epoch)
		if hit != nil {
			return hit, nil
		}
		if stale != nil {
			// Schema moved under the cached entry: reuse the parse, redo
			// the plan.
			stmt, nparams = stale.stmt, stale.nparams
		}
	}
	if stmt == nil {
		var err error
		stmt, nparams, err = Parse(sql)
		if err != nil {
			return nil, err
		}
	}
	prep := &Prepared{SQL: sql, stmt: stmt, nparams: nparams}
	if _, isExplain := stmt.(*ExplainStmt); isExplain {
		return prep, nil
	}
	if sel, ok := stmt.(*SelectStmt); ok {
		e.db.mu.RLock()
		epoch = e.db.epoch // re-read under the same latch the plan binds under
		prep.plan, prep.reason = e.db.planSelect(sel)
		if prep.plan == nil && prep.reason == "grouping/aggregates" {
			prep.agg, _ = e.db.planAggregate(sel)
		}
		e.db.mu.RUnlock()
	}
	if e.plans != nil {
		e.plans.put(key, prep, epoch)
	}
	return prep, nil
}
