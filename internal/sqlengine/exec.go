package sqlengine

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// ResultColumn is metadata for one result-set column, surfaced through
// WS-DAIR rowset property documents.
type ResultColumn struct {
	Name  string
	Type  Type
	Table string // originating table, "" for computed columns
}

// ResultSet is a fully materialised query result.
type ResultSet struct {
	Columns []ResultColumn
	Rows    [][]Value
}

// execSelect runs a SELECT against the database. The caller must hold
// d.mu for reading. Long scans observe ctx cancellation at row
// granularity.
func (d *Database) execSelect(ctx context.Context, st *SelectStmt, params []Value) (*ResultSet, error) {
	return d.execSelectEnv(st, &evalEnv{params: params, db: d, ctx: ctx})
}

// execSelectEnv runs a SELECT with an explicit environment; the
// environment's outer chain makes correlated subqueries work.
func (d *Database) execSelectEnv(st *SelectStmt, env *evalEnv) (*ResultSet, error) {
	if env.db == nil {
		env.db = d
	}
	if len(st.Unions) > 0 {
		return d.execUnion(st, env)
	}
	var rows [][]Value

	if st.From == nil {
		rows = [][]Value{nil} // one empty row for expression-only SELECT
	} else {
		base, cols, err := d.bindTableForSelect(st, env)
		if err != nil {
			return nil, err
		}
		env.cols = cols
		rows = base
		for _, j := range st.Joins {
			right, rcols, err := d.bindTable(j.Table, env)
			if err != nil {
				return nil, err
			}
			rows, err = joinRows(rows, right, env, rcols, j)
			if err != nil {
				return nil, err
			}
			env.cols = append(env.cols, rcols...)
		}
	}

	// WHERE.
	if st.Where != nil {
		if containsAggregate(st.Where) {
			return nil, fmt.Errorf("aggregates are not allowed in WHERE")
		}
		filtered := rows[:0:0]
		for _, r := range rows {
			if err := env.checkCtx(); err != nil {
				return nil, err
			}
			env.row = r
			v, err := eval(st.Where, env)
			if err != nil {
				return nil, err
			}
			ok, err := truthy(v)
			if err != nil {
				return nil, err
			}
			if ok {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	grouped := len(st.GroupBy) > 0 || st.Having != nil || selectHasAggregate(st)
	var out *ResultSet
	var orderKeys [][]Value
	var err error
	if grouped {
		out, orderKeys, err = d.execGrouped(st, rows, env)
	} else {
		out, orderKeys, err = d.execProjection(st, rows, env)
	}
	if err != nil {
		return nil, err
	}

	// DISTINCT.
	if st.Distinct {
		seen := map[string]bool{}
		var dr [][]Value
		var dk [][]Value
		for i, r := range out.Rows {
			key := rowKey(r)
			if seen[key] {
				continue
			}
			seen[key] = true
			dr = append(dr, r)
			if orderKeys != nil {
				dk = append(dk, orderKeys[i])
			}
		}
		out.Rows = dr
		if orderKeys != nil {
			orderKeys = dk
		}
	}

	// ORDER BY.
	if len(st.OrderBy) > 0 {
		if err := sortRows(out, orderKeys, st.OrderBy); err != nil {
			return nil, err
		}
	}

	// OFFSET / LIMIT.
	if st.Offset != nil {
		n, err := evalCount(st.Offset, env)
		if err != nil {
			return nil, fmt.Errorf("OFFSET: %w", err)
		}
		if n >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[n:]
		}
	}
	if st.Limit != nil {
		n, err := evalCount(st.Limit, env)
		if err != nil {
			return nil, fmt.Errorf("LIMIT: %w", err)
		}
		if n < len(out.Rows) {
			out.Rows = out.Rows[:n]
		}
	}
	return out, nil
}

// execUnion evaluates a UNION chain: each arm runs independently, the
// results are concatenated left to right, and every non-ALL step
// deduplicates the accumulated rows. ORDER BY on a union may reference
// output columns by name or ordinal only.
func (d *Database) execUnion(st *SelectStmt, env *evalEnv) (*ResultSet, error) {
	first := *st
	first.Unions, first.OrderBy, first.Limit, first.Offset = nil, nil, nil, nil
	out, err := d.execSelectEnv(&first, &evalEnv{params: env.params, db: d, outer: env.outer, ctx: env.ctx})
	if err != nil {
		return nil, err
	}
	for _, part := range st.Unions {
		right, err := d.execSelectEnv(part.Sel, &evalEnv{params: env.params, db: d, outer: env.outer, ctx: env.ctx})
		if err != nil {
			return nil, err
		}
		if len(right.Columns) != len(out.Columns) {
			return nil, fmt.Errorf("UNION arms have %d and %d columns", len(out.Columns), len(right.Columns))
		}
		out.Rows = append(out.Rows, right.Rows...)
		if !part.All {
			seen := map[string]bool{}
			dedup := out.Rows[:0:0]
			for _, r := range out.Rows {
				k := rowKey(r)
				if seen[k] {
					continue
				}
				seen[k] = true
				dedup = append(dedup, r)
			}
			out.Rows = dedup
		}
	}
	if len(st.OrderBy) > 0 {
		keys := make([][]Value, len(out.Rows))
		for i, r := range out.Rows {
			keys[i] = make([]Value, len(st.OrderBy))
			for k, oi := range st.OrderBy {
				pos, ok := ordinalRef(oi.Expr, len(out.Columns))
				if !ok {
					ce, isCol := oi.Expr.(*ColumnExpr)
					if !isCol {
						return nil, fmt.Errorf("ORDER BY on a UNION must use output column names or ordinals")
					}
					pos = -1
					for ci, c := range out.Columns {
						if strings.EqualFold(c.Name, ce.Column) {
							pos = ci
							break
						}
					}
					if pos < 0 {
						return nil, fmt.Errorf("ORDER BY column %q is not in the UNION output", ce.Column)
					}
				}
				keys[i][k] = r[pos]
			}
		}
		if err := sortRows(out, keys, st.OrderBy); err != nil {
			return nil, err
		}
	}
	if st.Offset != nil {
		n, err := evalCount(st.Offset, env)
		if err != nil {
			return nil, fmt.Errorf("OFFSET: %w", err)
		}
		if n >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[n:]
		}
	}
	if st.Limit != nil {
		n, err := evalCount(st.Limit, env)
		if err != nil {
			return nil, fmt.Errorf("LIMIT: %w", err)
		}
		if n < len(out.Rows) {
			out.Rows = out.Rows[:n]
		}
	}
	return out, nil
}

// bindTableForSelect materialises the FROM table's rows, using a hash
// index to narrow the scan when the query has no joins and the WHERE
// clause contains an equality conjunct on an indexed column. The full
// WHERE predicate is still applied afterwards, so index selection is
// purely an access-path optimisation.
func (d *Database) bindTableForSelect(st *SelectStmt, env *evalEnv) ([][]Value, []boundColumn, error) {
	if st.From.Subquery != nil || len(st.Joins) > 0 || st.Where == nil {
		return d.bindTable(st.From, env)
	}
	if _, isView := d.views[strings.ToLower(st.From.Table)]; isView {
		return d.bindTable(st.From, env)
	}
	t, err := d.table(st.From.Table)
	if err != nil {
		return nil, nil, err
	}
	qual := strings.ToLower(st.From.Table)
	if st.From.Alias != "" {
		qual = strings.ToLower(st.From.Alias)
	}
	col, val, ok := indexableConjunct(st.Where, t, qual, env)
	if !ok {
		return d.bindTable(st.From, env)
	}
	var ix *Index
	for _, candidate := range t.indexes {
		if strings.EqualFold(candidate.Column, col) {
			ix = candidate
			break
		}
	}
	if ix == nil {
		return d.bindTable(st.From, env)
	}
	cols := make([]boundColumn, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = boundColumn{qualifier: qual, name: strings.ToLower(c.Name), typ: c.Type, origName: c.Name}
	}
	ids := append([]int64(nil), ix.lookup(val)...)
	sortIDs(ids)
	rows := make([][]Value, 0, len(ids))
	for _, id := range ids {
		if r, ok := t.rows[id]; ok {
			rows = append(rows, r)
		}
	}
	return rows, cols, nil
}

// indexableConjunct walks the AND-tree of a WHERE clause looking for a
// `column = constant` conjunct whose constant can be evaluated without
// row context. It returns the column name and the comparison value.
func indexableConjunct(e Expr, t *Table, qual string, env *evalEnv) (string, Value, bool) {
	switch n := e.(type) {
	case *BinaryExpr:
		if n.Op == "AND" {
			if c, v, ok := indexableConjunct(n.Left, t, qual, env); ok {
				return c, v, ok
			}
			return indexableConjunct(n.Right, t, qual, env)
		}
		if n.Op != "=" {
			return "", Null, false
		}
		if c, v, ok := columnConstPair(n.Left, n.Right, t, qual, env); ok {
			return c, v, ok
		}
		return columnConstPair(n.Right, n.Left, t, qual, env)
	}
	return "", Null, false
}

// columnConstPair matches (ColumnExpr, constant expr) in that order.
func columnConstPair(colSide, constSide Expr, t *Table, qual string, env *evalEnv) (string, Value, bool) {
	ce, ok := colSide.(*ColumnExpr)
	if !ok {
		return "", Null, false
	}
	if ce.Table != "" && strings.ToLower(ce.Table) != qual {
		return "", Null, false
	}
	ci := t.ColumnIndex(ce.Column)
	if ci < 0 {
		return "", Null, false
	}
	switch constSide.(type) {
	case *LiteralExpr, *ParamExpr:
	default:
		return "", Null, false
	}
	v, err := eval(constSide, &evalEnv{params: env.params})
	if err != nil || v.IsNull() {
		return "", Null, false
	}
	// Coerce to the column type so the index group key matches the
	// stored representation (e.g. literal 5 against a DOUBLE column).
	cv, err := v.Coerce(t.Columns[ci].Type)
	if err != nil {
		return "", Null, false
	}
	return t.Columns[ci].Name, cv, true
}

// bindTable materialises a table's rows and column bindings under an
// optional alias. Derived tables (FROM (SELECT ...) alias) evaluate
// their subquery with the caller's environment as outer scope.
func (d *Database) bindTable(tr *TableRef, env *evalEnv) ([][]Value, []boundColumn, error) {
	if tr.Subquery != nil {
		set, err := d.execSelectEnv(tr.Subquery, &evalEnv{params: env.params, db: d, outer: env.outer, ctx: env.ctx})
		if err != nil {
			return nil, nil, err
		}
		qual := strings.ToLower(tr.Alias)
		cols := make([]boundColumn, len(set.Columns))
		for i, c := range set.Columns {
			cols[i] = boundColumn{qualifier: qual, name: strings.ToLower(c.Name), typ: c.Type, origName: c.Name}
		}
		return set.Rows, cols, nil
	}
	// A view expands into its stored SELECT, evaluated as a derived
	// table whose qualifier is the view name (or its alias).
	if v, ok := d.views[strings.ToLower(tr.Table)]; ok {
		expanded := &TableRef{Subquery: v.Select, Alias: tr.Alias}
		if expanded.Alias == "" {
			expanded.Alias = v.Name
		}
		return d.bindTable(expanded, env)
	}
	t, err := d.table(tr.Table)
	if err != nil {
		return nil, nil, err
	}
	qual := strings.ToLower(tr.Table)
	if tr.Alias != "" {
		qual = strings.ToLower(tr.Alias)
	}
	cols := make([]boundColumn, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = boundColumn{
			qualifier: qual,
			name:      strings.ToLower(c.Name),
			typ:       c.Type,
			origName:  c.Name,
		}
	}
	rows := make([][]Value, 0, len(t.order))
	for _, id := range t.scan() {
		rows = append(rows, t.rows[id])
	}
	return rows, cols, nil
}

// joinRows joins the accumulated left rows with the right table's
// rows. env.cols currently describes only the left side; the ON
// expression is evaluated against left+right. When the ON carries a
// hashable equi-join conjunct the hash fast path (join.go) runs;
// otherwise — or when the fast path bails on a hash-defeating value —
// the nested loop below is the reference implementation.
func joinRows(left [][]Value, right [][]Value, env *evalEnv, rcols []boundColumn, j JoinClause) ([][]Value, error) {
	joinEnv := &evalEnv{
		cols:   append(append([]boundColumn{}, env.cols...), rcols...),
		params: env.params,
		db:     env.db,
		outer:  env.outer,
		ctx:    env.ctx,
	}
	leftWidth := len(env.cols)
	if !disableHashJoin && j.On != nil {
		if k, ok := findEquiConjunct(j.On, joinEnv, leftWidth); ok {
			out, ok, err := hashJoinRows(left, right, joinEnv, leftWidth, rcols, j, k)
			if err != nil {
				return nil, err
			}
			if ok {
				return out, nil
			}
		}
	}
	return nestedLoopJoin(left, right, joinEnv, leftWidth, rcols, j)
}

// nestedLoopJoin is the reference join implementation: O(L×R) pairs with
// the full ON expression evaluated per pair. Both the interpreter and
// compiled plans fall back to it when the hash path bails.
func nestedLoopJoin(left, right [][]Value, joinEnv *evalEnv, leftWidth int, rcols []boundColumn, j JoinClause) ([][]Value, error) {
	var out [][]Value
	slab := newRowSlab(leftWidth + len(rcols))
	scratch := make([]Value, leftWidth+len(rcols))
	nullRight := make([]Value, len(rcols))
	for i := range nullRight {
		nullRight[i] = Null
	}
	match := func(l, r []Value) (bool, error) {
		if j.On == nil {
			return true, nil
		}
		copy(scratch, l)
		copy(scratch[len(l):], r)
		joinEnv.row = scratch
		v, err := eval(j.On, joinEnv)
		if err != nil {
			return false, err
		}
		return truthy(v)
	}
	combine := func(l, r []Value) []Value {
		row := slab.next()
		copy(row, l)
		copy(row[len(l):], r)
		return row
	}
	for _, l := range left {
		if err := joinEnv.checkCtx(); err != nil {
			return nil, err
		}
		matched := false
		for _, r := range right {
			ok, err := match(l, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			matched = true
			out = append(out, combine(l, r))
		}
		if !matched && j.Kind == JoinLeft {
			out = append(out, combine(l, nullRight))
		}
	}
	if j.Kind == JoinRight {
		// Preserve right rows with no left match; the left side of the
		// combined row is NULL. Column order stays left-then-right.
		nullLeft := make([]Value, leftWidth)
		for i := range nullLeft {
			nullLeft[i] = Null
		}
		for _, r := range right {
			matched := false
			for _, l := range left {
				ok, err := match(l, r)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					break
				}
			}
			if !matched {
				out = append(out, combine(nullLeft, r))
			}
		}
	}
	return out, nil
}

func selectHasAggregate(st *SelectStmt) bool {
	for _, it := range st.Items {
		if it.Expr != nil && containsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// execProjection projects the select list over plain (non-grouped)
// rows. It also computes ORDER BY keys per row so sorting can reference
// columns not in the output.
func (d *Database) execProjection(st *SelectStmt, rows [][]Value, env *evalEnv) (*ResultSet, [][]Value, error) {
	cols, exprs, err := expandSelectItems(st, env)
	if err != nil {
		return nil, nil, err
	}
	out := &ResultSet{Columns: cols}
	var orderKeys [][]Value
	slab := newRowSlab(len(exprs))
	// The alias map only feeds ORDER BY resolution; skip building it
	// (one map per row) when there is nothing to sort.
	needAliases := len(st.OrderBy) > 0
	for _, r := range rows {
		if err := env.checkCtx(); err != nil {
			return nil, nil, err
		}
		env.row = r
		vals := slab.next()
		var aliases map[string]Value
		if needAliases {
			aliases = make(map[string]Value, len(exprs))
		}
		for i, e := range exprs {
			v, err := eval(e, env)
			if err != nil {
				return nil, nil, err
			}
			vals[i] = v
			if needAliases {
				aliases[strings.ToLower(cols[i].Name)] = v
			}
		}
		out.Rows = append(out.Rows, vals)
		if needAliases {
			env.aliases = aliases
			keys, err := evalOrderKeys(st.OrderBy, env, vals)
			env.aliases = nil
			if err != nil {
				return nil, nil, err
			}
			orderKeys = append(orderKeys, keys)
		}
	}
	return out, orderKeys, nil
}

// expandSelectItems resolves * and computes output column metadata and
// the expression list to evaluate per row.
func expandSelectItems(st *SelectStmt, env *evalEnv) ([]ResultColumn, []Expr, error) {
	var cols []ResultColumn
	var exprs []Expr
	for _, it := range st.Items {
		if it.Star {
			if len(env.cols) == 0 {
				return nil, nil, fmt.Errorf("SELECT * requires a FROM clause")
			}
			want := strings.ToLower(it.StarTable)
			found := false
			for _, bc := range env.cols {
				if want != "" && bc.qualifier != want {
					continue
				}
				found = true
				cols = append(cols, ResultColumn{Name: bc.origName, Type: bc.typ, Table: bc.qualifier})
				exprs = append(exprs, &ColumnExpr{Table: bc.qualifier, Column: bc.name})
			}
			if !found {
				return nil, nil, fmt.Errorf("unknown table %q in select list", it.StarTable)
			}
			continue
		}
		name := it.Alias
		typ := TypeNull
		table := ""
		if name == "" {
			if ce, ok := it.Expr.(*ColumnExpr); ok {
				name = ce.Column
			} else {
				name = fmt.Sprintf("column%d", len(cols)+1)
			}
		}
		if ce, ok := it.Expr.(*ColumnExpr); ok {
			if i, err := env.resolve(ce.Table, ce.Column); err == nil {
				typ = env.cols[i].typ
				table = env.cols[i].qualifier
				if it.Alias == "" {
					name = env.cols[i].origName
				}
			}
		}
		cols = append(cols, ResultColumn{Name: name, Type: typ, Table: table})
		exprs = append(exprs, it.Expr)
	}
	if len(cols) == 0 {
		return nil, nil, fmt.Errorf("empty select list")
	}
	return cols, exprs, nil
}

// execGrouped handles GROUP BY / aggregate queries.
func (d *Database) execGrouped(st *SelectStmt, rows [][]Value, env *evalEnv) (*ResultSet, [][]Value, error) {
	cols, exprs, err := expandSelectItems(st, env)
	if err != nil {
		return nil, nil, err
	}
	// Partition rows into groups.
	type group struct {
		key  string
		rows [][]Value
	}
	var groups []*group
	if len(st.GroupBy) == 0 {
		groups = []*group{{rows: rows}} // single implicit group (may be empty)
	} else {
		byKey := map[string]*group{}
		for _, r := range rows {
			if err := env.checkCtx(); err != nil {
				return nil, nil, err
			}
			env.row = r
			var kb strings.Builder
			for _, ge := range st.GroupBy {
				v, err := eval(ge, env)
				if err != nil {
					return nil, nil, err
				}
				kb.WriteString(v.groupKey())
				kb.WriteByte('\x01')
			}
			k := kb.String()
			g, ok := byKey[k]
			if !ok {
				g = &group{key: k}
				byKey[k] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, r)
		}
	}

	out := &ResultSet{Columns: cols}
	var orderKeys [][]Value
	for _, g := range groups {
		// HAVING.
		if st.Having != nil {
			v, err := evalGrouped(st.Having, g.rows, env)
			if err != nil {
				return nil, nil, err
			}
			ok, err := truthy(v)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				continue
			}
		}
		vals := make([]Value, len(exprs))
		aliases := map[string]Value{}
		for i, e := range exprs {
			v, err := evalGrouped(e, g.rows, env)
			if err != nil {
				return nil, nil, err
			}
			vals[i] = v
			aliases[strings.ToLower(cols[i].Name)] = v
		}
		out.Rows = append(out.Rows, vals)
		if len(st.OrderBy) > 0 {
			keys := make([]Value, len(st.OrderBy))
			for i, oi := range st.OrderBy {
				if ord, ok := ordinalRef(oi.Expr, len(vals)); ok {
					keys[i] = vals[ord]
					continue
				}
				env.aliases = aliases
				v, err := evalGrouped(oi.Expr, g.rows, env)
				env.aliases = nil
				if err != nil {
					return nil, nil, err
				}
				keys[i] = v
			}
			orderKeys = append(orderKeys, keys)
		}
	}
	return out, orderKeys, nil
}

// evalGrouped evaluates an expression in grouped context: aggregate
// calls consume the group's rows; everything else evaluates against the
// group's first row (or NULL for an empty implicit group).
func evalGrouped(e Expr, group [][]Value, env *evalEnv) (Value, error) {
	switch n := e.(type) {
	case *FuncExpr:
		if aggregateNames[n.Name] {
			return evalAggregate(n, group, env)
		}
	case *BinaryExpr:
		l, err := evalGrouped(n.Left, group, env)
		if err != nil {
			return Null, err
		}
		r, err := evalGrouped(n.Right, group, env)
		if err != nil {
			return Null, err
		}
		return evalBinary(&BinaryExpr{Op: n.Op, Left: &LiteralExpr{Value: l}, Right: &LiteralExpr{Value: r}}, env)
	case *UnaryExpr:
		v, err := evalGrouped(n.Operand, group, env)
		if err != nil {
			return Null, err
		}
		return eval(&UnaryExpr{Op: n.Op, Operand: &LiteralExpr{Value: v}}, env)
	case *CastExpr:
		v, err := evalGrouped(n.Operand, group, env)
		if err != nil {
			return Null, err
		}
		return v.Coerce(n.Target)
	}
	// Non-aggregate leaf: evaluate against the first group row.
	if len(group) > 0 {
		env.row = group[0]
	} else {
		env.row = nil
	}
	return eval(e, env)
}

// evalAggregate computes one aggregate over a group.
func evalAggregate(n *FuncExpr, group [][]Value, env *evalEnv) (Value, error) {
	if n.Star {
		if n.Name != "COUNT" {
			return Null, fmt.Errorf("%s(*) is not valid", n.Name)
		}
		return NewBigint(int64(len(group))), nil
	}
	if len(n.Args) != 1 {
		return Null, fmt.Errorf("%s expects exactly one argument", n.Name)
	}
	var vals []Value
	seen := map[string]bool{}
	for _, r := range group {
		env.row = r
		v, err := eval(n.Args[0], env)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		if n.Distinct {
			k := v.groupKey()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch n.Name {
	case "COUNT":
		return NewBigint(int64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := Compare(v, best)
			if err != nil {
				return Null, err
			}
			if (n.Name == "MIN" && c < 0) || (n.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null, nil
		}
		allInt := true
		var sumI int64
		var sumF float64
		for _, v := range vals {
			if !v.Type.isNumeric() {
				return Null, fmt.Errorf("%s requires numeric values, got %s", n.Name, v.Type)
			}
			if v.Type == TypeDouble {
				allInt = false
			}
			sumI += v.I
			sumF += v.asFloat()
		}
		if n.Name == "AVG" {
			return NewDouble(sumF / float64(len(vals))), nil
		}
		if allInt {
			return NewBigint(sumI), nil
		}
		return NewDouble(sumF), nil
	}
	return Null, fmt.Errorf("unknown aggregate %s", n.Name)
}

// evalOrderKeys computes ORDER BY key values for one output row in
// non-grouped context. Ordinal references (ORDER BY 2) index the
// projected values.
func evalOrderKeys(items []OrderItem, env *evalEnv, projected []Value) ([]Value, error) {
	keys := make([]Value, len(items))
	for i, oi := range items {
		if ord, ok := ordinalRef(oi.Expr, len(projected)); ok {
			keys[i] = projected[ord]
			continue
		}
		v, err := eval(oi.Expr, env)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// ordinalRef detects ORDER BY <integer literal> and returns the 0-based
// projection index.
func ordinalRef(e Expr, n int) (int, bool) {
	lit, ok := e.(*LiteralExpr)
	if !ok || (lit.Value.Type != TypeInteger && lit.Value.Type != TypeBigint) {
		return 0, false
	}
	i := int(lit.Value.I)
	if i < 1 || i > n {
		return 0, false
	}
	return i - 1, true
}

// sortRows sorts result rows by the precomputed keys.
func sortRows(rs *ResultSet, keys [][]Value, items []OrderItem) error {
	if len(keys) != len(rs.Rows) {
		return fmt.Errorf("internal: order keys mismatch (%d keys, %d rows)", len(keys), len(rs.Rows))
	}
	idx := make([]int, len(rs.Rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		for k, it := range items {
			c, err := Compare(keys[idx[a]][k], keys[idx[b]][k])
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if it.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	newRows := make([][]Value, len(rs.Rows))
	for i, j := range idx {
		newRows[i] = rs.Rows[j]
	}
	rs.Rows = newRows
	return nil
}

func evalCount(e Expr, env *evalEnv) (int, error) {
	v, err := eval(e, env)
	if err != nil {
		return 0, err
	}
	iv, err := v.Coerce(TypeBigint)
	if err != nil {
		return 0, err
	}
	if iv.IsNull() || iv.I < 0 {
		return 0, fmt.Errorf("expected a non-negative integer")
	}
	return int(iv.I), nil
}

func rowKey(r []Value) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.groupKey())
		b.WriteByte('\x01')
	}
	return b.String()
}

// evalCase handles CASE expressions (both simple and searched forms).
func evalCase(n *CaseExpr, env *evalEnv) (Value, error) {
	if n.Operand != nil {
		op, err := eval(n.Operand, env)
		if err != nil {
			return Null, err
		}
		for _, w := range n.Whens {
			wv, err := eval(w.When, env)
			if err != nil {
				return Null, err
			}
			if !op.IsNull() && !wv.IsNull() {
				c, err := Compare(op, wv)
				if err != nil {
					return Null, err
				}
				if c == 0 {
					return eval(w.Then, env)
				}
			}
		}
	} else {
		for _, w := range n.Whens {
			wv, err := eval(w.When, env)
			if err != nil {
				return Null, err
			}
			ok, err := truthy(wv)
			if err != nil {
				return Null, err
			}
			if ok {
				return eval(w.Then, env)
			}
		}
	}
	if n.Else != nil {
		return eval(n.Else, env)
	}
	return Null, nil
}
