package sqlengine

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, _, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestLexBasics(t *testing.T) {
	toks, err := lex(`SELECT a, 'it''s', 3.14, ? FROM t -- comment
WHERE x <> 2 /* block */ AND y >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "it's") {
		t.Errorf("quoted string mishandled: %q", joined)
	}
	if !strings.Contains(joined, "<>") {
		t.Errorf("two-char operator mishandled: %q", joined)
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", `"unterminated`, "/* unterminated", "a @ b"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q): expected error", bad)
		}
	}
}

func TestLexDelimitedIdentifier(t *testing.T) {
	toks, err := lex(`SELECT "order" FROM "select"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokIdent || toks[1].text != "order" {
		t.Errorf("delimited ident = %+v", toks[1])
	}
	if toks[3].kind != tokIdent || toks[3].text != "select" {
		t.Errorf("delimited keyword-ident = %+v", toks[3])
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE IF NOT EXISTS emp (
		id INTEGER PRIMARY KEY,
		name VARCHAR(64) NOT NULL,
		dept VARCHAR(32) DEFAULT 'eng',
		salary DOUBLE,
		active BOOLEAN UNIQUE
	)`).(*CreateTableStmt)
	if !st.IfNotExists || st.Name != "emp" || len(st.Columns) != 5 {
		t.Fatalf("stmt = %+v", st)
	}
	if !st.Columns[0].PrimaryKey || !st.Columns[1].NotNull || !st.Columns[4].Unique {
		t.Fatalf("constraints = %+v", st.Columns)
	}
	if st.Columns[2].Default == nil {
		t.Fatal("default missing")
	}
	if len(st.PrimaryKey) != 1 || st.PrimaryKey[0] != "id" {
		t.Fatalf("pk = %v", st.PrimaryKey)
	}
}

func TestParseTablePrimaryKeyClause(t *testing.T) {
	st := mustParse(t, `CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))`).(*CreateTableStmt)
	if len(st.PrimaryKey) != 2 {
		t.Fatalf("pk = %v", st.PrimaryKey)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, `INSERT INTO emp (id, name) VALUES (1, 'ann'), (2, ?)`).(*InsertStmt)
	if st.Table != "emp" || len(st.Columns) != 2 || len(st.Rows) != 2 {
		t.Fatalf("stmt = %+v", st)
	}
	if _, ok := st.Rows[1][1].(*ParamExpr); !ok {
		t.Fatalf("expected param, got %T", st.Rows[1][1])
	}
}

func TestParseSelectFull(t *testing.T) {
	st := mustParse(t, `SELECT DISTINCT d.name AS dept, COUNT(*) cnt, AVG(e.salary)
		FROM emp e
		INNER JOIN dept d ON e.dept_id = d.id
		LEFT JOIN loc ON d.loc_id = loc.id
		WHERE e.salary > 100 AND e.name LIKE 'A%'
		GROUP BY d.name
		HAVING COUNT(*) >= 2
		ORDER BY cnt DESC, dept
		LIMIT 10 OFFSET 5`).(*SelectStmt)
	if !st.Distinct || len(st.Items) != 3 {
		t.Fatalf("items = %+v", st.Items)
	}
	if st.Items[0].Alias != "dept" || st.Items[1].Alias != "cnt" {
		t.Fatalf("aliases = %+v", st.Items)
	}
	if st.From.Alias != "e" || len(st.Joins) != 2 {
		t.Fatalf("from/joins = %+v %+v", st.From, st.Joins)
	}
	if st.Joins[0].Kind != JoinInner || st.Joins[1].Kind != JoinLeft {
		t.Fatalf("join kinds = %+v", st.Joins)
	}
	if st.Where == nil || len(st.GroupBy) != 1 || st.Having == nil {
		t.Fatal("missing clauses")
	}
	if len(st.OrderBy) != 2 || !st.OrderBy[0].Desc || st.OrderBy[1].Desc {
		t.Fatalf("order = %+v", st.OrderBy)
	}
	if st.Limit == nil || st.Offset == nil {
		t.Fatal("limit/offset missing")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	st := mustParse(t, `SELECT 1 + 2 * 3`).(*SelectStmt)
	b := st.Items[0].Expr.(*BinaryExpr)
	if b.Op != "+" {
		t.Fatalf("top op = %s", b.Op)
	}
	if inner, ok := b.Right.(*BinaryExpr); !ok || inner.Op != "*" {
		t.Fatalf("right = %+v", b.Right)
	}

	st = mustParse(t, `SELECT a OR b AND c`).(*SelectStmt)
	ob := st.Items[0].Expr.(*BinaryExpr)
	if ob.Op != "OR" {
		t.Fatalf("top = %s", ob.Op)
	}
	if inner, ok := ob.Right.(*BinaryExpr); !ok || inner.Op != "AND" {
		t.Fatalf("AND should bind tighter: %+v", ob.Right)
	}
}

func TestParseParenOverride(t *testing.T) {
	st := mustParse(t, `SELECT (1 + 2) * 3`).(*SelectStmt)
	b := st.Items[0].Expr.(*BinaryExpr)
	if b.Op != "*" {
		t.Fatalf("top op = %s", b.Op)
	}
}

func TestParseSpecialPredicates(t *testing.T) {
	st := mustParse(t, `SELECT * FROM t WHERE a IS NOT NULL AND b IN (1,2,3)
		AND c NOT BETWEEN 1 AND 5 AND d NOT LIKE 'x%' AND e NOT IN (7)`).(*SelectStmt)
	if st.Where == nil {
		t.Fatal("no where")
	}
	// Smoke: just ensure the tree contains the node kinds.
	var kinds []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *BinaryExpr:
			kinds = append(kinds, n.Op)
			walk(n.Left)
			walk(n.Right)
		case *UnaryExpr:
			kinds = append(kinds, n.Op)
			walk(n.Operand)
		case *IsNullExpr:
			kinds = append(kinds, "ISNULL")
		case *InExpr:
			if n.Negate {
				kinds = append(kinds, "NOTIN")
			} else {
				kinds = append(kinds, "IN")
			}
		case *BetweenExpr:
			kinds = append(kinds, "BETWEEN")
		}
	}
	walk(st.Where)
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"ISNULL", "IN", "BETWEEN", "NOT", "NOTIN"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in %s", want, joined)
		}
	}
}

func TestParseCaseCast(t *testing.T) {
	st := mustParse(t, `SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END,
		CASE b WHEN 1 THEN 'one' END, CAST(c AS VARCHAR(10)) FROM t`).(*SelectStmt)
	if _, ok := st.Items[0].Expr.(*CaseExpr); !ok {
		t.Fatalf("item0 = %T", st.Items[0].Expr)
	}
	c1 := st.Items[1].Expr.(*CaseExpr)
	if c1.Operand == nil {
		t.Fatal("simple CASE operand missing")
	}
	cast := st.Items[2].Expr.(*CastExpr)
	if cast.Target != TypeVarchar {
		t.Fatalf("cast target = %v", cast.Target)
	}
}

func TestParseParamCounting(t *testing.T) {
	_, n, err := Parse(`SELECT * FROM t WHERE a = ? AND b = ? AND c IN (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("params = %d", n)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	u := mustParse(t, `UPDATE t SET a = a + 1, b = 'x' WHERE id = 3`).(*UpdateStmt)
	if len(u.Set) != 2 || u.Where == nil {
		t.Fatalf("update = %+v", u)
	}
	d := mustParse(t, `DELETE FROM t`).(*DeleteStmt)
	if d.Where != nil {
		t.Fatal("unexpected where")
	}
}

func TestParseIndexStatements(t *testing.T) {
	ci := mustParse(t, `CREATE UNIQUE INDEX idx_name ON emp (name)`).(*CreateIndexStmt)
	if !ci.Unique || ci.Table != "emp" || ci.Column != "name" {
		t.Fatalf("ci = %+v", ci)
	}
	di := mustParse(t, `DROP INDEX idx_name`).(*DropIndexStmt)
	if di.Name != "idx_name" {
		t.Fatalf("di = %+v", di)
	}
}

func TestParseTxnStatements(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN TRANSACTION").(*BeginStmt); !ok {
		t.Fatal("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT").(*CommitStmt); !ok {
		t.Fatal("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK;").(*RollbackStmt); !ok {
		t.Fatal("ROLLBACK")
	}
}

func TestParseStarVariants(t *testing.T) {
	st := mustParse(t, `SELECT *, t.* FROM t`).(*SelectStmt)
	if !st.Items[0].Star || st.Items[0].StarTable != "" {
		t.Fatalf("item0 = %+v", st.Items[0])
	}
	if !st.Items[1].Star || st.Items[1].StarTable != "t" {
		t.Fatalf("item1 = %+v", st.Items[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"INSERT INTO t",
		"INSERT INTO t VALUES (1",
		"UPDATE t WHERE x = 1",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a FOO)",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t extra garbage tokens (",
		"DROP",
		"CASE WHEN 1 THEN 2 END",
		"SELECT CASE END",
	}
	for _, sql := range bad {
		if _, _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}

func TestParseNumberLiterals(t *testing.T) {
	st := mustParse(t, `SELECT 1, 2147483648, 3.14, 1e3, .5`).(*SelectStmt)
	want := []Type{TypeInteger, TypeBigint, TypeDouble, TypeDouble, TypeDouble}
	for i, it := range st.Items {
		lit := it.Expr.(*LiteralExpr)
		if lit.Value.Type != want[i] {
			t.Errorf("item %d type = %v, want %v", i, lit.Value.Type, want[i])
		}
	}
}

func TestContainsAggregate(t *testing.T) {
	st := mustParse(t, `SELECT a + SUM(b) FROM t`).(*SelectStmt)
	if !containsAggregate(st.Items[0].Expr) {
		t.Error("nested aggregate not detected")
	}
	st2 := mustParse(t, `SELECT UPPER(a) FROM t`).(*SelectStmt)
	if containsAggregate(st2.Items[0].Expr) {
		t.Error("scalar function misdetected as aggregate")
	}
}
