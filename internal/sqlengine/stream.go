package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
)

// errStalePlan signals that a compiled plan's schema epoch no longer
// matches the catalog; the caller re-executes through the interpreter.
var errStalePlan = errors.New("sqlengine: compiled plan is stale")

// RowStream is a pull-based iterator over the rows of one SELECT
// execution: the engine half of the streaming delivery pipeline. Rows
// are produced by a goroutine that holds the statement's read locks for
// the duration of production and flow through a bounded channel, so a
// consumer that falls behind applies backpressure to the scan instead
// of forcing the whole result into memory.
//
// A RowStream must be drained (Next until io.EOF) or Closed; otherwise
// the producer goroutine and the session's shared locks leak. The
// owning Session must not execute further statements until the stream
// has finished.
type RowStream struct {
	cols      []ResultColumn
	streaming bool

	// Streaming path.
	ch     chan []Value
	cancel context.CancelFunc
	done   chan struct{}
	res    *Result
	err    error

	// Materialised fallback path.
	rows [][]Value
	pos  int

	closeOnce sync.Once
}

// streamBufferRows is the capacity of the producer/consumer channel:
// deep enough to decouple scan bursts from consumer scheduling, small
// enough that an abandoned consumer strands little work.
const streamBufferRows = 64

// Columns returns the result column metadata, known before the first
// row is produced.
func (r *RowStream) Columns() []ResultColumn { return r.cols }

// Streaming reports whether rows are produced incrementally; false
// means the statement was not streamable and the result was
// materialised up front (the stream then just replays it).
func (r *RowStream) Streaming() bool { return r.streaming }

// Next returns the next row, or io.EOF after the last one. A
// production error (cancellation, per-row evaluation failure) is
// returned in place of io.EOF once the produced prefix is exhausted.
func (r *RowStream) Next() ([]Value, error) {
	if !r.streaming {
		if r.pos >= len(r.rows) {
			return nil, io.EOF
		}
		row := r.rows[r.pos]
		r.pos++
		return row, nil
	}
	row, ok := <-r.ch
	if ok {
		return row, nil
	}
	<-r.done
	if r.err != nil {
		return nil, r.err
	}
	return nil, io.EOF
}

// Result blocks until production has finished and returns the
// statement outcome — the SQL communication area with the final
// RowsFetched count, exactly as the materialised Execute would have
// reported it.
func (r *RowStream) Result() (*Result, error) {
	if !r.streaming {
		return r.res, r.err
	}
	<-r.done
	return r.res, r.err
}

// Close abandons the stream: the producer is cancelled, its locks are
// released, and any undelivered rows are discarded. Safe to call more
// than once and after io.EOF.
func (r *RowStream) Close() error {
	r.closeOnce.Do(func() {
		if !r.streaming {
			r.pos = len(r.rows)
			return
		}
		r.cancel()
		// Drain so a producer blocked on send can observe cancellation
		// and run its unlock epilogue.
		for range r.ch {
		}
		<-r.done
	})
	return nil
}

// ExecuteStream parses and runs one statement, delivering query rows
// incrementally. Plain single-table SELECTs (no grouping, aggregates,
// DISTINCT, ORDER BY, UNION, joins or derived tables, outside an
// explicit transaction) stream row by row while the scan is still
// running; everything else executes exactly as ExecuteContext and is
// replayed from the materialised result, so callers see one uniform
// interface. ctx governs production, not just setup: cancelling it
// aborts the scan with a *CancelledError.
func (s *Session) ExecuteStream(ctx context.Context, sql string, params ...Value) (*RowStream, error) {
	prep, err := s.engine.Prepare(sql)
	if err != nil {
		return nil, err
	}
	if _, isExplain := prep.stmt.(*ExplainStmt); !isExplain && prep.nparams > len(params) {
		return nil, fmt.Errorf("statement requires %d parameters, got %d", prep.nparams, len(params))
	}
	// Compiled-plan streaming: join-free plans whose ORDER BY (if any)
	// the access path already satisfies can deliver ordered rows
	// incrementally. A plan gone stale under DDL falls through to the
	// interpreted paths below.
	if !disablePlanner && prep.plan != nil && prep.plan.streamable() && !s.inTxn && !s.aborted {
		rs, err := s.startPlanStream(ctx, prep.plan, params)
		if err == nil {
			return rs, nil
		}
		if err != errStalePlan {
			return nil, err
		}
	}
	if sel, ok := s.streamableSelect(prep.stmt); ok {
		rs, err := s.startStream(ctx, sel, params)
		if err == nil {
			return rs, nil
		}
		// Setup failed before any row was produced (bad table, bad
		// LIMIT expression, lock timeout): surface it like Execute.
		return nil, err
	}
	res, err := s.ExecutePrepared(ctx, prep, params...)
	if err != nil {
		return nil, err
	}
	rs := &RowStream{res: res}
	if res.Set != nil {
		rs.cols = res.Set.Columns
		rs.rows = res.Set.Rows
	}
	return rs, nil
}

// streamableSelect reports whether the statement is a SELECT the
// incremental producer can run: one base table, optional WHERE and
// LIMIT/OFFSET, no pipeline breakers (anything that needs the full row
// set before the first output row — sorting, grouping, aggregates,
// DISTINCT, UNION — and no joins or derived tables).
func (s *Session) streamableSelect(st Statement) (*SelectStmt, bool) {
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, false
	}
	if s.inTxn || s.aborted {
		return nil, false
	}
	if len(sel.Unions) > 0 || sel.Distinct || len(sel.GroupBy) > 0 || sel.Having != nil ||
		len(sel.OrderBy) > 0 || len(sel.Joins) > 0 || selectHasAggregate(sel) {
		return nil, false
	}
	if sel.From == nil || sel.From.Subquery != nil {
		return nil, false
	}
	db := s.engine.db
	db.mu.RLock()
	_, isView := db.views[strings.ToLower(sel.From.Table)]
	db.mu.RUnlock()
	return sel, !isView
}

// startStream binds the statement synchronously — so schema errors and
// lock timeouts surface to the caller, not mid-stream — and spawns the
// producer goroutine, which holds the session's read locks and the
// database read latch until every row is delivered or the stream is
// cancelled.
func (s *Session) startStream(ctx context.Context, sel *SelectStmt, params []Value) (*RowStream, error) {
	db := s.engine.db
	if err := s.lockForRead(tablesOfSelect(sel)); err != nil {
		s.engine.locks.releaseAll(s)
		return nil, err
	}
	prodCtx, cancel := context.WithCancel(ctx)
	env := &evalEnv{params: params, db: db, ctx: prodCtx}

	db.mu.RLock()
	fail := func(err error) (*RowStream, error) {
		db.mu.RUnlock()
		s.engine.locks.releaseAll(s)
		cancel()
		return nil, err
	}
	base, cols, err := db.bindTableForSelect(sel, env)
	if err != nil {
		return fail(err)
	}
	env.cols = cols
	if sel.Where != nil && containsAggregate(sel.Where) {
		return fail(fmt.Errorf("aggregates are not allowed in WHERE"))
	}
	outCols, exprs, err := expandSelectItems(sel, env)
	if err != nil {
		return fail(err)
	}
	// LIMIT/OFFSET are row-independent expressions: evaluate once up
	// front so the producer can stop early and skip cheaply.
	offset, limit := 0, -1
	if sel.Offset != nil {
		if offset, err = evalCount(sel.Offset, env); err != nil {
			return fail(fmt.Errorf("OFFSET: %w", err))
		}
	}
	if sel.Limit != nil {
		if limit, err = evalCount(sel.Limit, env); err != nil {
			return fail(fmt.Errorf("LIMIT: %w", err))
		}
	}

	rs := &RowStream{
		cols:      outCols,
		streaming: true,
		ch:        make(chan []Value, streamBufferRows),
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	go s.produce(rs, prodCtx, sel, env, base, exprs, offset, limit)
	return rs, nil
}

// produce is the streaming scan body: WHERE filter, projection and
// OFFSET/LIMIT applied row by row, emitting into the bounded channel.
// It mirrors execSelectEnv's semantics exactly — including projecting
// OFFSET-skipped rows, so per-row evaluation errors surface for the
// same inputs — and runs the implicit auto-commit epilogue when done.
func (s *Session) produce(rs *RowStream, ctx context.Context, sel *SelectStmt, env *evalEnv,
	base [][]Value, exprs []Expr, offset, limit int) {
	db := s.engine.db
	emitted := 0
	err := func() error {
		slab := newRowSlab(len(exprs))
		for _, r := range base {
			if limit >= 0 && emitted >= limit {
				break
			}
			if err := env.checkCtx(); err != nil {
				return err
			}
			env.row = r
			if sel.Where != nil {
				v, err := eval(sel.Where, env)
				if err != nil {
					return err
				}
				ok, err := truthy(v)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			vals := slab.next()
			for i, e := range exprs {
				v, err := eval(e, env)
				if err != nil {
					return err
				}
				vals[i] = v
			}
			if offset > 0 {
				offset--
				continue
			}
			select {
			case rs.ch <- vals:
				emitted++
			case <-ctx.Done():
				return &CancelledError{Err: ctx.Err()}
			}
		}
		return nil
	}()
	db.mu.RUnlock()
	// Implicit auto-commit epilogue: a SELECT has no undo log, so
	// success and failure both reduce to releasing the read locks.
	s.undo = nil
	s.engine.locks.releaseAll(s)
	if err != nil {
		rs.res, rs.err = errResult(stateFor(err), err), err
	} else {
		ca := SQLCA{SQLState: StateSuccess, UpdateCount: -1, RowsFetched: emitted}
		if emitted == 0 {
			ca.SQLState = StateNoData
			ca.SQLCode = 100
		}
		rs.res = &Result{UpdateCount: -1, CA: ca}
	}
	close(rs.ch)
	close(rs.done)
}

// startPlanStream is startStream for compiled plans: the access path
// (point, range or ordered scan) gathers the base rows under the read
// latch, then the producer streams the plan's filter and projection row
// by row. The schema epoch is re-validated after the latch is taken;
// errStalePlan sends the caller back to the interpreted paths.
func (s *Session) startPlanStream(ctx context.Context, p *selectPlan, params []Value) (*RowStream, error) {
	db := s.engine.db
	if err := s.lockForRead(tablesOfSelect(p.sel)); err != nil {
		s.engine.locks.releaseAll(s)
		return nil, err
	}
	prodCtx, cancel := context.WithCancel(ctx)

	db.mu.RLock()
	fail := func(err error) (*RowStream, error) {
		db.mu.RUnlock()
		s.engine.locks.releaseAll(s)
		cancel()
		return nil, err
	}
	if p.epoch != db.epoch {
		return fail(errStalePlan)
	}
	env := &evalEnv{cols: p.cols, params: params, db: db, ctx: prodCtx}
	offset, limit := 0, -1
	var err error
	if p.sel.Offset != nil {
		if offset, err = evalCount(p.sel.Offset, env); err != nil {
			return fail(fmt.Errorf("OFFSET: %w", err))
		}
	}
	if p.sel.Limit != nil {
		if limit, err = evalCount(p.sel.Limit, env); err != nil {
			return fail(fmt.Errorf("LIMIT: %w", err))
		}
	}

	rs := &RowStream{
		cols:      p.projCols,
		streaming: true,
		ch:        make(chan []Value, streamBufferRows),
		cancel:    cancel,
		done:      make(chan struct{}),
	}

	// Columnar streaming: a vector-annotated plan (always a full scan
	// with no unsatisfied ORDER BY, or it would not be streamable)
	// produces chunk at a time. Bind failure or an unbuildable chunk
	// cache falls through to the row producer.
	if p.vec != nil && db.vectorEnabled() {
		var bp boundVec
		okBind := true
		if p.vec.pred != nil {
			bp, okBind = bindVecPred(p.vec.pred, params, p.t)
		}
		if okBind {
			if tc := p.t.ensureChunks(); tc.ok {
				go s.produceVector(rs, prodCtx, p, env, bp, tc, offset, limit)
				return rs, nil
			}
		}
	}
	go s.producePlan(rs, prodCtx, p, env, p.baseRows(params), offset, limit)
	return rs, nil
}

// produceVector is producePlan over column chunks: zone-map skipping
// and kernel filtering per chunk, survivors projected by columnar
// gather (or row materialisation for computed projections) and emitted
// through the bounded channel with the same OFFSET/LIMIT and
// cancellation semantics as the row producer.
func (s *Session) produceVector(rs *RowStream, ctx context.Context, p *selectPlan, env *evalEnv,
	bp boundVec, tc *tableChunks, offset, limit int) {
	db := s.engine.db
	emitted := 0
	err := func() error {
		slab := newRowSlab(len(p.projExprs))
		var selbuf [chunkRows]int8
	chunks:
		for _, ch := range tc.chunks {
			if limit >= 0 && emitted >= limit {
				break
			}
			if err := ctxCheck(ctx); err != nil {
				return err
			}
			if bp != nil && chunkSkippable(bp, ch) {
				db.vecSkipped.Add(1)
				continue
			}
			db.vecBatches.Add(1)
			sel := selbuf[:ch.n]
			if bp != nil {
				bp.eval(ch, sel)
			} else {
				for i := range sel {
					sel[i] = triT
				}
			}
			for i := 0; i < ch.n; i++ {
				if limit >= 0 && emitted >= limit {
					break chunks
				}
				if sel[i] != triT {
					continue
				}
				vals := slab.next()
				if p.vec.proj != nil {
					for k, ci := range p.vec.proj {
						vals[k] = ch.vecs[ci].value(i)
					}
				} else {
					env.row = p.t.rows[ch.ids[i]]
					for k, e := range p.projExprs {
						v, err := eval(e, env)
						if err != nil {
							return err
						}
						vals[k] = v
					}
				}
				if offset > 0 {
					offset--
					continue
				}
				select {
				case rs.ch <- vals:
					emitted++
				case <-ctx.Done():
					return &CancelledError{Err: ctx.Err()}
				}
			}
		}
		return nil
	}()
	db.mu.RUnlock()
	s.undo = nil
	s.engine.locks.releaseAll(s)
	if err != nil {
		rs.res, rs.err = errResult(stateFor(err), err), err
	} else {
		ca := SQLCA{SQLState: StateSuccess, UpdateCount: -1, RowsFetched: emitted}
		if emitted == 0 {
			ca.SQLState = StateNoData
			ca.SQLCode = 100
		}
		rs.res = &Result{UpdateCount: -1, CA: ca}
	}
	close(rs.ch)
	close(rs.done)
}

// producePlan is produce for compiled plans: the same row-at-a-time
// filter → project → offset/limit pipeline, with the plan's
// ordinal-bound expressions instead of name resolution. Base rows
// arrive already in delivery order (the access path's order, which
// equals the ORDER BY order when the plan satisfied it).
func (s *Session) producePlan(rs *RowStream, ctx context.Context, p *selectPlan, env *evalEnv,
	base [][]Value, offset, limit int) {
	db := s.engine.db
	emitted := 0
	err := func() error {
		slab := newRowSlab(len(p.projExprs))
		for _, r := range base {
			if limit >= 0 && emitted >= limit {
				break
			}
			if err := env.checkCtx(); err != nil {
				return err
			}
			env.row = r
			if p.where != nil {
				v, err := eval(p.where, env)
				if err != nil {
					return err
				}
				ok, err := truthy(v)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			vals := slab.next()
			for i, e := range p.projExprs {
				v, err := eval(e, env)
				if err != nil {
					return err
				}
				vals[i] = v
			}
			if offset > 0 {
				offset--
				continue
			}
			select {
			case rs.ch <- vals:
				emitted++
			case <-ctx.Done():
				return &CancelledError{Err: ctx.Err()}
			}
		}
		return nil
	}()
	db.mu.RUnlock()
	s.undo = nil
	s.engine.locks.releaseAll(s)
	if err != nil {
		rs.res, rs.err = errResult(stateFor(err), err), err
	} else {
		ca := SQLCA{SQLState: StateSuccess, UpdateCount: -1, RowsFetched: emitted}
		if emitted == 0 {
			ca.SQLState = StateNoData
			ca.SQLCode = 100
		}
		rs.res = &Result{UpdateCount: -1, CA: ca}
	}
	close(rs.ch)
	close(rs.done)
}
