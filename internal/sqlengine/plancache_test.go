package sqlengine

import (
	"strings"
	"testing"
)

// TestPlanCacheHitsAndMisses walks the counters through the ordinary
// lifecycle: cold miss, warm hits, distinct statements as distinct
// entries, and whitespace-trimmed keying.
func TestPlanCacheHitsAndMisses(t *testing.T) {
	e := planEngine(t, 20)
	base := e.PlanCacheStats()
	if base.Capacity != defaultPlanCacheSize {
		t.Fatalf("default capacity = %d", base.Capacity)
	}

	const q = `SELECT id FROM rng WHERE k > 3`
	if _, err := e.NewSession().Execute(q); err != nil {
		t.Fatal(err)
	}
	s1 := e.PlanCacheStats()
	if s1.Misses != base.Misses+1 || s1.Hits != base.Hits {
		t.Fatalf("cold execute: %+v (base %+v)", s1, base)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.NewSession().Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	s2 := e.PlanCacheStats()
	if s2.Hits != s1.Hits+3 || s2.Misses != s1.Misses {
		t.Fatalf("warm executes: %+v", s2)
	}

	// The cache key is the trimmed text, so leading/trailing whitespace
	// hits the same entry; interior differences do not.
	if _, err := e.NewSession().Execute("   " + q + "\n"); err != nil {
		t.Fatal(err)
	}
	s3 := e.PlanCacheStats()
	if s3.Hits != s2.Hits+1 {
		t.Fatalf("trimmed key should hit: %+v", s3)
	}
	if _, err := e.NewSession().Execute(`SELECT id  FROM rng WHERE k > 3`); err != nil {
		t.Fatal(err)
	}
	s4 := e.PlanCacheStats()
	if s4.Misses != s3.Misses+1 || s4.Size != s3.Size+1 {
		t.Fatalf("interior whitespace is a new entry: %+v", s4)
	}
}

// TestPlanCacheDDLInvalidation: DDL bumps the schema epoch, so every
// cached plan goes stale at once. The stale entry's parse is reused but
// the plan must be rebuilt against the new catalog — observable both in
// the miss counter and in the access path flipping once an index exists.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	e := planEngine(t, 40)
	const q = `SELECT id FROM rng WHERE k_noix > 3 ORDER BY k_noix`

	lines, err := e.NewSession().Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "access: full scan") {
		t.Fatalf("expected full scan before index:\n%s", strings.Join(lines, "\n"))
	}
	want := queryStrings(t, e, q)
	pre := e.PlanCacheStats()

	e.MustExec(`CREATE ORDERED INDEX rng_k_noix ON rng (k_noix)`)

	// First post-DDL execution is a miss (stale epoch) and re-plans.
	got := queryStrings(t, e, q)
	post := e.PlanCacheStats()
	if post.Misses <= pre.Misses {
		t.Fatalf("DDL did not invalidate: %+v -> %+v", pre, post)
	}
	lines, err = e.NewSession().Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "via rng_k_noix") {
		t.Fatalf("replanned statement ignores new index:\n%s", strings.Join(lines, "\n"))
	}
	if len(got) != len(want) {
		t.Fatalf("row count changed across DDL: %d vs %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d diverged across DDL: %v vs %v", i, got[i], want[i])
			}
		}
	}

	// The replacement entry is current again: next run is a hit.
	queryStrings(t, e, q)
	final := e.PlanCacheStats()
	if final.Hits <= post.Hits {
		t.Fatalf("replaced entry not hit: %+v -> %+v", post, final)
	}
}

// TestPlanCacheLRUEviction pins the bound: capacity 2 holds two
// statements, the third evicts the least recently used, and the evicted
// statement misses on return.
func TestPlanCacheLRUEviction(t *testing.T) {
	e := New("lru", WithPlanCacheSize(2))
	e.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	e.MustExec(`INSERT INTO t VALUES (1)`)

	qs := []string{
		`SELECT id FROM t`,
		`SELECT id FROM t WHERE id = 1`,
		`SELECT id FROM t ORDER BY id`,
	}
	for _, q := range qs {
		if _, err := e.NewSession().Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	st := e.PlanCacheStats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("size/capacity = %d/%d", st.Size, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}

	// qs[0] was least recently used and must have been evicted; qs[2] is
	// resident. Touch qs[2] (hit), then qs[0] (miss).
	if _, err := e.NewSession().Execute(qs[2]); err != nil {
		t.Fatal(err)
	}
	hitBase := e.PlanCacheStats()
	if hitBase.Hits != st.Hits+1 {
		t.Fatalf("resident entry missed: %+v", hitBase)
	}
	if _, err := e.NewSession().Execute(qs[0]); err != nil {
		t.Fatal(err)
	}
	after := e.PlanCacheStats()
	if after.Misses != hitBase.Misses+1 {
		t.Fatalf("evicted entry hit: %+v", after)
	}
}

// TestPlanCacheDisabled: size 0 turns the cache off entirely — stats
// stay zero and repeated execution still works (planning from scratch
// each time).
func TestPlanCacheDisabled(t *testing.T) {
	e := New("nocache", WithPlanCacheSize(0))
	e.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(8))`)
	e.MustExec(`INSERT INTO t VALUES (1, 'a')`)
	for i := 0; i < 3; i++ {
		rows := queryStrings(t, e, `SELECT v FROM t WHERE id = 1`)
		if len(rows) != 1 || rows[0][0] != "a" {
			t.Fatalf("rows = %v", rows)
		}
	}
	if st := e.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Fatalf("disabled cache has stats: %+v", st)
	}
}

// TestPreparedReuse exercises the Prepare surface directly: the same
// Prepared pointer comes back warm, and Planned() distinguishes the
// compiled class from interpreter-only statements.
func TestPreparedReuse(t *testing.T) {
	e := planEngine(t, 10)
	p1, err := e.Prepare(`SELECT id FROM rng WHERE k > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Planned() {
		t.Fatal("range select not planned")
	}
	if p1.NumParams() != 1 {
		t.Fatalf("nparams = %d", p1.NumParams())
	}
	p2, err := e.Prepare(`SELECT id FROM rng WHERE k > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("warm Prepare did not return the cached Prepared")
	}
	agg, err := e.Prepare(`SELECT COUNT(*) FROM rng`)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Planned() {
		t.Fatal("aggregate should stay on the interpreter")
	}
}
