package sqlengine

// Statement is the interface implemented by all parsed SQL statements.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (cols...).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string // column names, possibly empty
}

// ColumnDef describes one column in a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       Type
	NotNull    bool
	Unique     bool
	PrimaryKey bool
	Default    Expr // nil when absent
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// CreateViewStmt is CREATE VIEW name AS SELECT ....
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
}

// DropViewStmt is DROP VIEW name.
type DropViewStmt struct {
	Name string
}

// CreateIndexStmt is CREATE [UNIQUE] [ORDERED] INDEX name ON table
// (col). Ordered selects the sorted posting structure (range pushdown,
// ORDER BY over the index) instead of the hash index.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Column  string
	Unique  bool
	Ordered bool
}

// DropIndexStmt is DROP INDEX name.
type DropIndexStmt struct {
	Name string
}

// InsertStmt is INSERT INTO table [(cols)] VALUES (...), (...) or
// INSERT INTO table [(cols)] SELECT ....
type InsertStmt struct {
	Table   string
	Columns []string // empty = table order
	Rows    [][]Expr
	Query   *SelectStmt // non-nil for INSERT ... SELECT
}

// UpdateStmt is UPDATE table SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr // nil when absent
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is a (possibly joined, grouped, ordered) query. When
// Unions is non-empty, OrderBy/Limit/Offset apply to the combined
// result and may only reference output columns by name or ordinal.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef // nil for expression-only SELECT
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	Unions   []UnionPart
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	Offset   Expr
}

// UnionPart is one UNION [ALL] arm.
type UnionPart struct {
	All bool
	Sel *SelectStmt
}

// SelectItem is one projection: either Star (optionally qualified) or
// an expression with an optional alias.
type SelectItem struct {
	Star      bool
	StarTable string // qualifier for t.*
	Expr      Expr
	Alias     string
}

// TableRef names a base table, or a derived table (FROM (SELECT ...)
// alias), with an optional alias (mandatory for derived tables).
type TableRef struct {
	Table    string
	Alias    string
	Subquery *SelectStmt // non-nil for derived tables
}

// JoinKind distinguishes join flavours.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinCross
)

// JoinClause is one JOIN ... ON ... step.
type JoinClause struct {
	Kind  JoinKind
	Table *TableRef
	On    Expr // nil for CROSS JOIN
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// BeginStmt is BEGIN [TRANSACTION].
type BeginStmt struct{}

// CommitStmt is COMMIT.
type CommitStmt struct{}

// RollbackStmt is ROLLBACK.
type RollbackStmt struct{}

// ExplainStmt is EXPLAIN <statement>: it describes the physical plan
// the engine would run instead of executing the statement.
type ExplainStmt struct {
	Stmt Statement
}

func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*CreateViewStmt) stmt()  {}
func (*DropViewStmt) stmt()    {}
func (*CreateIndexStmt) stmt() {}
func (*DropIndexStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}
func (*ExplainStmt) stmt()     {}

// Expr is the interface implemented by all expression nodes.
type Expr interface{ expr() }

// LiteralExpr is a constant value.
type LiteralExpr struct{ Value Value }

// ParamExpr is a positional ? parameter (0-based index).
type ParamExpr struct{ Index int }

// ColumnExpr references a column, optionally table-qualified.
type ColumnExpr struct {
	Table  string // "" when unqualified
	Column string
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op          string // +,-,*,/,%,=,<>,<,<=,>,>=,AND,OR,LIKE,||
	Left, Right Expr
}

// UnaryExpr applies unary - or NOT.
type UnaryExpr struct {
	Op      string // "-" or "NOT"
	Operand Expr
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	Operand Expr
	Negate  bool
}

// InExpr is expr [NOT] IN (list...) or expr [NOT] IN (SELECT ...).
type InExpr struct {
	Operand  Expr
	List     []Expr
	Subquery *SelectStmt // non-nil for the subquery form
	Negate   bool
}

// SubqueryExpr is a scalar subquery: (SELECT ...) yielding one column
// and at most one row (zero rows evaluate to NULL).
type SubqueryExpr struct{ Select *SelectStmt }

// ExistsExpr is EXISTS (SELECT ...).
type ExistsExpr struct{ Select *SelectStmt }

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	Operand, Lo, Hi Expr
	Negate          bool
}

// FuncExpr is a scalar or aggregate function call. Star is true for
// COUNT(*); Distinct for COUNT(DISTINCT x) etc.
type FuncExpr struct {
	Name     string // upper-case
	Args     []Expr
	Star     bool
	Distinct bool
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN pair.
type CaseWhen struct{ When, Then Expr }

// CastExpr is CAST(expr AS type).
type CastExpr struct {
	Operand Expr
	Target  Type
}

// boundColExpr is a column reference compiled to a row ordinal by the
// planner: evaluation is a direct slice index instead of a name
// resolution. It never appears in parsed ASTs — only in the rewritten
// expression trees held by compiled plans.
type boundColExpr struct{ idx int }

func (*LiteralExpr) expr()  {}
func (*ParamExpr) expr()    {}
func (*SubqueryExpr) expr() {}
func (*ExistsExpr) expr()   {}
func (*ColumnExpr) expr()   {}
func (*BinaryExpr) expr()   {}
func (*UnaryExpr) expr()    {}
func (*IsNullExpr) expr()   {}
func (*InExpr) expr()       {}
func (*BetweenExpr) expr()  {}
func (*FuncExpr) expr()     {}
func (*CaseExpr) expr()     {}
func (*CastExpr) expr()     {}
func (*boundColExpr) expr() {}

// aggregateNames is the set of aggregate function names.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// containsAggregate reports whether the expression tree contains an
// aggregate function call.
func containsAggregate(e Expr) bool {
	switch n := e.(type) {
	case nil:
		return false
	case *FuncExpr:
		if aggregateNames[n.Name] {
			return true
		}
		for _, a := range n.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return containsAggregate(n.Left) || containsAggregate(n.Right)
	case *UnaryExpr:
		return containsAggregate(n.Operand)
	case *IsNullExpr:
		return containsAggregate(n.Operand)
	case *InExpr:
		if containsAggregate(n.Operand) {
			return true
		}
		for _, it := range n.List {
			if containsAggregate(it) {
				return true
			}
		}
	case *BetweenExpr:
		return containsAggregate(n.Operand) || containsAggregate(n.Lo) || containsAggregate(n.Hi)
	case *CaseExpr:
		if containsAggregate(n.Operand) || containsAggregate(n.Else) {
			return true
		}
		for _, w := range n.Whens {
			if containsAggregate(w.When) || containsAggregate(w.Then) {
				return true
			}
		}
	case *CastExpr:
		return containsAggregate(n.Operand)
	}
	return false
}
