package sqlengine

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
)

// planEngine seeds the planner-equivalence fixture: an ordered index on
// k (with NULLs mixed in), the primary-key hash index on id, and twin
// unindexed columns so the same predicate can run with and without
// pushdown. Rows: id 0..n-1, k = id%20 (NULL every 7th row), k_noix a
// copy of k, s a label, d a double.
func planEngine(t testing.TB, rows int) *Engine {
	t.Helper()
	e := New("plan")
	e.MustExec(`CREATE TABLE rng (id INTEGER PRIMARY KEY, k INTEGER, k_noix INTEGER, s VARCHAR(16), d DOUBLE)`)
	e.MustExec(`CREATE ORDERED INDEX rng_k ON rng (k)`)
	s := e.NewSession()
	for i := 0; i < rows; i++ {
		k := NewInt(int64(i % 20))
		if i%7 == 0 {
			k = Null
		}
		if _, err := s.Execute(`INSERT INTO rng VALUES (?, ?, ?, ?, ?)`,
			NewInt(int64(i)), k, k,
			NewString(fmt.Sprintf("v-%03d", i%13)), NewDouble(float64(i)/4-8)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// planCorpus is every statement shape the equivalence tests push
// through both executors. Range predicates in every direction, flipped
// operands, BETWEEN, parameters, ORDER BY (indexed, unindexed, DESC,
// multi-key, ordinal) with LIMIT/OFFSET, point lookups, joins,
// aggregates and subqueries (which fall back to the interpreter), and
// statements that must fail with identical errors.
var planCorpus = []struct {
	sql    string
	params []Value
}{
	{sql: `SELECT id, k FROM rng WHERE k > 12`},
	{sql: `SELECT id, k FROM rng WHERE k >= 12`},
	{sql: `SELECT id, k FROM rng WHERE k < 4`},
	{sql: `SELECT id, k FROM rng WHERE k <= 4`},
	{sql: `SELECT id, k FROM rng WHERE 12 < k`},
	{sql: `SELECT id, k FROM rng WHERE k BETWEEN 6 AND 9`},
	{sql: `SELECT id, k FROM rng WHERE k BETWEEN 9 AND 2`},
	{sql: `SELECT id, k FROM rng WHERE k NOT BETWEEN 6 AND 9`},
	{sql: `SELECT id, k FROM rng WHERE k > ?`, params: []Value{NewInt(14)}},
	{sql: `SELECT id, k FROM rng WHERE k >= ? AND k <= ?`, params: []Value{NewInt(3), NewInt(11)}},
	{sql: `SELECT id, k FROM rng WHERE k > 3 AND k < 9 AND id > 40`},
	{sql: `SELECT id, k FROM rng WHERE k > 5.5`},
	{sql: `SELECT id, k FROM rng WHERE k > 900`},
	{sql: `SELECT id FROM rng WHERE k = 5`},
	{sql: `SELECT id FROM rng WHERE k = NULL`},
	{sql: `SELECT s FROM rng WHERE id = 42`},
	{sql: `SELECT k FROM rng ORDER BY k`},
	{sql: `SELECT k FROM rng ORDER BY k DESC`},
	{sql: `SELECT id, k FROM rng WHERE k > 3 AND k < 9 ORDER BY k`},
	{sql: `SELECT id, k FROM rng ORDER BY k LIMIT 7`},
	{sql: `SELECT id, k FROM rng ORDER BY k DESC LIMIT 7 OFFSET 3`},
	{sql: `SELECT id, k FROM rng ORDER BY k_noix LIMIT 7`},
	{sql: `SELECT id, s FROM rng ORDER BY s DESC, k LIMIT 10`},
	{sql: `SELECT id FROM rng ORDER BY 1 DESC LIMIT 5`},
	{sql: `SELECT id FROM rng LIMIT 0`},
	{sql: `SELECT id FROM rng ORDER BY k LIMIT 5 OFFSET 5000`},
	{sql: `SELECT id * 2, k + d FROM rng WHERE d > 10 ORDER BY id`},
	{sql: `SELECT * FROM rng WHERE k <= 2 ORDER BY id DESC`},
	{sql: `SELECT a.id, b.s FROM rng a JOIN rng b ON a.k = b.id WHERE a.id < 20 ORDER BY a.id, b.id`},
	{sql: `SELECT COUNT(*) FROM rng WHERE k > 5`},
	{sql: `SELECT k, COUNT(*) FROM rng GROUP BY k ORDER BY k`},
	{sql: `SELECT DISTINCT k FROM rng WHERE k > 10 ORDER BY k`},
	{sql: `SELECT id FROM rng WHERE k IN (SELECT k FROM rng WHERE id < 5) ORDER BY id`},
	// Failures must match byte for byte too.
	{sql: `SELECT id FROM rng WHERE k < 'abc'`},
	{sql: `SELECT id FROM rng WHERE nosuch > 1`},
	{sql: `SELECT id FROM rng ORDER BY k LIMIT -1`},
	{sql: `SELECT id FROM rng OFFSET ?`, params: []Value{Null}},
}

// execBothWays runs sql through the planner and the interpreter,
// requiring identical dumps or identical error messages.
func execBothWays(t *testing.T, e *Engine, sql string, params ...Value) {
	t.Helper()
	planned, perr := e.NewSession().Execute(sql, params...)
	disablePlanner = true
	naive, nerr := e.NewSession().Execute(sql, params...)
	disablePlanner = false
	if (perr == nil) != (nerr == nil) {
		t.Fatalf("%s: planned err = %v, interpreted err = %v", sql, perr, nerr)
	}
	if perr != nil {
		if perr.Error() != nerr.Error() {
			t.Fatalf("%s: error text diverged:\nplanned:     %v\ninterpreted: %v", sql, perr, nerr)
		}
		return
	}
	if got, want := dumpSet(planned.Set), dumpSet(naive.Set); got != want {
		t.Fatalf("%s: results diverged:\nplanned:\n%s\ninterpreted:\n%s", sql, got, want)
	}
	if planned.CA != naive.CA {
		t.Fatalf("%s: CA diverged: %+v vs %+v", sql, planned.CA, naive.CA)
	}
}

// TestPlannedMatchesInterpreted is the equivalence corpus: every entry
// must produce byte-identical output (or byte-identical errors) whether
// it runs through compiled plans or the tree interpreter.
func TestPlannedMatchesInterpreted(t *testing.T) {
	e := planEngine(t, 150)
	for _, tc := range planCorpus {
		execBothWays(t, e, tc.sql, tc.params...)
	}
}

// TestPlannedMatchesInterpretedWarm re-runs the corpus with every plan
// already cached, so cache-hit execution is held to the same
// byte-identical standard as cold planning.
func TestPlannedMatchesInterpretedWarm(t *testing.T) {
	e := planEngine(t, 150)
	for _, tc := range planCorpus {
		_, _ = e.NewSession().Execute(tc.sql, tc.params...) // warm the cache
	}
	stats := e.PlanCacheStats()
	for _, tc := range planCorpus {
		execBothWays(t, e, tc.sql, tc.params...)
	}
	after := e.PlanCacheStats()
	if after.Hits <= stats.Hits {
		t.Fatalf("warm corpus ran without cache hits: %+v -> %+v", stats, after)
	}
}

// TestPlannedStreamMatchesInterpreted drains ExecuteStream with the
// planner on and off, comparing rows, columns and the final CA — the
// corpus guarantee extended to the streaming surface.
func TestPlannedStreamMatchesInterpreted(t *testing.T) {
	e := planEngine(t, 150)
	for _, tc := range planCorpus {
		collect := func() (cols []ResultColumn, rows [][]Value, ca SQLCA, err error) {
			stream, serr := e.NewSession().ExecuteStream(context.Background(), tc.sql, tc.params...)
			if serr != nil {
				return nil, nil, SQLCA{}, serr
			}
			cols = stream.Columns()
			for {
				row, rerr := stream.Next()
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					return nil, nil, SQLCA{}, rerr
				}
				rows = append(rows, row)
			}
			res, rerr := stream.Result()
			if rerr != nil {
				return nil, nil, SQLCA{}, rerr
			}
			return cols, rows, res.CA, nil
		}
		pc, pr, pca, perr := collect()
		disablePlanner = true
		nc, nr, nca, nerr := collect()
		disablePlanner = false
		if (perr == nil) != (nerr == nil) {
			t.Fatalf("%s: stream err = %v vs %v", tc.sql, perr, nerr)
		}
		if perr != nil {
			if perr.Error() != nerr.Error() {
				t.Fatalf("%s: stream error diverged: %v vs %v", tc.sql, perr, nerr)
			}
			continue
		}
		pd := dumpSet(&ResultSet{Columns: pc, Rows: pr})
		nd := dumpSet(&ResultSet{Columns: nc, Rows: nr})
		if pd != nd {
			t.Fatalf("%s: streamed results diverged:\nplanned:\n%s\ninterpreted:\n%s", tc.sql, pd, nd)
		}
		if pca != nca {
			t.Fatalf("%s: streamed CA diverged: %+v vs %+v", tc.sql, pca, nca)
		}
	}
}

// TestPlanAccessPaths asserts the planner actually picks the access
// methods the corpus relies on — otherwise the equivalence tests could
// pass vacuously with every query widened to a scan.
func TestPlanAccessPaths(t *testing.T) {
	e := planEngine(t, 50)
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT id FROM rng WHERE id = 3`, `access: hash point lookup via pk_rng_id`},
		{`SELECT id FROM rng WHERE k = 3`, `access: ordered point lookup via rng_k`},
		{`SELECT id FROM rng WHERE k > 3`, `access: ordered range scan via rng_k (k > ?)`},
		{`SELECT id FROM rng WHERE k BETWEEN 2 AND 5`, `access: ordered range scan via rng_k (k >= ? AND k <= ?)`},
		{`SELECT id FROM rng WHERE k >= 1 AND k < 9`, `access: ordered range scan via rng_k (k >= ? AND k < ?)`},
		{`SELECT k FROM rng ORDER BY k`, `order: satisfied by index (no sort)`},
		{`SELECT k FROM rng ORDER BY k DESC`, `access: ordered full scan via rng_k (rng.k desc)`},
		{`SELECT id FROM rng ORDER BY k_noix`, `order: sort on 1 key(s)`},
		{`SELECT id FROM rng WHERE k_noix > 3`, `access: full scan`},
		{`SELECT COUNT(*) FROM rng`, `vectorised aggregate`},
		{`SELECT COUNT(*) FROM rng GROUP BY k HAVING COUNT(*) > 1`, `interpreted`},
		{`SELECT DISTINCT k FROM rng`, `interpreted`},
		{`SELECT a.id FROM rng a JOIN rng b ON a.k = b.id`, `join: inner hash join`},
	}
	for _, tc := range cases {
		lines, err := e.NewSession().Explain(tc.sql)
		if err != nil {
			t.Fatalf("Explain(%s): %v", tc.sql, err)
		}
		joined := strings.Join(lines, "\n")
		if !strings.Contains(joined, tc.want) {
			t.Fatalf("Explain(%s):\n%s\nmissing %q", tc.sql, joined, tc.want)
		}
	}
}

// TestExplainStatement covers EXPLAIN through the ordinary Execute
// surface (the form daisql -explain ships over the wire) and the
// non-SELECT statement descriptions.
func TestExplainStatement(t *testing.T) {
	e := planEngine(t, 10)
	res, err := e.NewSession().Execute(`EXPLAIN SELECT id FROM rng WHERE k > 3 ORDER BY k LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Columns) != 1 || res.Set.Columns[0].Name != "plan" {
		t.Fatalf("columns = %+v", res.Set.Columns)
	}
	var lines []string
	for _, row := range res.Set.Rows {
		lines = append(lines, row[0].String())
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{`select on "rng"`, "ordered range scan via rng_k", "satisfied by index", "limit: yes"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("EXPLAIN output:\n%s\nmissing %q", joined, want)
		}
	}
	for sql, want := range map[string]string{
		`EXPLAIN INSERT INTO rng VALUES (999, 1, 1, 'x', 0)`: `insert into "rng" (interpreted)`,
		`EXPLAIN UPDATE rng SET s = 'y' WHERE id = 1`:        `update "rng" (interpreted`,
		`EXPLAIN DELETE FROM rng WHERE id = 1`:               `delete from "rng" (interpreted`,
		`EXPLAIN SELECT COUNT(*) FROM rng`:                   `vectorised aggregate`,
		`EXPLAIN SELECT COUNT(DISTINCT k) FROM rng`:          `select: interpreted (`,
	} {
		res, err := e.NewSession().Execute(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if !strings.Contains(dumpSet(res.Set), want) {
			t.Fatalf("%s:\n%s\nmissing %q", sql, dumpSet(res.Set), want)
		}
	}
	// EXPLAIN must not mutate: the INSERT above was only described.
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM rng WHERE id = 999`)
	if rows[0][0] != "0" {
		t.Fatal("EXPLAIN INSERT executed the insert")
	}
}

// TestPlannedExecutionInsideTransaction makes sure plans respect
// uncommitted session state: a planned read inside a transaction sees
// its own writes, and streaming inside a transaction falls back safely.
func TestPlannedExecutionInsideTransaction(t *testing.T) {
	e := planEngine(t, 30)
	s := e.NewSession()
	mustExecSession(t, s, `BEGIN`)
	mustExecSession(t, s, `UPDATE rng SET k = 999 WHERE id = 2`)
	res, err := s.Execute(`SELECT id FROM rng WHERE k = 999`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) != 1 || res.Set.Rows[0][0].I != 2 {
		t.Fatalf("txn session sees %v", res.Set.Rows)
	}
	mustExecSession(t, s, `ROLLBACK`)
	res, err = s.Execute(`SELECT id FROM rng WHERE k = 999`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) != 0 {
		t.Fatalf("rollback left rows: %v", res.Set.Rows)
	}
	// With the lock released, other sessions read the restored state too.
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM rng WHERE k = 999`)
	if rows[0][0] != "0" {
		t.Fatal("rolled-back write visible after ROLLBACK")
	}
}

func mustExecSession(t *testing.T, s *Session, sql string, params ...Value) *Result {
	t.Helper()
	res, err := s.Execute(sql, params...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}
