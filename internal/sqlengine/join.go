package sqlengine

import (
	"math"
	"sync/atomic"
)

// Hash-join fast path. joinRows detects an equi-join conjunct in the ON
// expression (the same column=column shape indexableConjunct recognises
// for column=constant) and, when the key columns have hashable declared
// types, builds a hash table over the right input instead of running
// the O(L×R) nested loop. The build side is always the right input and
// the probe loop iterates the left input in order, emitting matches in
// right-row order per bucket — exactly the nested loop's output order,
// so results are byte-identical. The full ON expression is re-evaluated
// on every candidate pair (residual predicate), which filters the hash
// false positives wide integer keys can produce under float64 keying
// and keeps any extra non-equi conjuncts working.
//
// disableHashJoin forces the nested loop; the equivalence tests flip it
// to prove both paths agree on the same corpus. hashJoinUses counts
// completed fast-path joins so tests can assert the path engaged.
var (
	disableHashJoin = false
	hashJoinUses    atomic.Int64
)

// joinKeyClass is the hashing discipline for one equi-join key, derived
// from the declared types of the two key columns.
type joinKeyClass int

const (
	classNumeric joinKeyClass = iota // INTEGER/BIGINT/DOUBLE in any mix
	classString
	classBool
	classTime
)

// joinKey is a comparable hash key for one row's key value. Exactly one
// field is meaningful per class (num carries float bits, bool, or
// nanoseconds; str carries VARCHAR values).
type joinKey struct {
	num uint64
	str string
}

// equiConjunct describes a usable `left.col = right.col` conjunct:
// positions into the combined row and the key class.
type equiConjunct struct {
	leftIdx  int // index into the left (accumulated) row
	rightIdx int // index into the right row
	class    joinKeyClass
}

// findEquiConjunct walks the AND tree of the ON expression for a
// column=column conjunct with one side bound to the left input and the
// other to the right. Resolution uses the combined environment, so
// ambiguous or unknown references simply fail the match and the join
// falls back to the nested loop (preserving its error behaviour).
func findEquiConjunct(e Expr, joinEnv *evalEnv, leftWidth int) (equiConjunct, bool) {
	n, ok := e.(*BinaryExpr)
	if !ok {
		return equiConjunct{}, false
	}
	if n.Op == "AND" {
		if k, ok := findEquiConjunct(n.Left, joinEnv, leftWidth); ok {
			return k, true
		}
		return findEquiConjunct(n.Right, joinEnv, leftWidth)
	}
	if n.Op != "=" {
		return equiConjunct{}, false
	}
	lc, lok := n.Left.(*ColumnExpr)
	rc, rok := n.Right.(*ColumnExpr)
	if !lok || !rok {
		return equiConjunct{}, false
	}
	li, err1 := joinEnv.resolve(lc.Table, lc.Column)
	ri, err2 := joinEnv.resolve(rc.Table, rc.Column)
	if err1 != nil || err2 != nil {
		return equiConjunct{}, false
	}
	if li >= leftWidth {
		li, ri = ri, li
	}
	if li >= leftWidth || ri < leftWidth {
		return equiConjunct{}, false // both sides on the same input
	}
	cls, ok := keyClass(joinEnv.cols[li].typ, joinEnv.cols[ri].typ)
	if !ok {
		return equiConjunct{}, false
	}
	return equiConjunct{leftIdx: li, rightIdx: ri - leftWidth, class: cls}, true
}

// keyClass maps the two declared key-column types to a hashing
// discipline, mirroring Compare's equality rules: any numeric mix keys
// on float64 value, otherwise both sides must share a concrete type.
// Untyped (computed) columns refuse, forcing the nested loop.
func keyClass(a, b Type) (joinKeyClass, bool) {
	if a.isNumeric() && b.isNumeric() {
		return classNumeric, true
	}
	if a != b {
		return 0, false
	}
	switch a {
	case TypeVarchar:
		return classString, true
	case TypeBoolean:
		return classBool, true
	case TypeTimestamp:
		return classTime, true
	}
	return 0, false
}

// joinKeyFor hashes one value under the class discipline. skip means
// the value is NULL (it can never satisfy `=`); bail means the runtime
// value defeats hashing — a NaN (which Compare treats as equal to
// everything) or a type that contradicts the declared class — and the
// whole join must fall back to the nested loop to stay byte-identical.
func joinKeyFor(v Value, cls joinKeyClass) (k joinKey, skip, bail bool) {
	if v.IsNull() {
		return joinKey{}, true, false
	}
	switch cls {
	case classNumeric:
		f := v.asFloat()
		if math.IsNaN(f) {
			return joinKey{}, false, true
		}
		if f == 0 {
			f = 0 // normalise -0.0 to +0.0; Compare treats them equal
		}
		return joinKey{num: math.Float64bits(f)}, false, false
	case classString:
		if v.Type != TypeVarchar {
			return joinKey{}, false, true
		}
		return joinKey{str: v.S}, false, false
	case classBool:
		if v.Type != TypeBoolean {
			return joinKey{}, false, true
		}
		var n uint64
		if v.B {
			n = 1
		}
		return joinKey{num: n}, false, false
	default: // classTime
		if v.Type != TypeTimestamp {
			return joinKey{}, false, true
		}
		return joinKey{num: uint64(v.T.UnixNano())}, false, false
	}
}

// rowSlab hands out fixed-width []Value rows carved from chunked
// backing arrays, collapsing the per-row make() the join output and
// projection paths would otherwise pay. Returned rows are
// capacity-clamped, so a later append reallocates instead of writing
// into a neighbouring row.
type rowSlab struct {
	width int
	buf   []Value
}

const slabChunkRows = 256

func newRowSlab(width int) *rowSlab { return &rowSlab{width: width} }

func (s *rowSlab) next() []Value {
	if s.width == 0 {
		return nil
	}
	if len(s.buf) < s.width {
		s.buf = make([]Value, s.width*slabChunkRows)
	}
	r := s.buf[:s.width:s.width]
	s.buf = s.buf[s.width:]
	return r
}

// hashJoinRows runs the fast path. ok=false (with nil error) means a
// bail condition surfaced mid-join and the caller must rerun the nested
// loop; the partial output is discarded.
func hashJoinRows(left, right [][]Value, joinEnv *evalEnv, leftWidth int, rcols []boundColumn, j JoinClause, k equiConjunct) ([][]Value, bool, error) {
	build := make(map[joinKey][]int, len(right))
	for ri, r := range right {
		key, skip, bail := joinKeyFor(r[k.rightIdx], k.class)
		if bail {
			return nil, false, nil
		}
		if skip {
			continue
		}
		build[key] = append(build[key], ri)
	}
	slab := newRowSlab(leftWidth + len(rcols))
	scratch := make([]Value, leftWidth+len(rcols))
	match := func(l, r []Value) (bool, error) {
		copy(scratch, l)
		copy(scratch[len(l):], r)
		joinEnv.row = scratch
		v, err := eval(j.On, joinEnv)
		if err != nil {
			return false, err
		}
		return truthy(v)
	}
	combine := func(l, r []Value) []Value {
		row := slab.next()
		copy(row, l)
		copy(row[len(l):], r)
		return row
	}
	nullRight := make([]Value, len(rcols))
	for i := range nullRight {
		nullRight[i] = Null
	}
	var rightMatched []bool
	if j.Kind == JoinRight {
		rightMatched = make([]bool, len(right))
	}
	var out [][]Value
	for _, l := range left {
		if err := joinEnv.checkCtx(); err != nil {
			return nil, false, err
		}
		matched := false
		key, skip, bail := joinKeyFor(l[k.leftIdx], k.class)
		if bail {
			return nil, false, nil
		}
		if !skip {
			for _, ri := range build[key] {
				ok, err := match(l, right[ri])
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue
				}
				matched = true
				if rightMatched != nil {
					rightMatched[ri] = true
				}
				out = append(out, combine(l, right[ri]))
			}
		}
		if !matched && j.Kind == JoinLeft {
			out = append(out, combine(l, nullRight))
		}
	}
	if j.Kind == JoinRight {
		// rightMatched replaces the nested loop's second O(L×R) pass.
		nullLeft := make([]Value, leftWidth)
		for i := range nullLeft {
			nullLeft[i] = Null
		}
		for ri, r := range right {
			if !rightMatched[ri] {
				out = append(out, combine(nullLeft, r))
			}
		}
	}
	hashJoinUses.Add(1)
	return out, true, nil
}
