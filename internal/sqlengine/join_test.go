package sqlengine

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// seedJoinCorpus builds two tables with every hashable key type,
// duplicate keys (fan-out), NULL keys on both sides, and rows that
// match nothing — the shapes that distinguish a correct hash join from
// a lucky one.
func seedJoinCorpus(t testing.TB) *Engine {
	t.Helper()
	e := New("joindb")
	e.MustExec(`CREATE TABLE l (id INTEGER PRIMARY KEY, k INTEGER, di DOUBLE, s VARCHAR(16), bo BOOLEAN, ts TIMESTAMP)`)
	e.MustExec(`CREATE TABLE r (id INTEGER PRIMARY KEY, k INTEGER, di DOUBLE, s VARCHAR(16), bo BOOLEAN, ts TIMESTAMP)`)
	t0 := time.Date(2005, 9, 1, 12, 0, 0, 0, time.UTC)
	ins := func(table string, id, k int, kNull bool, di float64, s string, sNull bool, bo bool, tsOffset int) {
		kv := NewInt(int64(k))
		if kNull {
			kv = Null
		}
		sv := NewString(s)
		if sNull {
			sv = Null
		}
		_, err := e.Exec(fmt.Sprintf(`INSERT INTO %s VALUES (?, ?, ?, ?, ?, ?)`, table),
			NewInt(int64(id)), kv, NewDouble(di), sv, NewBool(bo),
			NewTimestamp(t0.Add(time.Duration(tsOffset)*time.Hour)))
		if err != nil {
			t.Fatal(err)
		}
	}
	ins("l", 1, 10, false, 10, "ann", false, true, 0)
	ins("l", 2, 20, false, 20.5, "bob", false, false, 1)
	ins("l", 3, 10, false, 10, "carol", false, true, 0)
	ins("l", 4, 0, true, 30, "dan", false, false, 2) // NULL key
	ins("l", 5, 99, false, 99, "eve", true, true, 5) // matches nothing
	ins("r", 1, 10, false, 10, "ann", false, true, 0)
	ins("r", 2, 10, false, 11, "zed", false, false, 3)
	ins("r", 3, 20, false, 20.5, "bob", false, true, 1)
	ins("r", 4, 0, true, 10, "ann", false, true, 0)    // NULL key
	ins("r", 5, 77, false, 77, "gil", false, false, 7) // matches nothing
	return e
}

// dumpSet renders a result set canonically — column metadata plus every
// value with its runtime type — so two executions can be compared for
// byte-identical output including row order.
func dumpSet(rs *ResultSet) string {
	var b strings.Builder
	for _, c := range rs.Columns {
		fmt.Fprintf(&b, "%s:%s:%s|", c.Name, c.Type, c.Table)
	}
	b.WriteByte('\n')
	for _, r := range rs.Rows {
		for _, v := range r {
			if v.IsNull() {
				b.WriteString("NULL,")
			} else {
				fmt.Fprintf(&b, "%s(%s),", v.Type, v.String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// joinCorpus is every join shape the equivalence test runs through
// both execution paths. No ORDER BY: output order itself is part of
// the contract.
var joinCorpus = []string{
	`SELECT l.id, r.id FROM l JOIN r ON l.k = r.k`,
	`SELECT l.id, r.id FROM l LEFT JOIN r ON l.k = r.k`,
	`SELECT l.id, r.id FROM l RIGHT JOIN r ON l.k = r.k`,
	`SELECT r.id, l.id FROM r JOIN l ON r.k = l.k`,
	`SELECT l.id, r.id FROM l JOIN r ON l.di = r.k`,                              // DOUBLE = INTEGER cross-width
	`SELECT l.id, r.id FROM l JOIN r ON l.k = r.di`,                              // INTEGER = DOUBLE cross-width
	`SELECT l.id, r.id FROM l LEFT JOIN r ON l.di = r.di`,                        // DOUBLE = DOUBLE
	`SELECT l.s, r.s FROM l JOIN r ON l.s = r.s`,                                 // VARCHAR key, NULL on left
	`SELECT l.id, r.id FROM l JOIN r ON l.bo = r.bo`,                             // BOOLEAN key, heavy fan-out
	`SELECT l.id, r.id FROM l JOIN r ON l.ts = r.ts`,                             // TIMESTAMP key
	`SELECT l.id, r.id FROM l JOIN r ON l.k = r.k AND l.id < r.id`,               // residual conjunct
	`SELECT l.id, r.id FROM l JOIN r ON l.id < r.id AND l.k = r.k`,               // equi conjunct second
	`SELECT l.id, r.id FROM l JOIN r ON l.k = r.k AND r.bo = TRUE`,               // constant residual
	`SELECT a.id, b.id FROM l a JOIN l b ON a.k = b.k`,                           // self join via aliases
	`SELECT l.id, r.id, b.id FROM l JOIN r ON l.k = r.k JOIN l b ON r.id = b.id`, // chained joins
	`SELECT l.id, r.id FROM l JOIN r ON l.k = r.k WHERE r.bo = FALSE`,
	`SELECT l.id, COUNT(*) FROM l JOIN r ON l.k = r.k GROUP BY l.id`,
	`SELECT l.id, r.id FROM l JOIN r ON l.k < r.k`,     // non-equi: nested loop both ways
	`SELECT l.id, r.id FROM l JOIN r ON l.k + 0 = r.k`, // expression side: fallback
	`SELECT l.id, r.id FROM l RIGHT JOIN r ON l.s = r.s AND l.id <> r.id`,
}

// TestHashJoinMatchesNestedLoop runs the corpus with the hash fast
// path enabled and disabled and requires byte-identical output —
// values, runtime types, column metadata and row order.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	for _, sql := range joinCorpus {
		t.Run(sql, func(t *testing.T) {
			run := func(disable bool) string {
				old := disableHashJoin
				disableHashJoin = disable
				defer func() { disableHashJoin = old }()
				e := seedJoinCorpus(t)
				res, err := e.Exec(sql)
				if err != nil {
					t.Fatalf("%s: %v", sql, err)
				}
				return dumpSet(res.Set)
			}
			hash, nested := run(false), run(true)
			if hash != nested {
				t.Fatalf("hash join diverges from nested loop for %q:\n--- hash ---\n%s--- nested ---\n%s", sql, hash, nested)
			}
		})
	}
}

// TestHashJoinEngages proves the fast path actually runs for an
// equi-join (the equivalence test alone would pass even if the
// detector never fired).
func TestHashJoinEngages(t *testing.T) {
	e := seedJoinCorpus(t)
	before := hashJoinUses.Load()
	if _, err := e.Exec(`SELECT l.id, r.id FROM l JOIN r ON l.k = r.k`); err != nil {
		t.Fatal(err)
	}
	if hashJoinUses.Load() == before {
		t.Fatal("hash join did not engage for a plain equi-join")
	}
	// A non-equi ON must not engage it.
	before = hashJoinUses.Load()
	if _, err := e.Exec(`SELECT l.id, r.id FROM l JOIN r ON l.k < r.k`); err != nil {
		t.Fatal(err)
	}
	if hashJoinUses.Load() != before {
		t.Fatal("hash join engaged for a non-equi join")
	}
}

// TestHashJoinTypeMismatchStillErrors: comparing VARCHAR with INTEGER
// is a type error in the nested loop; the hash path must refuse the
// key and surface the same error, not silently return zero rows.
func TestHashJoinTypeMismatchStillErrors(t *testing.T) {
	e := seedJoinCorpus(t)
	for _, disable := range []bool{false, true} {
		old := disableHashJoin
		disableHashJoin = disable
		_, err := e.Exec(`SELECT l.id FROM l JOIN r ON l.s = r.k`)
		disableHashJoin = old
		if err == nil {
			t.Fatalf("disable=%v: expected type-mismatch error", disable)
		}
	}
}

// TestHashJoinNaNBailout: NaN keys defeat hashing (Compare treats NaN
// as equal to everything), so the join must detect them and fall back
// mid-flight with results identical to the nested loop.
func TestHashJoinNaNBailout(t *testing.T) {
	run := func(disable bool) string {
		old := disableHashJoin
		disableHashJoin = disable
		defer func() { disableHashJoin = old }()
		e := New("nan")
		e.MustExec(`CREATE TABLE a (id INTEGER PRIMARY KEY, x DOUBLE)`)
		e.MustExec(`CREATE TABLE b (id INTEGER PRIMARY KEY, x DOUBLE)`)
		nan := Value{Type: TypeDouble, F: nanFloat()}
		mustParam(t, e, `INSERT INTO a VALUES (?, ?)`, NewInt(1), nan)
		mustParam(t, e, `INSERT INTO a VALUES (?, ?)`, NewInt(2), NewDouble(1))
		mustParam(t, e, `INSERT INTO b VALUES (?, ?)`, NewInt(1), NewDouble(1))
		mustParam(t, e, `INSERT INTO b VALUES (?, ?)`, NewInt(2), nan)
		res, err := e.Exec(`SELECT a.id, b.id FROM a JOIN b ON a.x = b.x`)
		if err != nil {
			t.Fatal(err)
		}
		return dumpSet(res.Set)
	}
	if hash, nested := run(false), run(true); hash != nested {
		t.Fatalf("NaN keys diverge:\n--- hash ---\n%s--- nested ---\n%s", hash, nested)
	}
}

func nanFloat() float64 {
	z := 0.0
	return z / z
}

func mustParam(t testing.TB, e *Engine, sql string, params ...Value) {
	t.Helper()
	if _, err := e.Exec(sql, params...); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}
