package sqlengine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Column is catalog metadata for one table column.
type Column struct {
	Name       string
	Type       Type
	NotNull    bool
	Unique     bool
	PrimaryKey bool
	Default    Expr
}

// Table holds a table's schema and row storage. Rows are identified by
// a monotonically increasing rowID so indexes and transaction undo
// records can reference them stably; the rows map preserves no order,
// and scans iterate in rowID order for determinism.
type Table struct {
	Name    string
	Columns []Column
	colIdx  map[string]int // lower-cased column name -> position

	rows   map[int64][]Value
	nextID int64
	order  []int64 // insertion order of live rowIDs

	indexes    map[string]*Index        // lower-cased index name -> hash index
	ordIndexes map[string]*OrderedIndex // lower-cased index name -> ordered index

	// chunks is the lazily built columnar representation (column.go);
	// chunkMu serialises concurrent builds by readers holding the
	// database latch in shared mode.
	chunkMu sync.Mutex
	chunks  *tableChunks
}

// Index is a hash index over a single column.
type Index struct {
	Name   string
	Table  string
	Column string
	Unique bool
	// buckets maps group-keyed values to rowIDs. NULLs are not indexed.
	buckets map[string][]int64
}

func newTable(name string, cols []Column) *Table {
	t := &Table{
		Name:       name,
		Columns:    cols,
		colIdx:     make(map[string]int, len(cols)),
		rows:       make(map[int64][]Value),
		indexes:    make(map[string]*Index),
		ordIndexes: make(map[string]*OrderedIndex),
	}
	for i, c := range cols {
		t.colIdx[strings.ToLower(c.Name)] = i
	}
	return t
}

// ColumnIndex resolves a column name (case-insensitive) to its
// position, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return len(t.order) }

// scan returns live rowIDs in insertion order. The returned slice is
// shared; callers must not mutate it.
func (t *Table) scan() []int64 { return t.order }

// insertRow stores a row and maintains indexes. The row must already be
// coerced and validated.
func (t *Table) insertRow(row []Value) (int64, error) {
	id := t.nextID
	for _, idx := range t.indexes {
		ci := t.ColumnIndex(idx.Column)
		v := row[ci]
		if v.IsNull() {
			continue
		}
		if idx.Unique && len(idx.buckets[v.groupKey()]) > 0 {
			return 0, fmt.Errorf("unique constraint %s violated on %s.%s (value %s)",
				idx.Name, t.Name, idx.Column, v)
		}
	}
	for _, ix := range t.ordIndexes {
		ci := t.ColumnIndex(ix.Column)
		v := row[ci]
		if v.IsNull() {
			continue
		}
		if ix.Unique && len(ix.lookup(v)) > 0 {
			return 0, fmt.Errorf("unique constraint %s violated on %s.%s (value %s)",
				ix.Name, t.Name, ix.Column, v)
		}
	}
	t.nextID++
	t.rows[id] = row
	t.order = append(t.order, id)
	for _, idx := range t.indexes {
		ci := t.ColumnIndex(idx.Column)
		if v := row[ci]; !v.IsNull() {
			idx.buckets[v.groupKey()] = append(idx.buckets[v.groupKey()], id)
		}
	}
	for _, ix := range t.ordIndexes {
		ix.insert(row[t.ColumnIndex(ix.Column)], id)
	}
	t.chunkAppendRow(id, row)
	return id, nil
}

// deleteRow removes a row by id, maintaining indexes.
func (t *Table) deleteRow(id int64) {
	row, ok := t.rows[id]
	if !ok {
		return
	}
	for _, idx := range t.indexes {
		ci := t.ColumnIndex(idx.Column)
		if v := row[ci]; !v.IsNull() {
			idx.remove(v, id)
		}
	}
	for _, ix := range t.ordIndexes {
		ix.remove(row[t.ColumnIndex(ix.Column)], id)
	}
	delete(t.rows, id)
	for i, oid := range t.order {
		if oid == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	t.invalidateChunks()
}

// updateRow replaces a row's values in place, maintaining indexes.
func (t *Table) updateRow(id int64, newRow []Value) error {
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("row %d not found", id)
	}
	for _, idx := range t.indexes {
		ci := t.ColumnIndex(idx.Column)
		nv := newRow[ci]
		if nv.IsNull() || Equal(old[ci], nv) {
			continue
		}
		if idx.Unique {
			for _, rid := range idx.buckets[nv.groupKey()] {
				if rid != id {
					return fmt.Errorf("unique constraint %s violated on %s.%s (value %s)",
						idx.Name, t.Name, idx.Column, nv)
				}
			}
		}
	}
	for _, ix := range t.ordIndexes {
		ci := t.ColumnIndex(ix.Column)
		nv := newRow[ci]
		if nv.IsNull() || Equal(old[ci], nv) {
			continue
		}
		if ix.Unique {
			for _, rid := range ix.lookup(nv) {
				if rid != id {
					return fmt.Errorf("unique constraint %s violated on %s.%s (value %s)",
						ix.Name, t.Name, ix.Column, nv)
				}
			}
		}
	}
	for _, idx := range t.indexes {
		ci := t.ColumnIndex(idx.Column)
		ov, nv := old[ci], newRow[ci]
		if Equal(ov, nv) || (ov.IsNull() && nv.IsNull()) {
			continue
		}
		if !ov.IsNull() {
			idx.remove(ov, id)
		}
		if !nv.IsNull() {
			idx.buckets[nv.groupKey()] = append(idx.buckets[nv.groupKey()], id)
		}
	}
	for _, ix := range t.ordIndexes {
		ci := t.ColumnIndex(ix.Column)
		ov, nv := old[ci], newRow[ci]
		if Equal(ov, nv) || (ov.IsNull() && nv.IsNull()) {
			continue
		}
		ix.remove(ov, id)
		ix.insert(nv, id)
	}
	t.rows[id] = newRow
	t.invalidateChunks()
	return nil
}

func (ix *Index) remove(v Value, id int64) {
	key := v.groupKey()
	b := ix.buckets[key]
	for i, rid := range b {
		if rid == id {
			ix.buckets[key] = append(b[:i], b[i+1:]...)
			break
		}
	}
	if len(ix.buckets[key]) == 0 {
		delete(ix.buckets, key)
	}
}

// lookup returns rowIDs matching an equality value via the index.
func (ix *Index) lookup(v Value) []int64 {
	if v.IsNull() {
		return nil
	}
	return ix.buckets[v.groupKey()]
}

// Database is the catalog: a named set of tables plus index metadata.
// It is guarded by a single RW mutex; the Engine layer chooses whether
// to exploit reader concurrency (the DAIS ConcurrentAccess property).
type Database struct {
	mu         sync.RWMutex
	name       string
	tables     map[string]*Table        // lower-cased name
	indexes    map[string]*Index        // lower-cased index name -> owning index
	ordIndexes map[string]*OrderedIndex // lower-cased index name -> ordered index
	views      map[string]*viewDef

	// epoch counts successful DDL statements. Compiled plans record the
	// epoch they were built against and are discarded when it moves, so
	// a cached plan can never see a schema it was not planned for.
	epoch uint64

	// vectorOff disables the columnar execution paths for this database
	// (set at engine construction, immutable afterwards); the global
	// disableVector test toggle has the same effect process-wide.
	vectorOff bool

	// Columnar execution counters, exported via Engine.VectorStats.
	vecBatches atomic.Uint64 // chunks evaluated by vector operators
	vecSkipped atomic.Uint64 // chunks skipped by zone maps
}

// viewDef is a stored view: a name bound to a SELECT.
type viewDef struct {
	Name   string
	Select *SelectStmt
}

// NewDatabase creates an empty database with the given name.
func NewDatabase(name string) *Database {
	return &Database{
		name:       name,
		tables:     make(map[string]*Table),
		indexes:    make(map[string]*Index),
		ordIndexes: make(map[string]*OrderedIndex),
		views:      make(map[string]*viewDef),
	}
}

// SchemaEpoch returns the current DDL epoch.
func (d *Database) SchemaEpoch() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epoch
}

// Name returns the database name.
func (d *Database) Name() string { return d.name }

// table resolves a table name; callers must hold the lock.
func (d *Database) table(name string) (*Table, error) {
	t, ok := d.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", name)
	}
	return t, nil
}

// TableNames returns the sorted list of table names (catalog metadata
// for the CIM rendering and property documents).
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.tables))
	for _, t := range d.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// TableSchema returns a copy of the column metadata for a table.
func (d *Database) TableSchema(name string) ([]Column, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, err := d.table(name)
	if err != nil {
		return nil, err
	}
	return append([]Column(nil), t.Columns...), nil
}

// TableRowCount returns the number of rows in a table.
func (d *Database) TableRowCount(name string) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, err := d.table(name)
	if err != nil {
		return 0, err
	}
	return t.RowCount(), nil
}

// IndexInfo describes one index for catalog consumers.
type IndexInfo struct {
	Name   string
	Table  string
	Column string
	Unique bool
	Kind   string // "hash" or "ordered"
}

// Indexes returns metadata for all indexes, sorted by name.
func (d *Database) Indexes() []IndexInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]IndexInfo, 0, len(d.indexes)+len(d.ordIndexes))
	for _, ix := range d.indexes {
		out = append(out, IndexInfo{Name: ix.Name, Table: ix.Table, Column: ix.Column, Unique: ix.Unique, Kind: "hash"})
	}
	for _, ix := range d.ordIndexes {
		out = append(out, IndexInfo{Name: ix.Name, Table: ix.Table, Column: ix.Column, Unique: ix.Unique, Kind: "ordered"})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (d *Database) createTable(st *CreateTableStmt) error {
	key := strings.ToLower(st.Name)
	if _, exists := d.tables[key]; exists {
		if st.IfNotExists {
			return nil
		}
		return fmt.Errorf("table %q already exists", st.Name)
	}
	if _, exists := d.views[key]; exists {
		return fmt.Errorf("a view named %q already exists", st.Name)
	}
	if len(st.Columns) == 0 {
		return fmt.Errorf("table %q has no columns", st.Name)
	}
	cols := make([]Column, len(st.Columns))
	seen := map[string]bool{}
	for i, cd := range st.Columns {
		lk := strings.ToLower(cd.Name)
		if seen[lk] {
			return fmt.Errorf("duplicate column %q", cd.Name)
		}
		seen[lk] = true
		cols[i] = Column{
			Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull,
			Unique: cd.Unique, PrimaryKey: cd.PrimaryKey, Default: cd.Default,
		}
	}
	t := newTable(st.Name, cols)
	// Primary key / unique column constraints become unique indexes.
	for _, pk := range st.PrimaryKey {
		ci := t.ColumnIndex(pk)
		if ci < 0 {
			return fmt.Errorf("primary key column %q not in table", pk)
		}
		t.Columns[ci].PrimaryKey = true
		t.Columns[ci].NotNull = true
		ixName := fmt.Sprintf("pk_%s_%s", strings.ToLower(st.Name), strings.ToLower(pk))
		ix := &Index{Name: ixName, Table: st.Name, Column: t.Columns[ci].Name, Unique: true, buckets: map[string][]int64{}}
		t.indexes[ixName] = ix
		d.indexes[ixName] = ix
	}
	for i := range t.Columns {
		if t.Columns[i].Unique && !t.Columns[i].PrimaryKey {
			ixName := fmt.Sprintf("uq_%s_%s", strings.ToLower(st.Name), strings.ToLower(t.Columns[i].Name))
			ix := &Index{Name: ixName, Table: st.Name, Column: t.Columns[i].Name, Unique: true, buckets: map[string][]int64{}}
			t.indexes[ixName] = ix
			d.indexes[ixName] = ix
		}
	}
	d.tables[key] = t
	d.epoch++
	return nil
}

func (d *Database) dropTable(st *DropTableStmt) error {
	key := strings.ToLower(st.Name)
	t, exists := d.tables[key]
	if !exists {
		if st.IfExists {
			return nil
		}
		return fmt.Errorf("table %q does not exist", st.Name)
	}
	for name := range t.indexes {
		delete(d.indexes, name)
	}
	for name := range t.ordIndexes {
		delete(d.ordIndexes, name)
	}
	delete(d.tables, key)
	d.epoch++
	return nil
}

func (d *Database) createIndex(st *CreateIndexStmt) error {
	key := strings.ToLower(st.Name)
	if _, exists := d.indexes[key]; exists {
		return fmt.Errorf("index %q already exists", st.Name)
	}
	if _, exists := d.ordIndexes[key]; exists {
		return fmt.Errorf("index %q already exists", st.Name)
	}
	t, err := d.table(st.Table)
	if err != nil {
		return err
	}
	ci := t.ColumnIndex(st.Column)
	if ci < 0 {
		return fmt.Errorf("column %q not in table %q", st.Column, st.Table)
	}
	if st.Ordered {
		ix := newOrderedIndex(key, t.Name, t.Columns[ci].Name, st.Unique)
		for _, id := range t.order {
			v := t.rows[id][ci]
			if ix.Unique && !v.IsNull() && len(ix.lookup(v)) > 0 {
				return fmt.Errorf("cannot create unique index %q: duplicate value %s", st.Name, v)
			}
			ix.insert(v, id)
		}
		t.ordIndexes[key] = ix
		d.ordIndexes[key] = ix
		d.epoch++
		return nil
	}
	ix := &Index{Name: key, Table: t.Name, Column: t.Columns[ci].Name, Unique: st.Unique, buckets: map[string][]int64{}}
	// Build from existing rows.
	for _, id := range t.order {
		v := t.rows[id][ci]
		if v.IsNull() {
			continue
		}
		if ix.Unique && len(ix.buckets[v.groupKey()]) > 0 {
			return fmt.Errorf("cannot create unique index %q: duplicate value %s", st.Name, v)
		}
		ix.buckets[v.groupKey()] = append(ix.buckets[v.groupKey()], id)
	}
	t.indexes[key] = ix
	d.indexes[key] = ix
	d.epoch++
	return nil
}

func (d *Database) dropIndex(st *DropIndexStmt) error {
	key := strings.ToLower(st.Name)
	if ix, exists := d.indexes[key]; exists {
		if t, ok := d.tables[strings.ToLower(ix.Table)]; ok {
			delete(t.indexes, key)
		}
		delete(d.indexes, key)
		d.epoch++
		return nil
	}
	if ix, exists := d.ordIndexes[key]; exists {
		if t, ok := d.tables[strings.ToLower(ix.Table)]; ok {
			delete(t.ordIndexes, key)
		}
		delete(d.ordIndexes, key)
		d.epoch++
		return nil
	}
	return fmt.Errorf("index %q does not exist", st.Name)
}

// ViewNames returns the sorted list of view names.
func (d *Database) ViewNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.views))
	for _, v := range d.views {
		names = append(names, v.Name)
	}
	sort.Strings(names)
	return names
}

func (d *Database) createView(st *CreateViewStmt) error {
	key := strings.ToLower(st.Name)
	if _, exists := d.views[key]; exists {
		return fmt.Errorf("view %q already exists", st.Name)
	}
	if _, exists := d.tables[key]; exists {
		return fmt.Errorf("a table named %q already exists", st.Name)
	}
	d.views[key] = &viewDef{Name: st.Name, Select: st.Select}
	d.epoch++
	return nil
}

func (d *Database) dropView(st *DropViewStmt) error {
	key := strings.ToLower(st.Name)
	if _, exists := d.views[key]; !exists {
		return fmt.Errorf("view %q does not exist", st.Name)
	}
	delete(d.views, key)
	d.epoch++
	return nil
}

// expandViewTables resolves every name to the base tables it depends
// on, recursing through views, so the session lock set covers view
// expansion. depth bounds pathological view cycles.
func (d *Database) expandViewTables(names []string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	var walk func(name string, depth int)
	walk = func(name string, depth int) {
		key := strings.ToLower(name)
		if seen[key] || depth > 16 {
			return
		}
		seen[key] = true
		if v, ok := d.views[key]; ok {
			for _, t := range tablesOfSelect(v.Select) {
				walk(t, depth+1)
			}
			return
		}
		out = append(out, key)
	}
	for _, n := range names {
		walk(n, 0)
	}
	sort.Strings(out)
	return out
}
