package sqlengine

import (
	"strings"
	"testing"
)

// seedEmployees creates and populates the tables most query tests use.
func seedEmployees(t testing.TB) *Engine {
	t.Helper()
	e := New("testdb")
	e.MustExec(`CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR(32) NOT NULL)`)
	e.MustExec(`CREATE TABLE emp (
		id INTEGER PRIMARY KEY,
		name VARCHAR(64) NOT NULL,
		dept_id INTEGER,
		salary DOUBLE,
		active BOOLEAN DEFAULT TRUE
	)`)
	e.MustExec(`INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'legal')`)
	e.MustExec(`INSERT INTO emp (id, name, dept_id, salary) VALUES
		(1, 'ann', 1, 120000),
		(2, 'bob', 1, 95000),
		(3, 'carol', 2, 87000),
		(4, 'dan', 2, 91000),
		(5, 'eve', NULL, 150000)`)
	return e
}

func queryStrings(t testing.TB, e *Engine, sql string, params ...Value) [][]string {
	t.Helper()
	res, err := e.Exec(sql, params...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if res.Set == nil {
		t.Fatalf("%s: no result set", sql)
	}
	out := make([][]string, len(res.Set.Rows))
	for i, r := range res.Set.Rows {
		row := make([]string, len(r))
		for j, v := range r {
			row[j] = v.String()
		}
		out[i] = row
	}
	return out
}

func TestBasicSelect(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT name FROM emp WHERE salary > 90000 ORDER BY name`)
	want := [][]string{{"ann"}, {"bob"}, {"dan"}, {"eve"}}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if rows[i][0] != want[i][0] {
			t.Fatalf("rows = %v", rows)
		}
	}
}

func TestSelectStar(t *testing.T) {
	e := seedEmployees(t)
	res, err := e.Exec(`SELECT * FROM emp WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Columns) != 5 {
		t.Fatalf("columns = %+v", res.Set.Columns)
	}
	if res.Set.Columns[0].Name != "id" || res.Set.Columns[4].Name != "active" {
		t.Fatalf("column names = %+v", res.Set.Columns)
	}
	// active has DEFAULT TRUE
	if res.Set.Rows[0][4].String() != "true" {
		t.Fatalf("default not applied: %v", res.Set.Rows[0])
	}
}

func TestProjectionExpressions(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT name || '!' AS shout, salary / 1000 AS k FROM emp WHERE id = 1`)
	if rows[0][0] != "ann!" || rows[0][1] != "120" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWhereThreeValuedLogic(t *testing.T) {
	e := seedEmployees(t)
	// eve has NULL dept_id; NULL <> 1 is UNKNOWN, so she is excluded
	// from both branches.
	in := queryStrings(t, e, `SELECT name FROM emp WHERE dept_id = 1 ORDER BY name`)
	notIn := queryStrings(t, e, `SELECT name FROM emp WHERE dept_id <> 1 ORDER BY name`)
	if len(in) != 2 || len(notIn) != 2 {
		t.Fatalf("in = %v, notIn = %v", in, notIn)
	}
	isNull := queryStrings(t, e, `SELECT name FROM emp WHERE dept_id IS NULL`)
	if len(isNull) != 1 || isNull[0][0] != "eve" {
		t.Fatalf("isNull = %v", isNull)
	}
}

func TestInnerJoin(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.name`)
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "ann" || rows[0][1] != "eng" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLeftJoin(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id ORDER BY e.name`)
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	// eve's dept is NULL
	if rows[4][0] != "eve" || rows[4][1] != "NULL" {
		t.Fatalf("rows = %v", rows)
	}
	// unmatched dept (legal) does not appear from the left side
	for _, r := range rows {
		if r[1] == "legal" {
			t.Fatalf("legal should not match: %v", rows)
		}
	}
}

func TestCrossJoin(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM emp CROSS JOIN dept`)
	if rows[0][0] != "15" {
		t.Fatalf("cross join count = %v", rows)
	}
	rows2 := queryStrings(t, e, `SELECT COUNT(*) FROM emp, dept`)
	if rows2[0][0] != "15" {
		t.Fatalf("comma join count = %v", rows2)
	}
}

func TestGroupByAggregates(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT d.name, COUNT(*), AVG(e.salary), MIN(e.salary), MAX(e.salary), SUM(e.salary)
		FROM emp e JOIN dept d ON e.dept_id = d.id
		GROUP BY d.name ORDER BY d.name`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "eng" || rows[0][1] != "2" || rows[0][2] != "107500" {
		t.Fatalf("eng row = %v", rows[0])
	}
	if rows[1][0] != "sales" || rows[1][5] != "178000" {
		t.Fatalf("sales row = %v", rows[1])
	}
}

func TestHaving(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT dept_id, COUNT(*) AS n FROM emp
		WHERE dept_id IS NOT NULL GROUP BY dept_id HAVING COUNT(*) >= 2 ORDER BY dept_id`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggregatesWithoutGroupBy(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT COUNT(*), COUNT(dept_id), COUNT(DISTINCT dept_id) FROM emp`)
	if rows[0][0] != "5" || rows[0][1] != "4" || rows[0][2] != "2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	e := New("t")
	e.MustExec(`CREATE TABLE empty (a INTEGER)`)
	rows := queryStrings(t, e, `SELECT COUNT(*), SUM(a), MIN(a) FROM empty`)
	if rows[0][0] != "0" || rows[0][1] != "NULL" || rows[0][2] != "NULL" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL ORDER BY dept_id`)
	if len(rows) != 2 || rows[0][0] != "1" || rows[1][0] != "2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOrderByVariants(t *testing.T) {
	e := seedEmployees(t)
	// by alias
	rows := queryStrings(t, e, `SELECT name, salary AS pay FROM emp ORDER BY pay DESC LIMIT 2`)
	if rows[0][0] != "eve" || rows[1][0] != "ann" {
		t.Fatalf("rows = %v", rows)
	}
	// by ordinal
	rows = queryStrings(t, e, `SELECT name, salary FROM emp ORDER BY 2 LIMIT 1`)
	if rows[0][0] != "carol" {
		t.Fatalf("rows = %v", rows)
	}
	// by column not in output
	rows = queryStrings(t, e, `SELECT name FROM emp ORDER BY salary DESC LIMIT 1`)
	if rows[0][0] != "eve" {
		t.Fatalf("rows = %v", rows)
	}
	// NULLs sort first ascending
	rows = queryStrings(t, e, `SELECT name FROM emp ORDER BY dept_id, name`)
	if rows[0][0] != "eve" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLimitOffset(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2`)
	if len(rows) != 2 || rows[0][0] != "3" || rows[1][0] != "4" {
		t.Fatalf("rows = %v", rows)
	}
	rows = queryStrings(t, e, `SELECT id FROM emp ORDER BY id OFFSET 10`)
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestParameters(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT name FROM emp WHERE salary > ? AND dept_id = ? ORDER BY name`,
		NewDouble(90000), NewInt(1))
	if len(rows) != 2 || rows[0][0] != "ann" {
		t.Fatalf("rows = %v", rows)
	}
	_, err := e.Exec(`SELECT * FROM emp WHERE id = ?`)
	if err == nil || !strings.Contains(err.Error(), "parameters") {
		t.Fatalf("missing param err = %v", err)
	}
}

func TestScalarFunctions(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT UPPER(name), LOWER('ABC'), LENGTH(name),
		SUBSTR(name, 1, 2), COALESCE(dept_id, -1), ABS(-5), ROUND(3.567, 2), TRIM('  x ')
		FROM emp WHERE id = 5`)
	want := []string{"EVE", "abc", "3", "ev", "-1", "5", "3.57", "x"}
	for i, w := range want {
		if rows[0][i] != w {
			t.Errorf("col %d = %q, want %q", i, rows[0][i], w)
		}
	}
}

func TestCaseExpression(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT name, CASE WHEN salary >= 100000 THEN 'high'
		WHEN salary >= 90000 THEN 'mid' ELSE 'low' END AS band
		FROM emp ORDER BY id`)
	want := []string{"high", "mid", "low", "mid", "high"}
	for i, w := range want {
		if rows[i][1] != w {
			t.Errorf("row %d band = %q, want %q", i, rows[i][1], w)
		}
	}
}

func TestLike(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name`)
	if len(rows) != 3 { // ann, carol, dan
		t.Fatalf("rows = %v", rows)
	}
	rows = queryStrings(t, e, `SELECT name FROM emp WHERE name LIKE '_ob'`)
	if len(rows) != 1 || rows[0][0] != "bob" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExpressionOnlySelect(t *testing.T) {
	e := New("t")
	rows := queryStrings(t, e, `SELECT 1 + 1, 'a' || 'b', CAST('5' AS INTEGER)`)
	if rows[0][0] != "2" || rows[0][1] != "ab" || rows[0][2] != "5" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInsertUpdateDeleteCounts(t *testing.T) {
	e := seedEmployees(t)
	res, err := e.Exec(`UPDATE emp SET salary = salary * 1.1 WHERE dept_id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateCount != 2 || res.CA.UpdateCount != 2 {
		t.Fatalf("update count = %d", res.UpdateCount)
	}
	rows := queryStrings(t, e, `SELECT salary FROM emp WHERE id = 1`)
	if rows[0][0] != "132000.00000000001" && rows[0][0] != "132000" {
		t.Fatalf("salary = %v", rows)
	}
	res, err = e.Exec(`DELETE FROM emp WHERE dept_id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateCount != 2 {
		t.Fatalf("delete count = %d", res.UpdateCount)
	}
	res, err = e.Exec(`DELETE FROM emp WHERE id = 999`)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateCount != 0 || res.CA.SQLState != StateNoData {
		t.Fatalf("no-op delete = %+v", res.CA)
	}
}

func TestUpdateSeesConsistentSnapshot(t *testing.T) {
	e := New("t")
	e.MustExec(`CREATE TABLE n (v INTEGER)`)
	e.MustExec(`INSERT INTO n VALUES (1), (2), (3)`)
	e.MustExec(`UPDATE n SET v = v + 10`)
	rows := queryStrings(t, e, `SELECT v FROM n ORDER BY v`)
	if rows[0][0] != "11" || rows[2][0] != "13" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestConstraints(t *testing.T) {
	e := seedEmployees(t)
	// PK violation
	_, err := e.Exec(`INSERT INTO emp (id, name) VALUES (1, 'dup')`)
	if err == nil || !strings.Contains(err.Error(), "unique constraint") {
		t.Fatalf("pk err = %v", err)
	}
	// NOT NULL violation
	_, err = e.Exec(`INSERT INTO emp (id) VALUES (99)`)
	if err == nil || !strings.Contains(err.Error(), "may not be NULL") {
		t.Fatalf("notnull err = %v", err)
	}
	// Update PK to a duplicate
	_, err = e.Exec(`UPDATE emp SET id = 2 WHERE id = 1`)
	if err == nil {
		t.Fatal("expected unique violation on update")
	}
	// Failed multi-row insert rolls back entirely (statement atomicity).
	before, _ := e.Database().TableRowCount("emp")
	_, err = e.Exec(`INSERT INTO emp (id, name) VALUES (50, 'ok'), (1, 'dup')`)
	if err == nil {
		t.Fatal("expected violation")
	}
	after, _ := e.Database().TableRowCount("emp")
	if before != after {
		t.Fatalf("partial insert persisted: %d -> %d", before, after)
	}
}

func TestUniqueColumnConstraint(t *testing.T) {
	e := New("t")
	e.MustExec(`CREATE TABLE u (id INTEGER PRIMARY KEY, code VARCHAR(8) UNIQUE)`)
	e.MustExec(`INSERT INTO u VALUES (1, 'a'), (2, 'b')`)
	if _, err := e.Exec(`INSERT INTO u VALUES (3, 'a')`); err == nil {
		t.Fatal("expected unique violation")
	}
	// NULLs do not violate UNIQUE.
	e.MustExec(`INSERT INTO u (id) VALUES (4)`)
	e.MustExec(`INSERT INTO u (id) VALUES (5)`)
}

func TestIndexCreateUseDrop(t *testing.T) {
	e := seedEmployees(t)
	e.MustExec(`CREATE INDEX idx_dept ON emp (dept_id)`)
	infos := e.Database().Indexes()
	found := false
	for _, ix := range infos {
		if ix.Name == "idx_dept" && ix.Table == "emp" && ix.Column == "dept_id" {
			found = true
		}
	}
	if !found {
		t.Fatalf("indexes = %+v", infos)
	}
	// Queries still correct with the index present.
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM emp WHERE dept_id = 1`)
	if rows[0][0] != "2" {
		t.Fatalf("rows = %v", rows)
	}
	e.MustExec(`DROP INDEX idx_dept`)
	if _, err := e.Exec(`DROP INDEX idx_dept`); err == nil {
		t.Fatal("double drop should fail")
	}
	// Unique index creation fails when duplicates exist.
	if _, err := e.Exec(`CREATE UNIQUE INDEX uq_dept ON emp (dept_id)`); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestDDLErrors(t *testing.T) {
	e := seedEmployees(t)
	if _, err := e.Exec(`CREATE TABLE emp (a INTEGER)`); err == nil {
		t.Fatal("duplicate table")
	}
	e.MustExec(`CREATE TABLE IF NOT EXISTS emp (a INTEGER)`) // tolerated
	if _, err := e.Exec(`DROP TABLE missing`); err == nil {
		t.Fatal("missing table")
	}
	e.MustExec(`DROP TABLE IF EXISTS missing`)
	if _, err := e.Exec(`SELECT * FROM missing`); err == nil {
		t.Fatal("select from missing table")
	}
	if _, err := e.Exec(`SELECT nocolumn FROM emp`); err == nil {
		t.Fatal("unknown column")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := seedEmployees(t)
	_, err := e.Exec(`SELECT id FROM emp e JOIN dept d ON e.dept_id = d.id`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	e := New("t")
	if _, err := e.Exec(`SELECT 1 / 0`); err == nil {
		t.Fatal("int division by zero")
	}
	if _, err := e.Exec(`SELECT 1.0 / 0`); err == nil {
		t.Fatal("float division by zero")
	}
	if _, err := e.Exec(`SELECT 5 % 0`); err == nil {
		t.Fatal("modulo by zero")
	}
}

func TestSQLCAStates(t *testing.T) {
	e := seedEmployees(t)
	res, _ := e.Exec(`SELECT * FROM emp WHERE id = 12345`)
	if res.CA.SQLState != StateNoData || res.CA.SQLCode != 100 {
		t.Fatalf("CA = %+v", res.CA)
	}
	res, err := e.Exec(`SELECT * FROM emp WHERE id = 1`)
	if err != nil || res.CA.SQLState != StateSuccess || res.CA.RowsFetched != 1 {
		t.Fatalf("CA = %+v", res.CA)
	}
	res, _ = e.Exec(`SELECT bogus syntax here from`)
	if res.CA.SQLState != StateSyntax {
		t.Fatalf("CA = %+v", res.CA)
	}
	res, _ = e.Exec(`INSERT INTO emp (id, name) VALUES (1, 'dup')`)
	if res.CA.SQLState != StateConstraint {
		t.Fatalf("CA = %+v", res.CA)
	}
}

func TestCatalogMetadata(t *testing.T) {
	e := seedEmployees(t)
	names := e.Database().TableNames()
	if len(names) != 2 || names[0] != "dept" || names[1] != "emp" {
		t.Fatalf("names = %v", names)
	}
	schema, err := e.Database().TableSchema("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 5 || schema[0].Name != "id" || !schema[0].PrimaryKey {
		t.Fatalf("schema = %+v", schema)
	}
	n, err := e.Database().TableRowCount("emp")
	if err != nil || n != 5 {
		t.Fatalf("rowcount = %d, %v", n, err)
	}
	if _, err := e.Database().TableSchema("nope"); err == nil {
		t.Fatal("missing table schema should error")
	}
}

func TestInPredicate(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT name FROM emp WHERE id IN (1, 3, 999) ORDER BY id`)
	if len(rows) != 2 || rows[0][0] != "ann" || rows[1][0] != "carol" {
		t.Fatalf("rows = %v", rows)
	}
	rows = queryStrings(t, e, `SELECT name FROM emp WHERE id NOT IN (1, 2, 3, 4)`)
	if len(rows) != 1 || rows[0][0] != "eve" {
		t.Fatalf("rows = %v", rows)
	}
	// NULL in the IN list makes non-matches UNKNOWN.
	rows = queryStrings(t, e, `SELECT name FROM emp WHERE id NOT IN (1, NULL)`)
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestBetween(t *testing.T) {
	e := seedEmployees(t)
	rows := queryStrings(t, e, `SELECT name FROM emp WHERE salary BETWEEN 90000 AND 120000 ORDER BY name`)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMultiTableDropIsolation(t *testing.T) {
	e := seedEmployees(t)
	e.MustExec(`DROP TABLE dept`)
	if _, err := e.Exec(`SELECT * FROM dept`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	// emp unaffected
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM emp`)
	if rows[0][0] != "5" {
		t.Fatalf("rows = %v", rows)
	}
}
