package sqlengine

import (
	"context"
	"regexp"
	"strings"
)

// disableVector forces the row executor even for plans that compiled a
// vectorised operator. The equivalence tests flip it (alongside
// disablePlanner) to prove all three execution paths produce
// byte-identical results.
var disableVector = false

// Tri-state selection values: SQL three-valued logic over a chunk.
// Only triT rows survive a filter.
const (
	triF int8 = 0
	triT int8 = 1
	triN int8 = 2
)

// Possibility masks for zone-map analysis: the set of tri-states a
// predicate might produce for some row of a chunk. A chunk is skipped
// when maskT is impossible. Over-approximating is always safe;
// under-approximating would drop rows.
const (
	maskT uint8 = 1 << iota
	maskF
	maskN
)

// vecInfo is a plan's vectorised-execution annotation: the compiled
// chunk predicate (nil when the statement has no WHERE clause) and the
// projection gather list (column ordinals when every output expression
// is a plain column; nil means survivors materialise their row and
// evaluate projections the row way).
type vecInfo struct {
	pred vecPred
	proj []int
}

// vecPred is a plan-time compiled predicate tree. Operand expressions
// (literals, parameters) are kept symbolic and evaluated once per
// execution by bindVecPred; any binding that could diverge from
// interpreter semantics (evaluation error, incomparable type) refuses
// to bind and the row executor runs instead.
type vecPred interface{ vecPred() }

type vpCmp struct {
	col     int
	op      string // =, <>, <, <=, >, >=  (column on the left)
	operand Expr
}

type vpLike struct {
	col     int
	pattern Expr
}

type vpIsNull struct {
	col    int
	negate bool
}

type vpBetween struct {
	col    int
	lo, hi Expr
	negate bool
}

type vpIn struct {
	col    int
	items  []Expr
	negate bool
}

type vpAnd struct{ l, r vecPred }
type vpOr struct{ l, r vecPred }
type vpNot struct{ c vecPred }

// vpConst is a literal-valued predicate (e.g. the residue of constant
// folding). tri was proven at compile time: truthy() cannot error on
// the folded value.
type vpConst struct{ tri int8 }

func (*vpCmp) vecPred()     {}
func (*vpLike) vecPred()    {}
func (*vpIsNull) vecPred()  {}
func (*vpBetween) vecPred() {}
func (*vpIn) vecPred()      {}
func (*vpAnd) vecPred()     {}
func (*vpOr) vecPred()      {}
func (*vpNot) vecPred()     {}
func (*vpConst) vecPred()   {}

// flipCmp mirrors an operator for const-on-the-left comparisons.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

// compileVecPred translates a folded, rewritten predicate tree into a
// vector predicate over base-table columns. ok=false means some
// subtree is outside the vectorisable class (subqueries, arithmetic,
// column-vs-column comparison, non-bool constants, ...) and the plan
// keeps the row filter. The compiled class is chosen so that kernel
// evaluation can NEVER error at runtime: every error the interpreter
// could raise per row is either proven absent here or detected at bind
// time, which falls back to the row path for exact error parity.
func compileVecPred(e Expr, t *Table) (vecPred, bool) {
	switch n := e.(type) {
	case *LiteralExpr:
		if n.Value.IsNull() {
			return &vpConst{tri: triN}, true
		}
		b, err := truthy(n.Value)
		if err != nil {
			return nil, false // interpreter errors per row; keep row path
		}
		if b {
			return &vpConst{tri: triT}, true
		}
		return &vpConst{tri: triF}, true
	case *BinaryExpr:
		switch n.Op {
		case "AND", "OR":
			l, ok := compileVecPred(n.Left, t)
			if !ok {
				return nil, false
			}
			r, ok := compileVecPred(n.Right, t)
			if !ok {
				return nil, false
			}
			if n.Op == "AND" {
				return &vpAnd{l: l, r: r}, true
			}
			return &vpOr{l: l, r: r}, true
		case "=", "<>", "<", "<=", ">", ">=":
			if col, ok := vecColumn(n.Left, t); ok && constExpr(n.Right) {
				return &vpCmp{col: col, op: n.Op, operand: n.Right}, true
			}
			if col, ok := vecColumn(n.Right, t); ok && constExpr(n.Left) {
				return &vpCmp{col: col, op: flipCmp(n.Op), operand: n.Left}, true
			}
			return nil, false
		case "LIKE":
			col, ok := vecColumn(n.Left, t)
			if !ok || t.Columns[col].Type != TypeVarchar || !constExpr(n.Right) {
				// Non-varchar columns LIKE via String() coercion; keep the
				// interpreter's exact rendering by not vectorising them.
				return nil, false
			}
			return &vpLike{col: col, pattern: n.Right}, true
		}
		return nil, false
	case *UnaryExpr:
		if n.Op != "NOT" {
			return nil, false
		}
		c, ok := compileVecPred(n.Operand, t)
		if !ok {
			return nil, false
		}
		return &vpNot{c: c}, true
	case *IsNullExpr:
		col, ok := vecColumn(n.Operand, t)
		if !ok {
			return nil, false
		}
		return &vpIsNull{col: col, negate: n.Negate}, true
	case *BetweenExpr:
		col, ok := vecColumn(n.Operand, t)
		if !ok || !constExpr(n.Lo) || !constExpr(n.Hi) {
			return nil, false
		}
		return &vpBetween{col: col, lo: n.Lo, hi: n.Hi, negate: n.Negate}, true
	case *InExpr:
		if n.Subquery != nil {
			return nil, false
		}
		col, ok := vecColumn(n.Operand, t)
		if !ok {
			return nil, false
		}
		for _, it := range n.List {
			if !constExpr(it) {
				return nil, false
			}
		}
		return &vpIn{col: col, items: n.List, negate: n.Negate}, true
	}
	return nil, false
}

// vecColumn resolves a rewritten expression to a base-table column
// ordinal (vector plans are join-free, so every binding is a base
// column).
func vecColumn(e Expr, t *Table) (int, bool) {
	bc, ok := e.(*boundColExpr)
	if !ok || bc.idx >= len(t.Columns) {
		return 0, false
	}
	return bc.idx, true
}

// boundVec is a vecPred with its constant operands evaluated for one
// execution. eval fills a tri-state selection vector for a chunk;
// possible reports which tri-states the chunk's zone map admits.
// Kernels are error-free by construction.
type boundVec interface {
	eval(ch *colChunk, out []int8)
	possible(ch *colChunk) uint8
}

// evalVecConst evaluates a bind-time constant (literal or parameter).
func evalVecConst(e Expr, params []Value) (Value, bool) {
	v, err := eval(e, &evalEnv{params: params})
	if err != nil {
		return Null, false
	}
	return v, true
}

// bindVecPred resolves a compiled predicate's constants against this
// execution's parameters. ok=false (operand evaluation error, operand
// type Compare cannot order against the column, uncompilable LIKE
// pattern) sends the statement down the row path, which reproduces the
// interpreter's per-row error surface exactly — including producing NO
// error when the table has no rows to evaluate.
func bindVecPred(p vecPred, params []Value, t *Table) (boundVec, bool) {
	switch n := p.(type) {
	case *vpConst:
		return &bvConst{tri: n.tri}, true
	case *vpCmp:
		v, ok := evalVecConst(n.operand, params)
		if !ok {
			return nil, false
		}
		if v.IsNull() {
			return bvAllN{}, true
		}
		if !comparableWith(v, t.Columns[n.col].Type) {
			return nil, false
		}
		return &bvCmp{col: n.col, op: n.op, tri: opTri(n.op), val: v}, true
	case *vpLike:
		v, ok := evalVecConst(n.pattern, params)
		if !ok {
			return nil, false
		}
		if v.IsNull() {
			return bvAllN{}, true
		}
		pv, err := v.Coerce(TypeVarchar)
		if err != nil {
			return nil, false
		}
		re, err := compileLike(pv.S)
		if err != nil {
			return nil, false
		}
		return &bvLike{col: n.col, re: re}, true
	case *vpIsNull:
		return &bvIsNull{col: n.col, negate: n.negate}, true
	case *vpBetween:
		lo, ok := evalVecConst(n.lo, params)
		if !ok {
			return nil, false
		}
		hi, ok := evalVecConst(n.hi, params)
		if !ok {
			return nil, false
		}
		if lo.IsNull() || hi.IsNull() {
			// NULL bound: the interpreter yields NULL for every non-null
			// operand too (it null-checks before comparing).
			return bvAllN{}, true
		}
		ct := t.Columns[n.col].Type
		if !comparableWith(lo, ct) || !comparableWith(hi, ct) {
			return nil, false
		}
		return &bvBetween{col: n.col, lo: lo, hi: hi, negate: n.negate}, true
	case *vpIn:
		b := &bvIn{col: n.col, negate: n.negate}
		ct := t.Columns[n.col].Type
		for _, it := range n.items {
			v, ok := evalVecConst(it, params)
			if !ok {
				return nil, false
			}
			if v.IsNull() {
				b.sawNull = true
				continue
			}
			if !comparableWith(v, ct) {
				// The interpreter errors on the first non-matching row to
				// reach this item; only the row path can time that.
				return nil, false
			}
			b.items = append(b.items, v)
		}
		return b, true
	case *vpAnd:
		l, ok := bindVecPred(n.l, params, t)
		if !ok {
			return nil, false
		}
		r, ok := bindVecPred(n.r, params, t)
		if !ok {
			return nil, false
		}
		return &bvAnd{l: l, r: r}, true
	case *vpOr:
		l, ok := bindVecPred(n.l, params, t)
		if !ok {
			return nil, false
		}
		r, ok := bindVecPred(n.r, params, t)
		if !ok {
			return nil, false
		}
		return &bvOr{l: l, r: r}, true
	case *vpNot:
		c, ok := bindVecPred(n.c, params, t)
		if !ok {
			return nil, false
		}
		return &bvNot{c: c}, true
	}
	return nil, false
}

// cmpF is Compare's three-way float ordering: NaN compares equal to
// everything (af<bf and af>bf are both false), which the kernels must
// reproduce — never use == on doubles here.
func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpI(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// vecCmp is Compare(vec[i], c) for a non-null row and a bind-checked
// comparable constant — the slow generic form used by the BETWEEN/IN
// kernels and non-numeric comparisons.
func vecCmp(v *colVec, i int, c Value) int {
	switch v.typ {
	case TypeInteger, TypeBigint:
		if c.Type == TypeDouble {
			return cmpF(float64(v.ints[i]), c.F)
		}
		return cmpI(v.ints[i], c.I)
	case TypeDouble:
		return cmpF(v.flts[i], c.asFloat())
	case TypeVarchar:
		return strings.Compare(v.strs[i], c.S)
	case TypeBoolean:
		a, b := v.bools[i], c.B
		switch {
		case a == b:
			return 0
		case !a:
			return -1
		}
		return 1
	case TypeTimestamp:
		a, b := v.times[i], c.T
		switch {
		case a.Before(b):
			return -1
		case a.After(b):
			return 1
		}
		return 0
	}
	return 0
}

// opTri maps a comparison result (-1,0,1 at indexes 0,1,2) to the
// predicate outcome for each operator.
func opTri(op string) [3]int8 {
	switch op {
	case "=":
		return [3]int8{triF, triT, triF}
	case "<>":
		return [3]int8{triT, triF, triT}
	case "<":
		return [3]int8{triT, triF, triF}
	case "<=":
		return [3]int8{triT, triT, triF}
	case ">":
		return [3]int8{triF, triF, triT}
	}
	return [3]int8{triF, triT, triT} // >=
}

// bvAllN marks a predicate subtree that is NULL for every row (NULL
// comparison operand): nothing matches, nothing errors.
type bvAllN struct{}

func (bvAllN) eval(ch *colChunk, out []int8) {
	for i := 0; i < ch.n; i++ {
		out[i] = triN
	}
}
func (bvAllN) possible(*colChunk) uint8 { return maskN }

type bvConst struct{ tri int8 }

func (b *bvConst) eval(ch *colChunk, out []int8) {
	for i := 0; i < ch.n; i++ {
		out[i] = b.tri
	}
}
func (b *bvConst) possible(*colChunk) uint8 {
	switch b.tri {
	case triT:
		return maskT
	case triF:
		return maskF
	}
	return maskN
}

// bvCmp evaluates column <op> constant over a chunk with typed inner
// loops for the hot layouts (int, float, string) and the generic
// comparator otherwise.
type bvCmp struct {
	col int
	op  string
	tri [3]int8
	val Value
}

func (b *bvCmp) eval(ch *colChunk, out []int8) {
	v := &ch.vecs[b.col]
	switch v.typ {
	case TypeInteger, TypeBigint:
		if b.val.Type == TypeDouble {
			c := b.val.F
			for i := 0; i < ch.n; i++ {
				if v.nulls.get(i) {
					out[i] = triN
					continue
				}
				out[i] = b.tri[cmpF(float64(v.ints[i]), c)+1]
			}
			return
		}
		c := b.val.I
		for i := 0; i < ch.n; i++ {
			if v.nulls.get(i) {
				out[i] = triN
				continue
			}
			x := v.ints[i]
			switch {
			case x < c:
				out[i] = b.tri[0]
			case x > c:
				out[i] = b.tri[2]
			default:
				out[i] = b.tri[1]
			}
		}
	case TypeDouble:
		c := b.val.asFloat()
		for i := 0; i < ch.n; i++ {
			if v.nulls.get(i) {
				out[i] = triN
				continue
			}
			out[i] = b.tri[cmpF(v.flts[i], c)+1]
		}
	case TypeVarchar:
		c := b.val.S
		for i := 0; i < ch.n; i++ {
			if v.nulls.get(i) {
				out[i] = triN
				continue
			}
			out[i] = b.tri[strings.Compare(v.strs[i], c)+1]
		}
	default:
		for i := 0; i < ch.n; i++ {
			if v.nulls.get(i) {
				out[i] = triN
				continue
			}
			out[i] = b.tri[vecCmp(v, i, b.val)+1]
		}
	}
}

// cmpPossible reports which outcomes an operator admits given the
// chunk's [min,max] ordering against the constant.
func cmpPossible(op string, lo, hi int) (canT, canF bool) {
	switch op {
	case "=":
		return lo <= 0 && hi >= 0, !(lo == 0 && hi == 0)
	case "<>":
		return !(lo == 0 && hi == 0), lo <= 0 && hi >= 0
	case "<":
		return lo < 0, hi >= 0
	case "<=":
		return lo <= 0, hi > 0
	case ">":
		return hi > 0, lo <= 0
	}
	return hi >= 0, lo < 0 // >=
}

func (b *bvCmp) possible(ch *colChunk) uint8 {
	v := &ch.vecs[b.col]
	var m uint8
	if v.nonNull < ch.n {
		m |= maskN
	}
	if v.nonNull == 0 {
		return m
	}
	// NaN defeats ordering (it compares equal to everything), and a
	// vector whose every value is NaN has no min/max at all.
	if v.hasNaN || v.statN == 0 {
		return m | maskT | maskF
	}
	lo, errLo := Compare(v.min, b.val)
	hi, errHi := Compare(v.max, b.val)
	if errLo != nil || errHi != nil {
		return m | maskT | maskF
	}
	canT, canF := cmpPossible(b.op, lo, hi)
	if canT {
		m |= maskT
	}
	if canF {
		m |= maskF
	}
	return m
}

type bvLike struct {
	col int
	re  *regexp.Regexp
}

func (b *bvLike) eval(ch *colChunk, out []int8) {
	v := &ch.vecs[b.col]
	for i := 0; i < ch.n; i++ {
		if v.nulls.get(i) {
			out[i] = triN
			continue
		}
		if b.re.MatchString(v.strs[i]) {
			out[i] = triT
		} else {
			out[i] = triF
		}
	}
}

func (b *bvLike) possible(ch *colChunk) uint8 {
	v := &ch.vecs[b.col]
	var m uint8
	if v.nonNull < ch.n {
		m |= maskN
	}
	if v.nonNull > 0 {
		m |= maskT | maskF
	}
	return m
}

type bvIsNull struct {
	col    int
	negate bool
}

func (b *bvIsNull) eval(ch *colChunk, out []int8) {
	v := &ch.vecs[b.col]
	t, f := triT, triF
	if b.negate {
		t, f = triF, triT
	}
	for i := 0; i < ch.n; i++ {
		if v.nulls.get(i) {
			out[i] = t
		} else {
			out[i] = f
		}
	}
}

func (b *bvIsNull) possible(ch *colChunk) uint8 {
	v := &ch.vecs[b.col]
	hasNull, hasVal := v.nonNull < ch.n, v.nonNull > 0
	if b.negate {
		hasNull, hasVal = hasVal, hasNull
	}
	var m uint8
	if hasNull {
		m |= maskT
	}
	if hasVal {
		m |= maskF
	}
	return m
}

type bvBetween struct {
	col    int
	lo, hi Value
	negate bool
}

func (b *bvBetween) eval(ch *colChunk, out []int8) {
	v := &ch.vecs[b.col]
	for i := 0; i < ch.n; i++ {
		if v.nulls.get(i) {
			out[i] = triN
			continue
		}
		res := vecCmp(v, i, b.lo) >= 0 && vecCmp(v, i, b.hi) <= 0
		if b.negate {
			res = !res
		}
		if res {
			out[i] = triT
		} else {
			out[i] = triF
		}
	}
}

func (b *bvBetween) possible(ch *colChunk) uint8 {
	v := &ch.vecs[b.col]
	var m uint8
	if v.nonNull < ch.n {
		m |= maskN
	}
	if v.nonNull == 0 {
		return m
	}
	if v.hasNaN || v.statN == 0 {
		return m | maskT | maskF
	}
	cMaxLo, e1 := Compare(v.max, b.lo)
	cMinHi, e2 := Compare(v.min, b.hi)
	cMinLo, e3 := Compare(v.min, b.lo)
	cMaxHi, e4 := Compare(v.max, b.hi)
	if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
		return m | maskT | maskF
	}
	canT := cMaxLo >= 0 && cMinHi <= 0 // ranges overlap
	canF := cMinLo < 0 || cMaxHi > 0   // some value outside
	if b.negate {
		canT, canF = canF, canT
	}
	if canT {
		m |= maskT
	}
	if canF {
		m |= maskF
	}
	return m
}

type bvIn struct {
	col     int
	items   []Value // non-null, in list order
	sawNull bool
	negate  bool
}

func (b *bvIn) eval(ch *colChunk, out []int8) {
	v := &ch.vecs[b.col]
	match, miss := triT, triF
	if b.negate {
		match, miss = triF, triT
	}
	for i := 0; i < ch.n; i++ {
		if v.nulls.get(i) {
			out[i] = triN
			continue
		}
		matched := false
		for _, it := range b.items {
			if vecCmp(v, i, it) == 0 {
				matched = true
				break
			}
		}
		switch {
		case matched:
			out[i] = match
		case b.sawNull:
			out[i] = triN
		default:
			out[i] = miss
		}
	}
}

func (b *bvIn) possible(ch *colChunk) uint8 {
	v := &ch.vecs[b.col]
	var m uint8
	if v.nonNull < ch.n || b.sawNull {
		m |= maskN
	}
	if v.nonNull == 0 {
		return m
	}
	if b.negate || v.hasNaN || v.statN == 0 {
		return m | maskT | maskF
	}
	// IN can only be true when some item falls inside [min,max].
	canT := false
	for _, it := range b.items {
		lo, e1 := Compare(v.min, it)
		hi, e2 := Compare(v.max, it)
		if e1 != nil || e2 != nil || (lo <= 0 && hi >= 0) {
			canT = true
			break
		}
	}
	if canT {
		m |= maskT
	}
	return m | maskF
}

type bvAnd struct {
	l, r boundVec
	buf  []int8
}

func (b *bvAnd) eval(ch *colChunk, out []int8) {
	b.l.eval(ch, out)
	if b.buf == nil {
		b.buf = make([]int8, chunkRows)
	}
	rb := b.buf[:ch.n]
	b.r.eval(ch, rb)
	for i := 0; i < ch.n; i++ {
		l, r := out[i], rb[i]
		switch {
		case l == triF || r == triF:
			out[i] = triF
		case l == triT && r == triT:
			out[i] = triT
		default:
			out[i] = triN
		}
	}
}

func (b *bvAnd) possible(ch *colChunk) uint8 {
	lm, rm := b.l.possible(ch), b.r.possible(ch)
	var m uint8
	if lm&maskT != 0 && rm&maskT != 0 {
		m |= maskT
	}
	if lm&maskF != 0 || rm&maskF != 0 {
		m |= maskF
	}
	if lm&maskN != 0 || rm&maskN != 0 {
		m |= maskN
	}
	return m
}

type bvOr struct {
	l, r boundVec
	buf  []int8
}

func (b *bvOr) eval(ch *colChunk, out []int8) {
	b.l.eval(ch, out)
	if b.buf == nil {
		b.buf = make([]int8, chunkRows)
	}
	rb := b.buf[:ch.n]
	b.r.eval(ch, rb)
	for i := 0; i < ch.n; i++ {
		l, r := out[i], rb[i]
		switch {
		case l == triT || r == triT:
			out[i] = triT
		case l == triF && r == triF:
			out[i] = triF
		default:
			out[i] = triN
		}
	}
}

func (b *bvOr) possible(ch *colChunk) uint8 {
	lm, rm := b.l.possible(ch), b.r.possible(ch)
	var m uint8
	if lm&maskT != 0 || rm&maskT != 0 {
		m |= maskT
	}
	if lm&maskF != 0 && rm&maskF != 0 {
		m |= maskF
	}
	if lm&maskN != 0 || rm&maskN != 0 {
		m |= maskN
	}
	return m
}

type bvNot struct{ c boundVec }

func (b *bvNot) eval(ch *colChunk, out []int8) {
	b.c.eval(ch, out)
	for i := 0; i < ch.n; i++ {
		switch out[i] {
		case triT:
			out[i] = triF
		case triF:
			out[i] = triT
		}
	}
}

func (b *bvNot) possible(ch *colChunk) uint8 {
	cm := b.c.possible(ch)
	var m uint8
	if cm&maskF != 0 {
		m |= maskT
	}
	if cm&maskT != 0 {
		m |= maskF
	}
	if cm&maskN != 0 {
		m |= maskN
	}
	return m
}

// chunkSkippable reports that no row in the chunk can satisfy the
// predicate, so the whole chunk is skipped without touching its
// vectors.
func chunkSkippable(bp boundVec, ch *colChunk) bool {
	return bp.possible(ch)&maskT == 0
}

// vectorEnabled reports whether columnar operators may run for this
// database right now (both the global test toggle and the per-engine
// option are consulted per execution, so cached plans honour them).
func (d *Database) vectorEnabled() bool {
	return !disableVector && !d.vectorOff
}

// ctxCheck mirrors evalEnv.checkCtx at chunk granularity.
func ctxCheck(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &CancelledError{Err: err}
	}
	return nil
}

// execPlanVector runs a compiled plan through the columnar operators:
// zone-map chunk skipping, kernel predicate evaluation into a
// selection vector, then columnar gather (or row materialisation for
// computed projections). handled=false means a bind-time fallback —
// the caller must run the row path; err is terminal either way.
// Caller holds d.mu for reading.
func (d *Database) execPlanVector(ctx context.Context, p *selectPlan, params []Value) (set *ResultSet, handled bool, err error) {
	var bp boundVec
	if p.vec.pred != nil {
		var ok bool
		bp, ok = bindVecPred(p.vec.pred, params, p.t)
		if !ok {
			return nil, false, nil
		}
	}
	tc := p.t.ensureChunks()
	if !tc.ok {
		return nil, false, nil
	}

	env := &evalEnv{cols: p.cols, params: params, db: d, ctx: ctx}
	out := &ResultSet{Columns: p.projCols}
	needKeys := len(p.order) > 0 && !p.orderSatisfied
	var orderKeys [][]Value
	slab := newRowSlab(len(p.projExprs))
	var selbuf [chunkRows]int8
	// Row materialisation is needed when some projection or sort key is
	// not a plain column gather.
	needRow := p.vec.proj == nil
	for _, k := range p.order {
		if k.kind == orderKeyExpr {
			needRow = true
		}
	}

	for _, ch := range tc.chunks {
		if err := ctxCheck(ctx); err != nil {
			return nil, true, err
		}
		if bp != nil && chunkSkippable(bp, ch) {
			d.vecSkipped.Add(1)
			continue
		}
		d.vecBatches.Add(1)
		sel := selbuf[:ch.n]
		if bp != nil {
			bp.eval(ch, sel)
		} else {
			for i := range sel {
				sel[i] = triT
			}
		}
		for i := 0; i < ch.n; i++ {
			if sel[i] != triT {
				continue
			}
			if needRow {
				env.row = p.t.rows[ch.ids[i]]
			}
			vals := slab.next()
			if p.vec.proj != nil {
				for k, ci := range p.vec.proj {
					vals[k] = ch.vecs[ci].value(i)
				}
			} else {
				for k, e := range p.projExprs {
					v, err := eval(e, env)
					if err != nil {
						return nil, true, err
					}
					vals[k] = v
				}
			}
			out.Rows = append(out.Rows, vals)
			if needKeys {
				keys := make([]Value, len(p.order))
				for ki, k := range p.order {
					if k.kind == orderKeyProjected {
						keys[ki] = vals[k.idx]
						continue
					}
					v, err := eval(k.expr, env)
					if err != nil {
						return nil, true, err
					}
					keys[ki] = v
				}
				orderKeys = append(orderKeys, keys)
			}
		}
	}

	if needKeys {
		if err := sortRows(out, orderKeys, p.sel.OrderBy); err != nil {
			return nil, true, err
		}
	}
	if err := applyOffsetLimit(out, p.sel, env); err != nil {
		return nil, true, err
	}
	return out, true, nil
}
