// Package sqlengine implements a self-contained, in-memory relational
// database engine with a practical SQL subset: DDL (CREATE/DROP TABLE,
// CREATE/DROP INDEX), DML (INSERT, UPDATE, DELETE), and queries
// (SELECT with WHERE, INNER/LEFT JOIN, GROUP BY/HAVING, aggregates,
// DISTINCT, ORDER BY, LIMIT/OFFSET, parameter markers), plus
// transactions with the four ANSI isolation levels.
//
// The DAIS specifications treat the DBMS as an existing system that
// services wrap (paper §2.1: "web service wrappers for databases"), so
// this engine is the substitute substrate for the commercial DBMSs the
// OGSA-DAI reference implementation targeted. It exposes the artefacts
// WS-DAIR needs: result sets with column metadata, update counts, and
// an SQL communication area (SQLSTATE) per statement.
package sqlengine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the engine's column types.
type Type int

const (
	TypeNull Type = iota
	TypeInteger
	TypeBigint
	TypeDouble
	TypeVarchar
	TypeBoolean
	TypeTimestamp
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInteger:
		return "INTEGER"
	case TypeBigint:
		return "BIGINT"
	case TypeDouble:
		return "DOUBLE"
	case TypeVarchar:
		return "VARCHAR"
	case TypeBoolean:
		return "BOOLEAN"
	case TypeTimestamp:
		return "TIMESTAMP"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// TypeFromName resolves a SQL type name (with optional length suffix
// already stripped) to a Type.
func TypeFromName(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "SMALLINT":
		return TypeInteger, nil
	case "BIGINT":
		return TypeBigint, nil
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return TypeDouble, nil
	case "VARCHAR", "CHAR", "TEXT", "CHARACTER", "STRING", "CLOB":
		return TypeVarchar, nil
	case "BOOLEAN", "BOOL":
		return TypeBoolean, nil
	case "TIMESTAMP", "DATETIME", "DATE":
		return TypeTimestamp, nil
	}
	return TypeNull, fmt.Errorf("unknown type %q", name)
}

// Value is a typed SQL value. A Value with Type == TypeNull is the SQL
// NULL regardless of the other fields.
type Value struct {
	Type Type
	I    int64     // Integer, Bigint
	F    float64   // Double
	S    string    // Varchar
	B    bool      // Boolean
	T    time.Time // Timestamp
}

// Null is the SQL NULL value.
var Null = Value{Type: TypeNull}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{Type: TypeInteger, I: i} }

// NewBigint returns a BIGINT value.
func NewBigint(i int64) Value { return Value{Type: TypeBigint, I: i} }

// NewDouble returns a DOUBLE value.
func NewDouble(f float64) Value { return Value{Type: TypeDouble, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{Type: TypeVarchar, S: s} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value { return Value{Type: TypeBoolean, B: b} }

// NewTimestamp returns a TIMESTAMP value.
func NewTimestamp(t time.Time) Value { return Value{Type: TypeTimestamp, T: t.UTC()} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Type == TypeNull }

// String renders the value for result sets and diagnostics. NULL
// renders as "NULL"; use IsNull to distinguish it from the string.
func (v Value) String() string {
	switch v.Type {
	case TypeNull:
		return "NULL"
	case TypeInteger, TypeBigint:
		return strconv.FormatInt(v.I, 10)
	case TypeDouble:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeVarchar:
		return v.S
	case TypeBoolean:
		if v.B {
			return "true"
		}
		return "false"
	case TypeTimestamp:
		return v.T.UTC().Format(time.RFC3339Nano)
	}
	return "?"
}

// AppendText appends String's rendering to dst. Numeric, boolean and
// timestamp values append without the intermediate string allocation,
// which matters to the rowset encoders on the response hot path.
func (v Value) AppendText(dst []byte) []byte {
	switch v.Type {
	case TypeNull:
		return append(dst, "NULL"...)
	case TypeInteger, TypeBigint:
		return strconv.AppendInt(dst, v.I, 10)
	case TypeDouble:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case TypeVarchar:
		return append(dst, v.S...)
	case TypeBoolean:
		if v.B {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case TypeTimestamp:
		return v.T.UTC().AppendFormat(dst, time.RFC3339Nano)
	}
	return append(dst, '?')
}

// isNumeric reports whether the type participates in arithmetic.
func (t Type) isNumeric() bool {
	return t == TypeInteger || t == TypeBigint || t == TypeDouble
}

// asFloat converts any numeric value to float64.
func (v Value) asFloat() float64 {
	switch v.Type {
	case TypeInteger, TypeBigint:
		return float64(v.I)
	case TypeDouble:
		return v.F
	}
	return math.NaN()
}

// Coerce converts v to the target column type, applying the implicit
// conversions SQL permits on INSERT/UPDATE. NULL coerces to any type.
func (v Value) Coerce(t Type) (Value, error) {
	if v.IsNull() || v.Type == t {
		if v.IsNull() {
			return Null, nil
		}
		return v, nil
	}
	switch t {
	case TypeInteger, TypeBigint:
		switch v.Type {
		case TypeInteger, TypeBigint:
			return Value{Type: t, I: v.I}, nil
		case TypeDouble:
			if v.F != math.Trunc(v.F) || math.IsInf(v.F, 0) || math.IsNaN(v.F) {
				return Null, fmt.Errorf("cannot coerce %v to %s without loss", v.F, t)
			}
			return Value{Type: t, I: int64(v.F)}, nil
		case TypeVarchar:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("cannot coerce %q to %s", v.S, t)
			}
			return Value{Type: t, I: i}, nil
		case TypeBoolean:
			if v.B {
				return Value{Type: t, I: 1}, nil
			}
			return Value{Type: t, I: 0}, nil
		}
	case TypeDouble:
		switch v.Type {
		case TypeInteger, TypeBigint:
			return NewDouble(float64(v.I)), nil
		case TypeVarchar:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Null, fmt.Errorf("cannot coerce %q to DOUBLE", v.S)
			}
			return NewDouble(f), nil
		}
	case TypeVarchar:
		return NewString(v.String()), nil
	case TypeBoolean:
		switch v.Type {
		case TypeInteger, TypeBigint:
			return NewBool(v.I != 0), nil
		case TypeVarchar:
			switch strings.ToLower(strings.TrimSpace(v.S)) {
			case "true", "t", "1":
				return NewBool(true), nil
			case "false", "f", "0":
				return NewBool(false), nil
			}
			return Null, fmt.Errorf("cannot coerce %q to BOOLEAN", v.S)
		}
	case TypeTimestamp:
		if v.Type == TypeVarchar {
			return parseTimestamp(v.S)
		}
	}
	return Null, fmt.Errorf("cannot coerce %s to %s", v.Type, t)
}

// parseTimestamp accepts the common SQL and RFC 3339 layouts.
func parseTimestamp(s string) (Value, error) {
	s = strings.TrimSpace(s)
	layouts := []string{
		time.RFC3339Nano,
		time.RFC3339,
		"2006-01-02 15:04:05.999999999",
		"2006-01-02 15:04:05",
		"2006-01-02",
	}
	for _, l := range layouts {
		if t, err := time.Parse(l, s); err == nil {
			return NewTimestamp(t), nil
		}
	}
	return Null, fmt.Errorf("cannot parse timestamp %q", s)
}

// Compare orders two values. NULLs compare less than everything (the
// executor handles three-valued logic before calling Compare; ORDER BY
// uses this NULLS FIRST behaviour). Numeric types compare numerically
// across widths.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, nil
		case a.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.Type.isNumeric() && b.Type.isNumeric() {
		if a.Type != TypeDouble && b.Type != TypeDouble {
			switch {
			case a.I < b.I:
				return -1, nil
			case a.I > b.I:
				return 1, nil
			}
			return 0, nil
		}
		af, bf := a.asFloat(), b.asFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if a.Type != b.Type {
		return 0, fmt.Errorf("cannot compare %s with %s", a.Type, b.Type)
	}
	switch a.Type {
	case TypeVarchar:
		return strings.Compare(a.S, b.S), nil
	case TypeBoolean:
		switch {
		case a.B == b.B:
			return 0, nil
		case !a.B:
			return -1, nil
		default:
			return 1, nil
		}
	case TypeTimestamp:
		switch {
		case a.T.Before(b.T):
			return -1, nil
		case a.T.After(b.T):
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("cannot compare values of type %s", a.Type)
}

// Equal reports SQL equality (NULL = NULL is false; use for hashing
// only after checking IsNull).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// groupKey renders a value for use in hash-grouping keys; distinct from
// String so that NULL and the string "NULL" cannot collide.
func (v Value) groupKey() string {
	if v.IsNull() {
		return "\x00null"
	}
	return fmt.Sprintf("%d\x00%s", int(v.Type), v.String())
}
