package sqlengine

import (
	"context"
	"errors"
	"testing"
)

// seedNums builds a table of 256 identical rows so scans cross the
// 64-row cancellation probe cadence several times.
func seedNums(t testing.TB) *Engine {
	t.Helper()
	e := New("ctxdb")
	e.MustExec(`CREATE TABLE nums (n INTEGER)`)
	e.MustExec(`INSERT INTO nums VALUES (1)`)
	for i := 0; i < 8; i++ { // 1 -> 256 rows
		e.MustExec(`INSERT INTO nums SELECT n FROM nums`)
	}
	return e
}

func TestExecuteContextCancelledScan(t *testing.T) {
	e := seedNums(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.NewSession().ExecuteContext(ctx, `SELECT a.n FROM nums a JOIN nums b ON a.n = b.n`)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not unwrap to context.Canceled", err)
	}
	if res == nil || res.CA.SQLState != StateCancelled {
		t.Fatalf("result = %+v, want SQLSTATE %s", res, StateCancelled)
	}
}

func TestExecuteContextCancelledDMLRollsBack(t *testing.T) {
	e := seedNums(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.NewSession().ExecuteContext(ctx, `UPDATE nums SET n = 2`)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	// The auto-commit statement failed mid-flight; its partial effects
	// must have been undone.
	res, err := e.NewSession().Execute(`SELECT n FROM nums WHERE n = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Set.Rows); got != 0 {
		t.Fatalf("%d rows escaped the cancelled UPDATE", got)
	}
}

func TestExecuteContextBackgroundCompletes(t *testing.T) {
	e := seedNums(t)
	res, err := e.NewSession().ExecuteContext(context.Background(), `SELECT n FROM nums`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Set.Rows); got != 256 {
		t.Fatalf("rows = %d, want 256", got)
	}
}
