package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a hand-written recursive-descent parser over the token
// stream produced by lex.
type parser struct {
	toks   []token
	pos    int
	params int // count of ? markers seen
}

// Parse parses a single SQL statement. A trailing semicolon is
// permitted. It returns the statement and the number of positional
// parameters it references.
func Parse(sql string) (Statement, int, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, 0, fmt.Errorf("sql: unexpected %q after statement", p.cur().text)
	}
	return st, p.params, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, fmt.Errorf("sql: expected %s at offset %d, found %q", want, p.cur().pos, p.cur().text)
}

// identLike consumes an identifier; non-reserved usage of some keywords
// (e.g. COUNT as a column name) is not supported — keep names plain.
func (p *parser) identLike() (string, error) {
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	return "", fmt.Errorf("sql: expected identifier at offset %d, found %q", p.cur().pos, p.cur().text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "DROP"):
		return p.parseDrop()
	case p.accept(tokKeyword, "BEGIN"):
		p.accept(tokKeyword, "TRANSACTION")
		return &BeginStmt{}, nil
	case p.accept(tokKeyword, "COMMIT"):
		return &CommitStmt{}, nil
	case p.accept(tokKeyword, "ROLLBACK"):
		return &RollbackStmt{}, nil
	case p.accept(tokKeyword, "EXPLAIN"):
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if _, nested := inner.(*ExplainStmt); nested {
			return nil, fmt.Errorf("sql: EXPLAIN cannot be nested")
		}
		return &ExplainStmt{Stmt: inner}, nil
	}
	return nil, fmt.Errorf("sql: unsupported statement starting with %q", p.cur().text)
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.accept(tokKeyword, "UNIQUE")
	ordered := p.accept(tokKeyword, "ORDERED")
	switch {
	case p.accept(tokKeyword, "TABLE"):
		if unique || ordered {
			return nil, fmt.Errorf("sql: UNIQUE/ORDERED is not valid before TABLE")
		}
		return p.parseCreateTable()
	case p.accept(tokKeyword, "INDEX"):
		return p.parseCreateIndex(unique, ordered)
	case p.accept(tokKeyword, "VIEW"):
		if unique || ordered {
			return nil, fmt.Errorf("sql: UNIQUE/ORDERED is not valid before VIEW")
		}
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, Select: sel.(*SelectStmt)}, nil
	}
	return nil, fmt.Errorf("sql: expected TABLE, INDEX or VIEW after CREATE")
}

func (p *parser) parseCreateTable() (Statement, error) {
	st := &CreateTableStmt{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		if p.accept(tokKeyword, "PRIMARY") {
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			for {
				col, err := p.identLike()
				if err != nil {
					return nil, err
				}
				st.PrimaryKey = append(st.PrimaryKey, col)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, *col)
			if col.PrimaryKey {
				st.PrimaryKey = append(st.PrimaryKey, col.Name)
			}
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseColumnDef() (*ColumnDef, error) {
	name, err := p.identLike()
	if err != nil {
		return nil, err
	}
	typeName, err := p.identLike()
	if err != nil {
		return nil, fmt.Errorf("sql: column %s: %w", name, err)
	}
	typ, err := TypeFromName(typeName)
	if err != nil {
		return nil, fmt.Errorf("sql: column %s: %w", name, err)
	}
	// Optional length/precision specifier, ignored: VARCHAR(255).
	if p.accept(tokSymbol, "(") {
		for !p.accept(tokSymbol, ")") {
			if p.at(tokEOF, "") {
				return nil, fmt.Errorf("sql: unterminated type specifier for column %s", name)
			}
			p.next()
		}
	}
	col := &ColumnDef{Name: name, Type: typ}
	for {
		switch {
		case p.accept(tokKeyword, "NOT"):
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
			col.NotNull = true
		case p.accept(tokKeyword, "NULL"):
			// explicit nullable; no-op
		case p.accept(tokKeyword, "PRIMARY"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
			col.NotNull = true
		case p.accept(tokKeyword, "UNIQUE"):
			col.Unique = true
		case p.accept(tokKeyword, "DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			col.Default = e
		default:
			return col, nil
		}
	}
}

func (p *parser) parseCreateIndex(unique, ordered bool) (Statement, error) {
	name, err := p.identLike()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.identLike()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.identLike()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Column: col, Unique: unique, Ordered: ordered}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	switch {
	case p.accept(tokKeyword, "TABLE"):
		st := &DropTableStmt{}
		if p.accept(tokKeyword, "IF") {
			if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			st.IfExists = true
		}
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		st.Name = name
		return st, nil
	case p.accept(tokKeyword, "INDEX"):
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name}, nil
	case p.accept(tokKeyword, "VIEW"):
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		return &DropViewStmt{Name: name}, nil
	}
	return nil, fmt.Errorf("sql: expected TABLE, INDEX or VIEW after DROP")
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.identLike()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if p.at(tokKeyword, "SELECT") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Query = q.(*SelectStmt)
		return st, nil
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.identLike()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.identLike()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: col, Value: val})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.identLike()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseSelect() (Statement, error) {
	st, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "UNION") {
		all := p.accept(tokKeyword, "ALL")
		right, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		st.Unions = append(st.Unions, UnionPart{All: all, Sel: right})
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				it.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, it)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Limit = e
	}
	if p.accept(tokKeyword, "OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Offset = e
	}
	return st, nil
}

// parseSelectCore parses one SELECT body up to (but excluding)
// UNION / ORDER BY / LIMIT / OFFSET.
func (p *parser) parseSelectCore() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{}
	if p.accept(tokKeyword, "DISTINCT") {
		st.Distinct = true
	} else {
		p.accept(tokKeyword, "ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, *item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "FROM") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.From = tr
		for {
			var kind JoinKind
			switch {
			case p.accept(tokKeyword, "JOIN"):
				kind = JoinInner
			case p.at(tokKeyword, "INNER"):
				p.next()
				if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				kind = JoinInner
			case p.at(tokKeyword, "LEFT"):
				p.next()
				p.accept(tokKeyword, "OUTER")
				if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				kind = JoinLeft
			case p.at(tokKeyword, "RIGHT"):
				p.next()
				p.accept(tokKeyword, "OUTER")
				if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				kind = JoinRight
			case p.at(tokKeyword, "CROSS"):
				p.next()
				if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				kind = JoinCross
			case p.accept(tokSymbol, ","):
				kind = JoinCross
			default:
				goto joinsDone
			}
			jt, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			jc := JoinClause{Kind: kind, Table: jt}
			if kind != JoinCross {
				if _, err := p.expect(tokKeyword, "ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				jc.On = on
			}
			st.Joins = append(st.Joins, jc)
		}
	joinsDone:
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	return st, nil
}

func (p *parser) parseSelectItem() (*SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return &SelectItem{Star: true}, nil
	}
	// t.* form: ident '.' '*'
	if p.at(tokIdent, "") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		tbl := p.next().text
		p.next()
		p.next()
		return &SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		a, err := p.identLike()
		if err != nil {
			return nil, err
		}
		item.Alias = a
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	tr := &TableRef{}
	if p.accept(tokSymbol, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		tr.Subquery = sub.(*SelectStmt)
	} else {
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		tr.Table = name
	}
	if p.accept(tokKeyword, "AS") {
		a, err := p.identLike()
		if err != nil {
			return nil, err
		}
		tr.Alias = a
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	if tr.Subquery != nil && tr.Alias == "" {
		return nil, fmt.Errorf("sql: derived table requires an alias")
	}
	return tr, nil
}

// Expression parsing: precedence climbing.
// OR < AND < NOT < comparison < additive < multiplicative < unary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Operand: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Operand: left, Negate: neg}, nil
	}
	neg := false
	if p.at(tokKeyword, "NOT") {
		// lookahead for NOT IN / NOT BETWEEN / NOT LIKE
		nxt := p.toks[p.pos+1]
		if nxt.kind == tokKeyword && (nxt.text == "IN" || nxt.text == "BETWEEN" || nxt.text == "LIKE") {
			p.next()
			neg = true
		}
	}
	switch {
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		in := &InExpr{Operand: left, Negate: neg}
		if p.at(tokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Subquery = sub.(*SelectStmt)
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Operand: left, Lo: lo, Hi: hi, Negate: neg}, nil
	case p.accept(tokKeyword, "LIKE"):
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
		if neg {
			e = &UnaryExpr{Op: "NOT", Operand: e}
		}
		return e, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "+"
		case p.accept(tokSymbol, "-"):
			op = "-"
		case p.accept(tokSymbol, "||"):
			op = "||"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		case p.accept(tokSymbol, "%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Operand: e}, nil
	}
	p.accept(tokSymbol, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q: %w", t.text, err)
			}
			return &LiteralExpr{Value: NewDouble(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, fmt.Errorf("sql: bad number %q: %w", t.text, err)
			}
			return &LiteralExpr{Value: NewDouble(f)}, nil
		}
		if i != int64(int32(i)) {
			return &LiteralExpr{Value: NewBigint(i)}, nil
		}
		return &LiteralExpr{Value: NewInt(i)}, nil
	case tokString:
		p.next()
		return &LiteralExpr{Value: NewString(t.text)}, nil
	case tokParam:
		p.next()
		e := &ParamExpr{Index: p.params}
		p.params++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &LiteralExpr{Value: Null}, nil
		case "TRUE":
			p.next()
			return &LiteralExpr{Value: NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &LiteralExpr{Value: NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			return p.parseFuncCall(t.text)
		case "EXISTS":
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Select: sub.(*SelectStmt)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "AS"); err != nil {
				return nil, err
			}
			typeName, err := p.identLike()
			if err != nil {
				return nil, err
			}
			typ, err := TypeFromName(typeName)
			if err != nil {
				return nil, err
			}
			if p.accept(tokSymbol, "(") {
				for !p.accept(tokSymbol, ")") {
					if p.at(tokEOF, "") {
						return nil, fmt.Errorf("sql: unterminated CAST type")
					}
					p.next()
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return &CastExpr{Operand: e, Target: typ}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %q at offset %d", t.text, t.pos)
	case tokIdent:
		p.next()
		// Function call?
		if p.at(tokSymbol, "(") {
			return p.parseFuncCall(strings.ToUpper(t.text))
		}
		// Qualified column?
		if p.accept(tokSymbol, ".") {
			col, err := p.identLike()
			if err != nil {
				return nil, err
			}
			return &ColumnExpr{Table: t.text, Column: col}, nil
		}
		return &ColumnExpr{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			if p.at(tokKeyword, "SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Select: sub.(*SelectStmt)}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q at offset %d", t.text, t.pos)
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	f := &FuncExpr{Name: name}
	if p.accept(tokSymbol, "*") {
		f.Star = true
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.accept(tokSymbol, ")") {
		return f, nil
	}
	if p.accept(tokKeyword, "DISTINCT") {
		f.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	c := &CaseExpr{}
	if !p.at(tokKeyword, "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.accept(tokKeyword, "WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{When: w, Then: th})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE requires at least one WHEN")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}
