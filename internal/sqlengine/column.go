package sqlengine

import (
	"math"
	"strconv"
	"time"
)

// chunkRows is the number of rows per column chunk. 1024 keeps a
// chunk's per-column vector inside a few cache lines' worth of pages
// while amortising per-chunk overhead (zone-map checks, context
// probes) over enough rows to vanish.
const chunkRows = 1024

// bitset is a fixed-capacity null bitmap: bit i set means row i of the
// chunk is SQL NULL in that column.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) get(i int) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }

// colVec is one column's slice of one chunk: a dense typed vector with
// a null bitmap and zone-map statistics. Only the slice matching the
// column type is populated; null rows hold the zero value so vector
// indexes stay aligned with chunk row positions.
type colVec struct {
	typ   Type
	nulls bitset
	ints  []int64
	flts  []float64
	strs  []string
	bools []bool
	times []time.Time

	// Zone map: nonNull counts non-null rows; min/max order every
	// non-NaN non-null value (statN of them). NaN is excluded from
	// min/max — Compare treats NaN as equal to everything, so a chunk
	// containing NaN can never be skipped by ordering bounds — and
	// hasNaN records its presence.
	nonNull int
	statN   int
	hasNaN  bool
	min     Value
	max     Value
}

func (v *colVec) isNull(i int) bool { return v.nulls.get(i) }

// value reconstructs the stored Value for row i. The result is
// field-identical to the row-store Value (INSERT coerces to the column
// type, so stored values carry exactly one populated field).
func (v *colVec) value(i int) Value {
	if v.nulls.get(i) {
		return Null
	}
	switch v.typ {
	case TypeInteger, TypeBigint:
		return Value{Type: v.typ, I: v.ints[i]}
	case TypeDouble:
		return Value{Type: TypeDouble, F: v.flts[i]}
	case TypeVarchar:
		return Value{Type: TypeVarchar, S: v.strs[i]}
	case TypeBoolean:
		return Value{Type: TypeBoolean, B: v.bools[i]}
	case TypeTimestamp:
		return Value{Type: TypeTimestamp, T: v.times[i]}
	}
	return Null
}

// appendGroupKey appends row i's grouping rendering, byte-identical to
// Value.groupKey, so columnar aggregation partitions rows exactly as
// the interpreter does.
func (v *colVec) appendGroupKey(dst []byte, i int) []byte {
	if v.nulls.get(i) {
		return append(dst, "\x00null"...)
	}
	dst = strconv.AppendInt(dst, int64(v.typ), 10)
	dst = append(dst, 0)
	switch v.typ {
	case TypeInteger, TypeBigint:
		return strconv.AppendInt(dst, v.ints[i], 10)
	case TypeDouble:
		return strconv.AppendFloat(dst, v.flts[i], 'g', -1, 64)
	case TypeVarchar:
		return append(dst, v.strs[i]...)
	case TypeBoolean:
		if v.bools[i] {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case TypeTimestamp:
		return v.times[i].UTC().AppendFormat(dst, time.RFC3339Nano)
	}
	return dst
}

// push appends one value, updating the zone map. ok=false reports a
// stored value whose runtime type disagrees with the column type —
// impossible through the DML paths, which coerce, but a cheap guard
// against silently mis-slotting a value.
func (v *colVec) push(i int, val Value) bool {
	if val.IsNull() {
		v.nulls.set(i)
		switch v.typ {
		case TypeInteger, TypeBigint:
			v.ints = append(v.ints, 0)
		case TypeDouble:
			v.flts = append(v.flts, 0)
		case TypeVarchar:
			v.strs = append(v.strs, "")
		case TypeBoolean:
			v.bools = append(v.bools, false)
		case TypeTimestamp:
			v.times = append(v.times, time.Time{})
		}
		return true
	}
	if val.Type != v.typ {
		return false
	}
	v.nonNull++
	switch v.typ {
	case TypeInteger, TypeBigint:
		v.ints = append(v.ints, val.I)
	case TypeDouble:
		v.flts = append(v.flts, val.F)
		if math.IsNaN(val.F) {
			v.hasNaN = true
			return true // excluded from min/max
		}
	case TypeVarchar:
		v.strs = append(v.strs, val.S)
	case TypeBoolean:
		v.bools = append(v.bools, val.B)
	case TypeTimestamp:
		v.times = append(v.times, val.T)
	}
	if v.statN == 0 {
		v.min, v.max = val, val
	} else {
		if c, err := Compare(val, v.min); err == nil && c < 0 {
			v.min = val
		}
		if c, err := Compare(val, v.max); err == nil && c > 0 {
			v.max = val
		}
	}
	v.statN++
	return true
}

// colChunk is a fixed-size horizontal slice of a table in columnar
// layout: one typed vector per column plus the owning rowIDs in scan
// order.
type colChunk struct {
	n    int
	ids  []int64
	vecs []colVec
}

// tableChunks is a table's full column-chunk representation. ok=false
// marks a table whose stored values defeated the columnar layout (a
// type-mismatched value); vector execution then falls back to rows.
type tableChunks struct {
	ok     bool
	chunks []*colChunk
}

func newColChunk(cols []Column) *colChunk {
	ch := &colChunk{ids: make([]int64, 0, chunkRows), vecs: make([]colVec, len(cols))}
	for i, c := range cols {
		ch.vecs[i] = colVec{typ: c.Type, nulls: newBitset(chunkRows)}
	}
	return ch
}

// pushRow appends one row to the chunk set, opening a new chunk at the
// fixed boundary.
func (tc *tableChunks) pushRow(cols []Column, id int64, row []Value) {
	var ch *colChunk
	if n := len(tc.chunks); n > 0 && tc.chunks[n-1].n < chunkRows {
		ch = tc.chunks[n-1]
	} else {
		ch = newColChunk(cols)
		tc.chunks = append(tc.chunks, ch)
	}
	pos := ch.n
	ch.ids = append(ch.ids, id)
	for i := range ch.vecs {
		if !ch.vecs[i].push(pos, row[i]) {
			tc.ok = false
		}
	}
	ch.n++
}

// ensureChunks returns the table's column-chunk representation,
// building it lazily from the row store. Callers must hold the
// database latch (shared suffices); chunkMu serialises concurrent
// reader builds, and writers — who hold the latch exclusively and are
// therefore alone — invalidate or append without it. The RWMutex
// hand-off orders a reader's build before any later writer's access.
func (t *Table) ensureChunks() *tableChunks {
	t.chunkMu.Lock()
	defer t.chunkMu.Unlock()
	if t.chunks == nil {
		tc := &tableChunks{ok: true}
		for _, id := range t.order {
			tc.pushRow(t.Columns, id, t.rows[id])
		}
		t.chunks = tc
	}
	return t.chunks
}

// invalidateChunks drops the cached columnar representation. Called by
// every mutation that cannot be expressed as an append (UPDATE,
// DELETE, rollback re-insertion); caller holds the latch exclusively.
func (t *Table) invalidateChunks() { t.chunks = nil }

// chunkAppendRow keeps a live chunk cache current across INSERT, the
// one mutation that preserves scan order. Caller holds the latch
// exclusively.
func (t *Table) chunkAppendRow(id int64, row []Value) {
	if t.chunks == nil {
		return
	}
	t.chunks.pushRow(t.Columns, id, row)
}
