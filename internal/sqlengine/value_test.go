package sqlengine

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTypeFromName(t *testing.T) {
	cases := map[string]Type{
		"int": TypeInteger, "INTEGER": TypeInteger, "BigInt": TypeBigint,
		"double": TypeDouble, "FLOAT": TypeDouble, "varchar": TypeVarchar,
		"TEXT": TypeVarchar, "bool": TypeBoolean, "TIMESTAMP": TypeTimestamp,
	}
	for name, want := range cases {
		got, err := TypeFromName(name)
		if err != nil || got != want {
			t.Errorf("TypeFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := TypeFromName("BLOB"); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestValueString(t *testing.T) {
	ts := time.Date(2005, 9, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(42), "42"},
		{NewBigint(-7), "-7"},
		{NewDouble(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewTimestamp(ts), "2005-09-01T12:00:00Z"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.Type, got, c.want)
		}
	}
}

func TestCoerce(t *testing.T) {
	ok := []struct {
		in   Value
		to   Type
		want Value
	}{
		{NewString("42"), TypeInteger, NewInt(42)},
		{NewString(" 3.5 "), TypeDouble, NewDouble(3.5)},
		{NewInt(1), TypeBoolean, NewBool(true)},
		{NewInt(0), TypeBoolean, NewBool(false)},
		{NewDouble(4), TypeInteger, NewInt(4)},
		{NewInt(7), TypeDouble, NewDouble(7)},
		{NewBool(true), TypeInteger, NewInt(1)},
		{NewString("true"), TypeBoolean, NewBool(true)},
		{NewInt(5), TypeVarchar, NewString("5")},
		{Null, TypeInteger, Null},
		{NewString("2005-09-01"), TypeTimestamp, NewTimestamp(time.Date(2005, 9, 1, 0, 0, 0, 0, time.UTC))},
		{NewString("2005-09-01 10:30:00"), TypeTimestamp, NewTimestamp(time.Date(2005, 9, 1, 10, 30, 0, 0, time.UTC))},
	}
	for _, c := range ok {
		got, err := c.in.Coerce(c.to)
		if err != nil {
			t.Errorf("Coerce(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if got.Type != c.want.Type || got.String() != c.want.String() {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
	bad := []struct {
		in Value
		to Type
	}{
		{NewString("abc"), TypeInteger},
		{NewDouble(2.5), TypeInteger},
		{NewString("maybe"), TypeBoolean},
		{NewString("not a date"), TypeTimestamp},
		{NewBool(true), TypeTimestamp},
	}
	for _, c := range bad {
		if _, err := c.in.Coerce(c.to); err == nil {
			t.Errorf("Coerce(%v, %v): expected error", c.in, c.to)
		}
	}
}

func TestCompare(t *testing.T) {
	lt := [][2]Value{
		{NewInt(1), NewInt(2)},
		{NewInt(1), NewDouble(1.5)},
		{NewBigint(-5), NewInt(0)},
		{NewString("a"), NewString("b")},
		{NewBool(false), NewBool(true)},
		{NewTimestamp(time.Unix(0, 0)), NewTimestamp(time.Unix(1, 0))},
		{Null, NewInt(0)}, // NULLs order first
	}
	for _, c := range lt {
		got, err := Compare(c[0], c[1])
		if err != nil || got != -1 {
			t.Errorf("Compare(%v, %v) = %d, %v; want -1", c[0], c[1], got, err)
		}
		rev, err := Compare(c[1], c[0])
		if err != nil || rev != 1 {
			t.Errorf("Compare(%v, %v) = %d, %v; want 1", c[1], c[0], rev, err)
		}
	}
	if c, err := Compare(NewInt(3), NewDouble(3.0)); err != nil || c != 0 {
		t.Errorf("cross-width numeric equality failed: %d, %v", c, err)
	}
	if _, err := Compare(NewInt(1), NewString("1")); err == nil {
		t.Error("expected type mismatch error")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("NULL = NULL must be false in SQL equality")
	}
	if !Equal(NewInt(1), NewBigint(1)) {
		t.Error("1 = 1 across widths should hold")
	}
}

// Property: Compare is antisymmetric for comparable same-type values.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewBigint(a), NewBigint(b)
		c1, err1 := Compare(x, y)
		c2, err2 := Compare(y, x)
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string round trip through VARCHAR coercion is identity for
// int values.
func TestQuickIntStringRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		s, err := NewBigint(i).Coerce(TypeVarchar)
		if err != nil {
			return false
		}
		back, err := s.Coerce(TypeBigint)
		return err == nil && back.I == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: groupKey distinguishes NULL from every non-null value and
// equal values share keys.
func TestQuickGroupKey(t *testing.T) {
	f := func(s string) bool {
		v := NewString(s)
		return v.groupKey() != Null.groupKey() && v.groupKey() == NewString(s).groupKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if NewString("NULL").groupKey() == Null.groupKey() {
		t.Error(`string "NULL" must not collide with SQL NULL`)
	}
	if NewInt(1).groupKey() == NewString("1").groupKey() {
		t.Error("different types with same rendering must not collide")
	}
}

func TestParseIsolationLevel(t *testing.T) {
	cases := map[string]IsolationLevel{
		"serializable":     Serializable,
		"READ COMMITTED":   ReadCommitted,
		"read-uncommitted": ReadUncommitted,
		"RepeatableRead":   RepeatableRead,
		"repeatable_read":  RepeatableRead,
	}
	for in, want := range cases {
		got, err := ParseIsolationLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseIsolationLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseIsolationLevel("chaos"); err == nil {
		t.Error("expected error")
	}
	for _, l := range []IsolationLevel{ReadUncommitted, ReadCommitted, RepeatableRead, Serializable} {
		back, err := ParseIsolationLevel(l.String())
		if err != nil || back != l {
			t.Errorf("round trip %v failed: %v %v", l, back, err)
		}
	}
}
