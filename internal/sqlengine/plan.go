package sqlengine

import (
	"fmt"
	"sort"
	"strings"
)

// disablePlanner forces every statement through the interpreting
// executor. The equivalence tests flip it to prove compiled plans and
// the interpreter produce byte-identical results on the same corpus.
var disablePlanner = false

// accessKind enumerates the physical access paths a compiled plan can
// bind for its base table.
type accessKind int

const (
	accessFullScan     accessKind = iota // t.order, rowID ascending
	accessHashPoint                      // hash index equality probe
	accessOrderedPoint                   // ordered index equality probe
	accessOrderedRange                   // ordered index range scan
	accessOrderedScan                    // full ordered iteration (ORDER BY)
)

func (k accessKind) String() string {
	switch k {
	case accessHashPoint:
		return "hash point lookup"
	case accessOrderedPoint:
		return "ordered point lookup"
	case accessOrderedRange:
		return "ordered range scan"
	case accessOrderedScan:
		return "ordered full scan"
	}
	return "full scan"
}

// planBound is one side of a compiled range predicate. The bound value
// is an expression (literal or parameter) evaluated per execution; if it
// evaluates to NULL or fails to coerce to the column type the bound is
// dropped and the scan widens — the filter stage re-applies the full
// WHERE predicate either way.
type planBound struct {
	expr Expr
	incl bool
}

// orderKeyKind classifies one compiled ORDER BY key.
type orderKeyKind int

const (
	orderKeyProjected orderKeyKind = iota // key = projected value at idx
	orderKeyExpr                          // key = eval(expr) per input row
)

type planOrderKey struct {
	kind orderKeyKind
	idx  int
	expr Expr
	desc bool
}

// joinNode is one compiled join step: the right table resolved, its
// bindings appended, the ON expression rewritten to ordinals, and the
// hash-join decision taken at plan time.
type joinNode struct {
	t       *Table
	rcols   []boundColumn
	cols    []boundColumn // combined bindings including this join
	clause  JoinClause    // clause with the rewritten ON expression
	hasEqui bool
	equi    equiConjunct
}

// selectPlan is a compiled physical plan for one SELECT: every column
// reference resolved to a row ordinal, the access path and join
// strategies chosen, and the projection/order machinery pre-bound. A
// plan is immutable after construction and is only runnable while the
// database's schema epoch matches the one it was built against.
type selectPlan struct {
	sel   *SelectStmt
	epoch uint64

	t      *Table
	access accessKind
	hashIx *Index
	ordIx  *OrderedIndex
	keyCol int  // ordinal of the access column in the base row
	eq     Expr // equality probe value (point access)
	lo, hi *planBound

	joins []joinNode
	cols  []boundColumn // final combined bindings

	where     Expr // rewritten filter, nil when absent
	projCols  []ResultColumn
	projExprs []Expr

	order          []planOrderKey
	orderSatisfied bool // access path already yields ORDER BY order
	desc           bool // iteration direction when orderSatisfied

	// vec is the columnar-execution annotation: set when the plan is a
	// join-free full scan whose predicate compiles to vector kernels.
	// nil means the row operators always run.
	vec *vecInfo

	explain []string
}

// streamable reports whether the plan can produce rows incrementally:
// no joins (the probe side would need full materialisation anyway) and
// either no ORDER BY or one the access path already satisfies.
func (p *selectPlan) streamable() bool {
	return len(p.joins) == 0 && (len(p.sel.OrderBy) == 0 || p.orderSatisfied)
}

// planSelect compiles a SELECT into a physical plan, or returns nil
// with a reason when the statement is outside the plannable class (the
// interpreter then runs it, including producing any errors). The caller
// must hold d.mu for reading.
func (d *Database) planSelect(sel *SelectStmt) (*selectPlan, string) {
	switch {
	case len(sel.Unions) > 0:
		return nil, "UNION"
	case sel.Distinct:
		return nil, "DISTINCT"
	case len(sel.GroupBy) > 0 || sel.Having != nil || selectHasAggregate(sel):
		return nil, "grouping/aggregates"
	case sel.From == nil:
		return nil, "no FROM clause"
	case sel.From.Subquery != nil:
		return nil, "derived table"
	}
	if sel.Where != nil && containsAggregate(sel.Where) {
		return nil, "aggregate in WHERE"
	}
	if _, isView := d.views[strings.ToLower(sel.From.Table)]; isView {
		return nil, "view"
	}
	t, err := d.table(sel.From.Table)
	if err != nil {
		return nil, "unknown table"
	}
	qual := strings.ToLower(sel.From.Table)
	if sel.From.Alias != "" {
		qual = strings.ToLower(sel.From.Alias)
	}
	p := &selectPlan{sel: sel, epoch: d.epoch, t: t, keyCol: -1}
	cols := make([]boundColumn, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = boundColumn{qualifier: qual, name: strings.ToLower(c.Name), typ: c.Type, origName: c.Name}
	}

	// Joins: base tables only, ON rewritten against the combined
	// bindings, hash strategy detected with the interpreter's own
	// conjunct finder.
	for _, j := range sel.Joins {
		if j.Table == nil || j.Table.Subquery != nil {
			return nil, "derived join table"
		}
		if _, isView := d.views[strings.ToLower(j.Table.Table)]; isView {
			return nil, "view in join"
		}
		jt, err := d.table(j.Table.Table)
		if err != nil {
			return nil, "unknown join table"
		}
		jq := strings.ToLower(j.Table.Table)
		if j.Table.Alias != "" {
			jq = strings.ToLower(j.Table.Alias)
		}
		rcols := make([]boundColumn, len(jt.Columns))
		for i, c := range jt.Columns {
			rcols[i] = boundColumn{qualifier: jq, name: strings.ToLower(c.Name), typ: c.Type, origName: c.Name}
		}
		combined := append(append([]boundColumn{}, cols...), rcols...)
		node := joinNode{t: jt, rcols: rcols, cols: combined, clause: j}
		if j.On != nil {
			probeEnv := &evalEnv{cols: combined}
			node.equi, node.hasEqui = findEquiConjunct(j.On, probeEnv, len(cols))
			on, ok := rewriteExpr(j.On, combined)
			if !ok {
				return nil, "unresolvable ON expression"
			}
			node.clause.On = on
		}
		p.joins = append(p.joins, node)
		cols = combined
	}
	p.cols = cols

	// Projection: expand stars and rewrite every output expression.
	env := &evalEnv{cols: cols}
	projCols, projExprs, err := expandSelectItems(sel, env)
	if err != nil {
		return nil, "unplannable select list"
	}
	p.projCols = projCols
	p.projExprs = make([]Expr, len(projExprs))
	for i, e := range projExprs {
		re, ok := rewriteExpr(e, cols)
		if !ok {
			return nil, "unresolvable select expression"
		}
		p.projExprs[i] = re
	}

	// WHERE.
	if sel.Where != nil {
		w, ok := rewriteExpr(sel.Where, cols)
		if !ok {
			return nil, "unresolvable WHERE expression"
		}
		p.where = w
	}

	// ORDER BY keys, classified with the interpreter's precedence:
	// ordinals first, then select-list aliases (later duplicates win),
	// then plain column resolution.
	outNames := make(map[string]int, len(projCols))
	for i, c := range projCols {
		outNames[strings.ToLower(c.Name)] = i
	}
	for _, oi := range sel.OrderBy {
		if ord, ok := ordinalRef(oi.Expr, len(projExprs)); ok {
			p.order = append(p.order, planOrderKey{kind: orderKeyProjected, idx: ord, desc: oi.Desc})
			continue
		}
		if ce, isCol := oi.Expr.(*ColumnExpr); isCol && ce.Table == "" {
			if idx, ok := outNames[strings.ToLower(ce.Column)]; ok {
				p.order = append(p.order, planOrderKey{kind: orderKeyProjected, idx: idx, desc: oi.Desc})
				continue
			}
		}
		// Complex keys that could observe the select-list alias scope
		// (or a correlated alias via a subquery) keep interpreter
		// semantics by refusing to plan.
		if exprHasSubquery(oi.Expr) {
			return nil, "subquery in ORDER BY"
		}
		if refsAnyUnqualified(oi.Expr, outNames) {
			return nil, "ORDER BY references select-list alias"
		}
		re, ok := rewriteExpr(oi.Expr, cols)
		if !ok {
			return nil, "unresolvable ORDER BY expression"
		}
		p.order = append(p.order, planOrderKey{kind: orderKeyExpr, expr: re, desc: oi.Desc})
	}

	// Access path: only for join-free statements (with joins the
	// interpreter scans too, so parity is free). Constant folding runs
	// first so `WHERE 1=1 AND x > 5` exposes the same conjuncts (and
	// compiles the same vector predicate) as `WHERE x > 5`; the row
	// executor keeps the unfolded p.where for exact error parity.
	if len(p.joins) == 0 {
		var foldedWhere Expr
		if sel.Where != nil {
			foldedWhere = foldConstants(sel.Where)
		}
		d.chooseAccess(p, t, qual, foldedWhere)
	}
	p.bindOrderSatisfaction()

	// Columnar annotation: join-free full scans whose predicate compiles
	// to vector kernels run chunk-at-a-time. Index accesses stay on the
	// row path — their id sets are already narrowed and (for ordered
	// scans) their iteration order is not chunk order.
	if len(p.joins) == 0 && p.access == accessFullScan {
		var pred vecPred
		okPred := true
		if p.where != nil {
			pred, okPred = compileVecPred(foldConstants(p.where), t)
		}
		if okPred {
			proj := gatherList(p.projExprs, t)
			if pred != nil || proj != nil {
				p.vec = &vecInfo{pred: pred, proj: proj}
			}
		}
	}
	p.explain = p.explainLines()
	return p, ""
}

// gatherList reports the base-column ordinals when every projection is
// a plain column reference, enabling columnar gather without row
// materialisation; nil otherwise.
func gatherList(projExprs []Expr, t *Table) []int {
	proj := make([]int, len(projExprs))
	for i, e := range projExprs {
		bc, ok := e.(*boundColExpr)
		if !ok || bc.idx >= len(t.Columns) {
			return nil
		}
		proj[i] = bc.idx
	}
	return proj
}

// conjunctCandidates walks the AND-tree of the WHERE clause in source
// order, collecting equality and range conjuncts of the shape
// column-vs-constant (literal or parameter, either side).
type eqCand struct {
	col int
	val Expr
}

type rangeCand struct {
	col    int
	lo, hi *planBound
}

func collectConjuncts(e Expr, out *[]Expr) {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		collectConjuncts(b.Left, out)
		collectConjuncts(b.Right, out)
		return
	}
	*out = append(*out, e)
}

// constExpr reports whether e can be evaluated without row context.
func constExpr(e Expr) bool {
	switch e.(type) {
	case *LiteralExpr, *ParamExpr:
		return true
	}
	return false
}

// baseColumn resolves a ColumnExpr against the base table under its
// qualifier, mirroring columnConstPair's matching rules.
func baseColumn(e Expr, t *Table, qual string) (int, bool) {
	ce, ok := e.(*ColumnExpr)
	if !ok {
		return 0, false
	}
	if ce.Table != "" && strings.ToLower(ce.Table) != qual {
		return 0, false
	}
	ci := t.ColumnIndex(ce.Column)
	if ci < 0 {
		return 0, false
	}
	return ci, true
}

// chooseAccess binds the best available index access: a hash point probe
// first (the interpreter's own fast path), then an ordered point probe,
// then an ordered range scan. Ties between indexes on the same column
// break by name so plans are deterministic.
func (d *Database) chooseAccess(p *selectPlan, t *Table, qual string, where Expr) {
	var eqs []eqCand
	ranges := map[int]*rangeCand{}
	var rangeOrder []int
	if where != nil {
		var conjuncts []Expr
		collectConjuncts(where, &conjuncts)
		addBound := func(col int, b planBound, isLo bool) {
			rc := ranges[col]
			if rc == nil {
				rc = &rangeCand{col: col}
				ranges[col] = rc
				rangeOrder = append(rangeOrder, col)
			}
			if isLo && rc.lo == nil {
				rc.lo = &b
			} else if !isLo && rc.hi == nil {
				rc.hi = &b
			}
		}
		for _, c := range conjuncts {
			switch n := c.(type) {
			case *BinaryExpr:
				col, colOnLeft := baseColumn(n.Left, t, qual)
				other := n.Right
				if !colOnLeft {
					col, colOnLeft = baseColumn(n.Right, t, qual)
					other = n.Left
					if !colOnLeft {
						continue
					}
					// constant on the left: flip the operator sense
					switch n.Op {
					case "=":
					case "<":
						if constExpr(other) {
							addBound(col, planBound{expr: other, incl: false}, true)
						}
						continue
					case "<=":
						if constExpr(other) {
							addBound(col, planBound{expr: other, incl: true}, true)
						}
						continue
					case ">":
						if constExpr(other) {
							addBound(col, planBound{expr: other, incl: false}, false)
						}
						continue
					case ">=":
						if constExpr(other) {
							addBound(col, planBound{expr: other, incl: true}, false)
						}
						continue
					default:
						continue
					}
				}
				if !constExpr(other) {
					continue
				}
				switch n.Op {
				case "=":
					eqs = append(eqs, eqCand{col: col, val: other})
				case "<":
					addBound(col, planBound{expr: other, incl: false}, false)
				case "<=":
					addBound(col, planBound{expr: other, incl: true}, false)
				case ">":
					addBound(col, planBound{expr: other, incl: false}, true)
				case ">=":
					addBound(col, planBound{expr: other, incl: true}, true)
				}
			case *BetweenExpr:
				if n.Negate {
					continue
				}
				col, ok := baseColumn(n.Operand, t, qual)
				if !ok || !constExpr(n.Lo) || !constExpr(n.Hi) {
					continue
				}
				addBound(col, planBound{expr: n.Lo, incl: true}, true)
				addBound(col, planBound{expr: n.Hi, incl: true}, false)
			}
		}
	}

	// Hash point probe.
	for _, eq := range eqs {
		if ix := hashIndexOn(t, eq.col); ix != nil {
			p.access, p.hashIx, p.keyCol, p.eq = accessHashPoint, ix, eq.col, eq.val
			return
		}
	}
	// Ordered point probe.
	for _, eq := range eqs {
		if ix := orderedIndexOn(t, eq.col); ix != nil {
			p.access, p.ordIx, p.keyCol, p.eq = accessOrderedPoint, ix, eq.col, eq.val
			return
		}
	}
	// Ordered range scan.
	for _, col := range rangeOrder {
		if ix := orderedIndexOn(t, col); ix != nil {
			rc := ranges[col]
			p.access, p.ordIx, p.keyCol, p.lo, p.hi = accessOrderedRange, ix, col, rc.lo, rc.hi
			return
		}
	}
	// No predicate-based access: a single-key ORDER BY over an ordered
	// index can still replace the sort with an index-ordered full scan.
	if ord, ok := p.effectiveOrderColumn(); ok {
		if ix := orderedIndexOn(t, ord); ix != nil {
			p.access, p.ordIx, p.keyCol = accessOrderedScan, ix, ord
		}
	}
}

// hashIndexOn returns the lexicographically first hash index on the
// given column ordinal, or nil.
func hashIndexOn(t *Table, col int) *Index {
	var names []string
	for name, ix := range t.indexes {
		if strings.EqualFold(ix.Column, t.Columns[col].Name) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	return t.indexes[names[0]]
}

// orderedIndexOn returns the lexicographically first ordered index on
// the given column ordinal, or nil.
func orderedIndexOn(t *Table, col int) *OrderedIndex {
	var names []string
	for name, ix := range t.ordIndexes {
		if strings.EqualFold(ix.Column, t.Columns[col].Name) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	return t.ordIndexes[names[0]]
}

// effectiveOrderColumn reports the base-row ordinal the (single) ORDER
// BY key reduces to, when it is a plain column reference.
func (p *selectPlan) effectiveOrderColumn() (int, bool) {
	if len(p.order) != 1 || len(p.joins) > 0 {
		return 0, false
	}
	var key Expr
	switch p.order[0].kind {
	case orderKeyProjected:
		key = p.projExprs[p.order[0].idx]
	case orderKeyExpr:
		key = p.order[0].expr
	}
	if bc, ok := key.(*boundColExpr); ok {
		return bc.idx, true
	}
	return 0, false
}

// bindOrderSatisfaction marks plans whose access path already emits rows
// in the requested ORDER BY order, so the executor can skip the sort and
// the stream can deliver ordered rows incrementally.
func (p *selectPlan) bindOrderSatisfaction() {
	ord, ok := p.effectiveOrderColumn()
	if !ok {
		return
	}
	switch p.access {
	case accessOrderedScan:
		// chosen because of the ORDER BY in the first place
		p.orderSatisfied = ord == p.keyCol
	case accessOrderedRange, accessOrderedPoint, accessHashPoint:
		// Equal keys (point) or index-ordered keys (range) reproduce the
		// stable sort exactly when the key column is the order column.
		p.orderSatisfied = ord == p.keyCol
	}
	if p.orderSatisfied {
		p.desc = p.order[0].desc
	}
}

// rewriteExpr compiles an expression against fixed bindings: every
// resolvable column reference becomes a row-ordinal boundColExpr.
// Subquery interiors are left untouched — they resolve at run time
// through the environment chain, exactly as interpreted execution does.
// The original tree is never mutated (plans share ASTs with the cache
// and the interpreter), so every rewritten node is a copy. ok=false
// means a reference did not resolve cleanly and the statement must stay
// on the interpreter.
func rewriteExpr(e Expr, cols []boundColumn) (Expr, bool) {
	env := &evalEnv{cols: cols}
	switch n := e.(type) {
	case nil:
		return nil, true
	case *LiteralExpr, *ParamExpr, *SubqueryExpr, *ExistsExpr:
		return e, true
	case *ColumnExpr:
		i, err := env.resolve(n.Table, n.Column)
		if err != nil {
			return nil, false
		}
		return &boundColExpr{idx: i}, true
	case *boundColExpr:
		return e, true
	case *BinaryExpr:
		l, ok := rewriteExpr(n.Left, cols)
		if !ok {
			return nil, false
		}
		r, ok := rewriteExpr(n.Right, cols)
		if !ok {
			return nil, false
		}
		return &BinaryExpr{Op: n.Op, Left: l, Right: r}, true
	case *UnaryExpr:
		op, ok := rewriteExpr(n.Operand, cols)
		if !ok {
			return nil, false
		}
		return &UnaryExpr{Op: n.Op, Operand: op}, true
	case *IsNullExpr:
		op, ok := rewriteExpr(n.Operand, cols)
		if !ok {
			return nil, false
		}
		return &IsNullExpr{Operand: op, Negate: n.Negate}, true
	case *InExpr:
		op, ok := rewriteExpr(n.Operand, cols)
		if !ok {
			return nil, false
		}
		list := make([]Expr, len(n.List))
		for i, it := range n.List {
			re, ok := rewriteExpr(it, cols)
			if !ok {
				return nil, false
			}
			list[i] = re
		}
		return &InExpr{Operand: op, List: list, Subquery: n.Subquery, Negate: n.Negate}, true
	case *BetweenExpr:
		op, ok := rewriteExpr(n.Operand, cols)
		if !ok {
			return nil, false
		}
		lo, ok := rewriteExpr(n.Lo, cols)
		if !ok {
			return nil, false
		}
		hi, ok := rewriteExpr(n.Hi, cols)
		if !ok {
			return nil, false
		}
		return &BetweenExpr{Operand: op, Lo: lo, Hi: hi, Negate: n.Negate}, true
	case *FuncExpr:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			re, ok := rewriteExpr(a, cols)
			if !ok {
				return nil, false
			}
			args[i] = re
		}
		return &FuncExpr{Name: n.Name, Args: args, Star: n.Star, Distinct: n.Distinct}, true
	case *CaseExpr:
		op, ok := rewriteExpr(n.Operand, cols)
		if !ok {
			return nil, false
		}
		els, ok := rewriteExpr(n.Else, cols)
		if !ok {
			return nil, false
		}
		whens := make([]CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			wc, ok := rewriteExpr(w.When, cols)
			if !ok {
				return nil, false
			}
			wt, ok := rewriteExpr(w.Then, cols)
			if !ok {
				return nil, false
			}
			whens[i] = CaseWhen{When: wc, Then: wt}
		}
		return &CaseExpr{Operand: op, Whens: whens, Else: els}, true
	case *CastExpr:
		op, ok := rewriteExpr(n.Operand, cols)
		if !ok {
			return nil, false
		}
		return &CastExpr{Operand: op, Target: n.Target}, true
	}
	return nil, false
}

// exprHasSubquery reports whether the tree contains any subquery form.
func exprHasSubquery(e Expr) bool {
	switch n := e.(type) {
	case nil:
	case *SubqueryExpr, *ExistsExpr:
		return true
	case *InExpr:
		if n.Subquery != nil || exprHasSubquery(n.Operand) {
			return true
		}
		for _, it := range n.List {
			if exprHasSubquery(it) {
				return true
			}
		}
	case *BinaryExpr:
		return exprHasSubquery(n.Left) || exprHasSubquery(n.Right)
	case *UnaryExpr:
		return exprHasSubquery(n.Operand)
	case *IsNullExpr:
		return exprHasSubquery(n.Operand)
	case *BetweenExpr:
		return exprHasSubquery(n.Operand) || exprHasSubquery(n.Lo) || exprHasSubquery(n.Hi)
	case *FuncExpr:
		for _, a := range n.Args {
			if exprHasSubquery(a) {
				return true
			}
		}
	case *CaseExpr:
		if exprHasSubquery(n.Operand) || exprHasSubquery(n.Else) {
			return true
		}
		for _, w := range n.Whens {
			if exprHasSubquery(w.When) || exprHasSubquery(w.Then) {
				return true
			}
		}
	case *CastExpr:
		return exprHasSubquery(n.Operand)
	}
	return false
}

// refsAnyUnqualified reports whether the tree contains an unqualified
// column reference whose name appears in the given set — the shape that
// would resolve to a select-list alias in interpreted ORDER BY.
func refsAnyUnqualified(e Expr, names map[string]int) bool {
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		if found {
			return
		}
		switch n := e.(type) {
		case nil:
		case *ColumnExpr:
			if n.Table == "" {
				if _, ok := names[strings.ToLower(n.Column)]; ok {
					found = true
				}
			}
		case *BinaryExpr:
			walk(n.Left)
			walk(n.Right)
		case *UnaryExpr:
			walk(n.Operand)
		case *IsNullExpr:
			walk(n.Operand)
		case *InExpr:
			walk(n.Operand)
			for _, it := range n.List {
				walk(it)
			}
		case *BetweenExpr:
			walk(n.Operand)
			walk(n.Lo)
			walk(n.Hi)
		case *FuncExpr:
			for _, a := range n.Args {
				walk(a)
			}
		case *CaseExpr:
			walk(n.Operand)
			walk(n.Else)
			for _, w := range n.Whens {
				walk(w.When)
				walk(w.Then)
			}
		case *CastExpr:
			walk(n.Operand)
		}
	}
	walk(e)
	return found
}

// explainLines renders the plan node tree for EXPLAIN and daisql
// -explain: access path, pushed-down bounds, join strategy, filter,
// projection width, order strategy and limit handling.
func (p *selectPlan) explainLines() []string {
	lines := []string{fmt.Sprintf("select on %q", p.t.Name)}
	access := fmt.Sprintf("  access: %s", p.access)
	switch p.access {
	case accessHashPoint:
		access += fmt.Sprintf(" via %s (%s.%s = ?)", p.hashIx.Name, p.t.Name, p.t.Columns[p.keyCol].Name)
	case accessOrderedPoint:
		access += fmt.Sprintf(" via %s (%s.%s = ?)", p.ordIx.Name, p.t.Name, p.t.Columns[p.keyCol].Name)
	case accessOrderedRange:
		var parts []string
		if p.lo != nil {
			op := ">"
			if p.lo.incl {
				op = ">="
			}
			parts = append(parts, p.t.Columns[p.keyCol].Name+" "+op+" ?")
		}
		if p.hi != nil {
			op := "<"
			if p.hi.incl {
				op = "<="
			}
			parts = append(parts, p.t.Columns[p.keyCol].Name+" "+op+" ?")
		}
		access += fmt.Sprintf(" via %s (%s)", p.ordIx.Name, strings.Join(parts, " AND "))
	case accessOrderedScan:
		dir := "asc"
		if p.desc {
			dir = "desc"
		}
		access += fmt.Sprintf(" via %s (%s.%s %s)", p.ordIx.Name, p.t.Name, p.t.Columns[p.keyCol].Name, dir)
	}
	lines = append(lines, access)
	for _, j := range p.joins {
		strategy := "nested loop"
		if j.hasEqui {
			strategy = "hash join (nested-loop fallback)"
		}
		kind := "inner"
		switch j.clause.Kind {
		case JoinLeft:
			kind = "left"
		case JoinRight:
			kind = "right"
		case JoinCross:
			kind = "cross"
		}
		lines = append(lines, fmt.Sprintf("  join: %s %s %q", kind, strategy, j.t.Name))
	}
	if p.vec != nil {
		lines = append(lines, fmt.Sprintf("  vector: columnar scan (chunks of %d rows)", chunkRows))
		if p.vec.pred != nil {
			lines = append(lines, "  vector filter: compiled kernels with zone-map skipping (row fallback on bind failure)")
		} else if p.where != nil {
			lines = append(lines, "  filter: batched predicate (chunks of "+fmt.Sprint(filterChunkRows)+" rows)")
		}
		if p.vec.proj != nil {
			lines = append(lines, fmt.Sprintf("  vector project: gather %d columns", len(p.vec.proj)))
		} else {
			lines = append(lines, fmt.Sprintf("  project: %d columns", len(p.projCols)))
		}
	} else {
		if p.where != nil {
			lines = append(lines, "  filter: batched predicate (chunks of "+fmt.Sprint(filterChunkRows)+" rows)")
		}
		lines = append(lines, fmt.Sprintf("  project: %d columns", len(p.projCols)))
	}
	if len(p.order) > 0 {
		if p.orderSatisfied {
			lines = append(lines, "  order: satisfied by index (no sort)")
		} else {
			lines = append(lines, fmt.Sprintf("  order: sort on %d key(s)", len(p.order)))
		}
	}
	if p.sel.Offset != nil {
		lines = append(lines, "  offset: yes")
	}
	if p.sel.Limit != nil {
		lines = append(lines, "  limit: yes")
	}
	return lines
}

// zoneMapLine reports, at EXPLAIN time, how many of the table's current
// chunks the bound predicate's zone maps would skip. Predicates with
// parameters cannot bind without values and report per-execution
// evaluation instead. Caller holds d.mu for reading.
func (d *Database) zoneMapLine(p *selectPlan) string {
	bp, ok := bindVecPred(p.vec.pred, nil, p.t)
	if !ok {
		return "  vector zone maps: evaluated per execution"
	}
	tc := p.t.ensureChunks()
	if !tc.ok {
		return "  vector zone maps: column chunks unavailable (row fallback)"
	}
	skipped := 0
	for _, ch := range tc.chunks {
		if chunkSkippable(bp, ch) {
			skipped++
		}
	}
	return fmt.Sprintf("  vector zone maps: %d/%d chunks skippable", skipped, len(tc.chunks))
}

// explainStatement describes any statement for EXPLAIN. SELECTs compile
// a fresh plan (or report why they cannot); everything else names the
// interpreted path it takes. Caller must hold d.mu for reading.
func (d *Database) explainStatement(st Statement) []string {
	switch n := st.(type) {
	case *SelectStmt:
		p, reason := d.planSelect(n)
		if p == nil {
			if ap, ok := d.planAggregate(n); ok {
				return ap.explain
			}
			return []string{"select: interpreted (" + reason + ")"}
		}
		if p.vec != nil && p.vec.pred != nil {
			return append(append([]string(nil), p.explain...), d.zoneMapLine(p))
		}
		return p.explain
	case *InsertStmt:
		return []string{fmt.Sprintf("insert into %q (interpreted)", n.Table)}
	case *UpdateStmt:
		return []string{fmt.Sprintf("update %q (interpreted, full scan + per-row SET)", n.Table)}
	case *DeleteStmt:
		return []string{fmt.Sprintf("delete from %q (interpreted, full scan)", n.Table)}
	}
	return []string{fmt.Sprintf("%s (interpreted)", statementKind(st))}
}

// statementKind names a statement for explain output.
func statementKind(st Statement) string {
	switch st.(type) {
	case *CreateTableStmt:
		return "create table"
	case *DropTableStmt:
		return "drop table"
	case *CreateViewStmt:
		return "create view"
	case *DropViewStmt:
		return "drop view"
	case *CreateIndexStmt:
		return "create index"
	case *DropIndexStmt:
		return "drop index"
	case *BeginStmt:
		return "begin"
	case *CommitStmt:
		return "commit"
	case *RollbackStmt:
		return "rollback"
	}
	return fmt.Sprintf("%T", st)
}
