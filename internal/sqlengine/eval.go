package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
)

// evalEnv supplies column values and parameters during expression
// evaluation. row is the concatenated joined row; cols describes each
// position's qualifier and name.
type evalEnv struct {
	cols   []boundColumn
	row    []Value
	params []Value
	// aliases maps select-list aliases to already-computed values
	// (used by ORDER BY / HAVING referencing output names).
	aliases map[string]Value
	// db enables subquery evaluation; outer chains to the enclosing
	// query's environment for correlated subqueries.
	db    *Database
	outer *evalEnv
	// ctx carries the request context so long scans can be cancelled;
	// checkN counts rows between cancellation probes.
	ctx    context.Context
	checkN int
}

// checkCtx observes context cancellation at row granularity. To keep the
// per-row cost negligible it only consults the context every 64 rows.
func (env *evalEnv) checkCtx() error {
	if env.ctx == nil {
		return nil
	}
	env.checkN++
	if env.checkN&63 != 0 {
		return nil
	}
	if err := env.ctx.Err(); err != nil {
		return &CancelledError{Err: err}
	}
	return nil
}

// CancelledError reports that statement execution was abandoned because
// its context was cancelled or its deadline expired. Unwrap exposes the
// context error so errors.Is(err, context.DeadlineExceeded) works.
type CancelledError struct{ Err error }

func (e *CancelledError) Error() string {
	return "sqlengine: execution cancelled: " + e.Err.Error()
}

func (e *CancelledError) Unwrap() error { return e.Err }

// errUnknownColumn distinguishes "not here, try the outer scope" from
// hard resolution errors like ambiguity.
type errUnknownColumn struct{ name string }

func (e *errUnknownColumn) Error() string { return fmt.Sprintf("unknown column %q", e.name) }

// boundColumn describes one position in a joined row.
type boundColumn struct {
	qualifier string // table name or alias, lower-cased
	name      string // column name, lower-cased
	typ       Type
	origName  string // original column name casing
}

// resolve finds the position of a (possibly qualified) column
// reference. Ambiguous unqualified references are an error.
func (env *evalEnv) resolve(table, column string) (int, error) {
	tl, cl := strings.ToLower(table), strings.ToLower(column)
	found := -1
	for i, c := range env.cols {
		if c.name != cl {
			continue
		}
		if tl != "" && c.qualifier != tl {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("ambiguous column reference %q", column)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, &errUnknownColumn{name: table + "." + column}
		}
		return 0, &errUnknownColumn{name: column}
	}
	return found, nil
}

// lookupColumn resolves a column through the environment chain: first
// the current scope, then enclosing query scopes (correlated
// subqueries). Ambiguity within a scope is a hard error.
func lookupColumn(env *evalEnv, table, column string) (Value, error) {
	for e := env; e != nil; e = e.outer {
		if e.aliases != nil && table == "" {
			if v, ok := e.aliases[strings.ToLower(column)]; ok {
				return v, nil
			}
		}
		i, err := e.resolve(table, column)
		if err == nil {
			return e.row[i], nil
		}
		var unknown *errUnknownColumn
		if !errors.As(err, &unknown) {
			return Null, err
		}
	}
	if table != "" {
		return Null, &errUnknownColumn{name: table + "." + column}
	}
	return Null, &errUnknownColumn{name: column}
}

// eval evaluates an expression to a Value using three-valued logic for
// booleans (NULL is represented by Value.IsNull).
func eval(e Expr, env *evalEnv) (Value, error) {
	switch n := e.(type) {
	case *LiteralExpr:
		return n.Value, nil
	case *ParamExpr:
		if n.Index >= len(env.params) {
			return Null, fmt.Errorf("missing value for parameter %d", n.Index+1)
		}
		return env.params[n.Index], nil
	case *ColumnExpr:
		return lookupColumn(env, n.Table, n.Column)
	case *boundColExpr:
		// Planner-compiled column reference: the ordinal was resolved at
		// plan time against the same bindings env.row is built from.
		return env.row[n.idx], nil
	case *SubqueryExpr:
		return evalScalarSubquery(n.Select, env)
	case *ExistsExpr:
		set, err := runSubquery(n.Select, env)
		if err != nil {
			return Null, err
		}
		return NewBool(len(set.Rows) > 0), nil
	case *BinaryExpr:
		return evalBinary(n, env)
	case *UnaryExpr:
		v, err := eval(n.Operand, env)
		if err != nil {
			return Null, err
		}
		switch n.Op {
		case "-":
			if v.IsNull() {
				return Null, nil
			}
			switch v.Type {
			case TypeInteger, TypeBigint:
				return Value{Type: v.Type, I: -v.I}, nil
			case TypeDouble:
				return NewDouble(-v.F), nil
			}
			return Null, fmt.Errorf("cannot negate %s", v.Type)
		case "NOT":
			if v.IsNull() {
				return Null, nil
			}
			b, err := v.Coerce(TypeBoolean)
			if err != nil {
				return Null, err
			}
			return NewBool(!b.B), nil
		}
		return Null, fmt.Errorf("unknown unary operator %q", n.Op)
	case *IsNullExpr:
		v, err := eval(n.Operand, env)
		if err != nil {
			return Null, err
		}
		res := v.IsNull()
		if n.Negate {
			res = !res
		}
		return NewBool(res), nil
	case *InExpr:
		v, err := eval(n.Operand, env)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		if n.Subquery != nil {
			return evalInSubquery(n, v, env)
		}
		sawNull := false
		for _, item := range n.List {
			iv, err := eval(item, env)
			if err != nil {
				return Null, err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			c, err := Compare(v, iv)
			if err != nil {
				return Null, err
			}
			if c == 0 {
				return NewBool(!n.Negate), nil
			}
		}
		if sawNull {
			return Null, nil // unknown per three-valued logic
		}
		return NewBool(n.Negate), nil
	case *BetweenExpr:
		v, err := eval(n.Operand, env)
		if err != nil {
			return Null, err
		}
		lo, err := eval(n.Lo, env)
		if err != nil {
			return Null, err
		}
		hi, err := eval(n.Hi, env)
		if err != nil {
			return Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null, nil
		}
		cl, err := Compare(v, lo)
		if err != nil {
			return Null, err
		}
		ch, err := Compare(v, hi)
		if err != nil {
			return Null, err
		}
		res := cl >= 0 && ch <= 0
		if n.Negate {
			res = !res
		}
		return NewBool(res), nil
	case *FuncExpr:
		return evalScalarFunc(n, env)
	case *CaseExpr:
		return evalCase(n, env)
	case *CastExpr:
		v, err := eval(n.Operand, env)
		if err != nil {
			return Null, err
		}
		return v.Coerce(n.Target)
	}
	return Null, fmt.Errorf("unsupported expression %T", e)
}

// runSubquery executes a nested SELECT with the current environment as
// the outer scope for correlated column references.
func runSubquery(st *SelectStmt, env *evalEnv) (*ResultSet, error) {
	if env.db == nil {
		return nil, fmt.Errorf("subqueries are not available in this context")
	}
	inner := &evalEnv{params: env.params, db: env.db, outer: env, ctx: env.ctx}
	return env.db.execSelectEnv(st, inner)
}

// evalScalarSubquery evaluates (SELECT ...) to a single value: one
// column required, zero rows yield NULL, more than one row is an error.
func evalScalarSubquery(st *SelectStmt, env *evalEnv) (Value, error) {
	set, err := runSubquery(st, env)
	if err != nil {
		return Null, err
	}
	if len(set.Columns) != 1 {
		return Null, fmt.Errorf("scalar subquery must return one column, got %d", len(set.Columns))
	}
	switch len(set.Rows) {
	case 0:
		return Null, nil
	case 1:
		return set.Rows[0][0], nil
	}
	return Null, fmt.Errorf("scalar subquery returned %d rows", len(set.Rows))
}

// evalInSubquery implements expr [NOT] IN (SELECT ...) with SQL's
// three-valued semantics.
func evalInSubquery(n *InExpr, v Value, env *evalEnv) (Value, error) {
	set, err := runSubquery(n.Subquery, env)
	if err != nil {
		return Null, err
	}
	if len(set.Columns) != 1 {
		return Null, fmt.Errorf("IN subquery must return one column, got %d", len(set.Columns))
	}
	sawNull := false
	for _, row := range set.Rows {
		if row[0].IsNull() {
			sawNull = true
			continue
		}
		c, err := Compare(v, row[0])
		if err != nil {
			return Null, err
		}
		if c == 0 {
			return NewBool(!n.Negate), nil
		}
	}
	if sawNull {
		return Null, nil
	}
	return NewBool(n.Negate), nil
}

func evalBinary(n *BinaryExpr, env *evalEnv) (Value, error) {
	// AND/OR need three-valued short-circuit semantics.
	switch n.Op {
	case "AND":
		l, err := eval(n.Left, env)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() {
			lb, err := l.Coerce(TypeBoolean)
			if err != nil {
				return Null, err
			}
			if !lb.B {
				return NewBool(false), nil
			}
		}
		r, err := eval(n.Right, env)
		if err != nil {
			return Null, err
		}
		if r.IsNull() || l.IsNull() {
			if !r.IsNull() {
				rb, _ := r.Coerce(TypeBoolean)
				if !rb.B {
					return NewBool(false), nil
				}
			}
			return Null, nil
		}
		rb, err := r.Coerce(TypeBoolean)
		if err != nil {
			return Null, err
		}
		return NewBool(rb.B), nil
	case "OR":
		l, err := eval(n.Left, env)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() {
			lb, err := l.Coerce(TypeBoolean)
			if err != nil {
				return Null, err
			}
			if lb.B {
				return NewBool(true), nil
			}
		}
		r, err := eval(n.Right, env)
		if err != nil {
			return Null, err
		}
		if r.IsNull() || l.IsNull() {
			if !r.IsNull() {
				rb, _ := r.Coerce(TypeBoolean)
				if rb.B {
					return NewBool(true), nil
				}
			}
			return Null, nil
		}
		rb, err := r.Coerce(TypeBoolean)
		if err != nil {
			return Null, err
		}
		return NewBool(rb.B), nil
	}
	l, err := eval(n.Left, env)
	if err != nil {
		return Null, err
	}
	r, err := eval(n.Right, env)
	if err != nil {
		return Null, err
	}
	switch n.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		c, err := Compare(l, r)
		if err != nil {
			return Null, err
		}
		switch n.Op {
		case "=":
			return NewBool(c == 0), nil
		case "<>":
			return NewBool(c != 0), nil
		case "<":
			return NewBool(c < 0), nil
		case "<=":
			return NewBool(c <= 0), nil
		case ">":
			return NewBool(c > 0), nil
		case ">=":
			return NewBool(c >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return evalArith(n.Op, l, r)
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return NewString(l.String() + r.String()), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		ls, err := l.Coerce(TypeVarchar)
		if err != nil {
			return Null, err
		}
		rs, err := r.Coerce(TypeVarchar)
		if err != nil {
			return Null, err
		}
		ok, err := likeMatch(ls.S, rs.S)
		if err != nil {
			return Null, err
		}
		return NewBool(ok), nil
	}
	return Null, fmt.Errorf("unknown operator %q", n.Op)
}

func evalArith(op string, l, r Value) (Value, error) {
	if !l.Type.isNumeric() || !r.Type.isNumeric() {
		return Null, fmt.Errorf("operator %s requires numeric operands, got %s and %s", op, l.Type, r.Type)
	}
	if l.Type == TypeDouble || r.Type == TypeDouble {
		lf, rf := l.asFloat(), r.asFloat()
		switch op {
		case "+":
			return NewDouble(lf + rf), nil
		case "-":
			return NewDouble(lf - rf), nil
		case "*":
			return NewDouble(lf * rf), nil
		case "/":
			if rf == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewDouble(lf / rf), nil
		case "%":
			if rf == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewDouble(math.Mod(lf, rf)), nil
		}
	}
	out := TypeInteger
	if l.Type == TypeBigint || r.Type == TypeBigint {
		out = TypeBigint
	}
	switch op {
	case "+":
		return Value{Type: out, I: l.I + r.I}, nil
	case "-":
		return Value{Type: out, I: l.I - r.I}, nil
	case "*":
		return Value{Type: out, I: l.I * r.I}, nil
	case "/":
		if r.I == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return Value{Type: out, I: l.I / r.I}, nil
	case "%":
		if r.I == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return Value{Type: out, I: l.I % r.I}, nil
	}
	return Null, fmt.Errorf("unknown arithmetic operator %q", op)
}

// likeCache memoises compiled LIKE patterns.
var likeCache sync.Map // string -> *regexp.Regexp

// compileLike translates a LIKE pattern (% and _ wildcards) into a
// cached regexp. Shared by the row evaluator and the vectorised LIKE
// kernel so both paths match byte-identically.
func compileLike(pattern string) (*regexp.Regexp, error) {
	if re, ok := likeCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	var b strings.Builder
	b.WriteString("(?s)^")
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString("$")
	re, err := regexp.Compile(b.String())
	if err != nil {
		return nil, fmt.Errorf("bad LIKE pattern %q: %w", pattern, err)
	}
	likeCache.Store(pattern, re)
	return re, nil
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) (bool, error) {
	re, err := compileLike(pattern)
	if err != nil {
		return false, err
	}
	return re.MatchString(s), nil
}

// evalScalarFunc handles non-aggregate functions. Aggregates reaching
// here (outside GROUP BY context) are an error.
func evalScalarFunc(n *FuncExpr, env *evalEnv) (Value, error) {
	if aggregateNames[n.Name] {
		return Null, fmt.Errorf("aggregate %s not allowed here", n.Name)
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := eval(a, env)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	switch n.Name {
	case "UPPER":
		if err := wantArgs(n, args, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewString(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := wantArgs(n, args, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewString(strings.ToLower(args[0].String())), nil
	case "LENGTH", "CHAR_LENGTH":
		if err := wantArgs(n, args, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewInt(int64(len([]rune(args[0].String())))), nil
	case "ABS":
		if err := wantArgs(n, args, 1); err != nil {
			return Null, err
		}
		v := args[0]
		if v.IsNull() {
			return Null, nil
		}
		switch v.Type {
		case TypeInteger, TypeBigint:
			if v.I < 0 {
				return Value{Type: v.Type, I: -v.I}, nil
			}
			return v, nil
		case TypeDouble:
			return NewDouble(math.Abs(v.F)), nil
		}
		return Null, fmt.Errorf("ABS requires a numeric argument")
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return Null, fmt.Errorf("%s expects 2 or 3 arguments", n.Name)
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null, nil
		}
		s := []rune(args[0].String())
		start, err := args[1].Coerce(TypeBigint)
		if err != nil {
			return Null, err
		}
		// SQL is 1-based.
		from := int(start.I) - 1
		if from < 0 {
			from = 0
		}
		if from > len(s) {
			from = len(s)
		}
		to := len(s)
		if len(args) == 3 {
			if args[2].IsNull() {
				return Null, nil
			}
			l, err := args[2].Coerce(TypeBigint)
			if err != nil {
				return Null, err
			}
			to = from + int(l.I)
			if to > len(s) {
				to = len(s)
			}
			if to < from {
				to = from
			}
		}
		return NewString(string(s[from:to])), nil
	case "TRIM":
		if err := wantArgs(n, args, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewString(strings.TrimSpace(args[0].String())), nil
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return Null, fmt.Errorf("ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		f, err := args[0].Coerce(TypeDouble)
		if err != nil {
			return Null, err
		}
		digits := 0
		if len(args) == 2 {
			d, err := args[1].Coerce(TypeBigint)
			if err != nil {
				return Null, err
			}
			digits = int(d.I)
		}
		scale := math.Pow(10, float64(digits))
		return NewDouble(math.Round(f.F*scale) / scale), nil
	}
	return Null, fmt.Errorf("unknown function %s", n.Name)
}

func wantArgs(n *FuncExpr, args []Value, want int) error {
	if len(args) != want {
		return fmt.Errorf("%s expects %d argument(s), got %d", n.Name, want, len(args))
	}
	return nil
}

// truthy interprets an evaluated predicate value: NULL and false both
// reject the row.
func truthy(v Value) (bool, error) {
	if v.IsNull() {
		return false, nil
	}
	b, err := v.Coerce(TypeBoolean)
	if err != nil {
		return false, fmt.Errorf("predicate is not boolean: %w", err)
	}
	return b.B, nil
}
