package sqlengine

import (
	"reflect"
	"testing"
)

// ordFixture builds an index over INTEGER keys with duplicates and
// NULLs:
//
//	key:   NULL NULL  10    10   20   30   30   30   40
//	rowID:    7   11   1     5    2    3    8    9    4
func ordFixture() *OrderedIndex {
	ix := newOrderedIndex("ox", "t", "c", false)
	for _, p := range []struct {
		k  Value
		id int64
	}{
		{NewInt(30), 3}, {NewInt(10), 5}, {Null, 7}, {NewInt(20), 2},
		{NewInt(40), 4}, {NewInt(10), 1}, {NewInt(30), 9}, {Null, 11},
		{NewInt(30), 8},
	} {
		ix.insert(p.k, p.id)
	}
	return ix
}

func TestOrderedIndexLookup(t *testing.T) {
	ix := ordFixture()
	if got := ix.entries(); got != 4 {
		t.Fatalf("entries = %d", got)
	}
	for _, tc := range []struct {
		v    Value
		want []int64
	}{
		{NewInt(10), []int64{1, 5}},
		{NewInt(30), []int64{3, 8, 9}},
		{NewInt(40), []int64{4}},
		{NewInt(99), nil},
		{Null, nil}, // NULL never matches equality
	} {
		if got := ix.lookup(tc.v); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("lookup(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestOrderedIndexAppendRange(t *testing.T) {
	ix := ordFixture()
	b := func(v int64, incl bool) *ordBound { return &ordBound{val: NewInt(v), incl: incl} }
	for _, tc := range []struct {
		name   string
		lo, hi *ordBound
		desc   bool
		want   []int64
	}{
		{"unbounded", nil, nil, false, []int64{1, 5, 2, 3, 8, 9, 4}}, // NULLs excluded
		{"ge 20", b(20, true), nil, false, []int64{2, 3, 8, 9, 4}},
		{"gt 20", b(20, false), nil, false, []int64{3, 8, 9, 4}},
		{"le 30", nil, b(30, true), false, []int64{1, 5, 2, 3, 8, 9}},
		{"lt 30", nil, b(30, false), false, []int64{1, 5, 2}},
		{"between 10 and 30 incl", b(10, true), b(30, true), false, []int64{1, 5, 2, 3, 8, 9}},
		{"open interval (10,30)", b(10, false), b(30, false), false, []int64{2}},
		{"between bounds off-key", b(15, true), b(35, true), false, []int64{2, 3, 8, 9}},
		{"empty flipped", b(30, true), b(10, true), false, nil},
		{"empty above", b(100, true), nil, false, nil},
		// desc reverses key order but keeps rowIDs ascending per key.
		{"ge 20 desc", b(20, true), nil, true, []int64{4, 3, 8, 9, 2}},
		{"unbounded desc", nil, nil, true, []int64{4, 3, 8, 9, 2, 1, 5}},
	} {
		if got := ix.appendRange(nil, tc.lo, tc.hi, tc.desc); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%s: appendRange = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestOrderedIndexAppendOrdered(t *testing.T) {
	ix := ordFixture()
	// Ascending: NULLs first (engine sort order), then keys ascending,
	// rowIDs ascending within a key.
	wantAsc := []int64{7, 11, 1, 5, 2, 3, 8, 9, 4}
	if got := ix.appendOrdered(nil, false); !reflect.DeepEqual(got, wantAsc) {
		t.Fatalf("asc = %v, want %v", got, wantAsc)
	}
	// Descending: keys descending, NULLs last, rowIDs still ascending
	// within a key (stable order).
	wantDesc := []int64{4, 3, 8, 9, 2, 1, 5, 7, 11}
	if got := ix.appendOrdered(nil, true); !reflect.DeepEqual(got, wantDesc) {
		t.Fatalf("desc = %v, want %v", got, wantDesc)
	}
}

func TestOrderedIndexRemove(t *testing.T) {
	ix := ordFixture()
	ix.remove(NewInt(30), 8)
	if got := ix.lookup(NewInt(30)); !reflect.DeepEqual(got, []int64{3, 9}) {
		t.Fatalf("after remove: %v", got)
	}
	// Removing the last posting for a key drops the key entirely.
	ix.remove(NewInt(40), 4)
	if got := ix.entries(); got != 3 {
		t.Fatalf("entries after key removal = %d", got)
	}
	if got := ix.lookup(NewInt(40)); got != nil {
		t.Fatalf("removed key still resolves: %v", got)
	}
	// NULL postings are maintained separately.
	ix.remove(Null, 7)
	if got := ix.appendOrdered(nil, false); got[0] != 11 {
		t.Fatalf("null posting not removed: %v", got)
	}
	// Removing an absent pair is a no-op.
	ix.remove(NewInt(99), 1)
	ix.remove(NewInt(10), 99)
	if got := ix.lookup(NewInt(10)); !reflect.DeepEqual(got, []int64{1, 5}) {
		t.Fatalf("no-op remove mutated: %v", got)
	}
}

// TestOrderedIndexMixedNumericKeys pins cross-type comparison inside
// the index: INTEGER bounds must locate DOUBLE keys and vice versa,
// because range pushdown only requires comparability, not same-type.
func TestOrderedIndexMixedNumericKeys(t *testing.T) {
	ix := newOrderedIndex("ox", "t", "c", false)
	ix.insert(NewDouble(1.5), 1)
	ix.insert(NewInt(2), 2)
	ix.insert(NewDouble(2.5), 3)
	got := ix.appendRange(nil, &ordBound{val: NewInt(2), incl: false}, nil, false)
	if !reflect.DeepEqual(got, []int64{3}) {
		t.Fatalf("> 2 over mixed keys = %v", got)
	}
	got = ix.appendRange(nil, &ordBound{val: NewDouble(1.4), incl: true}, &ordBound{val: NewDouble(2.4), incl: true}, false)
	if !reflect.DeepEqual(got, []int64{1, 2}) {
		t.Fatalf("[1.4, 2.4] over mixed keys = %v", got)
	}
}
