package sqlengine

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// vecEngine builds a table with NO indexes — every plannable SELECT is
// a full scan, which is exactly the class the columnar executor owns.
// Columns cover every vector layout; NULLs land on coprime strides so
// combinations occur; every 11th double is NaN.
func vecEngine(t testing.TB, rows int) *Engine {
	t.Helper()
	e := New("vec")
	e.MustExec(`CREATE TABLE vt (id INTEGER, a INTEGER, b DOUBLE, s VARCHAR(16), f BOOLEAN, ts TIMESTAMP)`)
	s := e.NewSession()
	for i := 0; i < rows; i++ {
		a := NewInt(int64(i % 50))
		if i%7 == 0 {
			a = Null
		}
		b := NewDouble(float64(i)/8 - 5)
		switch {
		case i%11 == 3:
			b = NewDouble(math.NaN())
		case i%13 == 0:
			b = Null
		}
		sv := NewString(fmt.Sprintf("v-%03d", i%17))
		if i%5 == 2 {
			sv = Null
		}
		f := NewBool(i%3 == 0)
		if i%19 == 0 {
			f = Null
		}
		ts := NewString(fmt.Sprintf("2026-01-%02dT0%d:00:00Z", i%27+1, i%9))
		if _, err := s.Execute(`INSERT INTO vt VALUES (?, ?, ?, ?, ?, CAST(? AS TIMESTAMP))`,
			NewInt(int64(i)), a, b, sv, f, ts); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// vectorCorpus exercises every kernel, the three-valued combinators,
// zone-map edge cases (NaN vectors, all-NULL chunks), constant folding
// residues, bind-time fallbacks, and statements that must error
// identically on all paths.
var vectorCorpus = []struct {
	sql    string
	params []Value
}{
	// Comparison kernels per type, both operand orders.
	{sql: `SELECT id FROM vt WHERE a > 30`},
	{sql: `SELECT id FROM vt WHERE a >= 30`},
	{sql: `SELECT id FROM vt WHERE a < 4`},
	{sql: `SELECT id FROM vt WHERE a <= 4`},
	{sql: `SELECT id FROM vt WHERE a = 25`},
	{sql: `SELECT id FROM vt WHERE a <> 25`},
	{sql: `SELECT id FROM vt WHERE 30 < a`},
	{sql: `SELECT id FROM vt WHERE a > 24.5`}, // int column, double constant
	{sql: `SELECT id FROM vt WHERE b > 2.5`},
	{sql: `SELECT id FROM vt WHERE b <= -3`},
	{sql: `SELECT id FROM vt WHERE b = 0`},
	{sql: `SELECT id FROM vt WHERE b <> 1.25`}, // NaN rows: <> via Compare, stays false
	{sql: `SELECT id FROM vt WHERE s > 'v-008'`},
	{sql: `SELECT id FROM vt WHERE s = 'v-003'`},
	{sql: `SELECT id FROM vt WHERE f = TRUE`},
	{sql: `SELECT id FROM vt WHERE f < TRUE`},
	{sql: `SELECT id FROM vt WHERE ts > CAST('2026-01-14T00:00:00Z' AS TIMESTAMP)`},
	// Parameters bind per execution.
	{sql: `SELECT id FROM vt WHERE a > ?`, params: []Value{NewInt(44)}},
	{sql: `SELECT id FROM vt WHERE a > ?`, params: []Value{Null}},
	{sql: `SELECT id FROM vt WHERE b < ?`, params: []Value{NewDouble(math.NaN())}},
	// Three-valued AND/OR/NOT with NULL operands on both sides.
	{sql: `SELECT id FROM vt WHERE a > 10 AND b < 3`},
	{sql: `SELECT id FROM vt WHERE a > 45 OR b > 6`},
	{sql: `SELECT id FROM vt WHERE NOT (a > 10)`},
	{sql: `SELECT id FROM vt WHERE NOT (a > 10 AND s = 'v-001')`},
	{sql: `SELECT id FROM vt WHERE a > 10 AND a < 20 AND id > 40`},
	{sql: `SELECT id FROM vt WHERE (a < 5 OR a > 45) AND b > 0`},
	// IS NULL / BETWEEN / IN / LIKE kernels.
	{sql: `SELECT id FROM vt WHERE a IS NULL`},
	{sql: `SELECT id FROM vt WHERE a IS NOT NULL AND b IS NULL`},
	{sql: `SELECT id FROM vt WHERE a BETWEEN 10 AND 20`},
	{sql: `SELECT id FROM vt WHERE a NOT BETWEEN 10 AND 20`},
	{sql: `SELECT id FROM vt WHERE a BETWEEN 20 AND 10`},
	{sql: `SELECT id FROM vt WHERE b BETWEEN ? AND ?`, params: []Value{NewDouble(-1), NewDouble(2)}},
	{sql: `SELECT id FROM vt WHERE a BETWEEN ? AND 30`, params: []Value{Null}},
	{sql: `SELECT id FROM vt WHERE a IN (1, 2, 47)`},
	{sql: `SELECT id FROM vt WHERE a NOT IN (1, 2, 47)`},
	{sql: `SELECT id FROM vt WHERE a IN (1, NULL, 47)`},
	{sql: `SELECT id FROM vt WHERE a NOT IN (1, NULL, 47)`},
	{sql: `SELECT id FROM vt WHERE s LIKE 'v-00%'`},
	{sql: `SELECT id FROM vt WHERE s LIKE '%1_'`},
	{sql: `SELECT id FROM vt WHERE s NOT LIKE 'v-%'`},
	// Constant folding: literal residues plan identically to their
	// simplified forms and still produce interpreter-identical rows.
	{sql: `SELECT id FROM vt WHERE 1 = 1 AND a > 30`},
	{sql: `SELECT id FROM vt WHERE 1 = 0 AND a > 30`},
	{sql: `SELECT id FROM vt WHERE 1 = 0 OR a > 30`},
	{sql: `SELECT id FROM vt WHERE a > 30 AND TRUE`},
	{sql: `SELECT id FROM vt WHERE 1 = 1`},
	{sql: `SELECT id FROM vt WHERE NULL`},
	{sql: `SELECT id FROM vt WHERE NOT NULL`},
	// Projection: gather vs computed, star, ORDER BY over vector scan.
	{sql: `SELECT * FROM vt WHERE a = 7`},
	{sql: `SELECT s, b, a FROM vt WHERE a > 40`},
	{sql: `SELECT id * 2, a + b FROM vt WHERE a > 40`},
	{sql: `SELECT id, a FROM vt WHERE a > 30 ORDER BY a DESC, id`},
	{sql: `SELECT id FROM vt WHERE a > 30 ORDER BY b`},
	{sql: `SELECT id FROM vt WHERE a > 10 ORDER BY id LIMIT 7 OFFSET 3`},
	{sql: `SELECT id FROM vt WHERE a > 10 LIMIT 5`},
	{sql: `SELECT id FROM vt OFFSET 495`},
	// Vectorised aggregates.
	{sql: `SELECT COUNT(*) FROM vt`},
	{sql: `SELECT COUNT(*) FROM vt WHERE a > 30`},
	{sql: `SELECT COUNT(a), COUNT(b), COUNT(s) FROM vt`},
	{sql: `SELECT SUM(a), SUM(b) FROM vt`},
	{sql: `SELECT MIN(a), MAX(a), MIN(b), MAX(b) FROM vt`},
	{sql: `SELECT MIN(s), MAX(s), MIN(f), MAX(f), MIN(ts), MAX(ts) FROM vt`},
	{sql: `SELECT AVG(a), AVG(b) FROM vt`},
	{sql: `SELECT COUNT(*) FROM vt WHERE a > 200`},
	{sql: `SELECT SUM(a) FROM vt WHERE a > 200`},
	{sql: `SELECT a, COUNT(*) FROM vt GROUP BY a ORDER BY 1`},
	{sql: `SELECT a, COUNT(*), SUM(b), MIN(s) FROM vt WHERE b > -4 GROUP BY a ORDER BY 1 DESC, 2`},
	{sql: `SELECT s, COUNT(*) FROM vt GROUP BY s ORDER BY 1`},
	{sql: `SELECT b, COUNT(*) FROM vt GROUP BY b ORDER BY 2 DESC, 1 LIMIT 5`}, // NaN forms one group
	{sql: `SELECT a, s, COUNT(*) FROM vt GROUP BY a, s ORDER BY 1, 2 LIMIT 20 OFFSET 5`},
	{sql: `SELECT f, COUNT(*) FROM vt GROUP BY f ORDER BY 1`},
	{sql: `SELECT a, AVG(b) FROM vt GROUP BY a ORDER BY 1`},
	// Aggregate shapes that must fall back (interpreter owns them).
	{sql: `SELECT COUNT(DISTINCT a) FROM vt`},
	{sql: `SELECT a, COUNT(*) FROM vt GROUP BY a HAVING COUNT(*) > 8 ORDER BY 1`},
	{sql: `SELECT SUM(a + 1) FROM vt`},
	{sql: `SELECT a, COUNT(*) FROM vt GROUP BY a ORDER BY a`},
	// Bind-time fallbacks and identical errors on every path.
	{sql: `SELECT id FROM vt WHERE s > 5`},
	{sql: `SELECT id FROM vt WHERE a > 'abc'`},
	{sql: `SELECT id FROM vt WHERE a BETWEEN 'x' AND 'y'`},
	{sql: `SELECT id FROM vt WHERE a IN (1, 'x')`},
	{sql: `SELECT id FROM vt WHERE f > 1.5`},
	{sql: `SELECT SUM(a) FROM vt WHERE s > 5`},
	{sql: `SELECT id FROM vt WHERE a > 1 LIMIT -1`},
	{sql: `SELECT id FROM vt WHERE a > 1 OFFSET ?`, params: []Value{Null}},
}

// execAllPaths runs one statement three ways — vectorised, row plan
// (vector disabled), interpreter (planner disabled) — and requires
// byte-identical dumps, CAs, or error text.
func execAllPaths(t *testing.T, e *Engine, sql string, params ...Value) {
	t.Helper()
	type outcome struct {
		dump string
		ca   SQLCA
		err  error
	}
	run := func() outcome {
		res, err := e.NewSession().Execute(sql, params...)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{dump: dumpSet(res.Set), ca: res.CA}
	}
	vec := run()
	disableVector = true
	row := run()
	disableVector = false
	disablePlanner = true
	interp := run()
	disablePlanner = false
	for name, o := range map[string]outcome{"row": row, "interpreted": interp} {
		if (vec.err == nil) != (o.err == nil) {
			t.Fatalf("%s: vector err = %v, %s err = %v", sql, vec.err, name, o.err)
		}
		if vec.err != nil {
			if vec.err.Error() != o.err.Error() {
				t.Fatalf("%s: error text diverged:\nvector: %v\n%s: %v", sql, vec.err, name, o.err)
			}
			continue
		}
		if vec.dump != o.dump {
			t.Fatalf("%s: results diverged:\nvector:\n%s\n%s:\n%s", sql, vec.dump, name, o.dump)
		}
		if vec.ca != o.ca {
			t.Fatalf("%s: CA diverged: %+v vs %s %+v", sql, vec.ca, name, o.ca)
		}
	}
}

// TestVectorMatchesRowAndInterpreter is the three-way equivalence
// corpus over a multi-chunk table (cold plans).
func TestVectorMatchesRowAndInterpreter(t *testing.T) {
	e := vecEngine(t, 500)
	for _, tc := range vectorCorpus {
		execAllPaths(t, e, tc.sql, tc.params...)
	}
}

// TestVectorMatchesWarm re-runs the corpus with all plans cached: a
// cache-hit vectorised execution is held to the same standard.
func TestVectorMatchesWarm(t *testing.T) {
	e := vecEngine(t, 500)
	for _, tc := range vectorCorpus {
		_, _ = e.NewSession().Execute(tc.sql, tc.params...)
	}
	for _, tc := range vectorCorpus {
		execAllPaths(t, e, tc.sql, tc.params...)
	}
}

// TestVectorEmptyTable runs the corpus against a zero-row table —
// empty chunk lists, implicit aggregate groups, and the bind-time
// error-parity rule (no rows ⇒ no per-row errors anywhere).
func TestVectorEmptyTable(t *testing.T) {
	e := vecEngine(t, 0)
	for _, tc := range vectorCorpus {
		execAllPaths(t, e, tc.sql, tc.params...)
	}
}

// TestVectorStreamMatches drains ExecuteStream with vector execution
// on and off over the streamable subset of the corpus.
func TestVectorStreamMatches(t *testing.T) {
	e := vecEngine(t, 500)
	streamable := []struct {
		sql    string
		params []Value
	}{
		{sql: `SELECT id FROM vt WHERE a > 30`},
		{sql: `SELECT id, a, b, s FROM vt WHERE a > 10 AND b < 3`},
		{sql: `SELECT id * 2 FROM vt WHERE a IN (1, NULL, 47)`},
		{sql: `SELECT * FROM vt WHERE s LIKE 'v-00%'`},
		{sql: `SELECT id FROM vt WHERE a > 10 LIMIT 7 OFFSET 3`},
		{sql: `SELECT id FROM vt WHERE s > 5`},
		{sql: `SELECT id FROM vt WHERE a > ?`, params: []Value{Null}},
	}
	collect := func(sql string, params []Value) (string, SQLCA, error) {
		stream, err := e.NewSession().ExecuteStream(context.Background(), sql, params...)
		if err != nil {
			return "", SQLCA{}, err
		}
		var rows [][]Value
		for {
			row, rerr := stream.Next()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return "", SQLCA{}, rerr
			}
			rows = append(rows, row)
		}
		res, rerr := stream.Result()
		if rerr != nil {
			return "", SQLCA{}, rerr
		}
		return dumpSet(&ResultSet{Columns: stream.Columns(), Rows: rows}), res.CA, nil
	}
	for _, tc := range streamable {
		vd, vca, verr := collect(tc.sql, tc.params)
		disableVector = true
		rd, rca, rerr := collect(tc.sql, tc.params)
		disableVector = false
		if (verr == nil) != (rerr == nil) {
			t.Fatalf("%s: stream err = %v vs %v", tc.sql, verr, rerr)
		}
		if verr != nil {
			if verr.Error() != rerr.Error() {
				t.Fatalf("%s: stream error diverged: %v vs %v", tc.sql, verr, rerr)
			}
			continue
		}
		if vd != rd {
			t.Fatalf("%s: streamed rows diverged:\nvector:\n%s\nrow:\n%s", tc.sql, vd, rd)
		}
		if vca != rca {
			t.Fatalf("%s: streamed CA diverged: %+v vs %+v", tc.sql, vca, rca)
		}
	}
}

// TestVectorDisabledEngineOption proves WithVectorDisabled pins an
// engine to row execution: results match and no vector batches run.
func TestVectorDisabledEngineOption(t *testing.T) {
	e := New("novec", WithVectorDisabled())
	e.MustExec(`CREATE TABLE x (a INTEGER)`)
	for i := 0; i < 10; i++ {
		e.MustExec(`INSERT INTO x VALUES (?)`, NewInt(int64(i)))
	}
	rows := queryStrings(t, e, `SELECT a FROM x WHERE a > 6`)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if st := e.VectorStats(); st.Batches != 0 || st.ChunksSkipped != 0 {
		t.Fatalf("vector stats on disabled engine: %+v", st)
	}
}

// TestVectorZoneMapSkipping checks that a selective predicate over
// clustered data eliminates chunks without evaluating them, and that
// the skip is observable both in VectorStats and in EXPLAIN.
func TestVectorZoneMapSkipping(t *testing.T) {
	e := New("zones")
	e.MustExec(`CREATE TABLE z (id INTEGER, v INTEGER)`)
	s := e.NewSession()
	const n = 5 * chunkRows
	for i := 0; i < n; i++ {
		if _, err := s.Execute(`INSERT INTO z VALUES (?, ?)`, NewInt(int64(i)), NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	before := e.VectorStats()
	rows := queryStrings(t, e, `SELECT id FROM z WHERE v >= ?`, NewInt(int64(n-10)))
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	after := e.VectorStats()
	if skipped := after.ChunksSkipped - before.ChunksSkipped; skipped != 4 {
		t.Fatalf("skipped %d chunks, want 4", skipped)
	}
	if batches := after.Batches - before.Batches; batches != 1 {
		t.Fatalf("evaluated %d chunks, want 1", batches)
	}

	lines, err := e.NewSession().Explain(fmt.Sprintf(`SELECT id FROM z WHERE v >= %d`, n-10))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		fmt.Sprintf("vector: columnar scan (chunks of %d rows)", chunkRows),
		"vector filter: compiled kernels",
		"vector zone maps: 4/5 chunks skippable",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("EXPLAIN:\n%s\nmissing %q", joined, want)
		}
	}
	// Parameterised predicates cannot pre-bind: the count defers.
	lines, err = e.NewSession().Explain(`SELECT id FROM z WHERE v >= ?`)
	if err != nil {
		t.Fatal(err)
	}
	if joined := strings.Join(lines, "\n"); !strings.Contains(joined, "vector zone maps: evaluated per execution") {
		t.Fatalf("EXPLAIN:\n%s\nmissing deferred zone-map line", joined)
	}
}

// TestFoldPlansIdentically pins the satellite requirement directly:
// a literal-laden predicate produces the same physical plan as its
// simplified form, including index access pushdown.
func TestFoldPlansIdentically(t *testing.T) {
	e := planEngine(t, 50)
	pairs := [][2]string{
		{`SELECT id FROM rng WHERE 1 = 1 AND k > 5`, `SELECT id FROM rng WHERE k > 5`},
		{`SELECT id FROM rng WHERE k > 5 AND TRUE`, `SELECT id FROM rng WHERE k > 5`},
		{`SELECT id FROM rng WHERE 2 > 1 OR k > 5`, `SELECT id FROM rng WHERE TRUE`},
		{`SELECT id FROM rng WHERE 1 = 1 AND k = 3`, `SELECT id FROM rng WHERE k = 3`},
		{`SELECT id FROM rng WHERE k BETWEEN 1+1 AND 10-2`, `SELECT id FROM rng WHERE k BETWEEN 2 AND 8`},
	}
	for _, pair := range pairs {
		a, err := e.NewSession().Explain(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.NewSession().Explain(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if got, want := strings.Join(a, "\n"), strings.Join(b, "\n"); got != want {
			t.Fatalf("plans diverged:\n%s\n=>\n%s\nvs\n%s\n=>\n%s", pair[0], got, pair[1], want)
		}
		execBothWays(t, e, pair[0])
	}
}

// TestChaosVectorScanDML hammers vectorised scans and aggregates
// against concurrent INSERT/UPDATE/DELETE and rolled-back
// transactions. Run under -race: it exists to prove chunk-cache
// maintenance publishes safely through the database latch.
func TestChaosVectorScanDML(t *testing.T) {
	// The single-table hammer serialises hard on the lock manager; under
	// -race the default 2s wait is starvation, not deadlock.
	e := New("chaos", WithLockTimeout(time.Minute))
	e.MustExec(`CREATE TABLE h (id INTEGER, v INTEGER, s VARCHAR(8))`)
	seed := e.NewSession()
	for i := 0; i < 3000; i++ {
		if _, err := seed.Execute(`INSERT INTO h VALUES (?, ?, ?)`,
			NewInt(int64(i)), NewInt(int64(i%100)), NewString(fmt.Sprintf("s%d", i%10))); err != nil {
			t.Fatal(err)
		}
	}
	const readers, writers, iters = 4, 2, 150
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			for i := 0; i < iters; i++ {
				id := int64(3000 + w*iters + i)
				if _, err := s.Execute(`INSERT INTO h VALUES (?, ?, 'w')`, NewInt(id), NewInt(id%100)); err != nil {
					errs <- err
					return
				}
				if _, err := s.Execute(`UPDATE h SET v = v + 1 WHERE id = ?`, NewInt(int64(i%3000))); err != nil {
					errs <- err
					return
				}
				if _, err := s.Execute(`DELETE FROM h WHERE id = ?`, NewInt(id)); err != nil {
					errs <- err
					return
				}
				// Rolled-back transaction: its splice-undo must also
				// invalidate the chunk cache.
				for _, sql := range []string{`BEGIN`, `DELETE FROM h WHERE v = 7`, `ROLLBACK`} {
					if _, err := s.Execute(sql); err != nil {
						errs <- fmt.Errorf("%s: %w", sql, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession()
			for i := 0; i < iters; i++ {
				res, err := s.Execute(`SELECT COUNT(*) FROM h WHERE v >= 50`)
				if err != nil {
					errs <- err
					return
				}
				if res.Set.Rows[0][0].I < 0 {
					errs <- fmt.Errorf("negative count")
					return
				}
				if _, err := s.Execute(`SELECT s, COUNT(*), SUM(v) FROM h GROUP BY s ORDER BY 1`); err != nil {
					errs <- err
					return
				}
				if _, err := s.Execute(`SELECT id, v FROM h WHERE v BETWEEN 10 AND 20 ORDER BY id LIMIT 50`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final state must agree with the interpreter exactly.
	execAllPaths(t, e, `SELECT COUNT(*), SUM(v), MIN(id), MAX(id) FROM h`)
	execAllPaths(t, e, `SELECT s, COUNT(*) FROM h GROUP BY s ORDER BY 1`)
}
