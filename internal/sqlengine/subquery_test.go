package sqlengine

import (
	"strings"
	"testing"
)

// seedOrgs builds dept/emp tables for subquery and union tests.
func seedOrgs(t testing.TB) *Engine {
	t.Helper()
	e := New("orgs")
	e.MustExec(`CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR(32), budget INTEGER)`)
	e.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(32), dept_id INTEGER, salary INTEGER)`)
	e.MustExec(`INSERT INTO dept VALUES (1, 'eng', 500), (2, 'sales', 300), (3, 'legal', 100)`)
	e.MustExec(`INSERT INTO emp VALUES
		(1, 'ann', 1, 120), (2, 'bob', 1, 95), (3, 'carol', 2, 87), (4, 'dan', 2, 91), (5, 'eve', NULL, 150)`)
	return e
}

func TestScalarSubquery(t *testing.T) {
	e := seedOrgs(t)
	rows := queryStrings(t, e, `SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) ORDER BY name`)
	if len(rows) != 2 || rows[0][0] != "ann" || rows[1][0] != "eve" {
		t.Fatalf("rows = %v", rows)
	}
	// In the select list.
	rows = queryStrings(t, e, `SELECT name, (SELECT MAX(budget) FROM dept) FROM emp WHERE id = 1`)
	if rows[0][1] != "500" {
		t.Fatalf("rows = %v", rows)
	}
	// Empty scalar subquery yields NULL.
	rows = queryStrings(t, e, `SELECT (SELECT name FROM dept WHERE id = 99)`)
	if rows[0][0] != "NULL" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestScalarSubqueryErrors(t *testing.T) {
	e := seedOrgs(t)
	if _, err := e.Exec(`SELECT (SELECT id, name FROM dept WHERE id = 1)`); err == nil ||
		!strings.Contains(err.Error(), "one column") {
		t.Fatalf("expected column-count error, got %v", err)
	}
	if _, err := e.Exec(`SELECT (SELECT id FROM dept)`); err == nil ||
		!strings.Contains(err.Error(), "rows") {
		t.Fatalf("expected row-count error, got %v", err)
	}
}

func TestInSubquery(t *testing.T) {
	e := seedOrgs(t)
	rows := queryStrings(t, e, `SELECT name FROM emp WHERE dept_id IN (SELECT id FROM dept WHERE budget > 200) ORDER BY name`)
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	rows = queryStrings(t, e, `SELECT name FROM dept WHERE id NOT IN (SELECT dept_id FROM emp WHERE dept_id IS NOT NULL) ORDER BY name`)
	if len(rows) != 1 || rows[0][0] != "legal" {
		t.Fatalf("rows = %v", rows)
	}
	// NULL in the subquery result poisons NOT IN entirely.
	rows = queryStrings(t, e, `SELECT name FROM dept WHERE id NOT IN (SELECT dept_id FROM emp)`)
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExistsCorrelated(t *testing.T) {
	e := seedOrgs(t)
	rows := queryStrings(t, e, `SELECT d.name FROM dept d
		WHERE EXISTS (SELECT 1 FROM emp e WHERE e.dept_id = d.id) ORDER BY d.name`)
	if len(rows) != 2 || rows[0][0] != "eng" || rows[1][0] != "sales" {
		t.Fatalf("rows = %v", rows)
	}
	rows = queryStrings(t, e, `SELECT d.name FROM dept d
		WHERE NOT EXISTS (SELECT 1 FROM emp e WHERE e.dept_id = d.id)`)
	if len(rows) != 1 || rows[0][0] != "legal" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	e := seedOrgs(t)
	rows := queryStrings(t, e, `SELECT d.name, (SELECT COUNT(*) FROM emp e WHERE e.dept_id = d.id) AS heads
		FROM dept d ORDER BY d.id`)
	want := [][2]string{{"eng", "2"}, {"sales", "2"}, {"legal", "0"}}
	for i, w := range want {
		if rows[i][0] != w[0] || rows[i][1] != w[1] {
			t.Fatalf("rows = %v", rows)
		}
	}
}

func TestSubqueryInUpdateDelete(t *testing.T) {
	e := seedOrgs(t)
	res, err := e.Exec(`UPDATE emp SET salary = salary + 10
		WHERE dept_id IN (SELECT id FROM dept WHERE name = 'eng')`)
	if err != nil || res.UpdateCount != 2 {
		t.Fatalf("res = %+v, %v", res, err)
	}
	res, err = e.Exec(`DELETE FROM emp WHERE salary < (SELECT AVG(salary) FROM emp)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateCount == 0 {
		t.Fatal("delete matched nothing")
	}
}

func TestUnion(t *testing.T) {
	e := seedOrgs(t)
	rows := queryStrings(t, e, `SELECT name FROM dept UNION SELECT name FROM emp ORDER BY name`)
	if len(rows) != 8 { // 3 depts + 5 emps, no overlap
		t.Fatalf("rows = %v", rows)
	}
	// UNION dedups; UNION ALL keeps duplicates.
	rows = queryStrings(t, e, `SELECT dept_id FROM emp WHERE dept_id IS NOT NULL UNION SELECT dept_id FROM emp WHERE dept_id IS NOT NULL ORDER BY 1`)
	if len(rows) != 2 {
		t.Fatalf("union rows = %v", rows)
	}
	rows = queryStrings(t, e, `SELECT dept_id FROM emp WHERE dept_id = 1 UNION ALL SELECT dept_id FROM emp WHERE dept_id = 1`)
	if len(rows) != 4 {
		t.Fatalf("union all rows = %v", rows)
	}
}

func TestUnionOrderLimit(t *testing.T) {
	e := seedOrgs(t)
	rows := queryStrings(t, e, `SELECT name FROM dept UNION SELECT name FROM emp ORDER BY name DESC LIMIT 3`)
	if len(rows) != 3 || rows[0][0] != "sales" {
		t.Fatalf("rows = %v", rows)
	}
	// Ordinal ordering.
	rows = queryStrings(t, e, `SELECT id FROM dept UNION SELECT id FROM emp ORDER BY 1 LIMIT 2 OFFSET 1`)
	if len(rows) != 2 || rows[0][0] != "2" || rows[1][0] != "3" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestUnionErrors(t *testing.T) {
	e := seedOrgs(t)
	if _, err := e.Exec(`SELECT id, name FROM dept UNION SELECT id FROM emp`); err == nil {
		t.Fatal("column-count mismatch should fail")
	}
	if _, err := e.Exec(`SELECT id FROM dept UNION SELECT id FROM emp ORDER BY salary`); err == nil {
		t.Fatal("ORDER BY on a column not in union output should fail")
	}
}

func TestInsertSelect(t *testing.T) {
	e := seedOrgs(t)
	e.MustExec(`CREATE TABLE rich (id INTEGER PRIMARY KEY, name VARCHAR(32))`)
	res, err := e.Exec(`INSERT INTO rich SELECT id, name FROM emp WHERE salary > 100`)
	if err != nil || res.UpdateCount != 2 {
		t.Fatalf("res = %+v, %v", res, err)
	}
	rows := queryStrings(t, e, `SELECT name FROM rich ORDER BY name`)
	if rows[0][0] != "ann" || rows[1][0] != "eve" {
		t.Fatalf("rows = %v", rows)
	}
	// Column-count mismatch.
	if _, err := e.Exec(`INSERT INTO rich SELECT id FROM emp`); err == nil {
		t.Fatal("column mismatch should fail")
	}
	// Constraint failure rolls back the whole INSERT SELECT.
	before, _ := e.Database().TableRowCount("rich")
	if _, err := e.Exec(`INSERT INTO rich SELECT id, name FROM emp`); err == nil {
		t.Fatal("duplicate ids should fail")
	}
	after, _ := e.Database().TableRowCount("rich")
	if before != after {
		t.Fatalf("partial insert persisted: %d -> %d", before, after)
	}
}

func TestInsertSelectIntoColumns(t *testing.T) {
	e := seedOrgs(t)
	e.MustExec(`CREATE TABLE names (n VARCHAR(32), tag VARCHAR(8) DEFAULT 'x')`)
	res, err := e.Exec(`INSERT INTO names (n) SELECT name FROM dept`)
	if err != nil || res.UpdateCount != 3 {
		t.Fatalf("res = %+v, %v", res, err)
	}
	rows := queryStrings(t, e, `SELECT COUNT(*) FROM names WHERE tag = 'x'`)
	if rows[0][0] != "3" {
		t.Fatalf("defaults not applied: %v", rows)
	}
}

func TestSubqueryRollback(t *testing.T) {
	e := seedOrgs(t)
	s := e.NewSession()
	mustSess(t, s, `BEGIN`)
	mustSess(t, s, `DELETE FROM emp WHERE dept_id IN (SELECT id FROM dept)`)
	mustSess(t, s, `ROLLBACK`)
	if n, _ := e.Database().TableRowCount("emp"); n != 5 {
		t.Fatalf("rowcount = %d", n)
	}
}

func TestNestedSubqueries(t *testing.T) {
	e := seedOrgs(t)
	rows := queryStrings(t, e, `SELECT name FROM emp
		WHERE dept_id IN (SELECT id FROM dept WHERE budget = (SELECT MAX(budget) FROM dept))
		ORDER BY name`)
	if len(rows) != 2 || rows[0][0] != "ann" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestDerivedTables(t *testing.T) {
	e := seedOrgs(t)
	rows := queryStrings(t, e, `SELECT dt.name FROM (SELECT name, salary FROM emp WHERE salary > 90) dt
		WHERE dt.salary < 130 ORDER BY dt.name`)
	if len(rows) != 3 || rows[0][0] != "ann" || rows[2][0] != "dan" {
		t.Fatalf("rows = %v", rows)
	}
	// Aggregating over a derived table.
	rows = queryStrings(t, e, `SELECT COUNT(*), AVG(t.pay) FROM
		(SELECT salary AS pay FROM emp WHERE dept_id IS NOT NULL) AS t`)
	if rows[0][0] != "4" {
		t.Fatalf("rows = %v", rows)
	}
	// Joining a base table with a derived table.
	rows = queryStrings(t, e, `SELECT d.name, agg.heads FROM dept d
		JOIN (SELECT dept_id, COUNT(*) AS heads FROM emp WHERE dept_id IS NOT NULL GROUP BY dept_id) agg
		ON d.id = agg.dept_id ORDER BY d.name`)
	if len(rows) != 2 || rows[0][0] != "eng" || rows[0][1] != "2" {
		t.Fatalf("rows = %v", rows)
	}
	// Alias is mandatory.
	if _, err := e.Exec(`SELECT * FROM (SELECT 1)`); err == nil {
		t.Fatal("derived table without alias should fail")
	}
	// Nested derived tables.
	rows = queryStrings(t, e, `SELECT MAX(x.n) FROM (SELECT COUNT(*) AS n FROM (SELECT id FROM emp) inner1) x`)
	if rows[0][0] != "5" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestRightJoin(t *testing.T) {
	e := seedOrgs(t)
	// legal has no employees; RIGHT JOIN on dept keeps it.
	rows := queryStrings(t, e, `SELECT e.name, d.name FROM emp e RIGHT JOIN dept d ON e.dept_id = d.id ORDER BY d.name, e.name`)
	if len(rows) != 5 { // 4 matched emp rows + legal with NULL emp
		t.Fatalf("rows = %v", rows)
	}
	var legal []string
	for _, r := range rows {
		if r[1] == "legal" {
			legal = r
		}
	}
	if legal == nil || legal[0] != "NULL" {
		t.Fatalf("legal row = %v", legal)
	}
	// RIGHT OUTER JOIN spelling.
	rows = queryStrings(t, e, `SELECT COUNT(*) FROM emp e RIGHT OUTER JOIN dept d ON e.dept_id = d.id`)
	if rows[0][0] != "5" {
		t.Fatalf("rows = %v", rows)
	}
}
