package sqlengine

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"
)

func streamEngine(t testing.TB, rows int) *Engine {
	t.Helper()
	e := New("streamdb")
	e.MustExec(`CREATE TABLE items (id INTEGER PRIMARY KEY, label VARCHAR(32), num DOUBLE)`)
	for i := 0; i < rows; i += 100 {
		stmt := "INSERT INTO items VALUES "
		for j := i; j < i+100 && j < rows; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'label-%04d', %g)", j, j, float64(j)/3)
		}
		e.MustExec(stmt)
	}
	return e
}

func drain(t *testing.T, rs *RowStream) [][]Value {
	t.Helper()
	var rows [][]Value
	for {
		row, err := rs.Next()
		if err == io.EOF {
			return rows
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		rows = append(rows, row)
	}
}

// TestExecuteStreamMatchesExecute checks streamed rows, columns and the
// communication area against the materialised path for a spread of
// statements — both ones the producer streams and ones that fall back.
func TestExecuteStreamMatchesExecute(t *testing.T) {
	e := streamEngine(t, 500)
	cases := []struct {
		name      string
		sql       string
		params    []Value
		streaming bool
	}{
		{"full scan", `SELECT id, label, num FROM items`, nil, true},
		{"star", `SELECT * FROM items`, nil, true},
		{"filtered", `SELECT id FROM items WHERE num > ?`, []Value{NewDouble(100)}, true},
		{"limit offset", `SELECT id FROM items LIMIT 10 OFFSET 25`, nil, true},
		{"empty result", `SELECT id FROM items WHERE id < 0`, nil, true},
		{"expression projection", `SELECT id * 2, label FROM items WHERE id < 20`, nil, true},
		{"order by falls back", `SELECT id FROM items ORDER BY id DESC LIMIT 5`, nil, false},
		{"aggregate falls back", `SELECT COUNT(*) FROM items`, nil, false},
		{"distinct falls back", `SELECT DISTINCT label FROM items WHERE id < 3`, nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := e.NewSession().Execute(tc.sql, tc.params...)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := e.NewSession().ExecuteStream(context.Background(), tc.sql, tc.params...)
			if err != nil {
				t.Fatal(err)
			}
			if stream.Streaming() != tc.streaming {
				t.Fatalf("Streaming() = %v, want %v", stream.Streaming(), tc.streaming)
			}
			gotRows := drain(t, stream)
			res, err := stream.Result()
			if err != nil {
				t.Fatal(err)
			}
			if len(gotRows) != len(want.Set.Rows) {
				t.Fatalf("rows = %d, want %d", len(gotRows), len(want.Set.Rows))
			}
			if len(stream.Columns()) != len(want.Set.Columns) {
				t.Fatalf("columns = %d, want %d", len(stream.Columns()), len(want.Set.Columns))
			}
			for i, c := range stream.Columns() {
				if c != want.Set.Columns[i] {
					t.Fatalf("column %d = %+v, want %+v", i, c, want.Set.Columns[i])
				}
			}
			for i := range gotRows {
				for j := range gotRows[i] {
					if gotRows[i][j].String() != want.Set.Rows[i][j].String() {
						t.Fatalf("row %d col %d = %v, want %v", i, j, gotRows[i][j], want.Set.Rows[i][j])
					}
				}
			}
			if res.CA != want.CA {
				t.Fatalf("CA = %+v, want %+v", res.CA, want.CA)
			}
		})
	}
}

func TestExecuteStreamSetupErrors(t *testing.T) {
	e := streamEngine(t, 10)
	for _, sql := range []string{
		`SELECT id FROM missing`,
		`SELECT id FROM items LIMIT 'abc'`,
	} {
		if _, err := e.NewSession().ExecuteStream(context.Background(), sql); err == nil {
			t.Fatalf("%s: expected setup error", sql)
		}
	}
	// Unknown columns bind lazily: the stream opens, the error surfaces
	// on the first row — and the producer still releases its locks.
	stream, err := e.NewSession().ExecuteStream(context.Background(), `SELECT nosuch FROM items`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Next(); err == nil || err == io.EOF {
		t.Fatalf("Next = %v, want eval error", err)
	}
	// Setup errors must not leave locks behind: a write must proceed.
	done := make(chan error, 1)
	go func() {
		_, err := e.NewSession().Execute(`INSERT INTO items VALUES (1000, 'x', 1)`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write blocked: stream setup leaked locks")
	}
}

func TestExecuteStreamCancel(t *testing.T) {
	e := streamEngine(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	stream, err := e.NewSession().ExecuteStream(ctx, `SELECT id FROM items`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Drain until the cancellation surfaces.
	var lastErr error
	for {
		_, err := stream.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == io.EOF {
		t.Fatal("expected cancellation error, got clean EOF")
	}
	var ce *CancelledError
	if !asCancelled(lastErr, &ce) {
		t.Fatalf("err = %v, want CancelledError", lastErr)
	}
	// Locks must be released after the producer dies.
	if _, err := e.NewSession().Execute(`INSERT INTO items VALUES (9999, 'y', 2)`); err != nil {
		t.Fatal(err)
	}
}

func asCancelled(err error, target **CancelledError) bool {
	for err != nil {
		if ce, ok := err.(*CancelledError); ok {
			*target = ce
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestExecuteStreamCloseReleasesLocks(t *testing.T) {
	e := streamEngine(t, 2000)
	stream, err := e.NewSession().ExecuteStream(context.Background(), `SELECT id FROM items`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Next(); err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := e.NewSession().Execute(`UPDATE items SET num = 0 WHERE id = 5`); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteStreamBackpressure(t *testing.T) {
	// A consumer that never drains must not force the producer to
	// materialise: production stalls at the channel depth.
	e := streamEngine(t, 10000)
	stream, err := e.NewSession().ExecuteStream(context.Background(), `SELECT id FROM items`)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	time.Sleep(50 * time.Millisecond)
	select {
	case <-stream.done:
		// The producer raced through 10k rows into a 64-slot channel
		// with nobody receiving, which cannot happen.
		t.Fatal("producer finished without a consumer: no backpressure")
	default:
	}
}

func TestExecuteStreamInsideTxnFallsBack(t *testing.T) {
	e := streamEngine(t, 50)
	s := e.NewSession()
	if _, err := s.Execute(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	stream, err := s.ExecuteStream(context.Background(), `SELECT id FROM items WHERE id < 5`)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Streaming() {
		t.Fatal("streams must not run inside explicit transactions")
	}
	if got := len(drain(t, stream)); got != 5 {
		t.Fatalf("rows = %d", got)
	}
	if _, err := s.Execute(`COMMIT`); err != nil {
		t.Fatal(err)
	}
}
