package sqlengine

import "sort"

// OrderedIndex is a sorted posting structure over a single column: the
// ordered sibling of the hash Index. Keys are kept in ascending Compare
// order with one ascending rowID posting list per distinct key, so the
// index supports point lookup, range scans (<, <=, >, >=, BETWEEN
// pushdown) and full ordered iteration (ORDER BY over the index) without
// a sort. NULL keys live in a separate ascending rowID list, matching
// the engine's NULLS FIRST sort order.
//
// Key comparison uses the column's declared type via Compare; values are
// coerced on insert so comparisons cannot fail. NaN in a DOUBLE column
// compares equal to everything, so its position among the keys is
// unspecified — the same caveat the hash index has (its group key never
// matches a non-NaN probe).
type OrderedIndex struct {
	Name   string
	Table  string
	Column string
	Unique bool

	keys  []Value   // distinct non-NULL keys, ascending
	post  [][]int64 // posting lists parallel to keys, rowIDs ascending
	nulls []int64   // rowIDs with a NULL key, ascending
}

func newOrderedIndex(name, table, column string, unique bool) *OrderedIndex {
	return &OrderedIndex{Name: name, Table: table, Column: column, Unique: unique}
}

// cmpKeys orders two same-column values; a comparison error cannot
// happen for coerced column values and degrades to "equal" if it does.
func cmpKeys(a, b Value) int {
	c, err := Compare(a, b)
	if err != nil {
		return 0
	}
	return c
}

// search returns the position of v among the keys and whether it is
// present.
func (ix *OrderedIndex) search(v Value) (int, bool) {
	pos := sort.Search(len(ix.keys), func(i int) bool { return cmpKeys(ix.keys[i], v) >= 0 })
	return pos, pos < len(ix.keys) && cmpKeys(ix.keys[pos], v) == 0
}

// insertID places id into an ascending rowID list.
func insertID(ids []int64, id int64) []int64 {
	pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

func removeID(ids []int64, id int64) []int64 {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// insert adds one (value, rowID) pair.
func (ix *OrderedIndex) insert(v Value, id int64) {
	if v.IsNull() {
		ix.nulls = insertID(ix.nulls, id)
		return
	}
	pos, found := ix.search(v)
	if found {
		ix.post[pos] = insertID(ix.post[pos], id)
		return
	}
	ix.keys = append(ix.keys, Null)
	copy(ix.keys[pos+1:], ix.keys[pos:])
	ix.keys[pos] = v
	ix.post = append(ix.post, nil)
	copy(ix.post[pos+1:], ix.post[pos:])
	ix.post[pos] = []int64{id}
}

// remove drops one (value, rowID) pair.
func (ix *OrderedIndex) remove(v Value, id int64) {
	if v.IsNull() {
		ix.nulls = removeID(ix.nulls, id)
		return
	}
	pos, found := ix.search(v)
	if !found {
		return
	}
	ix.post[pos] = removeID(ix.post[pos], id)
	if len(ix.post[pos]) == 0 {
		ix.keys = append(ix.keys[:pos], ix.keys[pos+1:]...)
		ix.post = append(ix.post[:pos], ix.post[pos+1:]...)
	}
}

// lookup returns the rowIDs whose key equals v (ascending). NULL never
// matches.
func (ix *OrderedIndex) lookup(v Value) []int64 {
	if v.IsNull() {
		return nil
	}
	if pos, found := ix.search(v); found {
		return ix.post[pos]
	}
	return nil
}

// entries returns the number of indexed (non-NULL) keys.
func (ix *OrderedIndex) entries() int { return len(ix.keys) }

// ordBound is one side of a range scan; nil means unbounded.
type ordBound struct {
	val  Value
	incl bool
}

// appendRange appends the rowIDs whose keys fall inside [lo, hi] to dst,
// in key order (ascending, or descending when desc is set), rowIDs
// ascending within one key. NULL keys never satisfy a range predicate
// and are excluded.
func (ix *OrderedIndex) appendRange(dst []int64, lo, hi *ordBound, desc bool) []int64 {
	start := 0
	if lo != nil {
		want := 0
		if !lo.incl {
			want = 1
		}
		start = sort.Search(len(ix.keys), func(i int) bool { return cmpKeys(ix.keys[i], lo.val) >= want })
	}
	end := len(ix.keys)
	if hi != nil {
		want := 1
		if !hi.incl {
			want = 0
		}
		end = sort.Search(len(ix.keys), func(i int) bool { return cmpKeys(ix.keys[i], hi.val) >= want })
	}
	if desc {
		for i := end - 1; i >= start; i-- {
			dst = append(dst, ix.post[i]...)
		}
		return dst
	}
	for i := start; i < end; i++ {
		dst = append(dst, ix.post[i]...)
	}
	return dst
}

// appendOrdered appends every rowID in full index order: ascending keys
// with NULLs first (the engine's sort order), or descending keys with
// NULLs last when desc is set. rowIDs ascend within one key, which is
// exactly the stable-sort order of a rowID-ordered scan.
func (ix *OrderedIndex) appendOrdered(dst []int64, desc bool) []int64 {
	if desc {
		for i := len(ix.keys) - 1; i >= 0; i-- {
			dst = append(dst, ix.post[i]...)
		}
		return append(dst, ix.nulls...)
	}
	dst = append(dst, ix.nulls...)
	for i := range ix.keys {
		dst = append(dst, ix.post[i]...)
	}
	return dst
}
