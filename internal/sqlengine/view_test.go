package sqlengine

import (
	"strings"
	"testing"
	"time"
)

func TestCreateAndQueryView(t *testing.T) {
	e := seedOrgs(t)
	e.MustExec(`CREATE VIEW wellpaid AS SELECT name, salary FROM emp WHERE salary > 90`)
	rows := queryStrings(t, e, `SELECT name FROM wellpaid ORDER BY name`)
	if len(rows) != 4 || rows[0][0] != "ann" {
		t.Fatalf("rows = %v", rows)
	}
	// Views are live: new qualifying rows appear.
	e.MustExec(`INSERT INTO emp VALUES (6, 'frank', 3, 200)`)
	rows = queryStrings(t, e, `SELECT COUNT(*) FROM wellpaid`)
	if rows[0][0] != "5" {
		t.Fatalf("rows = %v", rows)
	}
	// Qualified references and aliases.
	rows = queryStrings(t, e, `SELECT w.name FROM wellpaid w WHERE w.salary > 150 ORDER BY w.name`)
	if len(rows) != 1 || rows[0][0] != "frank" {
		t.Fatalf("rows = %v", rows)
	}
	// Aggregation over a view.
	rows = queryStrings(t, e, `SELECT MAX(salary) FROM wellpaid`)
	if rows[0][0] != "200" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestViewOverView(t *testing.T) {
	e := seedOrgs(t)
	e.MustExec(`CREATE VIEW engonly AS SELECT * FROM emp WHERE dept_id = 1`)
	e.MustExec(`CREATE VIEW engnames AS SELECT name FROM engonly`)
	rows := queryStrings(t, e, `SELECT name FROM engnames ORDER BY name`)
	if len(rows) != 2 || rows[0][0] != "ann" || rows[1][0] != "bob" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestViewJoinsAndSubqueries(t *testing.T) {
	e := seedOrgs(t)
	e.MustExec(`CREATE VIEW headcount AS
		SELECT dept_id, COUNT(*) AS heads FROM emp WHERE dept_id IS NOT NULL GROUP BY dept_id`)
	rows := queryStrings(t, e, `SELECT d.name, h.heads FROM dept d JOIN headcount h ON d.id = h.dept_id ORDER BY d.name`)
	if len(rows) != 2 || rows[0][1] != "2" {
		t.Fatalf("rows = %v", rows)
	}
	rows = queryStrings(t, e, `SELECT name FROM dept WHERE id IN (SELECT dept_id FROM headcount) ORDER BY name`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestViewCatalogRules(t *testing.T) {
	e := seedOrgs(t)
	e.MustExec(`CREATE VIEW v1 AS SELECT 1`)
	if _, err := e.Exec(`CREATE VIEW v1 AS SELECT 2`); err == nil {
		t.Fatal("duplicate view")
	}
	if _, err := e.Exec(`CREATE VIEW emp AS SELECT 1`); err == nil {
		t.Fatal("view shadowing a table")
	}
	if _, err := e.Exec(`CREATE TABLE v1 (a INTEGER)`); err == nil {
		t.Fatal("table shadowing a view")
	}
	names := e.Database().ViewNames()
	if len(names) != 1 || names[0] != "v1" {
		t.Fatalf("views = %v", names)
	}
	e.MustExec(`DROP VIEW v1`)
	if _, err := e.Exec(`DROP VIEW v1`); err == nil {
		t.Fatal("double drop")
	}
	if _, err := e.Exec(`SELECT * FROM v1`); err == nil {
		t.Fatal("dropped view still queryable")
	}
}

func TestViewErrorsSurfaceAtQueryTime(t *testing.T) {
	e := seedOrgs(t)
	// A view over a table that is later dropped fails when queried.
	e.MustExec(`CREATE VIEW doomed AS SELECT * FROM dept`)
	e.MustExec(`DROP TABLE dept`)
	if _, err := e.Exec(`SELECT * FROM doomed`); err == nil ||
		!strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("err = %v", err)
	}
}

func TestViewWriteIsRejected(t *testing.T) {
	e := seedOrgs(t)
	e.MustExec(`CREATE VIEW v AS SELECT * FROM emp`)
	if _, err := e.Exec(`INSERT INTO v VALUES (9, 'x', 1, 1)`); err == nil {
		t.Fatal("insert into a view should fail")
	}
	if _, err := e.Exec(`UPDATE v SET salary = 0`); err == nil {
		t.Fatal("update of a view should fail")
	}
	if _, err := e.Exec(`DELETE FROM v`); err == nil {
		t.Fatal("delete from a view should fail")
	}
}

func TestViewLockingExpandsToBaseTables(t *testing.T) {
	e := New("t", WithLockTimeout(100*time.Millisecond))
	e.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)`)
	e.MustExec(`INSERT INTO acct VALUES (1, 100)`)
	e.MustExec(`CREATE VIEW balances AS SELECT bal FROM acct`)

	reader := e.NewSession()
	if err := reader.SetIsolation(RepeatableRead); err != nil {
		t.Fatal(err)
	}
	mustSess(t, reader, `BEGIN`)
	if _, err := reader.Execute(`SELECT * FROM balances`); err != nil {
		t.Fatal(err)
	}
	// The reader's view access must hold a lock on the BASE table, so a
	// writer cannot sneak in.
	writer := e.NewSession()
	if _, err := writer.Execute(`UPDATE acct SET bal = 0`); err == nil {
		t.Fatal("writer should block on the view reader's base-table lock")
	}
	mustSess(t, reader, `COMMIT`)
}
