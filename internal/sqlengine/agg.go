package sqlengine

import (
	"context"
	"fmt"
	"strings"
)

// Vectorised aggregation: GROUP BY / aggregate SELECTs over a single
// base table compile into an aggPlan that folds column chunks into
// typed accumulators — no per-row evalEnv, no per-row group-row
// slices. The compilable class is chosen so results are byte-identical
// to execGrouped; anything outside it (HAVING, DISTINCT, expression
// aggregates, non-ordinal ORDER BY, ...) stays on the interpreter.

type aggItemKind int

const (
	aggCountStar aggItemKind = iota // COUNT(*)
	aggCount                        // COUNT(col): non-null count
	aggMin
	aggMax
	aggSum
	aggAvg
	aggGroupCol // plain column: the group's first row value
)

type aggItem struct {
	kind aggItemKind
	col  int // base-column ordinal (unused for COUNT(*))
}

// aggPlan is a compiled aggregate query: items classified, GROUP BY
// resolved to base columns, the WHERE predicate vector-compiled, and
// ORDER BY restricted to output ordinals. Valid only while the schema
// epoch matches.
type aggPlan struct {
	sel   *SelectStmt
	epoch uint64

	t        *Table
	projCols []ResultColumn
	items    []aggItem
	groupBy  []int
	pred     vecPred // nil when no WHERE clause

	orderIdx []int // output ordinals for ORDER BY keys
	explain  []string
}

// planAggregate compiles a grouped/aggregate SELECT, or reports
// ok=false when any part is outside the vectorisable class — the
// interpreter then runs the statement, including producing any errors
// (a plan-time bail is always safe because the fallback IS the
// reference implementation). Caller holds d.mu for reading.
func (d *Database) planAggregate(sel *SelectStmt) (*aggPlan, bool) {
	switch {
	case len(sel.Unions) > 0 || sel.Distinct || sel.Having != nil:
		return nil, false
	case len(sel.GroupBy) == 0 && !selectHasAggregate(sel):
		return nil, false // not a grouped query; planSelect owns it
	case sel.From == nil || sel.From.Subquery != nil || len(sel.Joins) > 0:
		return nil, false
	}
	if sel.Where != nil && containsAggregate(sel.Where) {
		return nil, false
	}
	if _, isView := d.views[strings.ToLower(sel.From.Table)]; isView {
		return nil, false
	}
	t, err := d.table(sel.From.Table)
	if err != nil {
		return nil, false
	}
	qual := strings.ToLower(sel.From.Table)
	if sel.From.Alias != "" {
		qual = strings.ToLower(sel.From.Alias)
	}
	cols := make([]boundColumn, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = boundColumn{qualifier: qual, name: strings.ToLower(c.Name), typ: c.Type, origName: c.Name}
	}
	env := &evalEnv{cols: cols}
	projCols, projExprs, err := expandSelectItems(sel, env)
	if err != nil {
		return nil, false
	}

	ap := &aggPlan{sel: sel, epoch: d.epoch, t: t, projCols: projCols}

	// GROUP BY: plain base columns only.
	for _, ge := range sel.GroupBy {
		re, ok := rewriteExpr(ge, cols)
		if !ok {
			return nil, false
		}
		bc, ok := re.(*boundColExpr)
		if !ok || bc.idx >= len(t.Columns) {
			return nil, false
		}
		ap.groupBy = append(ap.groupBy, bc.idx)
	}

	// Select items: direct aggregates over a plain column, COUNT(*), or
	// a plain column (grouped only — with no GROUP BY the interpreter
	// has no first row to read and the query is malformed anyway).
	for _, e := range projExprs {
		re, ok := rewriteExpr(e, cols)
		if !ok {
			return nil, false
		}
		switch n := re.(type) {
		case *boundColExpr:
			if len(ap.groupBy) == 0 || n.idx >= len(t.Columns) {
				return nil, false
			}
			ap.items = append(ap.items, aggItem{kind: aggGroupCol, col: n.idx})
		case *FuncExpr:
			if !aggregateNames[n.Name] || n.Distinct {
				return nil, false
			}
			if n.Star {
				if n.Name != "COUNT" {
					return nil, false // interpreter errors; let it
				}
				ap.items = append(ap.items, aggItem{kind: aggCountStar})
				continue
			}
			if len(n.Args) != 1 {
				return nil, false
			}
			bc, ok := n.Args[0].(*boundColExpr)
			if !ok || bc.idx >= len(t.Columns) {
				return nil, false
			}
			var kind aggItemKind
			switch n.Name {
			case "COUNT":
				kind = aggCount
			case "MIN":
				kind = aggMin
			case "MAX":
				kind = aggMax
			case "SUM", "AVG":
				if !t.Columns[bc.idx].Type.isNumeric() {
					return nil, false // interpreter errors per group; let it
				}
				if n.Name == "SUM" {
					kind = aggSum
				} else {
					kind = aggAvg
				}
			default:
				return nil, false
			}
			ap.items = append(ap.items, aggItem{kind: kind, col: bc.idx})
		default:
			return nil, false
		}
	}

	// ORDER BY: output ordinals only; names would resolve through the
	// grouped alias scope, which only the interpreter reproduces.
	for _, oi := range sel.OrderBy {
		ord, ok := ordinalRef(oi.Expr, len(ap.items))
		if !ok {
			return nil, false
		}
		ap.orderIdx = append(ap.orderIdx, ord)
	}

	// WHERE: must compile to vector kernels (folded first, as the
	// select planner does).
	if sel.Where != nil {
		w, ok := rewriteExpr(sel.Where, cols)
		if !ok {
			return nil, false
		}
		ap.pred, ok = compileVecPred(foldConstants(w), t)
		if !ok {
			return nil, false
		}
	}

	ap.explain = ap.explainLines()
	return ap, true
}

func (ap *aggPlan) explainLines() []string {
	lines := []string{fmt.Sprintf("select on %q (vectorised aggregate)", ap.t.Name)}
	lines = append(lines, "  access: full scan")
	lines = append(lines, fmt.Sprintf("  vector: columnar scan (chunks of %d rows)", chunkRows))
	if ap.pred != nil {
		lines = append(lines, "  vector filter: compiled kernels with zone-map skipping (row fallback on bind failure)")
	}
	lines = append(lines, fmt.Sprintf("  aggregate: %d item(s), group by %d column(s)", len(ap.items), len(ap.groupBy)))
	if len(ap.orderIdx) > 0 {
		lines = append(lines, fmt.Sprintf("  order: sort on %d key(s)", len(ap.orderIdx)))
	}
	if ap.sel.Offset != nil {
		lines = append(lines, "  offset: yes")
	}
	if ap.sel.Limit != nil {
		lines = append(lines, "  limit: yes")
	}
	return lines
}

// aggAcc accumulates one aggregate item over one group. MIN/MAX keep
// the stored Value and replace only on a strict Compare win, exactly
// like evalAggregate — so NaN never displaces a value and is never
// displaced, and ties keep the first-seen value.
type aggAcc struct {
	count int64
	sumI  int64
	sumF  float64
	has   bool
	best  Value
}

type aggGroup struct {
	n     int64 // total rows, for COUNT(*)
	first []Value
	accs  []aggAcc
}

// execAggPlan runs a compiled aggregate. handled=false means a
// bind-time fallback and the interpreter must run. Caller holds d.mu
// for reading and has verified ap.epoch == d.epoch.
func (d *Database) execAggPlan(ctx context.Context, ap *aggPlan, params []Value) (set *ResultSet, handled bool, err error) {
	var bp boundVec
	if ap.pred != nil {
		var ok bool
		bp, ok = bindVecPred(ap.pred, params, ap.t)
		if !ok {
			return nil, false, nil
		}
	}
	tc := ap.t.ensureChunks()
	if !tc.ok {
		return nil, false, nil
	}

	var groups []*aggGroup
	newGroup := func(ch *colChunk, i int) *aggGroup {
		g := &aggGroup{accs: make([]aggAcc, len(ap.items))}
		if len(ap.groupBy) > 0 {
			g.first = make([]Value, len(ap.items))
			for k, it := range ap.items {
				if it.kind == aggGroupCol {
					g.first[k] = ch.vecs[it.col].value(i)
				}
			}
		}
		groups = append(groups, g)
		return g
	}

	// Group lookup: a dense int64 map when grouping by one integer
	// column (the NULL group keyed separately), otherwise the
	// interpreter's own composite group-key bytes.
	intKeyed := false
	var intGroups map[int64]*aggGroup
	var nullGroup *aggGroup
	var strGroups map[string]*aggGroup
	if len(ap.groupBy) == 1 {
		gt := ap.t.Columns[ap.groupBy[0]].Type
		if gt == TypeInteger || gt == TypeBigint {
			intKeyed = true
			intGroups = map[int64]*aggGroup{}
		}
	}
	if !intKeyed {
		strGroups = map[string]*aggGroup{}
	}
	var keyBuf []byte

	var selbuf [chunkRows]int8
	for _, ch := range tc.chunks {
		if err := ctxCheck(ctx); err != nil {
			return nil, true, err
		}
		if bp != nil && chunkSkippable(bp, ch) {
			d.vecSkipped.Add(1)
			continue
		}
		d.vecBatches.Add(1)
		sel := selbuf[:ch.n]
		if bp != nil {
			bp.eval(ch, sel)
		} else {
			for i := range sel {
				sel[i] = triT
			}
		}
		for i := 0; i < ch.n; i++ {
			if sel[i] != triT {
				continue
			}
			var g *aggGroup
			switch {
			case len(ap.groupBy) == 0:
				if len(groups) == 0 {
					g = newGroup(ch, i)
				} else {
					g = groups[0]
				}
			case intKeyed:
				v := &ch.vecs[ap.groupBy[0]]
				if v.nulls.get(i) {
					if nullGroup == nil {
						nullGroup = newGroup(ch, i)
					}
					g = nullGroup
				} else {
					k := v.ints[i]
					g = intGroups[k]
					if g == nil {
						g = newGroup(ch, i)
						intGroups[k] = g
					}
				}
			default:
				keyBuf = keyBuf[:0]
				for _, gc := range ap.groupBy {
					keyBuf = ch.vecs[gc].appendGroupKey(keyBuf, i)
					keyBuf = append(keyBuf, '\x01')
				}
				g = strGroups[string(keyBuf)]
				if g == nil {
					g = newGroup(ch, i)
					strGroups[string(keyBuf)] = g
				}
			}
			g.n++
			for k := range ap.items {
				it := &ap.items[k]
				if it.kind == aggCountStar || it.kind == aggGroupCol {
					continue
				}
				v := &ch.vecs[it.col]
				if v.nulls.get(i) {
					continue
				}
				acc := &g.accs[k]
				switch it.kind {
				case aggCount:
					acc.count++
				case aggSum, aggAvg:
					acc.count++
					switch v.typ {
					case TypeDouble:
						acc.sumF += v.flts[i]
					default:
						acc.sumI += v.ints[i]
						acc.sumF += float64(v.ints[i])
					}
				case aggMin, aggMax:
					val := v.value(i)
					if !acc.has {
						acc.has, acc.best = true, val
						continue
					}
					c, _ := Compare(val, acc.best) // same column type: no error
					if (it.kind == aggMin && c < 0) || (it.kind == aggMax && c > 0) {
						acc.best = val
					}
				}
			}
		}
	}

	// No GROUP BY: one implicit group even over zero rows.
	if len(ap.groupBy) == 0 && len(groups) == 0 {
		groups = append(groups, &aggGroup{accs: make([]aggAcc, len(ap.items))})
	}

	out := &ResultSet{Columns: ap.projCols}
	var orderKeys [][]Value
	for _, g := range groups {
		vals := make([]Value, len(ap.items))
		for k, it := range ap.items {
			acc := &g.accs[k]
			switch it.kind {
			case aggCountStar:
				vals[k] = NewBigint(g.n)
			case aggCount:
				vals[k] = NewBigint(acc.count)
			case aggGroupCol:
				vals[k] = g.first[k]
			case aggMin, aggMax:
				if !acc.has {
					vals[k] = Null
				} else {
					vals[k] = acc.best
				}
			case aggSum:
				switch {
				case acc.count == 0:
					vals[k] = Null
				case ap.t.Columns[it.col].Type == TypeDouble:
					vals[k] = NewDouble(acc.sumF)
				default:
					vals[k] = NewBigint(acc.sumI)
				}
			case aggAvg:
				if acc.count == 0 {
					vals[k] = Null
				} else {
					vals[k] = NewDouble(acc.sumF / float64(acc.count))
				}
			}
		}
		out.Rows = append(out.Rows, vals)
		if len(ap.orderIdx) > 0 {
			keys := make([]Value, len(ap.orderIdx))
			for ki, ord := range ap.orderIdx {
				keys[ki] = vals[ord]
			}
			orderKeys = append(orderKeys, keys)
		}
	}

	env := &evalEnv{params: params, db: d, ctx: ctx}
	if len(ap.orderIdx) > 0 {
		if err := sortRows(out, orderKeys, ap.sel.OrderBy); err != nil {
			return nil, true, err
		}
	}
	if err := applyOffsetLimit(out, ap.sel, env); err != nil {
		return nil, true, err
	}
	return out, true, nil
}
