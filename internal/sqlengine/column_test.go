package sqlengine

import (
	"testing"
)

// chunkState inspects the chunk cache of a table under the read latch.
func chunkState(e *Engine, table string) (built bool, chunks int, rows int) {
	e.db.mu.RLock()
	defer e.db.mu.RUnlock()
	t, err := e.db.table(table)
	if err != nil {
		return false, 0, 0
	}
	t.chunkMu.Lock()
	defer t.chunkMu.Unlock()
	if t.chunks == nil {
		return false, 0, 0
	}
	for _, ch := range t.chunks.chunks {
		rows += ch.n
	}
	return true, len(t.chunks.chunks), rows
}

func vecCount(t *testing.T, e *Engine, sql string, params ...Value) int64 {
	t.Helper()
	res, err := e.Exec(sql, params...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res.Set.Rows[0][0].I
}

// TestChunkMaintenance walks the cache through its whole lifecycle:
// lazy build on first vectorised scan, in-place append on INSERT,
// invalidation on UPDATE/DELETE, and rebuild with correct contents.
func TestChunkMaintenance(t *testing.T) {
	e := New("chunks")
	e.MustExec(`CREATE TABLE c (id INTEGER, v INTEGER)`)
	s := e.NewSession()
	n := chunkRows + 100 // force a chunk boundary
	for i := 0; i < n; i++ {
		if _, err := s.Execute(`INSERT INTO c VALUES (?, ?)`, NewInt(int64(i)), NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if built, _, _ := chunkState(e, "c"); built {
		t.Fatal("chunks built before any scan")
	}
	if got := vecCount(t, e, `SELECT COUNT(*) FROM c WHERE v >= 0`); got != int64(n) {
		t.Fatalf("count = %d, want %d", got, n)
	}
	built, chunks, rows := chunkState(e, "c")
	if !built || chunks != 2 || rows != n {
		t.Fatalf("after scan: built=%v chunks=%d rows=%d", built, chunks, rows)
	}

	// INSERT appends in place — no invalidation, no rebuild.
	e.MustExec(`INSERT INTO c VALUES (?, ?)`, NewInt(int64(n)), NewInt(int64(n)))
	if built, _, rows = chunkState(e, "c"); !built || rows != n+1 {
		t.Fatalf("after insert: built=%v rows=%d", built, rows)
	}
	if got := vecCount(t, e, `SELECT COUNT(*) FROM c WHERE v = ?`, NewInt(int64(n))); got != 1 {
		t.Fatalf("appended row not visible to vector scan: %d", got)
	}

	// UPDATE invalidates; the next scan rebuilds with the new image.
	e.MustExec(`UPDATE c SET v = -1 WHERE id = 0`)
	if built, _, _ = chunkState(e, "c"); built {
		t.Fatal("chunks survived UPDATE")
	}
	if got := vecCount(t, e, `SELECT COUNT(*) FROM c WHERE v = -1`); got != 1 {
		t.Fatalf("updated row wrong in rebuilt chunks: %d", got)
	}

	// DELETE invalidates too.
	e.MustExec(`DELETE FROM c WHERE id = 0`)
	if built, _, _ = chunkState(e, "c"); built {
		t.Fatal("chunks survived DELETE")
	}
	if got := vecCount(t, e, `SELECT COUNT(*) FROM c WHERE v = -1`); got != 0 {
		t.Fatalf("deleted row still visible: %d", got)
	}
}

// TestChunkMaintenanceRollback covers the undo paths, which bypass the
// ordinary DML entry points: a rolled-back DELETE splices rows back
// into scan order and must drop the cache; rolled-back INSERTs and
// UPDATEs restore through deleteRow/updateRow and must too.
func TestChunkMaintenanceRollback(t *testing.T) {
	e := New("undo")
	e.MustExec(`CREATE TABLE u (id INTEGER, v INTEGER)`)
	s := e.NewSession()
	for i := 0; i < 100; i++ {
		if _, err := s.Execute(`INSERT INTO u VALUES (?, ?)`, NewInt(int64(i)), NewInt(int64(i%10))); err != nil {
			t.Fatal(err)
		}
	}
	baseline := vecCount(t, e, `SELECT COUNT(*) FROM u WHERE v >= 5`)

	for _, dml := range []string{
		`DELETE FROM u WHERE v = 7`,
		`INSERT INTO u VALUES (999, 7)`,
		`UPDATE u SET v = 99 WHERE v = 7`,
	} {
		for _, sql := range []string{`BEGIN`, dml, `ROLLBACK`} {
			if _, err := s.Execute(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
		if got := vecCount(t, e, `SELECT COUNT(*) FROM u WHERE v >= 5`); got != baseline {
			t.Fatalf("after rollback of %q: count = %d, want %d", dml, got, baseline)
		}
		// Full three-way equivalence after each undo shape.
		execAllPaths(t, e, `SELECT id, v FROM u WHERE v >= 5 ORDER BY id`)
	}
}

// TestChunkRebuildAfterDDL proves vector plans go stale with the
// schema epoch and re-plan correctly against the changed catalog.
func TestChunkRebuildAfterDDL(t *testing.T) {
	e := New("ddl")
	e.MustExec(`CREATE TABLE d (id INTEGER, v INTEGER)`)
	s := e.NewSession()
	for i := 0; i < 50; i++ {
		if _, err := s.Execute(`INSERT INTO d VALUES (?, ?)`, NewInt(int64(i)), NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	const q = `SELECT COUNT(*) FROM d WHERE v > 25`
	if got := vecCount(t, e, q); got != 24 {
		t.Fatalf("count = %d", got)
	}
	// An ordered index on v moves the same query off the vector scan
	// (range access beats it) — the cached plan must not be reused.
	e.MustExec(`CREATE ORDERED INDEX d_v ON d (v)`)
	if got := vecCount(t, e, `SELECT COUNT(*) FROM d WHERE v > 25`); got != 24 {
		t.Fatalf("count after DDL = %d", got)
	}
	execAllPaths(t, e, `SELECT id FROM d WHERE v > 25 ORDER BY id`)
}

// TestChunkHeterogeneousAppend makes sure a column whose stored values
// mix widths (INTEGER column fed BIGINT-typed values, say) degrades
// safely: push refuses the mismatch and the table permanently falls
// back to row execution rather than mis-typing a vector.
func TestChunkHeterogeneousAppend(t *testing.T) {
	e := New("hetero")
	e.MustExec(`CREATE TABLE m (v DOUBLE)`)
	s := e.NewSession()
	for i := 0; i < 10; i++ {
		if _, err := s.Execute(`INSERT INTO m VALUES (?)`, NewDouble(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Coerce guarantees homogeneous storage in practice; whatever the
	// layout, results must match the interpreter.
	execAllPaths(t, e, `SELECT v FROM m WHERE v > 4.5`)
	execAllPaths(t, e, `SELECT SUM(v), AVG(v) FROM m`)
}
