package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
	tokParam  // ? positional parameter
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents case-preserved
	pos  int    // byte offset in the input, for error messages
}

// keywords recognised by the lexer. Identifiers matching these
// (case-insensitively) become tokKeyword with upper-case text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "DROP": true, "TABLE": true,
	"INDEX": true, "ON": true, "PRIMARY": true, "KEY": true,
	"NOT": true, "NULL": true, "AND": true, "OR": true, "IN": true,
	"IS": true, "LIKE": true, "BETWEEN": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "GROUP": true,
	"HAVING": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"CROSS": true, "DISTINCT": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "TRUE": true,
	"FALSE": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"TRANSACTION": true, "DEFAULT": true, "UNIQUE": true,
	"IF": true, "EXISTS": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "CAST": true,
	"UNION": true, "ALL": true, "VIEW": true,
	"EXPLAIN": true, "ORDERED": true,
}

// lex tokenises a SQL statement. It returns a slice ending with tokEOF.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated comment at offset %d", i)
			}
			i += end + 4
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: b.String(), pos: start})
		case c == '"':
			// Delimited identifier.
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '"' {
					if i+1 < n && input[i+1] == '"' {
						b.WriteByte('"')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated identifier at offset %d", start)
			}
			toks = append(toks, token{kind: tokIdent, text: b.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			seenExp := false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '?':
			toks = append(toks, token{kind: tokParam, text: "?", pos: i})
			i++
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			// Multi-character operators first.
			for _, op := range []string{"<>", "<=", ">=", "!=", "||"} {
				if strings.HasPrefix(input[i:], op) {
					toks = append(toks, token{kind: tokSymbol, text: op, pos: i})
					i += len(op)
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';', '%':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		next:
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
