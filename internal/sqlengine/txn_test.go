package sqlengine

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCommitPersists(t *testing.T) {
	e := seedEmployees(t)
	s := e.NewSession()
	mustSess(t, s, `BEGIN`)
	mustSess(t, s, `UPDATE emp SET salary = 1 WHERE id = 1`)
	mustSess(t, s, `COMMIT`)
	rows := queryStrings(t, e, `SELECT salary FROM emp WHERE id = 1`)
	if rows[0][0] != "1" {
		t.Fatalf("rows = %v", rows)
	}
	if s.InTransaction() {
		t.Fatal("txn should be closed")
	}
}

func TestRollbackUndoes(t *testing.T) {
	e := seedEmployees(t)
	s := e.NewSession()
	mustSess(t, s, `BEGIN`)
	mustSess(t, s, `UPDATE emp SET salary = 1 WHERE id = 1`)
	mustSess(t, s, `INSERT INTO emp (id, name) VALUES (100, 'temp')`)
	mustSess(t, s, `DELETE FROM emp WHERE id = 2`)
	mustSess(t, s, `ROLLBACK`)

	rows := queryStrings(t, e, `SELECT salary FROM emp WHERE id = 1`)
	if rows[0][0] != "120000" {
		t.Fatalf("update not undone: %v", rows)
	}
	if n, _ := e.Database().TableRowCount("emp"); n != 5 {
		t.Fatalf("rowcount = %d", n)
	}
	rows = queryStrings(t, e, `SELECT name FROM emp WHERE id = 2`)
	if len(rows) != 1 || rows[0][0] != "bob" {
		t.Fatalf("delete not undone: %v", rows)
	}
}

func TestRollbackPreservesRowOrder(t *testing.T) {
	e := New("t")
	e.MustExec(`CREATE TABLE seq (v INTEGER)`)
	e.MustExec(`INSERT INTO seq VALUES (1), (2), (3)`)
	s := e.NewSession()
	mustSess(t, s, `BEGIN`)
	mustSess(t, s, `DELETE FROM seq WHERE v = 2`)
	mustSess(t, s, `ROLLBACK`)
	rows := queryStrings(t, e, `SELECT v FROM seq`)
	if rows[0][0] != "1" || rows[1][0] != "2" || rows[2][0] != "3" {
		t.Fatalf("order lost after rollback: %v", rows)
	}
}

func TestTxnStateErrors(t *testing.T) {
	e := New("t")
	s := e.NewSession()
	if _, err := s.Execute(`COMMIT`); err == nil {
		t.Fatal("commit without begin")
	}
	if _, err := s.Execute(`ROLLBACK`); err == nil {
		t.Fatal("rollback without begin")
	}
	mustSess(t, s, `BEGIN`)
	if _, err := s.Execute(`BEGIN`); err == nil {
		t.Fatal("nested begin")
	}
	if err := s.SetIsolation(Serializable); err == nil {
		t.Fatal("isolation change inside txn")
	}
	if _, err := s.Execute(`CREATE TABLE x (a INTEGER)`); err == nil {
		t.Fatal("DDL inside txn")
	}
	mustSess(t, s, `ROLLBACK`)
	if err := s.SetIsolation(Serializable); err != nil {
		t.Fatal(err)
	}
	if s.Isolation() != Serializable {
		t.Fatal("isolation not set")
	}
}

func TestAutoCommitFailureUndone(t *testing.T) {
	e := New("t")
	e.MustExec(`CREATE TABLE u (id INTEGER PRIMARY KEY)`)
	e.MustExec(`INSERT INTO u VALUES (1)`)
	// Multi-row insert where the second row violates: nothing persists.
	if _, err := e.Exec(`INSERT INTO u VALUES (2), (1)`); err == nil {
		t.Fatal("expected violation")
	}
	if n, _ := e.Database().TableRowCount("u"); n != 1 {
		t.Fatalf("rowcount = %d", n)
	}
}

func TestStatementAtomicityInsideTxn(t *testing.T) {
	e := New("t")
	e.MustExec(`CREATE TABLE u (id INTEGER PRIMARY KEY)`)
	e.MustExec(`INSERT INTO u VALUES (1)`)
	s := e.NewSession()
	mustSess(t, s, `BEGIN`)
	mustSess(t, s, `INSERT INTO u VALUES (10)`)
	// This statement fails halfway; only ITS effects are undone.
	if _, err := s.Execute(`INSERT INTO u VALUES (11), (1)`); err == nil {
		t.Fatal("expected violation")
	}
	mustSess(t, s, `COMMIT`)
	rows := queryStrings(t, e, `SELECT id FROM u ORDER BY id`)
	if len(rows) != 2 || rows[1][0] != "10" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestDirtyReadAtReadUncommitted(t *testing.T) {
	e := seedEmployees(t)
	writer := e.NewSession()
	reader := e.NewSession()
	if err := reader.SetIsolation(ReadUncommitted); err != nil {
		t.Fatal(err)
	}
	mustSess(t, writer, `BEGIN`)
	mustSess(t, writer, `UPDATE emp SET salary = 777 WHERE id = 1`)

	res, err := reader.Execute(`SELECT salary FROM emp WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Rows[0][0].String() != "777" {
		t.Fatalf("expected dirty read, got %v", res.Set.Rows[0][0])
	}
	mustSess(t, writer, `ROLLBACK`)
	res, _ = reader.Execute(`SELECT salary FROM emp WHERE id = 1`)
	if res.Set.Rows[0][0].String() != "120000" {
		t.Fatal("rollback not visible")
	}
}

func TestNoDirtyReadAtReadCommitted(t *testing.T) {
	e := New("t", WithLockTimeout(100*time.Millisecond))
	e.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)`)
	e.MustExec(`INSERT INTO acct VALUES (1, 100)`)

	writer := e.NewSession()
	reader := e.NewSession() // READ COMMITTED default
	mustSess(t, writer, `BEGIN`)
	mustSess(t, writer, `UPDATE acct SET bal = 0 WHERE id = 1`)

	// Reader blocks on the writer's exclusive lock and times out.
	_, err := reader.Execute(`SELECT bal FROM acct WHERE id = 1`)
	var lt *errLockTimeout
	if !errors.As(err, &lt) {
		t.Fatalf("expected lock timeout, got %v", err)
	}
	mustSess(t, writer, `COMMIT`)
	res, err := reader.Execute(`SELECT bal FROM acct WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Rows[0][0].String() != "0" {
		t.Fatalf("committed value not visible: %v", res.Set.Rows[0][0])
	}
}

func TestRepeatableReadHoldsLocks(t *testing.T) {
	e := New("t", WithLockTimeout(100*time.Millisecond))
	e.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)`)
	e.MustExec(`INSERT INTO acct VALUES (1, 100)`)

	reader := e.NewSession()
	if err := reader.SetIsolation(RepeatableRead); err != nil {
		t.Fatal(err)
	}
	writer := e.NewSession()
	mustSess(t, reader, `BEGIN`)
	if _, err := reader.Execute(`SELECT bal FROM acct`); err != nil {
		t.Fatal(err)
	}
	// Writer cannot modify while the repeatable reader holds its lock.
	_, err := writer.Execute(`UPDATE acct SET bal = 0`)
	var lt *errLockTimeout
	if !errors.As(err, &lt) {
		t.Fatalf("expected lock timeout, got %v", err)
	}
	mustSess(t, reader, `COMMIT`)
	if _, err := writer.Execute(`UPDATE acct SET bal = 0`); err != nil {
		t.Fatal(err)
	}
}

func TestReadCommittedReleasesReadLocks(t *testing.T) {
	e := New("t", WithLockTimeout(100*time.Millisecond))
	e.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)`)
	e.MustExec(`INSERT INTO acct VALUES (1, 100)`)

	reader := e.NewSession() // READ COMMITTED
	writer := e.NewSession()
	mustSess(t, reader, `BEGIN`)
	if _, err := reader.Execute(`SELECT bal FROM acct`); err != nil {
		t.Fatal(err)
	}
	// Read lock released at statement end: writer proceeds.
	if _, err := writer.Execute(`UPDATE acct SET bal = 0`); err != nil {
		t.Fatalf("writer should not block: %v", err)
	}
	mustSess(t, reader, `COMMIT`)
}

func TestWriteConflictTimesOutAndAborts(t *testing.T) {
	e := New("t", WithLockTimeout(100*time.Millisecond))
	e.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)`)
	e.MustExec(`INSERT INTO acct VALUES (1, 100)`)

	a := e.NewSession()
	b := e.NewSession()
	mustSess(t, a, `BEGIN`)
	mustSess(t, b, `BEGIN`)
	mustSess(t, a, `UPDATE acct SET bal = 1`)
	res, err := b.Execute(`UPDATE acct SET bal = 2`)
	if err == nil {
		t.Fatal("expected conflict")
	}
	if res.CA.SQLState != StateSerialization {
		t.Fatalf("CA = %+v", res.CA)
	}
	// b is aborted: further statements refused until rollback.
	if _, err := b.Execute(`SELECT * FROM acct`); err == nil {
		t.Fatal("aborted txn should refuse work")
	}
	if _, err := b.Execute(`ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	mustSess(t, a, `COMMIT`)
	rows := queryStrings(t, e, `SELECT bal FROM acct`)
	if rows[0][0] != "1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCommitOfAbortedTxnRollsBack(t *testing.T) {
	e := New("t", WithLockTimeout(50*time.Millisecond))
	e.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)`)
	e.MustExec(`INSERT INTO acct VALUES (1, 100)`)
	a := e.NewSession()
	b := e.NewSession()
	mustSess(t, a, `BEGIN`)
	mustSess(t, b, `BEGIN`)
	mustSess(t, b, `UPDATE acct SET bal = 50`) // b writes first
	mustSess(t, a, `SELECT 1`)
	if _, err := a.Execute(`UPDATE acct SET bal = 75`); err == nil {
		t.Fatal("expected timeout for a")
	}
	// COMMIT of the aborted txn must report failure and roll back.
	if _, err := a.Execute(`COMMIT`); err == nil {
		t.Fatal("commit of aborted txn should fail")
	}
	mustSess(t, b, `COMMIT`)
	rows := queryStrings(t, e, `SELECT bal FROM acct`)
	if rows[0][0] != "50" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestConcurrentReaders(t *testing.T) {
	e := seedEmployees(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession()
			for j := 0; j < 50; j++ {
				res, err := s.Execute(`SELECT COUNT(*) FROM emp`)
				if err != nil {
					errs <- err
					return
				}
				if res.Set.Rows[0][0].I != 5 {
					errs <- errors.New("wrong count")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	e := New("t", WithLockTimeout(5*time.Second))
	e.MustExec(`CREATE TABLE counter (n INTEGER)`)
	e.MustExec(`INSERT INTO counter VALUES (0)`)
	var wg sync.WaitGroup
	const writers, iters = 8, 20
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession()
			for j := 0; j < iters; j++ {
				if _, err := s.Execute(`UPDATE counter SET n = n + 1`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rows := queryStrings(t, e, `SELECT n FROM counter`)
	if rows[0][0] != "160" {
		t.Fatalf("lost updates: n = %v", rows)
	}
}

// Property: for any sequence of inserted ints, SUM/COUNT/MIN/MAX agree
// with a direct computation.
func TestQuickAggregatesMatch(t *testing.T) {
	f := func(vals []int32) bool {
		e := New("q")
		e.MustExec(`CREATE TABLE v (x INTEGER)`)
		var sum int64
		mn, mx := int64(1<<62), int64(-1<<62)
		s := e.NewSession()
		for _, v := range vals {
			if _, err := s.Execute(`INSERT INTO v VALUES (?)`, NewInt(int64(v))); err != nil {
				return false
			}
			sum += int64(v)
			if int64(v) < mn {
				mn = int64(v)
			}
			if int64(v) > mx {
				mx = int64(v)
			}
		}
		res, err := s.Execute(`SELECT COUNT(*), SUM(x), MIN(x), MAX(x) FROM v`)
		if err != nil {
			return false
		}
		r := res.Set.Rows[0]
		if r[0].I != int64(len(vals)) {
			return false
		}
		if len(vals) == 0 {
			return r[1].IsNull() && r[2].IsNull() && r[3].IsNull()
		}
		return r[1].I == sum && r[2].I == mn && r[3].I == mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: rollback is a perfect inverse — table contents before BEGIN
// and after ROLLBACK are identical for random update/delete batches.
func TestQuickRollbackInverse(t *testing.T) {
	f := func(seed []int16) bool {
		e := New("q")
		e.MustExec(`CREATE TABLE v (id INTEGER PRIMARY KEY, x INTEGER)`)
		for i := 0; i < 20; i++ {
			e.MustExec(`INSERT INTO v VALUES (?, ?)`, NewInt(int64(i)), NewInt(int64(i*10)))
		}
		before := queryAll(e)
		s := e.NewSession()
		if _, err := s.Execute(`BEGIN`); err != nil {
			return false
		}
		for _, op := range seed {
			id := int64(abs16(op) % 20)
			switch op % 3 {
			case 0:
				s.Execute(`UPDATE v SET x = x + 1 WHERE id = ?`, NewInt(id))
			case 1:
				s.Execute(`DELETE FROM v WHERE id = ?`, NewInt(id))
			default:
				s.Execute(`INSERT INTO v VALUES (?, 0)`, NewInt(1000+id))
			}
		}
		if _, err := s.Execute(`ROLLBACK`); err != nil {
			return false
		}
		return queryAll(e) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func abs16(v int16) int {
	if v < 0 {
		if v == -32768 {
			return 32767
		}
		return int(-v)
	}
	return int(v)
}

func queryAll(e *Engine) string {
	res, err := e.Exec(`SELECT id, x FROM v ORDER BY id`)
	if err != nil {
		return "ERR:" + err.Error()
	}
	var b strings.Builder
	for _, r := range res.Set.Rows {
		b.WriteString(r[0].String())
		b.WriteByte('=')
		b.WriteString(r[1].String())
		b.WriteByte(';')
	}
	return b.String()
}

func mustSess(t *testing.T, s *Session, sql string) {
	t.Helper()
	if _, err := s.Execute(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}
