package sqlengine

import (
	"context"
	"fmt"
	"sort"
)

// filterChunkRows is the batch size for compiled-plan filter
// evaluation: the predicate runs over a chunk of rows into a selection
// vector, then survivors are appended in a second tight pass.
const filterChunkRows = 256

// evalAccessValue evaluates a point/bound expression with parameters
// only — access expressions are literals or parameters, never row
// references. ok=false (error or NULL) widens the access path.
func evalAccessValue(e Expr, params []Value) (Value, bool) {
	v, err := eval(e, &evalEnv{params: params})
	if err != nil || v.IsNull() {
		return Null, false
	}
	return v, true
}

// comparableWith reports whether Compare is defined between a bound
// value's type and the key column's type (Compare's own rule: any
// numeric mix, otherwise identical types). Incomparable bounds widen to
// a full scan so the row-level filter reproduces the interpreter's
// comparison error.
func comparableWith(v Value, colType Type) bool {
	if v.Type.isNumeric() && colType.isNumeric() {
		return true
	}
	return v.Type == colType
}

// baseRows gathers the base table's rows through the plan's access
// path. Any runtime binding failure (NULL key, uncoercible or
// incomparable bound) widens to a scan of the whole table: the full
// WHERE predicate is always re-applied, so a superset access path is
// exactly as correct as the narrowed one. When the plan's ORDER BY is
// index-satisfied the widened scan still iterates the ordered index so
// row order is preserved; otherwise row IDs are ascending, matching the
// interpreter's scan order.
func (p *selectPlan) baseRows(params []Value) [][]Value {
	t := p.t
	var ids []int64
	widen := false
	switch p.access {
	case accessFullScan:
		widen = true
	case accessHashPoint:
		v, ok := evalAccessValue(p.eq, params)
		if ok {
			// Coerce to the column type so the hash group key matches the
			// stored representation, as the interpreter's probe does.
			cv, err := v.Coerce(t.Columns[p.keyCol].Type)
			if err != nil {
				ok = false
			} else {
				v = cv
			}
		}
		if !ok {
			widen = true
			break
		}
		ids = append(ids, p.hashIx.lookup(v)...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	case accessOrderedPoint:
		v, ok := evalAccessValue(p.eq, params)
		if !ok || !comparableWith(v, t.Columns[p.keyCol].Type) {
			widen = true
			break
		}
		ids = append(ids, p.ordIx.lookup(v)...) // already id-ascending
	case accessOrderedRange:
		lo, hi, ok := p.rangeBounds(params)
		if !ok {
			widen = true
			break
		}
		ids = p.ordIx.appendRange(ids, lo, hi, p.orderSatisfied && p.desc)
		if !p.orderSatisfied {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
	case accessOrderedScan:
		ids = p.ordIx.appendOrdered(ids, p.desc)
	}
	if widen {
		if p.orderSatisfied && p.ordIx != nil {
			ids = p.ordIx.appendOrdered(ids, p.desc)
		} else {
			ids = t.scan()
		}
	}
	rows := make([][]Value, 0, len(ids))
	for _, id := range ids {
		if r, ok := t.rows[id]; ok {
			rows = append(rows, r)
		}
	}
	return rows
}

// rangeBounds evaluates the plan's pushed-down bounds. ok=false means a
// bound evaluated to NULL or to a value Compare cannot order against
// the key column — the access widens and the filter settles it.
func (p *selectPlan) rangeBounds(params []Value) (lo, hi *ordBound, ok bool) {
	colType := p.t.Columns[p.keyCol].Type
	if p.lo != nil {
		v, vok := evalAccessValue(p.lo.expr, params)
		if !vok || !comparableWith(v, colType) {
			return nil, nil, false
		}
		lo = &ordBound{val: v, incl: p.lo.incl}
	}
	if p.hi != nil {
		v, vok := evalAccessValue(p.hi.expr, params)
		if !vok || !comparableWith(v, colType) {
			return nil, nil, false
		}
		hi = &ordBound{val: v, incl: p.hi.incl}
	}
	return lo, hi, true
}

// execPlan runs a compiled plan: access path, joins, batched filter,
// slab projection, index-aware ordering, then OFFSET/LIMIT — with the
// interpreter's exact operation order and error surface. The caller
// holds d.mu for reading and has verified p.epoch == d.epoch.
func (d *Database) execPlan(ctx context.Context, p *selectPlan, params []Value) (*ResultSet, error) {
	// Columnar fast path: when the plan compiled a vector annotation and
	// vector execution is enabled, run the chunked kernels. A bind-time
	// fallback (handled=false) drops through to the row operators below.
	if p.vec != nil && d.vectorEnabled() {
		set, handled, err := d.execPlanVector(ctx, p, params)
		if err != nil {
			return nil, err
		}
		if handled {
			return set, nil
		}
	}
	env := &evalEnv{cols: p.cols, params: params, db: d, ctx: ctx}
	rows := p.baseRows(params)

	// Joins: the strategy was decided at plan time; disableHashJoin is
	// still consulted per execution so the equivalence toggle works on
	// cached plans too, and the hash path keeps its runtime bail to the
	// nested loop.
	leftWidth := len(p.t.Columns)
	for i := range p.joins {
		j := &p.joins[i]
		right := make([][]Value, 0, len(j.t.order))
		for _, id := range j.t.scan() {
			right = append(right, j.t.rows[id])
		}
		joinEnv := &evalEnv{cols: j.cols, params: params, db: d, ctx: ctx}
		var joined [][]Value
		hashed := false
		if !disableHashJoin && j.hasEqui {
			out, ok, err := hashJoinRows(rows, right, joinEnv, leftWidth, j.rcols, j.clause, j.equi)
			if err != nil {
				return nil, err
			}
			if ok {
				joined, hashed = out, true
			}
		}
		if !hashed {
			var err error
			joined, err = nestedLoopJoin(rows, right, joinEnv, leftWidth, j.rcols, j.clause)
			if err != nil {
				return nil, err
			}
		}
		rows = joined
		leftWidth = len(j.cols)
	}

	// Batched filter: evaluate the compiled predicate over a chunk into
	// a selection vector, then gather survivors.
	if p.where != nil {
		filtered := rows[:0:0]
		var sel [filterChunkRows]bool
		for start := 0; start < len(rows); start += filterChunkRows {
			end := start + filterChunkRows
			if end > len(rows) {
				end = len(rows)
			}
			chunk := rows[start:end]
			for i, r := range chunk {
				if err := env.checkCtx(); err != nil {
					return nil, err
				}
				env.row = r
				v, err := eval(p.where, env)
				if err != nil {
					return nil, err
				}
				ok, err := truthy(v)
				if err != nil {
					return nil, err
				}
				sel[i] = ok
			}
			for i, r := range chunk {
				if sel[i] {
					filtered = append(filtered, r)
				}
			}
		}
		rows = filtered
	}

	// Projection: ordinal-bound expressions over slab rows; no per-row
	// alias maps — ORDER BY keys were classified at plan time.
	out := &ResultSet{Columns: p.projCols}
	needKeys := len(p.order) > 0 && !p.orderSatisfied
	var orderKeys [][]Value
	slab := newRowSlab(len(p.projExprs))
	for _, r := range rows {
		if err := env.checkCtx(); err != nil {
			return nil, err
		}
		env.row = r
		vals := slab.next()
		for i, e := range p.projExprs {
			v, err := eval(e, env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out.Rows = append(out.Rows, vals)
		if needKeys {
			keys := make([]Value, len(p.order))
			for i, k := range p.order {
				if k.kind == orderKeyProjected {
					keys[i] = vals[k.idx]
					continue
				}
				v, err := eval(k.expr, env)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
			orderKeys = append(orderKeys, keys)
		}
	}

	if needKeys {
		if err := sortRows(out, orderKeys, p.sel.OrderBy); err != nil {
			return nil, err
		}
	}

	if err := applyOffsetLimit(out, p.sel, env); err != nil {
		return nil, err
	}
	return out, nil
}

// applyOffsetLimit trims a materialised result per OFFSET/LIMIT,
// evaluated after projection and ordering exactly as the interpreter
// does — no early termination, so evaluation errors surface for the
// same inputs. Shared by the row and vector executors.
func applyOffsetLimit(out *ResultSet, sel *SelectStmt, env *evalEnv) error {
	if sel.Offset != nil {
		n, err := evalCount(sel.Offset, env)
		if err != nil {
			return fmt.Errorf("OFFSET: %w", err)
		}
		if n >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[n:]
		}
	}
	if sel.Limit != nil {
		n, err := evalCount(sel.Limit, env)
		if err != nil {
			return fmt.Errorf("LIMIT: %w", err)
		}
		if n < len(out.Rows) {
			out.Rows = out.Rows[:n]
		}
	}
	return nil
}
