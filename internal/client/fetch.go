package client

import (
	"context"
	"sync"

	"dais/internal/sqlengine"
)

// DefaultChunkRows is the rows-per-window default for chunked fetch.
const DefaultChunkRows = 1024

// FetchOptions tunes chunked rowset retrieval.
type FetchOptions struct {
	// Chunks is the number of GetTuples windows in flight at once
	// (default 1: plain sequential paging).
	Chunks int
	// ChunkRows is the window size in rows (default DefaultChunkRows).
	ChunkRows int
}

func (o FetchOptions) normalized() FetchOptions {
	if o.Chunks <= 0 {
		o.Chunks = 1
	}
	if o.ChunkRows <= 0 {
		o.ChunkRows = DefaultChunkRows
	}
	return o
}

// FetchRowset retrieves a whole rowset resource through N concurrent
// GetTuples windows and reassembles them in order. Each window is one
// idempotent GetTuples call, so per-chunk retry and resume ride the
// resil retry interceptor the client is already built with: a dropped
// or corrupted chunk is re-fetched by StartPosition without disturbing
// the other chunks in flight. Against a streaming (still-producing)
// resource, windows overlapping the unproduced tail simply block
// server-side until their rows exist, so the fetch pipeline drains the
// producer end to end.
func (c *Client) FetchRowset(ctx context.Context, ref ResourceRef, opts FetchOptions) (*sqlengine.ResultSet, error) {
	out := &sqlengine.ResultSet{}
	err := c.fetchChunks(ctx, ref, opts, func(set *sqlengine.ResultSet) error {
		if out.Columns == nil {
			out.Columns = set.Columns
		}
		out.Rows = append(out.Rows, set.Rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FetchPages is FetchRowset without accumulation: each non-empty page
// is handed to fn strictly in row order as soon as it and all its
// predecessors have arrived. A non-nil error from fn aborts the fetch.
func (c *Client) FetchPages(ctx context.Context, ref ResourceRef, opts FetchOptions, fn func(*sqlengine.ResultSet) error) error {
	return c.fetchChunks(ctx, ref, opts, fn)
}

// fetchChunks is the shared driver: workers claim sequential chunk
// indices, fetch their windows concurrently, and completed chunks are
// emitted in index order. Chunk i covers rows
// [1+i*ChunkRows, 1+(i+1)*ChunkRows); the first short (or empty) chunk
// marks the end of the resource, and claims beyond it stop.
func (c *Client) fetchChunks(ctx context.Context, ref ResourceRef, opts FetchOptions, emit func(*sqlengine.ResultSet) error) error {
	opts = opts.normalized()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	const unbounded = int(^uint(0) >> 1)
	var (
		mu       sync.Mutex
		nextIdx  int
		last     = unbounded // index of the final chunk, once known
		pages    = map[int]*sqlengine.ResultSet{}
		emitNext int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for w := 0; w < opts.Chunks; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || nextIdx > last {
					mu.Unlock()
					return
				}
				i := nextIdx
				nextIdx++
				mu.Unlock()

				set, err := c.GetTuplesSet(ctx, ref, 1+i*opts.ChunkRows, opts.ChunkRows)
				if err != nil {
					fail(err)
					return
				}

				mu.Lock()
				if len(set.Rows) < opts.ChunkRows && i < last {
					last = i
				}
				pages[i] = set
				// Flush the contiguous run this chunk may have
				// completed. Holding mu serialises emits, which is the
				// in-order guarantee.
				for firstErr == nil && emitNext <= last && pages[emitNext] != nil {
					p := pages[emitNext]
					delete(pages, emitNext)
					emitNext++
					if len(p.Rows) == 0 {
						continue
					}
					if err := emit(p); err != nil {
						firstErr = err
					}
				}
				aborted := firstErr != nil
				mu.Unlock()
				if aborted {
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
