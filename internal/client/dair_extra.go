package client

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

// The remaining WS-DAIR operations of the paper's Fig. 6, so the client
// covers the full interface surface: the realisation-specific property
// document getters and the per-item response accessors.

// propertyDocOp fetches a realisation-specific property document.
func (c *Client) propertyDocOp(ctx context.Context, ref ResourceRef, action, reqName string) (*xmlutil.Element, error) {
	req := service.NewRequest(service.NSDAIR, reqName, ref.AbstractName)
	resp, err := c.call(ctx, ref.Address, action, req)
	if err != nil {
		return nil, err
	}
	doc := resp.Find(core.NSDAI, "DataResourcePropertyDocument")
	if doc == nil {
		return nil, fmt.Errorf("client: response missing property document")
	}
	return doc, nil
}

// GetSQLPropertyDocument implements SQLAccess.GetSQLPropertyDocument.
func (c *Client) GetSQLPropertyDocument(ctx context.Context, ref ResourceRef) (*xmlutil.Element, error) {
	return c.propertyDocOp(ctx, ref, service.ActGetSQLPropertyDoc, "GetSQLPropertyDocumentRequest")
}

// GetSQLResponsePropertyDocument implements
// ResponseAccess.GetSQLResponsePropertyDocument.
func (c *Client) GetSQLResponsePropertyDocument(ctx context.Context, ref ResourceRef) (*xmlutil.Element, error) {
	return c.propertyDocOp(ctx, ref, service.ActGetSQLResponsePropDoc, "GetSQLResponsePropertyDocumentRequest")
}

// GetRowsetPropertyDocument implements
// RowsetAccess.GetRowsetPropertyDocument.
func (c *Client) GetRowsetPropertyDocument(ctx context.Context, ref ResourceRef) (*xmlutil.Element, error) {
	return c.propertyDocOp(ctx, ref, service.ActGetRowsetPropDoc, "GetRowsetPropertyDocumentRequest")
}

// ResponseItem is a decoded GetSQLResponseItem result: exactly one of
// Set, UpdateCount or Value is meaningful.
type ResponseItem struct {
	Set         *sqlengine.ResultSet
	UpdateCount int
	Value       string
	HasValue    bool
}

// GetSQLResponseItem implements ResponseAccess.GetSQLResponseItem.
func (c *Client) GetSQLResponseItem(ctx context.Context, ref ResourceRef, index int) (ResponseItem, error) {
	req := service.NewRequest(service.NSDAIR, "GetSQLResponseItemRequest", ref.AbstractName)
	req.AddText(service.NSDAIR, "Index", fmt.Sprintf("%d", index))
	resp, err := c.call(ctx, ref.Address, service.ActGetSQLResponseItem, req)
	if err != nil {
		return ResponseItem{}, err
	}
	out := ResponseItem{UpdateCount: -1}
	if rs := resp.Find(rowset.NSDAIR, "SQLRowset"); rs != nil {
		set, err := rowset.DecodeSQLRowsetElement(rs)
		if err != nil {
			return ResponseItem{}, err
		}
		out.Set = set
		return out, nil
	}
	if uc := resp.Find(service.NSDAIR, "UpdateCount"); uc != nil {
		fmt.Sscanf(uc.Text(), "%d", &out.UpdateCount)
		return out, nil
	}
	if v := resp.Find(service.NSDAIR, "Value"); v != nil {
		out.Value = v.Text()
		out.HasValue = true
	}
	return out, nil
}

// GetSQLReturnValue implements ResponseAccess.GetSQLReturnValue.
func (c *Client) GetSQLReturnValue(ctx context.Context, ref ResourceRef) (string, error) {
	req := service.NewRequest(service.NSDAIR, "GetSQLReturnValueRequest", ref.AbstractName)
	resp, err := c.call(ctx, ref.Address, service.ActGetSQLReturnValue, req)
	if err != nil {
		return "", err
	}
	return resp.FindText(service.NSDAIR, "Value"), nil
}

// GetSQLOutputParameter implements ResponseAccess.GetSQLOutputParameter.
func (c *Client) GetSQLOutputParameter(ctx context.Context, ref ResourceRef, name string) (string, error) {
	req := service.NewRequest(service.NSDAIR, "GetSQLOutputParameterRequest", ref.AbstractName)
	req.AddText(service.NSDAIR, "ParameterName", name)
	resp, err := c.call(ctx, ref.Address, service.ActGetSQLOutputParameter, req)
	if err != nil {
		return "", err
	}
	return resp.FindText(service.NSDAIR, "Value"), nil
}

// GetMultipleResourceProperties fetches several properties by QName in
// one WSRF round trip.
func (c *Client) GetMultipleResourceProperties(ctx context.Context, ref ResourceRef, qnames []string) ([]*xmlutil.Element, error) {
	req := service.NewRequest("http://docs.oasis-open.org/wsrf/rp-2", "GetMultipleResourceProperties", ref.AbstractName)
	for _, q := range qnames {
		req.AddText("http://docs.oasis-open.org/wsrf/rp-2", "ResourceProperty", q)
	}
	resp, err := c.call(ctx, ref.Address, service.ActGetMultipleResourceProps, req)
	if err != nil {
		return nil, err
	}
	return resp.ChildElements(), nil
}
