package client

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
	"dais/internal/wsrf"
	"dais/internal/xmlutil"
)

// The remaining WS-DAIR operations of the paper's Fig. 6, so the client
// covers the full interface surface: the realisation-specific property
// document getters and the per-item response accessors.

// propertyDocOp fetches a realisation-specific property document.
func (c *Client) propertyDocOp(ctx context.Context, ref ResourceRef, spec ops.Spec) (*xmlutil.Element, error) {
	resp, err := c.invoke(ctx, ref, spec, nil)
	if err != nil {
		return nil, err
	}
	doc := resp.Find(core.NSDAI, "DataResourcePropertyDocument")
	if doc == nil {
		return nil, fmt.Errorf("client: response missing property document")
	}
	return doc, nil
}

// GetSQLPropertyDocument implements SQLAccess.GetSQLPropertyDocument.
func (c *Client) GetSQLPropertyDocument(ctx context.Context, ref ResourceRef) (*xmlutil.Element, error) {
	return c.propertyDocOp(ctx, ref, ops.GetSQLPropertyDocument)
}

// GetSQLResponsePropertyDocument implements
// ResponseAccess.GetSQLResponsePropertyDocument.
func (c *Client) GetSQLResponsePropertyDocument(ctx context.Context, ref ResourceRef) (*xmlutil.Element, error) {
	return c.propertyDocOp(ctx, ref, ops.GetSQLResponsePropertyDocument)
}

// GetRowsetPropertyDocument implements
// RowsetAccess.GetRowsetPropertyDocument.
func (c *Client) GetRowsetPropertyDocument(ctx context.Context, ref ResourceRef) (*xmlutil.Element, error) {
	return c.propertyDocOp(ctx, ref, ops.GetRowsetPropertyDocument)
}

// ResponseItem is a decoded GetSQLResponseItem result: exactly one of
// Set, UpdateCount or Value is meaningful.
type ResponseItem struct {
	Set         *sqlengine.ResultSet
	UpdateCount int
	Value       string
	HasValue    bool
}

// GetSQLResponseItem implements ResponseAccess.GetSQLResponseItem.
func (c *Client) GetSQLResponseItem(ctx context.Context, ref ResourceRef, index int) (ResponseItem, error) {
	resp, err := c.invoke(ctx, ref, ops.GetSQLResponseItem, ops.IndexMsg{Index: index})
	if err != nil {
		return ResponseItem{}, err
	}
	out := ResponseItem{UpdateCount: -1}
	if rs := resp.Find(rowset.NSDAIR, "SQLRowset"); rs != nil {
		set, err := rowset.DecodeSQLRowsetElement(rs)
		if err != nil {
			return ResponseItem{}, err
		}
		out.Set = set
		return out, nil
	}
	if uc := resp.Find(ops.NSDAIR, "UpdateCount"); uc != nil {
		fmt.Sscanf(uc.Text(), "%d", &out.UpdateCount)
		return out, nil
	}
	if v := resp.Find(ops.NSDAIR, "Value"); v != nil {
		out.Value = v.Text()
		out.HasValue = true
	}
	return out, nil
}

// GetSQLReturnValue implements ResponseAccess.GetSQLReturnValue.
func (c *Client) GetSQLReturnValue(ctx context.Context, ref ResourceRef) (string, error) {
	resp, err := c.invoke(ctx, ref, ops.GetSQLReturnValue, nil)
	if err != nil {
		return "", err
	}
	return resp.FindText(ops.NSDAIR, "Value"), nil
}

// GetSQLOutputParameter implements ResponseAccess.GetSQLOutputParameter.
func (c *Client) GetSQLOutputParameter(ctx context.Context, ref ResourceRef, name string) (string, error) {
	resp, err := c.invoke(ctx, ref, ops.GetSQLOutputParameter, ops.ParamMsg{ParameterName: name})
	if err != nil {
		return "", err
	}
	return resp.FindText(ops.NSDAIR, "Value"), nil
}

// GetMultipleResourceProperties fetches several properties by QName in
// one WSRF round trip.
func (c *Client) GetMultipleResourceProperties(ctx context.Context, ref ResourceRef, qnames []string) ([]*xmlutil.Element, error) {
	resp, err := c.invoke(ctx, ref, ops.GetMultipleResourceProperties,
		ops.MsgFunc(func(s ops.Spec, req *xmlutil.Element) {
			for _, q := range qnames {
				req.AddText(wsrf.NSRP, "ResourceProperty", q)
			}
		}))
	if err != nil {
		return nil, err
	}
	return resp.ChildElements(), nil
}
