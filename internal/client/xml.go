package client

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/service"
	"dais/internal/xmlutil"
)

// SequenceItem is one decoded entry of an XMLSequence response.
type SequenceItem struct {
	Document string
	Node     *xmlutil.Element // nil for scalar results
	Value    string
}

// decodeSequence converts an XMLSequence element into items.
func decodeSequence(seq *xmlutil.Element) ([]SequenceItem, error) {
	if seq == nil {
		return nil, fmt.Errorf("client: response missing XMLSequence")
	}
	var out []SequenceItem
	for _, item := range seq.FindAll(service.NSDAIX, "Item") {
		si := SequenceItem{Document: item.AttrValue("", "document")}
		if v := item.Find(service.NSDAIX, "Value"); v != nil {
			si.Value = v.Text()
		} else if kids := item.ChildElements(); len(kids) > 0 {
			si.Node = kids[0]
			si.Value = kids[0].Text()
		}
		out = append(out, si)
	}
	return out, nil
}

// AddDocument stores a document in an XML collection resource.
func (c *Client) AddDocument(ctx context.Context, ref ResourceRef, name string, doc *xmlutil.Element) error {
	req := service.NewRequest(service.NSDAIX, "AddDocumentRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "DocumentName", name)
	wrap := req.Add(service.NSDAIX, "Document")
	wrap.AppendChild(doc.Clone())
	_, err := c.call(ctx, ref.Address, service.ActAddDocument, req)
	return err
}

// GetDocument fetches a document by name.
func (c *Client) GetDocument(ctx context.Context, ref ResourceRef, name string) (*xmlutil.Element, error) {
	req := service.NewRequest(service.NSDAIX, "GetDocumentRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "DocumentName", name)
	resp, err := c.call(ctx, ref.Address, service.ActGetDocument, req)
	if err != nil {
		return nil, err
	}
	wrap := resp.Find(service.NSDAIX, "Document")
	if wrap == nil || len(wrap.ChildElements()) != 1 {
		return nil, fmt.Errorf("client: response missing Document")
	}
	return wrap.ChildElements()[0], nil
}

// RemoveDocument deletes a document by name.
func (c *Client) RemoveDocument(ctx context.Context, ref ResourceRef, name string) error {
	req := service.NewRequest(service.NSDAIX, "RemoveDocumentRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "DocumentName", name)
	_, err := c.call(ctx, ref.Address, service.ActRemoveDocument, req)
	return err
}

// ListDocuments lists the collection's document names.
func (c *Client) ListDocuments(ctx context.Context, ref ResourceRef) ([]string, error) {
	req := service.NewRequest(service.NSDAIX, "ListDocumentsRequest", ref.AbstractName)
	resp, err := c.call(ctx, ref.Address, service.ActListDocuments, req)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, el := range resp.FindAll(service.NSDAIX, "DocumentName") {
		out = append(out, el.Text())
	}
	return out, nil
}

// CreateSubcollection creates a child collection.
func (c *Client) CreateSubcollection(ctx context.Context, ref ResourceRef, name string) error {
	req := service.NewRequest(service.NSDAIX, "CreateSubcollectionRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "CollectionName", name)
	_, err := c.call(ctx, ref.Address, service.ActCreateSubcollection, req)
	return err
}

// RemoveSubcollection removes a child collection.
func (c *Client) RemoveSubcollection(ctx context.Context, ref ResourceRef, name string) error {
	req := service.NewRequest(service.NSDAIX, "RemoveSubcollectionRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "CollectionName", name)
	_, err := c.call(ctx, ref.Address, service.ActRemoveSubcollection, req)
	return err
}

// ListSubcollections lists child collections.
func (c *Client) ListSubcollections(ctx context.Context, ref ResourceRef) ([]string, error) {
	req := service.NewRequest(service.NSDAIX, "ListSubcollectionsRequest", ref.AbstractName)
	resp, err := c.call(ctx, ref.Address, service.ActListSubcollections, req)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, el := range resp.FindAll(service.NSDAIX, "CollectionName") {
		out = append(out, el.Text())
	}
	return out, nil
}

// XPathExecute runs an XPath across the collection (direct access).
func (c *Client) XPathExecute(ctx context.Context, ref ResourceRef, expr string) ([]SequenceItem, error) {
	req := service.NewRequest(service.NSDAIX, "XPathExecuteRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "Expression", expr)
	resp, err := c.call(ctx, ref.Address, service.ActXPathExecute, req)
	if err != nil {
		return nil, err
	}
	return decodeSequence(resp.Find(service.NSDAIX, "XMLSequence"))
}

// XQueryExecute runs an XQuery across the collection.
func (c *Client) XQueryExecute(ctx context.Context, ref ResourceRef, query string) ([]SequenceItem, error) {
	req := service.NewRequest(service.NSDAIX, "XQueryExecuteRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "Expression", query)
	resp, err := c.call(ctx, ref.Address, service.ActXQueryExecute, req)
	if err != nil {
		return nil, err
	}
	return decodeSequence(resp.Find(service.NSDAIX, "XMLSequence"))
}

// XUpdateExecute applies an XUpdate modifications document to one
// stored document, returning the number of nodes affected.
func (c *Client) XUpdateExecute(ctx context.Context, ref ResourceRef, docName string, modifications *xmlutil.Element) (int, error) {
	req := service.NewRequest(service.NSDAIX, "XUpdateExecuteRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "DocumentName", docName)
	req.AppendChild(modifications.Clone())
	resp, err := c.call(ctx, ref.Address, service.ActXUpdateExecute, req)
	if err != nil {
		return 0, err
	}
	var n int
	fmt.Sscanf(resp.FindText(service.NSDAIX, "NodesModified"), "%d", &n)
	return n, nil
}

// XPathExecuteFactory derives a sequence resource from an XPath query.
func (c *Client) XPathExecuteFactory(ctx context.Context, ref ResourceRef, expr string, cfg *core.Configuration) (ResourceRef, error) {
	req := service.NewRequest(service.NSDAIX, "XPathExecuteFactoryRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "Expression", expr)
	if cfg != nil {
		req.AppendChild(cfg.Element())
	}
	resp, err := c.call(ctx, ref.Address, service.ActXPathFactory, req)
	if err != nil {
		return ResourceRef{}, err
	}
	return refFromResponse(resp)
}

// XQueryExecuteFactory derives a sequence resource from an XQuery.
func (c *Client) XQueryExecuteFactory(ctx context.Context, ref ResourceRef, query string, cfg *core.Configuration) (ResourceRef, error) {
	req := service.NewRequest(service.NSDAIX, "XQueryExecuteFactoryRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "Expression", query)
	if cfg != nil {
		req.AppendChild(cfg.Element())
	}
	resp, err := c.call(ctx, ref.Address, service.ActXQueryFactory, req)
	if err != nil {
		return ResourceRef{}, err
	}
	return refFromResponse(resp)
}

// CollectionFactory derives a live sub-collection resource.
func (c *Client) CollectionFactory(ctx context.Context, ref ResourceRef, name string, cfg *core.Configuration) (ResourceRef, error) {
	req := service.NewRequest(service.NSDAIX, "CollectionFactoryRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "CollectionName", name)
	if cfg != nil {
		req.AppendChild(cfg.Element())
	}
	resp, err := c.call(ctx, ref.Address, service.ActCollectionFactory, req)
	if err != nil {
		return ResourceRef{}, err
	}
	return refFromResponse(resp)
}

// GetItems pages through a derived sequence resource.
func (c *Client) GetItems(ctx context.Context, ref ResourceRef, startPosition, count int) ([]SequenceItem, error) {
	req := service.NewRequest(service.NSDAIX, "GetItemsRequest", ref.AbstractName)
	req.AddText(service.NSDAIX, "StartPosition", fmt.Sprintf("%d", startPosition))
	req.AddText(service.NSDAIX, "Count", fmt.Sprintf("%d", count))
	resp, err := c.call(ctx, ref.Address, service.ActGetItems, req)
	if err != nil {
		return nil, err
	}
	return decodeSequence(resp.Find(service.NSDAIX, "XMLSequence"))
}
