package client

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/xmlutil"
)

// SequenceItem is one decoded entry of an XMLSequence response.
type SequenceItem struct {
	Document string
	Node     *xmlutil.Element // nil for scalar results
	Value    string
}

// decodeSequence converts an XMLSequence element into items.
func decodeSequence(seq *xmlutil.Element) ([]SequenceItem, error) {
	if seq == nil {
		return nil, fmt.Errorf("client: response missing XMLSequence")
	}
	var out []SequenceItem
	for _, item := range seq.FindAll(ops.NSDAIX, "Item") {
		si := SequenceItem{Document: item.AttrValue("", "document")}
		if v := item.Find(ops.NSDAIX, "Value"); v != nil {
			si.Value = v.Text()
		} else if kids := item.ChildElements(); len(kids) > 0 {
			si.Node = kids[0]
			si.Value = kids[0].Text()
		}
		out = append(out, si)
	}
	return out, nil
}

// sequenceOp runs one query-style operation and decodes its
// XMLSequence response.
func (c *Client) sequenceOp(ctx context.Context, ref ResourceRef, spec ops.Spec, msg ops.Msg) ([]SequenceItem, error) {
	resp, err := c.invoke(ctx, ref, spec, msg)
	if err != nil {
		return nil, err
	}
	return decodeSequence(resp.Find(ops.NSDAIX, "XMLSequence"))
}

// AddDocument stores a document in an XML collection resource.
func (c *Client) AddDocument(ctx context.Context, ref ResourceRef, name string, doc *xmlutil.Element) error {
	_, err := c.invoke(ctx, ref, ops.AddDocument,
		ops.AddDocumentMsg{DocumentName: name, Document: doc})
	return err
}

// GetDocument fetches a document by name.
func (c *Client) GetDocument(ctx context.Context, ref ResourceRef, name string) (*xmlutil.Element, error) {
	resp, err := c.invoke(ctx, ref, ops.GetDocument, ops.DocMsg{DocumentName: name})
	if err != nil {
		return nil, err
	}
	wrap := resp.Find(ops.NSDAIX, "Document")
	if wrap == nil || len(wrap.ChildElements()) != 1 {
		return nil, fmt.Errorf("client: response missing Document")
	}
	return wrap.ChildElements()[0], nil
}

// RemoveDocument deletes a document by name.
func (c *Client) RemoveDocument(ctx context.Context, ref ResourceRef, name string) error {
	_, err := c.invoke(ctx, ref, ops.RemoveDocument, ops.DocMsg{DocumentName: name})
	return err
}

// ListDocuments lists the collection's document names.
func (c *Client) ListDocuments(ctx context.Context, ref ResourceRef) ([]string, error) {
	resp, err := c.invoke(ctx, ref, ops.ListDocuments, nil)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, el := range resp.FindAll(ops.NSDAIX, "DocumentName") {
		out = append(out, el.Text())
	}
	return out, nil
}

// CreateSubcollection creates a child collection.
func (c *Client) CreateSubcollection(ctx context.Context, ref ResourceRef, name string) error {
	_, err := c.invoke(ctx, ref, ops.CreateSubcollection, ops.CollMsg{CollectionName: name})
	return err
}

// RemoveSubcollection removes a child collection.
func (c *Client) RemoveSubcollection(ctx context.Context, ref ResourceRef, name string) error {
	_, err := c.invoke(ctx, ref, ops.RemoveSubcollection, ops.CollMsg{CollectionName: name})
	return err
}

// ListSubcollections lists child collections.
func (c *Client) ListSubcollections(ctx context.Context, ref ResourceRef) ([]string, error) {
	resp, err := c.invoke(ctx, ref, ops.ListSubcollections, nil)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, el := range resp.FindAll(ops.NSDAIX, "CollectionName") {
		out = append(out, el.Text())
	}
	return out, nil
}

// XPathExecute runs an XPath across the collection (direct access).
func (c *Client) XPathExecute(ctx context.Context, ref ResourceRef, expr string) ([]SequenceItem, error) {
	return c.sequenceOp(ctx, ref, ops.XPathExecute, ops.ExprMsg{Expression: expr})
}

// XQueryExecute runs an XQuery across the collection.
func (c *Client) XQueryExecute(ctx context.Context, ref ResourceRef, query string) ([]SequenceItem, error) {
	return c.sequenceOp(ctx, ref, ops.XQueryExecute, ops.ExprMsg{Expression: query})
}

// XUpdateExecute applies an XUpdate modifications document to one
// stored document, returning the number of nodes affected.
func (c *Client) XUpdateExecute(ctx context.Context, ref ResourceRef, docName string, modifications *xmlutil.Element) (int, error) {
	resp, err := c.invoke(ctx, ref, ops.XUpdateExecute,
		ops.XUpdateMsg{DocumentName: docName, Modifications: modifications})
	if err != nil {
		return 0, err
	}
	var n int
	fmt.Sscanf(resp.FindText(ops.NSDAIX, "NodesModified"), "%d", &n)
	return n, nil
}

// XPathExecuteFactory derives a sequence resource from an XPath query.
func (c *Client) XPathExecuteFactory(ctx context.Context, ref ResourceRef, expr string, cfg *core.Configuration) (ResourceRef, error) {
	return c.factory(ctx, ref, ops.XPathExecuteFactory,
		ops.SeqFactoryMsg{Expression: expr, Config: cfg})
}

// XQueryExecuteFactory derives a sequence resource from an XQuery.
func (c *Client) XQueryExecuteFactory(ctx context.Context, ref ResourceRef, query string, cfg *core.Configuration) (ResourceRef, error) {
	return c.factory(ctx, ref, ops.XQueryExecuteFactory,
		ops.SeqFactoryMsg{Expression: query, Config: cfg})
}

// CollectionFactory derives a live sub-collection resource.
func (c *Client) CollectionFactory(ctx context.Context, ref ResourceRef, name string, cfg *core.Configuration) (ResourceRef, error) {
	return c.factory(ctx, ref, ops.CollectionFactory,
		ops.CollFactoryMsg{CollectionName: name, Config: cfg})
}

// GetItems pages through a derived sequence resource.
func (c *Client) GetItems(ctx context.Context, ref ResourceRef, startPosition, count int) ([]SequenceItem, error) {
	return c.sequenceOp(ctx, ref, ops.GetItems,
		ops.PageMsg{Start: startPosition, Count: count})
}
