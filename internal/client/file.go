package client

import (
	"context"
	"encoding/base64"
	"fmt"
	"time"

	"dais/internal/core"
	"dais/internal/filestore"
	"dais/internal/ops"
	"dais/internal/xmlutil"
)

// ReadFile reads a byte range from a file resource (count < 0 reads to
// the end).
func (c *Client) ReadFile(ctx context.Context, ref ResourceRef, name string, offset, count int64) ([]byte, error) {
	resp, err := c.invoke(ctx, ref, ops.ReadFile,
		ops.FileRangeMsg{FileName: name, Offset: offset, Count: count})
	if err != nil {
		return nil, err
	}
	return base64.StdEncoding.DecodeString(resp.FindText(ops.NSDAIF, "Data"))
}

// WriteFile replaces a file's contents.
func (c *Client) WriteFile(ctx context.Context, ref ResourceRef, name string, data []byte) error {
	_, err := c.invoke(ctx, ref, ops.WriteFile, ops.FileDataMsg{FileName: name, Data: data})
	return err
}

// AppendFile extends a file.
func (c *Client) AppendFile(ctx context.Context, ref ResourceRef, name string, data []byte) error {
	_, err := c.invoke(ctx, ref, ops.AppendFile, ops.FileDataMsg{FileName: name, Data: data})
	return err
}

// DeleteFile removes a file.
func (c *Client) DeleteFile(ctx context.Context, ref ResourceRef, name string) error {
	_, err := c.invoke(ctx, ref, ops.DeleteFile, ops.FileNameMsg{FileName: name})
	return err
}

// ListFiles lists files matching a glob pattern ("" lists everything).
func (c *Client) ListFiles(ctx context.Context, ref ResourceRef, pattern string) ([]filestore.FileInfo, error) {
	resp, err := c.invoke(ctx, ref, ops.ListFiles, ops.PatternMsg{Pattern: pattern})
	if err != nil {
		return nil, err
	}
	return decodeFileList(resp.Find(ops.NSDAIF, "FileList"))
}

// StatFile returns one file's metadata.
func (c *Client) StatFile(ctx context.Context, ref ResourceRef, name string) (filestore.FileInfo, error) {
	resp, err := c.invoke(ctx, ref, ops.StatFile, ops.FileNameMsg{FileName: name})
	if err != nil {
		return filestore.FileInfo{}, err
	}
	infos, err := decodeFileList(resp.Find(ops.NSDAIF, "FileList"))
	if err != nil || len(infos) != 1 {
		return filestore.FileInfo{}, fmt.Errorf("client: StatFile returned %d entries (%v)", len(infos), err)
	}
	return infos[0], nil
}

// FileSelectFactory stages the files matching the pattern into a
// derived resource and returns its reference.
func (c *Client) FileSelectFactory(ctx context.Context, ref ResourceRef, pattern string, cfg *core.Configuration) (ResourceRef, error) {
	return c.factory(ctx, ref, ops.FileSelectFactory,
		ops.FileFactoryMsg{Pattern: pattern, Config: cfg})
}

func decodeFileList(list *xmlutil.Element) ([]filestore.FileInfo, error) {
	if list == nil {
		return nil, fmt.Errorf("client: response missing FileList")
	}
	var out []filestore.FileInfo
	for _, f := range list.FindAll(ops.NSDAIF, "File") {
		fi := filestore.FileInfo{Name: f.AttrValue("", "name")}
		fmt.Sscanf(f.AttrValue("", "size"), "%d", &fi.Size)
		if ts, err := time.Parse(time.RFC3339Nano, f.AttrValue("", "modified")); err == nil {
			fi.Modified = ts
		}
		out = append(out, fi)
	}
	return out, nil
}
