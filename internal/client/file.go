package client

import (
	"context"
	"encoding/base64"
	"fmt"
	"time"

	"dais/internal/core"
	"dais/internal/filestore"
	"dais/internal/service"
	"dais/internal/xmlutil"
)

// ReadFile reads a byte range from a file resource (count < 0 reads to
// the end).
func (c *Client) ReadFile(ctx context.Context, ref ResourceRef, name string, offset, count int64) ([]byte, error) {
	req := service.NewRequest(service.NSDAIF, "ReadFileRequest", ref.AbstractName)
	req.AddText(service.NSDAIF, "FileName", name)
	req.AddText(service.NSDAIF, "Offset", fmt.Sprintf("%d", offset))
	req.AddText(service.NSDAIF, "Count", fmt.Sprintf("%d", count))
	resp, err := c.call(ctx, ref.Address, service.ActReadFile, req)
	if err != nil {
		return nil, err
	}
	return base64.StdEncoding.DecodeString(resp.FindText(service.NSDAIF, "Data"))
}

// WriteFile replaces a file's contents.
func (c *Client) WriteFile(ctx context.Context, ref ResourceRef, name string, data []byte) error {
	return c.filePayloadOp(ctx, ref, service.ActWriteFile, "WriteFileRequest", name, data)
}

// AppendFile extends a file.
func (c *Client) AppendFile(ctx context.Context, ref ResourceRef, name string, data []byte) error {
	return c.filePayloadOp(ctx, ref, service.ActAppendFile, "AppendFileRequest", name, data)
}

func (c *Client) filePayloadOp(ctx context.Context, ref ResourceRef, action, reqName, name string, data []byte) error {
	req := service.NewRequest(service.NSDAIF, reqName, ref.AbstractName)
	req.AddText(service.NSDAIF, "FileName", name)
	d := req.Add(service.NSDAIF, "Data")
	d.SetAttr("", "encoding", "base64")
	d.SetText(base64.StdEncoding.EncodeToString(data))
	_, err := c.call(ctx, ref.Address, action, req)
	return err
}

// DeleteFile removes a file.
func (c *Client) DeleteFile(ctx context.Context, ref ResourceRef, name string) error {
	req := service.NewRequest(service.NSDAIF, "DeleteFileRequest", ref.AbstractName)
	req.AddText(service.NSDAIF, "FileName", name)
	_, err := c.call(ctx, ref.Address, service.ActDeleteFile, req)
	return err
}

// ListFiles lists files matching a glob pattern ("" lists everything).
func (c *Client) ListFiles(ctx context.Context, ref ResourceRef, pattern string) ([]filestore.FileInfo, error) {
	req := service.NewRequest(service.NSDAIF, "ListFilesRequest", ref.AbstractName)
	req.AddText(service.NSDAIF, "Pattern", pattern)
	resp, err := c.call(ctx, ref.Address, service.ActListFiles, req)
	if err != nil {
		return nil, err
	}
	return decodeFileList(resp.Find(service.NSDAIF, "FileList"))
}

// StatFile returns one file's metadata.
func (c *Client) StatFile(ctx context.Context, ref ResourceRef, name string) (filestore.FileInfo, error) {
	req := service.NewRequest(service.NSDAIF, "StatFileRequest", ref.AbstractName)
	req.AddText(service.NSDAIF, "FileName", name)
	resp, err := c.call(ctx, ref.Address, service.ActStatFile, req)
	if err != nil {
		return filestore.FileInfo{}, err
	}
	infos, err := decodeFileList(resp.Find(service.NSDAIF, "FileList"))
	if err != nil || len(infos) != 1 {
		return filestore.FileInfo{}, fmt.Errorf("client: StatFile returned %d entries (%v)", len(infos), err)
	}
	return infos[0], nil
}

// FileSelectFactory stages the files matching the pattern into a
// derived resource and returns its reference.
func (c *Client) FileSelectFactory(ctx context.Context, ref ResourceRef, pattern string, cfg *core.Configuration) (ResourceRef, error) {
	req := service.NewRequest(service.NSDAIF, "FileSelectFactoryRequest", ref.AbstractName)
	req.AddText(service.NSDAIF, "Pattern", pattern)
	if cfg != nil {
		req.AppendChild(cfg.Element())
	}
	resp, err := c.call(ctx, ref.Address, service.ActFileSelectFactory, req)
	if err != nil {
		return ResourceRef{}, err
	}
	return refFromResponse(resp)
}

func decodeFileList(list *xmlutil.Element) ([]filestore.FileInfo, error) {
	if list == nil {
		return nil, fmt.Errorf("client: response missing FileList")
	}
	var out []filestore.FileInfo
	for _, f := range list.FindAll(service.NSDAIF, "File") {
		fi := filestore.FileInfo{Name: f.AttrValue("", "name")}
		fmt.Sscanf(f.AttrValue("", "size"), "%d", &fi.Size)
		if ts, err := time.Parse(time.RFC3339Nano, f.AttrValue("", "modified")); err == nil {
			fi.Modified = ts
		}
		out = append(out, fi)
	}
	return out, nil
}
