// Package client is the typed Go consumer library for DAIS services:
// it speaks the WS-DAI / WS-DAIR / WS-DAIX / WS-DAIF SOAP message
// patterns against any endpoint, follows EPRs returned by factories
// (including EPRs handed over by third parties, paper Fig. 5), and
// exposes the optional WSRF operations. Every method is a thin call
// through the declarative operation catalog of package ops: the spec
// supplies the action URI, the request element shape and the mandatory
// abstract-name framing; the shared message codecs supply the body —
// the same codecs the service decodes with, so both sides agree by
// construction.
package client

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/ops"
	"dais/internal/resil"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/soap"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
	"dais/internal/wsaddr"
	"dais/internal/wsrf"
	"dais/internal/xmlutil"
)

// decodeFormats is the shared codec registry dataset responses decode
// through. Codecs are stateless, so one registry serves every client
// instead of rebuilding the three-codec map per response.
var decodeFormats = rowset.NewRegistry()

// ResourceRef addresses one data resource: a service endpoint URL plus
// the resource's abstract name. It corresponds to a WS-Addressing EPR
// whose reference parameters carry the abstract name.
type ResourceRef struct {
	Address      string
	AbstractName string
}

// Ref builds a reference from its parts.
func Ref(address, abstractName string) ResourceRef {
	return ResourceRef{Address: address, AbstractName: abstractName}
}

// FromEPR extracts a reference from an EPR (a factory response or a
// hand-off from another consumer).
func FromEPR(epr *wsaddr.EndpointReference) (ResourceRef, error) {
	if epr == nil {
		return ResourceRef{}, fmt.Errorf("client: nil EPR")
	}
	p := epr.ReferenceParameter(core.NSDAI, "DataResourceAbstractName")
	if p == nil {
		return ResourceRef{}, fmt.Errorf("client: EPR has no DataResourceAbstractName reference parameter")
	}
	return ResourceRef{Address: epr.Address, AbstractName: p.Text()}, nil
}

// EPR renders the reference back into a WS-Addressing EPR (for handing
// to a third party).
func (r ResourceRef) EPR() *wsaddr.EndpointReference {
	epr := wsaddr.NewEPR(r.Address)
	p := xmlutil.NewElement(core.NSDAI, "DataResourceAbstractName")
	p.SetText(r.AbstractName)
	epr.AddReferenceParameter(p)
	return epr
}

// Client is a DAIS consumer.
type Client struct {
	soap *soap.Client
}

// New builds a client over the given HTTP client (nil for the default).
// Every call runs through the request-ID interceptor — so each request
// carries a correlatable ID in its SOAP header — then the telemetry
// interceptor recording consumer-side metrics and spans, followed by
// any extra interceptors supplied here (outermost first).
func New(hc *http.Client, interceptors ...soap.Interceptor) *Client {
	return NewObserved(hc, telemetry.Default, interceptors...)
}

// NewObserved is New recording into a specific observer (nil disables
// client-side instrumentation).
func NewObserved(hc *http.Client, obs *telemetry.Observer, interceptors ...soap.Interceptor) *Client {
	cfg := resil.DefaultClientConfig()
	return NewResilient(hc, obs, cfg, interceptors...)
}

// NewResilient is NewObserved with an explicit resilience policy. The
// interceptor chain runs request-ID, telemetry, resilience, then the
// extra interceptors: retries happen inside the telemetry boundary so
// each logical call stays one metric observation and one span however
// many attempts it takes. The resilience layer retries only operations
// the ops catalog marks idempotent, within the caller's context
// deadline, and trips a per-endpoint circuit breaker on consecutive
// transport failures (see internal/resil). A zero ClientConfig disables
// retries and breaking.
func NewResilient(hc *http.Client, obs *telemetry.Observer, cfg resil.ClientConfig, interceptors ...soap.Interceptor) *Client {
	if cfg.Observer == nil {
		cfg.Observer = obs
	}
	ics := []soap.Interceptor{soap.ClientRequestID()}
	if obs != nil {
		ics = append(ics, obs.ClientInterceptor())
	}
	ics = append(ics, resil.NewClientResilience(cfg))
	ics = append(ics, interceptors...)
	sc := soap.NewClient(hc, ics...)
	if obs != nil {
		sc.OnExchange(obs.ExchangeObserver(telemetry.SideClient))
	}
	return &Client{soap: sc}
}

// BytesSent and BytesReceived expose wire counters for the evaluation
// harness.
func (c *Client) BytesSent() int64     { return c.soap.BytesSent() }
func (c *Client) BytesReceived() int64 { return c.soap.BytesReceived() }

// ResetCounters zeroes the wire counters.
func (c *Client) ResetCounters() { c.soap.ResetCounters() }

// call performs one SOAP request/response round trip with WS-Addressing
// headers, returning the response body element.
func (c *Client) call(ctx context.Context, address, action string, body *xmlutil.Element) (*xmlutil.Element, error) {
	env := soap.NewEnvelope(body)
	h := &wsaddr.MessageHeaders{
		To:        address,
		Action:    action,
		MessageID: wsaddr.NewMessageID(),
		ReplyTo:   wsaddr.NewEPR(wsaddr.AnonymousURI),
	}
	h.Attach(env)
	resp, err := c.soap.Call(ctx, address, action, env)
	if err != nil {
		return nil, service.DecodeFault(err)
	}
	return resp.BodyEntry(), nil
}

// invoke performs one operation per its catalog spec: the spec builds
// the request element (with the mandatory abstract name and any
// advertised PortTypeQName), the message encodes the body, and the
// operation metadata rides the context for client interceptors.
func (c *Client) invoke(ctx context.Context, ref ResourceRef, spec ops.Spec, msg ops.Msg) (*xmlutil.Element, error) {
	req := spec.NewRequest(ref.AbstractName)
	if msg != nil {
		msg.Encode(spec, req)
	}
	return c.call(ops.WithCallInfo(ctx, spec.Info()), ref.Address, spec.Action, req)
}

// Invoke performs one operation against an address with a caller-built
// request body, returning the raw response body. The federation gateway
// forwards through this: it rewrites the decoded request itself (alias
// translation, name framing) and must not re-encode through the typed
// message layer, but still wants the catalog metadata on the context so
// the resilience interceptor sees the idempotency class and telemetry
// labels the call.
func (c *Client) Invoke(ctx context.Context, address string, spec ops.Spec, body *xmlutil.Element) (*xmlutil.Element, error) {
	return c.call(ops.WithCallInfo(ctx, spec.Info()), address, spec.Action, body)
}

// factory is invoke for the indirect access pattern (paper Fig. 3):
// the response's DataResourceAddress EPR becomes a new reference.
func (c *Client) factory(ctx context.Context, ref ResourceRef, spec ops.Spec, msg ops.Msg) (ResourceRef, error) {
	resp, err := c.invoke(ctx, ref, spec, msg)
	if err != nil {
		return ResourceRef{}, err
	}
	return refFromResponse(resp, ref.Address)
}

// refFromResponse extracts the DataResourceAddress EPR from a factory
// response. The EPR's own address wins — a gateway or a relocated
// resource may answer at a different endpoint than the one dialed — but
// an endpoint that doesn't know its public address sends an empty or
// anonymous address, and then the dialed address is the only usable one.
func refFromResponse(resp *xmlutil.Element, dialed string) (ResourceRef, error) {
	epr, err := ops.ResourceAddress(resp)
	if err != nil {
		return ResourceRef{}, err
	}
	ref, err := FromEPR(epr)
	if err != nil {
		return ResourceRef{}, err
	}
	if ref.Address == "" || ref.Address == wsaddr.AnonymousURI {
		ref.Address = dialed
	}
	return ref, nil
}

// --- WS-DAI core ---

// GetPropertyDocument fetches the whole WS-DAI property document
// (paper §4.3; the only granularity available without WSRF).
func (c *Client) GetPropertyDocument(ctx context.Context, ref ResourceRef) (*xmlutil.Element, error) {
	resp, err := c.invoke(ctx, ref, ops.GetPropertyDocument, nil)
	if err != nil {
		return nil, err
	}
	doc := resp.Find(core.NSDAI, "DataResourcePropertyDocument")
	if doc == nil {
		return nil, fmt.Errorf("client: response missing property document")
	}
	return doc, nil
}

// GenericQuery runs a query in an advertised language.
func (c *Client) GenericQuery(ctx context.Context, ref ResourceRef, languageURI, expression string) (*xmlutil.Element, error) {
	resp, err := c.invoke(ctx, ref, ops.GenericQuery,
		ops.GenericQueryMsg{Language: languageURI, Expression: expression})
	if err != nil {
		return nil, err
	}
	kids := resp.ChildElements()
	if len(kids) == 0 {
		return nil, fmt.Errorf("client: empty GenericQuery response")
	}
	return kids[0], nil
}

// DestroyDataResource removes the service / resource relationship.
func (c *Client) DestroyDataResource(ctx context.Context, ref ResourceRef) error {
	_, err := c.invoke(ctx, ref, ops.DestroyDataResource, nil)
	return err
}

// GetResourceList lists the abstract names a service knows.
func (c *Client) GetResourceList(ctx context.Context, address string) ([]string, error) {
	resp, err := c.invoke(ctx, Ref(address, ""), ops.GetResourceList, nil)
	if err != nil {
		return nil, err
	}
	return ops.ParseResourceList(resp), nil
}

// Resolve maps an abstract name to a full resource reference.
func (c *Client) Resolve(ctx context.Context, address, abstractName string) (ResourceRef, error) {
	return c.factory(ctx, Ref(address, abstractName), ops.ResolveName, nil)
}

// --- WS-DAIR ---

// SQLResult is the decoded outcome of a direct SQLExecute.
type SQLResult struct {
	Set         *sqlengine.ResultSet // nil for updates or undecodable formats
	Raw         []byte               // dataset bytes as shipped
	FormatURI   string
	UpdateCount int // -1 for queries
	CA          sqlengine.SQLCA
}

// SQLExecute performs direct data access (paper Fig. 2): the data comes
// back in the response. formatURI "" selects the SQLRowset default.
func (c *Client) SQLExecute(ctx context.Context, ref ResourceRef, expression string, params []sqlengine.Value, formatURI string) (*SQLResult, error) {
	resp, err := c.invoke(ctx, ref, ops.SQLExecute, ops.SQLExecuteMsg{
		Expr:      ops.SQLExpression{Expression: expression, Params: params},
		FormatURI: formatURI,
	})
	if err != nil {
		return nil, err
	}
	out := &SQLResult{UpdateCount: -1}
	if ca, err := dair.ParseCommunicationArea(resp.Find(ops.NSDAIR, "SQLCommunicationArea")); err == nil {
		out.CA = ca
	}
	if uc := resp.Find(ops.NSDAIR, "UpdateCount"); uc != nil {
		fmt.Sscanf(uc.Text(), "%d", &out.UpdateCount)
		return out, nil
	}
	ds := resp.Find(core.NSDAI, "Dataset")
	if ds == nil {
		return out, nil
	}
	out.Raw, out.FormatURI = ops.DatasetPayload(ds)
	// The SQLRowset default decodes straight from the already-parsed
	// element tree, skipping DatasetPayload's marshal→re-parse cycle;
	// other formats go through their codec on the raw bytes.
	if rsEl := ds.Find(rowset.NSDAIR, "SQLRowset"); rsEl != nil &&
		(out.FormatURI == "" || out.FormatURI == rowset.FormatSQLRowset) {
		if set, derr := rowset.DecodeSQLRowsetElement(rsEl); derr == nil {
			out.Set = set
		}
		return out, nil
	}
	if codec, err := decodeFormats.Lookup(out.FormatURI); err == nil {
		if set, derr := codec.Decode(out.Raw); derr == nil {
			out.Set = set
		}
	}
	return out, nil
}

// SQLExecuteFactory performs indirect access (paper Fig. 3): the
// response is an EPR to a derived SQLResponse resource.
func (c *Client) SQLExecuteFactory(ctx context.Context, ref ResourceRef, expression string, params []sqlengine.Value, cfg *core.Configuration) (ResourceRef, error) {
	return c.factory(ctx, ref, ops.SQLExecuteFactory, ops.SQLFactoryMsg{
		Expr:   ops.SQLExpression{Expression: expression, Params: params},
		Config: cfg,
	})
}

// GetSQLRowset fetches the index-th rowset of a response resource.
func (c *Client) GetSQLRowset(ctx context.Context, ref ResourceRef, index int) (*sqlengine.ResultSet, error) {
	resp, err := c.invoke(ctx, ref, ops.GetSQLRowset, ops.IndexMsg{Index: index})
	if err != nil {
		return nil, err
	}
	rs := resp.Find(rowset.NSDAIR, "SQLRowset")
	if rs == nil {
		return nil, fmt.Errorf("client: response missing SQLRowset")
	}
	return rowset.DecodeSQLRowsetElement(rs)
}

// GetSQLUpdateCount fetches the index-th update count.
func (c *Client) GetSQLUpdateCount(ctx context.Context, ref ResourceRef, index int) (int, error) {
	resp, err := c.invoke(ctx, ref, ops.GetSQLUpdateCount, ops.IndexMsg{Index: index})
	if err != nil {
		return 0, err
	}
	var n int
	fmt.Sscanf(resp.FindText(ops.NSDAIR, "UpdateCount"), "%d", &n)
	return n, nil
}

// GetSQLCommunicationArea fetches the response's communication area.
func (c *Client) GetSQLCommunicationArea(ctx context.Context, ref ResourceRef) (sqlengine.SQLCA, error) {
	resp, err := c.invoke(ctx, ref, ops.GetSQLCommunicationArea, nil)
	if err != nil {
		return sqlengine.SQLCA{}, err
	}
	caEl := resp.Find(ops.NSDAIR, "SQLCommunicationArea")
	if caEl == nil {
		return sqlengine.SQLCA{}, fmt.Errorf("client: response missing SQLCommunicationArea")
	}
	return dair.ParseCommunicationArea(caEl)
}

// SQLRowsetFactory derives a rowset resource from a response resource
// (the second hop of Fig. 5). count 0 copies every row.
func (c *Client) SQLRowsetFactory(ctx context.Context, ref ResourceRef, formatURI string, count int, cfg *core.Configuration) (ResourceRef, error) {
	return c.factory(ctx, ref, ops.SQLRowsetFactory, ops.RowsetFactoryMsg{
		FormatURI: formatURI, Count: count, Config: cfg,
	})
}

// GetTuples pages through a rowset resource (the third hop of Fig. 5),
// returning the raw dataset bytes and their format URI.
func (c *Client) GetTuples(ctx context.Context, ref ResourceRef, startPosition, count int) ([]byte, string, error) {
	resp, err := c.invoke(ctx, ref, ops.GetTuples,
		ops.PageMsg{Start: startPosition, Count: count})
	if err != nil {
		return nil, "", err
	}
	data, format := ops.DatasetPayload(resp.Find(core.NSDAI, "Dataset"))
	return data, format, nil
}

// GetTuplesSet is GetTuples decoded into a result set.
func (c *Client) GetTuplesSet(ctx context.Context, ref ResourceRef, startPosition, count int) (*sqlengine.ResultSet, error) {
	data, format, err := c.GetTuples(ctx, ref, startPosition, count)
	if err != nil {
		return nil, err
	}
	codec, err := decodeFormats.Lookup(format)
	if err != nil {
		return nil, err
	}
	return codec.Decode(data)
}

// --- WSRF ---

// GetResourceProperty fetches one property by QName (prefix dair:/daix:
// selects the realisation namespace; wsrl: the lifetime namespace).
func (c *Client) GetResourceProperty(ctx context.Context, ref ResourceRef, qname string) ([]*xmlutil.Element, error) {
	resp, err := c.invoke(ctx, ref, ops.GetResourceProperty,
		ops.MsgFunc(func(s ops.Spec, req *xmlutil.Element) {
			req.AddText(wsrf.NSRP, "ResourceProperty", qname)
		}))
	if err != nil {
		return nil, err
	}
	return resp.ChildElements(), nil
}

// QueryResourceProperties evaluates an XPath over the property
// document.
func (c *Client) QueryResourceProperties(ctx context.Context, ref ResourceRef, expr string) ([]*xmlutil.Element, error) {
	resp, err := c.invoke(ctx, ref, ops.QueryResourceProperties,
		ops.MsgFunc(func(s ops.Spec, req *xmlutil.Element) {
			req.AddText(wsrf.NSRP, "QueryExpression", expr)
		}))
	if err != nil {
		return nil, err
	}
	return resp.ChildElements(), nil
}

// SetResourceProperties updates configurable WS-DAI properties through
// the WSRF interface. Keys are property local names in the WS-DAI
// namespace (Readable, Writeable, DataResourceDescription,
// Sensitivity, TransactionIsolation, TransactionInitiation).
func (c *Client) SetResourceProperties(ctx context.Context, ref ResourceRef, props map[string]string) error {
	_, err := c.invoke(ctx, ref, ops.SetResourceProperties,
		ops.MsgFunc(func(s ops.Spec, req *xmlutil.Element) {
			update := req.Add(wsrf.NSRP, "Update")
			for k, v := range props {
				update.AddText(core.NSDAI, k, v)
			}
		}))
	return err
}

// SetTerminationTime schedules (or clears, with nil) a resource's
// soft-state termination.
func (c *Client) SetTerminationTime(ctx context.Context, ref ResourceRef, t *time.Time) (*time.Time, error) {
	resp, err := c.invoke(ctx, ref, ops.SetTerminationTime,
		ops.MsgFunc(func(s ops.Spec, req *xmlutil.Element) {
			rtt := req.Add(wsrf.NSRL, "RequestedTerminationTime")
			if t == nil {
				rtt.SetAttr("", "nil", "true")
			} else {
				rtt.SetText(t.UTC().Format(time.RFC3339Nano))
			}
		}))
	if err != nil {
		return nil, err
	}
	nt := resp.Find(wsrf.NSRL, "NewTerminationTime")
	if nt == nil || nt.AttrValue("", "nil") == "true" {
		return nil, nil
	}
	parsed, err := time.Parse(time.RFC3339Nano, nt.Text())
	if err != nil {
		return nil, err
	}
	return &parsed, nil
}

// WSRFDestroy destroys the resource through the lifetime interface.
func (c *Client) WSRFDestroy(ctx context.Context, ref ResourceRef) error {
	_, err := c.invoke(ctx, ref, ops.WSRFDestroy, nil)
	return err
}
