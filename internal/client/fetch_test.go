package client

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"

	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/sqlengine"
)

// fetchFixture hosts a rowset resource with ids 0..rows-1 and returns
// its ref.
func fetchFixture(t testing.TB, rows int) (ResourceRef, *Client) {
	t.Helper()
	eng := sqlengine.New("fetch")
	eng.MustExec(`CREATE TABLE n (id INTEGER PRIMARY KEY, tag VARCHAR(16))`)
	for i := 0; i < rows; i += 500 {
		stmt := "INSERT INTO n VALUES "
		for j := i; j < i+500 && j < rows; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 't%03d')", j, j%7)
		}
		eng.MustExec(stmt)
	}
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService("fetch", core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc)
	ep.Register(res)
	ts := httptest.NewServer(ep)
	t.Cleanup(ts.Close)
	svc.SetAddress(ts.URL)
	c := New(nil)
	ctx := context.Background()
	respRef, err := c.SQLExecuteFactory(ctx, Ref(ts.URL, res.AbstractName()), `SELECT id, tag FROM n`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsetRef, err := c.SQLRowsetFactory(ctx, respRef, rowset.FormatSQLRowset, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rowsetRef, c
}

// TestFetchRowsetChunkedMatchesSequential: whatever the parallelism and
// chunk size — including resources that end exactly on a chunk
// boundary — the assembled result must equal the single-window fetch.
func TestFetchRowsetChunkedMatchesSequential(t *testing.T) {
	for _, rows := range []int{0, 1, 7, 256, 1000} {
		t.Run(fmt.Sprintf("%d rows", rows), func(t *testing.T) {
			ref, c := fetchFixture(t, rows)
			ctx := context.Background()
			base, err := c.GetTuplesSet(ctx, ref, 1, rows+1)
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range []FetchOptions{
				{},                           // defaults: sequential
				{Chunks: 4, ChunkRows: 64},   // parallel, small windows
				{Chunks: 8, ChunkRows: 250},  // boundary-aligned for 1000
				{Chunks: 3, ChunkRows: 1024}, // windows larger than resource
			} {
				got, err := c.FetchRowset(ctx, ref, opts)
				if err != nil {
					t.Fatalf("opts %+v: %v", opts, err)
				}
				if len(got.Rows) != len(base.Rows) {
					t.Fatalf("opts %+v: rows = %d, want %d", opts, len(got.Rows), len(base.Rows))
				}
				if len(base.Rows) > 0 && !reflect.DeepEqual(got.Rows, base.Rows) {
					t.Fatalf("opts %+v: rows diverged", opts)
				}
			}
		})
	}
}

func TestFetchPagesInOrder(t *testing.T) {
	ref, c := fetchFixture(t, 990)
	var next int64
	err := c.FetchPages(context.Background(), ref, FetchOptions{Chunks: 6, ChunkRows: 100},
		func(set *sqlengine.ResultSet) error {
			if len(set.Rows) == 0 {
				return errors.New("empty page emitted")
			}
			for _, r := range set.Rows {
				if r[0].I != next {
					return fmt.Errorf("row %d arrived when %d was expected", r[0].I, next)
				}
				next++
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if next != 990 {
		t.Fatalf("saw %d rows, want 990", next)
	}
}

func TestFetchPagesEmitErrorAborts(t *testing.T) {
	ref, c := fetchFixture(t, 500)
	boom := errors.New("downstream full")
	calls := 0
	err := c.FetchPages(context.Background(), ref, FetchOptions{Chunks: 4, ChunkRows: 50},
		func(set *sqlengine.ResultSet) error {
			calls++
			return boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after abort", calls)
	}
}

func TestFetchContextCancelled(t *testing.T) {
	ref, c := fetchFixture(t, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.FetchRowset(ctx, ref, FetchOptions{Chunks: 2}); err == nil {
		t.Fatal("expected context error")
	}
}
