package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dais/internal/core"
	"dais/internal/service"
	"dais/internal/soap"
	"dais/internal/wsaddr"
	"dais/internal/xmlutil"
)

func TestRefEPRRoundTrip(t *testing.T) {
	ref := Ref("http://svc/sql", "urn:dais:sql:abc")
	epr := ref.EPR()
	if epr.Address != "http://svc/sql" {
		t.Fatalf("address = %q", epr.Address)
	}
	back, err := FromEPR(epr)
	if err != nil {
		t.Fatal(err)
	}
	if back != ref {
		t.Fatalf("round trip: %+v != %+v", back, ref)
	}
}

func TestFromEPRThroughWire(t *testing.T) {
	// An EPR serialised into a factory response and parsed back must
	// yield the same reference (third-party hand-off fidelity).
	ref := Ref("http://svc", "urn:r1")
	el := ref.EPR().Element(core.NSDAI, "DataResourceAddress")
	re, err := xmlutil.ParseString(xmlutil.MarshalString(el))
	if err != nil {
		t.Fatal(err)
	}
	epr, err := wsaddr.ParseEPR(re)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromEPR(epr)
	if err != nil {
		t.Fatal(err)
	}
	if back != ref {
		t.Fatalf("wire round trip: %+v", back)
	}
}

func TestFromEPRErrors(t *testing.T) {
	if _, err := FromEPR(nil); err == nil {
		t.Fatal("nil EPR")
	}
	if _, err := FromEPR(wsaddr.NewEPR("http://x")); err == nil {
		t.Fatal("EPR without abstract name reference parameter")
	}
}

func TestCallAttachesAddressingHeaders(t *testing.T) {
	var got *soap.Envelope
	srv := soap.NewServer()
	srv.HandleFallback(func(_ context.Context, _ string, env *soap.Envelope) (*soap.Envelope, error) {
		got = env
		return soap.NewEnvelope(xmlutil.NewElement("urn:t", "R")), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := New(nil)
	req := service.NewRequest(core.NSDAI, "GetResourceListRequest", "urn:x")
	if _, err := c.call(context.Background(), ts.URL, "urn:test/action", req); err != nil {
		t.Fatal(err)
	}
	h := wsaddr.FromEnvelope(got)
	if h.Action != "urn:test/action" {
		t.Fatalf("action header = %q", h.Action)
	}
	if h.To != ts.URL {
		t.Fatalf("to header = %q", h.To)
	}
	if h.MessageID == "" || h.ReplyTo == nil || h.ReplyTo.Address != wsaddr.AnonymousURI {
		t.Fatalf("headers = %+v", h)
	}
}

func TestDecodeSequenceVariants(t *testing.T) {
	seq := xmlutil.NewElement(service.NSDAIX, "XMLSequence")
	n1 := seq.Add(service.NSDAIX, "Item")
	n1.SetAttr("", "document", "a.xml")
	node := n1.Add("", "book")
	node.SetText("content")
	n2 := seq.Add(service.NSDAIX, "Item")
	n2.SetAttr("", "document", "b.xml")
	n2.AddText(service.NSDAIX, "Value", "42")

	items, err := decodeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Node == nil || items[0].Value != "content" || items[0].Document != "a.xml" {
		t.Fatalf("item0 = %+v", items[0])
	}
	if items[1].Node != nil || items[1].Value != "42" {
		t.Fatalf("item1 = %+v", items[1])
	}
	if _, err := decodeSequence(nil); err == nil {
		t.Fatal("nil sequence should error")
	}
}

func TestCallDecodesTypedFaults(t *testing.T) {
	srv := soap.NewServer()
	srv.HandleFallback(func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
		detail := xmlutil.NewElement(core.NSDAI, "NotAuthorizedFault")
		detail.AddText(core.NSDAI, "Message", "denied")
		detail.AddText(core.NSDAI, "Value", "resource is read only")
		f := soap.ClientFault("denied")
		f.Detail = detail
		return nil, f
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := New(nil)
	_, err := c.call(context.Background(), ts.URL, "urn:a", xmlutil.NewElement("urn:t", "X"))
	naf, ok := err.(*core.NotAuthorizedFault)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if naf.Reason != "resource is read only" {
		t.Fatalf("reason = %q", naf.Reason)
	}
}

func TestTransportErrorsSurface(t *testing.T) {
	c := New(&http.Client{})
	_, err := c.call(context.Background(), "http://127.0.0.1:1/nothing", "urn:a", xmlutil.NewElement("urn:t", "X"))
	if err == nil || !strings.Contains(err.Error(), "transport") {
		t.Fatalf("err = %v", err)
	}
}

func TestByteCounters(t *testing.T) {
	srv := soap.NewServer()
	srv.HandleFallback(func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
		return soap.NewEnvelope(xmlutil.NewElement("urn:t", "R")), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(nil)
	if _, err := c.call(context.Background(), ts.URL, "urn:a", xmlutil.NewElement("urn:t", "Q")); err != nil {
		t.Fatal(err)
	}
	if c.BytesSent() == 0 || c.BytesReceived() == 0 {
		t.Fatal("counters not tracking")
	}
	c.ResetCounters()
	if c.BytesSent() != 0 || c.BytesReceived() != 0 {
		t.Fatal("reset failed")
	}
}
