package daif

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"dais/internal/core"
	"dais/internal/filestore"
)

func seedFiles(t testing.TB) *FileDataResource {
	t.Helper()
	store := filestore.NewStore("grid")
	for name, data := range map[string]string{
		"runs/2005/a.dat": "run-a-data",
		"runs/2005/b.dat": "run-b-data",
		"runs/2006/c.dat": "run-c",
		"calib/atlas.cal": "calibration",
	} {
		if err := store.Write(name, []byte(data)); err != nil {
			t.Fatal(err)
		}
	}
	return NewFileDataResource(store)
}

func TestFileAccessOps(t *testing.T) {
	r := seedFiles(t)
	data, err := r.ReadFile(context.Background(), "runs/2005/a.dat", 0, -1)
	if err != nil || string(data) != "run-a-data" {
		t.Fatalf("read = %q, %v", data, err)
	}
	part, err := r.ReadFile(context.Background(), "runs/2005/a.dat", 4, 1)
	if err != nil || string(part) != "a" {
		t.Fatalf("range = %q, %v", part, err)
	}
	if err := r.WriteFile(context.Background(), "new.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendFile(context.Background(), "new.txt", []byte("y")); err != nil {
		t.Fatal(err)
	}
	got, _ := r.ReadFile(context.Background(), "new.txt", 0, -1)
	if string(got) != "xy" {
		t.Fatalf("got %q", got)
	}
	info, err := r.StatFile(context.Background(), "new.txt")
	if err != nil || info.Size != 2 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	if err := r.DeleteFile(context.Background(), "new.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFile(context.Background(), "new.txt", 0, -1); err == nil {
		t.Fatal("deleted file readable")
	}
	infos, err := r.ListFiles(context.Background(), "runs/**")
	if err != nil || len(infos) != 3 {
		t.Fatalf("list = %v, %v", infos, err)
	}
}

func TestGenericQueryGlob(t *testing.T) {
	r := seedFiles(t)
	list, err := r.GenericQuery(context.Background(), LanguageGlob, "runs/2005/*.dat")
	if err != nil {
		t.Fatal(err)
	}
	files := list.FindAll(NSDAIF, "File")
	if len(files) != 2 || files[0].AttrValue("", "name") != "runs/2005/a.dat" {
		t.Fatalf("files = %v", files)
	}
	if files[0].AttrValue("", "size") != "10" {
		t.Fatalf("size = %s", files[0].AttrValue("", "size"))
	}
	var ilf *core.InvalidLanguageFault
	if _, err := r.GenericQuery(context.Background(), "urn:sql", "SELECT"); !errors.As(err, &ilf) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadWriteEnforcement(t *testing.T) {
	store := filestore.NewStore("s")
	cfg := core.Configuration{Readable: false, Writeable: false}
	r := NewFileDataResource(store, WithFileConfiguration(cfg))
	var naf *core.NotAuthorizedFault
	if _, err := r.ReadFile(context.Background(), "x", 0, -1); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
	if err := r.WriteFile(context.Background(), "x", nil); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.ListFiles(context.Background(), ""); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
	if err := r.DeleteFile(context.Background(), "x"); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
}

func TestExtendedProperties(t *testing.T) {
	r := seedFiles(t)
	props := r.ExtendedProperties()
	got := map[string]string{}
	for _, p := range props {
		got[p.Name.Local] = p.Text()
	}
	if got["NumberOfFiles"] != "4" {
		t.Fatalf("props = %v", got)
	}
	if got["TotalSize"] == "0" || got["TotalSize"] == "" {
		t.Fatalf("props = %v", got)
	}
}

func TestFileSelectFactoryStaging(t *testing.T) {
	src := seedFiles(t)
	ds := core.NewDataService("staging")
	staged, err := FileSelectFactory(context.Background(), src, ds, "runs/2005/*", nil)
	if err != nil {
		t.Fatal(err)
	}
	if staged.Management() != core.ServiceManaged || staged.ParentName() != src.AbstractName() {
		t.Fatal("derived resource wiring wrong")
	}
	if _, err := ds.Resolve(staged.AbstractName()); err != nil {
		t.Fatal("not registered")
	}
	names := staged.Names()
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	data, err := staged.ReadFile(context.Background(), "runs/2005/a.dat", 0, -1)
	if err != nil || string(data) != "run-a-data" {
		t.Fatalf("staged read = %q, %v", data, err)
	}

	// The snapshot is pinned: mutating the parent does not change it.
	if err := src.WriteFile(context.Background(), "runs/2005/a.dat", []byte("MUTATED")); err != nil {
		t.Fatal(err)
	}
	data, _ = staged.ReadFile(context.Background(), "runs/2005/a.dat", 0, -1)
	if !bytes.Equal(data, []byte("run-a-data")) {
		t.Fatalf("staged data changed: %q", data)
	}

	// Glob queries work on the staged set.
	infos, err := staged.ListFiles(context.Background(), "**/*.dat")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list = %v, %v", infos, err)
	}
	list, err := staged.GenericQuery(context.Background(), LanguageGlob, "")
	if err != nil || len(list.FindAll(NSDAIF, "File")) != 2 {
		t.Fatalf("query = %v, %v", list, err)
	}

	// Destroy releases the snapshot.
	if err := ds.DestroyDataResource(context.Background(), staged.AbstractName()); err != nil {
		t.Fatal(err)
	}
	if len(staged.Names()) != 0 {
		t.Fatal("release did not drop the snapshot")
	}
}

func TestFactoryErrors(t *testing.T) {
	src := seedFiles(t)
	ds := core.NewDataService("ds")
	if _, err := FileSelectFactory(context.Background(), src, ds, "[bad", nil); err == nil {
		t.Fatal("bad pattern should fail")
	}
	unreadable := NewFileDataResource(filestore.NewStore("s"),
		WithFileConfiguration(core.Configuration{Readable: false}))
	var naf *core.NotAuthorizedFault
	if _, err := FileSelectFactory(context.Background(), unreadable, ds, "", nil); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
}

func TestStandardConfigurationMaps(t *testing.T) {
	maps := StandardConfigurationMaps()
	if len(maps) != 1 || maps[0].MessageName != "FileSelectFactoryRequest" {
		t.Fatalf("maps = %+v", maps)
	}
}
