package daif

import (
	"context"
	"fmt"
	"sync"

	"dais/internal/core"
	"dais/internal/filestore"
	"dais/internal/xmlutil"
)

// StagedFileResource is a derived, service-managed resource holding a
// pinned snapshot of the files a glob selection matched at creation
// time — the data-staging pattern of grid computing: select, pin, hand
// the EPR to whoever needs the data, destroy (or let soft-state
// lifetime reclaim it) when done.
type StagedFileResource struct {
	core.BaseResource
	mu    sync.RWMutex
	snap  *filestore.Store
	names []string
}

// NewStagedFileResource snapshots the files matching the pattern.
func NewStagedFileResource(parent string, src *filestore.Store, pattern string, cfg core.Configuration) (*StagedFileResource, error) {
	infos, err := src.List(pattern)
	if err != nil {
		return nil, &core.InvalidExpressionFault{Detail: err.Error()}
	}
	snap := filestore.NewStore("staged")
	names := make([]string, 0, len(infos))
	for _, fi := range infos {
		data, err := src.ReadAll(fi.Name)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		if err := snap.Write(fi.Name, data); err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		names = append(names, fi.Name)
	}
	return &StagedFileResource{
		BaseResource: core.BaseResource{
			Name:   core.NewAbstractName("staged"),
			Parent: parent,
			Mgmt:   core.ServiceManaged,
			Config: cfg,
		},
		snap:  snap,
		names: names,
	}, nil
}

// QueryLanguages implements core.DataResource.
func (r *StagedFileResource) QueryLanguages() []string { return []string{LanguageGlob} }

// DatasetFormats implements core.DataResource.
func (r *StagedFileResource) DatasetFormats() []string { return []string{FormatBinary} }

// GenericQuery lists the staged files matching a glob.
func (r *StagedFileResource) GenericQuery(ctx context.Context, languageURI, expression string) (*xmlutil.Element, error) {
	if languageURI != LanguageGlob {
		return nil, &core.InvalidLanguageFault{Language: languageURI}
	}
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	infos, err := r.snap.List(expression)
	if err != nil {
		return nil, core.QueryFault(ctx, err)
	}
	return FileListElement(infos), nil
}

// ExtendedProperties implements core.DataResource.
func (r *StagedFileResource) ExtendedProperties() []*xmlutil.Element {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := xmlutil.NewElement(NSDAIF, "NumberOfFiles")
	n.SetText(fmt.Sprintf("%d", r.snap.Count()))
	sz := xmlutil.NewElement(NSDAIF, "TotalSize")
	sz.SetText(fmt.Sprintf("%d", r.snap.TotalSize()))
	return []*xmlutil.Element{n, sz}
}

// Release implements core.DataResource by dropping the snapshot.
func (r *StagedFileResource) Release() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snap = filestore.NewStore("released")
	r.names = nil
	return nil
}

// Names lists the staged file names.
func (r *StagedFileResource) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// ReadFile reads a byte range from a staged file.
func (r *StagedFileResource) ReadFile(ctx context.Context, name string, offset, count int64) ([]byte, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	data, err := r.snap.Read(name, offset, count)
	if err != nil {
		return nil, core.QueryFault(ctx, err)
	}
	return data, nil
}

// ListFiles lists staged files matching a glob.
func (r *StagedFileResource) ListFiles(ctx context.Context, pattern string) ([]filestore.FileInfo, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	infos, err := r.snap.List(pattern)
	if err != nil {
		return nil, core.QueryFault(ctx, err)
	}
	return infos, nil
}

// FileSelectFactory implements the WS-DAIF indirect access pattern: it
// snapshots the files matching the glob into a new service-managed
// resource, registers it with the target data service and returns it;
// the service layer wraps it in an EPR (paper Fig. 3's pattern applied
// to files).
func FileSelectFactory(ctx context.Context, src *FileDataResource, target *core.DataService, pattern string,
	cfg *core.Configuration) (*StagedFileResource, error) {
	if err := core.CheckReadable(src); err != nil {
		return nil, err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return nil, err
	}
	c := core.DefaultConfiguration()
	if cfg != nil {
		c = *cfg
	}
	res, err := NewStagedFileResource(src.AbstractName(), src.Store(), pattern, c)
	if err != nil {
		return nil, err
	}
	target.AddResource(res)
	return res, nil
}

// StandardConfigurationMaps returns the ConfigurationMap entries a file
// data service advertises.
func StandardConfigurationMaps() []core.ConfigurationMapEntry {
	return []core.ConfigurationMapEntry{{
		MessageName: "FileSelectFactoryRequest",
		PortType:    "daif:FileAccess",
		Default:     core.DefaultConfiguration(),
	}}
}
