// Package daif implements an experimental WS-DAIF files realisation of
// the WS-DAI core.
//
// The paper's conclusions record that beyond the relational and XML
// realisations, "different groups are exploring the development of
// additional realisations for object databases, ontologies and files"
// (§6), with preliminary drafts extending the base interfaces to files
// (§4.1). This package follows the same extension recipe WS-DAIR and
// WS-DAIX use: an externally managed data resource wrapping an existing
// system (a file store), direct access operations (FileAccess: ranged
// reads, writes, listing, metadata), and an indirect factory
// (FileSelectFactory) that derives a service-managed resource from a
// glob selection — the grid file-staging pattern, where a selection of
// files is pinned and its EPR handed to a third party.
package daif

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/filestore"
	"dais/internal/xmlutil"
)

// NSDAIF is the namespace of the files realisation.
const NSDAIF = "http://www.ggf.org/namespaces/2005/12/WS-DAIF"

// LanguageGlob identifies the glob selection language accepted by
// GenericQuery and the select factory.
const LanguageGlob = NSDAIF + "/glob"

// FormatBinary is the single dataset format file resources return
// (base64 inside XML messages at the service layer).
const FormatBinary = "http://www.iana.org/assignments/media-types/application/octet-stream"

// FileDataResource is an externally managed file data resource: a
// WS-DAIF wrapper around a directory tree in a file store.
type FileDataResource struct {
	core.BaseResource
	store *filestore.Store
}

// FileOption configures a FileDataResource.
type FileOption func(*FileDataResource)

// WithFileConfiguration overrides the default configuration.
func WithFileConfiguration(c core.Configuration) FileOption {
	return func(r *FileDataResource) { r.Config = c }
}

// NewFileDataResource wraps a store as a data resource.
func NewFileDataResource(store *filestore.Store, opts ...FileOption) *FileDataResource {
	r := &FileDataResource{
		BaseResource: core.BaseResource{
			Name: core.NewAbstractName("file"),
			Mgmt: core.ExternallyManaged,
			Config: core.Configuration{
				Description:          "file data resource " + store.Name(),
				Readable:             true,
				Writeable:            true,
				TransactionIsolation: "READ COMMITTED",
			},
		},
		store: store,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Store exposes the underlying store.
func (r *FileDataResource) Store() *filestore.Store { return r.store }

// QueryLanguages implements core.DataResource.
func (r *FileDataResource) QueryLanguages() []string { return []string{LanguageGlob} }

// DatasetFormats implements core.DataResource.
func (r *FileDataResource) DatasetFormats() []string { return []string{FormatBinary} }

// GenericQuery implements core.DataResource: a glob expression lists
// matching files as a FileList element.
func (r *FileDataResource) GenericQuery(ctx context.Context, languageURI, expression string) (*xmlutil.Element, error) {
	if languageURI != LanguageGlob {
		return nil, &core.InvalidLanguageFault{Language: languageURI}
	}
	infos, err := r.ListFiles(ctx, expression)
	if err != nil {
		return nil, err
	}
	return FileListElement(infos), nil
}

// ExtendedProperties implements core.DataResource with file-store
// metadata.
func (r *FileDataResource) ExtendedProperties() []*xmlutil.Element {
	n := xmlutil.NewElement(NSDAIF, "NumberOfFiles")
	n.SetText(fmt.Sprintf("%d", r.store.Count()))
	sz := xmlutil.NewElement(NSDAIF, "TotalSize")
	sz.SetText(fmt.Sprintf("%d", r.store.TotalSize()))
	return []*xmlutil.Element{n, sz}
}

// Release implements core.DataResource; external files persist.
func (r *FileDataResource) Release() error { return nil }

// --- FileAccess operations ---

// ReadFile implements FileAccess.ReadFile: up to count bytes from
// offset (count < 0 reads to the end).
func (r *FileDataResource) ReadFile(ctx context.Context, name string, offset, count int64) ([]byte, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return nil, err
	}
	data, err := r.store.Read(name, offset, count)
	if err != nil {
		return nil, core.QueryFault(ctx, err)
	}
	return data, nil
}

// WriteFile implements FileAccess.WriteFile (full replace).
func (r *FileDataResource) WriteFile(ctx context.Context, name string, data []byte) error {
	if err := core.CheckWriteable(r); err != nil {
		return err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return err
	}
	if err := r.store.Write(name, data); err != nil {
		return core.QueryFault(ctx, err)
	}
	return nil
}

// AppendFile implements FileAccess.AppendFile.
func (r *FileDataResource) AppendFile(ctx context.Context, name string, data []byte) error {
	if err := core.CheckWriteable(r); err != nil {
		return err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return err
	}
	if err := r.store.Append(name, data); err != nil {
		return core.QueryFault(ctx, err)
	}
	return nil
}

// DeleteFile implements FileAccess.DeleteFile.
func (r *FileDataResource) DeleteFile(ctx context.Context, name string) error {
	if err := core.CheckWriteable(r); err != nil {
		return err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return err
	}
	if err := r.store.Delete(name); err != nil {
		return core.QueryFault(ctx, err)
	}
	return nil
}

// ListFiles implements FileAccess.ListFiles over a glob pattern.
func (r *FileDataResource) ListFiles(ctx context.Context, pattern string) ([]filestore.FileInfo, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return nil, err
	}
	infos, err := r.store.List(pattern)
	if err != nil {
		return nil, core.QueryFault(ctx, err)
	}
	return infos, nil
}

// StatFile implements FileAccess.StatFile.
func (r *FileDataResource) StatFile(ctx context.Context, name string) (filestore.FileInfo, error) {
	if err := core.CheckReadable(r); err != nil {
		return filestore.FileInfo{}, err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return filestore.FileInfo{}, err
	}
	info, err := r.store.Stat(name)
	if err != nil {
		return filestore.FileInfo{}, core.QueryFault(ctx, err)
	}
	return info, nil
}

// FileListElement renders file metadata as a FileList element.
func FileListElement(infos []filestore.FileInfo) *xmlutil.Element {
	list := xmlutil.NewElement(NSDAIF, "FileList")
	for _, fi := range infos {
		f := list.Add(NSDAIF, "File")
		f.SetAttr("", "name", fi.Name)
		f.SetAttr("", "size", fmt.Sprintf("%d", fi.Size))
		f.SetAttr("", "modified", fi.Modified.UTC().Format("2006-01-02T15:04:05.999999999Z07:00"))
	}
	return list
}
