package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/gateway"
	"dais/internal/resil"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/sqlengine"
)

// E16Row is one row of experiment E16 (federation gateway overhead):
// the cost of putting daisgw in front of a DAIS backend, and how an
// alias scatter-gather over three shards compares with one node
// scanning the same total rows.
type E16Row struct {
	Rows        int           `json:"rows"`
	DirectPer   time.Duration `json:"direct_per_ns"`   // consumer → backend
	GatewayPer  time.Duration `json:"gateway_per_ns"`  // consumer → gateway → backend
	ProxyFactor float64       `json:"proxy_factor"`    // gateway ÷ direct
	SinglePer   time.Duration `json:"single_per_ns"`   // one node scans all rows
	ScatterPer  time.Duration `json:"scatter_per_ns"`  // 3-shard alias scatter-gather
	ScatterRate float64       `json:"scatter_factor"`  // scatter ÷ single
	ScatterRows int           `json:"scatter_rows_ok"` // rows the merged result returned
}

// e16Backend serves one relational endpoint seeded with emp rows in
// [lo, hi] (contiguous partition of the id space).
func e16Backend(name string, lo, hi int) (*httptest.Server, *dair.SQLDataResource, func()) {
	eng := sqlengine.New(name)
	eng.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, payload VARCHAR(64), num DOUBLE)`)
	sess := eng.NewSession()
	for i := lo; i <= hi; i++ {
		if _, err := sess.Execute(`INSERT INTO emp VALUES (?, ?, ?)`,
			sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("row-%06d-payload-abcdefghij", i)),
			sqlengine.NewDouble(float64(i)*1.5)); err != nil {
			panic(err)
		}
	}
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService(name, core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc)
	ep.Register(res)
	ts := httptest.NewServer(ep)
	svc.SetAddress(ts.URL)
	return ts, res, ts.Close
}

// RunE16 measures the federation gateway against direct access. For
// each size: a consumer queries the full table directly on its backend
// and again through the gateway (pure proxy overhead: same backend,
// same rows, one extra hop + EPR-preserving re-encode), then a
// single-node GenericQuery over all rows is compared with the alias
// scatter-gather reassembling the identical rowset from three
// contiguous shards.
func RunE16(sizes []int, iters int) ([]E16Row, error) {
	ctx := context.Background()
	maxRows := 0
	for _, s := range sizes {
		if s > maxRows {
			maxRows = s
		}
	}

	// The solo node holds every row; three shards split them evenly.
	soloTS, soloRes, closeSolo := e16Backend("solo", 1, maxRows)
	defer closeSolo()
	third := maxRows / 3
	s1TS, s1Res, close1 := e16Backend("s1", 1, third)
	defer close1()
	s2TS, s2Res, close2 := e16Backend("s2", third+1, 2*third)
	defer close2()
	s3TS, s3Res, close3 := e16Backend("s3", 2*third+1, maxRows)
	defer close3()

	gw := gateway.New(gateway.Config{
		Backends: []string{soloTS.URL, s1TS.URL, s2TS.URL, s3TS.URL},
		Aliases: []gateway.Alias{{Name: "urn:dais:cluster:emp", Members: []gateway.Member{
			{Backend: s1TS.URL, Resource: s1Res.AbstractName()},
			{Backend: s2TS.URL, Resource: s2Res.AbstractName()},
			{Backend: s3TS.URL, Resource: s3Res.AbstractName()},
		}}},
		Observer:    nil,
		ObserverSet: true, // uninstrumented: E16 measures the data path
	})
	gwTS := httptest.NewServer(gw)
	defer gwTS.Close()
	gw.SetAddress(gwTS.URL)
	gw.Probe(ctx)

	// Zero resilience config: no retries or breaking on the measuring
	// consumer, so E16 times single attempts.
	c := client.NewResilient(nil, nil, resil.ClientConfig{})
	var out []E16Row
	for _, n := range sizes {
		query := fmt.Sprintf(`SELECT id, payload, num FROM emp WHERE id <= %d ORDER BY id`, n)
		row := E16Row{Rows: n}

		directRef := client.Ref(soloTS.URL, soloRes.AbstractName())
		gwRef := client.Ref(gwTS.URL, soloRes.AbstractName())
		start := time.Now()
		for i := 0; i < iters; i++ {
			res, err := c.SQLExecute(ctx, directRef, query, nil, "")
			if err != nil {
				return nil, err
			}
			if len(res.Set.Rows) != n {
				return nil, fmt.Errorf("E16: direct returned %d rows, want %d", len(res.Set.Rows), n)
			}
		}
		row.DirectPer = time.Since(start) / time.Duration(iters)

		start = time.Now()
		for i := 0; i < iters; i++ {
			res, err := c.SQLExecute(ctx, gwRef, query, nil, "")
			if err != nil {
				return nil, err
			}
			if len(res.Set.Rows) != n {
				return nil, fmt.Errorf("E16: gateway returned %d rows, want %d", len(res.Set.Rows), n)
			}
		}
		row.GatewayPer = time.Since(start) / time.Duration(iters)
		row.ProxyFactor = float64(row.GatewayPer) / float64(row.DirectPer)

		// Scatter-gather: the alias reassembles the same rowset from
		// three shards; the solo GenericQuery is the one-node baseline.
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := c.GenericQuery(ctx, directRef, dair.LanguageSQL92, query); err != nil {
				return nil, err
			}
		}
		row.SinglePer = time.Since(start) / time.Duration(iters)

		aliasRef := client.Ref(gwTS.URL, "urn:dais:cluster:emp")
		var scatterRows int
		start = time.Now()
		for i := 0; i < iters; i++ {
			result, err := c.GenericQuery(ctx, aliasRef, dair.LanguageSQL92, query)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				set, err := rowset.DecodeSQLRowsetElement(result)
				if err != nil {
					return nil, err
				}
				scatterRows = len(set.Rows)
			}
		}
		row.ScatterPer = time.Since(start) / time.Duration(iters)
		row.ScatterRate = float64(row.ScatterPer) / float64(row.SinglePer)
		row.ScatterRows = scatterRows
		if scatterRows != n {
			return nil, fmt.Errorf("E16: scatter returned %d rows, want %d", scatterRows, n)
		}
		out = append(out, row)
	}
	return out, nil
}
