package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/dair"
	"dais/internal/filestore"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
)

// E1Row is one row of experiment E1 (direct vs indirect access, Fig. 1).
type E1Row struct {
	Rows           int
	DirectLatency  time.Duration
	DirectBytes    int64 // bytes received by the requesting consumer
	IndirectSetup  time.Duration
	IndirectBytes  int64         // bytes received by the requesting consumer (EPR only)
	IndirectTotal  time.Duration // setup + third-party pull
	ThirdPartyPull int64         // bytes the eventual reader receives
}

// RunE1 measures the two access patterns for growing result sizes.
func RunE1(sizes []int) ([]E1Row, error) {
	ctx := context.Background()
	maxRows := 0
	for _, s := range sizes {
		if s > maxRows {
			maxRows = s
		}
	}
	f, err := NewSQLFixture(FixtureOption{Rows: maxRows, Concurrent: true, WSRF: true})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var out []E1Row
	for _, n := range sizes {
		query := fmt.Sprintf(`SELECT id, payload, num FROM data ORDER BY id LIMIT %d`, n)
		row := E1Row{Rows: n}

		// Direct: the data comes back to the requesting consumer.
		c1 := client.New(nil)
		start := time.Now()
		res, err := c1.SQLExecute(ctx, f.Ref, query, nil, "")
		if err != nil {
			return nil, err
		}
		row.DirectLatency = time.Since(start)
		row.DirectBytes = c1.BytesReceived()
		if len(res.Set.Rows) != n {
			return nil, fmt.Errorf("E1: direct returned %d rows, want %d", len(res.Set.Rows), n)
		}

		// Indirect: the requesting consumer gets only an EPR; a third
		// party pulls the data later.
		c2 := client.New(nil)
		start = time.Now()
		respRef, err := c2.SQLExecuteFactory(ctx, f.Ref, query, nil, nil)
		if err != nil {
			return nil, err
		}
		rowsetRef, err := c2.SQLRowsetFactory(ctx, respRef, "", 0, nil)
		if err != nil {
			return nil, err
		}
		row.IndirectSetup = time.Since(start)
		row.IndirectBytes = c2.BytesReceived()

		c3 := client.New(nil)
		set, err := c3.GetTuplesSet(ctx, rowsetRef, 1, n+1)
		if err != nil {
			return nil, err
		}
		row.IndirectTotal = time.Since(start)
		row.ThirdPartyPull = c3.BytesReceived()
		if len(set.Rows) != n {
			return nil, fmt.Errorf("E1: indirect returned %d rows, want %d", len(set.Rows), n)
		}
		c2.DestroyDataResource(ctx, rowsetRef) //nolint:errcheck
		c2.DestroyDataResource(ctx, respRef)   //nolint:errcheck
		out = append(out, row)
	}
	return out, nil
}

// E2Row is one row of experiment E2 (third-party delivery, Fig. 5).
type E2Row struct {
	Rows        int
	RelayBytes  int64 // bytes through consumer 1 when it relays the data
	EPRBytes    int64 // bytes through consumer 1 with indirect hand-off
	ReaderBytes int64 // bytes the final reader pulls either way
}

// RunE2 compares relaying data through the first consumer against
// handing over an EPR.
func RunE2(sizes []int) ([]E2Row, error) {
	ctx := context.Background()
	maxRows := 0
	for _, s := range sizes {
		if s > maxRows {
			maxRows = s
		}
	}
	f, err := NewSQLFixture(FixtureOption{Rows: maxRows, Concurrent: true, WSRF: true})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var out []E2Row
	for _, n := range sizes {
		query := fmt.Sprintf(`SELECT id, payload, num FROM data ORDER BY id LIMIT %d`, n)
		row := E2Row{Rows: n}

		// Relay: consumer 1 pulls the whole result (then would forward
		// it out of band, costing at least as much again).
		relay := client.New(nil)
		if _, err := relay.SQLExecute(ctx, f.Ref, query, nil, ""); err != nil {
			return nil, err
		}
		row.RelayBytes = relay.BytesReceived()

		// Hand-off: consumer 1 only moves factory responses (EPRs).
		c1 := client.New(nil)
		respRef, err := c1.SQLExecuteFactory(ctx, f.Ref, query, nil, nil)
		if err != nil {
			return nil, err
		}
		rowsetRef, err := c1.SQLRowsetFactory(ctx, respRef, "", 0, nil)
		if err != nil {
			return nil, err
		}
		row.EPRBytes = c1.BytesReceived()

		reader := client.New(nil)
		if _, err := reader.GetTuplesSet(ctx, rowsetRef, 1, n+1); err != nil {
			return nil, err
		}
		row.ReaderBytes = reader.BytesReceived()
		c1.DestroyDataResource(ctx, rowsetRef) //nolint:errcheck
		c1.DestroyDataResource(ctx, respRef)   //nolint:errcheck
		out = append(out, row)
	}
	return out, nil
}

// E3Row is one row of experiment E3 (WSRF property granularity, §5).
type E3Row struct {
	CatalogTables  int
	WholeDocBytes  int64
	WholeDocTime   time.Duration
	SinglePropByte int64
	SinglePropTime time.Duration
}

// RunE3 fattens the property document (via catalog size reflected in
// CIMDescription) and compares whole-document retrieval against WSRF
// fine-grained access.
func RunE3(tableCounts []int) ([]E3Row, error) {
	ctx := context.Background()
	var out []E3Row
	for _, tables := range tableCounts {
		f, err := NewSQLFixture(FixtureOption{Rows: 10, Concurrent: true, WSRF: true, ExtraTables: tables})
		if err != nil {
			return nil, err
		}
		row := E3Row{CatalogTables: tables}

		c := client.New(nil)
		start := time.Now()
		if _, err := c.GetPropertyDocument(ctx, f.Ref); err != nil {
			f.Close()
			return nil, err
		}
		row.WholeDocTime = time.Since(start)
		row.WholeDocBytes = c.BytesReceived()

		c2 := client.New(nil)
		start = time.Now()
		props, err := c2.GetResourceProperty(ctx, f.Ref, "Readable")
		if err != nil {
			f.Close()
			return nil, err
		}
		row.SinglePropTime = time.Since(start)
		row.SinglePropByte = c2.BytesReceived()
		if len(props) != 1 {
			f.Close()
			return nil, fmt.Errorf("E3: expected one property, got %d", len(props))
		}
		f.Close()
		out = append(out, row)
	}
	return out, nil
}

// E4Row is one row of experiment E4 (GetTuples paging, §4.3).
type E4Row struct {
	PageSize  int
	Calls     int
	Total     time.Duration
	PerRow    time.Duration
	WireBytes int64
}

// RunE4 pages a fixed rowset with different page sizes.
func RunE4(totalRows int, pageSizes []int) ([]E4Row, error) {
	ctx := context.Background()
	f, err := NewSQLFixture(FixtureOption{Rows: totalRows, Concurrent: true, WSRF: true})
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c := client.New(nil)
	respRef, err := c.SQLExecuteFactory(ctx, f.Ref, `SELECT id, payload, num FROM data ORDER BY id`, nil, nil)
	if err != nil {
		return nil, err
	}
	rowsetRef, err := c.SQLRowsetFactory(ctx, respRef, "", 0, nil)
	if err != nil {
		return nil, err
	}

	var out []E4Row
	for _, page := range pageSizes {
		pc := client.New(nil)
		start := time.Now()
		calls, got := 0, 0
		for pos := 1; ; pos += page {
			set, err := pc.GetTuplesSet(ctx, rowsetRef, pos, page)
			if err != nil {
				return nil, err
			}
			calls++
			got += len(set.Rows)
			if len(set.Rows) < page {
				break
			}
		}
		total := time.Since(start)
		if got != totalRows {
			return nil, fmt.Errorf("E4: paged %d rows, want %d", got, totalRows)
		}
		out = append(out, E4Row{
			PageSize:  page,
			Calls:     calls,
			Total:     total,
			PerRow:    total / time.Duration(totalRows),
			WireBytes: pc.BytesReceived(),
		})
	}
	return out, nil
}

// E5Row is one row of experiment E5 (thin vs thick wrappers, §2.1).
type E5Row struct {
	Statement string
	ThinPer   time.Duration
	ThickPer  time.Duration
	Overhead  float64 // thick/thin
}

// RunE5 measures the wrapper strategies in-process (the wrapper cost
// must not be drowned in HTTP noise).
func RunE5(iters int) ([]E5Row, error) {
	ctx := context.Background()
	eng := sqlengine.New("bench")
	eng.MustExec(`CREATE TABLE data (id INTEGER PRIMARY KEY, payload VARCHAR(64))`)
	for i := 0; i < 100; i++ {
		eng.MustExec(`INSERT INTO data VALUES (?, ?)`,
			sqlengine.NewInt(int64(i)), sqlengine.NewString("p"))
	}
	thin := dair.NewSQLDataResource(eng)
	thick := dair.NewSQLDataResource(eng, dair.WithWrapper(dair.ThickWrapper{}))

	statements := []string{
		`SELECT id FROM data WHERE id = 42`,
		`SELECT id, payload FROM data WHERE id > 10 AND id < 60 ORDER BY id DESC LIMIT 5`,
	}
	var out []E5Row
	for _, stmt := range statements {
		measure := func(r *dair.SQLDataResource) (time.Duration, error) {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := r.SQLExecute(ctx, stmt, nil); err != nil {
					return 0, err
				}
			}
			return time.Since(start) / time.Duration(iters), nil
		}
		thinPer, err := measure(thin)
		if err != nil {
			return nil, err
		}
		thickPer, err := measure(thick)
		if err != nil {
			return nil, err
		}
		out = append(out, E5Row{
			Statement: stmt,
			ThinPer:   thinPer,
			ThickPer:  thickPer,
			Overhead:  float64(thickPer) / float64(thinPer),
		})
	}
	return out, nil
}

// E6Row is one row of experiment E6 (ConcurrentAccess, §4.2). A
// service with ConcurrentAccess=false serialises every request, so a
// short query queues behind long-running scans (head-of-line
// blocking); with ConcurrentAccess=true readers overlap. The short
// query's latency under background load is the observable — it holds
// even on a single CPU, where throughput scaling would not.
type E6Row struct {
	LongScanners    int           // background clients running full scans
	ShortConcurrent time.Duration // short-query latency, ConcurrentAccess=true
	ShortSerialized time.Duration // short-query latency, ConcurrentAccess=false
	SlowdownSerial  float64
}

// SlowWrapper simulates an I/O-bound backing DBMS: every statement
// spends a fixed wall-clock delay before reaching the engine. The
// delay yields the CPU, so experiments using it isolate service-level
// serialisation from CPU contention (the test machines this harness
// targets may have a single core).
type SlowWrapper struct{ Delay time.Duration }

// Prepare implements dair.Wrapper.
func (w SlowWrapper) Prepare(s string) (string, error) {
	time.Sleep(w.Delay)
	return s, nil
}

// RunE6 measures short-query latency under long-query load for both
// ConcurrentAccess settings. The long queries hit a slow (simulated
// I/O-bound) resource; the probe hits a fast resource on the same
// service, so the only coupling between them is the service gate.
func RunE6(scannerCounts []int, probes int) ([]E6Row, error) {
	ctx := context.Background()
	run := func(concurrent bool, scanners int) (time.Duration, error) {
		eng := sqlengine.New("e6")
		eng.MustExec(`CREATE TABLE data (id INTEGER PRIMARY KEY, num DOUBLE)`)
		eng.MustExec(`INSERT INTO data VALUES (1, 1.5), (2, 2.5)`)
		slow := dair.NewSQLDataResource(eng, dair.WithWrapper(SlowWrapper{Delay: 10 * time.Millisecond}))
		fast := dair.NewSQLDataResource(eng)
		svc := core.NewDataService("e6", core.WithConcurrentAccess(concurrent))
		ep := service.NewEndpoint(svc)
		ep.Register(slow)
		ep.Register(fast)
		f := &SQLFixture{Engine: eng, Endpoint: ep, Client: client.New(nil)}
		if err := f.serve(ep); err != nil {
			return 0, err
		}
		defer f.Close()
		slowRef := client.Ref(svc.Address(), slow.AbstractName())
		fastRef := client.Ref(svc.Address(), fast.AbstractName())

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < scanners; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := client.New(nil)
				for {
					select {
					case <-stop:
						return
					default:
					}
					c.SQLExecute(ctx, slowRef, `SELECT COUNT(*) FROM data`, nil, "") //nolint:errcheck
				}
			}()
		}
		// Let the long queries saturate the service before probing.
		time.Sleep(20 * time.Millisecond)
		c := client.New(nil)
		var total time.Duration
		for i := 0; i < probes; i++ {
			start := time.Now()
			if _, err := c.SQLExecute(ctx, fastRef, `SELECT COUNT(*) FROM data WHERE id = 1`, nil, ""); err != nil {
				close(stop)
				wg.Wait()
				return 0, err
			}
			total += time.Since(start)
		}
		close(stop)
		wg.Wait()
		return total / time.Duration(probes), nil
	}

	var out []E6Row
	for _, n := range scannerCounts {
		conc, err := run(true, n)
		if err != nil {
			return nil, err
		}
		serial, err := run(false, n)
		if err != nil {
			return nil, err
		}
		out = append(out, E6Row{
			LongScanners:    n,
			ShortConcurrent: conc,
			ShortSerialized: serial,
			SlowdownSerial:  float64(serial) / float64(conc),
		})
	}
	return out, nil
}

// E7Row is one row of experiment E7 (SOAP wrapper overhead, §3).
type E7Row struct {
	Rows        int
	EnginePer   time.Duration // raw engine execution
	SOAPPer     time.Duration // full SOAP/HTTP round trip
	OverheadPer time.Duration // difference
	Factor      float64
}

// RunE7 decomposes the wrapper cost by executing the same statement
// in-process and over the wire.
func RunE7(sizes []int, iters int) ([]E7Row, error) {
	ctx := context.Background()
	maxRows := 0
	for _, s := range sizes {
		if s > maxRows {
			maxRows = s
		}
	}
	f, err := NewSQLFixture(FixtureOption{Rows: maxRows, Concurrent: true, WSRF: false})
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c := client.New(nil)

	var out []E7Row
	for _, n := range sizes {
		query := fmt.Sprintf(`SELECT id, payload, num FROM data ORDER BY id LIMIT %d`, n)
		sess := f.Engine.NewSession()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := sess.Execute(query); err != nil {
				return nil, err
			}
		}
		enginePer := time.Since(start) / time.Duration(iters)

		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := c.SQLExecute(ctx, f.Ref, query, nil, ""); err != nil {
				return nil, err
			}
		}
		soapPer := time.Since(start) / time.Duration(iters)
		out = append(out, E7Row{
			Rows:        n,
			EnginePer:   enginePer,
			SOAPPer:     soapPer,
			OverheadPer: soapPer - enginePer,
			Factor:      float64(soapPer) / float64(enginePer),
		})
	}
	return out, nil
}

// E8Row is one row of experiment E8 (soft-state lifetime, §5).
type E8Row struct {
	Resources        int
	ExplicitDestroy  time.Duration // total time for K explicit destroys
	SoftStateSweep   time.Duration // one sweep collecting K expired
	LeakedWithout    int           // resources left when nobody cleans up
	LeakedWithReaper int           // resources left after the sweep
}

// RunE8 creates K derived resources and compares explicit destruction
// with scheduled termination + reaper sweep.
func RunE8(counts []int) ([]E8Row, error) {
	ctx := context.Background()
	var out []E8Row
	for _, k := range counts {
		f, err := NewSQLFixture(FixtureOption{Rows: 10, Concurrent: true, WSRF: true})
		if err != nil {
			return nil, err
		}
		c := client.New(nil)
		row := E8Row{Resources: k}

		// Explicit destroy path.
		refs := make([]client.ResourceRef, 0, k)
		for i := 0; i < k; i++ {
			r, err := c.SQLExecuteFactory(ctx, f.Ref, `SELECT id FROM data`, nil, nil)
			if err != nil {
				f.Close()
				return nil, err
			}
			refs = append(refs, r)
		}
		start := time.Now()
		for _, r := range refs {
			if err := c.DestroyDataResource(ctx, r); err != nil {
				f.Close()
				return nil, err
			}
		}
		row.ExplicitDestroy = time.Since(start)

		// Soft-state path: schedule termination in the past, then sweep.
		past := time.Now().Add(-time.Millisecond)
		for i := 0; i < k; i++ {
			r, err := c.SQLExecuteFactory(ctx, f.Ref, `SELECT id FROM data`, nil, nil)
			if err != nil {
				f.Close()
				return nil, err
			}
			if _, err := c.SetTerminationTime(ctx, r, &past); err != nil {
				f.Close()
				return nil, err
			}
		}
		row.LeakedWithout = len(f.Endpoint.Service().GetResourceList()) - 1 // minus the base resource
		start = time.Now()
		swept := f.Endpoint.WSRF().SweepExpired()
		row.SoftStateSweep = time.Since(start)
		if len(swept) != k {
			f.Close()
			return nil, fmt.Errorf("E8: swept %d, want %d", len(swept), k)
		}
		row.LeakedWithReaper = len(f.Endpoint.Service().GetResourceList()) - 1
		f.Close()
		out = append(out, row)
	}
	return out, nil
}

// E9Row is one row of experiment E9 (dataset formats, §4.1).
type E9Row struct {
	Format    string
	Rows      int
	Bytes     int
	EncodePer time.Duration
	DecodePer time.Duration
}

// RunE9 encodes/decodes the same result set in every registered format.
func RunE9(rows, iters int) ([]E9Row, error) {
	set := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{
			{Name: "id", Type: sqlengine.TypeInteger, Table: "data"},
			{Name: "payload", Type: sqlengine.TypeVarchar, Table: "data"},
			{Name: "num", Type: sqlengine.TypeDouble, Table: "data"},
		},
	}
	for i := 0; i < rows; i++ {
		set.Rows = append(set.Rows, []sqlengine.Value{
			sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("row-%06d-payload-abcdefghij", i)),
			sqlengine.NewDouble(float64(i) * 1.5),
		})
	}
	reg := rowset.NewRegistry()
	var out []E9Row
	for _, uri := range reg.URIs() {
		codec, err := reg.Lookup(uri)
		if err != nil {
			return nil, err
		}
		var data []byte
		start := time.Now()
		for i := 0; i < iters; i++ {
			data, err = codec.Encode(set)
			if err != nil {
				return nil, err
			}
		}
		encPer := time.Since(start) / time.Duration(iters)
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := codec.Decode(data); err != nil {
				return nil, err
			}
		}
		decPer := time.Since(start) / time.Duration(iters)
		out = append(out, E9Row{Format: uri, Rows: rows, Bytes: len(data), EncodePer: encPer, DecodePer: decPer})
	}
	return out, nil
}

// E10Row is one row of experiment E10 (transaction properties, §4.2).
type E10Row struct {
	Mode         string
	UpdatesPer   time.Duration
	DirtyReads   int // anomalies observed by a concurrent reader
	LostAfterErr int // updates surviving a mid-batch failure
}

// RunE10 exercises the TransactionInitiation modes and shows the
// isolation difference between READ UNCOMMITTED and READ COMMITTED.
func RunE10(iters int) ([]E10Row, error) {
	ctx := context.Background()
	var out []E10Row
	for _, mode := range []core.TransactionInitiation{
		core.TransactionNotSupported,
		core.TransactionPerMessage,
		core.TransactionConsumerControlled,
	} {
		eng := sqlengine.New("bench")
		eng.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)`)
		eng.MustExec(`INSERT INTO acct VALUES (1, 0)`)
		res := dair.NewSQLDataResource(eng, dair.WithConfiguration(core.Configuration{
			Readable: true, Writeable: true,
			TransactionInitiation: mode,
			TransactionIsolation:  sqlengine.ReadCommitted.String(),
		}))
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := res.SQLExecute(ctx, `UPDATE acct SET bal = bal + 1`, nil); err != nil {
				return nil, err
			}
		}
		per := time.Since(start) / time.Duration(iters)
		out = append(out, E10Row{Mode: mode.String(), UpdatesPer: per})
	}

	// Dirty-read anomaly counting: a writer holds uncommitted changes
	// while readers at two isolation levels look at the row.
	anomalies := func(level sqlengine.IsolationLevel) (int, error) {
		// A READ COMMITTED reader blocks on the writer's exclusive
		// lock; a short timeout makes each blocked probe resolve fast.
		eng := sqlengine.New("iso", sqlengine.WithLockTimeout(25*time.Millisecond))
		eng.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)`)
		eng.MustExec(`INSERT INTO acct VALUES (1, 0)`)
		dirty := 0
		for i := 0; i < 20; i++ {
			writer := eng.NewSession()
			if _, err := writer.Execute(`BEGIN`); err != nil {
				return 0, err
			}
			if _, err := writer.Execute(`UPDATE acct SET bal = 999`); err != nil {
				return 0, err
			}
			reader := eng.NewSession()
			if err := reader.SetIsolation(level); err != nil {
				return 0, err
			}
			res, err := reader.Execute(`SELECT bal FROM acct`)
			if err == nil && res.Set.Rows[0][0].I == 999 {
				dirty++
			}
			if _, err := writer.Execute(`ROLLBACK`); err != nil {
				return 0, err
			}
		}
		return dirty, nil
	}
	dirtyRU, err := anomalies(sqlengine.ReadUncommitted)
	if err != nil {
		return nil, err
	}
	dirtyRC, err := anomalies(sqlengine.ReadCommitted)
	if err != nil {
		return nil, err
	}
	out = append(out,
		E10Row{Mode: "reader@" + sqlengine.ReadUncommitted.String(), DirtyReads: dirtyRU},
		E10Row{Mode: "reader@" + sqlengine.ReadCommitted.String(), DirtyReads: dirtyRC},
	)

	// Per-message atomicity: a failing multi-row statement must leave
	// nothing behind.
	eng := sqlengine.New("atomic")
	eng.MustExec(`CREATE TABLE u (id INTEGER PRIMARY KEY)`)
	res := dair.NewSQLDataResource(eng)
	res.SQLExecute(ctx, `INSERT INTO u VALUES (1)`, nil)           //nolint:errcheck
	res.SQLExecute(ctx, `INSERT INTO u VALUES (2), (1), (3)`, nil) //nolint:errcheck
	n, _ := eng.Database().TableRowCount("u")
	out = append(out, E10Row{Mode: "per-message atomicity", LostAfterErr: n - 1})
	return out, nil
}

// E11Row is one row of experiment E11 (WS-DAIF staging — the extension
// realisation applying the paper's third-party-delivery argument to
// files).
type E11Row struct {
	Files        int
	FileSize     int
	RelayBytes   int64         // bytes through the coordinator when it pulls everything
	StageBytes   int64         // bytes through the coordinator with select-and-stage
	StageLatency time.Duration // FileSelectFactory round trip
	ReaderBytes  int64         // bytes the analysis consumer pulls from the staged set
}

// RunE11 compares relaying file contents through the coordinator with
// the select-and-stage hand-off.
func RunE11(fileCounts []int, fileSize int) ([]E11Row, error) {
	ctx := context.Background()
	var out []E11Row
	for _, k := range fileCounts {
		store := filestore.NewStore("bench")
		payload := make([]byte, fileSize)
		for i := range payload {
			payload[i] = byte('a' + i%26)
		}
		for i := 0; i < k; i++ {
			if err := store.Write(fmt.Sprintf("runs/f-%04d.dat", i), payload); err != nil {
				return nil, err
			}
		}
		res := daif.NewFileDataResource(store)
		svc := core.NewDataService("files")
		ep := service.NewEndpoint(svc, service.WithWSRF())
		ep.Register(res)
		f := &SQLFixture{Endpoint: ep, Client: client.New(nil)}
		if err := f.serve(ep); err != nil {
			return nil, err
		}
		ref := client.Ref(svc.Address(), res.AbstractName())
		row := E11Row{Files: k, FileSize: fileSize}

		// Relay: the coordinator pulls every file itself.
		relay := client.New(nil)
		infos, err := relay.ListFiles(ctx, ref, "runs/*")
		if err != nil {
			f.Close()
			return nil, err
		}
		for _, fi := range infos {
			if _, err := relay.ReadFile(ctx, ref, fi.Name, 0, -1); err != nil {
				f.Close()
				return nil, err
			}
		}
		row.RelayBytes = relay.BytesReceived()

		// Stage: one factory call; only the EPR moves.
		coord := client.New(nil)
		start := time.Now()
		stagedRef, err := coord.FileSelectFactory(ctx, ref, "runs/*", nil)
		if err != nil {
			f.Close()
			return nil, err
		}
		row.StageLatency = time.Since(start)
		row.StageBytes = coord.BytesReceived()

		// The analysis consumer pulls the staged snapshot.
		reader := client.New(nil)
		staged, err := reader.ListFiles(ctx, stagedRef, "")
		if err != nil {
			f.Close()
			return nil, err
		}
		for _, fi := range staged {
			if _, err := reader.ReadFile(ctx, stagedRef, fi.Name, 0, -1); err != nil {
				f.Close()
				return nil, err
			}
		}
		row.ReaderBytes = reader.BytesReceived()
		coord.DestroyDataResource(ctx, stagedRef) //nolint:errcheck
		f.Close()
		out = append(out, row)
	}
	return out, nil
}

// E12Row is one row of experiment E12 (client- vs server-side latency
// percentiles). Client percentiles come from wall-clock timings around
// each call; server percentiles come from scraping the service's
// /metrics endpoint and estimating quantiles from the exported latency
// histogram — the same view an operator's monitoring stack would have.
type E12Row struct {
	Op                              string
	Calls                           int
	ClientP50, ClientP95, ClientP99 time.Duration
	ServerP50, ServerP95, ServerP99 time.Duration
}

// RunE12 drives a mixed workload against an instrumented fixture and
// reports latency percentiles from both vantage points. The spread
// between the columns is the transport + envelope cost the server-side
// histogram cannot see.
func RunE12(iters int) ([]E12Row, error) {
	ctx := context.Background()
	f, err := NewSQLFixture(FixtureOption{Rows: 500, Concurrent: true, WSRF: true})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	workloads := []struct {
		op   string
		call func() error
	}{
		{"SQLExecute", func() error {
			_, err := f.Client.SQLExecute(ctx, f.Ref, `SELECT id, payload, num FROM data ORDER BY id LIMIT 50`, nil, "")
			return err
		}},
		{"GetDataResourcePropertyDocument", func() error {
			_, err := f.Client.GetPropertyDocument(ctx, f.Ref)
			return err
		}},
		{"GenericQuery", func() error {
			_, err := f.Client.GenericQuery(ctx, f.Ref, dair.LanguageSQL92, `SELECT COUNT(*) FROM data`)
			return err
		}},
	}
	durations := map[string][]time.Duration{}
	for _, w := range workloads {
		for i := 0; i < iters; i++ {
			start := time.Now()
			if err := w.call(); err != nil {
				return nil, fmt.Errorf("E12: %s: %w", w.op, err)
			}
			durations[w.op] = append(durations[w.op], time.Since(start))
		}
	}

	samples, err := scrapeMetrics(f.MetricsURL)
	if err != nil {
		return nil, err
	}
	var out []E12Row
	for _, w := range workloads {
		ds := durations[w.op]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		filter := map[string]string{"side": telemetry.SideServer, "op": w.op}
		out = append(out, E12Row{
			Op:        w.op,
			Calls:     len(ds),
			ClientP50: pct(ds, 0.50),
			ClientP95: pct(ds, 0.95),
			ClientP99: pct(ds, 0.99),
			ServerP50: telemetry.QuantileFromSamples(samples, telemetry.MetricLatency, filter, 0.50),
			ServerP95: telemetry.QuantileFromSamples(samples, telemetry.MetricLatency, filter, 0.95),
			ServerP99: telemetry.QuantileFromSamples(samples, telemetry.MetricLatency, filter, 0.99),
		})
	}
	return out, nil
}

// scrapeMetrics fetches and parses a Prometheus text exposition.
func scrapeMetrics(url string) ([]telemetry.Sample, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("E12: scrape: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("E12: scrape: %w", err)
	}
	return telemetry.ParsePrometheus(string(body))
}

// pct reads a percentile from sorted wall-clock durations.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
