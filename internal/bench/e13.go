package bench

import (
	"context"
	"fmt"
	"testing"

	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/ops"
	"dais/internal/rowset"
	"dais/internal/soap"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

// E13Row is one row of experiment E13 (hot-path allocation profile):
// ns/op, B/op and allocs/op for one optimised code path, measured with
// the standard testing.B machinery so the numbers line up with
// `go test -bench` output.
type E13Row struct {
	Path     string `json:"path"`
	NsPerOp  int64  `json:"ns_per_op"`
	BPerOp   int64  `json:"b_per_op"`
	AllocsOp int64  `json:"allocs_per_op"`
}

// e13ResultSet builds the canonical three-column result set the paging
// and envelope paths are measured against.
func e13ResultSet(rows int) *sqlengine.ResultSet {
	set := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{
			{Name: "id", Type: sqlengine.TypeInteger, Table: "data"},
			{Name: "payload", Type: sqlengine.TypeVarchar, Table: "data"},
			{Name: "num", Type: sqlengine.TypeDouble, Table: "data"},
		},
	}
	for i := 0; i < rows; i++ {
		set.Rows = append(set.Rows, []sqlengine.Value{
			sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("row-%06d-payload-abcdefghij", i)),
			sqlengine.NewDouble(float64(i) * 1.5),
		})
	}
	return set
}

// E13EnvelopeMarshal measures serialising a realistic GetTuplesResponse
// envelope (100-row SQLRowset dataset plus a WS-Addressing-sized
// header) — the per-exchange encode cost every SOAP response pays.
func E13EnvelopeMarshal(b *testing.B) {
	set := e13ResultSet(100)
	codec := rowset.SQLRowsetCodec{}
	data, err := codec.Encode(set)
	if err != nil {
		b.Fatal(err)
	}
	resp := ops.GetTuples.NewResponse()
	resp.AppendChild(ops.DatasetElement(rowset.FormatSQLRowset, data))
	env := soap.NewEnvelope(resp)
	reqID := xmlutil.NewElement(soap.NSPipeline, "RequestID")
	reqID.SetText("bench-e13-request-id")
	env.AddHeader(reqID)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := env.Marshal(); len(out) == 0 {
			b.Fatal("empty envelope")
		}
	}
}

// E13GetTuplesPage measures RowsetAccess.GetTuples serving one 100-row
// page out of a 10 000-row service-managed rowset — the paging hot path
// of paper Fig. 5.
func E13GetTuplesPage(b *testing.B) {
	res, err := dair.NewSQLRowsetResource("parent", e13ResultSet(10000), "", core.DefaultConfiguration())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := res.GetTuples(context.Background(), 5001, 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(data) == 0 {
			b.Fatal("empty page")
		}
	}
}

// E13EquiJoin measures an equi-join query (2 000 orders × 200
// customers) through the engine — the joinRows hot path.
func E13EquiJoin(b *testing.B) {
	sess := e13JoinSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sess.Execute(`SELECT o.id, c.name, o.amount FROM orders o JOIN customers c ON o.cust = c.id WHERE o.amount > 10`)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Set.Rows) == 0 {
			b.Fatal("empty join result")
		}
	}
}

type e13Fataler interface{ Fatal(args ...any) }

// e13JoinSession seeds the two join tables shared by the benchmark and
// the daisbench runner.
func e13JoinSession(f e13Fataler) *sqlengine.Session {
	eng := sqlengine.New("bench")
	eng.MustExec(`CREATE TABLE customers (id INTEGER PRIMARY KEY, name VARCHAR(32))`)
	eng.MustExec(`CREATE TABLE orders (id INTEGER PRIMARY KEY, cust INTEGER, amount DOUBLE)`)
	sess := eng.NewSession()
	for i := 0; i < 200; i++ {
		if _, err := sess.Execute(`INSERT INTO customers VALUES (?, ?)`,
			sqlengine.NewInt(int64(i)), sqlengine.NewString(fmt.Sprintf("cust-%03d", i))); err != nil {
			f.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if _, err := sess.Execute(`INSERT INTO orders VALUES (?, ?, ?)`,
			sqlengine.NewInt(int64(i)), sqlengine.NewInt(int64(i%200)),
			sqlengine.NewDouble(float64(i%97))); err != nil {
			f.Fatal(err)
		}
	}
	return sess
}

// E13SQLExecuteRoundTrip measures the full client→server SQLExecute
// exchange (50 rows over loopback HTTP): every optimised layer —
// envelope pool, streaming encoder, transport keep-alive — composes
// here.
func E13SQLExecuteRoundTrip(b *testing.B) {
	f, err := NewSQLFixture(FixtureOption{Rows: 500, Concurrent: true, WSRF: true})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	query := `SELECT id, payload, num FROM data ORDER BY id LIMIT 50`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Client.SQLExecute(context.Background(), f.Ref, query, nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// E13SQLExecuteRoundTripCold is E13SQLExecuteRoundTrip with the
// prepared-plan cache disabled: every exchange re-parses and re-plans,
// isolating what the cache saves on the full round trip.
func E13SQLExecuteRoundTripCold(b *testing.B) {
	f, err := NewSQLFixture(FixtureOption{Rows: 500, Concurrent: true, WSRF: true, PlanCacheOff: true})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	query := `SELECT id, payload, num FROM data ORDER BY id LIMIT 50`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Client.SQLExecute(context.Background(), f.Ref, query, nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// e13RangeSession seeds the twin-column range table: k carries an
// ordered index, k_noix is an identical column without one, so the same
// selective range predicate measures pushdown against a full scan.
func e13RangeSession(f e13Fataler) *sqlengine.Session {
	eng := sqlengine.New("bench")
	eng.MustExec(`CREATE TABLE rng (k INTEGER PRIMARY KEY, k_noix INTEGER, v VARCHAR(32))`)
	eng.MustExec(`CREATE ORDERED INDEX rng_k ON rng (k)`)
	sess := eng.NewSession()
	for i := 0; i < 8000; i++ {
		if _, err := sess.Execute(`INSERT INTO rng VALUES (?, ?, ?)`,
			sqlengine.NewInt(int64(i)), sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("val-%05d", i))); err != nil {
			f.Fatal(err)
		}
	}
	return sess
}

// E13RangeScanIndexed measures a ~1%-selective range query whose bounds
// push down into the ordered index (8 000 rows, 80 hit).
func E13RangeScanIndexed(b *testing.B) {
	sess := e13RangeSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sess.Execute(`SELECT k, v FROM rng WHERE k >= 4000 AND k < 4080`)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Set.Rows) != 80 {
			b.Fatal("unexpected range result size")
		}
	}
}

// E13RangeScanFullScan is the same predicate over the unindexed twin
// column: the filter sees every row.
func E13RangeScanFullScan(b *testing.B) {
	sess := e13RangeSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sess.Execute(`SELECT k_noix, v FROM rng WHERE k_noix >= 4000 AND k_noix < 4080`)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Set.Rows) != 80 {
			b.Fatal("unexpected range result size")
		}
	}
}

// RunE13 runs the hot-path benchmarks through testing.Benchmark so
// daisbench reports the same ns/op, B/op and allocs/op columns as
// `go test -bench` — and writes them to BENCH_E13.json for cross-PR
// tracking.
func RunE13() ([]E13Row, error) {
	paths := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"envelope-marshal", E13EnvelopeMarshal},
		{"gettuples-page", E13GetTuplesPage},
		{"equi-join", E13EquiJoin},
		{"sqlexecute-roundtrip", E13SQLExecuteRoundTrip},
		{"sqlexecute-roundtrip-cold", E13SQLExecuteRoundTripCold},
		{"range-scan-indexed", E13RangeScanIndexed},
		{"range-scan-fullscan", E13RangeScanFullScan},
	}
	var out []E13Row
	for _, p := range paths {
		r := testing.Benchmark(p.fn)
		if r.N == 0 {
			return nil, fmt.Errorf("E13: %s did not run", p.name)
		}
		out = append(out, E13Row{
			Path:     p.name,
			NsPerOp:  r.NsPerOp(),
			BPerOp:   r.AllocedBytesPerOp(),
			AllocsOp: r.AllocsPerOp(),
		})
	}
	return out, nil
}
