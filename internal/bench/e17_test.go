package bench

import (
	"encoding/json"
	"testing"
	"time"

	"dais/internal/loadgen"
)

// TestE17Smoke is the load-smoke gate: a short fixed-seed E17 run must
// complete work in every scenario class on both targets, find a knee,
// prove the churn invariants, and round-trip through the BENCH_E17.json
// schema. CI runs it via `make load-smoke` so a regression in the load
// harness (or in the stack under it) fails fast without the full sweep.
func TestE17Smoke(t *testing.T) {
	rep, err := RunE17(E17Config{
		Rates:        []float64{120, 240},
		StepDuration: 500 * time.Millisecond,
		Seed:         1,
		ChurnCycles:  1_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Schema round trip: what daisbench writes must parse back into the
	// same shape with the load-bearing fields intact.
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back E17Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("BENCH_E17.json schema does not round-trip: %v", err)
	}
	if back.Single == nil || back.Cluster == nil || back.Churn == nil {
		t.Fatalf("report incomplete after round trip: %+v", back)
	}

	wantClasses := []string{"sql-direct", "sql-indirect", "xml-xpath", "wsrf-props"}
	for _, curve := range []*loadgen.Curve{back.Single, back.Cluster} {
		if len(curve.Points) != 2 {
			t.Fatalf("%s: %d curve points, want 2", curve.Target, len(curve.Points))
		}
		if curve.KneeRPS <= 0 {
			t.Errorf("%s: no knee found in an unsaturated smoke sweep", curve.Target)
		}
		for _, pt := range curve.Points {
			if pt.Errors > 0 {
				t.Errorf("%s @ %.0f rps: %d errors", curve.Target, pt.OfferedRPS, pt.Errors)
			}
			byClass := map[string]loadgen.ClassPoint{}
			for _, cp := range pt.Classes {
				byClass[cp.Class] = cp
			}
			for _, cls := range wantClasses {
				cp, ok := byClass[cls]
				if !ok {
					t.Fatalf("%s @ %.0f rps: class %s missing", curve.Target, pt.OfferedRPS, cls)
				}
				if cp.OK == 0 {
					t.Errorf("%s @ %.0f rps: class %s completed nothing", curve.Target, pt.OfferedRPS, cls)
				}
			}
		}
	}

	if back.Churn.Cycles != 1_000 {
		t.Errorf("churn completed %d cycles, want 1000", back.Churn.Cycles)
	}
	if back.Churn.Misclassified != 0 {
		t.Errorf("churn misclassified %d destroy-after-reap outcomes", back.Churn.Misclassified)
	}
	if back.Churn.FetchAfterReapOK != 0 {
		t.Errorf("churn saw %d reads succeed through reaped EPRs", back.Churn.FetchAfterReapOK)
	}
}
