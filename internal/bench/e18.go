package bench

import (
	"fmt"
	"strings"
	"time"

	"dais/internal/sqlengine"
)

// E18Row is one workload of experiment E18 (columnar execution core):
// the same query timed on the vectorised engine and on an identical
// engine with vector execution disabled (row executor), plus the
// chunk-level counters that explain the vector side's behaviour.
type E18Row struct {
	Rows      int           `json:"rows"`
	Workload  string        `json:"workload"`
	VectorPer time.Duration `json:"vector_per_ns"`
	RowPer    time.Duration `json:"row_per_ns"`
	Speedup   float64       `json:"speedup"`
	OutRows   int           `json:"out_rows"`
	Batches   uint64        `json:"vector_batches"`
	Skipped   uint64        `json:"vector_chunks_skipped"`
}

// e18Engine seeds an engine with rows three-column rows in table events
// — deliberately unindexed, so every query plans as a full scan and the
// vector/row choice is the only variable. id is sequential (zone maps
// can prune on it), grp and val cycle (every chunk spans their full
// range, so those predicates exercise the kernels, not the zone maps).
func e18Engine(name string, rows int, opts ...sqlengine.Option) *sqlengine.Engine {
	eng := sqlengine.New(name, opts...)
	eng.MustExec(`CREATE TABLE events (id INTEGER, grp INTEGER, val DOUBLE)`)
	var sb strings.Builder
	for i := 0; i < rows; i += 1000 {
		sb.Reset()
		sb.WriteString("INSERT INTO events VALUES ")
		for j := i; j < i+1000 && j < rows; j++ {
			if j > i {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %g)", j, j%101, float64(j%1000)*0.5)
		}
		eng.MustExec(sb.String())
	}
	return eng
}

// e18Time runs one query iters times on a session and returns the mean
// wall time per execution and the result cardinality.
func e18Time(s *sqlengine.Session, query string, iters int) (time.Duration, int, error) {
	out := 0
	start := time.Now()
	for i := 0; i < iters; i++ {
		res, err := s.Execute(query)
		if err != nil {
			return 0, 0, err
		}
		out = len(res.Set.Rows)
	}
	return time.Since(start) / time.Duration(iters), out, nil
}

// RunE18 measures the columnar execution core. For each table size,
// two identically-seeded engines — one vectorised, one with
// WithVectorDisabled (row executor) — run three workloads:
//
//   - a selective scan whose range predicate on the sequential id
//     column lets zone maps skip almost every chunk;
//   - a selective scan whose predicate columns span their full range in
//     every chunk, so nothing is skippable and the speedup is purely
//     the vectorised compare/AND kernels;
//   - a grouped aggregate (COUNT/SUM/AVG over ~100 groups), vectorised
//     hash aggregation against the row-at-a-time interpreter.
//
// Both sides must return the same cardinality; the vector side also
// reports how many chunks its kernels touched vs skipped.
func RunE18(sizes []int, iters int) ([]E18Row, error) {
	var out []E18Row
	for _, n := range sizes {
		vecEng := e18Engine("e18-vec", n)
		rowEng := e18Engine("e18-row", n, sqlengine.WithVectorDisabled())
		vecSess, rowSess := vecEng.NewSession(), rowEng.NewSession()

		workloads := []struct {
			name  string
			query string
		}{
			{"selective scan (zone-map skip)",
				fmt.Sprintf(`SELECT id, grp, val FROM events WHERE id >= %d`, n-1000)},
			{"selective scan (kernel filter)",
				`SELECT id, val FROM events WHERE grp = 7 AND val > 100`},
			{"grouped aggregate",
				`SELECT grp, COUNT(*), SUM(val), AVG(val) FROM events GROUP BY grp`},
		}
		for _, w := range workloads {
			// One warm-up execution per side builds the column chunks and
			// the cached plan before the clock starts.
			if _, _, err := e18Time(vecSess, w.query, 1); err != nil {
				return nil, fmt.Errorf("E18 warm-up %q: %w", w.name, err)
			}
			if _, _, err := e18Time(rowSess, w.query, 1); err != nil {
				return nil, fmt.Errorf("E18 warm-up %q: %w", w.name, err)
			}

			before := vecEng.VectorStats()
			vecPer, vecRows, err := e18Time(vecSess, w.query, iters)
			if err != nil {
				return nil, fmt.Errorf("E18 %q (vector): %w", w.name, err)
			}
			after := vecEng.VectorStats()
			rowPer, rowRows, err := e18Time(rowSess, w.query, iters)
			if err != nil {
				return nil, fmt.Errorf("E18 %q (row): %w", w.name, err)
			}
			if vecRows != rowRows {
				return nil, fmt.Errorf("E18 %q: vector returned %d rows, row executor %d",
					w.name, vecRows, rowRows)
			}
			out = append(out, E18Row{
				Rows:      n,
				Workload:  w.name,
				VectorPer: vecPer,
				RowPer:    rowPer,
				Speedup:   float64(rowPer) / float64(vecPer),
				OutRows:   vecRows,
				Batches:   (after.Batches - before.Batches) / uint64(iters),
				Skipped:   (after.ChunksSkipped - before.ChunksSkipped) / uint64(iters),
			})
		}
	}
	return out, nil
}
