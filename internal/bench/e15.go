package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/filestore"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
)

// E15Row is one configuration of experiment E15 (streaming result
// pipeline throughput): a full end-to-end fetch of a large rowset
// through the factory chain, varying chunk parallelism and whether the
// server-side buffer spills to disk.
type E15Row struct {
	Spill        bool          `json:"spill"`
	Chunks       int           `json:"chunks"`
	Rows         int           `json:"rows"`
	WireBytes    int64         `json:"wire_bytes"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	MBPerSec     float64       `json:"mb_per_sec"`
	RowsPerSec   float64       `json:"rows_per_sec"`
	SpilledBytes int64         `json:"spilled_bytes"`
}

// e15Fixture serves a streaming relational resource seeded with rows
// three-column rows, buffering through the given memory cap.
func e15Fixture(rows int, memCap int64) (*SQLFixture, *filestore.Store, error) {
	eng := sqlengine.New("bench")
	eng.MustExec(`CREATE TABLE data (id INTEGER PRIMARY KEY, payload VARCHAR(64), num DOUBLE)`)
	// Batch inserts: a million single-row Executes would dominate the
	// fixture setup, and the seeding is not what E15 measures.
	var sb strings.Builder
	for i := 0; i < rows; i += 1000 {
		sb.Reset()
		sb.WriteString("INSERT INTO data VALUES ")
		for j := i; j < i+1000 && j < rows; j++ {
			if j > i {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'row-%06d-payload-abcdefghij', %g)", j, j, float64(j)*1.5)
		}
		eng.MustExec(sb.String())
	}

	obs := telemetry.NewObserver(telemetry.WithSlowThreshold(0))
	store := filestore.NewStore("rowset-spill")
	res := dair.NewSQLDataResource(eng, dair.WithStreamDelivery(rowset.BufferConfig{
		MemCap: memCap,
		Spill:  store,
		Hooks:  service.RowsetStreamHooks(obs.Registry),
	}))
	svc := core.NewDataService("bench",
		core.WithConcurrentAccess(true),
		core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithTelemetry(obs))
	ep.Register(res)

	f := &SQLFixture{Engine: eng, Resource: res, Endpoint: ep, Obs: obs,
		Client: client.NewObserved(nil, obs)}
	if err := f.serve(ep); err != nil {
		return nil, nil, err
	}
	f.Ref = client.Ref(svc.Address(), res.AbstractName())
	return f, store, nil
}

// RunE15 measures end-to-end throughput of the streaming result
// pipeline: SQLExecuteFactory → SQLRowsetFactory → chunked GetTuples
// reassembly, for each chunk-parallelism level, with the server buffer
// kept fully in memory (spill off) and forced fully to disk (spill
// on). Every configuration must return exactly rows rows; wire bytes
// and wall time give the delivered bandwidth.
func RunE15(rows int, chunkCounts []int) ([]E15Row, error) {
	var out []E15Row
	for _, spill := range []bool{false, true} {
		memCap := int64(1 << 62) // effectively unbounded: never spills
		if spill {
			memCap = 1 // every completed page goes to disk
		}
		f, store, err := e15Fixture(rows, memCap)
		if err != nil {
			return nil, err
		}
		for _, chunks := range chunkCounts {
			row, err := e15Fetch(f, store, rows, chunks, spill)
			if err != nil {
				f.Close()
				return nil, err
			}
			out = append(out, row)
		}
		f.Close()
	}
	return out, nil
}

// e15Fetch runs one measured configuration against a live fixture.
func e15Fetch(f *SQLFixture, store *filestore.Store, rows, chunks int, spill bool) (E15Row, error) {
	ctx := context.Background()
	respRef, err := f.Client.SQLExecuteFactory(ctx, f.Ref, `SELECT id, payload, num FROM data`, nil, nil)
	if err != nil {
		return E15Row{}, err
	}
	rowsetRef, err := f.Client.SQLRowsetFactory(ctx, respRef, rowset.FormatSQLRowset, 0, nil)
	if err != nil {
		return E15Row{}, err
	}
	f.Client.ResetCounters()
	start := time.Now()
	got := 0
	err = f.Client.FetchPages(ctx, rowsetRef, client.FetchOptions{Chunks: chunks, ChunkRows: 4096},
		func(set *sqlengine.ResultSet) error {
			got += len(set.Rows)
			return nil
		})
	if err != nil {
		return E15Row{}, err
	}
	elapsed := time.Since(start)
	if got != rows {
		return E15Row{}, fmt.Errorf("E15: fetched %d rows, want %d (chunks=%d spill=%v)", got, rows, chunks, spill)
	}
	spilled := store.TotalSize()
	if spill && spilled == 0 {
		return E15Row{}, fmt.Errorf("E15: spill mode produced no spilled bytes")
	}
	wire := f.Client.BytesReceived()
	// Release the derived resources (and with them the buffer and its
	// spill file) before the next configuration runs.
	if err := f.Client.DestroyDataResource(ctx, rowsetRef); err != nil {
		return E15Row{}, err
	}
	if err := f.Client.DestroyDataResource(ctx, respRef); err != nil {
		return E15Row{}, err
	}
	secs := elapsed.Seconds()
	return E15Row{
		Spill:        spill,
		Chunks:       chunks,
		Rows:         rows,
		WireBytes:    wire,
		Elapsed:      elapsed,
		MBPerSec:     float64(wire) / (1 << 20) / secs,
		RowsPerSec:   float64(rows) / secs,
		SpilledBytes: spilled,
	}, nil
}
