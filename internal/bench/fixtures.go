// Package bench implements the evaluation harness of EXPERIMENTS.md.
//
// The paper is a specification outline with no measured evaluation, so
// each experiment here operationalises one of its quantifiable prose
// claims or architecture figures (see DESIGN.md §4): direct vs indirect
// access (Fig. 1), third-party delivery (Fig. 5), WSRF property
// granularity (§5), rowset paging (§4.3), thin vs thick wrappers
// (§2.1), the ConcurrentAccess property (§4.2), SOAP wrapper overhead
// (§3), soft-state lifetime (§5), dataset formats (§4.1) and the
// transaction properties (§4.2). cmd/daisbench prints one table per
// experiment; bench_test.go wraps the same fixtures in testing.B.
package bench

import (
	"fmt"
	"net"
	"net/http"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/service"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
)

// SQLFixture is a served relational data service plus a consumer.
type SQLFixture struct {
	Engine   *sqlengine.Engine
	Resource *dair.SQLDataResource
	Endpoint *service.Endpoint
	Ref      client.ResourceRef
	Client   *client.Client
	// Obs is the fixture's dedicated observer (nil with NoTelemetry);
	// MetricsURL serves its registry in the Prometheus text format, so
	// experiments can scrape server-side latency like an operator would.
	Obs        *telemetry.Observer
	MetricsURL string
	closers    []func()
}

// FixtureOption adjusts fixture construction.
type FixtureOption struct {
	Rows         int  // rows seeded into the data table (default 1000)
	Concurrent   bool // ConcurrentAccess property (default true)
	WSRF         bool // enable the WSRF layer (default true)
	Thick        bool // use the thick wrapper
	ExtraTables  int  // extra catalog tables to fatten the property document
	NoTelemetry  bool // strip the telemetry interceptors (overhead baseline)
	PlanCacheOff bool // disable the prepared-plan cache (cold-plan baseline)
}

// DefaultFixture is the standard configuration.
func DefaultFixture() FixtureOption {
	return FixtureOption{Rows: 1000, Concurrent: true, WSRF: true}
}

// NewSQLFixture seeds an engine with opt.Rows rows in table data
// (id INTEGER, payload VARCHAR, num DOUBLE) and serves it.
func NewSQLFixture(opt FixtureOption) (*SQLFixture, error) {
	var engOpts []sqlengine.Option
	if opt.PlanCacheOff {
		engOpts = append(engOpts, sqlengine.WithPlanCacheSize(0))
	}
	eng := sqlengine.New("bench", engOpts...)
	eng.MustExec(`CREATE TABLE data (id INTEGER PRIMARY KEY, payload VARCHAR(64), num DOUBLE)`)
	// Ordered index on the key column: range predicates push down and
	// ORDER BY id streams straight off the index.
	eng.MustExec(`CREATE ORDERED INDEX data_id_ord ON data (id)`)
	sess := eng.NewSession()
	for i := 0; i < opt.Rows; i++ {
		if _, err := sess.Execute(`INSERT INTO data VALUES (?, ?, ?)`,
			sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("row-%06d-payload-abcdefghij", i)),
			sqlengine.NewDouble(float64(i)*1.5)); err != nil {
			return nil, err
		}
	}
	for t := 0; t < opt.ExtraTables; t++ {
		eng.MustExec(fmt.Sprintf(
			`CREATE TABLE extra_%03d (a INTEGER PRIMARY KEY, b VARCHAR(32), c DOUBLE, d BOOLEAN, e TIMESTAMP)`, t))
	}

	var resOpts []dair.ResourceOption
	if opt.Thick {
		resOpts = append(resOpts, dair.WithWrapper(dair.ThickWrapper{}))
	}
	res := dair.NewSQLDataResource(eng, resOpts...)
	svc := core.NewDataService("bench",
		core.WithConcurrentAccess(opt.Concurrent),
		core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	// Each fixture gets a dedicated observer (or none for the bare
	// baseline) so experiments never read each other's numbers.
	var obs *telemetry.Observer
	if !opt.NoTelemetry {
		obs = telemetry.NewObserver(telemetry.WithSlowThreshold(0))
	}
	epOpts := []service.EndpointOption{service.WithTelemetry(obs)}
	if opt.WSRF {
		epOpts = append(epOpts, service.WithWSRF())
	}
	ep := service.NewEndpoint(svc, epOpts...)
	ep.Register(res)

	f := &SQLFixture{Engine: eng, Resource: res, Endpoint: ep, Obs: obs,
		Client: client.NewObserved(nil, obs)}
	if err := f.serve(ep); err != nil {
		return nil, err
	}
	f.Ref = client.Ref(svc.Address(), res.AbstractName())
	return f, nil
}

// serve starts an HTTP listener for an endpoint, recording a closer.
// When the fixture is instrumented, the same listener also serves the
// observer's registry at /metrics (SOAP posts go to /).
func (f *SQLFixture) serve(ep *service.Endpoint) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ep.Service().SetAddress("http://" + ln.Addr().String())
	var h http.Handler = ep
	if f.Obs != nil {
		mux := http.NewServeMux()
		mux.Handle("/", ep)
		mux.Handle("/metrics", f.Obs.Registry.Handler())
		if f.MetricsURL == "" {
			f.MetricsURL = "http://" + ln.Addr().String() + "/metrics"
		}
		h = mux
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck
	f.closers = append(f.closers, func() { srv.Close() })
	return nil
}

// ServeExtra hosts another endpoint (e.g. a factory target) and wires
// its lifetime to the fixture.
func (f *SQLFixture) ServeExtra(ep *service.Endpoint) error { return f.serve(ep) }

// Close shuts every listener down.
func (f *SQLFixture) Close() {
	for _, c := range f.closers {
		c()
	}
}

// MustSQLFixture panics on construction failure (bench helpers).
func MustSQLFixture(opt FixtureOption) *SQLFixture {
	f, err := NewSQLFixture(opt)
	if err != nil {
		panic(err)
	}
	return f
}
