package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/gateway"
	"dais/internal/loadgen"
	"dais/internal/resil"
	"dais/internal/service"
	"dais/internal/telemetry"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

// E17Config parameterises experiment E17 (open-loop capacity curves):
// the arrival-rate sweep, the SLO the knee is scored against, and the
// lifetime-churn cycle count. The same sweep runs against a single
// daisd and a 3-backend daisgw cluster so the two curves are directly
// comparable.
type E17Config struct {
	Rates        []float64
	StepDuration time.Duration
	// SLO is the p99 objective defining the knee (default 250ms).
	SLO time.Duration
	// Seed makes the offered load a pure function of configuration.
	Seed int64
	// ChurnCycles is the lifetime-churn cycle count (0 skips churn).
	ChurnCycles int
	// SQLResources/XMLResources/Rows size the standing population
	// (defaults 8 / 3 / 1000).
	SQLResources int
	XMLResources int
	Rows         int
	// MaxInFlight is the admission ceiling per node (default 64): past
	// the knee the system sheds with ServiceBusyFault instead of
	// queuing without bound.
	MaxInFlight int
}

// E17Report is the machine-readable outcome written to BENCH_E17.json:
// one capacity curve per target plus the churn invariants.
type E17Report struct {
	Seed    int64                `json:"seed"`
	Single  *loadgen.Curve       `json:"single"`
	Cluster *loadgen.Curve       `json:"cluster"`
	Churn   *loadgen.ChurnReport `json:"churn,omitempty"`
}

func (c *E17Config) defaults() {
	if c.SLO <= 0 {
		c.SLO = 250 * time.Millisecond
	}
	if c.SQLResources <= 0 {
		c.SQLResources = 8
	}
	if c.XMLResources <= 0 {
		c.XMLResources = 3
	}
	if c.Rows <= 0 {
		c.Rows = 1000
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
}

// e17Node builds one daisd-shaped endpoint for the load harness: the
// canonical loadgen data population, XML collections, WSRF lifetime
// management with a running reaper, admission control and a /metrics
// exposition — the full operator deployment shape E17 claims to
// measure. Every node hosts the SAME resource names so a gateway's
// consistent-hash routing always resolves whichever backend it picks.
func e17Node(name string, cfg E17Config) (*httptest.Server, func()) {
	eng := loadgen.SeedEngine(name, cfg.Rows)
	svc := core.NewDataService(name,
		core.WithConcurrentAccess(true),
		core.WithConfigurationMap(dair.StandardConfigurationMaps()...),
		core.WithConfigurationMap(daix.StandardConfigurationMaps()...))
	obs := telemetry.NewObserver(telemetry.WithSlowThreshold(0))
	ep := service.NewEndpoint(svc,
		service.WithWSRF(),
		service.WithTelemetry(obs),
		service.WithAdmission(resil.AdmissionConfig{
			MaxInFlight: cfg.MaxInFlight,
			RetryAfter:  250 * time.Millisecond,
		}))
	for i := 0; i < cfg.SQLResources; i++ {
		res := dair.NewSQLDataResource(eng)
		res.Name = fmt.Sprintf("urn:dais:load:sql-%03d", i)
		ep.Register(res)
	}
	for i := 0; i < cfg.XMLResources; i++ {
		store := xmldb.NewStore(fmt.Sprintf("col-%03d", i))
		seedE17Books(store)
		res := daix.NewXMLCollectionResource(store, "")
		res.Name = fmt.Sprintf("urn:dais:load:xml-%03d", i)
		ep.Register(res)
	}
	mux := http.NewServeMux()
	mux.Handle("/", ep)
	mux.Handle("/metrics", obs.Registry.Handler())
	ts := httptest.NewServer(mux)
	svc.SetAddress(ts.URL)
	stopReaper := ep.WSRF().StartReaper(5 * time.Millisecond)
	return ts, func() { stopReaper(); ts.Close() }
}

func seedE17Books(store *xmldb.Store) {
	for i, doc := range []string{
		`<book id="1"><title>Alpha</title><price>10</price></book>`,
		`<book id="2"><title>Beta</title><price>30</price></book>`,
		`<book id="3"><title>Gamma</title><price>45</price></book>`,
	} {
		e, err := xmlutil.ParseString(doc)
		if err != nil {
			panic(err)
		}
		if err := store.AddDocument("", fmt.Sprintf("b%d.xml", i), e); err != nil {
			panic(err)
		}
	}
}

// e17Refs builds the population refs addressed at base (a node or a
// gateway fronting replicated nodes).
func e17Refs(base string, cfg E17Config) (sql, xml []client.ResourceRef) {
	for i := 0; i < cfg.SQLResources; i++ {
		sql = append(sql, client.Ref(base, fmt.Sprintf("urn:dais:load:sql-%03d", i)))
	}
	for i := 0; i < cfg.XMLResources; i++ {
		xml = append(xml, client.Ref(base, fmt.Sprintf("urn:dais:load:xml-%03d", i)))
	}
	return sql, xml
}

// loadClient is the harness consumer: zero resilience policy (no
// retries, no breaker) and no shared global observer, so every shed
// and fault reaches the harness accounting exactly once.
func loadClient() *client.Client {
	return client.NewResilient(nil, nil, resil.ClientConfig{})
}

// RunE17 produces the capacity-curve regression gate: the standard
// multi-tenant mix swept open-loop over cfg.Rates against (a) one
// daisd node and (b) a daisgw gateway sharding over three replicated
// backends, each point carrying client- and server-side p50/p99/p999
// per op class, plus the lifetime-churn proof against the single node.
func RunE17(cfg E17Config) (*E17Report, error) {
	cfg.defaults()
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("E17: no sweep rates")
	}
	ctx := context.Background()
	rep := &E17Report{Seed: cfg.Seed}

	sweepCfg := loadgen.SweepConfig{
		Rates:        cfg.Rates,
		StepDuration: cfg.StepDuration,
		SLO:          cfg.SLO,
		Seed:         cfg.Seed,
		Timeout:      5 * time.Second,
	}

	// Target 1: single daisd node.
	{
		ts, done := e17Node("e17-single", cfg)
		sqlRefs, xmlRefs := e17Refs(ts.URL, cfg)
		target := &loadgen.Target{
			Name:       "daisd",
			Client:     loadClient(),
			SQLRefs:    sqlRefs,
			XMLRefs:    xmlRefs,
			MetricsURL: ts.URL + "/metrics",
		}
		pop, err := loadgen.NewPopularity(len(sqlRefs), 1.2, 1.5)
		if err != nil {
			done()
			return nil, err
		}
		curve, err := loadgen.Sweep(ctx, target, loadgen.StandardMix(target, pop), sweepCfg)
		if err != nil {
			done()
			return nil, fmt.Errorf("E17 single sweep: %w", err)
		}
		rep.Single = curve

		if cfg.ChurnCycles > 0 {
			churn, err := loadgen.RunChurn(ctx, loadgen.ChurnConfig{
				Client: target.Client,
				Source: sqlRefs[0],
				Cycles: cfg.ChurnCycles,
				TTL:    4 * time.Millisecond,
				Seed:   cfg.Seed,
			})
			if err != nil {
				done()
				return nil, fmt.Errorf("E17 churn: %w", err)
			}
			rep.Churn = churn
		}
		done()
	}

	// Target 2: daisgw fronting three replicated backends. Every
	// backend hosts the full population under the same names, so the
	// gateway's consistent-hash ring spreads the resource space across
	// the shards while every route resolves.
	{
		var backends []string
		var cleanups []func()
		for i := 0; i < 3; i++ {
			ts, done := e17Node(fmt.Sprintf("e17-shard%d", i), cfg)
			backends = append(backends, ts.URL)
			cleanups = append(cleanups, done)
		}
		gwObs := telemetry.NewObserver(telemetry.WithSlowThreshold(0))
		gw := gateway.New(gateway.Config{
			Backends:   backends,
			Observer:   gwObs,
			Resilience: &resil.ClientConfig{}, // single attempt per proxy hop
			Admission: &resil.AdmissionConfig{
				MaxInFlight: 3 * cfg.MaxInFlight,
				RetryAfter:  250 * time.Millisecond,
			},
		})
		mux := http.NewServeMux()
		mux.Handle("/", gw)
		mux.Handle("/metrics", gwObs.Registry.Handler())
		gwTS := httptest.NewServer(mux)
		gw.SetAddress(gwTS.URL)
		gw.Probe(ctx)
		done := func() {
			gwTS.Close()
			for _, c := range cleanups {
				c()
			}
		}

		sqlRefs, xmlRefs := e17Refs(gwTS.URL, cfg)
		target := &loadgen.Target{
			Name:       "daisgw-3",
			Client:     loadClient(),
			SQLRefs:    sqlRefs,
			XMLRefs:    xmlRefs,
			MetricsURL: gwTS.URL + "/metrics",
		}
		pop, err := loadgen.NewPopularity(len(sqlRefs), 1.2, 1.5)
		if err != nil {
			done()
			return nil, err
		}
		curve, err := loadgen.Sweep(ctx, target, loadgen.StandardMix(target, pop), sweepCfg)
		if err != nil {
			done()
			return nil, fmt.Errorf("E17 cluster sweep: %w", err)
		}
		rep.Cluster = curve
		done()
	}
	return rep, nil
}
