package bench

import (
	"context"
	"testing"
	"time"
)

// The experiment runners double as integration tests: each one is run
// with small parameters and its qualitative shape — the thing
// EXPERIMENTS.md claims — is asserted, not just absence of errors.

func TestE1Shape(t *testing.T) {
	rows, err := RunE1([]int{1, 200})
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	if large.DirectBytes <= small.DirectBytes*10 {
		t.Errorf("direct bytes should grow with result size: %d vs %d", small.DirectBytes, large.DirectBytes)
	}
	// The indirect requester's traffic is size-independent (both are
	// two factory responses).
	diff := large.IndirectBytes - small.IndirectBytes
	if diff < -64 || diff > 64 {
		t.Errorf("indirect consumer bytes should be flat: %d vs %d", small.IndirectBytes, large.IndirectBytes)
	}
	if large.ThirdPartyPull <= small.ThirdPartyPull {
		t.Errorf("third-party pull should carry the data: %d vs %d", small.ThirdPartyPull, large.ThirdPartyPull)
	}
}

func TestE2Shape(t *testing.T) {
	rows, err := RunE2([]int{1, 200})
	if err != nil {
		t.Fatal(err)
	}
	large := rows[1]
	if large.RelayBytes <= large.EPRBytes {
		t.Errorf("relay must move more through consumer1 than EPR hand-off: %d vs %d",
			large.RelayBytes, large.EPRBytes)
	}
	if large.ReaderBytes <= large.EPRBytes {
		t.Errorf("reader should still pull the data: %d", large.ReaderBytes)
	}
}

func TestE3Shape(t *testing.T) {
	rows, err := RunE3([]int{0, 20})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].WholeDocBytes <= rows[0].WholeDocBytes {
		t.Errorf("whole document should grow with the catalog: %d vs %d",
			rows[0].WholeDocBytes, rows[1].WholeDocBytes)
	}
	if rows[0].SinglePropByte != rows[1].SinglePropByte {
		t.Errorf("single property bytes should be catalog-independent: %d vs %d",
			rows[0].SinglePropByte, rows[1].SinglePropByte)
	}
	if rows[1].SinglePropByte >= rows[1].WholeDocBytes {
		t.Errorf("single property should be smaller than the document")
	}
}

func TestE4Shape(t *testing.T) {
	rows, err := RunE4(300, []int{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Calls != 301 || rows[1].Calls != 4 {
		t.Errorf("calls = %d, %d", rows[0].Calls, rows[1].Calls)
	}
	if rows[1].WireBytes >= rows[0].WireBytes {
		t.Errorf("bigger pages should move fewer total bytes: %d vs %d",
			rows[0].WireBytes, rows[1].WireBytes)
	}
}

func TestE5Shape(t *testing.T) {
	rows, err := RunE5(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ThinPer <= 0 || r.ThickPer <= 0 {
			t.Errorf("non-positive timing: %+v", r)
		}
	}
}

func TestE6Shape(t *testing.T) {
	rows, err := RunE6([]int{2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The serialised service must head-of-line block the probe by at
	// least one long-query delay (10ms); leave slack for scheduling.
	if r.ShortSerialized < 5*time.Millisecond {
		t.Errorf("serialized probe should queue behind long queries: %v", r.ShortSerialized)
	}
	if r.SlowdownSerial < 2 {
		t.Errorf("expected clear serialisation penalty, got %.2fx (%v vs %v)",
			r.SlowdownSerial, r.ShortConcurrent, r.ShortSerialized)
	}
}

func TestE7Shape(t *testing.T) {
	rows, err := RunE7([]int{1, 100}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SOAPPer <= r.EnginePer {
			t.Errorf("SOAP must cost more than the raw engine: %+v", r)
		}
	}
	if rows[1].OverheadPer <= rows[0].OverheadPer {
		t.Errorf("serialisation overhead should grow with result size: %v vs %v",
			rows[0].OverheadPer, rows[1].OverheadPer)
	}
}

func TestE8Shape(t *testing.T) {
	rows, err := RunE8([]int{20})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.LeakedWithout != 20 || r.LeakedWithReaper != 0 {
		t.Errorf("leak accounting wrong: %+v", r)
	}
	if r.SoftStateSweep >= r.ExplicitDestroy {
		t.Errorf("one sweep should be cheaper than 20 destroy round trips: %v vs %v",
			r.SoftStateSweep, r.ExplicitDestroy)
	}
}

func TestE9Shape(t *testing.T) {
	rows, err := RunE9(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byFormat := map[string]E9Row{}
	for _, r := range rows {
		byFormat[r.Format] = r
	}
	csv := byFormat["http://www.ggf.org/namespaces/2005/12/WS-DAIR/CSV"]
	xml := byFormat["http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLRowset"]
	if csv.Bytes >= xml.Bytes {
		t.Errorf("CSV should be smaller than XML: %d vs %d", csv.Bytes, xml.Bytes)
	}
}

func TestE10Shape(t *testing.T) {
	rows, err := RunE10(20)
	if err != nil {
		t.Fatal(err)
	}
	var sawRU, sawRC, sawAtomic bool
	for _, r := range rows {
		switch r.Mode {
		case "reader@READ UNCOMMITTED":
			sawRU = true
			if r.DirtyReads == 0 {
				t.Error("READ UNCOMMITTED should observe dirty reads")
			}
		case "reader@READ COMMITTED":
			sawRC = true
			if r.DirtyReads != 0 {
				t.Errorf("READ COMMITTED observed %d dirty reads", r.DirtyReads)
			}
		case "per-message atomicity":
			sawAtomic = true
			if r.LostAfterErr != 0 {
				t.Errorf("failed statement leaked %d rows", r.LostAfterErr)
			}
		}
	}
	if !sawRU || !sawRC || !sawAtomic {
		t.Fatalf("missing probe rows: %+v", rows)
	}
}

func TestFixtureOptions(t *testing.T) {
	f, err := NewSQLFixture(FixtureOption{Rows: 5, Concurrent: false, WSRF: false, Thick: true, ExtraTables: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Endpoint.WSRF() != nil {
		t.Error("WSRF should be off")
	}
	if f.Endpoint.Service().ConcurrentAccess() {
		t.Error("concurrent access should be off")
	}
	if len(f.Engine.Database().TableNames()) != 3 {
		t.Errorf("tables = %v", f.Engine.Database().TableNames())
	}
	// Thick wrapper rejects bad SQL before execution.
	if _, err := f.Resource.SQLExecute(context.Background(), "NOT SQL AT ALL", nil); err == nil {
		t.Error("thick wrapper should reject")
	}
}

func TestE11Shape(t *testing.T) {
	rows, err := RunE11([]int{1, 10}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	if large.RelayBytes <= small.RelayBytes*5 {
		t.Errorf("relay bytes should grow with file count: %d vs %d", small.RelayBytes, large.RelayBytes)
	}
	diff := large.StageBytes - small.StageBytes
	if diff < -64 || diff > 64 {
		t.Errorf("stage bytes should be flat: %d vs %d", small.StageBytes, large.StageBytes)
	}
	if large.ReaderBytes < large.RelayBytes-1024 {
		t.Errorf("reader should still pull the payload: %d vs %d", large.ReaderBytes, large.RelayBytes)
	}
}

func TestE18Shape(t *testing.T) {
	rows, err := RunE18([]int{5000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 workloads", len(rows))
	}
	for _, r := range rows {
		if r.OutRows <= 0 || r.VectorPer <= 0 || r.RowPer <= 0 {
			t.Errorf("%s: degenerate measurement: %+v", r.Workload, r)
		}
		if r.Workload == "selective scan (zone-map skip)" {
			// 5000 sequential ids, predicate id >= 4000: the first three
			// 1024-row chunks are provably empty of matches.
			if r.Skipped < 3 {
				t.Errorf("zone maps skipped %d chunks, want >= 3", r.Skipped)
			}
		}
		if r.Workload != "selective scan (zone-map skip)" && r.Batches == 0 {
			t.Errorf("%s: no vector batches recorded", r.Workload)
		}
	}
}

// BenchmarkE18 wires the columnar-core experiment into `make
// bench-smoke` (one tiny end-to-end run).
func BenchmarkE18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunE18([]int{5000}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestE15Shape(t *testing.T) {
	rows, err := RunE15(2000, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 spill modes x 2 chunk counts)", len(rows))
	}
	for _, r := range rows {
		if r.Rows != 2000 {
			t.Errorf("spill=%v chunks=%d: fetched %d rows, want 2000", r.Spill, r.Chunks, r.Rows)
		}
		if r.WireBytes <= 0 || r.MBPerSec <= 0 || r.RowsPerSec <= 0 {
			t.Errorf("spill=%v chunks=%d: non-positive throughput fields: %+v", r.Spill, r.Chunks, r)
		}
		if r.Spill && r.SpilledBytes == 0 {
			t.Errorf("chunks=%d: spill mode reported no spilled bytes", r.Chunks)
		}
		if !r.Spill && r.SpilledBytes != 0 {
			t.Errorf("chunks=%d: in-memory mode reported %d spilled bytes", r.Chunks, r.SpilledBytes)
		}
	}
}
