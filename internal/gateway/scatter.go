package gateway

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
	"dais/internal/xmlutil"
)

// scatterQuery runs a GenericQuery addressed to a cluster alias on
// every healthy member resource concurrently (bounded by the fan-out
// cap) and merges the partial results deterministically: members are
// visited in their declared order, and the merged result concatenates
// shard results in that order, so a partitioned table whose shards each
// ORDER BY the partition key reassembles into exactly the rowset a
// single node holding all the rows would return.
//
// Failure semantics: members on unhealthy backends are skipped — the
// federation answers from its surviving shards — but an error from a
// backend that was believed healthy fails the whole query (silently
// dropping a shard mid-flight would return a result that looks complete
// and isn't). No healthy member at all is an overload condition.
func (g *Gateway) scatterQuery(ctx context.Context, spec ops.Spec, a *Alias, body *xmlutil.Element) (*xmlutil.Element, error) {
	language := body.FindText(core.NSDAI, "GenericQueryLanguage")
	expression := body.FindText(core.NSDAI, "Expression")
	start := time.Now()

	type part struct {
		result *xmlutil.Element
		err    error
		member Member
	}
	parts := make([]*part, 0, len(a.Members))
	for _, m := range a.Members {
		if !g.health.isHealthy(m.Backend) {
			g.gm.countFanned(spec.Op, "skipped")
			continue
		}
		parts = append(parts, &part{member: m})
	}
	if len(parts) == 0 {
		return nil, &core.ServiceBusyFault{
			Reason:     "no healthy backend for alias " + a.Name,
			RetryAfter: time.Second,
		}
	}
	sem := make(chan struct{}, g.fanout)
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p *part) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			req := spec.NewRequest(p.member.Resource)
			ops.GenericQueryMsg{Language: language, Expression: expression}.Encode(spec, req)
			resp, err := g.client.Invoke(ctx, p.member.Backend, spec, req)
			g.gm.request(p.member.Backend, spec.Op, telemetry.FaultCode(err))
			if err != nil {
				p.err = err
				return
			}
			kids := resp.ChildElements()
			if len(kids) == 0 {
				p.err = fmt.Errorf("gateway: empty GenericQuery response from %s", p.member.Backend)
				return
			}
			p.result = kids[0]
		}(p)
	}
	wg.Wait()
	g.gm.observeFanout(spec.Op, time.Since(start))
	results := make([]*xmlutil.Element, len(parts))
	for i, p := range parts {
		if p.err != nil {
			g.gm.countFanned(spec.Op, "error")
			return nil, p.err
		}
		g.gm.countFanned(spec.Op, "ok")
		results[i] = p.result
	}
	merged, err := mergeQueryResults(results)
	if err != nil {
		return nil, err
	}
	resp := spec.NewResponse()
	resp.AppendChild(merged)
	return resp, nil
}

// mergeQueryResults combines per-shard GenericQuery results into the
// element a single backend holding all the data would have produced.
// All shards must return the same result shape:
//
//   - SQLRowset: column metadata must agree; rows concatenate in shard
//     order and re-encode through the shared rowset codec.
//   - UpdateCount: counts sum.
//   - XMLSequence: item lists concatenate in shard order.
func mergeQueryResults(results []*xmlutil.Element) (*xmlutil.Element, error) {
	if len(results) == 1 {
		return results[0], nil
	}
	first := results[0]
	for _, r := range results[1:] {
		if r.Name != first.Name {
			return nil, fmt.Errorf("gateway: shards returned mixed result shapes (%s vs %s)", first.Name, r.Name)
		}
	}
	switch {
	case first.Name.Space == rowset.NSDAIR && first.Name.Local == "SQLRowset":
		return mergeRowsets(results)
	case first.Name.Space == rowset.NSDAIR && first.Name.Local == "UpdateCount":
		return mergeUpdateCounts(results)
	case first.Name.Space == ops.NSDAIX && first.Name.Local == "XMLSequence":
		return mergeSequences(results)
	}
	return nil, fmt.Errorf("gateway: cannot merge %s results across shards", first.Name)
}

func mergeRowsets(results []*xmlutil.Element) (*xmlutil.Element, error) {
	var merged *sqlengine.ResultSet
	for i, r := range results {
		rs, err := rowset.DecodeSQLRowsetElement(r)
		if err != nil {
			return nil, fmt.Errorf("gateway: shard %d rowset: %w", i, err)
		}
		if merged == nil {
			merged = rs
			continue
		}
		if err := sameColumns(merged.Columns, rs.Columns); err != nil {
			return nil, fmt.Errorf("gateway: shard %d: %w", i, err)
		}
		merged.Rows = append(merged.Rows, rs.Rows...)
	}
	return rowset.SQLRowsetElement(merged), nil
}

func sameColumns(a, b []sqlengine.ResultColumn) error {
	if len(a) != len(b) {
		return fmt.Errorf("column count mismatch (%d vs %d)", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Type != b[i].Type {
			return fmt.Errorf("column %d mismatch (%s %v vs %s %v)",
				i, a[i].Name, a[i].Type, b[i].Name, b[i].Type)
		}
	}
	return nil
}

func mergeUpdateCounts(results []*xmlutil.Element) (*xmlutil.Element, error) {
	total := 0
	for i, r := range results {
		n, err := strconv.Atoi(r.Text())
		if err != nil {
			return nil, fmt.Errorf("gateway: shard %d update count %q: %w", i, r.Text(), err)
		}
		total += n
	}
	e := xmlutil.NewElement(rowset.NSDAIR, "UpdateCount")
	e.SetText(strconv.Itoa(total))
	return e, nil
}

func mergeSequences(results []*xmlutil.Element) (*xmlutil.Element, error) {
	seq := xmlutil.NewElement(ops.NSDAIX, "XMLSequence")
	for _, r := range results {
		for _, item := range r.ChildElements() {
			seq.AppendChild(item)
		}
	}
	return seq, nil
}
