package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/gateway"
	"dais/internal/resil"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

// sqlBackend is one in-process DAIS endpoint hosting a relational
// resource seeded with a slice of the emp table.
type sqlBackend struct {
	ts  *httptest.Server
	res *dair.SQLDataResource
}

func (b *sqlBackend) URL() string { return b.ts.URL }

// startSQLBackend builds a daisd-shaped endpoint whose emp table holds
// rows [lo, hi] of the canonical 9-row dataset.
func startSQLBackend(t testing.TB, name string, lo, hi int) *sqlBackend {
	t.Helper()
	eng := sqlengine.New(name)
	eng.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(64) NOT NULL, salary DOUBLE)`)
	for i := lo; i <= hi; i++ {
		eng.MustExec(fmt.Sprintf(`INSERT INTO emp VALUES (%d, 'emp-%02d', %d)`, i, i, 50000+1000*i))
	}
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService(name, core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithWSRF())
	ep.Register(res)
	ts := httptest.NewServer(ep)
	t.Cleanup(ts.Close)
	svc.SetAddress(ts.URL)
	return &sqlBackend{ts: ts, res: res}
}

// startGateway serves a gateway over a test HTTP server, runs one
// synchronous probe so placements and health are warm, and returns it.
func startGateway(t testing.TB, cfg gateway.Config) (*gateway.Gateway, *httptest.Server) {
	t.Helper()
	if !cfg.ObserverSet {
		// Isolated registry per test: gateway metric names collide in
		// telemetry.Default when several gateways run in one process.
		cfg.Observer = telemetry.NewObserver()
		cfg.ObserverSet = true
	}
	gw := gateway.New(cfg)
	ts := httptest.NewServer(gw)
	t.Cleanup(ts.Close)
	gw.SetAddress(ts.URL)
	gw.Probe(context.Background())
	return gw, ts
}

// empAlias federates the three shards' emp resources under one name.
func empAlias(shards []*sqlBackend) gateway.Alias {
	a := gateway.Alias{Name: "urn:dais:cluster:emp"}
	for _, s := range shards {
		a.Members = append(a.Members, gateway.Member{Backend: s.URL(), Resource: s.res.AbstractName()})
	}
	return a
}

// TestClusterSQLDirectByteIdentical: a direct SQLExecute through the
// gateway returns a byte-identical rowset to dialing a single node that
// holds the same data.
func TestClusterSQLDirectByteIdentical(t *testing.T) {
	single := startSQLBackend(t, "solo", 1, 9)
	shards := []*sqlBackend{
		startSQLBackend(t, "s1", 1, 9), // full copy: direct access is 1:1 proxying
		startSQLBackend(t, "s2", 0, -1),
		startSQLBackend(t, "s3", 0, -1),
	}
	_, gwts := startGateway(t, gateway.Config{
		Backends: []string{shards[0].URL(), shards[1].URL(), shards[2].URL()},
	})

	c := client.New(nil)
	const q = `SELECT id, name, salary FROM emp WHERE salary > ? ORDER BY id`
	params := []sqlengine.Value{sqlengine.NewDouble(52000)}
	want, err := c.SQLExecute(context.Background(),
		client.Ref(single.URL(), single.res.AbstractName()), q, params, "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SQLExecute(context.Background(),
		client.Ref(gwts.URL, shards[0].res.AbstractName()), q, params, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Raw, want.Raw) {
		t.Fatalf("gateway rowset differs from single-node:\n gw: %s\nsolo: %s", got.Raw, want.Raw)
	}
	if got.CA.SQLState != want.CA.SQLState || got.CA.RowsFetched != want.CA.RowsFetched {
		t.Fatalf("CA mismatch: %+v vs %+v", got.CA, want.CA)
	}
}

// TestClusterSQLIndirect: factory-style (indirect) access through the
// gateway — the derived response resource's EPR must address the
// gateway, and the fetched rowset must be byte-identical to the
// single-node run.
func TestClusterSQLIndirect(t *testing.T) {
	single := startSQLBackend(t, "solo", 1, 9)
	shards := []*sqlBackend{
		startSQLBackend(t, "s1", 1, 9),
		startSQLBackend(t, "s2", 0, -1),
		startSQLBackend(t, "s3", 0, -1),
	}
	_, gwts := startGateway(t, gateway.Config{
		Backends: []string{shards[0].URL(), shards[1].URL(), shards[2].URL()},
	})

	c := client.New(nil)
	const q = `SELECT name FROM emp WHERE id <= 4 ORDER BY id`
	soloRef, err := c.SQLExecuteFactory(context.Background(),
		client.Ref(single.URL(), single.res.AbstractName()), q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSet, err := c.GetSQLRowset(context.Background(), soloRef, 0)
	if err != nil {
		t.Fatal(err)
	}

	gwRef, err := c.SQLExecuteFactory(context.Background(),
		client.Ref(gwts.URL, shards[0].res.AbstractName()), q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gwRef.Address != gwts.URL {
		t.Fatalf("derived EPR addresses %s, want the gateway %s", gwRef.Address, gwts.URL)
	}
	gotSet, err := c.GetSQLRowset(context.Background(), gwRef, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := xmlutil.Marshal(rowsetElement(t, wantSet))
	got := xmlutil.Marshal(rowsetElement(t, gotSet))
	if !bytes.Equal(got, want) {
		t.Fatalf("indirect rowset differs:\n gw: %s\nsolo: %s", got, want)
	}
}

// TestClusterScatterGather: a GenericQuery on the cluster alias over
// three contiguously partitioned shards (each shard ORDER BY the
// partition key) reassembles into exactly the single-node rowset.
func TestClusterScatterGather(t *testing.T) {
	single := startSQLBackend(t, "solo", 1, 9)
	shards := []*sqlBackend{
		startSQLBackend(t, "s1", 1, 3),
		startSQLBackend(t, "s2", 4, 6),
		startSQLBackend(t, "s3", 7, 9),
	}
	_, gwts := startGateway(t, gateway.Config{
		Backends: []string{shards[0].URL(), shards[1].URL(), shards[2].URL()},
		Aliases:  []gateway.Alias{empAlias(shards)},
	})

	c := client.New(nil)
	const q = `SELECT id, name, salary FROM emp ORDER BY id`
	want, err := c.GenericQuery(context.Background(),
		client.Ref(single.URL(), single.res.AbstractName()), dair.LanguageSQL92, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.GenericQuery(context.Background(),
		client.Ref(gwts.URL, "urn:dais:cluster:emp"), dair.LanguageSQL92, q)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(xmlutil.Marshal(got), xmlutil.Marshal(want)) {
		t.Fatalf("scattered rowset differs from single-node:\n gw: %s\nsolo: %s",
			xmlutil.Marshal(got), xmlutil.Marshal(want))
	}

	// A WHERE clause that empties one shard must still merge (empty
	// shard rowsets carry the same column metadata).
	const qf = `SELECT id, name FROM emp WHERE id >= 5 ORDER BY id`
	want, err = c.GenericQuery(context.Background(),
		client.Ref(single.URL(), single.res.AbstractName()), dair.LanguageSQL92, qf)
	if err != nil {
		t.Fatal(err)
	}
	got, err = c.GenericQuery(context.Background(),
		client.Ref(gwts.URL, "urn:dais:cluster:emp"), dair.LanguageSQL92, qf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(xmlutil.Marshal(got), xmlutil.Marshal(want)) {
		t.Fatalf("filtered scatter differs:\n gw: %s\nsolo: %s",
			xmlutil.Marshal(got), xmlutil.Marshal(want))
	}
}

// TestClusterXMLByteIdentical: XML resources federate the same way —
// direct XPath through the gateway matches the single node, and an
// alias scatter over two document shards reassembles the single-node
// sequence.
func TestClusterXMLByteIdentical(t *testing.T) {
	books := []string{
		`<book id="1"><title>Alpha</title><price>10</price></book>`,
		`<book id="2"><title>Beta</title><price>30</price></book>`,
		`<book id="3"><title>Gamma</title><price>20</price></book>`,
		`<book id="4"><title>Delta</title><price>40</price></book>`,
	}
	mkXML := func(name string, docs map[string]string) (*httptest.Server, *daix.XMLCollectionResource) {
		store := xmldb.NewStore(name)
		res := daix.NewXMLCollectionResource(store, "")
		for file, doc := range docs {
			e, err := xmlutil.ParseString(doc)
			if err != nil {
				t.Fatal(err)
			}
			if err := store.AddDocument("", file, e); err != nil {
				t.Fatal(err)
			}
		}
		svc := core.NewDataService(name, core.WithConfigurationMap(daix.StandardConfigurationMaps()...))
		ep := service.NewEndpoint(svc, service.WithWSRF())
		ep.Register(res)
		ts := httptest.NewServer(ep)
		t.Cleanup(ts.Close)
		svc.SetAddress(ts.URL)
		return ts, res
	}

	soloTS, soloRes := mkXML("solo", map[string]string{
		"a.xml": books[0], "b.xml": books[1], "c.xml": books[2], "d.xml": books[3]})
	s1TS, s1Res := mkXML("x1", map[string]string{"a.xml": books[0], "b.xml": books[1]})
	s2TS, s2Res := mkXML("x2", map[string]string{"c.xml": books[2], "d.xml": books[3]})

	alias := gateway.Alias{Name: "urn:dais:cluster:library", Members: []gateway.Member{
		{Backend: s1TS.URL, Resource: s1Res.AbstractName()},
		{Backend: s2TS.URL, Resource: s2Res.AbstractName()},
	}}
	_, gwts := startGateway(t, gateway.Config{
		Backends: []string{s1TS.URL, s2TS.URL},
		Aliases:  []gateway.Alias{alias},
	})

	c := client.New(nil)
	const xp = `/book[price >= 20]/title`
	// Direct through the gateway vs the owning backend.
	want, err := c.GenericQuery(context.Background(),
		client.Ref(s1TS.URL, s1Res.AbstractName()), daix.LanguageXPath, xp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.GenericQuery(context.Background(),
		client.Ref(gwts.URL, s1Res.AbstractName()), daix.LanguageXPath, xp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(xmlutil.Marshal(got), xmlutil.Marshal(want)) {
		t.Fatalf("gateway XPath differs from backend:\n gw: %s\ndirect: %s",
			xmlutil.Marshal(got), xmlutil.Marshal(want))
	}
	// Alias scatter vs the single node holding all four documents.
	want, err = c.GenericQuery(context.Background(),
		client.Ref(soloTS.URL, soloRes.AbstractName()), daix.LanguageXPath, xp)
	if err != nil {
		t.Fatal(err)
	}
	got, err = c.GenericQuery(context.Background(),
		client.Ref(gwts.URL, "urn:dais:cluster:library"), daix.LanguageXPath, xp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(xmlutil.Marshal(got), xmlutil.Marshal(want)) {
		t.Fatalf("XML scatter differs from single-node:\n gw: %s\nsolo: %s",
			xmlutil.Marshal(got), xmlutil.Marshal(want))
	}
}

// TestClusterResourceListAndResolve: the gateway owns the cluster-wide
// CoreResourceList — the union of every backend's list plus the alias
// names — and Resolve answers with gateway EPRs for both.
func TestClusterResourceListAndResolve(t *testing.T) {
	shards := []*sqlBackend{
		startSQLBackend(t, "s1", 1, 3),
		startSQLBackend(t, "s2", 4, 6),
		startSQLBackend(t, "s3", 7, 9),
	}
	_, gwts := startGateway(t, gateway.Config{
		Backends: []string{shards[0].URL(), shards[1].URL(), shards[2].URL()},
		Aliases:  []gateway.Alias{empAlias(shards)},
	})

	c := client.New(nil)
	names, err := c.GetResourceList(context.Background(), gwts.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"urn:dais:cluster:emp": true}
	for _, s := range shards {
		want[s.res.AbstractName()] = true
	}
	if len(names) != len(want) {
		t.Fatalf("cluster list = %v, want %d names", names, len(want))
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected name %s in cluster list", n)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("cluster list not sorted: %v", names)
		}
	}

	// Resolve of a backend resource and of the alias both return
	// gateway-addressed EPRs.
	for _, name := range []string{shards[1].res.AbstractName(), "urn:dais:cluster:emp"} {
		ref, err := c.Resolve(context.Background(), gwts.URL, name)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Address != gwts.URL || ref.AbstractName != name {
			t.Fatalf("resolved %s = %+v, want gateway address", name, ref)
		}
	}
	var irf *core.InvalidResourceNameFault
	if _, err := c.Resolve(context.Background(), gwts.URL, "urn:ghost"); !errors.As(err, &irf) {
		t.Fatalf("resolve of unknown name = %v, want InvalidResourceNameFault", err)
	}
}

// TestClusterFactoryLeastLoaded: factory operations addressed to the
// alias land on the least-loaded healthy backend, and the derived
// resources remain reachable through the gateway.
func TestClusterFactoryLeastLoaded(t *testing.T) {
	shards := []*sqlBackend{
		startSQLBackend(t, "s1", 1, 3),
		startSQLBackend(t, "s2", 4, 6),
		startSQLBackend(t, "s3", 7, 9),
	}
	gw, gwts := startGateway(t, gateway.Config{
		Backends: []string{shards[0].URL(), shards[1].URL(), shards[2].URL()},
		Aliases:  []gateway.Alias{empAlias(shards)},
	})
	_ = gw

	c := client.New(nil)
	aliasRef := client.Ref(gwts.URL, "urn:dais:cluster:emp")
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		ref, err := c.SQLExecuteFactory(context.Background(), aliasRef,
			`SELECT id FROM emp ORDER BY id`, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Address != gwts.URL {
			t.Fatalf("derived EPR addresses %s, want gateway", ref.Address)
		}
		set, err := c.GetSQLRowset(context.Background(), ref, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(set.Rows) != 3 {
			t.Fatalf("derived rowset rows = %d, want 3", len(set.Rows))
		}
		seen[set.Rows[0][0].String()]++
	}
	// Placement must spread: each shard starts with one probed resource,
	// so six factory calls land two per backend — the first rows differ
	// per shard (1, 4, 7).
	if len(seen) != 3 {
		t.Fatalf("factory placement did not spread across shards: %v", seen)
	}
	for first, n := range seen {
		if n != 2 {
			t.Fatalf("shard starting at id %s received %d placements, want 2 (%v)", first, n, seen)
		}
	}
}

// TestGWChaosKillOneBackend kills one of three backends under
// concurrent federated load: in-flight calls may fail with the
// documented busy faults, but the federation keeps answering on the
// surviving shards and never returns a partial scatter result.
func TestGWChaosKillOneBackend(t *testing.T) {
	shards := []*sqlBackend{
		startSQLBackend(t, "s1", 1, 3),
		startSQLBackend(t, "s2", 4, 6),
		startSQLBackend(t, "s3", 7, 9),
	}
	rcfg := resil.DefaultClientConfig()
	rcfg.Retry.BaseDelay = 5 * time.Millisecond
	rcfg.Retry.MaxDelay = 20 * time.Millisecond
	gw, gwts := startGateway(t, gateway.Config{
		Backends:   []string{shards[0].URL(), shards[1].URL(), shards[2].URL()},
		Aliases:    []gateway.Alias{empAlias(shards)},
		Resilience: &rcfg,
	})

	// The consumer must not circuit-break against the gateway: busy
	// faults during the kill window are expected, and a tripped consumer
	// breaker would mask the federation's recovery.
	c := client.NewResilient(nil, nil, resil.ClientConfig{})
	aliasRef := client.Ref(gwts.URL, "urn:dais:cluster:emp")
	survivorRef := client.Ref(gwts.URL, shards[0].res.AbstractName())

	// Concurrent federated load while the victim dies.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				result, err := c.GenericQuery(context.Background(), aliasRef,
					dair.LanguageSQL92, `SELECT id FROM emp ORDER BY id`)
				if err != nil {
					// Allowed: the scatter refuses to answer partially.
					continue
				}
				// A successful scatter must be complete for the shards it
				// believed healthy: 9 rows before the kill, 6 after.
				set, derr := decodeRows(result)
				if derr != nil {
					errs <- derr
					return
				}
				if n := len(set.Rows); n != 9 && n != 6 {
					errs <- fmt.Errorf("partial scatter result: %d rows", n)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	shards[2].ts.CloseClientConnections()
	shards[2].ts.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Mark the victim down (the breaker may already have done this; the
	// probe makes it deterministic) and verify the survivors answer.
	gw.Probe(context.Background())

	result, err := c.GenericQuery(context.Background(), aliasRef,
		dair.LanguageSQL92, `SELECT id FROM emp ORDER BY id`)
	if err != nil {
		t.Fatalf("scatter after kill+probe failed: %v", err)
	}
	set, err := decodeRows(result)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 6 {
		t.Fatalf("surviving scatter rows = %d, want 6", len(set.Rows))
	}
	for i, want := range []string{"1", "2", "3", "4", "5", "6"} {
		if got := set.Rows[i][0].String(); got != want {
			t.Fatalf("row %d id = %s, want %s", i, got, want)
		}
	}

	// Named access to surviving shards still works; the dead shard's
	// resource faults busy, not wrong.
	if _, err := c.SQLExecute(context.Background(), survivorRef,
		`SELECT id FROM emp ORDER BY id`, nil, ""); err != nil {
		t.Fatalf("survivor direct access failed: %v", err)
	}
	var busy *core.ServiceBusyFault
	if _, err := c.SQLExecute(context.Background(),
		client.Ref(gwts.URL, shards[2].res.AbstractName()),
		`SELECT 1 FROM emp`, nil, ""); !errors.As(err, &busy) {
		t.Fatalf("dead shard access = %v, want ServiceBusyFault", err)
	}

	// The cluster list now reflects what the federation can serve.
	names, err := c.GetResourceList(context.Background(), gwts.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == shards[2].res.AbstractName() {
			t.Fatalf("dead shard's resource %s still listed", n)
		}
	}

	// Healthz reports degraded but still 200: the federation answers.
	st, body := healthzGet(t, gw)
	if st != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("healthz = %d %v, want 200 degraded", st, body)
	}
}

// decodeRows decodes a GenericQuery SQLRowset result element.
func decodeRows(result *xmlutil.Element) (*sqlengine.ResultSet, error) {
	return rowset.DecodeSQLRowsetElement(result)
}

// rowsetElement re-encodes a result set through the shared codec so two
// fetch paths can be compared byte-for-byte.
func rowsetElement(t *testing.T, set *sqlengine.ResultSet) *xmlutil.Element {
	t.Helper()
	return rowset.SQLRowsetElement(set)
}

func healthzGet(t *testing.T, gw *gateway.Gateway) (int, map[string]any) {
	t.Helper()
	rr := httptest.NewRecorder()
	gw.Healthz().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var body map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	return rr.Code, body
}
