package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"dais/internal/resil"
)

// backendHealth is one backend's routing state as the gateway sees it:
// the latest probe outcome plus the circuit-breaker signal from the
// resilient client. Either source can take a backend out of rotation;
// a successful probe (or a closed breaker after a successful call)
// puts it back.
type backendHealth struct {
	Healthy   bool      `json:"healthy"`
	Reason    string    `json:"reason,omitempty"`
	Resources int       `json:"resources"`
	LastProbe time.Time `json:"last_probe,omitempty"`
}

// healthBoard tracks per-backend health. Backends start healthy —
// optimistic, so a gateway without a running prober still routes — and
// are marked down by failed probes or an opening breaker.
type healthBoard struct {
	mu sync.RWMutex
	by map[string]*backendHealth
	gm *gwMetrics
}

func newHealthBoard(backends []string, gm *gwMetrics) *healthBoard {
	h := &healthBoard{by: make(map[string]*backendHealth), gm: gm}
	for _, b := range backends {
		h.by[b] = &backendHealth{Healthy: true}
		gm.setState(b, stateHealthy)
	}
	return h
}

func (h *healthBoard) isHealthy(backend string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	st, ok := h.by[backend]
	return ok && st.Healthy
}

func (h *healthBoard) set(backend string, healthy bool, reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.by[backend]
	if !ok {
		return
	}
	st.Healthy, st.Reason = healthy, reason
	level := int64(stateUnhealthy)
	if healthy {
		level = stateHealthy
	} else if reason == "breaker "+resil.StateHalfOpen {
		level = stateDegraded
	}
	h.gm.setState(backend, level)
}

func (h *healthBoard) probed(backend string, resources int, err error) {
	h.mu.Lock()
	st, ok := h.by[backend]
	if !ok {
		h.mu.Unlock()
		return
	}
	st.LastProbe = time.Now()
	st.Resources = resources
	h.mu.Unlock()
	if err != nil {
		h.set(backend, false, "probe failed: "+err.Error())
	} else {
		h.set(backend, true, "")
	}
}

// snapshot copies the board for /healthz rendering.
func (h *healthBoard) snapshot() map[string]backendHealth {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make(map[string]backendHealth, len(h.by))
	for b, st := range h.by {
		out[b] = *st
	}
	return out
}

// onBreakerChange is the resil.ClientConfig hook: an opening breaker
// takes the backend out of rotation immediately, a closing one (the
// half-open probe succeeded) restores it without waiting for the next
// health probe. Half-open keeps the backend out but flags it degraded.
func (g *Gateway) onBreakerChange(endpoint, to string) {
	switch to {
	case resil.StateClosed:
		g.health.set(endpoint, true, "")
	case resil.StateOpen, resil.StateHalfOpen:
		g.health.set(endpoint, false, "breaker "+to)
	}
}

// Probe refreshes every backend's health by fetching its resource list,
// recording discovered resource locations in the placement table as a
// side effect — which is how pre-existing backend resources become
// routable and resolvable through the gateway.
func (g *Gateway) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, g.fanout)
	for _, b := range g.ring.Backends() {
		wg.Add(1)
		go func(backend string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pctx, cancel := context.WithTimeout(ctx, g.probeTimeout)
			defer cancel()
			names, err := g.client.GetResourceList(pctx, backend)
			g.health.probed(backend, len(names), err)
			if err != nil {
				return
			}
			for _, n := range names {
				g.place.record(n, backend)
			}
		}(b)
	}
	wg.Wait()
}

// StartProber runs Probe on an interval until the returned stop
// function is called. The first probe runs synchronously so routing
// state is warm before the gateway serves.
func (g *Gateway) StartProber(interval time.Duration) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	g.Probe(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.Probe(ctx)
			}
		}
	}()
	return func() { cancel(); <-done }
}

// Healthz serves the aggregated backend health as JSON: HTTP 200 while
// at least one backend is routable (the federation still answers on
// surviving shards), 503 when none is.
func (g *Gateway) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap := g.health.snapshot()
		healthy := 0
		backends := make([]string, 0, len(snap))
		for b, st := range snap {
			backends = append(backends, b)
			if st.Healthy {
				healthy++
			}
		}
		sort.Strings(backends)
		checks := make(map[string]backendHealth, len(snap))
		for _, b := range backends {
			checks[b] = snap[b]
		}
		status := "ok"
		switch {
		case healthy == 0:
			status = "down"
		case healthy < len(snap):
			status = "degraded"
		}
		w.Header().Set("Content-Type", "application/json")
		if healthy == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // client went away
			"status":   status,
			"healthy":  healthy,
			"backends": checks,
		})
	})
}
