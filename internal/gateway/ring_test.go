package gateway

import (
	"fmt"
	"math/rand"
	"testing"
)

// keys returns a deterministic pseudo-resource-name corpus.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("urn:dais:sql:resource-%06d", i)
	}
	return out
}

func backendSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://backend-%02d:8090/sql", i)
	}
	return out
}

// TestRingBalance: across 3–16 backends every backend's share of a
// 100k-key corpus stays within 15% of the even split.
func TestRingBalance(t *testing.T) {
	corpus := keys(100_000)
	for n := 3; n <= 16; n++ {
		r := newRing(backendSet(n))
		counts := map[string]int{}
		for _, k := range corpus {
			counts[r.Owner(k, nil)]++
		}
		mean := float64(len(corpus)) / float64(n)
		for b, c := range counts {
			dev := (float64(c) - mean) / mean
			if dev < -0.15 || dev > 0.15 {
				t.Errorf("n=%d backend %s owns %d keys (%.1f%% off the mean %.0f)",
					n, b, c, dev*100, mean)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d backends own keys", n, len(counts))
		}
	}
}

// TestRingMinimalMovement: adding or removing one backend moves close
// to the theoretical minimum 1/(n+1) (resp. 1/n) of the keys, and
// never relocates a key between two surviving backends on removal.
func TestRingMinimalMovement(t *testing.T) {
	corpus := keys(20_000)
	backends := backendSet(8)
	before := newRing(backends)
	owners := make(map[string]string, len(corpus))
	for _, k := range corpus {
		owners[k] = before.Owner(k, nil)
	}

	// Add one backend: only keys that land on the newcomer may move.
	grown := newRing(append(append([]string{}, backends...), "http://backend-99:8090/sql"))
	moved := 0
	for _, k := range corpus {
		if o := grown.Owner(k, nil); o != owners[k] {
			moved++
			if o != "http://backend-99:8090/sql" {
				t.Fatalf("key %s moved between surviving backends (%s -> %s)", k, owners[k], o)
			}
		}
	}
	expected := float64(len(corpus)) / 9
	if f := float64(moved); f > 2*expected {
		t.Errorf("add: moved %d keys, expected about %.0f", moved, expected)
	}
	if moved == 0 {
		t.Error("add: no keys moved to the new backend")
	}

	// Remove one backend: only its keys move, everything else stays.
	shrunk := newRing(backends[:7])
	moved = 0
	for _, k := range corpus {
		o := shrunk.Owner(k, nil)
		if owners[k] == backends[7] {
			moved++
			continue
		}
		if o != owners[k] {
			t.Fatalf("key %s moved although its backend survived (%s -> %s)", k, owners[k], o)
		}
	}
	if moved == 0 {
		t.Error("remove: departed backend owned no keys")
	}
}

// TestRingDeterministicOwnership: ownership is a pure function of the
// backend set — shuffled construction orders agree on every key.
func TestRingDeterministicOwnership(t *testing.T) {
	corpus := keys(5_000)
	backends := backendSet(11)
	reference := newRing(backends)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string{}, backends...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := newRing(shuffled)
		for _, k := range corpus {
			if got, want := r.Owner(k, nil), reference.Owner(k, nil); got != want {
				t.Fatalf("trial %d: key %s owned by %s, want %s", trial, k, got, want)
			}
		}
	}
}

// TestRingOwnerSkipsUnhealthy: the healthy filter reroutes to the next
// live backend on the circle and falls back to the primary when the
// whole cluster is down.
func TestRingOwnerSkipsUnhealthy(t *testing.T) {
	backends := backendSet(4)
	r := newRing(backends)
	key := "urn:dais:sql:victim"
	primary := r.Owner(key, nil)
	alt := r.Owner(key, func(b string) bool { return b != primary })
	if alt == primary {
		t.Fatalf("unhealthy primary %s still selected", primary)
	}
	if got := r.Owner(key, func(string) bool { return false }); got != primary {
		t.Fatalf("all-down fallback = %s, want primary %s", got, primary)
	}
	// Rerouting is sticky: the same exclusion always lands on the same
	// alternate.
	for i := 0; i < 5; i++ {
		if got := r.Owner(key, func(b string) bool { return b != primary }); got != alt {
			t.Fatalf("reroute not deterministic: %s vs %s", got, alt)
		}
	}
}

// TestRingDuplicatesAndEmpty: duplicate and empty backend entries
// collapse; an empty ring owns nothing.
func TestRingDuplicatesAndEmpty(t *testing.T) {
	r := newRing([]string{"http://a/sql", "http://a/sql", "", "http://b/sql"})
	if got := len(r.Backends()); got != 2 {
		t.Fatalf("backends = %d, want 2", got)
	}
	if o := newRing(nil).Owner("urn:x", nil); o != "" {
		t.Fatalf("empty ring owner = %q", o)
	}
}
