package gateway

import "testing"

func TestPlacementRecordLookupForget(t *testing.T) {
	p := newPlacements()
	if b, ok := p.lookup("urn:a"); ok || b != "" {
		t.Fatalf("empty table lookup = %q, %v", b, ok)
	}
	p.record("urn:a", "http://b1/sql")
	p.record("urn:b", "http://b1/sql")
	p.record("urn:c", "http://b2/sql")
	if b, ok := p.lookup("urn:a"); !ok || b != "http://b1/sql" {
		t.Fatalf("lookup urn:a = %q, %v", b, ok)
	}
	if got := p.load("http://b1/sql"); got != 2 {
		t.Fatalf("load b1 = %d, want 2", got)
	}

	// Re-recording the same placement is idempotent.
	p.record("urn:a", "http://b1/sql")
	if got := p.load("http://b1/sql"); got != 2 {
		t.Fatalf("idempotent re-record changed load to %d", got)
	}

	// Relocation moves the count to the new backend.
	p.record("urn:a", "http://b2/sql")
	if got := p.load("http://b1/sql"); got != 1 {
		t.Fatalf("after relocation load b1 = %d, want 1", got)
	}
	if got := p.load("http://b2/sql"); got != 2 {
		t.Fatalf("after relocation load b2 = %d, want 2", got)
	}

	p.forget("urn:a")
	if _, ok := p.lookup("urn:a"); ok {
		t.Fatal("forgotten name still resolves")
	}
	if got := p.load("http://b2/sql"); got != 1 {
		t.Fatalf("after forget load b2 = %d, want 1", got)
	}
	p.forget("urn:never-recorded") // no-op, must not panic
}

func TestPlacementLeastLoaded(t *testing.T) {
	p := newPlacements()
	p.record("urn:1", "http://b/sql")
	p.record("urn:2", "http://b/sql")
	p.record("urn:3", "http://c/sql")
	if got := p.leastLoaded([]string{"http://b/sql", "http://c/sql", "http://a/sql"}); got != "http://a/sql" {
		t.Fatalf("leastLoaded = %q, want the unloaded backend", got)
	}
	// Tie-break is lexicographic for determinism.
	p.record("urn:4", "http://a/sql")
	if got := p.leastLoaded([]string{"http://c/sql", "http://a/sql"}); got != "http://a/sql" {
		t.Fatalf("tie-break = %q, want http://a/sql", got)
	}
	if got := p.leastLoaded(nil); got != "" {
		t.Fatalf("leastLoaded(nil) = %q, want empty", got)
	}
}
