package gateway

import (
	"strings"
	"testing"

	"dais/internal/ops"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

func shardRowset(t *testing.T, cols []sqlengine.ResultColumn, rows [][]sqlengine.Value) *xmlutil.Element {
	t.Helper()
	return rowset.SQLRowsetElement(&sqlengine.ResultSet{Columns: cols, Rows: rows})
}

func empColumns() []sqlengine.ResultColumn {
	return []sqlengine.ResultColumn{
		{Name: "id", Type: sqlengine.TypeInteger, Table: "emp"},
		{Name: "name", Type: sqlengine.TypeVarchar, Table: "emp"},
	}
}

func TestMergeRowsetsConcatenatesInShardOrder(t *testing.T) {
	cols := empColumns()
	a := shardRowset(t, cols, [][]sqlengine.Value{
		{sqlengine.NewInt(1), sqlengine.NewString("ada")},
		{sqlengine.NewInt(2), sqlengine.NewString("bob")},
	})
	b := shardRowset(t, cols, [][]sqlengine.Value{
		{sqlengine.NewInt(3), sqlengine.NewString("cyd")},
	})
	merged, err := mergeQueryResults([]*xmlutil.Element{a, b})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rowset.DecodeSQLRowsetElement(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("merged rows = %d, want 3", len(rs.Rows))
	}
	for i, want := range []string{"ada", "bob", "cyd"} {
		if got := rs.Rows[i][1].String(); got != want {
			t.Errorf("row %d name = %q, want %q (shard order must be preserved)", i, got, want)
		}
	}
}

func TestMergeRowsetsColumnMismatch(t *testing.T) {
	a := shardRowset(t, empColumns(), [][]sqlengine.Value{
		{sqlengine.NewInt(1), sqlengine.NewString("ada")},
	})
	b := shardRowset(t,
		[]sqlengine.ResultColumn{{Name: "id", Type: sqlengine.TypeInteger, Table: "emp"}},
		[][]sqlengine.Value{{sqlengine.NewInt(2)}},
	)
	if _, err := mergeQueryResults([]*xmlutil.Element{a, b}); err == nil ||
		!strings.Contains(err.Error(), "column count mismatch") {
		t.Fatalf("column mismatch not rejected: %v", err)
	}
}

func TestMergeUpdateCounts(t *testing.T) {
	mk := func(text string) *xmlutil.Element {
		e := xmlutil.NewElement(rowset.NSDAIR, "UpdateCount")
		e.SetText(text)
		return e
	}
	merged, err := mergeQueryResults([]*xmlutil.Element{mk("2"), mk("0"), mk("5")})
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Text(); got != "7" {
		t.Fatalf("summed update count = %q, want 7", got)
	}
	if _, err := mergeQueryResults([]*xmlutil.Element{mk("2"), mk("oops")}); err == nil {
		t.Fatal("malformed shard count not rejected")
	}
}

func TestMergeSequencesConcatenatesItems(t *testing.T) {
	mk := func(texts ...string) *xmlutil.Element {
		seq := xmlutil.NewElement(ops.NSDAIX, "XMLSequence")
		for _, s := range texts {
			item := xmlutil.NewElement(ops.NSDAIX, "Item")
			item.SetText(s)
			seq.AppendChild(item)
		}
		return seq
	}
	merged, err := mergeQueryResults([]*xmlutil.Element{mk("a", "b"), mk("c")})
	if err != nil {
		t.Fatal(err)
	}
	kids := merged.ChildElements()
	if len(kids) != 3 {
		t.Fatalf("merged items = %d, want 3", len(kids))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got := kids[i].Text(); got != want {
			t.Errorf("item %d = %q, want %q", i, got, want)
		}
	}
}

func TestMergeMixedShapesRejected(t *testing.T) {
	count := xmlutil.NewElement(rowset.NSDAIR, "UpdateCount")
	count.SetText("1")
	seq := xmlutil.NewElement(ops.NSDAIX, "XMLSequence")
	if _, err := mergeQueryResults([]*xmlutil.Element{count, seq}); err == nil ||
		!strings.Contains(err.Error(), "mixed result shapes") {
		t.Fatalf("mixed shapes not rejected: %v", err)
	}
}

func TestMergeSingleResultPassesThrough(t *testing.T) {
	// A lone shard result is passed through untouched — even a shape the
	// merger could not combine — so single-member aliases are fully
	// transparent.
	odd := xmlutil.NewElement("urn:x", "Custom")
	got, err := mergeQueryResults([]*xmlutil.Element{odd})
	if err != nil {
		t.Fatal(err)
	}
	if got != odd {
		t.Fatal("single result was not passed through")
	}
}
