package gateway

import (
	"time"

	"dais/internal/telemetry"
)

// Metric names exposed by the federation gateway.
const (
	// MetricBackendRequests counts proxied backend calls, labelled by
	// backend endpoint, operation and outcome code.
	MetricBackendRequests = "dais_gw_backend_requests_total"
	// MetricBackendState gauges each backend's routing state: 0
	// healthy, 1 degraded (breaker half-open, probe pending), 2
	// unhealthy (probe failed or breaker open).
	MetricBackendState = "dais_gw_backend_state"
	// MetricFanout is the scatter-gather wall-clock latency histogram,
	// labelled by operation.
	MetricFanout = "dais_gw_fanout_seconds"
	// MetricFanoutBackends counts the backends each scatter touched,
	// labelled by operation and per-backend outcome.
	MetricFanoutBackends = "dais_gw_fanout_backends_total"
)

// Backend state gauge levels.
const (
	stateHealthy   = 0
	stateDegraded  = 1
	stateUnhealthy = 2
)

// gwMetrics binds the gateway instruments on a telemetry registry. A
// nil *gwMetrics is valid and records nothing.
type gwMetrics struct {
	requests *telemetry.CounterVec
	state    *telemetry.GaugeVec
	fanout   *telemetry.HistogramVec
	fanned   *telemetry.CounterVec
}

func gwMetricsFor(reg *telemetry.Registry) *gwMetrics {
	if reg == nil {
		return nil
	}
	return &gwMetrics{
		requests: reg.NewCounterVec(MetricBackendRequests,
			"Proxied backend calls by backend, operation and outcome code.",
			"backend", "op", "code"),
		state: reg.NewGaugeVec(MetricBackendState,
			"Backend routing state (0 healthy, 1 degraded, 2 unhealthy).", "backend"),
		fanout: reg.NewHistogramVec(MetricFanout,
			"Scatter-gather fan-out latency in seconds.", telemetry.LatencyBuckets(), "op"),
		fanned: reg.NewCounterVec(MetricFanoutBackends,
			"Backends touched per scatter by operation and outcome.", "op", "outcome"),
	}
}

func (m *gwMetrics) request(backend, op, code string) {
	if m == nil {
		return
	}
	m.requests.With(backend, op, code).Inc()
}

func (m *gwMetrics) setState(backend string, level int64) {
	if m == nil {
		return
	}
	m.state.With(backend).Set(level)
}

func (m *gwMetrics) observeFanout(op string, d time.Duration) {
	if m == nil {
		return
	}
	m.fanout.With(op).Observe(d)
}

func (m *gwMetrics) countFanned(op, outcome string) {
	if m == nil {
		return
	}
	m.fanned.With(op, outcome).Inc()
}
