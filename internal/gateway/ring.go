package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultReplicas is the virtual-node count per backend. 512 vnodes
// keep the per-backend share of the key space within the federation
// balance target (±15% across 3–16 backends, verified by the ring
// property tests) while the whole ring still fits in tens of KiB.
const defaultReplicas = 512

// ring is a consistent-hash ring over backend endpoint URLs. Each
// backend owns defaultReplicas points on a 64-bit circle; a key is
// owned by the first backend point at or after the key's hash.
// Ownership is a pure function of the backend set — independent of
// insertion order — so every gateway instance routes a given abstract
// name identically, and adding or removing one backend only moves the
// keys that hashed into the vanished (or newly claimed) arcs.
type ring struct {
	backends []string // sorted, unique
	points   []ringPoint
}

type ringPoint struct {
	hash    uint64
	backend string
}

// newRing builds the ring for a backend set (order-insensitive;
// duplicates collapse).
func newRing(backends []string) *ring {
	uniq := map[string]bool{}
	r := &ring{}
	for _, b := range backends {
		if b == "" || uniq[b] {
			continue
		}
		uniq[b] = true
		r.backends = append(r.backends, b)
	}
	sort.Strings(r.backends)
	for _, b := range r.backends {
		for i := 0; i < defaultReplicas; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(b + "#" + strconv.Itoa(i)), backend: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// Backends returns the sorted backend set.
func (r *ring) Backends() []string { return r.backends }

// Owner maps a key to its owning backend, skipping backends the
// healthy predicate rejects (nil accepts all). When every backend is
// unhealthy the primary owner is returned anyway — the caller's
// forward will fail fast and surface the outage as a busy fault
// rather than masking it as an unknown resource.
func (r *ring) Owner(key string, healthy func(string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	primary := r.points[start%len(r.points)].backend
	if healthy == nil {
		return primary
	}
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(seen) < len(r.backends); i++ {
		b := r.points[(start+i)%len(r.points)].backend
		if seen[b] {
			continue
		}
		seen[b] = true
		if healthy(b) {
			return b
		}
	}
	return primary
}

// hash64 is FNV-64a followed by a splitmix64 finalizer. Raw FNV on
// near-identical strings (vnode labels differ only in their numeric
// suffix) leaves enough correlation in the high bits to skew arc
// lengths well past the federation's ±15% balance target; the
// avalanche pass fixes that while staying deterministic across
// processes (no seed).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so every
// input bit affects every output bit.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
