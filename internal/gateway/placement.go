package gateway

import "sync"

// placements is the gateway's resource-location table: abstract name →
// backend endpoint URL. Entries come from two sources — factory replies
// the gateway proxied (authoritative: it placed the resource itself)
// and backend resource lists collected by the health prober (discovered
// pre-existing resources). A recorded location always wins over the
// consistent-hash ring, so routing stays stable for resources that were
// placed by load rather than by hash, and for resources that predate
// the gateway.
type placements struct {
	mu     sync.RWMutex
	byName map[string]string
	counts map[string]int
}

func newPlacements() *placements {
	return &placements{byName: make(map[string]string), counts: make(map[string]int)}
}

// record pins a resource to a backend (idempotent; relocating a name
// moves its count).
func (p *placements) record(name, backend string) {
	if name == "" || backend == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.byName[name]; ok {
		if prev == backend {
			return
		}
		p.counts[prev]--
	}
	p.byName[name] = backend
	p.counts[backend]++
}

// lookup returns the recorded backend for a name.
func (p *placements) lookup(name string) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	b, ok := p.byName[name]
	return b, ok
}

// forget drops a name (resource destroyed).
func (p *placements) forget(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.byName[name]; ok {
		p.counts[b]--
		delete(p.byName, name)
	}
}

// load reports how many resources are recorded on a backend.
func (p *placements) load(backend string) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.counts[backend]
}

// leastLoaded picks the backend with the fewest recorded placements
// from candidates, breaking ties by backend name so placement is
// deterministic under equal load. Returns "" for no candidates.
func (p *placements) leastLoaded(candidates []string) string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	best, bestLoad := "", 0
	for _, b := range candidates {
		n := p.counts[b]
		if best == "" || n < bestLoad || (n == bestLoad && b < best) {
			best, bestLoad = b, n
		}
	}
	return best
}
