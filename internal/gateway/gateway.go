// Package gateway is the DAIS federation front door: one SOAP endpoint
// that owns the cluster-wide CoreResourceList (paper §4.3's optional
// interface) and proxies every ops-catalog operation onto one of N
// backend DAIS endpoints.
//
// Routing is by DataResourceAbstractName: a recorded placement (from a
// factory reply the gateway proxied, or a backend resource list the
// health prober collected) wins; otherwise a consistent-hash ring over
// the backend set decides, so every gateway instance routes a given
// name identically and backend churn moves only the keys it must.
// Cluster aliases name a list of equivalent per-backend resources:
// GenericQuery on an alias scatter-gathers across the member resources
// with bounded fan-out and a deterministic merge, and factory
// operations on an alias place the derived resource on the least-loaded
// healthy backend.
//
// Every backend call runs through the resilient consumer client
// (internal/resil): idempotency-gated retries, and a per-backend
// circuit breaker whose transitions feed the gateway's health board so
// a dying backend leaves the routing rotation immediately. Responses
// stream back byte-identically — the gateway re-wraps the backend's
// response body, rewriting only EPR replies so consumers keep routing
// through the gateway.
package gateway

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/resil"
	"dais/internal/service"
	"dais/internal/soap"
	"dais/internal/telemetry"
	"dais/internal/wsaddr"
	"dais/internal/xmlutil"
)

// Member is one concrete backend resource an alias federates over.
type Member struct {
	Backend  string // backend endpoint URL
	Resource string // the resource's abstract name on that backend
}

// Alias is a cluster-wide resource name the gateway itself owns: it
// stands for one equivalent resource per backend. Scatter-gather
// queries and least-loaded factory placement address the alias.
type Alias struct {
	Name    string
	Members []Member
}

// Config assembles a Gateway.
type Config struct {
	// Backends are the federated DAIS endpoint URLs (at least one).
	Backends []string
	// Aliases are the cluster-wide scatter/placement names.
	Aliases []Alias
	// Fanout bounds concurrent backend calls per scatter (and per
	// probe sweep). 0 selects 4.
	Fanout int
	// Observer receives gateway metrics and spans; telemetry.Default
	// unless set, nil disables instrumentation.
	Observer    *telemetry.Observer
	ObserverSet bool // distinguishes explicit nil from unset
	// Resilience is the per-backend client policy; zero selects
	// resil.DefaultClientConfig. The gateway installs its own breaker
	// observer on top of any OnBreakerChange set here.
	Resilience *resil.ClientConfig
	// Admission bounds the concurrency the gateway accepts before
	// shedding (nil disables admission control).
	Admission *resil.AdmissionConfig
	// HTTPClient overrides the backend transport (nil = default
	// keep-alive pool).
	HTTPClient *http.Client
	// ProbeTimeout bounds one backend health probe (0 selects 2s).
	ProbeTimeout time.Duration
}

// Gateway is the federation front door. It implements http.Handler.
type Gateway struct {
	ring         *ring
	place        *placements
	aliases      map[string]*Alias
	client       *client.Client
	soapSrv      *soap.Server
	obs          *telemetry.Observer
	gm           *gwMetrics
	health       *healthBoard
	gate         *resil.Gate
	shed         func(service, scope string)
	fanout       int
	probeTimeout time.Duration
	address      string
}

// New builds a gateway over the configured backends. Call SetAddress
// before serving so minted EPRs carry the gateway's public URL.
func New(cfg Config) *Gateway {
	obs := cfg.Observer
	if obs == nil && !cfg.ObserverSet {
		obs = telemetry.Default
	}
	fanout := cfg.Fanout
	if fanout <= 0 {
		fanout = 4
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 2 * time.Second
	}
	g := &Gateway{
		ring:         newRing(cfg.Backends),
		place:        newPlacements(),
		aliases:      make(map[string]*Alias),
		obs:          obs,
		fanout:       fanout,
		probeTimeout: probeTimeout,
	}
	if obs != nil {
		g.gm = gwMetricsFor(obs.Registry)
	}
	g.health = newHealthBoard(g.ring.Backends(), g.gm)
	for i := range cfg.Aliases {
		a := cfg.Aliases[i]
		g.aliases[a.Name] = &a
	}
	rcfg := resil.DefaultClientConfig()
	if cfg.Resilience != nil {
		rcfg = *cfg.Resilience
	}
	if rcfg.Observer == nil {
		rcfg.Observer = obs
	}
	if user := rcfg.OnBreakerChange; user != nil {
		rcfg.OnBreakerChange = func(endpoint, to string) {
			g.onBreakerChange(endpoint, to)
			user(endpoint, to)
		}
	} else {
		rcfg.OnBreakerChange = g.onBreakerChange
	}
	g.client = client.NewResilient(cfg.HTTPClient, obs, rcfg)
	if cfg.Admission != nil {
		g.gate = resil.NewGate(*cfg.Admission)
		if obs != nil {
			g.shed = resil.ShedObserver(obs.Registry)
		}
	}
	ics := []soap.Interceptor{soap.ServerRequestID()}
	if obs != nil {
		ics = append(ics, obs.ServerInterceptor())
	}
	g.soapSrv = soap.NewServer(ics...)
	if obs != nil {
		g.soapSrv.OnExchange(obs.ExchangeObserver(telemetry.SideServer))
	}
	for _, spec := range ops.Catalog() {
		spec := spec
		if spec.Action == ops.ActGetResourceList {
			g.soapSrv.Handle(spec.Action, g.handleList(spec))
			continue
		}
		g.soapSrv.Handle(spec.Action, g.handleProxy(spec))
	}
	return g
}

// SetAddress records the gateway's public endpoint URL, used in every
// EPR the gateway mints.
func (g *Gateway) SetAddress(addr string) { g.address = addr }

// Address returns the gateway's public endpoint URL.
func (g *Gateway) Address() string { return g.address }

// Backends returns the federated backend endpoints.
func (g *Gateway) Backends() []string { return g.ring.Backends() }

// ServeHTTP implements http.Handler: POST carries SOAP.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.soapSrv.ServeHTTP(w, r)
}

// EPRFor mints a gateway EPR for an abstract name: the gateway's
// address plus the name as a reference parameter, exactly the shape a
// backend endpoint mints for its own resources.
func (g *Gateway) EPRFor(abstractName string) *wsaddr.EndpointReference {
	epr := wsaddr.NewEPR(g.address)
	p := xmlutil.NewElement(core.NSDAI, "DataResourceAbstractName")
	p.SetText(abstractName)
	epr.AddReferenceParameter(p)
	return epr
}

// route resolves the backend owning an abstract name: recorded
// placements win, then the consistent-hash ring filtered to healthy
// backends.
func (g *Gateway) route(name string) string {
	if b, ok := g.place.lookup(name); ok {
		return b
	}
	return g.ring.Owner(name, g.health.isHealthy)
}

// handleProxy proxies one catalog operation: admission, alias or
// name-based routing, the resilient backend call, EPR rewriting for
// factory-style replies, and fault re-encoding — the reply a consumer
// sees is byte-identical to dialing the owning backend directly,
// except that EPRs address the gateway.
func (g *Gateway) handleProxy(spec ops.Spec) soap.HandlerFunc {
	return func(ctx context.Context, _ string, env *soap.Envelope) (*soap.Envelope, error) {
		body := env.BodyEntry()
		if body == nil {
			return nil, soap.ClientFault("empty SOAP body")
		}
		ctx = ops.WithCallInfo(ctx, spec.Info())
		name := ops.AbstractNameText(body)
		if g.gate != nil {
			release, scope, err := g.gate.Acquire(name)
			if err != nil {
				if g.shed != nil {
					g.shed("gateway", scope)
				}
				return nil, service.ToSOAPFault(err)
			}
			defer release()
		}
		var resp *xmlutil.Element
		var err error
		if a, ok := g.aliases[name]; ok {
			resp, err = g.aliasOp(ctx, spec, a, body)
		} else {
			resp, err = g.namedOp(ctx, spec, name, body)
		}
		if err != nil {
			return nil, service.ToSOAPFault(g.gwError(ctx, err))
		}
		return reply(env, spec, resp), nil
	}
}

// namedOp forwards an operation addressed to a concrete resource name
// to its owning backend.
func (g *Gateway) namedOp(ctx context.Context, spec ops.Spec, name string, body *xmlutil.Element) (*xmlutil.Element, error) {
	resp, err := g.forward(ctx, g.route(name), spec, body)
	if err == nil && (spec.Action == ops.ActDestroyDataResource || spec.Action == ops.ActWSRFDestroy) {
		g.place.forget(name)
	}
	return resp, err
}

// aliasOp handles an operation addressed to a cluster alias: Resolve
// answers locally with a gateway EPR, GenericQuery scatter-gathers
// over the members, and factory operations place on the least-loaded
// healthy member. Anything else has no cluster-wide meaning.
func (g *Gateway) aliasOp(ctx context.Context, spec ops.Spec, a *Alias, body *xmlutil.Element) (*xmlutil.Element, error) {
	switch {
	case spec.Action == ops.ActResolve:
		resp := spec.NewResponse()
		ops.AddResourceAddress(resp, g.EPRFor(a.Name))
		return resp, nil
	case spec.Action == ops.ActGenericQuery:
		return g.scatterQuery(ctx, spec, a, body)
	case spec.EPRReply:
		m, err := g.placeMember(a)
		if err != nil {
			return nil, err
		}
		ops.SetAbstractName(body, m.Resource)
		return g.forward(ctx, m.Backend, spec, body)
	default:
		return nil, &core.InvalidResourceNameFault{
			Name: a.Name + " (cluster alias: supports GenericQuery, Resolve and factory operations)"}
	}
}

// placeMember picks the alias member on the least-loaded healthy
// backend (deterministic tie-break by backend URL).
func (g *Gateway) placeMember(a *Alias) (Member, error) {
	var candidates []string
	byBackend := map[string]Member{}
	for _, m := range a.Members {
		if g.health.isHealthy(m.Backend) {
			candidates = append(candidates, m.Backend)
			byBackend[m.Backend] = m
		}
	}
	best := g.place.leastLoaded(candidates)
	if best == "" {
		return Member{}, &core.ServiceBusyFault{
			Reason:     "no healthy backend for alias " + a.Name,
			RetryAfter: time.Second,
		}
	}
	return byBackend[best], nil
}

// forward performs the resilient backend call and, for EPR replies,
// rewrites the address to the gateway and records the placement.
func (g *Gateway) forward(ctx context.Context, backend string, spec ops.Spec, body *xmlutil.Element) (*xmlutil.Element, error) {
	if backend == "" {
		return nil, &core.ServiceBusyFault{Reason: "no backend configured", RetryAfter: time.Second}
	}
	resp, err := g.client.Invoke(ctx, backend, spec, body)
	g.gm.request(backend, spec.Op, telemetry.FaultCode(err))
	if err != nil {
		return nil, err
	}
	if spec.EPRReply {
		return g.rewriteEPR(spec, resp, backend)
	}
	return resp, nil
}

// rewriteEPR rebuilds an EPR-bearing reply (factory responses,
// Resolve) around a gateway EPR: the derived resource's abstract name
// is read from the backend's EPR, its placement recorded, and the
// response re-minted so the consumer keeps routing through the
// gateway. The backend EPR's own address — satellite-2's fixed client
// fallback notwithstanding — never reaches the consumer.
func (g *Gateway) rewriteEPR(spec ops.Spec, resp *xmlutil.Element, backend string) (*xmlutil.Element, error) {
	epr, err := ops.ResourceAddress(resp)
	if err != nil {
		return nil, err
	}
	name := ops.EPRName(epr)
	if name == "" {
		return nil, errors.New("gateway: backend EPR carries no DataResourceAbstractName")
	}
	g.place.record(name, backend)
	out := spec.NewResponse()
	ops.AddResourceAddress(out, g.EPRFor(name))
	return out, nil
}

// handleList serves the cluster-wide GetResourceList: the merged,
// sorted union of every healthy backend's resource list plus the
// gateway's own aliases. Unreachable backends are skipped (and marked
// unhealthy) — the list reflects what the federation can serve now.
func (g *Gateway) handleList(spec ops.Spec) soap.HandlerFunc {
	return func(ctx context.Context, _ string, env *soap.Envelope) (*soap.Envelope, error) {
		ctx = ops.WithCallInfo(ctx, spec.Info())
		if g.gate != nil {
			release, scope, err := g.gate.Acquire("")
			if err != nil {
				if g.shed != nil {
					g.shed("gateway", scope)
				}
				return nil, service.ToSOAPFault(err)
			}
			defer release()
		}
		names := g.collectResourceLists(ctx)
		for name := range g.aliases {
			names = append(names, name)
		}
		sort.Strings(names)
		names = dedupe(names)
		return reply(env, spec, ops.ResourceListResponse(names)), nil
	}
}

// collectResourceLists fans GetResourceList over the healthy backends
// (bounded), records discovered placements, and returns the union.
func (g *Gateway) collectResourceLists(ctx context.Context) []string {
	backends := g.ring.Backends()
	results := make([][]string, len(backends))
	sem := make(chan struct{}, g.fanout)
	done := make(chan int, len(backends))
	launched := 0
	for i, b := range backends {
		if !g.health.isHealthy(b) {
			continue
		}
		launched++
		go func(i int, backend string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			names, err := g.client.GetResourceList(ctx, backend)
			g.gm.request(backend, ops.GetResourceList.Op, telemetry.FaultCode(err))
			if err != nil {
				g.health.set(backend, false, "list failed: "+err.Error())
			} else {
				for _, n := range names {
					g.place.record(n, backend)
				}
				results[i] = names
			}
			done <- i
		}(i, b)
	}
	for ; launched > 0; launched-- {
		<-done
	}
	var out []string
	for _, names := range results {
		out = append(out, names...)
	}
	return out
}

// gwError maps backend-path errors to the fault a consumer should see:
// typed DAIS faults and SOAP faults pass through untouched (the
// backend's definitive answer), circuit-open and transport failures
// become a ServiceBusyFault with pacing, and the caller's own expired
// context a RequestTimeoutFault.
func (g *Gateway) gwError(ctx context.Context, err error) error {
	if core.FaultName(err) != "" {
		return err
	}
	var f *soap.Fault
	if errors.As(err, &f) {
		return f
	}
	if ctx.Err() != nil {
		return &core.RequestTimeoutFault{Detail: err.Error()}
	}
	var open *resil.CircuitOpenError
	if errors.As(err, &open) {
		return &core.ServiceBusyFault{
			Reason:     "backend circuit open: " + open.Endpoint,
			RetryAfter: time.Second,
		}
	}
	return &core.ServiceBusyFault{
		Reason:     "backend unavailable: " + err.Error(),
		RetryAfter: time.Second,
	}
}

// reply wraps a response body with the WS-Addressing reply headers,
// mirroring the service layer's bind tail so gateway replies are
// shaped exactly like backend replies.
func reply(req *soap.Envelope, spec ops.Spec, body *xmlutil.Element) *soap.Envelope {
	out := soap.NewEnvelope(body)
	h := wsaddr.FromEnvelope(req)
	wsaddr.ReplyHeaders(h, spec.Action+"Response").Attach(out)
	return out
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
