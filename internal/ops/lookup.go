package ops

import (
	"strings"
	"sync"

	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/dair"
	"dais/internal/daix"
)

// actionIndex maps every catalog action URI to its spec, built once.
var actionIndex = sync.OnceValue(func() map[string]Spec {
	m := make(map[string]Spec)
	for _, s := range Catalog() {
		m[s.Action] = s
	}
	return m
})

// ByAction resolves an action URI to its catalog spec. Server-side
// interceptors run outside the dispatch that attaches CallInfo to the
// context, so they label exchanges through this lookup instead.
func ByAction(action string) (Spec, bool) {
	s, ok := actionIndex()[action]
	return s, ok
}

// OpOf returns the best operation label for an action URI: the catalog
// operation name when known, else the URI's final path segment, else
// the URI itself.
func OpOf(action string) string {
	if s, ok := ByAction(action); ok {
		return s.Op
	}
	if i := strings.LastIndex(action, "/"); i >= 0 && i+1 < len(action) {
		return action[i+1:]
	}
	return action
}

// KindOf classifies a data resource instance into its catalog Kind —
// the label the WSRF resource gauges group by. Unknown realisations
// report KindData.
func KindOf(r core.DataResource) Kind {
	switch r.(type) {
	case *dair.SQLDataResource:
		return KindSQL
	case *dair.SQLResponseResource:
		return KindSQLResponse
	case *dair.SQLRowsetResource:
		return KindSQLRowset
	case *daix.XMLCollectionResource:
		return KindXMLCollection
	case *daix.XMLSequenceResource:
		return KindXMLSequence
	case *daif.FileDataResource:
		return KindFile
	case *daif.StagedFileResource:
		return KindFileReader
	}
	return KindData
}
