package ops

import (
	"encoding/base64"
	"fmt"
	"strconv"

	"dais/internal/core"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

// Msg is a request message body: the consumer encodes it into the
// request element the spec built. The matching Decode lives on the
// pointer type so the service can allocate and fill it generically.
// Sharing one codec type on both sides makes client/server message
// agreement hold by construction.
type Msg interface {
	Encode(s Spec, req *xmlutil.Element)
}

// MsgFunc adapts a function to Msg for one-off request shapes (the
// WSRF operations, whose bodies the handlers consume directly).
type MsgFunc func(s Spec, req *xmlutil.Element)

// Encode implements Msg.
func (f MsgFunc) Encode(s Spec, req *xmlutil.Element) { f(s, req) }

// Empty is the request message of operations whose body carries only
// the abstract name.
type Empty struct{}

// Encode implements Msg.
func (Empty) Encode(Spec, *xmlutil.Element) {}

// Decode implements the service-side codec.
func (*Empty) Decode(Spec, *xmlutil.Element) error { return nil }

// intChild reads an integer child element, with a default when absent.
func intChild(body *xmlutil.Element, ns, local string, def int) (int, error) {
	el := body.Find(ns, local)
	if el == nil {
		return def, nil
	}
	n, err := strconv.Atoi(el.Text())
	if err != nil {
		return 0, fmt.Errorf("ops: %s: %w", local, err)
	}
	return n, nil
}

// int64Child is intChild for 64-bit ranges (file offsets).
func int64Child(body *xmlutil.Element, ns, local string, def int64) (int64, error) {
	el := body.Find(ns, local)
	if el == nil {
		return def, nil
	}
	n, err := strconv.ParseInt(el.Text(), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ops: %s: %w", local, err)
	}
	return n, nil
}

// encodeConfig appends an optional ConfigurationDocument.
func encodeConfig(req *xmlutil.Element, cfg *core.Configuration) {
	if cfg != nil {
		req.AppendChild(cfg.Element())
	}
}

// decodeConfig parses the optional ConfigurationDocument (defaults
// apply when absent).
func decodeConfig(body *xmlutil.Element) (*core.Configuration, error) {
	c, err := core.ParseConfiguration(body.Find(core.NSDAI, "ConfigurationDocument"))
	if err != nil {
		return nil, err
	}
	return &c, nil
}

// SQLExpression is the WS-DAIR query shape: expression text plus
// positional parameters.
type SQLExpression struct {
	Expression string
	Params     []sqlengine.Value
}

// AddSQLExpression renders an SQLExpression element into a request.
func AddSQLExpression(req *xmlutil.Element, expression string, params []sqlengine.Value) {
	se := req.Add(NSDAIR, "SQLExpression")
	se.AddText(NSDAIR, "Expression", expression)
	for _, p := range params {
		pe := se.Add(NSDAIR, "Parameter")
		if p.IsNull() {
			pe.SetAttr("", "isNull", "true")
		} else {
			pe.SetAttr("", "type", p.Type.String())
			pe.SetText(p.String())
		}
	}
}

// ParseSQLExpression decodes an SQLExpression element.
func ParseSQLExpression(req *xmlutil.Element) (string, []sqlengine.Value, error) {
	se := req.Find(NSDAIR, "SQLExpression")
	if se == nil {
		return "", nil, fmt.Errorf("ops: request is missing SQLExpression")
	}
	expr := se.FindText(NSDAIR, "Expression")
	if expr == "" {
		return "", nil, fmt.Errorf("ops: SQLExpression has no Expression")
	}
	var params []sqlengine.Value
	for _, pe := range se.FindAll(NSDAIR, "Parameter") {
		if pe.AttrValue("", "isNull") == "true" {
			params = append(params, sqlengine.Null)
			continue
		}
		t, err := sqlengine.TypeFromName(pe.AttrValue("", "type"))
		if err != nil {
			t = sqlengine.TypeVarchar
		}
		v, err := sqlengine.NewString(pe.Text()).Coerce(t)
		if err != nil {
			return "", nil, fmt.Errorf("ops: bad parameter %q: %w", pe.Text(), err)
		}
		params = append(params, v)
	}
	return expr, params, nil
}

func (x SQLExpression) encode(req *xmlutil.Element) {
	AddSQLExpression(req, x.Expression, x.Params)
}

func (x *SQLExpression) decode(body *xmlutil.Element) error {
	expr, params, err := ParseSQLExpression(body)
	if err != nil {
		return err
	}
	x.Expression, x.Params = expr, params
	return nil
}

// GenericQueryMsg is the WS-DAI GenericQuery request.
type GenericQueryMsg struct {
	Language   string
	Expression string
}

func (m GenericQueryMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(core.NSDAI, "GenericQueryLanguage", m.Language)
	req.AddText(core.NSDAI, "Expression", m.Expression)
}

func (m *GenericQueryMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.Language = body.FindText(core.NSDAI, "GenericQueryLanguage")
	m.Expression = body.FindText(core.NSDAI, "Expression")
	return nil
}

// SQLExecuteMsg is the direct SQLExecute request: the expression plus an
// optional DatasetFormatURI ("" selects the resource default).
type SQLExecuteMsg struct {
	Expr      SQLExpression
	FormatURI string
}

func (m SQLExecuteMsg) Encode(s Spec, req *xmlutil.Element) {
	if m.FormatURI != "" {
		req.AddText(core.NSDAI, "DatasetFormatURI", m.FormatURI)
	}
	m.Expr.encode(req)
}

func (m *SQLExecuteMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.FormatURI = body.FindText(core.NSDAI, "DatasetFormatURI")
	return m.Expr.decode(body)
}

// SQLFactoryMsg is the SQLExecuteFactory request (the spec adds the
// PortTypeQName).
type SQLFactoryMsg struct {
	Expr   SQLExpression
	Config *core.Configuration
}

func (m SQLFactoryMsg) Encode(s Spec, req *xmlutil.Element) {
	encodeConfig(req, m.Config)
	m.Expr.encode(req)
}

func (m *SQLFactoryMsg) Decode(s Spec, body *xmlutil.Element) error {
	if err := m.Expr.decode(body); err != nil {
		return err
	}
	cfg, err := decodeConfig(body)
	if err != nil {
		return err
	}
	m.Config = cfg
	return nil
}

// IndexMsg selects the index-th item of a multi-part SQL response.
type IndexMsg struct{ Index int }

func (m IndexMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIR, "Index", strconv.Itoa(m.Index))
}

func (m *IndexMsg) Decode(s Spec, body *xmlutil.Element) error {
	n, err := intChild(body, NSDAIR, "Index", 0)
	if err != nil {
		return err
	}
	m.Index = n
	return nil
}

// ParamMsg names an output parameter of a stored-procedure response.
type ParamMsg struct{ ParameterName string }

func (m ParamMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIR, "ParameterName", m.ParameterName)
}

func (m *ParamMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.ParameterName = body.FindText(NSDAIR, "ParameterName")
	return nil
}

// RowsetFactoryMsg is the SQLRowsetFactory request. Count > 0 bounds the
// rows copied into the derived rowset; 0 copies every row.
type RowsetFactoryMsg struct {
	FormatURI string
	Count     int
	Config    *core.Configuration
}

func (m RowsetFactoryMsg) Encode(s Spec, req *xmlutil.Element) {
	if m.FormatURI != "" {
		req.AddText(core.NSDAI, "DatasetFormatURI", m.FormatURI)
	}
	if m.Count > 0 {
		req.AddText(NSDAIR, "Count", strconv.Itoa(m.Count))
	}
	encodeConfig(req, m.Config)
}

func (m *RowsetFactoryMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.FormatURI = body.FindText(core.NSDAI, "DatasetFormatURI")
	n, err := intChild(body, NSDAIR, "Count", 0)
	if err != nil {
		return err
	}
	m.Count = n
	cfg, err := decodeConfig(body)
	if err != nil {
		return err
	}
	m.Config = cfg
	return nil
}

// PageMsg pages through a derived rowset or sequence. The element
// namespace follows the spec (DAIR for GetTuples, DAIX for GetItems).
// Server-side, HasCount distinguishes an absent Count (the handler
// substitutes the resource size) from an explicit one.
type PageMsg struct {
	Start    int
	Count    int
	HasCount bool
}

func (m PageMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(s.NS, "StartPosition", strconv.Itoa(m.Start))
	req.AddText(s.NS, "Count", strconv.Itoa(m.Count))
}

func (m *PageMsg) Decode(s Spec, body *xmlutil.Element) error {
	start, err := intChild(body, s.NS, "StartPosition", 1)
	if err != nil {
		return err
	}
	m.Start = start
	if body.Find(s.NS, "Count") == nil {
		m.HasCount = false
		return nil
	}
	n, err := intChild(body, s.NS, "Count", 0)
	if err != nil {
		return err
	}
	m.Count, m.HasCount = n, true
	return nil
}

// DocMsg names a stored document.
type DocMsg struct{ DocumentName string }

func (m DocMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIX, "DocumentName", m.DocumentName)
}

func (m *DocMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.DocumentName = body.FindText(NSDAIX, "DocumentName")
	return nil
}

// AddDocumentMsg stores one document under a name.
type AddDocumentMsg struct {
	DocumentName string
	Document     *xmlutil.Element
}

func (m AddDocumentMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIX, "DocumentName", m.DocumentName)
	wrap := req.Add(NSDAIX, "Document")
	wrap.AppendChild(m.Document.Clone())
}

func (m *AddDocumentMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.DocumentName = body.FindText(NSDAIX, "DocumentName")
	wrap := body.Find(NSDAIX, "Document")
	if m.DocumentName == "" || wrap == nil || len(wrap.ChildElements()) != 1 {
		return fmt.Errorf("AddDocument requires DocumentName and a single Document child")
	}
	m.Document = wrap.ChildElements()[0]
	return nil
}

// CollMsg names a sub-collection.
type CollMsg struct{ CollectionName string }

func (m CollMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIX, "CollectionName", m.CollectionName)
}

func (m *CollMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.CollectionName = body.FindText(NSDAIX, "CollectionName")
	return nil
}

// ExprMsg carries an XPath / XQuery expression.
type ExprMsg struct{ Expression string }

func (m ExprMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIX, "Expression", m.Expression)
}

func (m *ExprMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.Expression = body.FindText(NSDAIX, "Expression")
	return nil
}

// XUpdateMsg applies an XUpdate modifications document to one stored
// document. The modifications element keeps its own (xupdate)
// namespace, so decode matches by local name only.
type XUpdateMsg struct {
	DocumentName  string
	Modifications *xmlutil.Element
}

func (m XUpdateMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIX, "DocumentName", m.DocumentName)
	req.AppendChild(m.Modifications.Clone())
}

func (m *XUpdateMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.DocumentName = body.FindText(NSDAIX, "DocumentName")
	m.Modifications = body.Find("", "modifications")
	if m.Modifications == nil {
		return fmt.Errorf("XUpdateExecute requires an xupdate:modifications child")
	}
	return nil
}

// SeqFactoryMsg is the XPath/XQuery factory request.
type SeqFactoryMsg struct {
	Expression string
	Config     *core.Configuration
}

func (m SeqFactoryMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIX, "Expression", m.Expression)
	encodeConfig(req, m.Config)
}

func (m *SeqFactoryMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.Expression = body.FindText(NSDAIX, "Expression")
	cfg, err := decodeConfig(body)
	if err != nil {
		return err
	}
	m.Config = cfg
	return nil
}

// CollFactoryMsg is the CollectionFactory request.
type CollFactoryMsg struct {
	CollectionName string
	Config         *core.Configuration
}

func (m CollFactoryMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIX, "CollectionName", m.CollectionName)
	encodeConfig(req, m.Config)
}

func (m *CollFactoryMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.CollectionName = body.FindText(NSDAIX, "CollectionName")
	cfg, err := decodeConfig(body)
	if err != nil {
		return err
	}
	m.Config = cfg
	return nil
}

// FileRangeMsg is the ReadFile request: a byte range within a named
// file (Count < 0 reads to the end).
type FileRangeMsg struct {
	FileName string
	Offset   int64
	Count    int64
}

func (m FileRangeMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIF, "FileName", m.FileName)
	req.AddText(NSDAIF, "Offset", strconv.FormatInt(m.Offset, 10))
	req.AddText(NSDAIF, "Count", strconv.FormatInt(m.Count, 10))
}

func (m *FileRangeMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.FileName = body.FindText(NSDAIF, "FileName")
	off, err := int64Child(body, NSDAIF, "Offset", 0)
	if err != nil {
		return err
	}
	count, err := int64Child(body, NSDAIF, "Count", -1)
	if err != nil {
		return err
	}
	m.Offset, m.Count = off, count
	return nil
}

// FileDataMsg carries a write/append payload, base64-encoded on the
// wire.
type FileDataMsg struct {
	FileName string
	Data     []byte
}

func (m FileDataMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIF, "FileName", m.FileName)
	d := req.Add(NSDAIF, "Data")
	d.SetAttr("", "encoding", "base64")
	d.SetText(base64.StdEncoding.EncodeToString(m.Data))
}

func (m *FileDataMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.FileName = body.FindText(NSDAIF, "FileName")
	data, err := base64.StdEncoding.DecodeString(body.FindText(NSDAIF, "Data"))
	if err != nil {
		return fmt.Errorf("bad base64 payload: %s", err.Error())
	}
	m.Data = data
	return nil
}

// FileNameMsg names one file.
type FileNameMsg struct{ FileName string }

func (m FileNameMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIF, "FileName", m.FileName)
}

func (m *FileNameMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.FileName = body.FindText(NSDAIF, "FileName")
	return nil
}

// PatternMsg carries a glob pattern ("" matches everything).
type PatternMsg struct{ Pattern string }

func (m PatternMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIF, "Pattern", m.Pattern)
}

func (m *PatternMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.Pattern = body.FindText(NSDAIF, "Pattern")
	return nil
}

// FileFactoryMsg is the FileSelectFactory request.
type FileFactoryMsg struct {
	Pattern string
	Config  *core.Configuration
}

func (m FileFactoryMsg) Encode(s Spec, req *xmlutil.Element) {
	req.AddText(NSDAIF, "Pattern", m.Pattern)
	encodeConfig(req, m.Config)
}

func (m *FileFactoryMsg) Decode(s Spec, body *xmlutil.Element) error {
	m.Pattern = body.FindText(NSDAIF, "Pattern")
	cfg, err := decodeConfig(body)
	if err != nil {
		return err
	}
	m.Config = cfg
	return nil
}
