package ops

import (
	"bytes"

	"dais/internal/core"
	"dais/internal/rowset"
	"dais/internal/wsaddr"
	"dais/internal/xmlutil"
)

// DatasetElement embeds encoded data in a response: XML formats are
// embedded as element trees, others (CSV, binary) as text.
//
// Payloads produced by the registered XML codecs (SQLRowset, WebRowSet)
// are embedded verbatim as a Raw node: the codec just rendered a
// well-formed standalone fragment, so re-parsing it into a tree only to
// serialise it again inside the envelope would buy nothing but
// allocations. Other XML-looking payloads still take the parse path,
// which also validates them before they can corrupt the envelope.
func DatasetElement(formatURI string, data []byte) *xmlutil.Element {
	e := xmlutil.NewElement(core.NSDAI, "Dataset")
	e.SetAttr("", "formatURI", formatURI)
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '<' {
		if formatURI == rowset.FormatSQLRowset || formatURI == rowset.FormatWebRowSet {
			e.Children = append(e.Children, xmlutil.Raw(trimmed))
			return e
		}
		if parsed, err := xmlutil.ParseBytes(trimmed); err == nil {
			e.AppendChild(parsed)
			return e
		}
	}
	e.SetText(string(data))
	return e
}

// DatasetPayload extracts the raw bytes and format URI from a Dataset
// element produced by DatasetElement.
func DatasetPayload(e *xmlutil.Element) ([]byte, string) {
	if e == nil {
		return nil, ""
	}
	format := e.AttrValue("", "formatURI")
	for _, c := range e.Children {
		if raw, ok := c.(xmlutil.Raw); ok {
			return []byte(raw), format
		}
	}
	if kids := e.ChildElements(); len(kids) == 1 {
		return xmlutil.Marshal(kids[0]), format
	}
	return []byte(e.Text()), format
}

// AddResourceAddress appends the factory-response EPR (paper Fig. 3:
// indirect access returns an address to the derived resource).
func AddResourceAddress(resp *xmlutil.Element, epr *wsaddr.EndpointReference) {
	resp.AppendChild(epr.Element(core.NSDAI, "DataResourceAddress"))
}

// ResourceAddress extracts the DataResourceAddress EPR from a factory
// response.
func ResourceAddress(resp *xmlutil.Element) (*wsaddr.EndpointReference, error) {
	return wsaddr.ParseEPR(resp.Find(core.NSDAI, "DataResourceAddress"))
}
