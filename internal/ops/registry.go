package ops

import (
	"fmt"
	"sort"
)

// Registry is the set of operations one endpoint actually exposes (the
// catalog filtered by the endpoint's enabled interfaces and WSRF
// layering). It is the single source the SOAP dispatcher, the WSDL
// generator and the completeness tests read.
type Registry struct {
	byAction map[string]Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byAction: make(map[string]Spec)}
}

// Add registers a spec. A duplicate wsa:Action is a programming error
// in the catalog — two operations would be indistinguishable on the
// wire — so it panics.
func (r *Registry) Add(s Spec) {
	if _, dup := r.byAction[s.Action]; dup {
		panic(fmt.Sprintf("ops: duplicate action %q in registry", s.Action))
	}
	r.byAction[s.Action] = s
}

// Lookup returns the spec registered for an action.
func (r *Registry) Lookup(action string) (Spec, bool) {
	s, ok := r.byAction[action]
	return s, ok
}

// Len reports how many operations are registered.
func (r *Registry) Len() int { return len(r.byAction) }

// Specs returns every registered spec, sorted by action URI (the
// stable order the WSDL generator emits).
func (r *Registry) Specs() []Spec {
	out := make([]Spec, 0, len(r.byAction))
	for _, s := range r.byAction {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Action < out[j].Action })
	return out
}

// ByClass groups the registered specs by interface class — the Fig. 6
// table view.
func (r *Registry) ByClass() map[string][]Spec {
	out := make(map[string][]Spec)
	for _, s := range r.Specs() {
		out[s.Class] = append(out[s.Class], s)
	}
	return out
}
