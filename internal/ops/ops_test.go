package ops

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"dais/internal/core"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

// TestCatalogWellFormed checks the registry invariants every derived
// artefact (dispatch table, WSDL, client) relies on: one unique
// wsa:Action per spec, the NS + "/" + Op naming convention, and a
// complete set of classification fields.
func TestCatalogWellFormed(t *testing.T) {
	specs := Catalog()
	if len(specs) < 40 {
		t.Fatalf("catalog has %d specs, expected the full operation inventory", len(specs))
	}
	seenAction := map[string]string{}
	seenRequest := map[xmlutil.Name]string{}
	for _, s := range specs {
		if s.Op == "" || s.NS == "" || s.Class == "" || s.Action == "" {
			t.Errorf("spec %+v: missing Op/NS/Class/Action", s)
		}
		if want := s.NS + "/" + s.Op; s.Action != want {
			t.Errorf("%s: action %q does not follow NS+\"/\"+Op (%q)", s.Op, s.Action, want)
		}
		if prev, dup := seenAction[s.Action]; dup {
			t.Errorf("action %q declared by both %s and %s", s.Action, prev, s.Op)
		}
		seenAction[s.Action] = s.Op
		reqName := xmlutil.Name{Space: s.NS, Local: s.RequestElement()}
		if prev, dup := seenRequest[reqName]; dup {
			t.Errorf("request element %v used by both %s and %s", reqName, prev, s.Op)
		}
		seenRequest[reqName] = s.Op
		if s.NoName && s.Resource != KindNone {
			t.Errorf("%s: NoName spec should have no resource kind", s.Op)
		}
		if !s.NoName && s.Resource == KindNone {
			t.Errorf("%s: named spec needs a resource kind", s.Op)
		}
	}
}

// TestSpecRequestFraming checks the §3 framing rule holds by
// construction: every request built from a spec carries the abstract
// name (except the NoName service-level operations), and factory specs
// advertise their PortTypeQName.
func TestSpecRequestFraming(t *testing.T) {
	for _, s := range Catalog() {
		req := s.NewRequest("res-1")
		if req.Name.Local != s.RequestElement() || req.Name.Space != s.NS {
			t.Errorf("%s: request element is %v", s.Op, req.Name)
		}
		name := req.FindText(core.NSDAI, "DataResourceAbstractName")
		if s.NoName && name != "" {
			t.Errorf("%s: NoName request carries an abstract name", s.Op)
		}
		if !s.NoName && name != "res-1" {
			t.Errorf("%s: request is missing the abstract name", s.Op)
		}
		if pt := req.FindText(core.NSDAI, "PortTypeQName"); pt != s.PortType {
			t.Errorf("%s: PortTypeQName = %q, want %q", s.Op, pt, s.PortType)
		}
		if got := s.NewResponse().Name.Local; got != s.Op+"Response" {
			t.Errorf("%s: response element is %q", s.Op, got)
		}
	}
}

// decoder is the service-side half of a message codec.
type decoder interface {
	Decode(s Spec, body *xmlutil.Element) error
}

// reparse pushes an encoded request through the XML serialiser and
// parser, as the SOAP layer does on the wire.
func reparse(t *testing.T, req *xmlutil.Element) *xmlutil.Element {
	t.Helper()
	parsed, err := xmlutil.Parse(bytes.NewReader(xmlutil.Marshal(req)))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	return parsed
}

// encodeAndDecode runs one codec round trip through the serialiser.
func encodeAndDecode(t *testing.T, spec Spec, msg Msg, into decoder) {
	t.Helper()
	req := spec.NewRequest("res-1")
	msg.Encode(spec, req)
	if err := into.Decode(spec, reparse(t, req)); err != nil {
		t.Fatalf("%s: decode: %v", spec.Op, err)
	}
}

// TestMessageCodecsRoundTrip drives every request codec through
// encode → marshal → parse → decode and compares the result, so the
// client-side and service-side halves of each message shape cannot
// drift apart.
func TestMessageCodecsRoundTrip(t *testing.T) {
	cfg := core.DefaultConfiguration()
	expr := SQLExpression{Expression: "SELECT * FROM t WHERE a = ?",
		Params: []sqlengine.Value{sqlengine.NewString("x"), sqlengine.Null}}

	cases := []struct {
		spec Spec
		msg  Msg
		want func(t *testing.T, got decoder)
	}{
		{GetPropertyDocument, Empty{}, func(t *testing.T, got decoder) {}},
		{GenericQuery, GenericQueryMsg{Language: "urn:lang", Expression: "q"},
			func(t *testing.T, got decoder) {
				m := got.(*GenericQueryMsg)
				if m.Language != "urn:lang" || m.Expression != "q" {
					t.Errorf("got %+v", m)
				}
			}},
		{SQLExecute, SQLExecuteMsg{Expr: expr, FormatURI: "urn:fmt"},
			func(t *testing.T, got decoder) {
				m := got.(*SQLExecuteMsg)
				if m.FormatURI != "urn:fmt" || !reflect.DeepEqual(m.Expr, expr) {
					t.Errorf("got %+v", m)
				}
			}},
		{SQLExecuteFactory, SQLFactoryMsg{Expr: expr, Config: &cfg},
			func(t *testing.T, got decoder) {
				m := got.(*SQLFactoryMsg)
				if !reflect.DeepEqual(m.Expr, expr) || m.Config == nil || !reflect.DeepEqual(*m.Config, cfg) {
					t.Errorf("got %+v", m)
				}
			}},
		{GetSQLRowset, IndexMsg{Index: 3},
			func(t *testing.T, got decoder) {
				if m := got.(*IndexMsg); m.Index != 3 {
					t.Errorf("got %+v", m)
				}
			}},
		{GetSQLOutputParameter, ParamMsg{ParameterName: "p1"},
			func(t *testing.T, got decoder) {
				if m := got.(*ParamMsg); m.ParameterName != "p1" {
					t.Errorf("got %+v", m)
				}
			}},
		{SQLRowsetFactory, RowsetFactoryMsg{FormatURI: "urn:fmt", Count: 7, Config: &cfg},
			func(t *testing.T, got decoder) {
				m := got.(*RowsetFactoryMsg)
				if m.FormatURI != "urn:fmt" || m.Count != 7 || m.Config == nil {
					t.Errorf("got %+v", m)
				}
			}},
		{GetTuples, PageMsg{Start: 2, Count: 5},
			func(t *testing.T, got decoder) {
				m := got.(*PageMsg)
				if m.Start != 2 || m.Count != 5 || !m.HasCount {
					t.Errorf("got %+v", m)
				}
			}},
		{GetItems, PageMsg{Start: 1, Count: 4},
			func(t *testing.T, got decoder) {
				m := got.(*PageMsg)
				if m.Start != 1 || m.Count != 4 || !m.HasCount {
					t.Errorf("got %+v", m)
				}
			}},
		{GetDocument, DocMsg{DocumentName: "d1"},
			func(t *testing.T, got decoder) {
				if m := got.(*DocMsg); m.DocumentName != "d1" {
					t.Errorf("got %+v", m)
				}
			}},
		{CreateSubcollection, CollMsg{CollectionName: "c1"},
			func(t *testing.T, got decoder) {
				if m := got.(*CollMsg); m.CollectionName != "c1" {
					t.Errorf("got %+v", m)
				}
			}},
		{XPathExecute, ExprMsg{Expression: "//a"},
			func(t *testing.T, got decoder) {
				if m := got.(*ExprMsg); m.Expression != "//a" {
					t.Errorf("got %+v", m)
				}
			}},
		{XPathExecuteFactory, SeqFactoryMsg{Expression: "//a", Config: &cfg},
			func(t *testing.T, got decoder) {
				m := got.(*SeqFactoryMsg)
				if m.Expression != "//a" || m.Config == nil {
					t.Errorf("got %+v", m)
				}
			}},
		{CollectionFactory, CollFactoryMsg{CollectionName: "sub", Config: &cfg},
			func(t *testing.T, got decoder) {
				m := got.(*CollFactoryMsg)
				if m.CollectionName != "sub" || m.Config == nil {
					t.Errorf("got %+v", m)
				}
			}},
		{ReadFile, FileRangeMsg{FileName: "f.bin", Offset: 10, Count: -1},
			func(t *testing.T, got decoder) {
				m := got.(*FileRangeMsg)
				if m.FileName != "f.bin" || m.Offset != 10 || m.Count != -1 {
					t.Errorf("got %+v", m)
				}
			}},
		{WriteFile, FileDataMsg{FileName: "f.bin", Data: []byte{0, 1, 2, 0xff}},
			func(t *testing.T, got decoder) {
				m := got.(*FileDataMsg)
				if m.FileName != "f.bin" || !bytes.Equal(m.Data, []byte{0, 1, 2, 0xff}) {
					t.Errorf("got %+v", m)
				}
			}},
		{DeleteFile, FileNameMsg{FileName: "f.bin"},
			func(t *testing.T, got decoder) {
				if m := got.(*FileNameMsg); m.FileName != "f.bin" {
					t.Errorf("got %+v", m)
				}
			}},
		{ListFiles, PatternMsg{Pattern: "*.csv"},
			func(t *testing.T, got decoder) {
				if m := got.(*PatternMsg); m.Pattern != "*.csv" {
					t.Errorf("got %+v", m)
				}
			}},
		{FileSelectFactory, FileFactoryMsg{Pattern: "*.csv", Config: &cfg},
			func(t *testing.T, got decoder) {
				m := got.(*FileFactoryMsg)
				if m.Pattern != "*.csv" || m.Config == nil {
					t.Errorf("got %+v", m)
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.spec.Op, func(t *testing.T) {
			got := reflect.New(reflect.TypeOf(tc.msg)).Interface().(decoder)
			encodeAndDecode(t, tc.spec, tc.msg, got)
			tc.want(t, got)
		})
	}
}

// TestElementMessagesRoundTrip covers the two codecs that carry whole
// XML trees; elements are compared through the serialiser.
func TestElementMessagesRoundTrip(t *testing.T) {
	doc := xmlutil.NewElement("urn:app", "record")
	doc.AddText("urn:app", "field", "v")

	var add AddDocumentMsg
	encodeAndDecode(t, AddDocument, AddDocumentMsg{DocumentName: "d1", Document: doc}, &add)
	if add.DocumentName != "d1" {
		t.Errorf("AddDocument: got name %q", add.DocumentName)
	}
	if !bytes.Equal(xmlutil.Marshal(add.Document), xmlutil.Marshal(doc)) {
		t.Errorf("AddDocument: document did not round-trip: %s", xmlutil.Marshal(add.Document))
	}

	mods := xmlutil.NewElement("http://www.xmldb.org/xupdate", "modifications")
	mods.AddText("http://www.xmldb.org/xupdate", "append", "x")
	var xu XUpdateMsg
	encodeAndDecode(t, XUpdateExecute, XUpdateMsg{DocumentName: "d1", Modifications: mods}, &xu)
	if xu.DocumentName != "d1" || xu.Modifications == nil {
		t.Fatalf("XUpdate: got %+v", xu)
	}
	if !bytes.Equal(xmlutil.Marshal(xu.Modifications), xmlutil.Marshal(mods)) {
		t.Errorf("XUpdate: modifications did not round-trip")
	}
}

// TestTypeFaultCanonicalDetail pins the one canonical type-mismatch
// fault format every resolver path emits.
func TestTypeFaultCanonicalDetail(t *testing.T) {
	err := TypeFault("res-9", KindSQL)
	if got := err.Error(); !strings.Contains(got, "res-9 (not a SQL resource)") {
		t.Errorf("TypeFault detail = %q", got)
	}
	// Staged snapshots and base file resources share the File label.
	for _, k := range []Kind{KindFile, KindFileReader} {
		if got := TypeFault("res-9", k).Error(); !strings.Contains(got, "(not a File resource)") {
			t.Errorf("TypeFault(%s) detail = %q", k, got)
		}
	}
	if core.FaultName(err) != "InvalidResourceNameFault" {
		t.Errorf("TypeFault is not an InvalidResourceNameFault: %v", core.FaultName(err))
	}
}

// TestCallInfoContext checks the metadata attachment used by the
// interceptor pipeline on both client and server paths.
func TestCallInfoContext(t *testing.T) {
	ctx := WithCallInfo(context.Background(), SQLExecute.Info())
	info, ok := CallInfoFromContext(ctx)
	if !ok || info.Action != ActSQLExecute || info.Class != "SQLAccess" || info.Resource != KindSQL {
		t.Errorf("CallInfo = %+v, ok=%v", info, ok)
	}
	if _, ok := CallInfoFromContext(context.Background()); ok {
		t.Error("CallInfo found on a bare context")
	}
}
