package ops

import (
	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/wsrf"
)

// Namespace aliases for the catalog.
const (
	NSDAI  = core.NSDAI
	NSDAIR = dair.NSDAIR
	NSDAIX = daix.NSDAIX
	NSDAIF = daif.NSDAIF
)

// Action URIs, one per operation. The SOAP dispatcher routes on them.
const (
	// WS-DAI core.
	ActGetPropertyDocument = NSDAI + "/GetDataResourcePropertyDocument"
	ActGenericQuery        = NSDAI + "/GenericQuery"
	ActDestroyDataResource = NSDAI + "/DestroyDataResource"
	ActGetResourceList     = NSDAI + "/GetResourceList"
	ActResolve             = NSDAI + "/Resolve"

	// WS-DAIR.
	ActSQLExecute            = NSDAIR + "/SQLExecute"
	ActGetSQLPropertyDoc     = NSDAIR + "/GetSQLPropertyDocument"
	ActSQLExecuteFactory     = NSDAIR + "/SQLExecuteFactory"
	ActGetSQLRowset          = NSDAIR + "/GetSQLRowset"
	ActGetSQLUpdateCount     = NSDAIR + "/GetSQLUpdateCount"
	ActGetSQLReturnValue     = NSDAIR + "/GetSQLReturnValue"
	ActGetSQLOutputParameter = NSDAIR + "/GetSQLOutputParameter"
	ActGetSQLCommArea        = NSDAIR + "/GetSQLCommunicationArea"
	ActGetSQLResponseItem    = NSDAIR + "/GetSQLResponseItem"
	ActGetSQLResponsePropDoc = NSDAIR + "/GetSQLResponsePropertyDocument"
	ActSQLRowsetFactory      = NSDAIR + "/SQLRowsetFactory"
	ActGetTuples             = NSDAIR + "/GetTuples"
	ActGetRowsetPropDoc      = NSDAIR + "/GetRowsetPropertyDocument"

	// WS-DAIX.
	ActAddDocument         = NSDAIX + "/AddDocument"
	ActGetDocument         = NSDAIX + "/GetDocument"
	ActRemoveDocument      = NSDAIX + "/RemoveDocument"
	ActListDocuments       = NSDAIX + "/ListDocuments"
	ActCreateSubcollection = NSDAIX + "/CreateSubcollection"
	ActRemoveSubcollection = NSDAIX + "/RemoveSubcollection"
	ActListSubcollections  = NSDAIX + "/ListSubcollections"
	ActXPathExecute        = NSDAIX + "/XPathExecute"
	ActXQueryExecute       = NSDAIX + "/XQueryExecute"
	ActXUpdateExecute      = NSDAIX + "/XUpdateExecute"
	ActXPathFactory        = NSDAIX + "/XPathExecuteFactory"
	ActXQueryFactory       = NSDAIX + "/XQueryExecuteFactory"
	ActCollectionFactory   = NSDAIX + "/CollectionFactory"
	ActGetItems            = NSDAIX + "/GetItems"

	// WS-DAIF (experimental files realisation, paper §6).
	ActReadFile          = NSDAIF + "/ReadFile"
	ActWriteFile         = NSDAIF + "/WriteFile"
	ActAppendFile        = NSDAIF + "/AppendFile"
	ActDeleteFile        = NSDAIF + "/DeleteFile"
	ActListFiles         = NSDAIF + "/ListFiles"
	ActStatFile          = NSDAIF + "/StatFile"
	ActFileSelectFactory = NSDAIF + "/FileSelectFactory"

	// WSRF (optional layer).
	ActGetResourceProperty      = wsrf.NSRP + "/GetResourceProperty"
	ActSetResourceProperties    = wsrf.NSRP + "/SetResourceProperties"
	ActGetMultipleResourceProps = wsrf.NSRP + "/GetMultipleResourceProperties"
	ActQueryResourceProperties  = wsrf.NSRP + "/QueryResourceProperties"
	ActSetTerminationTime       = wsrf.NSRL + "/SetTerminationTime"
	ActWSRFDestroy              = wsrf.NSRL + "/Destroy"
)

// The operation specs — the Fig. 6 table, one var per row. Dispatch,
// client methods, WSDL generation and the completeness tests all refer
// to these.
var (
	// WS-DAI core.
	GetPropertyDocument = Spec{Action: ActGetPropertyDocument, NS: NSDAI, Op: "GetDataResourcePropertyDocument",
		Class: "CoreDataAccess", Iface: CoreDataAccess, Resource: KindData, Idempotent: true}
	GenericQuery = Spec{Action: ActGenericQuery, NS: NSDAI, Op: "GenericQuery",
		Class: "CoreDataAccess", Iface: CoreDataAccess, Resource: KindData}
	DestroyDataResource = Spec{Action: ActDestroyDataResource, NS: NSDAI, Op: "DestroyDataResource",
		Class: "CoreDataAccess", Iface: CoreDataAccess, Resource: KindData}
	GetResourceList = Spec{Action: ActGetResourceList, NS: NSDAI, Op: "GetResourceList",
		Class: "CoreResourceList", Iface: CoreResourceList, NoName: true, Idempotent: true}
	ResolveName = Spec{Action: ActResolve, NS: NSDAI, Op: "Resolve",
		Class: "CoreResourceList", Iface: CoreResourceList, Resource: KindData, EPRReply: true, Idempotent: true}

	// WS-DAIR.
	SQLExecute = Spec{Action: ActSQLExecute, NS: NSDAIR, Op: "SQLExecute",
		Class: "SQLAccess", Iface: SQLAccess, Resource: KindSQL}
	GetSQLPropertyDocument = Spec{Action: ActGetSQLPropertyDoc, NS: NSDAIR, Op: "GetSQLPropertyDocument",
		Class: "SQLAccess", Iface: SQLAccess, Resource: KindSQL, Idempotent: true}
	SQLExecuteFactory = Spec{Action: ActSQLExecuteFactory, NS: NSDAIR, Op: "SQLExecuteFactory",
		Class: "SQLFactory", Iface: SQLFactory, Resource: KindSQL, EPRReply: true, PortType: "dair:SQLResponseAccess"}
	GetSQLRowset = Spec{Action: ActGetSQLRowset, NS: NSDAIR, Op: "GetSQLRowset",
		Class: "SQLResponseAccess", Iface: SQLResponseAccess, Resource: KindSQLResponse, Idempotent: true}
	GetSQLUpdateCount = Spec{Action: ActGetSQLUpdateCount, NS: NSDAIR, Op: "GetSQLUpdateCount",
		Class: "SQLResponseAccess", Iface: SQLResponseAccess, Resource: KindSQLResponse, Idempotent: true}
	GetSQLReturnValue = Spec{Action: ActGetSQLReturnValue, NS: NSDAIR, Op: "GetSQLReturnValue",
		Class: "SQLResponseAccess", Iface: SQLResponseAccess, Resource: KindSQLResponse, Idempotent: true}
	GetSQLOutputParameter = Spec{Action: ActGetSQLOutputParameter, NS: NSDAIR, Op: "GetSQLOutputParameter",
		Class: "SQLResponseAccess", Iface: SQLResponseAccess, Resource: KindSQLResponse, Idempotent: true}
	GetSQLCommunicationArea = Spec{Action: ActGetSQLCommArea, NS: NSDAIR, Op: "GetSQLCommunicationArea",
		Class: "SQLResponseAccess", Iface: SQLResponseAccess, Resource: KindSQLResponse, Idempotent: true}
	GetSQLResponseItem = Spec{Action: ActGetSQLResponseItem, NS: NSDAIR, Op: "GetSQLResponseItem",
		Class: "SQLResponseAccess", Iface: SQLResponseAccess, Resource: KindSQLResponse, Idempotent: true}
	GetSQLResponsePropertyDocument = Spec{Action: ActGetSQLResponsePropDoc, NS: NSDAIR, Op: "GetSQLResponsePropertyDocument",
		Class: "SQLResponseAccess", Iface: SQLResponseAccess, Resource: KindSQLResponse, Idempotent: true}
	SQLRowsetFactory = Spec{Action: ActSQLRowsetFactory, NS: NSDAIR, Op: "SQLRowsetFactory",
		Class: "SQLResponseFactory", Iface: SQLResponseFactory, Resource: KindSQLResponse, EPRReply: true, PortType: "dair:SQLRowsetAccess"}
	GetTuples = Spec{Action: ActGetTuples, NS: NSDAIR, Op: "GetTuples",
		Class: "SQLRowsetAccess", Iface: SQLRowsetAccess, Resource: KindSQLRowset, Idempotent: true}
	GetRowsetPropertyDocument = Spec{Action: ActGetRowsetPropDoc, NS: NSDAIR, Op: "GetRowsetPropertyDocument",
		Class: "SQLRowsetAccess", Iface: SQLRowsetAccess, Resource: KindSQLRowset, Idempotent: true}

	// WS-DAIX.
	AddDocument = Spec{Action: ActAddDocument, NS: NSDAIX, Op: "AddDocument",
		Class: "XMLCollectionAccess", Iface: XMLCollectionAccess, Resource: KindXMLCollection}
	GetDocument = Spec{Action: ActGetDocument, NS: NSDAIX, Op: "GetDocument",
		Class: "XMLCollectionAccess", Iface: XMLCollectionAccess, Resource: KindXMLCollection, Idempotent: true}
	RemoveDocument = Spec{Action: ActRemoveDocument, NS: NSDAIX, Op: "RemoveDocument",
		Class: "XMLCollectionAccess", Iface: XMLCollectionAccess, Resource: KindXMLCollection}
	ListDocuments = Spec{Action: ActListDocuments, NS: NSDAIX, Op: "ListDocuments",
		Class: "XMLCollectionAccess", Iface: XMLCollectionAccess, Resource: KindXMLCollection, Idempotent: true}
	CreateSubcollection = Spec{Action: ActCreateSubcollection, NS: NSDAIX, Op: "CreateSubcollection",
		Class: "XMLCollectionAccess", Iface: XMLCollectionAccess, Resource: KindXMLCollection}
	RemoveSubcollection = Spec{Action: ActRemoveSubcollection, NS: NSDAIX, Op: "RemoveSubcollection",
		Class: "XMLCollectionAccess", Iface: XMLCollectionAccess, Resource: KindXMLCollection}
	ListSubcollections = Spec{Action: ActListSubcollections, NS: NSDAIX, Op: "ListSubcollections",
		Class: "XMLCollectionAccess", Iface: XMLCollectionAccess, Resource: KindXMLCollection, Idempotent: true}
	XPathExecute = Spec{Action: ActXPathExecute, NS: NSDAIX, Op: "XPathExecute",
		Class: "XMLQueryAccess", Iface: XMLQueryAccess, Resource: KindXMLCollection, Idempotent: true}
	XQueryExecute = Spec{Action: ActXQueryExecute, NS: NSDAIX, Op: "XQueryExecute",
		Class: "XMLQueryAccess", Iface: XMLQueryAccess, Resource: KindXMLCollection, Idempotent: true}
	XUpdateExecute = Spec{Action: ActXUpdateExecute, NS: NSDAIX, Op: "XUpdateExecute",
		Class: "XMLQueryAccess", Iface: XMLQueryAccess, Resource: KindXMLCollection}
	XPathExecuteFactory = Spec{Action: ActXPathFactory, NS: NSDAIX, Op: "XPathExecuteFactory",
		Class: "XMLFactory", Iface: XMLFactory, Resource: KindXMLCollection, EPRReply: true}
	XQueryExecuteFactory = Spec{Action: ActXQueryFactory, NS: NSDAIX, Op: "XQueryExecuteFactory",
		Class: "XMLFactory", Iface: XMLFactory, Resource: KindXMLCollection, EPRReply: true}
	CollectionFactory = Spec{Action: ActCollectionFactory, NS: NSDAIX, Op: "CollectionFactory",
		Class: "XMLFactory", Iface: XMLFactory, Resource: KindXMLCollection, EPRReply: true}
	GetItems = Spec{Action: ActGetItems, NS: NSDAIX, Op: "GetItems",
		Class: "XMLSequenceAccess", Iface: XMLSequenceAccess, Resource: KindXMLSequence, Idempotent: true}

	// WS-DAIF.
	ReadFile = Spec{Action: ActReadFile, NS: NSDAIF, Op: "ReadFile",
		Class: "FileAccess", Iface: FileAccess, Resource: KindFileReader, Idempotent: true}
	WriteFile = Spec{Action: ActWriteFile, NS: NSDAIF, Op: "WriteFile",
		Class: "FileAccess", Iface: FileAccess, Resource: KindFile}
	AppendFile = Spec{Action: ActAppendFile, NS: NSDAIF, Op: "AppendFile",
		Class: "FileAccess", Iface: FileAccess, Resource: KindFile}
	DeleteFile = Spec{Action: ActDeleteFile, NS: NSDAIF, Op: "DeleteFile",
		Class: "FileAccess", Iface: FileAccess, Resource: KindFile}
	ListFiles = Spec{Action: ActListFiles, NS: NSDAIF, Op: "ListFiles",
		Class: "FileAccess", Iface: FileAccess, Resource: KindFileReader, Idempotent: true}
	StatFile = Spec{Action: ActStatFile, NS: NSDAIF, Op: "StatFile",
		Class: "FileAccess", Iface: FileAccess, Resource: KindFileReader, Idempotent: true}
	FileSelectFactory = Spec{Action: ActFileSelectFactory, NS: NSDAIF, Op: "FileSelectFactory",
		Class: "FileFactory", Iface: FileFactory, Resource: KindFile, EPRReply: true}

	// WSRF (optional layer; gated by enabling WSRF, not by an
	// Interfaces flag, hence Iface 0 — and the request element carries
	// no "Request" suffix, matching the OASIS message shapes).
	GetResourceProperty = Spec{Action: ActGetResourceProperty, NS: wsrf.NSRP, Op: "GetResourceProperty",
		Class: "WSResourceProperties", Resource: KindData, Bare: true, Idempotent: true}
	GetMultipleResourceProperties = Spec{Action: ActGetMultipleResourceProps, NS: wsrf.NSRP, Op: "GetMultipleResourceProperties",
		Class: "WSResourceProperties", Resource: KindData, Bare: true, Idempotent: true}
	SetResourceProperties = Spec{Action: ActSetResourceProperties, NS: wsrf.NSRP, Op: "SetResourceProperties",
		Class: "WSResourceProperties", Resource: KindData, Bare: true}
	QueryResourceProperties = Spec{Action: ActQueryResourceProperties, NS: wsrf.NSRP, Op: "QueryResourceProperties",
		Class: "WSResourceProperties", Resource: KindData, Bare: true, Idempotent: true}
	SetTerminationTime = Spec{Action: ActSetTerminationTime, NS: wsrf.NSRL, Op: "SetTerminationTime",
		Class: "WSResourceLifetime", Resource: KindData, Bare: true}
	WSRFDestroy = Spec{Action: ActWSRFDestroy, NS: wsrf.NSRL, Op: "Destroy",
		Class: "WSResourceLifetime", Resource: KindData, Bare: true}
)

// Catalog returns every DAIS operation spec (the full Fig. 6 inventory
// plus the WS-DAIF extension and the optional WSRF layer), in interface
// class order.
func Catalog() []Spec {
	return []Spec{
		GetPropertyDocument, GenericQuery, DestroyDataResource,
		GetResourceList, ResolveName,
		SQLExecute, GetSQLPropertyDocument,
		SQLExecuteFactory,
		GetSQLRowset, GetSQLUpdateCount, GetSQLReturnValue, GetSQLOutputParameter,
		GetSQLCommunicationArea, GetSQLResponseItem, GetSQLResponsePropertyDocument,
		SQLRowsetFactory,
		GetTuples, GetRowsetPropertyDocument,
		AddDocument, GetDocument, RemoveDocument, ListDocuments,
		CreateSubcollection, RemoveSubcollection, ListSubcollections,
		XPathExecute, XQueryExecute, XUpdateExecute,
		XPathExecuteFactory, XQueryExecuteFactory, CollectionFactory,
		GetItems,
		ReadFile, WriteFile, AppendFile, DeleteFile, ListFiles, StatFile,
		FileSelectFactory,
		GetResourceProperty, GetMultipleResourceProperties,
		SetResourceProperties, QueryResourceProperties,
		SetTerminationTime, WSRFDestroy,
	}
}
