// Package ops is the declarative operation registry for the DAIS
// interface surface. The paper's Fig. 6 presents DAIS as a table of
// operations grouped into composable interface classes; this package
// *is* that table. Each operation is described once by a Spec — its
// interface class, wsa:Action URI, the realisation kind of resource it
// addresses, and whether its response carries an EPR — and everything
// else is derived from it: the service layer binds handlers per spec,
// the consumer client builds requests per spec, the generated WSDL
// enumerates the registered specs, and the canonical type-mismatch
// fault comes from the spec's resource kind. Adding an operation means
// adding one Spec to the catalog plus its handler and client method;
// dispatch, WSDL and fault mapping follow automatically.
package ops

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/xmlutil"
)

// Interfaces selects which DAIS port types an endpoint exposes. The
// paper (§4.3) notes "DAIS does not prescribe how these operations are
// to be combined to form services; the proposed interfaces may be used
// in isolation or in conjunction with others" — Fig. 5's three data
// services expose three different combinations.
type Interfaces uint32

// Interface flags, one per Fig. 6 interface class.
const (
	CoreDataAccess Interfaces = 1 << iota
	CoreResourceList
	SQLAccess
	SQLFactory
	SQLResponseAccess
	SQLResponseFactory
	SQLRowsetAccess
	XMLCollectionAccess
	XMLQueryAccess
	XMLFactory
	XMLSequenceAccess
	FileAccess
	FileFactory
)

// AllInterfaces enables everything.
const AllInterfaces = CoreDataAccess | CoreResourceList | SQLAccess | SQLFactory |
	SQLResponseAccess | SQLResponseFactory | SQLRowsetAccess |
	XMLCollectionAccess | XMLQueryAccess | XMLFactory | XMLSequenceAccess |
	FileAccess | FileFactory

// Kind names the realisation a resource must belong to for an
// operation to apply. It doubles as the canonical label in the
// InvalidResourceNameFault raised on a kind mismatch, so every
// realisation reports wrong-type resources identically.
type Kind string

// Resource kinds.
const (
	// KindNone marks operations that address the service, not a
	// resource (GetResourceList).
	KindNone Kind = ""
	// KindData accepts any data resource (the WS-DAI core operations).
	KindData          Kind = "data"
	KindSQL           Kind = "SQL"
	KindSQLResponse   Kind = "SQLResponse"
	KindSQLRowset     Kind = "SQLRowset"
	KindXMLCollection Kind = "XMLCollection"
	KindXMLSequence   Kind = "XMLSequence"
	// KindFile is a writable base file resource; KindFileReader also
	// accepts read-only staged snapshots. Both report the canonical
	// "File" label on mismatch.
	KindFile       Kind = "File"
	KindFileReader Kind = "FileReader"
)

// faultLabel is the realisation name used in type-mismatch faults.
func (k Kind) faultLabel() string {
	if k == KindFileReader {
		return string(KindFile)
	}
	return string(k)
}

// TypeFault is the one canonical fault for a resource of the wrong
// realisation. Every resolver path emits exactly this detail format.
func TypeFault(name string, kind Kind) error {
	return &core.InvalidResourceNameFault{
		Name: fmt.Sprintf("%s (not a %s resource)", name, kind.faultLabel())}
}

// Resolve maps an abstract name to a resource of the realisation type
// T, replacing the per-realisation resolveSQL/resolveResponse/...
// helpers: unknown names surface the service's InvalidResourceNameFault
// and type mismatches the canonical TypeFault for the spec's kind.
func Resolve[T core.DataResource](svc *core.DataService, name string, kind Kind) (T, error) {
	var zero T
	r, err := svc.Resolve(name)
	if err != nil {
		return zero, err
	}
	t, ok := r.(T)
	if !ok {
		return zero, TypeFault(name, kind)
	}
	return t, nil
}

// Spec declares one DAIS operation: the single source of truth that
// dispatch, client construction, WSDL generation and fault mapping all
// read. Action is always NS + "/" + Op.
type Spec struct {
	Action   string     // wsa:Action URI the SOAP dispatcher routes on
	NS       string     // namespace of the request/response elements
	Op       string     // operation name (one Fig. 6 row)
	Class    string     // Fig. 6 interface class the operation belongs to
	Iface    Interfaces // endpoint gate flag; 0 = layered outside the flags (WSRF)
	Resource Kind       // realisation the addressed resource must have
	NoName   bool       // request carries no DataResourceAbstractName (GetResourceList)
	EPRReply bool       // response carries a DataResourceAddress EPR
	PortType string     // PortTypeQName advertised in factory requests ("" = none)
	Bare     bool       // request element is named Op, not Op+"Request" (WSRF style)
	// Idempotent marks operations that are safe to replay when the
	// outcome of an attempt is unknown (transport error, shed request):
	// pure reads of service or resource state. Factories, destroys and
	// anything that can mutate backend state stay false, and the
	// resilience layer derives its per-operation retry policy from this
	// flag — non-idempotent operations are never retried.
	Idempotent bool
}

// RequestElement is the local name of the request body element.
func (s Spec) RequestElement() string {
	if s.Bare {
		return s.Op
	}
	return s.Op + "Request"
}

// ResponseElement is the local name of the response body element.
func (s Spec) ResponseElement() string { return s.Op + "Response" }

// NewRequest builds the operation's request element with the mandatory
// DataResourceAbstractName child (paper §3: "DAIS mandates the
// inclusion of the data resource's abstract name in the body of the
// message"). Consumers and the completeness tests share this
// constructor, so the framing rule holds by construction.
func (s Spec) NewRequest(abstractName string) *xmlutil.Element {
	e := xmlutil.NewElement(s.NS, s.RequestElement())
	if !s.NoName {
		e.AddText(core.NSDAI, "DataResourceAbstractName", abstractName)
	}
	if s.PortType != "" {
		e.AddText(core.NSDAI, "PortTypeQName", s.PortType)
	}
	return e
}

// NewResponse builds the operation's empty response element, fixing the
// response name to Op+"Response" on every path.
func (s Spec) NewResponse() *xmlutil.Element {
	return xmlutil.NewElement(s.NS, s.ResponseElement())
}

// Info is the spec's interceptor-visible call metadata.
func (s Spec) Info() CallInfo {
	return CallInfo{Action: s.Action, Op: s.Op, Class: s.Class, Resource: s.Resource,
		Idempotent: s.Idempotent}
}

// CallInfo is the operation metadata the registry attaches to the
// request context on both the client and server paths, so interceptors
// (and future metrics/observability layers) can label an exchange
// without re-parsing the envelope.
type CallInfo struct {
	Action     string
	Op         string
	Class      string
	Resource   Kind
	Idempotent bool
}

// callInfoKey is the context key carrying CallInfo.
type callInfoKey struct{}

// WithCallInfo annotates a context with the operation metadata.
func WithCallInfo(ctx context.Context, info CallInfo) context.Context {
	return context.WithValue(ctx, callInfoKey{}, info)
}

// CallInfoFromContext returns the operation metadata attached by the
// dispatch or client path, and whether any was attached.
func CallInfoFromContext(ctx context.Context) (CallInfo, bool) {
	info, ok := ctx.Value(callInfoKey{}).(CallInfo)
	return info, ok
}
