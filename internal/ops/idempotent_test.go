package ops

import (
	"strings"
	"testing"
)

// TestIdempotencyClassification pins the catalog's retry-safety
// annotations: the resilience layer replays exactly the operations
// marked idempotent, so a misannotated mutation would be silently
// re-executed on transport failures. Pure reads must be marked (or
// retries silently stop working); anything that creates, mutates or
// destroys state must not be.
func TestIdempotencyClassification(t *testing.T) {
	readPrefixes := []string{"Get", "List", "Stat", "Read", "Resolve", "XPath", "XQuery", "Query"}
	mutationMarkers := []string{"Factory", "Destroy", "Set", "Add", "Remove", "Write", "Append", "Delete", "XUpdate"}

	isRead := func(op string) bool {
		for _, p := range readPrefixes {
			if strings.HasPrefix(op, p) {
				return true
			}
		}
		return false
	}
	isMutation := func(op string) bool {
		for _, m := range mutationMarkers {
			if strings.Contains(op, m) {
				return true
			}
		}
		return false
	}

	for _, s := range Catalog() {
		switch {
		case isMutation(s.Op):
			if s.Idempotent {
				t.Errorf("%s creates/mutates/destroys state but is marked idempotent", s.Op)
			}
		case isRead(s.Op):
			if !s.Idempotent {
				t.Errorf("%s is a pure read but is not marked idempotent", s.Op)
			}
		default:
			// Everything else (SQLExecute, GenericQuery, XUpdateExecute)
			// can run arbitrary expressions — never replayable.
			if s.Idempotent {
				t.Errorf("%s may execute arbitrary expressions but is marked idempotent", s.Op)
			}
		}
		if s.Idempotent != s.Info().Idempotent {
			t.Errorf("%s: Info() dropped the Idempotent flag", s.Op)
		}
	}

	// Spot-check the flag reaches consumers through the action index.
	if s, ok := ByAction(GetPropertyDocument.Action); !ok || !s.Idempotent {
		t.Fatal("GetDataResourcePropertyDocument must be idempotent via ByAction")
	}
	if s, ok := ByAction(SQLExecute.Action); !ok || s.Idempotent {
		t.Fatal("SQLExecute must not be idempotent via ByAction")
	}
}
