package ops

import (
	"dais/internal/core"
	"dais/internal/wsaddr"
	"dais/internal/xmlutil"
)

// CoreResourceList message codecs. The optional CoreResourceList
// interface (paper §4.3: GetResourceList / Resolve) is served by two
// very different hosts — a daisd endpoint listing the resources of its
// own data service, and the federation gateway listing the merged
// resources of a whole cluster — so the response shapes live here,
// next to the specs, and both hosts plus the consumer client share one
// code path by construction.

// ResourceListResponse builds the GetResourceListResponse element for a
// set of abstract names (callers pass them pre-sorted for determinism;
// the single-service path sorts in core.DataService.GetResourceList and
// the gateway sorts its merged list).
func ResourceListResponse(names []string) *xmlutil.Element {
	resp := GetResourceList.NewResponse()
	for _, n := range names {
		resp.AddText(core.NSDAI, "DataResourceAbstractName", n)
	}
	return resp
}

// ParseResourceList extracts the abstract names from a
// GetResourceListResponse element.
func ParseResourceList(resp *xmlutil.Element) []string {
	var out []string
	for _, el := range resp.FindAll(core.NSDAI, "DataResourceAbstractName") {
		out = append(out, el.Text())
	}
	return out
}

// AbstractNameText returns the DataResourceAbstractName carried in a
// request body ("" when absent). The service layer's AbstractNameOf
// wraps this with the mandatory-framing error; the gateway uses it to
// route without re-decoding the full message.
func AbstractNameText(body *xmlutil.Element) string {
	if body == nil {
		return ""
	}
	return body.FindText(core.NSDAI, "DataResourceAbstractName")
}

// SetAbstractName rewrites the DataResourceAbstractName of a request
// body in place (adding it when absent). The federation gateway uses it
// to translate a cluster-wide alias into the concrete per-backend
// resource name before forwarding.
func SetAbstractName(body *xmlutil.Element, name string) {
	if el := body.Find(core.NSDAI, "DataResourceAbstractName"); el != nil {
		el.SetText(name)
		return
	}
	body.AddText(core.NSDAI, "DataResourceAbstractName", name)
}

// EPRName extracts the DataResourceAbstractName reference parameter
// from an EPR ("" when absent) — the name a factory response or
// Resolve reply addresses.
func EPRName(epr *wsaddr.EndpointReference) string {
	p := epr.ReferenceParameter(core.NSDAI, "DataResourceAbstractName")
	if p == nil {
		return ""
	}
	return p.Text()
}
