// Package faultinject is the failure-injection harness the chaos suite
// drives the DAIS stack with: a consumer-side http.RoundTripper and a
// service-side soap.Interceptor that corrupt a seeded, reproducible
// fraction of exchanges. It exists to prove the resilience layer
// (internal/resil) — that retried idempotent operations return results
// byte-identical to failure-free runs, that non-idempotent operations
// are never replayed, and that breakers and admission gates behave as
// specified — not to simulate any particular network.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Mode is one injected failure class.
type Mode string

const (
	// ModeDrop severs the exchange: the request never reaches the
	// server and the consumer sees a transport error.
	ModeDrop Mode = "drop"
	// ModeDelay stalls the exchange before forwarding it.
	ModeDelay Mode = "delay"
	// ModeCorrupt forwards the exchange but truncates and mangles the
	// response so the envelope no longer parses.
	ModeCorrupt Mode = "corrupt"
	// ModeBusy short-circuits with a synthetic HTTP 503 + Retry-After,
	// imitating an overloaded endpoint shedding load.
	ModeBusy Mode = "busy"
)

// Plan configures what a Transport injects.
type Plan struct {
	// Seed fixes the failure sequence; runs with the same seed, plan and
	// call order inject identically.
	Seed int64
	// Rate is the fraction of matched exchanges to corrupt, in [0, 1].
	Rate float64
	// Modes are the failure classes drawn from (uniformly) when an
	// exchange is selected. Empty selects ModeDrop only.
	Modes []Mode
	// Delay is the stall applied by ModeDelay (default 10ms).
	Delay time.Duration
	// RetryAfter is the pacing hint attached to ModeBusy responses
	// (default 1s — kept whole-second because the header is integral).
	RetryAfter time.Duration
	// Match filters by SOAPAction: only matching exchanges are eligible
	// for injection. Nil matches everything. The chaos suite uses it to
	// confine failures to idempotent operations when proving
	// byte-identical recovery.
	Match func(action string) bool
}

// Transport is a failure-injecting http.RoundTripper wrapping a real
// transport. It decides per-exchange — under a seeded RNG, so runs are
// reproducible — whether to forward, drop, delay, corrupt or 503 the
// exchange, and counts what it did.
type Transport struct {
	next http.RoundTripper
	plan Plan

	mu       sync.Mutex
	rng      *rand.Rand
	injected map[Mode]int
	attempts map[string]int
}

// NewTransport wraps next (nil selects http.DefaultTransport) with the
// plan's failure behaviour.
func NewTransport(next http.RoundTripper, plan Plan) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	if len(plan.Modes) == 0 {
		plan.Modes = []Mode{ModeDrop}
	}
	if plan.Delay == 0 {
		plan.Delay = 10 * time.Millisecond
	}
	if plan.RetryAfter == 0 {
		plan.RetryAfter = time.Second
	}
	return &Transport{
		next:     next,
		plan:     plan,
		rng:      rand.New(rand.NewSource(plan.Seed)), //nolint:gosec // reproducibility, not security
		injected: make(map[Mode]int),
		attempts: make(map[string]int),
	}
}

// SetRate changes the injection rate at runtime. Chaos tests use it to
// stage scenarios: fail everything until a breaker opens, then heal the
// path and watch the half-open probe recover.
func (t *Transport) SetRate(rate float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.plan.Rate = rate
}

// Injected reports how many exchanges were corrupted with the given
// mode.
func (t *Transport) Injected(mode Mode) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected[mode]
}

// InjectedTotal reports all corrupted exchanges.
func (t *Transport) InjectedTotal() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, c := range t.injected {
		n += c
	}
	return n
}

// Attempts reports how many exchanges carried the given SOAPAction
// (every attempt counts, injected or not — the chaos suite uses it to
// assert non-idempotent operations are tried exactly once).
func (t *Transport) Attempts(action string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts[action]
}

// decide records the attempt and picks the failure to inject (or "").
func (t *Transport) decide(action string) Mode {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.attempts[action]++
	if t.plan.Rate <= 0 || (t.plan.Match != nil && !t.plan.Match(action)) {
		return ""
	}
	if t.rng.Float64() >= t.plan.Rate {
		return ""
	}
	m := t.plan.Modes[t.rng.Intn(len(t.plan.Modes))]
	t.injected[m]++
	return m
}

// RoundTrip implements http.RoundTripper. Failure paths consume and
// close the request body first — the RoundTripper contract — so the
// caller's connection state stays sound.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	action := trimQuotes(req.Header.Get("SOAPAction"))
	switch mode := t.decide(action); mode {
	case ModeDrop:
		drainRequest(req)
		return nil, fmt.Errorf("faultinject: dropped exchange for %s", action)
	case ModeDelay:
		select {
		case <-time.After(t.plan.Delay):
		case <-req.Context().Done():
			drainRequest(req)
			return nil, req.Context().Err()
		}
		return t.next.RoundTrip(req)
	case ModeCorrupt:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return corruptResponse(resp)
	case ModeBusy:
		drainRequest(req)
		secs := int(t.plan.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		body := "injected overload"
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header: http.Header{
				"Content-Type": []string{"text/plain"},
				"Retry-After":  []string{fmt.Sprint(secs)},
			},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	default:
		return t.next.RoundTrip(req)
	}
}

// drainRequest consumes and closes the request body, as the
// RoundTripper contract requires even on failure.
func drainRequest(req *http.Request) {
	if req.Body == nil {
		return
	}
	io.Copy(io.Discard, req.Body) //nolint:errcheck // best-effort drain
	req.Body.Close()
}

// corruptResponse reads the real response, truncates it mid-envelope
// and flips the tail into junk so the consumer's parser fails, then
// hands back a replacement body. The real body is fully drained and
// closed so the underlying keep-alive connection stays reusable.
func corruptResponse(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("faultinject: read for corruption: %w", err)
	}
	cut := len(data) / 2
	mangled := append(append([]byte{}, data[:cut]...), []byte("<<garbage")...)
	resp.Body = io.NopCloser(strings.NewReader(string(mangled)))
	resp.ContentLength = int64(len(mangled))
	resp.Header.Del("Content-Length")
	return resp, nil
}

func trimQuotes(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}
