package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dais/internal/core"
	"dais/internal/soap"
)

// Server-side failure classes for ServerInterceptor.
const (
	// ModeFault answers with a generic SOAP Server fault instead of
	// dispatching the operation.
	ModeFault Mode = "fault"
)

// ServerPlan configures a service-side injection interceptor.
type ServerPlan struct {
	// Seed fixes the failure sequence.
	Seed int64
	// Rate is the fraction of matched requests to disturb, in [0, 1].
	Rate float64
	// Modes are drawn uniformly per disturbed request: ModeDelay stalls
	// before dispatch, ModeFault answers a Server fault, ModeBusy
	// answers a ServiceBusyFault (which the service layer maps to
	// HTTP 503 + Retry-After). Empty selects ModeFault only.
	Modes []Mode
	// Delay is the stall applied by ModeDelay (default 10ms).
	Delay time.Duration
	// RetryAfter is the hint attached to ModeBusy faults (default 1s).
	RetryAfter time.Duration
	// Match filters by action URI; nil matches everything.
	Match func(action string) bool
}

// ServerInterceptor is a soap.Interceptor that disturbs a seeded
// fraction of dispatched requests before (or instead of) invoking the
// real handler. Install it via service.WithInterceptors to chaos-test
// the full server path, typed-fault mapping included.
type ServerInterceptor struct {
	plan ServerPlan

	mu       sync.Mutex
	rng      *rand.Rand
	injected map[Mode]int
}

// NewServerInterceptor builds a service-side injector from the plan.
func NewServerInterceptor(plan ServerPlan) *ServerInterceptor {
	if len(plan.Modes) == 0 {
		plan.Modes = []Mode{ModeFault}
	}
	if plan.Delay == 0 {
		plan.Delay = 10 * time.Millisecond
	}
	if plan.RetryAfter == 0 {
		plan.RetryAfter = time.Second
	}
	return &ServerInterceptor{
		plan:     plan,
		rng:      rand.New(rand.NewSource(plan.Seed)), //nolint:gosec // reproducibility, not security
		injected: make(map[Mode]int),
	}
}

// Injected reports how many requests were disturbed with the mode.
func (si *ServerInterceptor) Injected(mode Mode) int {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.injected[mode]
}

func (si *ServerInterceptor) decide(action string) Mode {
	si.mu.Lock()
	defer si.mu.Unlock()
	if si.plan.Rate <= 0 || (si.plan.Match != nil && !si.plan.Match(action)) {
		return ""
	}
	if si.rng.Float64() >= si.plan.Rate {
		return ""
	}
	m := si.plan.Modes[si.rng.Intn(len(si.plan.Modes))]
	si.injected[m]++
	return m
}

// Interceptor returns the soap.Interceptor to install in the service
// chain.
func (si *ServerInterceptor) Interceptor() soap.Interceptor {
	return func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		switch si.decide(action) {
		case ModeDelay:
			select {
			case <-time.After(si.plan.Delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return next(ctx, action, env)
		case ModeFault:
			return nil, soap.ServerFault("faultinject: injected server failure for %s", action)
		case ModeBusy:
			return nil, &core.ServiceBusyFault{
				Reason:     fmt.Sprintf("faultinject: injected overload for %s", action),
				RetryAfter: si.plan.RetryAfter,
			}
		default:
			return next(ctx, action, env)
		}
	}
}
