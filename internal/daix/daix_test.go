package daix

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dais/internal/core"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

func seedCollection(t testing.TB) *XMLCollectionResource {
	t.Helper()
	store := xmldb.NewStore("library")
	r := NewXMLCollectionResource(store, "")
	for i, doc := range []string{
		`<book id="1"><title>Alpha</title><price>10</price></book>`,
		`<book id="2"><title>Beta</title><price>30</price></book>`,
		`<book id="3"><title>Gamma</title><price>20</price></book>`,
	} {
		e, err := xmlutil.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.AddDocument(fmt.Sprintf("book%d.xml", i+1), e); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestCollectionAccessOps(t *testing.T) {
	r := seedCollection(t)
	names, err := r.ListDocuments()
	if err != nil || len(names) != 3 {
		t.Fatalf("names = %v, %v", names, err)
	}
	doc, err := r.GetDocument("book1.xml")
	if err != nil || doc.FindText("", "title") != "Alpha" {
		t.Fatalf("doc = %v, %v", doc, err)
	}
	if err := r.RemoveDocument("book1.xml"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetDocument("book1.xml"); err == nil {
		t.Fatal("removed doc still readable")
	}
	if err := r.CreateSubcollection("archive"); err != nil {
		t.Fatal(err)
	}
	subs, err := r.ListSubcollections()
	if err != nil || len(subs) != 1 || subs[0] != "archive" {
		t.Fatalf("subs = %v, %v", subs, err)
	}
	if err := r.RemoveSubcollection("archive"); err != nil {
		t.Fatal(err)
	}
}

func TestAddDocumentsBatch(t *testing.T) {
	r := seedCollection(t)
	d1, _ := xmlutil.ParseString(`<a/>`)
	d2, _ := xmlutil.ParseString(`<b/>`)
	n, err := r.AddDocuments(map[string]*xmlutil.Element{"x.xml": d1, "y.xml": d2}, []string{"x.xml", "y.xml"})
	if err != nil || n != 2 {
		t.Fatalf("n = %d, %v", n, err)
	}
	// Batch stops at the first failure.
	d3, _ := xmlutil.ParseString(`<c/>`)
	n, err = r.AddDocuments(map[string]*xmlutil.Element{"z.xml": d3, "x.xml": d1}, []string{"z.xml", "x.xml"})
	if err == nil || n != 1 {
		t.Fatalf("n = %d, %v", n, err)
	}
}

func TestXPathExecute(t *testing.T) {
	r := seedCollection(t)
	res, err := r.XPathExecute(context.Background(), "/book[price > 15]/title")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("res = %+v", res)
	}
	var ief *core.InvalidExpressionFault
	if _, err := r.XPathExecute(context.Background(), "bad["); !errors.As(err, &ief) {
		t.Fatalf("err = %v", err)
	}
}

func TestXQueryExecute(t *testing.T) {
	r := seedCollection(t)
	res, err := r.XQueryExecute(context.Background(), `for $b in /book where $b/price > 15 order by $b/price return <t>{$b/title}</t>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Node.Text() != "Gamma" {
		t.Fatalf("res = %+v", res)
	}
}

func TestXUpdateExecute(t *testing.T) {
	r := seedCollection(t)
	modsDoc := `<xu:modifications xmlns:xu="` + xmldb.NSXUpdate + `">
		<xu:update select="/book/price">55</xu:update>
	</xu:modifications>`
	mods, _ := xmlutil.ParseString(modsDoc)
	n, err := r.XUpdateExecute(context.Background(), "book1.xml", mods)
	if err != nil || n != 1 {
		t.Fatalf("n = %d, %v", n, err)
	}
	doc, _ := r.GetDocument("book1.xml")
	if doc.FindText("", "price") != "55" {
		t.Fatal("update not applied")
	}
}

func TestGenericQueryDispatch(t *testing.T) {
	r := seedCollection(t)
	seq, err := r.GenericQuery(context.Background(), LanguageXPath, "/book/title")
	if err != nil {
		t.Fatal(err)
	}
	if seq.Name.Local != "XMLSequence" || len(seq.FindAll(NSDAIX, "Item")) != 3 {
		t.Fatalf("seq = %s", xmlutil.MarshalString(seq))
	}
	if _, err := r.GenericQuery(context.Background(), "urn:sql", "SELECT"); err == nil {
		t.Fatal("wrong language should fault")
	}
	xq, err := r.GenericQuery(context.Background(), LanguageXQuery, `for $b in /book where $b/price = 10 return <x>{$b/title}</x>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(xq.FindAll(NSDAIX, "Item")) != 1 {
		t.Fatalf("xq = %s", xmlutil.MarshalString(xq))
	}
}

func TestReadWriteEnforcement(t *testing.T) {
	store := xmldb.NewStore("s")
	cfg := core.Configuration{Readable: false, Writeable: false}
	r := NewXMLCollectionResource(store, "", WithCollectionConfiguration(cfg))
	var naf *core.NotAuthorizedFault
	if _, err := r.ListDocuments(); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
	d, _ := xmlutil.ParseString(`<x/>`)
	if err := r.AddDocument("x.xml", d); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.XPathExecute(context.Background(), "/x"); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.XUpdateExecute(context.Background(), "x.xml", nil); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
}

func TestXPathFactorySequence(t *testing.T) {
	r := seedCollection(t)
	ds := core.NewDataService("ds2")
	seq, err := XPathFactory(context.Background(), r, ds, "/book/title", nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Management() != core.ServiceManaged || seq.ParentName() != r.AbstractName() {
		t.Fatal("derived resource wiring wrong")
	}
	if seq.ItemCount() != 3 {
		t.Fatalf("items = %d", seq.ItemCount())
	}
	if _, err := ds.Resolve(seq.AbstractName()); err != nil {
		t.Fatal("not registered")
	}
	page, err := seq.GetItems(2, 1)
	if err != nil || len(page) != 1 || page[0].Node.Text() != "Beta" {
		t.Fatalf("page = %+v, %v", page, err)
	}
	if page, _ := seq.GetItems(10, 5); page != nil {
		t.Fatal("beyond end should be empty")
	}
	// Destroy drops data.
	if err := ds.DestroyDataResource(context.Background(), seq.AbstractName()); err != nil {
		t.Fatal(err)
	}
	if seq.ItemCount() != 0 {
		t.Fatal("release did not drop items")
	}
}

func TestXQueryFactory(t *testing.T) {
	r := seedCollection(t)
	ds := core.NewDataService("ds")
	seq, err := XQueryFactory(context.Background(), r, ds, `for $b in /book where $b/price < 25 return <t>{$b/title}</t>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.ItemCount() != 2 {
		t.Fatalf("items = %d", seq.ItemCount())
	}
}

func TestCollectionFactoryLiveView(t *testing.T) {
	r := seedCollection(t)
	ds := core.NewDataService("ds")
	sub, err := CollectionFactory(context.Background(), r, ds, "derived", nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Management() != core.ServiceManaged {
		t.Fatal("derived collection should be service managed")
	}
	// Writing through the derived resource is visible in the store.
	cfgW := core.DefaultConfiguration()
	cfgW.Writeable = true
	sub.Config = cfgW
	d, _ := xmlutil.ParseString(`<paper/>`)
	if err := sub.AddDocument("p.xml", d); err != nil {
		t.Fatal(err)
	}
	names, err := r.Store().ListDocuments("derived")
	if err != nil || len(names) != 1 {
		t.Fatalf("store view = %v, %v", names, err)
	}
	// Destroying the derived resource removes the sub-collection.
	if err := ds.DestroyDataResource(context.Background(), sub.AbstractName()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Store().ListDocuments("derived"); err == nil {
		t.Fatal("derived collection should be gone")
	}
}

func TestExtendedProperties(t *testing.T) {
	r := seedCollection(t)
	r.CreateSubcollection("sub")
	props := r.ExtendedProperties()
	got := map[string]string{}
	for _, p := range props {
		got[p.Name.Local] = p.Text()
	}
	if got["NumberOfDocuments"] != "3" || got["NumberOfSubCollections"] != "1" {
		t.Fatalf("props = %v", got)
	}
	if got["UpdateLanguage"] != xmldb.NSXUpdate {
		t.Fatalf("update language = %q", got["UpdateLanguage"])
	}
}

func TestWrapResultsScalar(t *testing.T) {
	results := []xmldb.QueryResult{
		{Document: "d1.xml", Value: "42"},
	}
	seq := WrapResults(results)
	item := seq.Find(NSDAIX, "Item")
	if item == nil || item.FindText(NSDAIX, "Value") != "42" {
		t.Fatalf("seq = %s", xmlutil.MarshalString(seq))
	}
	if item.AttrValue("", "document") != "d1.xml" {
		t.Fatal("document attribution lost")
	}
}

func TestSequencePropertiesAndPaging(t *testing.T) {
	r := seedCollection(t)
	ds := core.NewDataService("ds")
	seq, _ := XPathFactory(context.Background(), r, ds, "//book", nil)
	props := seq.ExtendedProperties()
	if len(props) != 1 || props[0].Text() != "3" {
		t.Fatalf("props = %v", props)
	}
	all, err := seq.GetItems(1, 100)
	if err != nil || len(all) != 3 {
		t.Fatalf("all = %d, %v", len(all), err)
	}
	if items, _ := seq.GetItems(0, 2); len(items) != 2 {
		t.Fatal("clamped start failed")
	}
	// Unreadable sequence refuses access.
	seq.Config.Readable = false
	var naf *core.NotAuthorizedFault
	if _, err := seq.GetItems(1, 1); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
}
