package daix

import (
	"context"
	"fmt"
	"sync"

	"dais/internal/core"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

// PortType QNames for WS-DAIX factory requests.
const (
	PortTypeXMLCollectionAccess = "daix:XMLCollectionAccess"
	PortTypeXMLSequenceAccess   = "daix:XMLSequenceAccess"
)

// XMLSequenceResource is a derived, service-managed resource holding an
// ordered sequence of XML items — the result of an XPath or XQuery
// factory request. Its access interface pages through the items,
// mirroring WS-DAIR's RowsetAccess.
type XMLSequenceResource struct {
	core.BaseResource
	mu    sync.RWMutex
	items []xmldb.QueryResult
}

// NewXMLSequenceResource wraps query results as a derived resource.
func NewXMLSequenceResource(parent string, items []xmldb.QueryResult, cfg core.Configuration) *XMLSequenceResource {
	return &XMLSequenceResource{
		BaseResource: core.BaseResource{
			Name:   core.NewAbstractName("xmlseq"),
			Parent: parent,
			Mgmt:   core.ServiceManaged,
			Config: cfg,
		},
		items: items,
	}
}

// QueryLanguages implements core.DataResource.
func (r *XMLSequenceResource) QueryLanguages() []string { return nil }

// DatasetFormats implements core.DataResource.
func (r *XMLSequenceResource) DatasetFormats() []string { return []string{FormatXML} }

// GenericQuery implements core.DataResource; sequences reject it.
func (r *XMLSequenceResource) GenericQuery(ctx context.Context, lang, expr string) (*xmlutil.Element, error) {
	return nil, &core.InvalidLanguageFault{Language: lang}
}

// ExtendedProperties implements core.DataResource.
func (r *XMLSequenceResource) ExtendedProperties() []*xmlutil.Element {
	r.mu.RLock()
	n := len(r.items)
	r.mu.RUnlock()
	e := xmlutil.NewElement(NSDAIX, "NumberOfItems")
	e.SetText(fmt.Sprintf("%d", n))
	return []*xmlutil.Element{e}
}

// Release implements core.DataResource by dropping the items.
func (r *XMLSequenceResource) Release() error {
	r.mu.Lock()
	r.items = nil
	r.mu.Unlock()
	return nil
}

// ItemCount returns the number of items held.
func (r *XMLSequenceResource) ItemCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.items)
}

// GetItems pages through the sequence: items [startPosition,
// startPosition+count), 1-based, clamped.
func (r *XMLSequenceResource) GetItems(startPosition, count int) ([]xmldb.QueryResult, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if startPosition < 1 {
		startPosition = 1
	}
	from := startPosition - 1
	if from >= len(r.items) || count <= 0 {
		return nil, nil
	}
	to := from + count
	if to > len(r.items) {
		to = len(r.items)
	}
	return append([]xmldb.QueryResult(nil), r.items[from:to]...), nil
}

// XPathFactory implements XPathAccessFactory.XPathExecuteFactory: it
// evaluates the expression and wraps the result sequence as a new
// service-managed resource registered with the target service.
func XPathFactory(ctx context.Context, src *XMLCollectionResource, target *core.DataService, expr string,
	cfg *core.Configuration) (*XMLSequenceResource, error) {
	results, err := src.XPathExecute(ctx, expr)
	if err != nil {
		return nil, err
	}
	c := core.DefaultConfiguration()
	if cfg != nil {
		c = *cfg
	}
	res := NewXMLSequenceResource(src.AbstractName(), results, c)
	target.AddResource(res)
	return res, nil
}

// XQueryFactory implements XQueryFactory.XQueryExecuteFactory.
func XQueryFactory(ctx context.Context, src *XMLCollectionResource, target *core.DataService, query string,
	cfg *core.Configuration) (*XMLSequenceResource, error) {
	results, err := src.XQueryExecute(ctx, query)
	if err != nil {
		return nil, err
	}
	c := core.DefaultConfiguration()
	if cfg != nil {
		c = *cfg
	}
	res := NewXMLSequenceResource(src.AbstractName(), results, c)
	target.AddResource(res)
	return res, nil
}

// CollectionFactory implements XMLCollectionFactory.CreateSubcollection
// as an indirect-access operation: it creates a sub-collection, wraps
// it as a new data resource and registers it with the target service.
// Unlike sequences the new resource is a live view: documents added
// through it are visible to the parent store.
func CollectionFactory(ctx context.Context, src *XMLCollectionResource, target *core.DataService, name string,
	cfg *core.Configuration) (*XMLCollectionResource, error) {
	if err := core.TimeoutFault(ctx); err != nil {
		return nil, err
	}
	if err := src.CreateSubcollection(name); err != nil {
		return nil, err
	}
	c := core.DefaultConfiguration()
	if cfg != nil {
		c = *cfg
	}
	res := NewXMLCollectionResource(src.Store(), joinPath(src.Path(), name),
		WithCollectionConfiguration(c))
	res.Parent = src.AbstractName()
	res.Mgmt = core.ServiceManaged
	target.AddResource(res)
	return res, nil
}

// StandardConfigurationMaps returns the ConfigurationMap entries an XML
// data service advertises.
func StandardConfigurationMaps() []core.ConfigurationMapEntry {
	return []core.ConfigurationMapEntry{
		{
			MessageName: "XPathExecuteFactoryRequest",
			PortType:    PortTypeXMLSequenceAccess,
			Default:     core.DefaultConfiguration(),
		},
		{
			MessageName: "XQueryExecuteFactoryRequest",
			PortType:    PortTypeXMLSequenceAccess,
			Default:     core.DefaultConfiguration(),
		},
		{
			MessageName: "CreateSubcollectionRequest",
			PortType:    PortTypeXMLCollectionAccess,
			Default:     core.DefaultConfiguration(),
		},
	}
}
