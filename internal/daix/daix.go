// Package daix implements the WS-DAIX XML realisation: XML collection
// data resources backed by the xmldb substrate, the
// XMLCollectionAccess operations (document and sub-collection
// management), XPathAccess / XQueryAccess / XUpdateAccess query
// interfaces, and the XPathFactory / XQueryFactory / CollectionFactory
// indirect-access operations that create derived sequence and
// collection resources (paper §4.3: "The XML extensions follow the
// same principles and provide support for querying XML data resources
// using XQuery, XPath, XUpdate as well as operations that manipulate
// collections").
package daix

import (
	"context"
	"fmt"
	"strings"

	"dais/internal/core"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

// NSDAIX is the WS-DAIX namespace.
const NSDAIX = "http://www.ggf.org/namespaces/2005/12/WS-DAIX"

// Query language URIs advertised through GenericQueryLanguage.
const (
	LanguageXPath  = "http://www.w3.org/TR/xpath"
	LanguageXQuery = "http://www.w3.org/TR/xquery"
)

// FormatXML is the single dataset format XML resources return.
const FormatXML = "http://www.w3.org/TR/REC-xml"

// XMLCollectionResource is an externally managed XML data resource: a
// collection (possibly nested) in an xmldb store.
type XMLCollectionResource struct {
	core.BaseResource
	store *xmldb.Store
	path  string // collection path within the store; "" = root
}

// CollectionOption configures an XMLCollectionResource.
type CollectionOption func(*XMLCollectionResource)

// WithCollectionConfiguration overrides the default configuration.
func WithCollectionConfiguration(c core.Configuration) CollectionOption {
	return func(r *XMLCollectionResource) { r.Config = c }
}

// NewXMLCollectionResource wraps a store collection as a data resource.
func NewXMLCollectionResource(store *xmldb.Store, path string, opts ...CollectionOption) *XMLCollectionResource {
	r := &XMLCollectionResource{
		BaseResource: core.BaseResource{
			Name: core.NewAbstractName("xmlcol"),
			Mgmt: core.ExternallyManaged,
			Config: core.Configuration{
				Description:          "XML collection " + store.Name() + "/" + path,
				Readable:             true,
				Writeable:            true,
				TransactionIsolation: "READ COMMITTED",
			},
		},
		store: store,
		path:  path,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Store exposes the underlying store.
func (r *XMLCollectionResource) Store() *xmldb.Store { return r.store }

// Path returns the collection path this resource wraps.
func (r *XMLCollectionResource) Path() string { return r.path }

// QueryLanguages implements core.DataResource.
func (r *XMLCollectionResource) QueryLanguages() []string {
	return []string{LanguageXPath, LanguageXQuery}
}

// DatasetFormats implements core.DataResource.
func (r *XMLCollectionResource) DatasetFormats() []string { return []string{FormatXML} }

// GenericQuery implements core.DataResource, dispatching on language.
func (r *XMLCollectionResource) GenericQuery(ctx context.Context, languageURI, expression string) (*xmlutil.Element, error) {
	var results []xmldb.QueryResult
	var err error
	switch languageURI {
	case LanguageXPath:
		results, err = r.XPathExecute(ctx, expression)
	case LanguageXQuery:
		results, err = r.XQueryExecute(ctx, expression)
	default:
		return nil, &core.InvalidLanguageFault{Language: languageURI}
	}
	if err != nil {
		return nil, err
	}
	return WrapResults(results), nil
}

// ExtendedProperties implements core.DataResource with the WS-DAIX
// collection extensions: document and sub-collection counts and the
// supported update language.
func (r *XMLCollectionResource) ExtendedProperties() []*xmlutil.Element {
	var out []*xmlutil.Element
	if n, err := r.store.DocumentCount(r.path); err == nil {
		e := xmlutil.NewElement(NSDAIX, "NumberOfDocuments")
		e.SetText(fmt.Sprintf("%d", n))
		out = append(out, e)
	}
	if subs, err := r.store.ListCollections(r.path); err == nil {
		e := xmlutil.NewElement(NSDAIX, "NumberOfSubCollections")
		e.SetText(fmt.Sprintf("%d", len(subs)))
		out = append(out, e)
	}
	ul := xmlutil.NewElement(NSDAIX, "UpdateLanguage")
	ul.SetText(xmldb.NSXUpdate)
	out = append(out, ul)
	return out
}

// Release implements core.DataResource. Externally managed collections
// persist; a service-managed derived collection (CollectionFactory) is
// removed from the store with its documents.
func (r *XMLCollectionResource) Release() error {
	if r.Mgmt == core.ServiceManaged && r.path != "" {
		return r.store.RemoveCollection(r.path)
	}
	return nil
}

// --- XMLCollectionAccess operations ---

// AddDocument implements XMLCollectionAccess.AddDocument.
func (r *XMLCollectionResource) AddDocument(name string, doc *xmlutil.Element) error {
	if err := core.CheckWriteable(r); err != nil {
		return err
	}
	return r.store.AddDocument(r.path, name, doc)
}

// AddDocuments adds a batch, failing on the first error and reporting
// how many were added.
func (r *XMLCollectionResource) AddDocuments(docs map[string]*xmlutil.Element, order []string) (int, error) {
	if err := core.CheckWriteable(r); err != nil {
		return 0, err
	}
	added := 0
	for _, name := range order {
		if err := r.store.AddDocument(r.path, name, docs[name]); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}

// GetDocument implements XMLCollectionAccess.GetDocument.
func (r *XMLCollectionResource) GetDocument(name string) (*xmlutil.Element, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	return r.store.GetDocument(r.path, name)
}

// RemoveDocument implements XMLCollectionAccess.RemoveDocument.
func (r *XMLCollectionResource) RemoveDocument(name string) error {
	if err := core.CheckWriteable(r); err != nil {
		return err
	}
	return r.store.RemoveDocument(r.path, name)
}

// ListDocuments implements XMLCollectionAccess.ListDocuments.
func (r *XMLCollectionResource) ListDocuments() ([]string, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	return r.store.ListDocuments(r.path)
}

// CreateSubcollection implements XMLCollectionAccess.CreateSubcollection.
func (r *XMLCollectionResource) CreateSubcollection(name string) error {
	if err := core.CheckWriteable(r); err != nil {
		return err
	}
	return r.store.CreateCollection(joinPath(r.path, name))
}

// RemoveSubcollection implements XMLCollectionAccess.RemoveSubcollection.
func (r *XMLCollectionResource) RemoveSubcollection(name string) error {
	if err := core.CheckWriteable(r); err != nil {
		return err
	}
	return r.store.RemoveCollection(joinPath(r.path, name))
}

// ListSubcollections implements XMLCollectionAccess.ListSubcollections.
func (r *XMLCollectionResource) ListSubcollections() ([]string, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	return r.store.ListCollections(r.path)
}

// --- query interfaces ---

// XPathExecute implements XPathAccess.XPathExecute across the
// collection's documents.
func (r *XMLCollectionResource) XPathExecute(ctx context.Context, expr string) ([]xmldb.QueryResult, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	res, err := r.store.XPathQueryContext(ctx, r.path, expr)
	if err != nil {
		return nil, core.QueryFault(ctx, err)
	}
	return res, nil
}

// XQueryExecute implements XQueryAccess.XQueryExecute.
func (r *XMLCollectionResource) XQueryExecute(ctx context.Context, query string) ([]xmldb.QueryResult, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	res, err := r.store.XQueryExecuteContext(ctx, r.path, query)
	if err != nil {
		return nil, core.QueryFault(ctx, err)
	}
	return res, nil
}

// XUpdateExecute implements XUpdateAccess.XUpdateExecute against one
// document of the collection.
func (r *XMLCollectionResource) XUpdateExecute(ctx context.Context, document string, modifications *xmlutil.Element) (int, error) {
	if err := core.CheckWriteable(r); err != nil {
		return 0, err
	}
	if err := core.TimeoutFault(ctx); err != nil {
		return 0, err
	}
	n, err := r.store.XUpdate(r.path, document, modifications)
	if err != nil {
		return 0, core.QueryFault(ctx, err)
	}
	return n, nil
}

// WrapResults renders query results as a single XMLSequence element for
// transport.
func WrapResults(results []xmldb.QueryResult) *xmlutil.Element {
	seq := xmlutil.NewElement(NSDAIX, "XMLSequence")
	for _, qr := range results {
		item := seq.Add(NSDAIX, "Item")
		item.SetAttr("", "document", qr.Document)
		if qr.IsNode {
			item.AppendChild(qr.Node.Clone())
		} else {
			item.SetAttr("", "document", qr.Document)
			item.AddText(NSDAIX, "Value", qr.Value)
		}
	}
	return seq
}

func joinPath(base, name string) string {
	if base == "" {
		return name
	}
	return strings.TrimSuffix(base, "/") + "/" + name
}
