package filestore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentAppendRecordAndRead hammers one file with parallel
// appenders while readers random-access records that are already known
// to exist. AppendRecord's contract — the returned offset is where this
// call's bytes landed, atomically with the append — is exactly what the
// rowset spill path depends on, so any interleaving bug shows up here
// as a corrupted record. Run with -race.
func TestConcurrentAppendRecordAndRead(t *testing.T) {
	s := NewStore("stress")
	const (
		writers          = 8
		recordsPerWriter = 200
	)

	type rec struct {
		off  int64
		size int64
		body []byte
	}
	var (
		mu   sync.Mutex
		recs []rec
	)

	payload := func(w, i int) []byte {
		// Variable-length bodies so offsets never fall on a fixed grid.
		body := bytes.Repeat([]byte{byte(w)}, 1+(w*recordsPerWriter+i)%97)
		return append([]byte(fmt.Sprintf("w%02d-r%04d:", w, i)), body...)
	}

	var readers, appenders sync.WaitGroup
	stop := make(chan struct{})
	// Readers: re-check random already-committed records while appends
	// are still in flight.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			n := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				if len(recs) == 0 {
					mu.Unlock()
					continue
				}
				n = (n*1103515245 + 12345) & 0x7fffffff
				rc := recs[n%len(recs)]
				mu.Unlock()
				got, err := s.Read("data", rc.off, rc.size)
				if err != nil {
					t.Errorf("Read(%d,%d): %v", rc.off, rc.size, err)
					return
				}
				if !bytes.Equal(got, rc.body) {
					t.Errorf("record at %d corrupted: %q != %q", rc.off, got, rc.body)
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		appenders.Add(1)
		go func(w int) {
			defer appenders.Done()
			for i := 0; i < recordsPerWriter; i++ {
				body := payload(w, i)
				var hdr [4]byte
				binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
				off, err := s.AppendRecord("data", append(hdr[:], body...))
				if err != nil {
					t.Errorf("AppendRecord: %v", err)
					return
				}
				mu.Lock()
				recs = append(recs, rec{off: off + 4, size: int64(len(body)), body: body})
				mu.Unlock()
			}
		}(w)
	}
	appenders.Wait()
	close(stop)
	readers.Wait()

	// Full-file walk: every record header must frame a valid body, and
	// the total must cover the file exactly — no torn interleavings.
	all, err := s.ReadAll("data")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for pos := 0; pos < len(all); {
		if pos+4 > len(all) {
			t.Fatalf("truncated header at %d", pos)
		}
		n := int(binary.LittleEndian.Uint32(all[pos : pos+4]))
		if pos+4+n > len(all) {
			t.Fatalf("record at %d overruns file: len %d", pos, n)
		}
		pos += 4 + n
		count++
	}
	if count != writers*recordsPerWriter {
		t.Fatalf("walked %d records, want %d", count, writers*recordsPerWriter)
	}
	// And each recorded offset still frames its own body.
	mu.Lock()
	defer mu.Unlock()
	for _, rc := range recs {
		got, err := s.Read("data", rc.off, rc.size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, rc.body) {
			t.Fatalf("record at %d corrupted after quiesce", rc.off)
		}
	}
}

// TestConcurrentAppendAcrossFiles checks that per-store locking does
// not serialise correctness away when many files grow at once: sizes
// and contents must both come out exact.
func TestConcurrentAppendAcrossFiles(t *testing.T) {
	s := NewStore("stress")
	const files = 6
	var wg sync.WaitGroup
	for f := 0; f < files; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			name := fmt.Sprintf("f-%d", f)
			for i := 0; i < 300; i++ {
				if err := s.Append(name, []byte{byte(f), byte(i), byte(i >> 8)}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(f)
	}
	wg.Wait()
	for f := 0; f < files; f++ {
		data, err := s.ReadAll(fmt.Sprintf("f-%d", f))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 900 {
			t.Fatalf("file f-%d: %d bytes, want 900", f, len(data))
		}
		for i := 0; i < 300; i++ {
			if data[i*3] != byte(f) || data[i*3+1] != byte(i) || data[i*3+2] != byte(i>>8) {
				t.Fatalf("file f-%d: torn append at record %d", f, i)
			}
		}
	}
}
