package filestore

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewStore("t")
	data := []byte("hello file store")
	if err := s.Write("dir/a.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAll("dir/a.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("got %q, %v", got, err)
	}
	// Returned slice is a copy.
	got[0] = 'X'
	again, _ := s.ReadAll("dir/a.dat")
	if !bytes.Equal(again, data) {
		t.Fatal("store shares buffers with callers")
	}
	// Leading slash and dot segments normalise.
	viaSlash, err := s.ReadAll("/dir/./a.dat")
	if err != nil || !bytes.Equal(viaSlash, data) {
		t.Fatalf("normalised read failed: %v", err)
	}
}

func TestRangeReads(t *testing.T) {
	s := NewStore("t")
	s.Write("f", []byte("0123456789")) //nolint:errcheck
	cases := []struct {
		off, count int64
		want       string
	}{
		{0, 4, "0123"},
		{4, 4, "4567"},
		{8, 100, "89"},
		{10, 5, ""},
		{-3, 2, "01"},
		{0, -1, "0123456789"},
		{3, 0, ""},
	}
	for _, c := range cases {
		got, err := s.Read("f", c.off, c.count)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != c.want {
			t.Errorf("Read(%d, %d) = %q, want %q", c.off, c.count, got, c.want)
		}
	}
}

func TestAppendAndStat(t *testing.T) {
	now := time.Date(2005, 9, 1, 0, 0, 0, 0, time.UTC)
	s := NewStore("t", WithClock(func() time.Time { return now }))
	s.Append("log", []byte("one")) //nolint:errcheck
	now = now.Add(time.Minute)
	s.Append("log", []byte("+two")) //nolint:errcheck
	got, _ := s.ReadAll("log")
	if string(got) != "one+two" {
		t.Fatalf("got %q", got)
	}
	info, err := s.Stat("log")
	if err != nil || info.Size != 7 || !info.Modified.Equal(now) {
		t.Fatalf("info = %+v, %v", info, err)
	}
}

func TestDeleteAndErrors(t *testing.T) {
	s := NewStore("t")
	s.Write("x", []byte("1")) //nolint:errcheck
	if err := s.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("x"); err == nil {
		t.Fatal("double delete")
	}
	if _, err := s.ReadAll("x"); err == nil {
		t.Fatal("read after delete")
	}
	if _, err := s.Stat("missing"); err == nil {
		t.Fatal("stat missing")
	}
	for _, bad := range []string{"", ".", "..", "../escape"} {
		if err := s.Write(bad, nil); err == nil {
			t.Errorf("Write(%q) should fail", bad)
		}
	}
}

func TestListGlobs(t *testing.T) {
	s := NewStore("t")
	for _, n := range []string{
		"runs/2005/a.dat", "runs/2005/b.dat", "runs/2006/c.dat",
		"calib/atlas.xml", "readme.txt",
	} {
		s.Write(n, []byte(n)) //nolint:errcheck
	}
	cases := map[string]int{
		"":                5,
		"**":              5,
		"runs/**":         3,
		"runs/2005/*.dat": 2,
		"runs/*/[ac].dat": 2,
		"*.txt":           1,
		"**/*.xml":        1,
		"nothing/*":       0,
		"runs/2005":       0, // directories are not files
	}
	for pattern, want := range cases {
		got, err := s.List(pattern)
		if err != nil {
			t.Fatalf("List(%q): %v", pattern, err)
		}
		if len(got) != want {
			t.Errorf("List(%q) = %d files, want %d", pattern, len(got), want)
		}
	}
	// Sorted output.
	all, _ := s.List("")
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("not sorted")
		}
	}
	if _, err := s.List("[bad"); err == nil {
		t.Fatal("bad pattern should error")
	}
}

func TestCountAndTotalSize(t *testing.T) {
	s := NewStore("t")
	s.Write("a", make([]byte, 10)) //nolint:errcheck
	s.Write("b", make([]byte, 32)) //nolint:errcheck
	if s.Count() != 2 || s.TotalSize() != 42 {
		t.Fatalf("count=%d size=%d", s.Count(), s.TotalSize())
	}
}

// Property: writing arbitrary bytes round-trips exactly.
func TestQuickWriteRead(t *testing.T) {
	f := func(data []byte) bool {
		s := NewStore("q")
		if err := s.Write("f", data); err != nil {
			return false
		}
		got, err := s.ReadAll("f")
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any split of a file into ranged reads reassembles it.
func TestQuickRangedReassembly(t *testing.T) {
	f := func(data []byte, chunk uint8) bool {
		s := NewStore("q")
		if err := s.Write("f", data); err != nil {
			return false
		}
		size := int64(chunk%32) + 1
		var out []byte
		for off := int64(0); ; off += size {
			part, err := s.Read("f", off, size)
			if err != nil {
				return false
			}
			if len(part) == 0 {
				break
			}
			out = append(out, part...)
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
