// Package filestore implements an in-memory hierarchical file store:
// the substrate behind the experimental WS-DAIF files realisation
// (internal/daif). The paper's conclusions note that "different groups
// are exploring the development of additional realisations for object
// databases, ontologies and files" (§6); this store supplies what such
// a realisation needs from its underlying system — named byte streams
// in directories, random-access reads, writes/appends, and metadata.
package filestore

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// FileInfo is the metadata the WS-DAIF property document and Stat
// operation expose.
type FileInfo struct {
	Name     string // path relative to the store root, slash-separated
	Size     int64
	Modified time.Time
}

// Store is a flat-namespace file store with directory semantics derived
// from slash-separated names (like object stores: directories exist
// implicitly while files live under them).
type Store struct {
	mu    sync.RWMutex
	name  string
	files map[string]*file
	clock func() time.Time
}

type file struct {
	data     []byte
	modified time.Time
}

// Option configures a Store.
type Option func(*Store)

// WithClock substitutes the time source (tests).
func WithClock(c func() time.Time) Option {
	return func(s *Store) { s.clock = c }
}

// NewStore creates an empty store.
func NewStore(name string, opts ...Option) *Store {
	s := &Store{name: name, files: map[string]*file{}, clock: time.Now}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// cleanName normalises a file name and rejects escapes.
func cleanName(name string) (string, error) {
	n := path.Clean(strings.TrimPrefix(name, "/"))
	if n == "." || n == "" {
		return "", fmt.Errorf("filestore: empty file name")
	}
	if strings.HasPrefix(n, "..") {
		return "", fmt.Errorf("filestore: name %q escapes the store", name)
	}
	return n, nil
}

// Write stores (or replaces) a file's full contents.
func (s *Store) Write(name string, data []byte) error {
	n, err := cleanName(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[n] = &file{data: append([]byte(nil), data...), modified: s.clock()}
	return nil
}

// Append extends a file, creating it when absent.
func (s *Store) Append(name string, data []byte) error {
	n, err := cleanName(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[n]
	if !ok {
		f = &file{}
		s.files[n] = f
	}
	f.data = append(f.data, data...)
	f.modified = s.clock()
	return nil
}

// AppendRecord extends a file like Append and returns the offset at
// which the record was placed. The append and the offset read happen
// under one lock acquisition, so concurrent appenders each get the
// exact extent of their own record — the Append-then-Stat sequence has
// no such guarantee, because another writer can slip between the two
// calls. The rowset spill path depends on this to address pages it
// writes while other pages of the same resource are spilling.
func (s *Store) AppendRecord(name string, data []byte) (int64, error) {
	n, err := cleanName(name)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[n]
	if !ok {
		f = &file{}
		s.files[n] = f
	}
	off := int64(len(f.data))
	f.data = append(f.data, data...)
	f.modified = s.clock()
	return off, nil
}

// Read returns up to count bytes starting at offset (count < 0 reads to
// the end). Reads past the end return an empty slice.
func (s *Store) Read(name string, offset, count int64) ([]byte, error) {
	n, err := cleanName(name)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[n]
	if !ok {
		return nil, fmt.Errorf("filestore: file %q not found", name)
	}
	if offset < 0 {
		offset = 0
	}
	if offset >= int64(len(f.data)) {
		return nil, nil
	}
	end := int64(len(f.data))
	if count >= 0 && offset+count < end {
		end = offset + count
	}
	return append([]byte(nil), f.data[offset:end]...), nil
}

// ReadAll returns a file's full contents.
func (s *Store) ReadAll(name string) ([]byte, error) { return s.Read(name, 0, -1) }

// Delete removes a file.
func (s *Store) Delete(name string) error {
	n, err := cleanName(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[n]; !ok {
		return fmt.Errorf("filestore: file %q not found", name)
	}
	delete(s.files, n)
	return nil
}

// Stat returns a file's metadata.
func (s *Store) Stat(name string) (FileInfo, error) {
	n, err := cleanName(name)
	if err != nil {
		return FileInfo{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[n]
	if !ok {
		return FileInfo{}, fmt.Errorf("filestore: file %q not found", name)
	}
	return FileInfo{Name: n, Size: int64(len(f.data)), Modified: f.modified}, nil
}

// List returns metadata for every file whose name matches the glob
// pattern (path.Match per segment, with ** matching any depth). An
// empty pattern lists everything. Results are sorted by name.
func (s *Store) List(pattern string) ([]FileInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []FileInfo
	for n, f := range s.files {
		ok, err := Match(pattern, n)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, FileInfo{Name: n, Size: int64(len(f.data)), Modified: f.modified})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Count returns the number of files in the store.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// TotalSize returns the sum of all file sizes.
func (s *Store) TotalSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, f := range s.files {
		total += int64(len(f.data))
	}
	return total
}

// Match reports whether a slash-separated name matches a glob pattern.
// Each path segment is matched with path.Match; the segment "**"
// matches any number of segments (including none). An empty pattern
// matches everything.
func Match(pattern, name string) (bool, error) {
	if pattern == "" {
		return true, nil
	}
	return matchSegments(strings.Split(pattern, "/"), strings.Split(name, "/"))
}

func matchSegments(pat, segs []string) (bool, error) {
	for len(pat) > 0 {
		if pat[0] == "**" {
			// Try consuming zero or more segments.
			for skip := 0; skip <= len(segs); skip++ {
				ok, err := matchSegments(pat[1:], segs[skip:])
				if err != nil || ok {
					return ok, err
				}
			}
			return false, nil
		}
		if len(segs) == 0 {
			return false, nil
		}
		ok, err := path.Match(pat[0], segs[0])
		if err != nil {
			return false, fmt.Errorf("filestore: bad pattern %q: %w", pat[0], err)
		}
		if !ok {
			return false, nil
		}
		pat, segs = pat[1:], segs[1:]
	}
	return len(segs) == 0, nil
}
