package soap

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dais/internal/xmlutil"
)

// contentType is the SOAP 1.1 HTTP media type.
const contentType = "text/xml; charset=utf-8"

// HTTPError reports a non-2xx HTTP status on a response that otherwise
// parsed as a fault-free envelope. The envelope is still returned to the
// caller alongside this error. RetryAfter carries the response's
// Retry-After hint (0 when absent) for retry policies.
type HTTPError struct {
	StatusCode int
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("soap: HTTP status %d with non-fault envelope", e.StatusCode)
}

// endpointKey is the context key carrying the endpoint URL of the call
// in flight, stamped by Client.Call so interceptors (per-endpoint
// circuit breakers, tracing) can key state by target without seeing the
// transport layer.
type endpointKey struct{}

// WithEndpoint returns a context annotated with the call's endpoint URL.
func WithEndpoint(ctx context.Context, url string) context.Context {
	return context.WithValue(ctx, endpointKey{}, url)
}

// EndpointFromContext returns the endpoint URL stamped by Client.Call,
// or "" outside a client call.
func EndpointFromContext(ctx context.Context) string {
	url, _ := ctx.Value(endpointKey{}).(string)
	return url
}

// retryAfter parses a Retry-After header value in delay-seconds form
// (the only form this stack emits; HTTP-date values are ignored).
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// ExchangeObserver receives the serialised envelope sizes of one SOAP
// exchange: the request and response byte counts the transport already
// has in hand. The telemetry layer hooks it to count envelope bytes
// without re-marshalling anything.
type ExchangeObserver func(action string, requestBytes, responseBytes int)

// Client issues SOAP calls over HTTP. The zero value is not usable;
// construct with NewClient.
type Client struct {
	httpClient   *http.Client
	interceptors []Interceptor
	onExchange   ExchangeObserver
	// BytesSent and BytesReceived accumulate wire sizes for the
	// evaluation harness (E1/E2/E3 measure data movement).
	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
}

// defaultHTTPClient backs NewClient(nil). It mirrors the
// http.DefaultTransport settings but raises the per-host idle
// connection cap from 2 so the request/response cadence of a DAIS
// consumer — many small SOAP exchanges against one endpoint — rides
// persistent keep-alive connections instead of redialling.
var defaultHTTPClient = &http.Client{Transport: newDefaultTransport()}

func newDefaultTransport() *http.Transport {
	dialer := &net.Dialer{Timeout: 30 * time.Second, KeepAlive: 30 * time.Second}
	return &http.Transport{
		Proxy:                 http.ProxyFromEnvironment,
		DialContext:           dialer.DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   64,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
	}
}

// NewClient returns a Client using the given HTTP client, or a shared
// keep-alive-tuned default when nil. Interceptors wrap every Call,
// first interceptor outermost.
func NewClient(hc *http.Client, interceptors ...Interceptor) *Client {
	if hc == nil {
		hc = defaultHTTPClient
	}
	return &Client{httpClient: hc, interceptors: interceptors}
}

// Use appends interceptors to the client's chain.
func (c *Client) Use(interceptors ...Interceptor) {
	c.interceptors = append(c.interceptors, interceptors...)
}

// OnExchange installs the byte observer invoked after every HTTP
// exchange (set once at construction time, before the first Call).
func (c *Client) OnExchange(f ExchangeObserver) { c.onExchange = f }

// BytesSent reports the cumulative request bytes written by this client.
func (c *Client) BytesSent() int64 { return c.bytesSent.Load() }

// BytesReceived reports the cumulative response bytes read.
func (c *Client) BytesReceived() int64 { return c.bytesReceived.Load() }

// ResetCounters zeroes the byte counters.
func (c *Client) ResetCounters() {
	c.bytesSent.Store(0)
	c.bytesReceived.Store(0)
}

// Call posts the request envelope to url with the given SOAPAction and
// returns the response envelope, running the client interceptor chain
// around the HTTP exchange. The context bounds the whole call: the
// request is built with http.NewRequestWithContext, so cancelling ctx
// aborts the connection. A SOAP fault in the response is returned as a
// *Fault error; the envelope is still returned for callers that need
// header context.
func (c *Client) Call(ctx context.Context, url, action string, req *Envelope) (*Envelope, error) {
	h := Chain(func(ctx context.Context, action string, env *Envelope) (*Envelope, error) {
		return c.do(ctx, url, action, env)
	}, c.interceptors...)
	// Interceptors (the per-endpoint circuit breaker in particular) see
	// the call's target through the context.
	return h(WithEndpoint(ctx, url), action, req)
}

// do performs the terminal HTTP exchange of a Call.
func (c *Client) do(ctx context.Context, url, action string, req *Envelope) (*Envelope, error) {
	payload := req.Marshal()
	c.bytesSent.Add(int64(len(payload)))
	// bytes.Reader bodies get ContentLength and a rewindable GetBody
	// from the net/http constructor, so retries can replay the request.
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("soap: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", contentType)
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	resp, err := c.httpClient.Do(httpReq)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("soap: transport: %w", ctxErr)
		}
		return nil, fmt.Errorf("soap: transport: %w", err)
	}
	defer resp.Body.Close()
	// The response body is read into a pooled scratch buffer; this is
	// safe because ParseEnvelope copies every string out of the bytes
	// it is handed, so nothing aliases the buffer once it is returned.
	buf := getBuffer()
	defer putBuffer(buf)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, fmt.Errorf("soap: read response: %w", err)
	}
	data := buf.Bytes()
	c.bytesReceived.Add(int64(len(data)))
	if c.onExchange != nil {
		c.onExchange(action, len(payload), len(data))
	}
	env, err := ParseEnvelope(data)
	if err != nil {
		return nil, fmt.Errorf("soap: response (HTTP %d): %w", resp.StatusCode, err)
	}
	if f, ok := AsFault(env.BodyEntry()); ok {
		f.Status = resp.StatusCode
		f.RetryAfter = retryAfter(resp.Header)
		return env, f
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return env, &HTTPError{StatusCode: resp.StatusCode, RetryAfter: retryAfter(resp.Header)}
	}
	return env, nil
}

// HandlerFunc processes one SOAP request under a context. Returning a
// *Fault (as the error) produces a SOAP fault response; any other error
// becomes a Server fault with the error text.
type HandlerFunc func(ctx context.Context, action string, req *Envelope) (*Envelope, error)

// Server routes SOAP requests by wsa:Action / SOAPAction to registered
// handlers. It implements http.Handler.
type Server struct {
	mu           sync.RWMutex
	handlers     map[string]HandlerFunc
	fallback     HandlerFunc
	interceptors []Interceptor
	onExchange   ExchangeObserver
}

// NewServer returns an empty SOAP dispatch server. Interceptors wrap
// every dispatched request, first interceptor outermost.
func NewServer(interceptors ...Interceptor) *Server {
	return &Server{handlers: make(map[string]HandlerFunc), interceptors: interceptors}
}

// Use appends interceptors to the server's chain.
func (s *Server) Use(interceptors ...Interceptor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interceptors = append(s.interceptors, interceptors...)
}

// OnExchange installs the byte observer invoked after every dispatched
// request with the serialised request and response envelope sizes.
func (s *Server) OnExchange(f ExchangeObserver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onExchange = f
}

// Handle registers a handler for an action URI.
func (s *Server) Handle(action string, h HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[action] = h
}

// HandleFallback registers a handler invoked when no action matches.
func (s *Server) HandleFallback(h HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fallback = h
}

// Actions returns the registered action URIs (for service metadata).
func (s *Server) Actions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.handlers))
	for a := range s.handlers {
		out = append(out, a)
	}
	return out
}

// ServeHTTP decodes the envelope, resolves the action (preferring the
// wsa:Action header over the HTTP SOAPAction header), dispatches through
// the interceptor chain under the request's context, and writes the
// response envelope. Faults are returned with HTTP 500 as SOAP 1.1 over
// HTTP requires.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	// Pooled request read: ParseEnvelope copies every string, so the
	// decoded envelope never aliases the scratch buffer.
	reqBuf := getBuffer()
	defer putBuffer(reqBuf)
	if _, err := reqBuf.ReadFrom(r.Body); err != nil {
		s.writeFault(w, ClientFault("unreadable request: %v", err))
		return
	}
	data := reqBuf.Bytes()
	env, err := ParseEnvelope(data)
	if err != nil {
		s.writeFault(w, ClientFault("malformed envelope: %v", err))
		return
	}
	action := headerAction(env)
	if action == "" {
		action = trimQuotes(r.Header.Get("SOAPAction"))
	}
	s.mu.RLock()
	h, ok := s.handlers[action]
	fb := s.fallback
	ics := s.interceptors
	observe := s.onExchange
	s.mu.RUnlock()
	if !ok {
		if fb == nil {
			// Dispatch the fault through the chain so interceptors
			// (telemetry, logging) still observe misdirected requests.
			h = func(context.Context, string, *Envelope) (*Envelope, error) {
				return nil, ClientFault("no handler for action %q", action)
			}
		} else {
			h = fb
		}
	}
	resp, err := Chain(h, ics...)(r.Context(), action, env)
	status := http.StatusOK
	// Encode straight into a pooled scratch buffer and write it to the
	// ResponseWriter — no per-response []byte materialisation.
	buf := getBuffer()
	defer putBuffer(buf)
	if err != nil {
		f, isFault := err.(*Fault)
		if !isFault {
			f = ServerFault("%v", err)
		}
		NewEnvelope(f.Element()).encodeTo(buf)
		status = faultStatus(w, f)
	} else {
		resp.encodeTo(buf)
	}
	if observe != nil {
		observe(action, len(data), buf.Len())
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

func (s *Server) writeFault(w http.ResponseWriter, f *Fault) {
	buf := getBuffer()
	defer putBuffer(buf)
	NewEnvelope(f.Element()).encodeTo(buf)
	status := faultStatus(w, f)
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

// faultStatus resolves the HTTP status a fault is written with (SOAP
// 1.1 over HTTP defaults to 500) and sets the Retry-After pacing header
// when the fault carries a hint.
func faultStatus(w http.ResponseWriter, f *Fault) int {
	if f.RetryAfter > 0 {
		secs := int(f.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	if f.Status != 0 {
		return f.Status
	}
	return http.StatusInternalServerError
}

// headerAction extracts a WS-Addressing Action header if present. The
// wsaddr package owns full header handling; this lightweight probe
// avoids an import cycle.
func headerAction(env *Envelope) string {
	for _, h := range env.Header {
		if h.Name.Local == "Action" {
			return h.Text()
		}
	}
	return ""
}

func trimQuotes(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// MustBody panics if the envelope has no body entry; used by handlers
// after the dispatcher has already validated the envelope shape.
func MustBody(env *Envelope) *xmlutil.Element {
	b := env.BodyEntry()
	if b == nil {
		panic("soap: empty body")
	}
	return b
}
