package soap

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dais/internal/xmlutil"
)

func echoHandler(ctx context.Context, action string, req *Envelope) (*Envelope, error) {
	return NewEnvelope(xmlutil.NewElement("urn:t", "R")), nil
}

func TestChainOrder(t *testing.T) {
	var trace []string
	tag := func(name string) Interceptor {
		return func(ctx context.Context, action string, env *Envelope, next HandlerFunc) (*Envelope, error) {
			trace = append(trace, name+">")
			resp, err := next(ctx, action, env)
			trace = append(trace, "<"+name)
			return resp, err
		}
	}
	h := Chain(func(ctx context.Context, action string, env *Envelope) (*Envelope, error) {
		trace = append(trace, "handler")
		return nil, nil
	}, tag("a"), tag("b"), tag("c"))
	if _, err := h(context.Background(), "act", nil); err != nil {
		t.Fatal(err)
	}
	want := "a>,b>,c>,handler,<c,<b,<a"
	if got := strings.Join(trace, ","); got != want {
		t.Fatalf("chain order = %s, want %s", got, want)
	}
}

func TestChainEmpty(t *testing.T) {
	h := Chain(echoHandler)
	resp, err := h(context.Background(), "a", NewEnvelope(xmlutil.NewElement("urn:t", "Q")))
	if err != nil || resp == nil {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
}

func TestRequestIDHeaderRoundTrip(t *testing.T) {
	// The client stamps an ID; the server adopts it, exposes it to the
	// handler's context, and echoes it on the response.
	var serverSawID string
	srv := NewServer(ServerRequestID())
	srv.Handle("urn:t/Op", func(ctx context.Context, action string, req *Envelope) (*Envelope, error) {
		serverSawID = RequestIDFromContext(ctx)
		return NewEnvelope(xmlutil.NewElement("urn:t", "R")), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := NewClient(nil, ClientRequestID())
	ctx := WithRequestID(context.Background(), "req-fixed-42")
	resp, err := c.Call(ctx, ts.URL, "urn:t/Op", NewEnvelope(xmlutil.NewElement("urn:t", "Q")))
	if err != nil {
		t.Fatal(err)
	}
	if serverSawID != "req-fixed-42" {
		t.Fatalf("server saw ID %q, want req-fixed-42", serverSawID)
	}
	if got := RequestIDOf(resp); got != "req-fixed-42" {
		t.Fatalf("response echoes ID %q, want req-fixed-42", got)
	}
}

func TestClientRequestIDGeneratesWhenAbsent(t *testing.T) {
	env := NewEnvelope(xmlutil.NewElement("urn:t", "Q"))
	var captured string
	h := Chain(func(ctx context.Context, action string, e *Envelope) (*Envelope, error) {
		captured = RequestIDOf(e)
		if captured == "" || RequestIDFromContext(ctx) != captured {
			t.Fatalf("header %q / ctx %q mismatch", captured, RequestIDFromContext(ctx))
		}
		return nil, nil
	}, ClientRequestID())
	if _, err := h(context.Background(), "a", env); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(captured, "req-") {
		t.Fatalf("generated ID = %q", captured)
	}
}

func TestServerRequestIDGeneratesWhenAbsent(t *testing.T) {
	h := Chain(echoHandler, ServerRequestID())
	resp, err := h(context.Background(), "a", NewEnvelope(xmlutil.NewElement("urn:t", "Q")))
	if err != nil {
		t.Fatal(err)
	}
	if id := RequestIDOf(resp); !strings.HasPrefix(id, "req-") {
		t.Fatalf("response ID = %q", id)
	}
}

func TestTimeoutInterceptorSetsDeadline(t *testing.T) {
	var dl time.Time
	var ok bool
	h := Chain(func(ctx context.Context, action string, env *Envelope) (*Envelope, error) {
		dl, ok = ctx.Deadline()
		return nil, nil
	}, ClientTimeout(time.Minute))
	if _, err := h(context.Background(), "a", nil); err != nil {
		t.Fatal(err)
	}
	if !ok || time.Until(dl) > time.Minute {
		t.Fatalf("deadline = %v ok=%v", dl, ok)
	}

	// An earlier caller deadline wins over a longer interceptor timeout.
	short, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := h(short, "a", nil); err != nil {
		t.Fatal(err)
	}
	if time.Until(dl) > time.Second {
		t.Fatalf("interceptor extended caller deadline to %v", dl)
	}
}

func TestServerTimeoutExpiresHandlerContext(t *testing.T) {
	h := Chain(func(ctx context.Context, action string, env *Envelope) (*Envelope, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, errors.New("handler context never expired")
		}
	}, ServerTimeout(10*time.Millisecond))
	_, err := h(context.Background(), "a", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestCallCancelledContextAborts(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer slow.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := NewClient(nil).Call(ctx, slow.URL, "urn:t/Op", NewEnvelope(xmlutil.NewElement("urn:t", "Q")))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Call did not return after cancel")
	}
}

func TestCallReportsNon2xxStatus(t *testing.T) {
	// A non-2xx response whose body is a valid fault-free envelope must
	// surface an HTTPError carrying the status code.
	env := NewEnvelope(xmlutil.NewElement("urn:t", "R"))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentType)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(env.Marshal())
	}))
	defer ts.Close()

	resp, err := NewClient(nil).Call(context.Background(), ts.URL, "urn:t/Op", NewEnvelope(xmlutil.NewElement("urn:t", "Q")))
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want HTTPError 503", err)
	}
	if resp == nil || resp.BodyEntry() == nil {
		t.Fatal("envelope should still be returned alongside the error")
	}
}

func TestRequestBodyIsRewindable(t *testing.T) {
	// GetBody must be populated so net/http can replay the request on a
	// dropped keep-alive connection.
	var sawGetBody bool
	rt := roundTripFunc(func(r *http.Request) (*http.Response, error) {
		sawGetBody = r.GetBody != nil && r.ContentLength > 0
		env := NewEnvelope(xmlutil.NewElement("urn:t", "R"))
		rec := httptest.NewRecorder()
		rec.Header().Set("Content-Type", contentType)
		rec.WriteString(string(env.Marshal()))
		return rec.Result(), nil
	})
	c := NewClient(&http.Client{Transport: rt})
	if _, err := c.Call(context.Background(), "http://unit.test/", "urn:t/Op", NewEnvelope(xmlutil.NewElement("urn:t", "Q"))); err != nil {
		t.Fatal(err)
	}
	if !sawGetBody {
		t.Fatal("request has no rewindable GetBody / ContentLength")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestNewRequestIDEntropyFallback(t *testing.T) {
	orig := randRead
	defer func() { randRead = orig }()
	randRead = func(b []byte) (int, error) { return 0, errors.New("entropy exhausted") }

	first := NewRequestID()
	second := NewRequestID()
	if !strings.HasPrefix(first, "req-seq-") || !strings.HasPrefix(second, "req-seq-") {
		t.Fatalf("fallback ids = %q, %q", first, second)
	}
	if first == second {
		t.Fatalf("fallback ids must stay unique, got %q twice", first)
	}

	randRead = orig
	if id := NewRequestID(); !strings.HasPrefix(id, "req-") || strings.HasPrefix(id, "req-seq-") {
		t.Fatalf("recovered id = %q", id)
	}
}
