package soap

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dais/internal/xmlutil"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	body := xmlutil.NewElement("urn:test", "DoThing")
	body.AddText("urn:test", "Arg", "value")
	env := NewEnvelope(body)
	hdr := xmlutil.NewElement("urn:hdr", "Action")
	hdr.SetText("urn:test/DoThing")
	env.AddHeader(hdr)

	data := env.Marshal()
	if !strings.HasPrefix(string(data), `<?xml`) {
		t.Fatal("missing XML declaration")
	}
	got, err := ParseEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Header) != 1 || got.Header[0].Text() != "urn:test/DoThing" {
		t.Fatalf("header = %+v", got.Header)
	}
	be := got.BodyEntry()
	if be == nil || be.Name.Local != "DoThing" {
		t.Fatalf("body = %v", be)
	}
	if be.FindText("urn:test", "Arg") != "value" {
		t.Fatal("body arg lost")
	}
}

func TestEnvelopeNoHeader(t *testing.T) {
	env := NewEnvelope(xmlutil.NewElement("urn:x", "Op"))
	got, err := ParseEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Header) != 0 {
		t.Fatalf("expected no headers, got %d", len(got.Header))
	}
}

func TestParseEnvelopeErrors(t *testing.T) {
	cases := []string{
		`<NotAnEnvelope/>`,
		`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Header/></Envelope>`, // no body
		`garbage`,
	}
	for _, c := range cases {
		if _, err := ParseEnvelope([]byte(c)); err == nil {
			t.Errorf("ParseEnvelope(%q): expected error", c)
		}
	}
}

func TestFaultRoundTrip(t *testing.T) {
	detail := xmlutil.NewElement("urn:dais", "InvalidResourceNameFault")
	detail.AddText("urn:dais", "Name", "urn:missing")
	f := &Fault{Code: "Client", String: "unknown resource", Detail: detail}
	env := NewEnvelope(f.Element())
	got, err := ParseEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	gf, ok := AsFault(got.BodyEntry())
	if !ok {
		t.Fatal("not detected as fault")
	}
	if gf.Code != "Client" || gf.String != "unknown resource" {
		t.Fatalf("fault = %+v", gf)
	}
	if gf.Detail == nil || gf.Detail.FindText("urn:dais", "Name") != "urn:missing" {
		t.Fatalf("detail = %v", gf.Detail)
	}
	if !strings.Contains(gf.Error(), "unknown resource") {
		t.Fatal("Error() should include fault string")
	}
}

func TestAsFaultNonFault(t *testing.T) {
	if _, ok := AsFault(xmlutil.NewElement("urn:x", "Response")); ok {
		t.Fatal("non-fault detected as fault")
	}
	if _, ok := AsFault(nil); ok {
		t.Fatal("nil detected as fault")
	}
}

func TestServerDispatch(t *testing.T) {
	srv := NewServer()
	srv.Handle("urn:test/Echo", func(_ context.Context, action string, req *Envelope) (*Envelope, error) {
		in := MustBody(req)
		out := xmlutil.NewElement("urn:test", "EchoResponse")
		out.AddText("urn:test", "Value", in.FindText("urn:test", "Value"))
		return NewEnvelope(out), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := xmlutil.NewElement("urn:test", "Echo")
	body.AddText("urn:test", "Value", "ping")
	client := NewClient(nil)
	resp, err := client.Call(context.Background(), ts.URL, "urn:test/Echo", NewEnvelope(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.BodyEntry().FindText("urn:test", "Value"); got != "ping" {
		t.Fatalf("echo = %q", got)
	}
	if client.BytesSent() == 0 || client.BytesReceived() == 0 {
		t.Fatal("byte counters not updated")
	}
	client.ResetCounters()
	if client.BytesSent() != 0 || client.BytesReceived() != 0 {
		t.Fatal("counters not reset")
	}
}

func TestServerUnknownAction(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(nil)
	_, err := client.Call(context.Background(), ts.URL, "urn:test/Missing", NewEnvelope(xmlutil.NewElement("urn:t", "X")))
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("expected fault, got %v", err)
	}
	if f.Code != "Client" {
		t.Fatalf("code = %s", f.Code)
	}
}

// TestServerUnknownActionObserved pins that misdirected requests still
// flow through the interceptor chain and the byte observer, so
// telemetry can count them instead of a silent pre-dispatch fault.
func TestServerUnknownActionObserved(t *testing.T) {
	srv := NewServer()
	var seenAction string
	var seenErr error
	srv.Use(func(ctx context.Context, action string, env *Envelope, next HandlerFunc) (*Envelope, error) {
		seenAction = action
		resp, err := next(ctx, action, env)
		seenErr = err
		return resp, err
	})
	var bytesOut int
	srv.OnExchange(func(action string, in, out int) { bytesOut = out })
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(nil)
	_, err := client.Call(context.Background(), ts.URL, "urn:test/Missing", NewEnvelope(xmlutil.NewElement("urn:t", "X")))
	if _, ok := err.(*Fault); !ok {
		t.Fatalf("expected fault, got %v", err)
	}
	if seenAction != "urn:test/Missing" {
		t.Fatalf("interceptor saw action %q", seenAction)
	}
	if _, ok := seenErr.(*Fault); !ok {
		t.Fatalf("interceptor saw err %v", seenErr)
	}
	if bytesOut == 0 {
		t.Fatal("byte observer missed the fault response")
	}
}

func TestServerFallback(t *testing.T) {
	srv := NewServer()
	srv.HandleFallback(func(_ context.Context, action string, req *Envelope) (*Envelope, error) {
		out := xmlutil.NewElement("urn:t", "Any")
		out.SetText(action)
		return NewEnvelope(out), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := NewClient(nil).Call(context.Background(), ts.URL, "urn:whatever", NewEnvelope(xmlutil.NewElement("urn:t", "X")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.BodyEntry().Text() != "urn:whatever" {
		t.Fatalf("fallback action = %q", resp.BodyEntry().Text())
	}
}

func TestServerHandlerFaultAndError(t *testing.T) {
	srv := NewServer()
	srv.Handle("urn:t/Fault", func(context.Context, string, *Envelope) (*Envelope, error) {
		return nil, ClientFault("explicit fault")
	})
	srv.Handle("urn:t/Err", func(context.Context, string, *Envelope) (*Envelope, error) {
		return nil, &plainError{"boom"}
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(nil)

	_, err := c.Call(context.Background(), ts.URL, "urn:t/Fault", NewEnvelope(xmlutil.NewElement("urn:t", "X")))
	if f, ok := err.(*Fault); !ok || f.Code != "Client" || f.String != "explicit fault" {
		t.Fatalf("fault err = %v", err)
	}
	_, err = c.Call(context.Background(), ts.URL, "urn:t/Err", NewEnvelope(xmlutil.NewElement("urn:t", "X")))
	if f, ok := err.(*Fault); !ok || f.Code != "Server" || f.String != "boom" {
		t.Fatalf("error err = %v", err)
	}
}

type plainError struct{ s string }

func (e *plainError) Error() string { return e.s }

func TestWSAddressingActionPreferred(t *testing.T) {
	srv := NewServer()
	var got string
	srv.Handle("urn:wsa/Action", func(_ context.Context, action string, req *Envelope) (*Envelope, error) {
		got = action
		return NewEnvelope(xmlutil.NewElement("urn:t", "OK")), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := xmlutil.NewElement("urn:t", "X")
	env := NewEnvelope(body)
	a := xmlutil.NewElement("http://www.w3.org/2005/08/addressing", "Action")
	a.SetText("urn:wsa/Action")
	env.AddHeader(a)
	// HTTP SOAPAction deliberately different; wsa:Action must win.
	if _, err := NewClient(nil).Call(context.Background(), ts.URL, "urn:other", env); err != nil {
		t.Fatal(err)
	}
	if got != "urn:wsa/Action" {
		t.Fatalf("dispatched action = %q", got)
	}
}

func TestServerRejectsGet(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
}

func TestClientServerRoundTripBytes(t *testing.T) {
	// E-harness sanity: counted bytes equal actual wire payload sizes.
	srv := NewServer()
	srv.Handle("a", func(context.Context, string, *Envelope) (*Envelope, error) {
		return NewEnvelope(xmlutil.NewElement("urn:t", "R")), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(nil)
	req := NewEnvelope(xmlutil.NewElement("urn:t", "Q"))
	want := int64(len(req.Marshal()))
	if _, err := c.Call(context.Background(), ts.URL, "a", req); err != nil {
		t.Fatal(err)
	}
	if c.BytesSent() != want {
		t.Fatalf("BytesSent = %d, want %d", c.BytesSent(), want)
	}
}
