package soap

import (
	"testing"
)

// FuzzParseEnvelope feeds arbitrary bytes to the envelope parser. The
// invariants: no panic on any input, and every accepted envelope
// re-marshals to bytes the parser accepts again with the same body
// entry name and the same fault identity — the stability the retry
// layer relies on when it replays marshalled requests.
func FuzzParseEnvelope(f *testing.F) {
	// Seeds are real DAIS exchanges: a core request, a realisation
	// response carrying a dataset, a typed fault, and WS-Addressing
	// headers (plus malformed shapes the parser must reject cleanly).
	f.Add([]byte(`<?xml version="1.0" encoding="utf-8"?><soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"><soapenv:Body><dai:GetDataResourcePropertyDocumentRequest xmlns:dai="http://www.ggf.org/namespaces/2005/05/WS-DAI"><dai:DataResourceAbstractName>urn:dais:resource:hr</dai:DataResourceAbstractName></dai:GetDataResourcePropertyDocumentRequest></soapenv:Body></soapenv:Envelope>`))
	f.Add([]byte(`<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"><soapenv:Header><wsa:Action xmlns:wsa="http://www.w3.org/2005/08/addressing">http://www.ggf.org/namespaces/2005/05/WS-DAIR/SQLExecute</wsa:Action><wsa:MessageID xmlns:wsa="http://www.w3.org/2005/08/addressing">urn:uuid:1</wsa:MessageID></soapenv:Header><soapenv:Body><dair:SQLExecuteRequest xmlns:dair="http://www.ggf.org/namespaces/2005/05/WS-DAIR"><dair:DataResourceAbstractName>urn:dais:resource:hr</dair:DataResourceAbstractName><dair:SQLExpression><dair:Expression>SELECT id, name FROM emp</dair:Expression></dair:SQLExpression></dair:SQLExecuteRequest></soapenv:Body></soapenv:Envelope>`))
	f.Add([]byte(`<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"><soapenv:Body><soapenv:Fault><faultcode>Client</faultcode><faultstring>dais: InvalidResourceNameFault: unknown data resource "urn:nope"</faultstring><detail><dai:InvalidResourceNameFault xmlns:dai="http://www.ggf.org/namespaces/2005/05/WS-DAI"><dai:Message>unknown</dai:Message><dai:Value>urn:nope</dai:Value></dai:InvalidResourceNameFault></detail></soapenv:Fault></soapenv:Body></soapenv:Envelope>`))
	f.Add([]byte(`<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"><soapenv:Body/></soapenv:Envelope>`))
	f.Add([]byte(`<Envelope><Body/></Envelope>`))                                                                    // wrong namespace: must be rejected, not crash
	f.Add([]byte(`<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"></soapenv:Envelope>`)) // no Body
	f.Add([]byte("<<garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ParseEnvelope(data)
		if err != nil {
			return
		}
		out := env.Marshal()
		again, err := ParseEnvelope(out)
		if err != nil {
			t.Fatalf("accepted envelope failed to reparse after marshal\ninput: %q\nmarshalled: %q\nerr: %v", data, out, err)
		}
		if (env.BodyEntry() == nil) != (again.BodyEntry() == nil) {
			t.Fatal("body entry presence changed across round trip")
		}
		if b := env.BodyEntry(); b != nil {
			if again.BodyEntry().Name != b.Name {
				t.Fatalf("body entry name changed across round trip: %v → %v", b.Name, again.BodyEntry().Name)
			}
			f1, ok1 := AsFault(b)
			f2, ok2 := AsFault(again.BodyEntry())
			if ok1 != ok2 {
				t.Fatal("fault identity changed across round trip")
			}
			if ok1 && (f1.Code != f2.Code || f1.String != f2.String) {
				t.Fatalf("fault content changed across round trip: %+v → %+v", f1, f2)
			}
		}
		if len(env.Header) != len(again.Header) {
			t.Fatalf("header count changed across round trip: %d → %d", len(env.Header), len(again.Header))
		}
	})
}
