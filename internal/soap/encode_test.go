package soap

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"dais/internal/xmlutil"
)

const nsHammer = "urn:dais:test:hammer"

func hammerEnvelope(worker, i int) (*Envelope, string) {
	id := fmt.Sprintf("worker-%d-message-%d", worker, i)
	body := xmlutil.NewElement(nsHammer, "Echo")
	body.AddText(nsHammer, "ID", id)
	body.AddText(nsHammer, "Padding", "<&\"padding that needs escaping\">")
	env := NewEnvelope(body)
	hdr := xmlutil.NewElement(nsHammer, "Tag")
	hdr.SetText(id)
	env.AddHeader(hdr)
	return env, id
}

// TestMarshalConcurrentNoCrossContamination hammers the pooled encoder
// from many goroutines (mirroring the telemetry histogram hammer) and
// asserts every marshalled envelope round-trips back to its own
// payload — a recycled buffer leaking bytes between envelopes would
// corrupt the ID or fail the parse.
func TestMarshalConcurrentNoCrossContamination(t *testing.T) {
	const workers, iters = 16, 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				env, id := hammerEnvelope(w, i)
				data := env.Marshal()
				back, err := ParseEnvelope(data)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if got := back.BodyEntry().FindText(nsHammer, "ID"); got != id {
					errs <- fmt.Errorf("worker %d: body ID %q, want %q", w, got, id)
					return
				}
				if got := back.FindHeader(nsHammer, "Tag").Text(); got != id {
					errs <- fmt.Errorf("worker %d: header tag %q, want %q", w, got, id)
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestMarshalSharedEnvelopeConcurrent marshals the SAME envelope from
// many goroutines. The clone-free wrapper must not write to the shared
// body or header trees, so under -race this proves the serialisation
// path is read-only over caller-owned elements.
func TestMarshalSharedEnvelopeConcurrent(t *testing.T) {
	env, _ := hammerEnvelope(0, 0)
	want := string(env.Marshal())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := string(env.Marshal()); got != want {
					panic("shared envelope produced divergent bytes")
				}
			}
		}()
	}
	wg.Wait()
}

// TestServeHTTPConcurrentPooledResponses drives the pooled server
// write path end to end: concurrent clients each get back exactly the
// body they sent.
func TestServeHTTPConcurrentPooledResponses(t *testing.T) {
	srv := NewServer()
	srv.Handle("urn:echo", func(_ context.Context, _ string, req *Envelope) (*Envelope, error) {
		return NewEnvelope(req.BodyEntry()), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(nil)
	const workers, iters = 8, 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				env, id := hammerEnvelope(w, i)
				resp, err := client.Call(context.Background(), ts.URL, "urn:echo", env)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if got := resp.BodyEntry().FindText(nsHammer, "ID"); got != id {
					errs <- fmt.Errorf("worker %d: echoed ID %q, want %q", w, got, id)
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestEncodeStats checks the scrape-time counters: encoded bytes grow
// with every marshal and pool hits+misses always account for every get.
func TestEncodeStats(t *testing.T) {
	before, _, _ := EncodeStats()
	env, _ := hammerEnvelope(1, 1)
	n := len(env.Marshal())
	after, hits, misses := EncodeStats()
	if after < before+int64(n) {
		t.Fatalf("encoded bytes %d -> %d, want growth of at least %d", before, after, n)
	}
	if hits < 0 || misses <= 0 {
		t.Fatalf("implausible pool stats: hits=%d misses=%d", hits, misses)
	}
}
