package soap

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dais/internal/xmlutil"
)

// TestClientDrainsAndReusesConnections proves every response path of
// Client.do — success, SOAP fault (with transport hints) and non-2xx
// HTTPError — fully drains and closes the response body, so one
// keep-alive connection serves an arbitrary mix of outcomes. The
// server counts accepted TCP connections via ConnState: if any path
// left the body undrained, the transport would abandon the connection
// and redial, inflating the count past one.
func TestClientDrainsAndReusesConnections(t *testing.T) {
	var conns atomic.Int32
	var mode atomic.Int32 // 0 ok, 1 fault on 503, 2 non-2xx with plain envelope
	respEnv := NewEnvelope(xmlutil.NewElement("urn:t", "OK")).Marshal()
	faultEnv := NewEnvelope((&Fault{Code: "Server", String: "boom"}).Element()).Marshal()
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentType)
		switch mode.Load() {
		case 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write(faultEnv)
		case 2:
			w.WriteHeader(http.StatusBadGateway)
			w.Write(respEnv)
		default:
			w.Write(respEnv)
		}
	}))
	ts.Config.ConnState = func(_ net.Conn, state http.ConnState) {
		if state == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	tr := &http.Transport{MaxIdleConnsPerHost: 1}
	defer tr.CloseIdleConnections()
	c := NewClient(&http.Client{Transport: tr})
	env := NewEnvelope(xmlutil.NewElement("urn:t", "X"))
	ctx := context.Background()

	for i := 0; i < 60; i++ {
		mode.Store(int32(i % 3))
		resp, err := c.Call(ctx, ts.URL, "urn:t:op", env)
		switch i % 3 {
		case 0:
			if err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
		case 1:
			f, ok := err.(*Fault)
			if !ok {
				t.Fatalf("call %d: err = %v, want fault", i, err)
			}
			if f.Status != http.StatusServiceUnavailable || f.RetryAfter != time.Second {
				t.Fatalf("call %d: fault transport hints = %d/%v, want 503/1s", i, f.Status, f.RetryAfter)
			}
		case 2:
			he, ok := err.(*HTTPError)
			if !ok || he.StatusCode != http.StatusBadGateway {
				t.Fatalf("call %d: err = %v, want HTTPError 502", i, err)
			}
			if resp == nil {
				t.Fatalf("call %d: envelope dropped on HTTPError", i)
			}
		}
	}
	if n := conns.Load(); n != 1 {
		t.Fatalf("server saw %d connections for 60 keep-alive calls, want 1 "+
			"(a response body was not drained, so the pool redialled)", n)
	}
}
