package soap

import (
	"context"
	"crypto/rand"
	"fmt"
	"sync/atomic"
	"time"

	"dais/internal/xmlutil"
)

// NSPipeline is the namespace of the request-pipeline SOAP headers this
// implementation adds on top of the DAIS message patterns (the request
// identifier travelling with every call).
const NSPipeline = "http://www.ggf.org/namespaces/2005/12/DAIS/pipeline"

// requestIDHeader is the local name of the request-ID SOAP header.
const requestIDHeader = "RequestID"

// Interceptor wraps one SOAP exchange. Client-side interceptors run
// around Client.Call; server-side interceptors run around handler
// dispatch. An interceptor may derive a new context (deadlines,
// metadata), rewrite the envelope, short-circuit by not calling next, or
// post-process the response. Chains compose left-to-right: the first
// interceptor is outermost. This is the hook point future tracing,
// metrics and retry layers attach to.
type Interceptor func(ctx context.Context, action string, env *Envelope, next HandlerFunc) (*Envelope, error)

// Chain wraps a terminal handler with a list of interceptors, first
// interceptor outermost.
func Chain(h HandlerFunc, interceptors ...Interceptor) HandlerFunc {
	for i := len(interceptors) - 1; i >= 0; i-- {
		ic := interceptors[i]
		next := h
		h = func(ctx context.Context, action string, env *Envelope) (*Envelope, error) {
			return ic(ctx, action, env, next)
		}
	}
	return h
}

// requestIDKey is the context key carrying the request ID.
type requestIDKey struct{}

// randRead is crypto/rand.Read, substitutable so tests can exercise
// the entropy-failure fallback.
var randRead = rand.Read

// reqSeq numbers fallback request IDs when the entropy source fails.
var reqSeq atomic.Uint64

// NewRequestID mints a fresh request identifier. Request IDs only need
// to be unique enough to correlate logs, spans and replies, so when the
// entropy source fails the ID degrades to a process-unique monotonic
// counter instead of panicking mid-request.
func NewRequestID() string {
	var b [8]byte
	if _, err := randRead(b[:]); err != nil {
		return fmt.Sprintf("req-seq-%d", reqSeq.Add(1))
	}
	return fmt.Sprintf("req-%x", b)
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID carried by the context, or
// "" when none is set.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// RequestIDOf extracts the request-ID header from an envelope ("" when
// absent).
func RequestIDOf(env *Envelope) string {
	if env == nil {
		return ""
	}
	if h := env.FindHeader(NSPipeline, requestIDHeader); h != nil {
		return h.Text()
	}
	return ""
}

// setRequestID sets (or replaces) the request-ID header on an envelope.
func setRequestID(env *Envelope, id string) {
	if h := env.FindHeader(NSPipeline, requestIDHeader); h != nil {
		h.SetText(id)
		return
	}
	h := xmlutil.NewElement(NSPipeline, requestIDHeader)
	h.SetText(id)
	env.AddHeader(h)
}

// ClientRequestID is a client interceptor that stamps every outgoing
// request with a request ID: the one already carried by the context, or
// a freshly generated one. The ID is placed both in the context (for
// downstream interceptors) and in a SOAP header (for the service).
func ClientRequestID() Interceptor {
	return func(ctx context.Context, action string, env *Envelope, next HandlerFunc) (*Envelope, error) {
		id := RequestIDFromContext(ctx)
		if id == "" {
			id = NewRequestID()
			ctx = WithRequestID(ctx, id)
		}
		setRequestID(env, id)
		return next(ctx, action, env)
	}
}

// ServerRequestID is a server interceptor that adopts the request ID
// from the incoming envelope (generating one when the consumer sent
// none), exposes it through the context, and echoes it on the response
// so consumers can correlate replies.
func ServerRequestID() Interceptor {
	return func(ctx context.Context, action string, env *Envelope, next HandlerFunc) (*Envelope, error) {
		id := RequestIDOf(env)
		if id == "" {
			id = NewRequestID()
		}
		resp, err := next(WithRequestID(ctx, id), action, env)
		if resp != nil {
			setRequestID(resp, id)
		}
		return resp, err
	}
}

// ClientTimeout is a client interceptor enforcing a per-call deadline:
// each call runs under a context that expires after d, unless the caller
// already set an earlier deadline.
func ClientTimeout(d time.Duration) Interceptor {
	return timeoutInterceptor(d)
}

// ServerTimeout is a server interceptor bounding handler execution: the
// handler's context expires after d, unless the inbound context already
// expires sooner. Handlers observing the expiry surface it as a typed
// DAIS timeout fault at the service layer.
func ServerTimeout(d time.Duration) Interceptor {
	return timeoutInterceptor(d)
}

func timeoutInterceptor(d time.Duration) Interceptor {
	return func(ctx context.Context, action string, env *Envelope, next HandlerFunc) (*Envelope, error) {
		if d <= 0 {
			return next(ctx, action, env)
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
			return next(ctx, action, env)
		}
		tctx, cancel := context.WithTimeout(ctx, d)
		defer cancel()
		return next(tctx, action, env)
	}
}
