// Package soap implements the subset of SOAP 1.1 needed by the DAIS
// specifications: envelope construction and parsing, fault generation
// and decoding, and HTTP transport for both consumers and services.
//
// The DAIS message patterns are defined at the level of SOAP body
// contents (the data resource abstract name is always carried in the
// body, WS-Addressing headers optionally in the header), so this
// package deals in xmlutil element trees rather than Go structs.
package soap

import (
	"bytes"
	"fmt"
	"time"

	"dais/internal/xmlutil"
)

// Namespace URIs used by the envelope layer.
const (
	NSEnvelope = "http://schemas.xmlsoap.org/soap/envelope/"
)

// Envelope is a decoded SOAP 1.1 envelope. Header may be nil; Body
// holds zero or more body entry elements (DAIS messages use exactly
// one).
type Envelope struct {
	Header []*xmlutil.Element
	Body   []*xmlutil.Element
}

// NewEnvelope returns an envelope with the given single body entry.
func NewEnvelope(body *xmlutil.Element) *Envelope {
	return &Envelope{Body: []*xmlutil.Element{body}}
}

// AddHeader appends a header entry.
func (e *Envelope) AddHeader(h *xmlutil.Element) { e.Header = append(e.Header, h) }

// BodyEntry returns the first body entry, or nil for an empty body.
func (e *Envelope) BodyEntry() *xmlutil.Element {
	if len(e.Body) == 0 {
		return nil
	}
	return e.Body[0]
}

// FindHeader returns the first header entry with the given name.
func (e *Envelope) FindHeader(space, local string) *xmlutil.Element {
	for _, h := range e.Header {
		if h.Name.Local == local && (space == "" || h.Name.Space == space) {
			return h
		}
	}
	return nil
}

// envelopeElement builds the transient serialisation wrapper. Header
// and body entries are linked through the Children slices directly —
// not AppendChild, which would write their parent pointers — so the
// caller's trees are never cloned or mutated and the same entries can
// be marshalled from multiple goroutines.
func (e *Envelope) envelopeElement() *xmlutil.Element {
	env := xmlutil.NewElement(NSEnvelope, "Envelope")
	if len(e.Header) > 0 {
		hdr := xmlutil.NewElement(NSEnvelope, "Header")
		for _, h := range e.Header {
			hdr.Children = append(hdr.Children, h)
		}
		env.Children = append(env.Children, hdr)
	}
	body := xmlutil.NewElement(NSEnvelope, "Body")
	for _, b := range e.Body {
		body.Children = append(body.Children, b)
	}
	env.Children = append(env.Children, body)
	return env
}

// encodeTo streams the envelope — XML declaration included — into buf
// and accumulates the encode-byte counter.
func (e *Envelope) encodeTo(buf *bytes.Buffer) {
	start := buf.Len()
	buf.WriteString(xmlDecl)
	xmlutil.EncodeTo(buf, e.envelopeElement())
	encodedBytes.Add(int64(buf.Len() - start))
}

// Marshal serialises the envelope, prepending the XML declaration. The
// encode runs through a pooled scratch buffer; the returned slice is a
// right-sized copy owned by the caller.
func (e *Envelope) Marshal() []byte {
	buf := getBuffer()
	e.encodeTo(buf)
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	putBuffer(buf)
	return out
}

// ParseEnvelope decodes a serialised envelope.
func ParseEnvelope(data []byte) (*Envelope, error) {
	root, err := xmlutil.Parse(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	if root.Name.Space != NSEnvelope || root.Name.Local != "Envelope" {
		return nil, fmt.Errorf("soap: root element %s is not a SOAP envelope", root.Name)
	}
	env := &Envelope{}
	if hdr := root.Find(NSEnvelope, "Header"); hdr != nil {
		env.Header = hdr.ChildElements()
	}
	body := root.Find(NSEnvelope, "Body")
	if body == nil {
		return nil, fmt.Errorf("soap: envelope has no Body")
	}
	env.Body = body.ChildElements()
	return env, nil
}

// Fault is a SOAP 1.1 fault. Detail may carry structured DAIS fault
// information and is optional.
type Fault struct {
	Code   string // qualified fault code local part, e.g. "Client" or "Server"
	String string // human-readable explanation
	Actor  string // optional
	Detail *xmlutil.Element

	// Status and RetryAfter are HTTP transport hints, not part of the
	// serialised fault. A non-zero Status overrides the default 500 the
	// server writes with the fault (503 for overload sheds); a non-zero
	// RetryAfter is written as — and on the consumer side parsed back
	// from — the Retry-After response header, so retry policies can
	// honour the server's pacing hint.
	Status     int
	RetryAfter time.Duration
}

// Error implements the error interface so faults propagate naturally
// through consumer code.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// Element renders the fault as a SOAP Body entry.
func (f *Fault) Element() *xmlutil.Element {
	el := xmlutil.NewElement(NSEnvelope, "Fault")
	// faultcode is a QName in the envelope namespace per SOAP 1.1.
	el.AddText("", "faultcode", f.Code)
	el.AddText("", "faultstring", f.String)
	if f.Actor != "" {
		el.AddText("", "faultactor", f.Actor)
	}
	if f.Detail != nil {
		d := el.Add("", "detail")
		d.AppendChild(f.Detail.Clone())
	}
	return el
}

// AsFault inspects a body entry and decodes it as a Fault if it is one.
func AsFault(body *xmlutil.Element) (*Fault, bool) {
	if body == nil || body.Name.Local != "Fault" || body.Name.Space != NSEnvelope {
		return nil, false
	}
	f := &Fault{
		Code:   body.FindText("", "faultcode"),
		String: body.FindText("", "faultstring"),
		Actor:  body.FindText("", "faultactor"),
	}
	if d := body.Find("", "detail"); d != nil {
		if kids := d.ChildElements(); len(kids) > 0 {
			f.Detail = kids[0]
		}
	}
	return f, true
}

// ClientFault builds a sender-side fault (bad request).
func ClientFault(format string, args ...any) *Fault {
	return &Fault{Code: "Client", String: fmt.Sprintf(format, args...)}
}

// ServerFault builds a receiver-side fault (processing failure).
func ServerFault(format string, args ...any) *Fault {
	return &Fault{Code: "Server", String: fmt.Sprintf(format, args...)}
}
