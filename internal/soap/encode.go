package soap

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// xmlDecl is prepended to every serialised envelope.
const xmlDecl = `<?xml version="1.0" encoding="UTF-8"?>`

// maxPooledBuffer caps the capacity a scratch buffer may retain when
// returned to the pool. A giant one-off response (a full rowset dump)
// would otherwise pin its high-water-mark allocation forever.
const maxPooledBuffer = 1 << 20

// Encode-path counters, exported through EncodeStats for the telemetry
// layer (telemetry imports soap, so the dependency must point this way).
var (
	encodedBytes atomic.Int64
	bufGets      atomic.Int64
	bufMisses    atomic.Int64
)

// bufPool holds scratch buffers for envelope encoding and response
// reading. The New hook counts misses (first use and post-GC refills);
// hits are derived as gets minus misses.
var bufPool = sync.Pool{New: func() any {
	bufMisses.Add(1)
	return new(bytes.Buffer)
}}

func getBuffer() *bytes.Buffer {
	bufGets.Add(1)
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func putBuffer(buf *bytes.Buffer) {
	if buf.Cap() > maxPooledBuffer {
		return // oversized one-off; let the GC reclaim it
	}
	bufPool.Put(buf)
}

// EncodeStats reports cumulative envelope-encode telemetry: total
// serialised envelope bytes, and scratch-buffer pool hits and misses.
func EncodeStats() (encoded, poolHits, poolMisses int64) {
	gets, misses := bufGets.Load(), bufMisses.Load()
	hits := gets - misses
	if hits < 0 {
		hits = 0 // transient skew between the two loads
	}
	return encodedBytes.Load(), hits, misses
}
