package service

import (
	"context"
	"net/http"
	"strings"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/resil"
	"dais/internal/soap"
	"dais/internal/telemetry"
	"dais/internal/wsaddr"
	"dais/internal/wsrf"
	"dais/internal/xmlutil"
)

// Interfaces selects which DAIS port types an endpoint exposes. The
// flags live in the ops package (the operation catalog declares which
// interface class each operation belongs to); the service re-exports
// them for configuration.
type Interfaces = ops.Interfaces

// Interface flags, re-exported from the operation catalog.
const (
	CoreDataAccess      = ops.CoreDataAccess
	CoreResourceList    = ops.CoreResourceList
	SQLAccess           = ops.SQLAccess
	SQLFactory          = ops.SQLFactory
	SQLResponseAccess   = ops.SQLResponseAccess
	SQLResponseFactory  = ops.SQLResponseFactory
	SQLRowsetAccess     = ops.SQLRowsetAccess
	XMLCollectionAccess = ops.XMLCollectionAccess
	XMLQueryAccess      = ops.XMLQueryAccess
	XMLFactory          = ops.XMLFactory
	XMLSequenceAccess   = ops.XMLSequenceAccess
	FileAccess          = ops.FileAccess
	FileFactory         = ops.FileFactory
)

// AllInterfaces enables everything.
const AllInterfaces = ops.AllInterfaces

// Endpoint hosts one data service over SOAP/HTTP, optionally layered
// with WSRF. It implements http.Handler.
type Endpoint struct {
	svc        *core.DataService
	soapSrv    *soap.Server
	wsrfReg    *wsrf.Registry
	interfaces Interfaces
	// registry records the operation specs this endpoint exposes; the
	// SOAP dispatch, the WSDL generator and the completeness tests all
	// read it.
	registry *ops.Registry
	// target is where factory operations register derived resources;
	// defaults to this endpoint (paper Fig. 5 uses distinct services).
	target *Endpoint
	// obs records request metrics and spans; telemetry.Default unless
	// WithTelemetry overrides it (nil disables instrumentation).
	obs *telemetry.Observer
	// extraICs are the user-supplied interceptors, installed inside the
	// request-ID and telemetry interceptors.
	extraICs []soap.Interceptor
	// gate bounds the endpoint's concurrency when WithAdmission is set;
	// nil accepts unbounded concurrency.
	gate *resil.Gate
}

// EndpointOption configures an Endpoint.
type EndpointOption func(*Endpoint)

// WithWSRF layers WS-ResourceProperties and WS-ResourceLifetime over
// the endpoint (paper §5 / Fig. 7).
func WithWSRF() EndpointOption {
	return func(e *Endpoint) {
		e.wsrfReg = wsrf.NewRegistry(wsrf.WithDestroyCallback(func(id string) {
			// WSRF destroy tears down the DAIS relationship too. It may
			// fire from the reaper, long after any request context, so it
			// runs under the background context.
			e.svc.DestroyDataResource(context.Background(), id) //nolint:errcheck // already gone is fine
		}))
	}
}

// WithInterfaces restricts the exposed port types.
func WithInterfaces(i Interfaces) EndpointOption {
	return func(e *Endpoint) { e.interfaces = i }
}

// WithFactoryTarget directs factory-created resources to another
// endpoint (Fig. 5's Data Service 2 / 3 pattern).
func WithFactoryTarget(t *Endpoint) EndpointOption {
	return func(e *Endpoint) { e.target = t }
}

// WithServerInterceptors appends interceptors to the endpoint's SOAP
// dispatch chain (inside the default request-ID and telemetry
// interceptors, so telemetry observes their deadline/fault behaviour).
func WithServerInterceptors(ics ...soap.Interceptor) EndpointOption {
	return func(e *Endpoint) { e.extraICs = append(e.extraICs, ics...) }
}

// WithTelemetry selects the observer the endpoint records request
// metrics and spans into. The default is telemetry.Default; nil
// disables instrumentation entirely.
func WithTelemetry(o *telemetry.Observer) EndpointOption {
	return func(e *Endpoint) { e.obs = o }
}

// NewEndpoint builds an endpoint for a data service.
func NewEndpoint(svc *core.DataService, opts ...EndpointOption) *Endpoint {
	e := &Endpoint{
		svc:        svc,
		interfaces: AllInterfaces,
		registry:   ops.NewRegistry(),
		obs:        telemetry.Default,
	}
	for _, o := range opts {
		o(e)
	}
	// The dispatch chain composes outermost-first: every endpoint
	// adopts/echoes request IDs so consumers can correlate replies, the
	// telemetry interceptor observes everything inside that boundary
	// (user interceptors such as ServerTimeout included), and
	// WithServerInterceptors layers inside both.
	ics := []soap.Interceptor{soap.ServerRequestID()}
	if e.obs != nil {
		ics = append(ics, e.obs.ServerInterceptor())
	}
	// normalizeFaults maps typed faults thrown by the inner interceptors
	// (admission sheds, injected failures) to SOAP faults with 503 /
	// Retry-After transport hints; handler errors are mapped in bind.
	ics = append(ics, normalizeFaults())
	if e.gate != nil {
		ics = append(ics, e.admissionInterceptor())
	}
	ics = append(ics, e.extraICs...)
	e.soapSrv = soap.NewServer(ics...)
	if e.obs != nil {
		e.soapSrv.OnExchange(e.obs.ExchangeObserver(telemetry.SideServer))
	}
	if e.target == nil {
		e.target = e
	}
	// Keep the WSRF registry in sync with plain-DAIS destroys.
	if e.wsrfReg != nil {
		reg := e.wsrfReg
		svc.OnDestroy(func(name string) { reg.Remove(name) })
	}
	e.registerCore()
	e.registerDAIR()
	e.registerDAIX()
	e.registerDAIF()
	e.registerWSRF()
	e.registerWSRFCollector()
	return e
}

// registerWSRFCollector exposes the endpoint's live service-managed
// resources (grouped by realisation kind) and its lifetime-termination
// count as scrape-time gauges on the observer's registry. Counting at
// scrape time keeps the resource registration path free of metric
// bookkeeping.
func (e *Endpoint) registerWSRFCollector() {
	if e.obs == nil || e.wsrfReg == nil {
		return
	}
	reg, name := e.wsrfReg, e.svc.Name()
	e.obs.Registry.RegisterCollector(func(emit func(telemetry.Sample)) {
		counts := map[string]int{}
		for _, id := range reg.IDs() {
			res, ok := reg.Get(id)
			if !ok {
				continue
			}
			kind := string(ops.KindData)
			if pr, ok := res.(*propertyResource); ok {
				kind = string(ops.KindOf(pr.res))
			}
			counts[kind]++
		}
		for kind, n := range counts {
			emit(telemetry.Sample{Name: telemetry.MetricWSRFLive,
				Labels: map[string]string{"service": name, "kind": kind}, Value: float64(n)})
		}
		emit(telemetry.Sample{Name: telemetry.MetricWSRFDead,
			Labels: map[string]string{"service": name}, Value: float64(reg.DestroyedCount())})
	})
}

// Service returns the hosted data service.
func (e *Endpoint) Service() *core.DataService { return e.svc }

// WSRF returns the WSRF registry, or nil when the layer is disabled.
func (e *Endpoint) WSRF() *wsrf.Registry { return e.wsrfReg }

// Operations returns the specs this endpoint exposes, sorted by action
// URI — the registry view the WSDL generator renders.
func (e *Endpoint) Operations() []ops.Spec { return e.registry.Specs() }

// ServeHTTP implements http.Handler. POST carries SOAP; GET with a
// ?wsdl query serves the generated interface description.
func (e *Endpoint) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		if _, ok := r.URL.Query()["wsdl"]; ok {
			e.serveWSDL(w)
			return
		}
		http.Error(w, "DAIS endpoint: POST SOAP requests here, or GET ?wsdl for the description", http.StatusBadRequest)
		return
	}
	e.soapSrv.ServeHTTP(w, r)
}

// Register adds a resource to the data service and, when WSRF is
// enabled, to the WSRF registry.
func (e *Endpoint) Register(r core.DataResource) {
	e.svc.AddResource(r)
	if e.wsrfReg != nil {
		e.wsrfReg.Add(r.AbstractName(), &propertyResource{svc: e.svc, res: r})
	}
}

// EPRFor mints an EPR for a resource hosted here: the service address
// plus the abstract name as a reference parameter (paper §3).
func (e *Endpoint) EPRFor(abstractName string) *wsaddr.EndpointReference {
	epr := wsaddr.NewEPR(e.svc.Address())
	p := xmlutil.NewElement(NSDAI, "DataResourceAbstractName")
	p.SetText(abstractName)
	epr.AddReferenceParameter(p)
	return epr
}

// propertyResource adapts a DAIS resource to the wsrf.Resource
// interface: its property document is the WS-DAI document the service
// builds.
type propertyResource struct {
	svc *core.DataService
	res core.DataResource
}

func (p *propertyResource) PropertyDocument() *xmlutil.Element {
	return p.svc.BuildPropertyDocument(p.res)
}

// has reports whether an interface flag is enabled.
func (e *Endpoint) has(i Interfaces) bool { return e.interfaces&i != 0 }

// ctxFault recognises handler errors caused by an expired or cancelled
// request context and converts them to the typed timeout fault; typed
// DAIS faults pass through untouched.
func ctxFault(ctx context.Context, err error) error {
	if core.FaultName(err) != "" {
		return err
	}
	if _, ok := err.(*soap.Fault); ok {
		return err
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return &core.RequestTimeoutFault{Detail: err.Error()}
	}
	return err
}

// ToSOAPFault maps DAIS typed faults to SOAP faults with structured
// detail; everything else becomes a Server fault. Exported because the
// federation gateway re-encodes backend typed faults onto its own wire
// with exactly the shape a directly-dialed endpoint would produce.
func ToSOAPFault(err error) *soap.Fault {
	if f, ok := err.(*soap.Fault); ok {
		return f
	}
	name := core.FaultName(err)
	if name == "" {
		return soap.ServerFault("%v", err)
	}
	detail := xmlutil.NewElement(NSDAI, name)
	detail.AddText(NSDAI, "Message", err.Error())
	detail.AddText(NSDAI, "Value", faultValue(err))
	f := soap.ClientFault("%v", err)
	f.Detail = detail
	// Overload sheds are a server condition with an explicit pacing
	// contract: HTTP 503 plus Retry-After, which consumer retry policies
	// (internal/resil) parse back out of the transport.
	if busy, ok := err.(*core.ServiceBusyFault); ok {
		f.Code = "Server"
		f.Status = http.StatusServiceUnavailable
		f.RetryAfter = busy.RetryAfter
	}
	return f
}

// faultValue extracts the typed payload of a DAIS fault so consumers
// can reconstruct the fault exactly.
func faultValue(err error) string {
	switch f := err.(type) {
	case *core.InvalidResourceNameFault:
		return f.Name
	case *core.InvalidLanguageFault:
		return f.Language
	case *core.InvalidDatasetFormatFault:
		return f.Format
	case *core.NotAuthorizedFault:
		return f.Reason
	case *core.InvalidExpressionFault:
		return f.Detail
	case *core.ServiceBusyFault:
		return f.Reason
	case *core.RequestTimeoutFault:
		return f.Detail
	}
	return ""
}

// DecodeFault converts a SOAP fault received by a consumer back into
// the matching DAIS typed fault when the detail identifies one.
func DecodeFault(err error) error {
	f, ok := err.(*soap.Fault)
	if !ok || f.Detail == nil {
		return err
	}
	value := f.Detail.FindText(NSDAI, "Value")
	if value == "" {
		value = f.Detail.FindText(NSDAI, "Message")
	}
	switch f.Detail.Name.Local {
	case "InvalidResourceNameFault":
		return &core.InvalidResourceNameFault{Name: value}
	case "InvalidLanguageFault":
		return &core.InvalidLanguageFault{Language: value}
	case "InvalidDatasetFormatFault":
		return &core.InvalidDatasetFormatFault{Format: value}
	case "NotAuthorizedFault":
		return &core.NotAuthorizedFault{Reason: value}
	case "InvalidExpressionFault":
		return &core.InvalidExpressionFault{Detail: value}
	case "ServiceBusyFault":
		// Reason comes from the Value element alone (the Message fallback
		// would double-wrap the error text); RetryAfter from the
		// transport hint the fault carried.
		return &core.ServiceBusyFault{
			Reason:     f.Detail.FindText(NSDAI, "Value"),
			RetryAfter: f.RetryAfter,
		}
	case "RequestTimeoutFault":
		return &core.RequestTimeoutFault{Detail: value}
	}
	return err
}

// datasetElement embeds encoded data in a response; the shared codec
// lives in the ops package so both sides agree by construction.
func datasetElement(formatURI string, data []byte) *xmlutil.Element {
	return ops.DatasetElement(formatURI, data)
}

// DatasetPayload extracts the raw bytes and format URI from a Dataset
// element produced by datasetElement.
func DatasetPayload(e *xmlutil.Element) ([]byte, string) {
	return ops.DatasetPayload(e)
}

// trackDerived registers a factory-created resource with the endpoint's
// WSRF registry (the factory already registered it with the data
// service).
func (e *Endpoint) trackDerived(r core.DataResource) {
	if e.wsrfReg != nil {
		e.wsrfReg.Add(r.AbstractName(), &propertyResource{svc: e.svc, res: r})
	}
}

// splitQName separates an optional prefix from a QName string.
func localOfQName(q string) string {
	if i := strings.LastIndex(q, ":"); i >= 0 {
		return q[i+1:]
	}
	return q
}
