package service

import (
	"bytes"
	"context"
	"net/http"
	"strings"

	"dais/internal/core"
	"dais/internal/soap"
	"dais/internal/wsaddr"
	"dais/internal/wsrf"
	"dais/internal/xmlutil"
)

// Interfaces selects which DAIS port types an endpoint exposes. The
// paper (§4.3) notes "DAIS does not prescribe how these operations are
// to be combined to form services; the proposed interfaces may be used
// in isolation or in conjunction with others" — Fig. 5's three data
// services expose three different combinations.
type Interfaces uint32

// Interface flags.
const (
	CoreDataAccess Interfaces = 1 << iota
	CoreResourceList
	SQLAccess
	SQLFactory
	SQLResponseAccess
	SQLResponseFactory
	SQLRowsetAccess
	XMLCollectionAccess
	XMLQueryAccess
	XMLFactory
	XMLSequenceAccess
	FileAccess
	FileFactory
)

// AllInterfaces enables everything.
const AllInterfaces = CoreDataAccess | CoreResourceList | SQLAccess | SQLFactory |
	SQLResponseAccess | SQLResponseFactory | SQLRowsetAccess |
	XMLCollectionAccess | XMLQueryAccess | XMLFactory | XMLSequenceAccess |
	FileAccess | FileFactory

// Endpoint hosts one data service over SOAP/HTTP, optionally layered
// with WSRF. It implements http.Handler.
type Endpoint struct {
	svc        *core.DataService
	soapSrv    *soap.Server
	wsrfReg    *wsrf.Registry
	interfaces Interfaces
	// target is where factory operations register derived resources;
	// defaults to this endpoint (paper Fig. 5 uses distinct services).
	target *Endpoint
}

// EndpointOption configures an Endpoint.
type EndpointOption func(*Endpoint)

// WithWSRF layers WS-ResourceProperties and WS-ResourceLifetime over
// the endpoint (paper §5 / Fig. 7).
func WithWSRF() EndpointOption {
	return func(e *Endpoint) {
		e.wsrfReg = wsrf.NewRegistry(wsrf.WithDestroyCallback(func(id string) {
			// WSRF destroy tears down the DAIS relationship too. It may
			// fire from the reaper, long after any request context, so it
			// runs under the background context.
			e.svc.DestroyDataResource(context.Background(), id) //nolint:errcheck // already gone is fine
		}))
	}
}

// WithInterfaces restricts the exposed port types.
func WithInterfaces(i Interfaces) EndpointOption {
	return func(e *Endpoint) { e.interfaces = i }
}

// WithFactoryTarget directs factory-created resources to another
// endpoint (Fig. 5's Data Service 2 / 3 pattern).
func WithFactoryTarget(t *Endpoint) EndpointOption {
	return func(e *Endpoint) { e.target = t }
}

// WithServerInterceptors appends interceptors to the endpoint's SOAP
// dispatch chain (after the default request-ID interceptor).
func WithServerInterceptors(ics ...soap.Interceptor) EndpointOption {
	return func(e *Endpoint) { e.soapSrv.Use(ics...) }
}

// NewEndpoint builds an endpoint for a data service.
func NewEndpoint(svc *core.DataService, opts ...EndpointOption) *Endpoint {
	// Every endpoint adopts/echoes request IDs so consumers can
	// correlate replies; WithServerInterceptors layers more on top.
	e := &Endpoint{svc: svc, soapSrv: soap.NewServer(soap.ServerRequestID()), interfaces: AllInterfaces}
	for _, o := range opts {
		o(e)
	}
	if e.target == nil {
		e.target = e
	}
	// Keep the WSRF registry in sync with plain-DAIS destroys.
	if e.wsrfReg != nil {
		reg := e.wsrfReg
		svc.OnDestroy(func(name string) { reg.Remove(name) })
	}
	e.registerCore()
	e.registerDAIR()
	e.registerDAIX()
	e.registerDAIF()
	e.registerWSRF()
	return e
}

// Service returns the hosted data service.
func (e *Endpoint) Service() *core.DataService { return e.svc }

// WSRF returns the WSRF registry, or nil when the layer is disabled.
func (e *Endpoint) WSRF() *wsrf.Registry { return e.wsrfReg }

// ServeHTTP implements http.Handler. POST carries SOAP; GET with a
// ?wsdl query serves the generated interface description.
func (e *Endpoint) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		if _, ok := r.URL.Query()["wsdl"]; ok {
			e.serveWSDL(w)
			return
		}
		http.Error(w, "DAIS endpoint: POST SOAP requests here, or GET ?wsdl for the description", http.StatusBadRequest)
		return
	}
	e.soapSrv.ServeHTTP(w, r)
}

// Register adds a resource to the data service and, when WSRF is
// enabled, to the WSRF registry.
func (e *Endpoint) Register(r core.DataResource) {
	e.svc.AddResource(r)
	if e.wsrfReg != nil {
		e.wsrfReg.Add(r.AbstractName(), &propertyResource{svc: e.svc, res: r})
	}
}

// EPRFor mints an EPR for a resource hosted here: the service address
// plus the abstract name as a reference parameter (paper §3).
func (e *Endpoint) EPRFor(abstractName string) *wsaddr.EndpointReference {
	epr := wsaddr.NewEPR(e.svc.Address())
	p := xmlutil.NewElement(NSDAI, "DataResourceAbstractName")
	p.SetText(abstractName)
	epr.AddReferenceParameter(p)
	return epr
}

// propertyResource adapts a DAIS resource to the wsrf.Resource
// interface: its property document is the WS-DAI document the service
// builds.
type propertyResource struct {
	svc *core.DataService
	res core.DataResource
}

func (p *propertyResource) PropertyDocument() *xmlutil.Element {
	return p.svc.BuildPropertyDocument(p.res)
}

// has reports whether an interface flag is enabled.
func (e *Endpoint) has(i Interfaces) bool { return e.interfaces&i != 0 }

// handle wraps a body-level handler with envelope plumbing: the
// ConcurrentAccess gate, fault mapping and WS-Addressing reply headers.
// The context arriving from the SOAP dispatcher (the HTTP request
// context, tightened by any server interceptors) flows into the handler.
func (e *Endpoint) handle(iface Interfaces, action string, f func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error)) {
	if !e.has(iface) {
		return
	}
	e.soapSrv.Handle(action, func(ctx context.Context, _ string, env *soap.Envelope) (*soap.Envelope, error) {
		body := env.BodyEntry()
		if body == nil {
			return nil, soap.ClientFault("empty SOAP body")
		}
		release, err := e.svc.Enter(ctx)
		if err != nil {
			return nil, toSOAPFault(err)
		}
		resp, err := f(ctx, body)
		release()
		if err != nil {
			return nil, toSOAPFault(ctxFault(ctx, err))
		}
		out := soap.NewEnvelope(resp)
		req := wsaddr.FromEnvelope(env)
		wsaddr.ReplyHeaders(req, action+"Response").Attach(out)
		return out, nil
	})
}

// ctxFault recognises handler errors caused by an expired or cancelled
// request context and converts them to the typed timeout fault; typed
// DAIS faults pass through untouched.
func ctxFault(ctx context.Context, err error) error {
	if core.FaultName(err) != "" {
		return err
	}
	if _, ok := err.(*soap.Fault); ok {
		return err
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return &core.RequestTimeoutFault{Detail: err.Error()}
	}
	return err
}

// toSOAPFault maps DAIS typed faults to SOAP faults with structured
// detail; everything else becomes a Server fault.
func toSOAPFault(err error) *soap.Fault {
	if f, ok := err.(*soap.Fault); ok {
		return f
	}
	name := core.FaultName(err)
	if name == "" {
		return soap.ServerFault("%v", err)
	}
	detail := xmlutil.NewElement(NSDAI, name)
	detail.AddText(NSDAI, "Message", err.Error())
	detail.AddText(NSDAI, "Value", faultValue(err))
	f := soap.ClientFault("%v", err)
	f.Detail = detail
	return f
}

// faultValue extracts the typed payload of a DAIS fault so consumers
// can reconstruct the fault exactly.
func faultValue(err error) string {
	switch f := err.(type) {
	case *core.InvalidResourceNameFault:
		return f.Name
	case *core.InvalidLanguageFault:
		return f.Language
	case *core.InvalidDatasetFormatFault:
		return f.Format
	case *core.NotAuthorizedFault:
		return f.Reason
	case *core.InvalidExpressionFault:
		return f.Detail
	case *core.RequestTimeoutFault:
		return f.Detail
	}
	return ""
}

// DecodeFault converts a SOAP fault received by a consumer back into
// the matching DAIS typed fault when the detail identifies one.
func DecodeFault(err error) error {
	f, ok := err.(*soap.Fault)
	if !ok || f.Detail == nil {
		return err
	}
	value := f.Detail.FindText(NSDAI, "Value")
	if value == "" {
		value = f.Detail.FindText(NSDAI, "Message")
	}
	switch f.Detail.Name.Local {
	case "InvalidResourceNameFault":
		return &core.InvalidResourceNameFault{Name: value}
	case "InvalidLanguageFault":
		return &core.InvalidLanguageFault{Language: value}
	case "InvalidDatasetFormatFault":
		return &core.InvalidDatasetFormatFault{Format: value}
	case "NotAuthorizedFault":
		return &core.NotAuthorizedFault{Reason: value}
	case "InvalidExpressionFault":
		return &core.InvalidExpressionFault{Detail: value}
	case "ServiceBusyFault":
		return &core.ServiceBusyFault{}
	case "RequestTimeoutFault":
		return &core.RequestTimeoutFault{Detail: value}
	}
	return err
}

// datasetElement embeds encoded data in a response: XML formats are
// embedded as element trees, others (CSV) as text.
func datasetElement(formatURI string, data []byte) *xmlutil.Element {
	e := xmlutil.NewElement(NSDAI, "Dataset")
	e.SetAttr("", "formatURI", formatURI)
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '<' {
		if parsed, err := xmlutil.Parse(bytes.NewReader(trimmed)); err == nil {
			e.AppendChild(parsed)
			return e
		}
	}
	e.SetText(string(data))
	return e
}

// DatasetPayload extracts the raw bytes and format URI from a Dataset
// element produced by datasetElement.
func DatasetPayload(e *xmlutil.Element) ([]byte, string) {
	if e == nil {
		return nil, ""
	}
	format := e.AttrValue("", "formatURI")
	if kids := e.ChildElements(); len(kids) == 1 {
		return xmlutil.Marshal(kids[0]), format
	}
	return []byte(e.Text()), format
}

// registerCore wires the WS-DAI operations.
func (e *Endpoint) registerCore() {
	e.handle(CoreDataAccess, ActGetPropertyDocument, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		doc, err := e.svc.GetDataResourcePropertyDocument(name)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAI, "GetDataResourcePropertyDocumentResponse")
		resp.AppendChild(doc)
		return resp, nil
	})
	e.handle(CoreDataAccess, ActGenericQuery, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		lang := body.FindText(NSDAI, "GenericQueryLanguage")
		expr := body.FindText(NSDAI, "Expression")
		result, err := e.svc.GenericQuery(ctx, name, lang, expr)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAI, "GenericQueryResponse")
		resp.AppendChild(result)
		return resp, nil
	})
	e.handle(CoreDataAccess, ActDestroyDataResource, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		if err := e.svc.DestroyDataResource(ctx, name); err != nil {
			return nil, err
		}
		return xmlutil.NewElement(NSDAI, "DestroyDataResourceResponse"), nil
	})
	e.handle(CoreResourceList, ActGetResourceList, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		resp := xmlutil.NewElement(NSDAI, "GetResourceListResponse")
		for _, n := range e.svc.GetResourceList() {
			resp.AddText(NSDAI, "DataResourceAbstractName", n)
		}
		return resp, nil
	})
	e.handle(CoreResourceList, ActResolve, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		if _, err := e.svc.Resolve(name); err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAI, "ResolveResponse")
		resp.AppendChild(e.EPRFor(name).Element(NSDAI, "DataResourceAddress"))
		return resp, nil
	})
}

// typeFault builds the fault for a resource of the wrong realisation.
func typeFault(name, want string) error {
	return &core.InvalidResourceNameFault{Name: name + " (not a " + want + " resource)"}
}

// splitQName separates an optional prefix from a QName string.
func localOfQName(q string) string {
	if i := strings.LastIndex(q, ":"); i >= 0 {
		return q[i+1:]
	}
	return q
}
