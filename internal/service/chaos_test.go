package service_test

// The chaos suite is the proof obligation of the resilience layer: it
// drives the full consumer↔service path (direct and indirect access
// patterns, SQL and XML realisations) through the fault-injection
// harness and asserts that (a) results of idempotent operations under
// injected failures stay byte-identical to failure-free runs, (b)
// non-idempotent operations are never silently replayed, (c) the
// per-endpoint circuit breaker opens under persistent failure and
// recovers through a half-open probe, and (d) the admission gate sheds
// overload with a typed ServiceBusyFault carrying the Retry-After hint.

import (
	"context"
	"errors"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/faultinject"
	"dais/internal/ops"
	"dais/internal/resil"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/soap"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
	"dais/internal/xmlutil"
)

// idempotentOnly confines injection to operations the catalog marks
// replay-safe, so result-identity assertions hold by construction.
func idempotentOnly(action string) bool {
	s, ok := ops.ByAction(action)
	return ok && s.Idempotent
}

// chaosClient builds a consumer whose transport corrupts a seeded
// fraction of exchanges, with an aggressive-but-bounded retry policy
// (millisecond backoff, sleeps capped so injected 1s Retry-After hints
// do not stall the suite).
func chaosClient(t testing.TB, obs *telemetry.Observer, plan faultinject.Plan, breaker resil.BreakerConfig, maxAttempts int) (*client.Client, *faultinject.Transport) {
	t.Helper()
	inner := &http.Transport{}
	t.Cleanup(inner.CloseIdleConnections)
	ft := faultinject.NewTransport(inner, plan)
	cfg := resil.ClientConfig{
		Retry:   resil.Policy{MaxAttempts: maxAttempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		Breaker: breaker,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if d > 2*time.Millisecond {
				d = 2 * time.Millisecond
			}
			timer := time.NewTimer(d)
			defer timer.Stop()
			select {
			case <-timer.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
	return client.NewResilient(&http.Client{Transport: ft}, obs, cfg), ft
}

// chaosPlan is the standard 10% drop/corrupt/busy mix over idempotent
// operations.
func chaosPlan(seed int64) faultinject.Plan {
	return faultinject.Plan{
		Seed:  seed,
		Rate:  0.10,
		Modes: []faultinject.Mode{faultinject.ModeDrop, faultinject.ModeCorrupt, faultinject.ModeBusy},
		Match: idempotentOnly,
	}
}

// TestChaosSQLIndirectByteIdentical drives the indirect access pattern
// (SQLExecuteFactory → SQLResponse → SQLRowsetFactory → GetTuples)
// under 10% injected transport failures and requires every idempotent
// read to return exactly what a failure-free run returns.
func TestChaosSQLIndirectByteIdentical(t *testing.T) {
	_, _, ref, calm := relationalFixture(t)
	ctx := context.Background()

	// Failure-free baseline. The factories run on the calm client —
	// they are non-idempotent and not under test.
	respRef, err := calm.SQLExecuteFactory(ctx, ref, `SELECT id, name, salary FROM emp ORDER BY id`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsetRef, err := calm.SQLRowsetFactory(ctx, respRef, rowset.FormatWebRowSet, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseSet, err := calm.GetSQLRowset(ctx, respRef, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseTuples, baseFormat, err := calm.GetTuples(ctx, rowsetRef, 1, 3)
	if err != nil {
		t.Fatal(err)
	}

	chaotic, ft := chaosClient(t, nil, chaosPlan(7), resil.BreakerConfig{}, 8)
	for i := 0; i < 40; i++ {
		set, err := chaotic.GetSQLRowset(ctx, respRef, 0)
		if err != nil {
			t.Fatalf("iteration %d: GetSQLRowset under chaos: %v", i, err)
		}
		if !reflect.DeepEqual(set, baseSet) {
			t.Fatalf("iteration %d: rowset diverged under chaos:\n got %+v\nwant %+v", i, set, baseSet)
		}
		tuples, format, err := chaotic.GetTuples(ctx, rowsetRef, 1, 3)
		if err != nil {
			t.Fatalf("iteration %d: GetTuples under chaos: %v", i, err)
		}
		if format != baseFormat || string(tuples) != string(baseTuples) {
			t.Fatalf("iteration %d: tuples diverged under chaos:\n got %q (%s)\nwant %q (%s)",
				i, tuples, format, baseTuples, baseFormat)
		}
	}
	if ft.InjectedTotal() == 0 {
		t.Fatal("chaos run injected no failures — the test proves nothing")
	}
	t.Logf("injected failures: drop=%d corrupt=%d busy=%d",
		ft.Injected(faultinject.ModeDrop), ft.Injected(faultinject.ModeCorrupt), ft.Injected(faultinject.ModeBusy))
}

// TestChaosXMLDirectByteIdentical drives the XML realisation's direct
// reads (ListDocuments, GetDocument, XQueryExecute) under the same 10%
// injection and requires byte-identical results.
func TestChaosXMLDirectByteIdentical(t *testing.T) {
	ref, calm := xmlFixture(t)
	ctx := context.Background()

	baseList, err := calm.ListDocuments(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	baseDoc, err := calm.GetDocument(ctx, ref, "a.xml")
	if err != nil {
		t.Fatal(err)
	}
	baseDocXML := xmlutil.MarshalString(baseDoc)
	baseItems, err := calm.XQueryExecute(ctx, ref, `//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	baseQuery := marshalItems(baseItems)

	chaotic, ft := chaosClient(t, nil, chaosPlan(11), resil.BreakerConfig{}, 8)
	for i := 0; i < 40; i++ {
		list, err := chaotic.ListDocuments(ctx, ref)
		if err != nil {
			t.Fatalf("iteration %d: ListDocuments under chaos: %v", i, err)
		}
		if !reflect.DeepEqual(list, baseList) {
			t.Fatalf("iteration %d: listing diverged: %v vs %v", i, list, baseList)
		}
		doc, err := chaotic.GetDocument(ctx, ref, "a.xml")
		if err != nil {
			t.Fatalf("iteration %d: GetDocument under chaos: %v", i, err)
		}
		if got := xmlutil.MarshalString(doc); got != baseDocXML {
			t.Fatalf("iteration %d: document diverged:\n got %s\nwant %s", i, got, baseDocXML)
		}
		items, err := chaotic.XQueryExecute(ctx, ref, `//book/title`)
		if err != nil {
			t.Fatalf("iteration %d: XQueryExecute under chaos: %v", i, err)
		}
		if got := marshalItems(items); got != baseQuery {
			t.Fatalf("iteration %d: query result diverged:\n got %s\nwant %s", i, got, baseQuery)
		}
	}
	if ft.InjectedTotal() == 0 {
		t.Fatal("chaos run injected no failures — the test proves nothing")
	}
}

func marshalItems(items []client.SequenceItem) string {
	var b strings.Builder
	for _, it := range items {
		b.WriteString(it.Document)
		b.WriteByte(':')
		if it.Node != nil {
			b.WriteString(xmlutil.MarshalString(it.Node))
		} else {
			b.WriteString(it.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// newSeededEngine builds a small deterministic relational backend.
func newSeededEngine(t testing.TB) *sqlengine.Engine {
	t.Helper()
	eng := sqlengine.New("hr")
	eng.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(64) NOT NULL, salary DOUBLE)`)
	eng.MustExec(`INSERT INTO emp VALUES (1, 'ann', 120000), (2, 'bob', 95000), (3, 'carol', 87000)`)
	return eng
}

// endpointWithInterceptors hosts a relational endpoint with its own
// observer, optional extra server interceptors and endpoint options,
// returning the resource ref and the observer for metric assertions.
func endpointWithInterceptors(t testing.TB, eng *sqlengine.Engine, ic soap.Interceptor, opts ...service.EndpointOption) (client.ResourceRef, *telemetry.Observer) {
	t.Helper()
	obs := telemetry.NewObserver()
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService("relational", core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	all := []service.EndpointOption{service.WithTelemetry(obs)}
	if ic != nil {
		all = append(all, service.WithServerInterceptors(ic))
	}
	all = append(all, opts...)
	ep := service.NewEndpoint(svc, all...)
	ep.Register(res)
	startEndpoint(t, ep)
	return client.Ref(svc.Address(), res.AbstractName()), obs
}

// TestChaosServerSideInjection layers the service-side injector
// (delays and overload sheds inside the endpoint's interceptor chain)
// under the client's retry policy: results must still be
// byte-identical, proving the 503/Retry-After shed path round-trips
// through retries end to end.
func TestChaosServerSideInjection(t *testing.T) {
	si := faultinject.NewServerInterceptor(faultinject.ServerPlan{
		Seed:  3,
		Rate:  0.15,
		Modes: []faultinject.Mode{faultinject.ModeDelay, faultinject.ModeBusy},
		Delay: time.Millisecond,
		Match: idempotentOnly,
	})
	eng := newSeededEngine(t)
	ref, _ := endpointWithInterceptors(t, eng, si.Interceptor())

	calm := client.New(nil)
	ctx := context.Background()
	baseDoc, err := calm.GetPropertyDocument(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	base := xmlutil.MarshalString(baseDoc)

	chaotic, _ := chaosClient(t, nil, faultinject.Plan{Seed: 5, Rate: 0}, resil.BreakerConfig{}, 8)
	for i := 0; i < 60; i++ {
		doc, err := chaotic.GetPropertyDocument(ctx, ref)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got := xmlutil.MarshalString(doc); got != base {
			t.Fatalf("iteration %d: property document diverged", i)
		}
	}
	if si.Injected(faultinject.ModeBusy) == 0 {
		t.Fatal("no server-side sheds injected — lower the seed's luck or raise iterations")
	}
}

// TestChaosNonIdempotentNeverRetried drops 100% of SQLExecute,
// SQLExecuteFactory and DestroyDataResource exchanges and asserts the
// client attempted each exactly once: operations with side effects must
// surface the failure instead of replaying it.
func TestChaosNonIdempotentNeverRetried(t *testing.T) {
	_, _, ref, _ := relationalFixture(t)
	ctx := context.Background()
	mutations := map[string]bool{
		ops.ActSQLExecute:          true,
		ops.ActSQLExecuteFactory:   true,
		ops.ActDestroyDataResource: true,
	}
	chaotic, ft := chaosClient(t, nil, faultinject.Plan{
		Seed:  1,
		Rate:  1.0,
		Modes: []faultinject.Mode{faultinject.ModeDrop},
		Match: func(action string) bool { return mutations[action] },
	}, resil.BreakerConfig{}, 8)

	if _, err := chaotic.SQLExecute(ctx, ref, `UPDATE emp SET salary = 0`, nil, ""); err == nil {
		t.Fatal("dropped SQLExecute reported success")
	}
	if _, err := chaotic.SQLExecuteFactory(ctx, ref, `SELECT 1`, nil, nil); err == nil {
		t.Fatal("dropped SQLExecuteFactory reported success")
	}
	if err := chaotic.DestroyDataResource(ctx, ref); err == nil {
		t.Fatal("dropped DestroyDataResource reported success")
	}
	for action := range mutations {
		if n := ft.Attempts(action); n != 1 {
			t.Errorf("%s attempted %d times, want exactly 1", action, n)
		}
	}
	// The resource must be untouched: the destroy never reached the
	// service (and was never replayed behind the consumer's back).
	if _, err := client.New(nil).GetPropertyDocument(ctx, ref); err != nil {
		t.Fatalf("resource unreachable after dropped mutations: %v", err)
	}
}

// TestChaosBreakerOpensAndRecovers fails every exchange until the
// endpoint's breaker opens, verifies calls are rejected without
// touching the transport, then heals the path and watches the
// half-open probe close the circuit again — all through the public
// client API and telemetry counters.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	ref, calm := xmlFixture(t)
	ctx := context.Background()
	baseList, err := calm.ListDocuments(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}

	obs := telemetry.NewObserver()
	breaker := resil.BreakerConfig{Threshold: 3, Cooldown: 40 * time.Millisecond, HalfOpenProbes: 1}
	chaotic, ft := chaosClient(t, obs, faultinject.Plan{
		Seed:  2,
		Rate:  1.0,
		Modes: []faultinject.Mode{faultinject.ModeDrop},
	}, breaker, 1)

	for i := 0; i < 3; i++ {
		if _, err := chaotic.ListDocuments(ctx, ref); err == nil {
			t.Fatalf("call %d: dropped exchange reported success", i)
		}
	}
	attempts := ft.Attempts(ops.ActListDocuments)
	var open *resil.CircuitOpenError
	if _, err := chaotic.ListDocuments(ctx, ref); !errors.As(err, &open) {
		t.Fatalf("open breaker returned %v, want CircuitOpenError", err)
	}
	if got := ft.Attempts(ops.ActListDocuments); got != attempts {
		t.Fatalf("open breaker still reached the transport (%d → %d attempts)", attempts, got)
	}

	// Heal the path, wait out the cooldown: the half-open probe must
	// recover the circuit and return the baseline result.
	ft.SetRate(0)
	time.Sleep(breaker.Cooldown + 10*time.Millisecond)
	list, err := chaotic.ListDocuments(ctx, ref)
	if err != nil {
		t.Fatalf("post-cooldown probe failed: %v", err)
	}
	if !reflect.DeepEqual(list, baseList) {
		t.Fatalf("recovered result diverged: %v vs %v", list, baseList)
	}

	transitions := map[string]bool{}
	for _, s := range obs.Registry.Snapshot() {
		if s.Name == resil.MetricBreakerTransitions && s.Value > 0 {
			transitions[s.Label("to")] = true
		}
	}
	for _, want := range []string{resil.StateOpen, resil.StateHalfOpen, resil.StateClosed} {
		if !transitions[want] {
			t.Errorf("breaker transition to %q not recorded: %v", want, transitions)
		}
	}
}

// TestAdmissionGateShedsOverload saturates an endpoint whose admission
// gate caps in-flight requests at 1 and asserts the second concurrent
// request is shed with a typed ServiceBusyFault carrying the HTTP 503
// Retry-After hint, while per-resource caps leave other resources
// admissible.
func TestAdmissionGateShedsOverload(t *testing.T) {
	eng := newSeededEngine(t)
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	blocker := func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		if action == ops.ActSQLExecute {
			entered <- struct{}{}
			<-hold
		}
		return next(ctx, action, env)
	}
	ref, obs := endpointWithInterceptors(t, eng, blocker,
		service.WithAdmission(resil.AdmissionConfig{MaxInFlight: 1, RetryAfter: 2 * time.Second}))

	plain := client.NewResilient(nil, nil, resil.ClientConfig{}) // no retries: sheds must surface
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		_, err := plain.SQLExecute(ctx, ref, `SELECT 1`, nil, "")
		done <- err
	}()
	<-entered // the first request now holds the only admission slot

	var busy *core.ServiceBusyFault
	_, err := plain.GetPropertyDocument(ctx, ref)
	if !errors.As(err, &busy) {
		t.Fatalf("overload returned %v, want ServiceBusyFault", err)
	}
	if busy.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter hint = %v, want 2s", busy.RetryAfter)
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
	// With the slot released the endpoint admits again.
	if _, err := plain.GetPropertyDocument(ctx, ref); err != nil {
		t.Fatalf("endpoint did not recover after release: %v", err)
	}
	shed := false
	for _, s := range obs.Registry.Snapshot() {
		if s.Name == resil.MetricShed && s.Label("scope") == resil.ScopeService && s.Value > 0 {
			shed = true
		}
	}
	if !shed {
		t.Fatalf("shed not recorded in telemetry: %+v", obs.Registry.Snapshot())
	}
}

// TestChaosRetriesShedRequests proves the full shed→retry loop: an
// admission-capped endpoint under concurrent load serves every request
// eventually, because consumers back off and retry on the 503 hint.
func TestChaosRetriesShedRequests(t *testing.T) {
	eng := newSeededEngine(t)
	ref, _ := endpointWithInterceptors(t, eng, nil,
		service.WithAdmission(resil.AdmissionConfig{MaxInFlight: 2, RetryAfter: time.Second}))
	chaotic, _ := chaosClient(t, nil, faultinject.Plan{Seed: 9, Rate: 0}, resil.BreakerConfig{}, 10)
	ctx := context.Background()

	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := chaotic.GetPropertyDocument(ctx, ref)
			errs <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("request %d not served despite retries: %v", i, err)
		}
	}
}
