package service

import (
	"net/http"

	"dais/internal/xmlutil"
)

// WSDL-related namespaces.
const (
	NSWSDL     = "http://schemas.xmlsoap.org/wsdl/"
	NSWSDLSOAP = "http://schemas.xmlsoap.org/wsdl/soap/"
	NSWSAW     = "http://www.w3.org/2006/05/addressing/wsdl"
)

// DescriptionDocument generates a WSDL 1.1 skeleton for the endpoint
// directly from the operation registry: one portType whose operations
// are the enabled DAIS specs, each annotated with its wsa:Action URI
// and interface class, plus a SOAP binding and a service element
// carrying the endpoint address. The paper's specs "define consistent
// interfaces, generally couched as web services" (§1) — serving the
// interface description is how 2005-era consumers discovered them.
func (e *Endpoint) DescriptionDocument() *xmlutil.Element {
	name := e.svc.Name()
	if name == "" {
		name = "DataService"
	}
	defs := xmlutil.NewElement(NSWSDL, "definitions")
	defs.SetAttr("", "name", name)
	defs.SetAttr("", "targetNamespace", NSDAI)

	specs := e.registry.Specs()

	// Messages: one request/response pair per operation.
	for _, s := range specs {
		in := defs.Add(NSWSDL, "message")
		in.SetAttr("", "name", s.Op+"Request")
		inPart := in.Add(NSWSDL, "part")
		inPart.SetAttr("", "name", "body")
		inPart.SetAttr("", "element", "tns:"+s.Op+"Request")
		out := defs.Add(NSWSDL, "message")
		out.SetAttr("", "name", s.Op+"Response")
		outPart := out.Add(NSWSDL, "part")
		outPart.SetAttr("", "name", "body")
		outPart.SetAttr("", "element", "tns:"+s.Op+"Response")
	}

	pt := defs.Add(NSWSDL, "portType")
	pt.SetAttr("", "name", name+"PortType")
	for _, s := range specs {
		op := pt.Add(NSWSDL, "operation")
		op.SetAttr("", "name", s.Op)
		op.AddText(NSWSDL, "documentation", "Interface class: "+s.Class)
		in := op.Add(NSWSDL, "input")
		in.SetAttr("", "message", "tns:"+s.Op+"Request")
		in.SetAttr(NSWSAW, "Action", s.Action)
		out := op.Add(NSWSDL, "output")
		out.SetAttr("", "message", "tns:"+s.Op+"Response")
		out.SetAttr(NSWSAW, "Action", s.Action+"Response")
	}

	binding := defs.Add(NSWSDL, "binding")
	binding.SetAttr("", "name", name+"SOAPBinding")
	binding.SetAttr("", "type", "tns:"+name+"PortType")
	sb := binding.Add(NSWSDLSOAP, "binding")
	sb.SetAttr("", "style", "document")
	sb.SetAttr("", "transport", "http://schemas.xmlsoap.org/soap/http")
	for _, s := range specs {
		op := binding.Add(NSWSDL, "operation")
		op.SetAttr("", "name", s.Op)
		sop := op.Add(NSWSDLSOAP, "operation")
		sop.SetAttr("", "soapAction", s.Action)
	}

	svc := defs.Add(NSWSDL, "service")
	svc.SetAttr("", "name", name)
	port := svc.Add(NSWSDL, "port")
	port.SetAttr("", "name", name+"Port")
	port.SetAttr("", "binding", "tns:"+name+"SOAPBinding")
	addr := port.Add(NSWSDLSOAP, "address")
	addr.SetAttr("", "location", e.svc.Address())
	return defs
}

// serveWSDL answers GET ?wsdl requests with the generated description.
func (e *Endpoint) serveWSDL(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write([]byte(`<?xml version="1.0" encoding="UTF-8"?>`)) //nolint:errcheck
	w.Write(xmlutil.MarshalIndent(e.DescriptionDocument()))   //nolint:errcheck
}
