package service

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dais/internal/sqlengine"
	"dais/internal/telemetry"
)

// TestVectorMetricsExposed scrapes an engine's columnar counters: both
// series must appear with the engine label, and running a vectorised
// scan between scrapes must move the batch counter.
func TestVectorMetricsExposed(t *testing.T) {
	eng := sqlengine.New("vecdb")
	eng.MustExec(`CREATE TABLE t (id INTEGER, v INTEGER)`)
	s := eng.NewSession()
	for i := 0; i < 64; i++ {
		if _, err := s.Execute(`INSERT INTO t VALUES (?, ?)`, sqlengine.NewInt(int64(i)), sqlengine.NewInt(int64(i%8))); err != nil {
			t.Fatal(err)
		}
	}

	reg := telemetry.NewRegistry()
	RegisterVectorMetrics(reg, eng)

	scrape := func() string {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	if _, err := s.Execute(`SELECT COUNT(*) FROM t WHERE v > 3`); err != nil {
		t.Fatal(err)
	}
	stats := eng.VectorStats()
	if stats.Batches == 0 {
		t.Fatal("expected at least one vector batch")
	}
	text := scrape()
	for _, want := range []string{
		fmt.Sprintf(`%s{engine="vecdb"} %d`, MetricVectorBatches, stats.Batches),
		fmt.Sprintf(`%s{engine="vecdb"} %d`, MetricVectorChunksSkipped, stats.ChunksSkipped),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}

	// Another scan moves the counter on the next scrape.
	if _, err := s.Execute(`SELECT COUNT(*) FROM t WHERE v > 5`); err != nil {
		t.Fatal(err)
	}
	after := eng.VectorStats()
	if after.Batches <= stats.Batches {
		t.Fatalf("expected extra batch: %+v -> %+v", stats, after)
	}
	text = scrape()
	want := fmt.Sprintf(`%s{engine="vecdb"} %d`, MetricVectorBatches, after.Batches)
	if !strings.Contains(text, want) {
		t.Fatalf("second scrape missing %q:\n%s", want, text)
	}
}

// TestRegisterVectorMetricsNil pins the documented no-op contract.
func TestRegisterVectorMetricsNil(t *testing.T) {
	RegisterVectorMetrics(nil, nil)
	RegisterVectorMetrics(telemetry.NewRegistry(), nil)
	RegisterVectorMetrics(nil, sqlengine.New("x"))
}
