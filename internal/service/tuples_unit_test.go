package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/ops"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
)

func tuplesResource(t *testing.T, rows int) *dair.SQLRowsetResource {
	t.Helper()
	set := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{{Name: "id", Type: sqlengine.TypeInteger}},
	}
	for i := 0; i < rows; i++ {
		set.Rows = append(set.Rows, []sqlengine.Value{sqlengine.NewInt(int64(i))})
	}
	res, err := dair.NewSQLRowsetResource("parent", set, "", core.DefaultConfiguration())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestNormalizeTuplesWindow is the single point of truth for GetTuples
// edge cases: every wire-level oddity resolves here, once, before any
// codec runs.
func TestNormalizeTuplesWindow(t *testing.T) {
	res := tuplesResource(t, 10)
	cases := []struct {
		name      string
		req       ops.PageMsg
		start     int
		count     int
		wantFault bool
	}{
		{"plain window", ops.PageMsg{Start: 2, Count: 3, HasCount: true}, 2, 3, false},
		{"negative count faults", ops.PageMsg{Start: 1, Count: -1, HasCount: true}, 0, 0, true},
		{"very negative count faults", ops.PageMsg{Start: 5, Count: -100, HasCount: true}, 0, 0, true},
		{"zero count is an empty page", ops.PageMsg{Start: 4, Count: 0, HasCount: true}, 4, 0, false},
		{"start below one clamps", ops.PageMsg{Start: -7, Count: 5, HasCount: true}, 1, 5, false},
		{"start zero clamps", ops.PageMsg{Start: 0, Count: 2, HasCount: true}, 1, 2, false},
		{"absent count means rest of resource", ops.PageMsg{Start: 4}, 4, 7, false},
		{"absent count from the top", ops.PageMsg{Start: 0}, 1, 10, false},
		{"absent count past the end", ops.PageMsg{Start: 42}, 42, 0, false},
		{"explicit window past the end", ops.PageMsg{Start: 42, Count: 5, HasCount: true}, 42, 5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start, count, err := normalizeTuplesWindow(context.Background(), res, &tc.req)
			if tc.wantFault {
				var ief *core.InvalidExpressionFault
				if !errors.As(err, &ief) {
					t.Fatalf("err = %v, want InvalidExpressionFault", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if start != tc.start || count != tc.count {
				t.Fatalf("window = (%d, %d), want (%d, %d)", start, count, tc.start, tc.count)
			}
		})
	}
}

// TestNormalizeAbsentCountWaitsForTotal: against a still-producing
// resource, an absent Count needs the final total, so the request
// blocks until production finishes — bounded by the request context.
func TestNormalizeAbsentCountWaitsForTotal(t *testing.T) {
	set := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{{Name: "id", Type: sqlengine.TypeInteger}},
		Rows:    [][]sqlengine.Value{{sqlengine.NewInt(1)}, {sqlengine.NewInt(2)}},
	}
	slow := &gatedSource{src: rowset.NewSetSource(set), gate: make(chan struct{})}
	buf := rowset.NewBuffer(slow, rowset.BufferConfig{})
	defer buf.Release()
	res, err := dair.NewStreamingSQLRowsetResource("parent", buf, "", core.DefaultConfiguration())
	if err != nil {
		t.Fatal(err)
	}
	buf.Retain()
	defer res.Release()

	// Gate closed: the total is unknown, so the call must time out.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := normalizeTuplesWindow(ctx, res, &ops.PageMsg{Start: 1}); err == nil {
		t.Fatal("expected timeout while total is unknown")
	}

	close(slow.gate)
	start, count, err := normalizeTuplesWindow(context.Background(), res, &ops.PageMsg{Start: 1})
	if err != nil {
		t.Fatal(err)
	}
	if start != 1 || count != 2 {
		t.Fatalf("window = (%d, %d), want (1, 2)", start, count)
	}
}

// gatedSource delays its first row until the gate closes.
type gatedSource struct {
	src  rowset.RowSource
	gate chan struct{}
}

func (g *gatedSource) Columns() []sqlengine.ResultColumn { return g.src.Columns() }
func (g *gatedSource) Next() ([]sqlengine.Value, error) {
	<-g.gate
	return g.src.Next()
}
func (g *gatedSource) Close() error { return g.src.Close() }

func TestRowsetStreamHooksRecord(t *testing.T) {
	reg := telemetry.NewRegistry()
	hooks := RowsetStreamHooks(reg)
	hooks.RowsProduced(7)
	hooks.RowsProduced(3)
	hooks.SpilledBytes(2048)
	hooks.BufferDepth(+5)
	hooks.BufferDepth(-5)
	want := map[string]float64{
		MetricRowsetRows:        10,
		MetricRowsetSpillBytes:  2048,
		MetricRowsetBufferDepth: 0,
	}
	got := map[string]float64{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Value
	}
	for name, val := range want {
		v, ok := got[name]
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		if v != val {
			t.Fatalf("%s = %g, want %g", name, v, val)
		}
	}
	// Nil registry: no hooks are bound, which the buffer treats as no-op.
	none := RowsetStreamHooks(nil)
	if none.RowsProduced != nil || none.SpilledBytes != nil || none.BufferDepth != nil {
		t.Fatal("nil registry must yield zero hooks")
	}
}
