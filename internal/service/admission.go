package service

import (
	"context"

	"dais/internal/core"
	"dais/internal/resil"
	"dais/internal/soap"
)

// WithAdmission bounds the endpoint's concurrency: requests beyond the
// configured in-flight caps are shed immediately with a
// ServiceBusyFault on HTTP 503 + Retry-After instead of queuing.
// Endpoints without this option accept unbounded concurrency, as
// before.
func WithAdmission(cfg resil.AdmissionConfig) EndpointOption {
	return func(e *Endpoint) { e.gate = resil.NewGate(cfg) }
}

// Gate returns the endpoint's admission gate, or nil when admission
// control is disabled.
func (e *Endpoint) Gate() *resil.Gate { return e.gate }

// admissionInterceptor enforces the endpoint's admission gate around
// every dispatched request. It sits inside the telemetry interceptor so
// shed requests still show up in the request/fault metrics, and outside
// the user interceptors so load is dropped before any per-request work.
// The per-resource cap keys on the DataResourceAbstractName body
// element; service-level operations (factories, resource lists) consume
// only the global cap.
func (e *Endpoint) admissionInterceptor() soap.Interceptor {
	gate, name := e.gate, e.svc.Name()
	var countShed func(service, scope string)
	if e.obs != nil {
		countShed = resil.ShedObserver(e.obs.Registry)
	}
	return func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		resource := ""
		if body := env.BodyEntry(); body != nil {
			resource = body.FindText(NSDAI, "DataResourceAbstractName")
		}
		release, scope, err := gate.Acquire(resource)
		if err != nil {
			if countShed != nil {
				countShed(name, scope)
			}
			return nil, ToSOAPFault(err)
		}
		defer release()
		return next(ctx, action, env)
	}
}

// normalizeFaults maps typed DAIS faults escaping the interceptor chain
// (the admission gate, fault-injection interceptors, timeouts) to SOAP
// faults with structured detail and transport hints. Handlers map their
// own errors in bind; this catches errors produced by the interceptors
// themselves, which never reach bind's mapping.
func normalizeFaults() soap.Interceptor {
	return func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		resp, err := next(ctx, action, env)
		if err != nil {
			if _, ok := err.(*soap.Fault); !ok && core.FaultName(err) != "" {
				return resp, ToSOAPFault(err)
			}
		}
		return resp, err
	}
}
