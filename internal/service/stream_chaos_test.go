package service_test

// Streaming-delivery tests at the service boundary: GetTuples edge
// cases over HTTP against both materialised and streaming resources,
// and the stream-chaos proof — a chunked, fault-injected fetch of a
// spilled resource that must reassemble byte-identically with the
// retries visible in telemetry.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/filestore"
	"dais/internal/ops"
	"dais/internal/resil"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/soap"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
	"dais/internal/wsaddr"
)

// streamingFixture hosts a relational endpoint whose resource streams
// results through a spilling buffer, seeded with rows numbered
// 0..rows-1.
func streamingFixture(t testing.TB, rows int, memCap int64) (client.ResourceRef, *filestore.Store, *telemetry.Observer) {
	t.Helper()
	eng := sqlengine.New("big")
	eng.MustExec(`CREATE TABLE pts (id INTEGER PRIMARY KEY, tag VARCHAR(32), v DOUBLE)`)
	for i := 0; i < rows; i += 500 {
		stmt := "INSERT INTO pts VALUES "
		for j := i; j < i+500 && j < rows; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'tag-%03d', %g)", j, j%11, float64(j)*0.5)
		}
		eng.MustExec(stmt)
	}
	obs := telemetry.NewObserver()
	store := filestore.NewStore("rowset-spill")
	res := dair.NewSQLDataResource(eng, dair.WithStreamDelivery(rowset.BufferConfig{
		PageRows: 1024,
		MemCap:   memCap,
		Spill:    store,
		Hooks:    service.RowsetStreamHooks(obs.Registry),
	}))
	svc := core.NewDataService("relational", core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithTelemetry(obs))
	ep.Register(res)
	startEndpoint(t, ep)
	return client.Ref(svc.Address(), res.AbstractName()), store, obs
}

// indirectRowset drives the two factory hops and returns the rowset
// resource ref.
func indirectRowset(t testing.TB, c *client.Client, ref client.ResourceRef, query string) client.ResourceRef {
	t.Helper()
	ctx := context.Background()
	respRef, err := c.SQLExecuteFactory(ctx, ref, query, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsetRef, err := c.SQLRowsetFactory(ctx, respRef, rowset.FormatSQLRowset, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rowsetRef
}

// TestGetTuplesEdgeCasesOverHTTP drives the normalisation table through
// the full wire path, against a materialised resource and a streaming
// spilled one — the edge semantics must not depend on the delivery
// path.
func TestGetTuplesEdgeCasesOverHTTP(t *testing.T) {
	const rows = 50
	fixtures := map[string]client.ResourceRef{}
	{
		eng := sqlengine.New("flat")
		eng.MustExec(`CREATE TABLE pts (id INTEGER PRIMARY KEY, tag VARCHAR(32), v DOUBLE)`)
		for i := 0; i < rows; i++ {
			eng.MustExec(fmt.Sprintf(`INSERT INTO pts VALUES (%d, 'tag-%03d', %g)`, i, i%11, float64(i)*0.5))
		}
		res := dair.NewSQLDataResource(eng)
		svc := core.NewDataService("relational", core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
		ep := service.NewEndpoint(svc)
		ep.Register(res)
		startEndpoint(t, ep)
		fixtures["materialised"] = client.Ref(svc.Address(), res.AbstractName())
	}
	{
		ref, _, _ := streamingFixture(t, rows, 1)
		fixtures["streaming"] = ref
	}

	for name, ref := range fixtures {
		t.Run(name, func(t *testing.T) {
			c := client.New(nil)
			ctx := context.Background()
			rowsetRef := indirectRowset(t, c, ref, `SELECT id, tag FROM pts`)

			cases := []struct {
				name      string
				start     int
				count     int
				wantRows  int
				wantFirst int64
				wantFault bool
			}{
				{name: "plain window", start: 11, count: 5, wantRows: 5, wantFirst: 10},
				{name: "negative count faults", start: 1, count: -3, wantFault: true},
				{name: "zero count empty page", start: 5, count: 0, wantRows: 0},
				{name: "start clamps to one", start: -9, count: 2, wantRows: 2, wantFirst: 0},
				{name: "start past end empty page", start: rows + 10, count: 4, wantRows: 0},
				{name: "window overlapping the end truncates", start: rows - 1, count: 10, wantRows: 2, wantFirst: int64(rows - 2)},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					set, err := c.GetTuplesSet(ctx, rowsetRef, tc.start, tc.count)
					if tc.wantFault {
						var ief *core.InvalidExpressionFault
						if !errors.As(err, &ief) {
							t.Fatalf("err = %v, want InvalidExpressionFault", err)
						}
						return
					}
					if err != nil {
						t.Fatal(err)
					}
					if len(set.Rows) != tc.wantRows {
						t.Fatalf("rows = %d, want %d", len(set.Rows), tc.wantRows)
					}
					if tc.wantRows > 0 && set.Rows[0][0].I != tc.wantFirst {
						t.Fatalf("first id = %d, want %d", set.Rows[0][0].I, tc.wantFirst)
					}
				})
			}

			// Absent Count on the wire means "rest of the resource" —
			// the typed client always sends Count, so go one level down.
			req := ops.GetTuples.NewRequest(rowsetRef.AbstractName)
			req.AddText(ops.GetTuples.NS, "StartPosition", "41")
			env := soap.NewEnvelope(req)
			h := &wsaddr.MessageHeaders{
				To:        rowsetRef.Address,
				Action:    ops.GetTuples.Action,
				MessageID: wsaddr.NewMessageID(),
				ReplyTo:   wsaddr.NewEPR(wsaddr.AnonymousURI),
			}
			h.Attach(env)
			resp, err := soap.NewClient(nil).Call(ctx, rowsetRef.Address, ops.GetTuples.Action, env)
			if err != nil {
				t.Fatal(err)
			}
			data, format := ops.DatasetPayload(resp.BodyEntry().Find(core.NSDAI, "Dataset"))
			set, err := (rowset.SQLRowsetCodec{}).Decode(data)
			if err != nil {
				t.Fatalf("decode %s payload: %v", format, err)
			}
			if len(set.Rows) != 10 || set.Rows[0][0].I != 40 {
				t.Fatalf("absent count page = %d rows, first %v", len(set.Rows), set.Rows[0])
			}
		})
	}
}

// TestStreamChaos is the acceptance run for resumable chunked fetch: a
// 100k-row result streamed through a 1-byte memory cap (everything
// spills), fetched with 8 parallel GetTuples windows through a
// transport injecting 10% drop/corrupt/busy faults. The reassembled
// result must equal the calm sequential fetch exactly, with the
// injected faults absorbed by per-chunk idempotent retries that are
// visible in dais_retries_total.
func TestStreamChaos(t *testing.T) {
	const rows = 100_000
	ref, store, _ := streamingFixture(t, rows, 1)
	ctx := context.Background()

	calm := client.New(nil)
	rowsetRef := indirectRowset(t, calm, ref, `SELECT id, tag, v FROM pts`)

	base, err := calm.FetchRowset(ctx, rowsetRef, client.FetchOptions{Chunks: 1, ChunkRows: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) != rows {
		t.Fatalf("baseline rows = %d, want %d", len(base.Rows), rows)
	}
	if store.Count() == 0 {
		t.Fatal("resource did not spill; the test must cover the paged-back path")
	}

	obs := telemetry.NewObserver()
	chaotic, ft := chaosClient(t, obs, chaosPlan(17), resil.BreakerConfig{}, 8)
	got, err := chaotic.FetchRowset(ctx, rowsetRef, client.FetchOptions{Chunks: 8, ChunkRows: 4096})
	if err != nil {
		t.Fatalf("chunked fetch under chaos: %v", err)
	}
	if len(got.Rows) != rows {
		t.Fatalf("chaos rows = %d, want %d", len(got.Rows), rows)
	}
	if !reflect.DeepEqual(got, base) {
		for i := range base.Rows {
			if !reflect.DeepEqual(got.Rows[i], base.Rows[i]) {
				t.Fatalf("row %d diverged under chaos: %v != %v", i, got.Rows[i], base.Rows[i])
			}
		}
		t.Fatal("result diverged under chaos")
	}
	if ft.InjectedTotal() == 0 {
		t.Fatal("no faults injected — the chaos run proves nothing")
	}
	var retries float64
	for _, s := range obs.Registry.Snapshot() {
		if s.Name == resil.MetricRetries {
			retries += s.Value
		}
	}
	if retries == 0 {
		t.Fatal("faults injected but dais_retries_total is zero")
	}
	t.Logf("injected=%d retries=%g spillFiles=%d", ft.InjectedTotal(), retries, store.Count())
}
