package service

import (
	"context"
	"encoding/base64"
	"fmt"

	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/filestore"
	"dais/internal/xmlutil"
)

// NSDAIF re-exports the files realisation namespace.
const NSDAIF = daif.NSDAIF

// WS-DAIF action URIs.
const (
	ActReadFile          = NSDAIF + "/ReadFile"
	ActWriteFile         = NSDAIF + "/WriteFile"
	ActAppendFile        = NSDAIF + "/AppendFile"
	ActDeleteFile        = NSDAIF + "/DeleteFile"
	ActListFiles         = NSDAIF + "/ListFiles"
	ActStatFile          = NSDAIF + "/StatFile"
	ActFileSelectFactory = NSDAIF + "/FileSelectFactory"
)

// fileReader is satisfied by both the base file resource and staged
// snapshots, so read-side operations work against either.
type fileReader interface {
	core.DataResource
	ReadFile(ctx context.Context, name string, offset, count int64) ([]byte, error)
	ListFiles(ctx context.Context, pattern string) ([]filestore.FileInfo, error)
}

// resolveFileReader resolves an abstract name to any readable file
// resource.
func (e *Endpoint) resolveFileReader(name string) (fileReader, error) {
	r, err := e.svc.Resolve(name)
	if err != nil {
		return nil, err
	}
	fr, ok := r.(fileReader)
	if !ok {
		return nil, typeFault(name, "file")
	}
	return fr, nil
}

// resolveFile resolves an abstract name to a writable base file
// resource.
func (e *Endpoint) resolveFile(name string) (*daif.FileDataResource, error) {
	r, err := e.svc.Resolve(name)
	if err != nil {
		return nil, err
	}
	fr, ok := r.(*daif.FileDataResource)
	if !ok {
		return nil, typeFault(name, "file")
	}
	return fr, nil
}

// registerDAIF wires the WS-DAIF operations.
func (e *Endpoint) registerDAIF() {
	e.handle(FileAccess, ActReadFile, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		fr, err := e.resolveFileReader(name)
		if err != nil {
			return nil, err
		}
		fileName := body.FindText(NSDAIF, "FileName")
		offset, err := intChild(body, NSDAIF, "Offset", 0)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		count, err := intChild(body, NSDAIF, "Count", -1)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		data, err := fr.ReadFile(ctx, fileName, int64(offset), int64(count))
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIF, "ReadFileResponse")
		d := resp.Add(NSDAIF, "Data")
		d.SetAttr("", "encoding", "base64")
		d.SetText(base64.StdEncoding.EncodeToString(data))
		return resp, nil
	})

	writeOp := func(action string, apply func(context.Context, *daif.FileDataResource, string, []byte) error, respName string) {
		e.handle(FileAccess, action, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
			name, err := AbstractNameOf(body)
			if err != nil {
				return nil, err
			}
			fr, err := e.resolveFile(name)
			if err != nil {
				return nil, err
			}
			data, err := base64.StdEncoding.DecodeString(body.FindText(NSDAIF, "Data"))
			if err != nil {
				return nil, &core.InvalidExpressionFault{Detail: "bad base64 payload: " + err.Error()}
			}
			if err := apply(ctx, fr, body.FindText(NSDAIF, "FileName"), data); err != nil {
				return nil, err
			}
			return xmlutil.NewElement(NSDAIF, respName), nil
		})
	}
	writeOp(ActWriteFile, func(ctx context.Context, fr *daif.FileDataResource, n string, d []byte) error {
		return fr.WriteFile(ctx, n, d)
	}, "WriteFileResponse")
	writeOp(ActAppendFile, func(ctx context.Context, fr *daif.FileDataResource, n string, d []byte) error {
		return fr.AppendFile(ctx, n, d)
	}, "AppendFileResponse")

	e.handle(FileAccess, ActDeleteFile, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		fr, err := e.resolveFile(name)
		if err != nil {
			return nil, err
		}
		if err := fr.DeleteFile(ctx, body.FindText(NSDAIF, "FileName")); err != nil {
			return nil, err
		}
		return xmlutil.NewElement(NSDAIF, "DeleteFileResponse"), nil
	})

	e.handle(FileAccess, ActListFiles, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		fr, err := e.resolveFileReader(name)
		if err != nil {
			return nil, err
		}
		infos, err := fr.ListFiles(ctx, body.FindText(NSDAIF, "Pattern"))
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIF, "ListFilesResponse")
		resp.AppendChild(daif.FileListElement(infos))
		return resp, nil
	})

	e.handle(FileAccess, ActStatFile, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		fr, err := e.resolveFileReader(name)
		if err != nil {
			return nil, err
		}
		infos, err := fr.ListFiles(ctx, body.FindText(NSDAIF, "FileName"))
		if err != nil {
			return nil, err
		}
		if len(infos) != 1 {
			return nil, &core.InvalidExpressionFault{
				Detail: fmt.Sprintf("StatFile matched %d files", len(infos))}
		}
		resp := xmlutil.NewElement(NSDAIF, "StatFileResponse")
		resp.AppendChild(daif.FileListElement(infos))
		return resp, nil
	})

	e.handle(FileFactory, ActFileSelectFactory, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		fr, err := e.resolveFile(name)
		if err != nil {
			return nil, err
		}
		cfg, err := core.ParseConfiguration(body.Find(NSDAI, "ConfigurationDocument"))
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		derived, err := daif.FileSelectFactory(ctx, fr, e.target.svc, body.FindText(NSDAIF, "Pattern"), &cfg)
		if err != nil {
			return nil, err
		}
		e.target.trackDerived(derived)
		resp := xmlutil.NewElement(NSDAIF, "FileSelectFactoryResponse")
		resp.AppendChild(e.target.EPRFor(derived.AbstractName()).Element(NSDAI, "DataResourceAddress"))
		return resp, nil
	})
}
