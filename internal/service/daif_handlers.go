package service

import (
	"context"
	"encoding/base64"
	"fmt"

	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/filestore"
	"dais/internal/ops"
	"dais/internal/xmlutil"
)

// fileReader is satisfied by both the base file resource and staged
// snapshots, so read-side operations work against either.
type fileReader interface {
	core.DataResource
	ReadFile(ctx context.Context, name string, offset, count int64) ([]byte, error)
	ListFiles(ctx context.Context, pattern string) ([]filestore.FileInfo, error)
}

// registerDAIF wires the WS-DAIF operations from their catalog specs.
func (e *Endpoint) registerDAIF() {
	handleOp(e, ops.ReadFile, func(ctx context.Context, res fileReader, req *ops.FileRangeMsg) (*xmlutil.Element, error) {
		data, err := res.ReadFile(ctx, req.FileName, req.Offset, req.Count)
		if err != nil {
			return nil, err
		}
		resp := ops.ReadFile.NewResponse()
		d := resp.Add(NSDAIF, "Data")
		d.SetAttr("", "encoding", "base64")
		d.SetText(base64.StdEncoding.EncodeToString(data))
		return resp, nil
	})

	writeOp := func(spec ops.Spec, apply func(context.Context, *daif.FileDataResource, string, []byte) error) {
		handleOp(e, spec, func(ctx context.Context, res *daif.FileDataResource, req *ops.FileDataMsg) (*xmlutil.Element, error) {
			if err := apply(ctx, res, req.FileName, req.Data); err != nil {
				return nil, err
			}
			return spec.NewResponse(), nil
		})
	}
	writeOp(ops.WriteFile, func(ctx context.Context, fr *daif.FileDataResource, n string, d []byte) error {
		return fr.WriteFile(ctx, n, d)
	})
	writeOp(ops.AppendFile, func(ctx context.Context, fr *daif.FileDataResource, n string, d []byte) error {
		return fr.AppendFile(ctx, n, d)
	})

	handleOp(e, ops.DeleteFile, func(ctx context.Context, res *daif.FileDataResource, req *ops.FileNameMsg) (*xmlutil.Element, error) {
		if err := res.DeleteFile(ctx, req.FileName); err != nil {
			return nil, err
		}
		return ops.DeleteFile.NewResponse(), nil
	})

	handleOp(e, ops.ListFiles, func(ctx context.Context, res fileReader, req *ops.PatternMsg) (*xmlutil.Element, error) {
		infos, err := res.ListFiles(ctx, req.Pattern)
		if err != nil {
			return nil, err
		}
		resp := ops.ListFiles.NewResponse()
		resp.AppendChild(daif.FileListElement(infos))
		return resp, nil
	})

	handleOp(e, ops.StatFile, func(ctx context.Context, res fileReader, req *ops.FileNameMsg) (*xmlutil.Element, error) {
		infos, err := res.ListFiles(ctx, req.FileName)
		if err != nil {
			return nil, err
		}
		if len(infos) != 1 {
			return nil, &core.InvalidExpressionFault{
				Detail: fmt.Sprintf("StatFile matched %d files", len(infos))}
		}
		resp := ops.StatFile.NewResponse()
		resp.AppendChild(daif.FileListElement(infos))
		return resp, nil
	})

	handleFactory(e, ops.FileSelectFactory, func(ctx context.Context, res *daif.FileDataResource, req *ops.FileFactoryMsg, target *core.DataService) (core.DataResource, error) {
		derived, err := daif.FileSelectFactory(ctx, res, target, req.Pattern, req.Config)
		if err != nil {
			return nil, err
		}
		return derived, nil
	})
}
