package service_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/filestore"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/soap"
	"dais/internal/sqlengine"
	"dais/internal/wsrf"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

// startEndpoint serves an endpoint over a test HTTP server and records
// its address on the data service.
func startEndpoint(t testing.TB, e *service.Endpoint) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(e)
	t.Cleanup(ts.Close)
	e.Service().SetAddress(ts.URL)
	return ts
}

// relationalFixture builds a WSRF-enabled endpoint hosting a seeded
// relational resource, returning the consumer-side ref.
func relationalFixture(t testing.TB) (*service.Endpoint, *dair.SQLDataResource, client.ResourceRef, *client.Client) {
	t.Helper()
	eng := sqlengine.New("hr")
	eng.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(64) NOT NULL, salary DOUBLE)`)
	eng.MustExec(`INSERT INTO emp VALUES (1, 'ann', 120000), (2, 'bob', 95000), (3, 'carol', 87000)`)
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService("relational", core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithWSRF())
	ep.Register(res)
	startEndpoint(t, ep)
	c := client.New(nil)
	return ep, res, client.Ref(svc.Address(), res.AbstractName()), c
}

func TestSQLExecuteDirectOverHTTP(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	res, err := c.SQLExecute(context.Background(), ref, `SELECT name, salary FROM emp WHERE salary > ? ORDER BY salary DESC`,
		[]sqlengine.Value{sqlengine.NewDouble(90000)}, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Set == nil || len(res.Set.Rows) != 2 {
		t.Fatalf("set = %+v", res.Set)
	}
	if res.Set.Rows[0][0].String() != "ann" {
		t.Fatalf("rows = %v", res.Set.Rows)
	}
	if res.CA.SQLState != sqlengine.StateSuccess || res.CA.RowsFetched != 2 {
		t.Fatalf("CA = %+v", res.CA)
	}
}

func TestSQLExecuteUpdateOverHTTP(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	res, err := c.SQLExecute(context.Background(), ref, `UPDATE emp SET salary = salary + 1000`, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateCount != 3 {
		t.Fatalf("update count = %d", res.UpdateCount)
	}
	if res.Set != nil {
		t.Fatal("update should carry no dataset")
	}
}

func TestSQLExecuteFormats(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	for _, format := range []string{rowset.FormatSQLRowset, rowset.FormatWebRowSet, rowset.FormatCSV} {
		res, err := c.SQLExecute(context.Background(), ref, `SELECT id FROM emp ORDER BY id`, nil, format)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if res.FormatURI != format {
			t.Fatalf("format = %s, want %s", res.FormatURI, format)
		}
		if res.Set == nil || len(res.Set.Rows) != 3 {
			t.Fatalf("%s: set = %+v", format, res.Set)
		}
	}
	var idf *core.InvalidDatasetFormatFault
	if _, err := c.SQLExecute(context.Background(), ref, `SELECT 1`, nil, "urn:fmt:bogus"); !errors.As(err, &idf) {
		t.Fatalf("err = %v", err)
	}
}

func TestFaultsTravelTyped(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	var irf *core.InvalidResourceNameFault
	if _, err := c.SQLExecute(context.Background(), client.Ref(ref.Address, "urn:nope"), `SELECT 1`, nil, ""); !errors.As(err, &irf) {
		t.Fatalf("err = %v", err)
	}
	var ief *core.InvalidExpressionFault
	if _, err := c.SQLExecute(context.Background(), ref, `SELECT * FROM missing_table`, nil, ""); !errors.As(err, &ief) {
		t.Fatalf("err = %v", err)
	}
	var ilf *core.InvalidLanguageFault
	if _, err := c.GenericQuery(context.Background(), ref, "urn:lang:marsian", "x"); !errors.As(err, &ilf) {
		t.Fatalf("err = %v", err)
	}
}

func TestCorePropertyDocumentOverHTTP(t *testing.T) {
	_, res, ref, c := relationalFixture(t)
	doc, err := c.GetPropertyDocument(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindText(core.NSDAI, "DataResourceAbstractName") != res.AbstractName() {
		t.Fatal("abstract name mismatch")
	}
	if doc.FindText(core.NSDAI, "DataResourceManagement") != "ExternallyManaged" {
		t.Fatal("management")
	}
	if len(doc.FindAll(core.NSDAI, "DatasetMap")) != 3 {
		t.Fatal("dataset maps")
	}
	if doc.Find(service.NSDAIR, "CIMDescription") == nil {
		t.Fatal("CIMDescription extension missing")
	}
	if doc.Find(core.NSDAI, "ConfigurationMap") == nil {
		t.Fatal("ConfigurationMap missing")
	}
}

func TestGenericQueryOverHTTP(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	result, err := c.GenericQuery(context.Background(), ref, dair.LanguageSQL92, `SELECT COUNT(*) FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if result.Name.Local != "SQLRowset" {
		t.Fatalf("result = %v", result.Name)
	}
	set, err := rowset.DecodeSQLRowsetElement(result)
	if err != nil || set.Rows[0][0].String() != "3" {
		t.Fatalf("set = %+v, %v", set, err)
	}
}

func TestResourceListAndResolve(t *testing.T) {
	_, res, ref, c := relationalFixture(t)
	names, err := c.GetResourceList(context.Background(), ref.Address)
	if err != nil || len(names) != 1 || names[0] != res.AbstractName() {
		t.Fatalf("names = %v, %v", names, err)
	}
	resolved, err := c.Resolve(context.Background(), ref.Address, res.AbstractName())
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Address != ref.Address || resolved.AbstractName != res.AbstractName() {
		t.Fatalf("resolved = %+v", resolved)
	}
	if _, err := c.Resolve(context.Background(), ref.Address, "urn:ghost"); err == nil {
		t.Fatal("resolve of unknown name should fault")
	}
}

func TestIndirectAccessPipelineFig5(t *testing.T) {
	// Three distinct data services as in paper Fig. 5.
	eng := sqlengine.New("hr")
	eng.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(64))`)
	eng.MustExec(`INSERT INTO emp VALUES (1, 'ann'), (2, 'bob'), (3, 'carol')`)
	res := dair.NewSQLDataResource(eng)

	svc3 := core.NewDataService("ds3")
	ep3 := service.NewEndpoint(svc3, service.WithInterfaces(service.SQLRowsetAccess|service.CoreDataAccess))
	startEndpoint(t, ep3)

	svc2 := core.NewDataService("ds2")
	ep2 := service.NewEndpoint(svc2,
		service.WithInterfaces(service.SQLResponseAccess|service.SQLResponseFactory|service.CoreDataAccess),
		service.WithFactoryTarget(ep3))
	startEndpoint(t, ep2)

	svc1 := core.NewDataService("ds1")
	ep1 := service.NewEndpoint(svc1,
		service.WithInterfaces(service.SQLAccess|service.SQLFactory|service.CoreDataAccess),
		service.WithFactoryTarget(ep2))
	ep1.Register(res)
	startEndpoint(t, ep1)

	// Consumer 1: SQLExecuteFactory against DS1 -> EPR on DS2.
	consumer1 := client.New(nil)
	respRef, err := consumer1.SQLExecuteFactory(context.Background(), client.Ref(svc1.Address(), res.AbstractName()),
		`SELECT id, name FROM emp ORDER BY id`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if respRef.Address != svc2.Address() {
		t.Fatalf("response resource on %s, want %s", respRef.Address, svc2.Address())
	}

	// Consumer 1 passes the EPR to Consumer 2, who derives a WebRowSet
	// rowset resource on DS3.
	consumer2 := client.New(nil)
	rowsetRef, err := consumer2.SQLRowsetFactory(context.Background(), respRef, rowset.FormatWebRowSet, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rowsetRef.Address != svc3.Address() {
		t.Fatalf("rowset resource on %s, want %s", rowsetRef.Address, svc3.Address())
	}

	// Consumer 2 hands the EPR to Consumer 3, who pulls pages.
	consumer3 := client.New(nil)
	set, err := consumer3.GetTuplesSet(context.Background(), rowsetRef, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 2 || set.Rows[0][1].String() != "bob" {
		t.Fatalf("page = %+v", set.Rows)
	}

	// Property documents confirm the derivation chain.
	doc, err := consumer3.GetPropertyDocument(context.Background(), rowsetRef)
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindText(core.NSDAI, "DataResourceManagement") != "ServiceManaged" {
		t.Fatal("derived resource must be service managed")
	}
	if doc.FindText(core.NSDAI, "ParentDataResource") != respRef.AbstractName {
		t.Fatal("parent chain broken")
	}
}

func TestInterfaceRestriction(t *testing.T) {
	// DS3 exposes only RowsetAccess: SQLExecute must not be routable.
	eng := sqlengine.New("db")
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService("limited")
	ep := service.NewEndpoint(svc, service.WithInterfaces(service.SQLRowsetAccess))
	ep.Register(res)
	startEndpoint(t, ep)
	c := client.New(nil)
	_, err := c.SQLExecute(context.Background(), client.Ref(svc.Address(), res.AbstractName()), `SELECT 1`, nil, "")
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestDestroyDataResourceOverHTTP(t *testing.T) {
	_, res, ref, c := relationalFixture(t)
	if err := c.DestroyDataResource(context.Background(), ref); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetPropertyDocument(context.Background(), ref); err == nil {
		t.Fatal("destroyed resource should be unknown")
	}
	_ = res
}

func TestResponseAccessOverHTTP(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	respRef, err := c.SQLExecuteFactory(context.Background(), ref, `SELECT name FROM emp ORDER BY id`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := c.GetSQLRowset(context.Background(), respRef, 0)
	if err != nil || len(set.Rows) != 3 {
		t.Fatalf("set = %+v, %v", set, err)
	}
	ca, err := c.GetSQLCommunicationArea(context.Background(), respRef)
	if err != nil || ca.SQLState != sqlengine.StateSuccess {
		t.Fatalf("ca = %+v, %v", ca, err)
	}
	// Update counts via factory.
	updRef, err := c.SQLExecuteFactory(context.Background(), ref, `UPDATE emp SET salary = 1 WHERE id = 1`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.GetSQLUpdateCount(context.Background(), updRef, 0)
	if err != nil || n != 1 {
		t.Fatalf("n = %d, %v", n, err)
	}
}

func TestWSRFFineGrainedProperties(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	props, err := c.GetResourceProperty(context.Background(), ref, "DataResourceManagement")
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 || props[0].Text() != "ExternallyManaged" {
		t.Fatalf("props = %v", props)
	}
	// Query with XPath.
	nodes, err := c.QueryResourceProperties(context.Background(), ref, "count(DatasetMap)")
	if err != nil || len(nodes) != 1 || nodes[0].Text() != "3" {
		t.Fatalf("nodes = %v, %v", nodes, err)
	}
	// Lifetime properties visible through WSRF.
	cur, err := c.GetResourceProperty(context.Background(), ref, "wsrl:CurrentTime")
	if err != nil || len(cur) != 1 {
		t.Fatalf("current time = %v, %v", cur, err)
	}
}

func TestWSRFLifetimeOverHTTP(t *testing.T) {
	ep, _, ref, c := relationalFixture(t)
	// Derive a resource and schedule its termination.
	respRef, err := c.SQLExecuteFactory(context.Background(), ref, `SELECT 1`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tt := time.Now().Add(-time.Second) // already expired
	newTT, err := c.SetTerminationTime(context.Background(), respRef, &tt)
	if err != nil || newTT == nil {
		t.Fatalf("set = %v, %v", newTT, err)
	}
	if ids := ep.WSRF().SweepExpired(); len(ids) != 1 {
		t.Fatalf("sweep = %v", ids)
	}
	// The DAIS relationship is destroyed too.
	if _, err := c.GetSQLRowset(context.Background(), respRef, 0); err == nil {
		t.Fatal("reaped resource should be gone from the data service")
	}
}

func TestWSRFDestroyOverHTTP(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	respRef, err := c.SQLExecuteFactory(context.Background(), ref, `SELECT 1`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WSRFDestroy(context.Background(), respRef); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetSQLRowset(context.Background(), respRef, 0); err == nil {
		t.Fatal("destroyed resource still reachable")
	}
	if err := c.WSRFDestroy(context.Background(), respRef); err == nil {
		t.Fatal("double destroy should fault")
	}
}

func TestPlainDestroySyncsWSRF(t *testing.T) {
	ep, _, ref, c := relationalFixture(t)
	respRef, err := c.SQLExecuteFactory(context.Background(), ref, `SELECT 1`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ep.WSRF().Get(respRef.AbstractName); !ok {
		t.Fatal("derived resource not in WSRF registry")
	}
	if err := c.DestroyDataResource(context.Background(), respRef); err != nil {
		t.Fatal(err)
	}
	if _, ok := ep.WSRF().Get(respRef.AbstractName); ok {
		t.Fatal("WSRF registry out of sync after plain destroy")
	}
}

// xmlFixture builds an XML endpoint with a seeded collection.
func xmlFixture(t testing.TB) (client.ResourceRef, *client.Client) {
	t.Helper()
	store := xmldb.NewStore("library")
	res := daix.NewXMLCollectionResource(store, "")
	for i, doc := range []string{
		`<book id="1"><title>Alpha</title><price>10</price></book>`,
		`<book id="2"><title>Beta</title><price>30</price></book>`,
	} {
		e, _ := xmlutil.ParseString(doc)
		if err := store.AddDocument("", []string{"a.xml", "b.xml"}[i], e); err != nil {
			t.Fatal(err)
		}
	}
	svc := core.NewDataService("xml", core.WithConfigurationMap(daix.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithWSRF())
	ep.Register(res)
	startEndpoint(t, ep)
	return client.Ref(svc.Address(), res.AbstractName()), client.New(nil)
}

func TestXMLCollectionOverHTTP(t *testing.T) {
	ref, c := xmlFixture(t)
	names, err := c.ListDocuments(context.Background(), ref)
	if err != nil || len(names) != 2 {
		t.Fatalf("names = %v, %v", names, err)
	}
	doc, _ := xmlutil.ParseString(`<book id="3"><title>Gamma</title><price>20</price></book>`)
	if err := c.AddDocument(context.Background(), ref, "c.xml", doc); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetDocument(context.Background(), ref, "c.xml")
	if err != nil || got.FindText("", "title") != "Gamma" {
		t.Fatalf("doc = %v, %v", got, err)
	}
	if err := c.RemoveDocument(context.Background(), ref, "a.xml"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSubcollection(context.Background(), ref, "archive"); err != nil {
		t.Fatal(err)
	}
	subs, err := c.ListSubcollections(context.Background(), ref)
	if err != nil || len(subs) != 1 || subs[0] != "archive" {
		t.Fatalf("subs = %v, %v", subs, err)
	}
	if err := c.RemoveSubcollection(context.Background(), ref, "archive"); err != nil {
		t.Fatal(err)
	}
}

func TestXPathXQueryOverHTTP(t *testing.T) {
	ref, c := xmlFixture(t)
	items, err := c.XPathExecute(context.Background(), ref, "/book[price > 15]/title")
	if err != nil || len(items) != 1 || items[0].Value != "Beta" {
		t.Fatalf("items = %+v, %v", items, err)
	}
	items, err = c.XQueryExecute(context.Background(), ref, `for $b in /book order by $b/price descending return <t>{$b/title}</t>`)
	if err != nil || len(items) != 2 || items[0].Value != "Beta" {
		t.Fatalf("items = %+v, %v", items, err)
	}
}

func TestXUpdateOverHTTP(t *testing.T) {
	ref, c := xmlFixture(t)
	mods, _ := xmlutil.ParseString(`<xu:modifications xmlns:xu="` + xmldb.NSXUpdate + `">
		<xu:update select="/book/price">77</xu:update>
	</xu:modifications>`)
	n, err := c.XUpdateExecute(context.Background(), ref, "a.xml", mods)
	if err != nil || n != 1 {
		t.Fatalf("n = %d, %v", n, err)
	}
	doc, _ := c.GetDocument(context.Background(), ref, "a.xml")
	if doc.FindText("", "price") != "77" {
		t.Fatal("update not applied")
	}
}

func TestXMLFactoriesOverHTTP(t *testing.T) {
	ref, c := xmlFixture(t)
	seqRef, err := c.XPathExecuteFactory(context.Background(), ref, "//book", nil)
	if err != nil {
		t.Fatal(err)
	}
	items, err := c.GetItems(context.Background(), seqRef, 1, 10)
	if err != nil || len(items) != 2 {
		t.Fatalf("items = %+v, %v", items, err)
	}
	// Paging.
	page, err := c.GetItems(context.Background(), seqRef, 2, 1)
	if err != nil || len(page) != 1 {
		t.Fatalf("page = %+v, %v", page, err)
	}
	// XQuery factory.
	xqRef, err := c.XQueryExecuteFactory(context.Background(), ref, `for $b in /book where $b/price < 20 return <x>{$b/title}</x>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	items, err = c.GetItems(context.Background(), xqRef, 1, 10)
	if err != nil || len(items) != 1 || items[0].Value != "Alpha" {
		t.Fatalf("items = %+v, %v", items, err)
	}
	// Collection factory gives a live view.
	colRef, err := c.CollectionFactory(context.Background(), ref, "derived", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListDocuments(context.Background(), colRef); err != nil {
		t.Fatal(err)
	}
	if err := c.DestroyDataResource(context.Background(), colRef); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccessFalseSerialises(t *testing.T) {
	eng := sqlengine.New("db")
	eng.MustExec(`CREATE TABLE t (n INTEGER)`)
	eng.MustExec(`INSERT INTO t VALUES (1)`)
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService("serial", core.WithConcurrentAccess(false))
	ep := service.NewEndpoint(svc)
	ep.Register(res)
	startEndpoint(t, ep)

	ref := client.Ref(svc.Address(), res.AbstractName())
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			c := client.New(nil)
			_, err := c.SQLExecute(context.Background(), ref, `SELECT n FROM t`, nil, "")
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Property document advertises it.
	c := client.New(nil)
	doc, err := c.GetPropertyDocument(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindText(core.NSDAI, "ConcurrentAccess") != "false" {
		t.Fatal("ConcurrentAccess property wrong")
	}
}

func TestAbstractNameRequiredInBody(t *testing.T) {
	// Paper §3/§5: the abstract name must be in the body. A request
	// without it is rejected even though the action routes.
	_, _, ref, _ := relationalFixture(t)
	bare := xmlutil.NewElement(service.NSDAIR, "SQLExecuteRequest")
	service.AddSQLExpression(bare, "SELECT 1", nil)
	err := clientRawCall(t, ref.Address, service.ActSQLExecute, bare)
	if err == nil || !strings.Contains(err.Error(), "DataResourceAbstractName") {
		t.Fatalf("err = %v", err)
	}
}

// clientRawCall issues a raw SOAP call and returns the error.
func clientRawCall(t *testing.T, address, action string, body *xmlutil.Element) error {
	t.Helper()
	_, err := soap.NewClient(nil).Call(context.Background(), address, action, soap.NewEnvelope(body))
	return err
}

func TestConfigurationDocumentHonoured(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	cfg := core.DefaultConfiguration()
	cfg.Description = "nightly report"
	cfg.Sensitivity = core.Sensitive
	respRef, err := c.SQLExecuteFactory(context.Background(), ref, `SELECT 1`, nil, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := c.GetPropertyDocument(context.Background(), respRef)
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindText(core.NSDAI, "DataResourceDescription") != "nightly report" {
		t.Fatal("description lost")
	}
	if doc.FindText(core.NSDAI, "Sensitivity") != "Sensitive" {
		t.Fatal("sensitivity lost")
	}
}

func TestWSRFRequiresBodyName(t *testing.T) {
	_, _, ref, _ := relationalFixture(t)
	body := xmlutil.NewElement(wsrf.NSRP, "GetResourceProperty")
	body.AddText(wsrf.NSRP, "ResourceProperty", "Readable")
	err := clientRawCall(t, ref.Address, service.ActGetResourceProperty, body)
	if err == nil || !strings.Contains(err.Error(), "DataResourceAbstractName") {
		t.Fatalf("err = %v", err)
	}
}

func TestWSRFSetResourceProperties(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	// Flip Writeable off and set a description through WSRF.
	if err := c.SetResourceProperties(context.Background(), ref, map[string]string{
		"Writeable":               "false",
		"DataResourceDescription": "frozen for audit",
	}); err != nil {
		t.Fatal(err)
	}
	doc, err := c.GetPropertyDocument(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindText(core.NSDAI, "Writeable") != "false" {
		t.Fatal("Writeable not updated")
	}
	if doc.FindText(core.NSDAI, "DataResourceDescription") != "frozen for audit" {
		t.Fatal("description not updated")
	}
	// The behaviour changes too: writes are refused now.
	var naf *core.NotAuthorizedFault
	if _, err := c.SQLExecute(context.Background(), ref, `DELETE FROM emp WHERE id = 1`, nil, ""); !errors.As(err, &naf) {
		t.Fatalf("write to non-writeable resource: err = %v", err)
	}
	// Unknown properties are rejected.
	if err := c.SetResourceProperties(context.Background(), ref, map[string]string{"DataResourceAbstractName": "x"}); err == nil {
		t.Fatal("static property must not be updatable")
	}
	// Bad values are rejected.
	if err := c.SetResourceProperties(context.Background(), ref, map[string]string{"Readable": "maybe"}); err == nil {
		t.Fatal("invalid boolean should fail")
	}
	if err := c.SetResourceProperties(context.Background(), ref, map[string]string{"Sensitivity": "weird"}); err == nil {
		t.Fatal("invalid sensitivity should fail")
	}
	// Flip Readable off: reads now refused.
	if err := c.SetResourceProperties(context.Background(), ref, map[string]string{"Readable": "false"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SQLExecute(context.Background(), ref, `SELECT 1`, nil, ""); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
}

// fileFixture builds a WSRF-enabled endpoint hosting a file resource.
func fileFixture(t testing.TB) (client.ResourceRef, *client.Client) {
	t.Helper()
	store := filestore.NewStore("grid")
	for name, data := range map[string]string{
		"runs/2005/a.dat": "run-a-data",
		"runs/2005/b.dat": "run-b-data",
		"runs/2006/c.dat": "run-c",
	} {
		if err := store.Write(name, []byte(data)); err != nil {
			t.Fatal(err)
		}
	}
	res := daif.NewFileDataResource(store)
	svc := core.NewDataService("files", core.WithConfigurationMap(daif.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithWSRF())
	ep.Register(res)
	startEndpoint(t, ep)
	return client.Ref(svc.Address(), res.AbstractName()), client.New(nil)
}

func TestFileAccessOverHTTP(t *testing.T) {
	ref, c := fileFixture(t)
	data, err := c.ReadFile(context.Background(), ref, "runs/2005/a.dat", 0, -1)
	if err != nil || string(data) != "run-a-data" {
		t.Fatalf("read = %q, %v", data, err)
	}
	part, err := c.ReadFile(context.Background(), ref, "runs/2005/a.dat", 4, 1)
	if err != nil || string(part) != "a" {
		t.Fatalf("range = %q, %v", part, err)
	}
	// Binary-safe round trip.
	blob := []byte{0x00, 0xFF, 0x7F, '<', '>', '&', 0x01}
	if err := c.WriteFile(context.Background(), ref, "bin.dat", blob); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendFile(context.Background(), ref, "bin.dat", []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile(context.Background(), ref, "bin.dat", 0, -1)
	if err != nil || len(got) != 8 || got[7] != 0xAA || got[0] != 0x00 {
		t.Fatalf("binary = %x, %v", got, err)
	}
	info, err := c.StatFile(context.Background(), ref, "bin.dat")
	if err != nil || info.Size != 8 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	if err := c.DeleteFile(context.Background(), ref, "bin.dat"); err != nil {
		t.Fatal(err)
	}
	infos, err := c.ListFiles(context.Background(), ref, "runs/**")
	if err != nil || len(infos) != 3 {
		t.Fatalf("list = %v, %v", infos, err)
	}
}

func TestFileStagingOverHTTP(t *testing.T) {
	ref, c := fileFixture(t)
	stagedRef, err := c.FileSelectFactory(context.Background(), ref, "runs/2005/*", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A third party reads from the staged resource.
	third := client.New(nil)
	infos, err := third.ListFiles(context.Background(), stagedRef, "")
	if err != nil || len(infos) != 2 {
		t.Fatalf("staged list = %v, %v", infos, err)
	}
	data, err := third.ReadFile(context.Background(), stagedRef, "runs/2005/b.dat", 0, -1)
	if err != nil || string(data) != "run-b-data" {
		t.Fatalf("staged read = %q, %v", data, err)
	}
	// The snapshot is pinned against parent mutation.
	if err := c.WriteFile(context.Background(), ref, "runs/2005/b.dat", []byte("CHANGED")); err != nil {
		t.Fatal(err)
	}
	data, _ = third.ReadFile(context.Background(), stagedRef, "runs/2005/b.dat", 0, -1)
	if string(data) != "run-b-data" {
		t.Fatalf("staged data changed: %q", data)
	}
	// Writes to a staged resource are rejected (wrong type).
	if err := third.WriteFile(context.Background(), stagedRef, "x", []byte("y")); err == nil {
		t.Fatal("staged resources must be read-only")
	}
	// Property document shows the derivation.
	doc, err := third.GetPropertyDocument(context.Background(), stagedRef)
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindText(core.NSDAI, "ParentDataResource") == "" {
		t.Fatal("parent missing")
	}
	if doc.FindText(service.NSDAIF, "NumberOfFiles") != "2" {
		t.Fatal("file count extension missing")
	}
	// Soft-state cleanup works for staged resources too.
	past := time.Now().Add(-time.Second)
	if _, err := c.SetTerminationTime(context.Background(), stagedRef, &past); err != nil {
		t.Fatal(err)
	}
}

func TestFileGenericQueryOverHTTP(t *testing.T) {
	ref, c := fileFixture(t)
	list, err := c.GenericQuery(context.Background(), ref, daif.LanguageGlob, "**/*.dat")
	if err != nil {
		t.Fatal(err)
	}
	if len(list.FindAll(service.NSDAIF, "File")) != 3 {
		t.Fatalf("list = %s", xmlutil.MarshalString(list))
	}
}

func TestRealisationPropertyDocuments(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	sqlDoc, err := c.GetSQLPropertyDocument(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if sqlDoc.Find(service.NSDAIR, "CIMDescription") == nil {
		t.Fatal("SQL property document missing CIMDescription")
	}
	respRef, err := c.SQLExecuteFactory(context.Background(), ref, `SELECT id FROM emp`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	respDoc, err := c.GetSQLResponsePropertyDocument(context.Background(), respRef)
	if err != nil {
		t.Fatal(err)
	}
	if respDoc.FindText(service.NSDAIR, "NumberOfSQLRowsets") != "1" {
		t.Fatal("response property document missing item counts")
	}
	// Wrong resource type faults.
	if _, err := c.GetSQLResponsePropertyDocument(context.Background(), ref); err == nil {
		t.Fatal("base resource is not a response")
	}
	rowsetRef, err := c.SQLRowsetFactory(context.Background(), respRef, "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rsDoc, err := c.GetRowsetPropertyDocument(context.Background(), rowsetRef)
	if err != nil {
		t.Fatal(err)
	}
	if rsDoc.FindText(service.NSDAIR, "NumberOfRows") != "3" {
		t.Fatal("rowset property document missing NumberOfRows")
	}
}

func TestResponseItemAccessors(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	respRef, err := c.SQLExecuteFactory(context.Background(), ref, `SELECT name FROM emp ORDER BY id`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	item, err := c.GetSQLResponseItem(context.Background(), respRef, 0)
	if err != nil {
		t.Fatal(err)
	}
	if item.Set == nil || len(item.Set.Rows) != 3 {
		t.Fatalf("item = %+v", item)
	}
	if _, err := c.GetSQLResponseItem(context.Background(), respRef, 5); err == nil {
		t.Fatal("out-of-range item")
	}
	// Update responses expose the count through the item accessor too.
	updRef, err := c.SQLExecuteFactory(context.Background(), ref, `UPDATE emp SET salary = 1`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	item, err = c.GetSQLResponseItem(context.Background(), updRef, 0)
	if err != nil || item.UpdateCount != 3 {
		t.Fatalf("item = %+v, %v", item, err)
	}
	// Our engine produces no return values / output parameters; the
	// operations fault cleanly.
	if _, err := c.GetSQLReturnValue(context.Background(), respRef); err == nil {
		t.Fatal("no return value expected")
	}
	if _, err := c.GetSQLOutputParameter(context.Background(), respRef, "p"); err == nil {
		t.Fatal("no output parameter expected")
	}
}

func TestGetMultipleResourcePropertiesOverHTTP(t *testing.T) {
	_, _, ref, c := relationalFixture(t)
	props, err := c.GetMultipleResourceProperties(context.Background(), ref, []string{"Readable", "Writeable", "wsrl:CurrentTime"})
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 3 {
		t.Fatalf("props = %d", len(props))
	}
}

func TestWSDLDescription(t *testing.T) {
	_, _, ref, _ := relationalFixture(t)
	resp, err := http.Get(ref.Address + "?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	doc, err := xmlutil.ParseString(strings.TrimPrefix(string(body), `<?xml version="1.0" encoding="UTF-8"?>`))
	if err != nil {
		t.Fatalf("wsdl unparsable: %v", err)
	}
	if doc.Name.Local != "definitions" {
		t.Fatalf("root = %v", doc.Name)
	}
	pt := doc.Find(service.NSWSDL, "portType")
	if pt == nil {
		t.Fatal("portType missing")
	}
	ops := map[string]bool{}
	for _, op := range pt.FindAll(service.NSWSDL, "operation") {
		ops[op.AttrValue("", "name")] = true
	}
	for _, want := range []string{"SQLExecute", "SQLExecuteFactory", "GetTuples", "GenericQuery", "Destroy", "GetResourceProperty"} {
		if !ops[want] {
			t.Errorf("operation %s missing from WSDL (have %d ops)", want, len(ops))
		}
	}
	// The service address is advertised.
	if !strings.Contains(string(body), ref.Address) {
		t.Error("service address missing")
	}
	// A restricted endpoint advertises fewer operations.
	eng := sqlengine.New("x")
	res := dair.NewSQLDataResource(eng)
	svc2 := core.NewDataService("narrow")
	ep2 := service.NewEndpoint(svc2, service.WithInterfaces(service.SQLRowsetAccess))
	ep2.Register(res)
	startEndpoint(t, ep2)
	resp2, err := http.Get(svc2.Address() + "?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if strings.Contains(string(body2), `name="SQLExecute"`) {
		t.Error("restricted endpoint advertises disabled operations")
	}
	if !strings.Contains(string(body2), `name="GetTuples"`) {
		t.Error("restricted endpoint should advertise GetTuples")
	}
	// Plain GET without ?wsdl is a 400 hint, not a SOAP fault.
	resp3, err := http.Get(ref.Address)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain GET status = %d", resp3.StatusCode)
	}
}
