package service_test

import (
	"context"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dais/internal/client"
	"dais/internal/faultinject"
	"dais/internal/resil"
)

// TestChaosSoakGoroutineHygiene hammers two endpoints with concurrent
// consumers under injected failures — retries, breaker transitions and
// parse errors all racing — and asserts the process returns to its
// pre-soak goroutine count: no leaked connections, timers or
// interceptor goroutines. CI runs the short shape; `make soak` sets
// DAIS_SOAK for the long one.
func TestChaosSoakGoroutineHygiene(t *testing.T) {
	exchanges := 1000
	if os.Getenv("DAIS_SOAK") != "" {
		exchanges = 10000
	}
	_, _, sqlRef, _ := relationalFixture(t)
	xmlRef, _ := xmlFixture(t)

	inner := &http.Transport{MaxIdleConnsPerHost: 16}
	ft := faultinject.NewTransport(inner, faultinject.Plan{
		Seed:  42,
		Rate:  0.10,
		Modes: []faultinject.Mode{faultinject.ModeDrop, faultinject.ModeCorrupt, faultinject.ModeBusy},
		Match: idempotentOnly,
	})
	cfg := resil.ClientConfig{
		Retry: resil.Policy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		// A tight breaker so open/half-open/closed transitions race
		// across the worker goroutines.
		Breaker: resil.BreakerConfig{Threshold: 4, Cooldown: 5 * time.Millisecond, HalfOpenProbes: 2},
		Sleep: func(ctx context.Context, d time.Duration) error {
			if d > time.Millisecond {
				d = time.Millisecond
			}
			timer := time.NewTimer(d)
			defer timer.Stop()
			select {
			case <-timer.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
	c := client.NewResilient(&http.Client{Transport: ft}, nil, cfg)

	before := runtime.NumGoroutine()
	const workers = 8
	var served atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < exchanges/workers; i++ {
				var err error
				switch i % 3 {
				case 0:
					_, err = c.GetPropertyDocument(ctx, sqlRef)
				case 1:
					_, err = c.ListDocuments(ctx, xmlRef)
				default:
					_, err = c.GetDocument(ctx, xmlRef, "a.xml")
				}
				// Breaker rejections and exhausted retries are expected
				// under 10% injection; only hygiene is asserted here.
				if err == nil {
					served.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("soak served nothing — the workload never exercised the path")
	}

	// Drop idle keep-alive connections, then require the goroutine count
	// to settle back to the pre-soak level (small slack for runtime
	// background goroutines).
	inner.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			t.Logf("exchanges=%d served=%d injected=%d goroutines %d → %d",
				exchanges, served.Load(), ft.InjectedTotal(), before, now)
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines grew %d → %d after soak\n%s", before, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
