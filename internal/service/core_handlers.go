package service

import (
	"context"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/xmlutil"
)

// registerCore wires the WS-DAI operations from their catalog specs.
func (e *Endpoint) registerCore() {
	handleOp(e, ops.GetPropertyDocument, func(ctx context.Context, res core.DataResource, _ *ops.Empty) (*xmlutil.Element, error) {
		doc, err := e.svc.GetDataResourcePropertyDocument(res.AbstractName())
		if err != nil {
			return nil, err
		}
		resp := ops.GetPropertyDocument.NewResponse()
		resp.AppendChild(doc)
		return resp, nil
	})
	handleOp(e, ops.GenericQuery, func(ctx context.Context, res core.DataResource, req *ops.GenericQueryMsg) (*xmlutil.Element, error) {
		result, err := e.svc.GenericQuery(ctx, res.AbstractName(), req.Language, req.Expression)
		if err != nil {
			return nil, err
		}
		resp := ops.GenericQuery.NewResponse()
		resp.AppendChild(result)
		return resp, nil
	})
	handleOp(e, ops.DestroyDataResource, func(ctx context.Context, res core.DataResource, _ *ops.Empty) (*xmlutil.Element, error) {
		if err := e.svc.DestroyDataResource(ctx, res.AbstractName()); err != nil {
			return nil, err
		}
		return ops.DestroyDataResource.NewResponse(), nil
	})
	// GetResourceList addresses the service, not a resource (NoName), so
	// it binds below the name-resolving dispatch.
	e.bind(ops.GetResourceList, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		return ops.ResourceListResponse(e.svc.GetResourceList()), nil
	})
	handleOp(e, ops.ResolveName, func(ctx context.Context, res core.DataResource, _ *ops.Empty) (*xmlutil.Element, error) {
		resp := ops.ResolveName.NewResponse()
		ops.AddResourceAddress(resp, e.EPRFor(res.AbstractName()))
		return resp, nil
	})
}
