// Package service binds the WS-DAI, WS-DAIR, WS-DAIX and WS-DAIF
// operations to SOAP over HTTP, preserving the message patterns the
// paper prescribes: every request carries the data resource abstract
// name in the SOAP body (paper §3: "DAIS mandates the inclusion of the
// data resource's abstract name in the body of the message so that the
// messaging framework is the same regardless of whether WSRF is used
// or not"), with an optional WS-Addressing EPR in the header; factory
// responses return EPRs whose reference parameters carry the derived
// resource's abstract name; and the optional WSRF layer adds
// fine-grained property access and soft-state lifetime management over
// the same resources.
//
// The operation inventory itself — action URIs, request/response
// element shapes, interface classes, resource kinds — lives in the
// declarative catalog of package ops; this package contributes only
// the HTTP/SOAP binding and the business logic behind each spec.
package service

import (
	"fmt"

	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/ops"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

// Namespace aliases re-exported for message construction.
const (
	NSDAI  = core.NSDAI
	NSDAIR = dair.NSDAIR
	NSDAIX = daix.NSDAIX
	NSDAIF = daif.NSDAIF
)

// Action URIs, re-exported from the operation catalog so existing
// callers (and tests) keep a single import for the wire contract.
const (
	// WS-DAI core.
	ActGetPropertyDocument = ops.ActGetPropertyDocument
	ActGenericQuery        = ops.ActGenericQuery
	ActDestroyDataResource = ops.ActDestroyDataResource
	ActGetResourceList     = ops.ActGetResourceList
	ActResolve             = ops.ActResolve

	// WS-DAIR.
	ActSQLExecute            = ops.ActSQLExecute
	ActGetSQLPropertyDoc     = ops.ActGetSQLPropertyDoc
	ActSQLExecuteFactory     = ops.ActSQLExecuteFactory
	ActGetSQLRowset          = ops.ActGetSQLRowset
	ActGetSQLUpdateCount     = ops.ActGetSQLUpdateCount
	ActGetSQLReturnValue     = ops.ActGetSQLReturnValue
	ActGetSQLOutputParameter = ops.ActGetSQLOutputParameter
	ActGetSQLCommArea        = ops.ActGetSQLCommArea
	ActGetSQLResponseItem    = ops.ActGetSQLResponseItem
	ActGetSQLResponsePropDoc = ops.ActGetSQLResponsePropDoc
	ActSQLRowsetFactory      = ops.ActSQLRowsetFactory
	ActGetTuples             = ops.ActGetTuples
	ActGetRowsetPropDoc      = ops.ActGetRowsetPropDoc

	// WS-DAIX.
	ActAddDocument         = ops.ActAddDocument
	ActGetDocument         = ops.ActGetDocument
	ActRemoveDocument      = ops.ActRemoveDocument
	ActListDocuments       = ops.ActListDocuments
	ActCreateSubcollection = ops.ActCreateSubcollection
	ActRemoveSubcollection = ops.ActRemoveSubcollection
	ActListSubcollections  = ops.ActListSubcollections
	ActXPathExecute        = ops.ActXPathExecute
	ActXQueryExecute       = ops.ActXQueryExecute
	ActXUpdateExecute      = ops.ActXUpdateExecute
	ActXPathFactory        = ops.ActXPathFactory
	ActXQueryFactory       = ops.ActXQueryFactory
	ActCollectionFactory   = ops.ActCollectionFactory
	ActGetItems            = ops.ActGetItems

	// WS-DAIF.
	ActReadFile          = ops.ActReadFile
	ActWriteFile         = ops.ActWriteFile
	ActAppendFile        = ops.ActAppendFile
	ActDeleteFile        = ops.ActDeleteFile
	ActListFiles         = ops.ActListFiles
	ActStatFile          = ops.ActStatFile
	ActFileSelectFactory = ops.ActFileSelectFactory

	// WSRF (optional layer).
	ActGetResourceProperty      = ops.ActGetResourceProperty
	ActSetResourceProperties    = ops.ActSetResourceProperties
	ActGetMultipleResourceProps = ops.ActGetMultipleResourceProps
	ActQueryResourceProperties  = ops.ActQueryResourceProperties
	ActSetTerminationTime       = ops.ActSetTerminationTime
	ActWSRFDestroy              = ops.ActWSRFDestroy
)

// NewRequest builds a request body element in the given namespace with
// the mandatory DataResourceAbstractName child.
func NewRequest(ns, local, abstractName string) *xmlutil.Element {
	e := xmlutil.NewElement(ns, local)
	e.AddText(NSDAI, "DataResourceAbstractName", abstractName)
	return e
}

// AbstractNameOf extracts the mandatory abstract name from a request
// body, enforcing the §3/§5 framing rule.
func AbstractNameOf(body *xmlutil.Element) (string, error) {
	if body == nil {
		return "", fmt.Errorf("service: empty request body")
	}
	n := body.FindText(NSDAI, "DataResourceAbstractName")
	if n == "" {
		return "", fmt.Errorf("service: request %s is missing the DataResourceAbstractName body element", body.Name.Local)
	}
	return n, nil
}

// AddSQLExpression renders an SQLExpression element (expression text
// plus positional parameters) into a request. Kept as a thin alias of
// the catalog codec for existing callers.
func AddSQLExpression(req *xmlutil.Element, expression string, params []sqlengine.Value) {
	ops.AddSQLExpression(req, expression, params)
}

// ParseSQLExpression decodes an SQLExpression element.
func ParseSQLExpression(req *xmlutil.Element) (string, []sqlengine.Value, error) {
	return ops.ParseSQLExpression(req)
}
