// Package service binds the WS-DAI, WS-DAIR and WS-DAIX operations to
// SOAP over HTTP, preserving the message patterns the paper prescribes:
// every request carries the data resource abstract name in the SOAP
// body (paper §3: "DAIS mandates the inclusion of the data resource's
// abstract name in the body of the message so that the messaging
// framework is the same regardless of whether WSRF is used or not"),
// with an optional WS-Addressing EPR in the header; factory responses
// return EPRs whose reference parameters carry the derived resource's
// abstract name; and the optional WSRF layer adds fine-grained property
// access and soft-state lifetime management over the same resources.
package service

import (
	"fmt"
	"strconv"

	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/sqlengine"
	"dais/internal/wsrf"
	"dais/internal/xmlutil"
)

// Namespace aliases re-exported for message construction.
const (
	NSDAI  = core.NSDAI
	NSDAIR = dair.NSDAIR
	NSDAIX = daix.NSDAIX
)

// Action URIs, one per operation. The SOAP dispatcher routes on them.
const (
	// WS-DAI core.
	ActGetPropertyDocument = NSDAI + "/GetDataResourcePropertyDocument"
	ActGenericQuery        = NSDAI + "/GenericQuery"
	ActDestroyDataResource = NSDAI + "/DestroyDataResource"
	ActGetResourceList     = NSDAI + "/GetResourceList"
	ActResolve             = NSDAI + "/Resolve"

	// WS-DAIR.
	ActSQLExecute            = NSDAIR + "/SQLExecute"
	ActGetSQLPropertyDoc     = NSDAIR + "/GetSQLPropertyDocument"
	ActSQLExecuteFactory     = NSDAIR + "/SQLExecuteFactory"
	ActGetSQLRowset          = NSDAIR + "/GetSQLRowset"
	ActGetSQLUpdateCount     = NSDAIR + "/GetSQLUpdateCount"
	ActGetSQLReturnValue     = NSDAIR + "/GetSQLReturnValue"
	ActGetSQLOutputParameter = NSDAIR + "/GetSQLOutputParameter"
	ActGetSQLCommArea        = NSDAIR + "/GetSQLCommunicationArea"
	ActGetSQLResponseItem    = NSDAIR + "/GetSQLResponseItem"
	ActGetSQLResponsePropDoc = NSDAIR + "/GetSQLResponsePropertyDocument"
	ActSQLRowsetFactory      = NSDAIR + "/SQLRowsetFactory"
	ActGetTuples             = NSDAIR + "/GetTuples"
	ActGetRowsetPropDoc      = NSDAIR + "/GetRowsetPropertyDocument"

	// WS-DAIX.
	ActAddDocument         = NSDAIX + "/AddDocument"
	ActGetDocument         = NSDAIX + "/GetDocument"
	ActRemoveDocument      = NSDAIX + "/RemoveDocument"
	ActListDocuments       = NSDAIX + "/ListDocuments"
	ActCreateSubcollection = NSDAIX + "/CreateSubcollection"
	ActRemoveSubcollection = NSDAIX + "/RemoveSubcollection"
	ActListSubcollections  = NSDAIX + "/ListSubcollections"
	ActXPathExecute        = NSDAIX + "/XPathExecute"
	ActXQueryExecute       = NSDAIX + "/XQueryExecute"
	ActXUpdateExecute      = NSDAIX + "/XUpdateExecute"
	ActXPathFactory        = NSDAIX + "/XPathExecuteFactory"
	ActXQueryFactory       = NSDAIX + "/XQueryExecuteFactory"
	ActCollectionFactory   = NSDAIX + "/CollectionFactory"
	ActGetItems            = NSDAIX + "/GetItems"

	// WSRF (optional layer).
	ActGetResourceProperty      = wsrf.NSRP + "/GetResourceProperty"
	ActSetResourceProperties    = wsrf.NSRP + "/SetResourceProperties"
	ActGetMultipleResourceProps = wsrf.NSRP + "/GetMultipleResourceProperties"
	ActQueryResourceProperties  = wsrf.NSRP + "/QueryResourceProperties"
	ActSetTerminationTime       = wsrf.NSRL + "/SetTerminationTime"
	ActWSRFDestroy              = wsrf.NSRL + "/Destroy"
)

// NewRequest builds a request body element in the given namespace with
// the mandatory DataResourceAbstractName child.
func NewRequest(ns, local, abstractName string) *xmlutil.Element {
	e := xmlutil.NewElement(ns, local)
	e.AddText(NSDAI, "DataResourceAbstractName", abstractName)
	return e
}

// AbstractNameOf extracts the mandatory abstract name from a request
// body, enforcing the §3/§5 framing rule.
func AbstractNameOf(body *xmlutil.Element) (string, error) {
	if body == nil {
		return "", fmt.Errorf("service: empty request body")
	}
	n := body.FindText(NSDAI, "DataResourceAbstractName")
	if n == "" {
		return "", fmt.Errorf("service: request %s is missing the DataResourceAbstractName body element", body.Name.Local)
	}
	return n, nil
}

// AddSQLExpression renders an SQLExpression element (expression text
// plus positional parameters) into a request.
func AddSQLExpression(req *xmlutil.Element, expression string, params []sqlengine.Value) {
	se := req.Add(NSDAIR, "SQLExpression")
	se.AddText(NSDAIR, "Expression", expression)
	for _, p := range params {
		pe := se.Add(NSDAIR, "Parameter")
		if p.IsNull() {
			pe.SetAttr("", "isNull", "true")
		} else {
			pe.SetAttr("", "type", p.Type.String())
			pe.SetText(p.String())
		}
	}
}

// ParseSQLExpression decodes an SQLExpression element.
func ParseSQLExpression(req *xmlutil.Element) (string, []sqlengine.Value, error) {
	se := req.Find(NSDAIR, "SQLExpression")
	if se == nil {
		return "", nil, fmt.Errorf("service: request is missing SQLExpression")
	}
	expr := se.FindText(NSDAIR, "Expression")
	if expr == "" {
		return "", nil, fmt.Errorf("service: SQLExpression has no Expression")
	}
	var params []sqlengine.Value
	for _, pe := range se.FindAll(NSDAIR, "Parameter") {
		if pe.AttrValue("", "isNull") == "true" {
			params = append(params, sqlengine.Null)
			continue
		}
		t, err := sqlengine.TypeFromName(pe.AttrValue("", "type"))
		if err != nil {
			t = sqlengine.TypeVarchar
		}
		v, err := sqlengine.NewString(pe.Text()).Coerce(t)
		if err != nil {
			return "", nil, fmt.Errorf("service: bad parameter %q: %w", pe.Text(), err)
		}
		params = append(params, v)
	}
	return expr, params, nil
}

// intChild reads an integer child element, with a default when absent.
func intChild(body *xmlutil.Element, ns, local string, def int) (int, error) {
	el := body.Find(ns, local)
	if el == nil {
		return def, nil
	}
	n, err := strconv.Atoi(el.Text())
	if err != nil {
		return 0, fmt.Errorf("service: %s: %w", local, err)
	}
	return n, nil
}
