package service

import (
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
)

// Metric names for the engine's prepared-plan cache. Like the rowset
// stream metrics, they are bound here — the one place that connects the
// engine's counters to a registry — because sqlengine sits below
// telemetry in the import graph.
const (
	// MetricPlanCacheHits counts prepared-plan cache hits.
	MetricPlanCacheHits = "dais_plan_cache_hits_total"
	// MetricPlanCacheMisses counts prepared-plan cache misses (including
	// schema-epoch invalidations, which re-plan in place).
	MetricPlanCacheMisses = "dais_plan_cache_misses_total"
	// MetricPlanCacheSize gauges cached prepared plans.
	MetricPlanCacheSize = "dais_plan_cache_size"
)

// RegisterPlanCacheMetrics exposes an engine's prepared-plan cache
// counters on the registry as scrape-time samples, labelled with the
// engine (database) name so multi-resource deployments stay
// distinguishable. A nil registry is a no-op.
func RegisterPlanCacheMetrics(reg *telemetry.Registry, eng *sqlengine.Engine) {
	if reg == nil || eng == nil {
		return
	}
	labels := map[string]string{"engine": eng.Database().Name()}
	reg.RegisterCollector(func(emit func(telemetry.Sample)) {
		stats := eng.PlanCacheStats()
		emit(telemetry.Sample{Name: MetricPlanCacheHits, Labels: labels, Value: float64(stats.Hits)})
		emit(telemetry.Sample{Name: MetricPlanCacheMisses, Labels: labels, Value: float64(stats.Misses)})
		emit(telemetry.Sample{Name: MetricPlanCacheSize, Labels: labels, Value: float64(stats.Size)})
	})
}
