package service

import (
	"errors"
	"testing"

	"dais/internal/core"
	"dais/internal/soap"
	"dais/internal/sqlengine"
	"dais/internal/wsrf"
	"dais/internal/xmlutil"
)

func TestDatasetElementRoundTrip(t *testing.T) {
	// XML payloads embed as elements.
	xmlData := []byte(`<SQLRowset xmlns="` + NSDAIR + `"><Metadata/><Row/></SQLRowset>`)
	e := datasetElement("urn:fmt:xml", xmlData)
	if len(e.ChildElements()) != 1 {
		t.Fatalf("xml payload not embedded: %s", xmlutil.MarshalString(e))
	}
	data, format := DatasetPayload(e)
	if format != "urn:fmt:xml" {
		t.Fatalf("format = %q", format)
	}
	re, err := xmlutil.ParseString(string(data))
	if err != nil || re.Name.Local != "SQLRowset" {
		t.Fatalf("payload = %s, %v", data, err)
	}

	// Non-XML payloads embed as text.
	csvData := []byte("a:INTEGER\n1\n2\n")
	e = datasetElement("urn:fmt:csv", csvData)
	if len(e.ChildElements()) != 0 {
		t.Fatal("csv should be text content")
	}
	data, _ = DatasetPayload(e)
	if string(data) != string(csvData) {
		t.Fatalf("payload = %q", data)
	}

	// Survives a SOAP round trip.
	env := soap.NewEnvelope(e)
	parsed, err := soap.ParseEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	data, _ = DatasetPayload(parsed.BodyEntry())
	if string(data) != string(csvData) {
		t.Fatalf("after soap: %q", data)
	}
	if d, f := DatasetPayload(nil); d != nil || f != "" {
		t.Fatal("nil dataset should be empty")
	}
}

func TestFaultMappingRoundTrip(t *testing.T) {
	faults := []error{
		&core.InvalidResourceNameFault{Name: "urn:x"},
		&core.InvalidLanguageFault{Language: "urn:lang"},
		&core.InvalidDatasetFormatFault{Format: "urn:fmt"},
		&core.NotAuthorizedFault{Reason: "nope"},
		&core.InvalidExpressionFault{Detail: "bad sql"},
		&core.ServiceBusyFault{},
	}
	for _, in := range faults {
		sf := ToSOAPFault(in)
		// Simulate the wire: marshal the fault into an envelope.
		env := soap.NewEnvelope(sf.Element())
		parsed, err := soap.ParseEnvelope(env.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		wireFault, ok := soap.AsFault(parsed.BodyEntry())
		if !ok {
			t.Fatal("fault lost on the wire")
		}
		out := DecodeFault(wireFault)
		if core.FaultName(out) != core.FaultName(in) {
			t.Errorf("fault %T decoded as %T", in, out)
		}
	}
	// Typed payloads survive.
	out := DecodeFault(mustWireFault(t, &core.InvalidResourceNameFault{Name: "urn:exact"}))
	var irf *core.InvalidResourceNameFault
	if !errors.As(out, &irf) || irf.Name != "urn:exact" {
		t.Fatalf("decoded = %+v", out)
	}
	// Non-fault errors pass through.
	plain := errors.New("plain")
	if DecodeFault(plain) != plain {
		t.Fatal("plain error mangled")
	}
	// Untyped server faults stay SOAP faults.
	sf := ToSOAPFault(errors.New("boom"))
	if sf.Code != "Server" {
		t.Fatalf("code = %s", sf.Code)
	}
}

func mustWireFault(t *testing.T, in error) *soap.Fault {
	t.Helper()
	env := soap.NewEnvelope(ToSOAPFault(in).Element())
	parsed, err := soap.ParseEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	f, ok := soap.AsFault(parsed.BodyEntry())
	if !ok {
		t.Fatal("not a fault")
	}
	return f
}

func TestQNameHelpers(t *testing.T) {
	if localOfQName("dair:SQLAccess") != "SQLAccess" {
		t.Fatal("prefixed")
	}
	if localOfQName("Plain") != "Plain" {
		t.Fatal("bare")
	}
	cases := map[string]string{
		"Readable":           NSDAI,
		"dair:NumberOfRows":  NSDAIR,
		"daix:NumberOfItems": NSDAIX,
		"wsrl:CurrentTime":   wsrf.NSRL,
	}
	for in, want := range cases {
		if got := nsOfProperty(in); got != want {
			t.Errorf("nsOfProperty(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSQLExpressionRoundTrip(t *testing.T) {
	req := xmlutil.NewElement(NSDAIR, "SQLExecuteRequest")
	params := []sqlengine.Value{
		sqlengine.NewInt(42),
		sqlengine.NewString("hello"),
		sqlengine.Null,
		sqlengine.NewDouble(2.5),
		sqlengine.NewBool(true),
	}
	AddSQLExpression(req, "SELECT * FROM t WHERE a = ? AND b = ?", params)
	// Through the wire.
	parsed, err := xmlutil.ParseString(xmlutil.MarshalString(req))
	if err != nil {
		t.Fatal(err)
	}
	expr, got, err := ParseSQLExpression(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if expr != "SELECT * FROM t WHERE a = ? AND b = ?" {
		t.Fatalf("expr = %q", expr)
	}
	if len(got) != len(params) {
		t.Fatalf("params = %d", len(got))
	}
	for i := range params {
		if params[i].IsNull() != got[i].IsNull() {
			t.Fatalf("param %d null mismatch", i)
		}
		if !params[i].IsNull() && params[i].String() != got[i].String() {
			t.Fatalf("param %d: %q != %q", i, got[i].String(), params[i].String())
		}
		if !params[i].IsNull() && params[i].Type != got[i].Type {
			t.Fatalf("param %d type: %v != %v", i, got[i].Type, params[i].Type)
		}
	}
}

func TestParseSQLExpressionErrors(t *testing.T) {
	req := xmlutil.NewElement(NSDAIR, "SQLExecuteRequest")
	if _, _, err := ParseSQLExpression(req); err == nil {
		t.Fatal("missing SQLExpression")
	}
	se := req.Add(NSDAIR, "SQLExpression")
	if _, _, err := ParseSQLExpression(req); err == nil {
		t.Fatal("missing Expression")
	}
	se.AddText(NSDAIR, "Expression", "SELECT 1")
	p := se.Add(NSDAIR, "Parameter")
	p.SetAttr("", "type", "INTEGER")
	p.SetText("not-a-number")
	if _, _, err := ParseSQLExpression(req); err == nil {
		t.Fatal("bad parameter should fail")
	}
}

func TestAbstractNameOf(t *testing.T) {
	if _, err := AbstractNameOf(nil); err == nil {
		t.Fatal("nil body")
	}
	body := xmlutil.NewElement(NSDAIR, "SQLExecuteRequest")
	if _, err := AbstractNameOf(body); err == nil {
		t.Fatal("missing name")
	}
	body.AddText(NSDAI, "DataResourceAbstractName", "urn:r")
	name, err := AbstractNameOf(body)
	if err != nil || name != "urn:r" {
		t.Fatalf("name = %q, %v", name, err)
	}
}

func TestNewRequestShape(t *testing.T) {
	req := NewRequest(NSDAIR, "GetTuplesRequest", "urn:abc")
	if req.Name.Space != NSDAIR || req.Name.Local != "GetTuplesRequest" {
		t.Fatalf("name = %v", req.Name)
	}
	if req.FindText(NSDAI, "DataResourceAbstractName") != "urn:abc" {
		t.Fatal("abstract name missing")
	}
}
