package service

import (
	"context"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/soap"
	"dais/internal/wsaddr"
	"dais/internal/xmlutil"
)

// bind registers one operation spec with the endpoint: it gates on the
// spec's interface class, records the spec in the registry (the WSDL
// source), and wraps the body-level handler with the envelope plumbing —
// operation metadata on the context, the ConcurrentAccess gate, fault
// mapping and WS-Addressing reply headers.
func (e *Endpoint) bind(spec ops.Spec, f func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error)) {
	if spec.Iface != 0 && !e.has(spec.Iface) {
		return
	}
	e.registry.Add(spec)
	e.soapSrv.Handle(spec.Action, func(ctx context.Context, _ string, env *soap.Envelope) (*soap.Envelope, error) {
		body := env.BodyEntry()
		if body == nil {
			return nil, soap.ClientFault("empty SOAP body")
		}
		ctx = ops.WithCallInfo(ctx, spec.Info())
		release, err := e.svc.Enter(ctx)
		if err != nil {
			return nil, ToSOAPFault(err)
		}
		resp, err := f(ctx, body)
		release()
		if err != nil {
			return nil, ToSOAPFault(ctxFault(ctx, err))
		}
		out := soap.NewEnvelope(resp)
		req := wsaddr.FromEnvelope(env)
		wsaddr.ReplyHeaders(req, spec.Action+"Response").Attach(out)
		return out, nil
	})
}

// reqMsg constrains a request pointer type to the service-side codec.
type reqMsg[R any] interface {
	*R
	Decode(spec ops.Spec, body *xmlutil.Element) error
}

// decodeFault maps request-decode errors to faults: typed faults pass
// through, anything else is a malformed request.
func decodeFault(err error) error {
	if core.FaultName(err) != "" {
		return err
	}
	return &core.InvalidExpressionFault{Detail: err.Error()}
}

// handleOp binds a spec to typed business logic: the central dispatch
// extracts the abstract name (the paper's §3 framing rule), resolves it
// to the spec's resource kind with the canonical type fault, and
// decodes the request message — the handler receives an
// already-resolved resource and an already-decoded request.
func handleOp[T core.DataResource, R any, PR reqMsg[R]](e *Endpoint, spec ops.Spec,
	f func(ctx context.Context, res T, req *R) (*xmlutil.Element, error)) {
	e.bind(spec, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		res, err := ops.Resolve[T](e.svc, name, spec.Resource)
		if err != nil {
			return nil, err
		}
		req := PR(new(R))
		if err := req.Decode(spec, body); err != nil {
			return nil, decodeFault(err)
		}
		return f(ctx, res, (*R)(req))
	})
}

// handleFactory is handleOp for the indirect access pattern (paper
// Fig. 3): the run function derives a new resource on the factory
// target, and the shared tail registers it with WSRF and wraps its EPR
// in the spec's response.
func handleFactory[T core.DataResource, R any, PR reqMsg[R]](e *Endpoint, spec ops.Spec,
	run func(ctx context.Context, res T, req *R, target *core.DataService) (core.DataResource, error)) {
	handleOp[T, R, PR](e, spec, func(ctx context.Context, res T, req *R) (*xmlutil.Element, error) {
		derived, err := run(ctx, res, req, e.target.svc)
		if err != nil {
			return nil, err
		}
		e.target.trackDerived(derived)
		resp := spec.NewResponse()
		ops.AddResourceAddress(resp, e.target.EPRFor(derived.AbstractName()))
		return resp, nil
	})
}

// handleNamed binds a spec whose handler consumes the raw body after
// the central dispatch has extracted the abstract name (the WSRF
// operations, whose message shapes are OASIS-defined rather than
// ops-defined).
func (e *Endpoint) handleNamed(spec ops.Spec,
	f func(ctx context.Context, name string, body *xmlutil.Element) (*xmlutil.Element, error)) {
	e.bind(spec, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		return f(ctx, name, body)
	})
}
