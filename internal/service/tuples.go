package service

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/ops"
	"dais/internal/rowset"
	"dais/internal/telemetry"
)

// Metric names for the streaming rowset delivery pipeline. They are
// bound here rather than in internal/rowset because rowset sits below
// telemetry in the import graph (telemetry → ops → dair → rowset); the
// buffer takes callbacks, and this is the one place that connects them
// to a registry — the same split resil uses for its shed observer.
const (
	// MetricRowsetRows counts rows produced into streaming rowset
	// buffers.
	MetricRowsetRows = "dais_rowset_rows_total"
	// MetricRowsetSpillBytes counts bytes spilled from rowset buffers
	// to the filestore.
	MetricRowsetSpillBytes = "dais_rowset_spill_bytes_total"
	// MetricRowsetBufferDepth gauges memory-resident rows across all
	// live streaming rowset buffers.
	MetricRowsetBufferDepth = "dais_rowset_buffer_depth_rows"
)

// RowsetStreamHooks binds the rowset buffer's observation callbacks to
// a telemetry registry. Pass the result in the rowset.BufferConfig
// given to dair.WithStreamDelivery. A nil registry yields no-op hooks.
func RowsetStreamHooks(reg *telemetry.Registry) rowset.Hooks {
	if reg == nil {
		return rowset.Hooks{}
	}
	rows := reg.NewCounterVec(MetricRowsetRows,
		"Rows produced into streaming rowset buffers.").With()
	spill := reg.NewCounterVec(MetricRowsetSpillBytes,
		"Bytes spilled from streaming rowset buffers to the filestore.").With()
	depth := reg.NewGaugeVec(MetricRowsetBufferDepth,
		"Memory-resident rows across live streaming rowset buffers.").With()
	return rowset.Hooks{
		RowsProduced: func(n int) { rows.Add(int64(n)) },
		SpilledBytes: func(n int64) { spill.Add(n) },
		BufferDepth:  func(delta int) { depth.Add(int64(delta)) },
	}
}

// normalizeTuplesWindow resolves a wire-level GetTuples request into a
// concrete (start, count) window, handling every edge case once at the
// service boundary instead of per codec:
//
//   - negative Count is a fault — the consumer asked for nonsense
//   - Count zero stays zero: an empty page in the resource's format
//   - StartPosition below 1 clamps to 1 (WS-DAIR positions are 1-based)
//   - an absent Count means "everything from StartPosition on", which
//     for a streaming resource waits until the total is known
//   - a start past the end yields an empty page, and a window
//     overlapping the still-producing tail blocks until the rows exist
//     (both resolved downstream by the shared window clamp; the wait is
//     bounded by the request context)
func normalizeTuplesWindow(ctx context.Context, res *dair.SQLRowsetResource, req *ops.PageMsg) (start, count int, err error) {
	if req.HasCount && req.Count < 0 {
		return 0, 0, &core.InvalidExpressionFault{
			Detail: fmt.Sprintf("GetTuples: negative Count %d", req.Count),
		}
	}
	start = req.Start
	if start < 1 {
		start = 1
	}
	count = req.Count
	if !req.HasCount {
		n, err := res.FinalRowCount(ctx)
		if err != nil {
			return 0, 0, err
		}
		count = n - (start - 1)
		if count < 0 {
			count = 0
		}
	}
	return start, count, nil
}
