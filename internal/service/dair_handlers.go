package service

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/rowset"
	"dais/internal/xmlutil"
)

// resolveSQL resolves an abstract name to a relational base resource.
func (e *Endpoint) resolveSQL(name string) (*dair.SQLDataResource, error) {
	r, err := e.svc.Resolve(name)
	if err != nil {
		return nil, err
	}
	sr, ok := r.(*dair.SQLDataResource)
	if !ok {
		return nil, typeFault(name, "SQL")
	}
	return sr, nil
}

// resolveResponse resolves an abstract name to an SQLResponse resource.
func (e *Endpoint) resolveResponse(name string) (*dair.SQLResponseResource, error) {
	r, err := e.svc.Resolve(name)
	if err != nil {
		return nil, err
	}
	rr, ok := r.(*dair.SQLResponseResource)
	if !ok {
		return nil, typeFault(name, "SQLResponse")
	}
	return rr, nil
}

// resolveRowset resolves an abstract name to an SQLRowset resource.
func (e *Endpoint) resolveRowset(name string) (*dair.SQLRowsetResource, error) {
	r, err := e.svc.Resolve(name)
	if err != nil {
		return nil, err
	}
	rr, ok := r.(*dair.SQLRowsetResource)
	if !ok {
		return nil, typeFault(name, "SQLRowset")
	}
	return rr, nil
}

// registerDAIR wires the WS-DAIR operations.
func (e *Endpoint) registerDAIR() {
	// SQLAccess.SQLExecute — the direct data access pattern of Fig. 2:
	// the data comes back in the response, in the requested format,
	// with the SQL communication area alongside.
	e.handle(SQLAccess, ActSQLExecute, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		res, err := e.resolveSQL(name)
		if err != nil {
			return nil, err
		}
		expr, params, err := ParseSQLExpression(body)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		formatURI := body.FindText(NSDAI, "DatasetFormatURI")
		codec, err := res.Formats().Lookup(formatURI)
		if err != nil {
			return nil, &core.InvalidDatasetFormatFault{Format: formatURI}
		}
		data, err := res.SQLExecute(ctx, expr, params)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "SQLExecuteResponse")
		if rs := data.FirstRowset(); rs != nil {
			encoded, err := codec.Encode(rs)
			if err != nil {
				return nil, err
			}
			resp.AppendChild(datasetElement(codec.FormatURI(), encoded))
		} else {
			resp.AddText(NSDAIR, "UpdateCount", fmt.Sprintf("%d", data.UpdateCount()))
		}
		resp.AppendChild(data.CommunicationAreaElement())
		return resp, nil
	})

	// SQLAccess.GetSQLPropertyDocument.
	e.handle(SQLAccess, ActGetSQLPropertyDoc, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		if _, err := e.resolveSQL(name); err != nil {
			return nil, err
		}
		doc, err := e.svc.GetDataResourcePropertyDocument(name)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "GetSQLPropertyDocumentResponse")
		resp.AppendChild(doc)
		return resp, nil
	})

	// SQLFactory.SQLExecuteFactory — the indirect pattern of Fig. 3:
	// the response carries an EPR to the derived SQLResponse resource.
	e.handle(SQLFactory, ActSQLExecuteFactory, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		res, err := e.resolveSQL(name)
		if err != nil {
			return nil, err
		}
		expr, params, err := ParseSQLExpression(body)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		cfg, err := core.ParseConfiguration(body.Find(NSDAI, "ConfigurationDocument"))
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		derived, err := dair.SQLExecuteFactory(ctx, res, e.target.svc, expr, params, &cfg)
		if err != nil {
			return nil, err
		}
		e.target.trackDerived(derived)
		resp := xmlutil.NewElement(NSDAIR, "SQLExecuteFactoryResponse")
		resp.AppendChild(e.target.EPRFor(derived.AbstractName()).Element(NSDAI, "DataResourceAddress"))
		return resp, nil
	})

	// ResponseAccess operations.
	e.handle(SQLResponseAccess, ActGetSQLRowset, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		rr, err := e.resolveResponse(name)
		if err != nil {
			return nil, err
		}
		idx, err := intChild(body, NSDAIR, "Index", 0)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		set, err := rr.GetSQLRowset(idx)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "GetSQLRowsetResponse")
		resp.AppendChild(rowset.SQLRowsetElement(set))
		return resp, nil
	})
	e.handle(SQLResponseAccess, ActGetSQLUpdateCount, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		rr, err := e.resolveResponse(name)
		if err != nil {
			return nil, err
		}
		idx, err := intChild(body, NSDAIR, "Index", 0)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		n, err := rr.GetSQLUpdateCount(idx)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "GetSQLUpdateCountResponse")
		resp.AddText(NSDAIR, "UpdateCount", fmt.Sprintf("%d", n))
		return resp, nil
	})
	e.handle(SQLResponseAccess, ActGetSQLCommArea, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		rr, err := e.resolveResponse(name)
		if err != nil {
			return nil, err
		}
		data := &dair.SQLResponseData{CA: rr.GetSQLCommunicationArea()}
		resp := xmlutil.NewElement(NSDAIR, "GetSQLCommunicationAreaResponse")
		resp.AppendChild(data.CommunicationAreaElement())
		return resp, nil
	})
	e.handle(SQLResponseAccess, ActGetSQLReturnValue, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		rr, err := e.resolveResponse(name)
		if err != nil {
			return nil, err
		}
		v, err := rr.GetSQLReturnValue()
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "GetSQLReturnValueResponse")
		resp.AddText(NSDAIR, "Value", v.String())
		return resp, nil
	})
	e.handle(SQLResponseAccess, ActGetSQLOutputParameter, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		rr, err := e.resolveResponse(name)
		if err != nil {
			return nil, err
		}
		v, err := rr.GetSQLOutputParameter(body.FindText(NSDAIR, "ParameterName"))
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "GetSQLOutputParameterResponse")
		resp.AddText(NSDAIR, "Value", v.String())
		return resp, nil
	})
	e.handle(SQLResponseAccess, ActGetSQLResponseItem, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		rr, err := e.resolveResponse(name)
		if err != nil {
			return nil, err
		}
		idx, err := intChild(body, NSDAIR, "Index", 0)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		item, err := rr.GetSQLResponseItem(idx)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "GetSQLResponseItemResponse")
		switch item.Kind {
		case dair.ItemRowset:
			resp.AppendChild(rowset.SQLRowsetElement(item.Rowset))
		case dair.ItemUpdateCount:
			resp.AddText(NSDAIR, "UpdateCount", fmt.Sprintf("%d", item.UpdateCount))
		default:
			resp.AddText(NSDAIR, "Value", item.Value.String())
		}
		return resp, nil
	})
	e.handle(SQLResponseAccess, ActGetSQLResponsePropDoc, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		if _, err := e.resolveResponse(name); err != nil {
			return nil, err
		}
		doc, err := e.svc.GetDataResourcePropertyDocument(name)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "GetSQLResponsePropertyDocumentResponse")
		resp.AppendChild(doc)
		return resp, nil
	})

	// ResponseFactory.SQLRowsetFactory — the second hop of Fig. 5.
	e.handle(SQLResponseFactory, ActSQLRowsetFactory, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		rr, err := e.resolveResponse(name)
		if err != nil {
			return nil, err
		}
		formatURI := body.FindText(NSDAI, "DatasetFormatURI")
		count, err := intChild(body, NSDAIR, "Count", 0)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		cfg, err := core.ParseConfiguration(body.Find(NSDAI, "ConfigurationDocument"))
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		derived, err := dair.SQLRowsetFactory(ctx, rr, e.target.svc, formatURI, count, &cfg)
		if err != nil {
			return nil, err
		}
		e.target.trackDerived(derived)
		resp := xmlutil.NewElement(NSDAIR, "SQLRowsetFactoryResponse")
		resp.AppendChild(e.target.EPRFor(derived.AbstractName()).Element(NSDAI, "DataResourceAddress"))
		return resp, nil
	})

	// RowsetAccess operations — the third hop of Fig. 5.
	e.handle(SQLRowsetAccess, ActGetTuples, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		rr, err := e.resolveRowset(name)
		if err != nil {
			return nil, err
		}
		start, err := intChild(body, NSDAIR, "StartPosition", 1)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		count, err := intChild(body, NSDAIR, "Count", rr.RowCount())
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		data, err := rr.GetTuples(start, count)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "GetTuplesResponse")
		resp.AppendChild(datasetElement(rr.FormatURI(), data))
		return resp, nil
	})
	e.handle(SQLRowsetAccess, ActGetRowsetPropDoc, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		if _, err := e.resolveRowset(name); err != nil {
			return nil, err
		}
		doc, err := e.svc.GetDataResourcePropertyDocument(name)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIR, "GetRowsetPropertyDocumentResponse")
		resp.AppendChild(doc)
		return resp, nil
	})
}

// trackDerived registers a factory-created resource with the endpoint's
// WSRF registry (the factory already registered it with the data
// service).
func (e *Endpoint) trackDerived(r core.DataResource) {
	if e.wsrfReg != nil {
		e.wsrfReg.Add(r.AbstractName(), &propertyResource{svc: e.svc, res: r})
	}
}
