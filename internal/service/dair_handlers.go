package service

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/ops"
	"dais/internal/rowset"
	"dais/internal/xmlutil"
)

// propertyDocResponse shares the realisation-specific property document
// getters: the document is the WS-DAI one, wrapped in the operation's
// own response element.
func (e *Endpoint) propertyDocResponse(spec ops.Spec, name string) (*xmlutil.Element, error) {
	doc, err := e.svc.GetDataResourcePropertyDocument(name)
	if err != nil {
		return nil, err
	}
	resp := spec.NewResponse()
	resp.AppendChild(doc)
	return resp, nil
}

// registerDAIR wires the WS-DAIR operations from their catalog specs.
func (e *Endpoint) registerDAIR() {
	// SQLAccess.SQLExecute — the direct data access pattern of Fig. 2:
	// the data comes back in the response, in the requested format,
	// with the SQL communication area alongside.
	handleOp(e, ops.SQLExecute, func(ctx context.Context, res *dair.SQLDataResource, req *ops.SQLExecuteMsg) (*xmlutil.Element, error) {
		codec, err := res.Formats().Lookup(req.FormatURI)
		if err != nil {
			return nil, &core.InvalidDatasetFormatFault{Format: req.FormatURI}
		}
		data, err := res.SQLExecute(ctx, req.Expr.Expression, req.Expr.Params)
		if err != nil {
			return nil, err
		}
		resp := ops.SQLExecute.NewResponse()
		if rs := data.FirstRowset(); rs != nil {
			encoded, err := codec.Encode(rs)
			if err != nil {
				return nil, err
			}
			resp.AppendChild(datasetElement(codec.FormatURI(), encoded))
		} else {
			resp.AddText(NSDAIR, "UpdateCount", fmt.Sprintf("%d", data.UpdateCount()))
		}
		resp.AppendChild(data.CommunicationAreaElement())
		return resp, nil
	})

	handleOp(e, ops.GetSQLPropertyDocument, func(ctx context.Context, res *dair.SQLDataResource, _ *ops.Empty) (*xmlutil.Element, error) {
		return e.propertyDocResponse(ops.GetSQLPropertyDocument, res.AbstractName())
	})

	// SQLFactory.SQLExecuteFactory — the indirect pattern of Fig. 3:
	// the response carries an EPR to the derived SQLResponse resource.
	handleFactory(e, ops.SQLExecuteFactory, func(ctx context.Context, res *dair.SQLDataResource, req *ops.SQLFactoryMsg, target *core.DataService) (core.DataResource, error) {
		derived, err := dair.SQLExecuteFactory(ctx, res, target, req.Expr.Expression, req.Expr.Params, req.Config)
		if err != nil {
			return nil, err
		}
		return derived, nil
	})

	// ResponseAccess operations.
	handleOp(e, ops.GetSQLRowset, func(ctx context.Context, res *dair.SQLResponseResource, req *ops.IndexMsg) (*xmlutil.Element, error) {
		set, err := res.GetSQLRowset(req.Index)
		if err != nil {
			return nil, err
		}
		resp := ops.GetSQLRowset.NewResponse()
		resp.AppendChild(rowset.SQLRowsetElement(set))
		return resp, nil
	})
	handleOp(e, ops.GetSQLUpdateCount, func(ctx context.Context, res *dair.SQLResponseResource, req *ops.IndexMsg) (*xmlutil.Element, error) {
		n, err := res.GetSQLUpdateCount(req.Index)
		if err != nil {
			return nil, err
		}
		resp := ops.GetSQLUpdateCount.NewResponse()
		resp.AddText(NSDAIR, "UpdateCount", fmt.Sprintf("%d", n))
		return resp, nil
	})
	handleOp(e, ops.GetSQLCommunicationArea, func(ctx context.Context, res *dair.SQLResponseResource, _ *ops.Empty) (*xmlutil.Element, error) {
		data := &dair.SQLResponseData{CA: res.GetSQLCommunicationArea()}
		resp := ops.GetSQLCommunicationArea.NewResponse()
		resp.AppendChild(data.CommunicationAreaElement())
		return resp, nil
	})
	handleOp(e, ops.GetSQLReturnValue, func(ctx context.Context, res *dair.SQLResponseResource, _ *ops.Empty) (*xmlutil.Element, error) {
		v, err := res.GetSQLReturnValue()
		if err != nil {
			return nil, err
		}
		resp := ops.GetSQLReturnValue.NewResponse()
		resp.AddText(NSDAIR, "Value", v.String())
		return resp, nil
	})
	handleOp(e, ops.GetSQLOutputParameter, func(ctx context.Context, res *dair.SQLResponseResource, req *ops.ParamMsg) (*xmlutil.Element, error) {
		v, err := res.GetSQLOutputParameter(req.ParameterName)
		if err != nil {
			return nil, err
		}
		resp := ops.GetSQLOutputParameter.NewResponse()
		resp.AddText(NSDAIR, "Value", v.String())
		return resp, nil
	})
	handleOp(e, ops.GetSQLResponseItem, func(ctx context.Context, res *dair.SQLResponseResource, req *ops.IndexMsg) (*xmlutil.Element, error) {
		item, err := res.GetSQLResponseItem(req.Index)
		if err != nil {
			return nil, err
		}
		resp := ops.GetSQLResponseItem.NewResponse()
		switch item.Kind {
		case dair.ItemRowset:
			resp.AppendChild(rowset.SQLRowsetElement(item.Rowset))
		case dair.ItemUpdateCount:
			resp.AddText(NSDAIR, "UpdateCount", fmt.Sprintf("%d", item.UpdateCount))
		default:
			resp.AddText(NSDAIR, "Value", item.Value.String())
		}
		return resp, nil
	})
	handleOp(e, ops.GetSQLResponsePropertyDocument, func(ctx context.Context, res *dair.SQLResponseResource, _ *ops.Empty) (*xmlutil.Element, error) {
		return e.propertyDocResponse(ops.GetSQLResponsePropertyDocument, res.AbstractName())
	})

	// ResponseFactory.SQLRowsetFactory — the second hop of Fig. 5.
	handleFactory(e, ops.SQLRowsetFactory, func(ctx context.Context, res *dair.SQLResponseResource, req *ops.RowsetFactoryMsg, target *core.DataService) (core.DataResource, error) {
		derived, err := dair.SQLRowsetFactory(ctx, res, target, req.FormatURI, req.Count, req.Config)
		if err != nil {
			return nil, err
		}
		return derived, nil
	})

	// RowsetAccess operations — the third hop of Fig. 5.
	handleOp(e, ops.GetTuples, func(ctx context.Context, res *dair.SQLRowsetResource, req *ops.PageMsg) (*xmlutil.Element, error) {
		start, count, err := normalizeTuplesWindow(ctx, res, req)
		if err != nil {
			return nil, err
		}
		data, err := res.GetTuples(ctx, start, count)
		if err != nil {
			return nil, err
		}
		resp := ops.GetTuples.NewResponse()
		resp.AppendChild(datasetElement(res.FormatURI(), data))
		return resp, nil
	})
	handleOp(e, ops.GetRowsetPropertyDocument, func(ctx context.Context, res *dair.SQLRowsetResource, _ *ops.Empty) (*xmlutil.Element, error) {
		return e.propertyDocResponse(ops.GetRowsetPropertyDocument, res.AbstractName())
	})
}
