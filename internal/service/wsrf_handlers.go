package service

import (
	"context"
	"time"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/wsrf"
	"dais/internal/xmlutil"
)

// registerWSRF wires the WS-ResourceProperties and WS-ResourceLifetime
// operations when the WSRF layer is enabled. Per the paper's §5 caveat,
// every WSRF request still carries the data resource abstract name in
// the SOAP body ("you still require the data resource abstract name to
// be included in the message body even if it is only for a WSRF
// implementation to ignore it") — here the service actually uses it to
// select the WS-Resource. The central dispatch extracts the name; the
// handlers receive it along with the OASIS-shaped body.
func (e *Endpoint) registerWSRF() {
	if e.wsrfReg == nil {
		return
	}
	reg := e.wsrfReg

	e.handleNamed(ops.GetResourceProperty, func(ctx context.Context, name string, body *xmlutil.Element) (*xmlutil.Element, error) {
		qname := body.FindText(wsrf.NSRP, "ResourceProperty")
		if qname == "" {
			return nil, &core.InvalidExpressionFault{Detail: "GetResourceProperty requires a ResourceProperty QName"}
		}
		props, err := reg.GetResourceProperty(name, nsOfProperty(qname), localOfQName(qname))
		if err != nil {
			return nil, wsrfErr(err)
		}
		resp := ops.GetResourceProperty.NewResponse()
		for _, p := range props {
			resp.AppendChild(p)
		}
		return resp, nil
	})

	e.handleNamed(ops.GetMultipleResourceProperties, func(ctx context.Context, name string, body *xmlutil.Element) (*xmlutil.Element, error) {
		var names []xmlutil.Name
		for _, el := range body.FindAll(wsrf.NSRP, "ResourceProperty") {
			q := el.Text()
			names = append(names, xmlutil.Name{Space: nsOfProperty(q), Local: localOfQName(q)})
		}
		props, err := reg.GetMultipleResourceProperties(name, names)
		if err != nil {
			return nil, wsrfErr(err)
		}
		resp := ops.GetMultipleResourceProperties.NewResponse()
		for _, p := range props {
			resp.AppendChild(p)
		}
		return resp, nil
	})

	e.handleNamed(ops.QueryResourceProperties, func(ctx context.Context, name string, body *xmlutil.Element) (*xmlutil.Element, error) {
		expr := body.FindText(wsrf.NSRP, "QueryExpression")
		if expr == "" {
			return nil, &core.InvalidExpressionFault{Detail: "QueryResourceProperties requires a QueryExpression"}
		}
		nodes, err := reg.QueryResourceProperties(name, expr)
		if err != nil {
			return nil, wsrfErr(err)
		}
		resp := ops.QueryResourceProperties.NewResponse()
		for _, n := range nodes {
			resp.AppendChild(n)
		}
		return resp, nil
	})

	e.handleNamed(ops.SetResourceProperties, func(ctx context.Context, name string, body *xmlutil.Element) (*xmlutil.Element, error) {
		res, err := e.svc.Resolve(name)
		if err != nil {
			return nil, err
		}
		cfgRes, ok := res.(core.Configurable)
		if !ok {
			return nil, &core.NotAuthorizedFault{Reason: "resource properties are not updatable"}
		}
		update := body.Find(wsrf.NSRP, "Update")
		if update == nil {
			return nil, &core.InvalidExpressionFault{Detail: "SetResourceProperties requires an Update element"}
		}
		var applyErr error
		cfgRes.UpdateConfiguration(func(c *core.Configuration) {
			for _, p := range update.ChildElements() {
				switch p.Name.Local {
				case "DataResourceDescription":
					c.Description = p.Text()
				case "Readable":
					b, err := core.ParseConfiguration(wrapConfig(p))
					if err != nil {
						applyErr = err
						return
					}
					c.Readable = b.Readable
				case "Writeable":
					b, err := core.ParseConfiguration(wrapConfig(p))
					if err != nil {
						applyErr = err
						return
					}
					c.Writeable = b.Writeable
				case "Sensitivity":
					sv, err := core.ParseSensitivity(p.Text())
					if err != nil {
						applyErr = err
						return
					}
					c.Sensitivity = sv
				case "TransactionIsolation":
					c.TransactionIsolation = p.Text()
				case "TransactionInitiation":
					ti, err := core.ParseTransactionInitiation(p.Text())
					if err != nil {
						applyErr = err
						return
					}
					c.TransactionInitiation = ti
				default:
					applyErr = &core.InvalidExpressionFault{
						Detail: "property " + p.Name.Local + " is not updatable"}
					return
				}
			}
		})
		if applyErr != nil {
			if core.FaultName(applyErr) != "" {
				return nil, applyErr
			}
			return nil, &core.InvalidExpressionFault{Detail: applyErr.Error()}
		}
		// A property write may change anything the cached document
		// fragment captured at build time; drop it so the next
		// GetDataResourcePropertyDocument rebuilds from live state.
		e.svc.InvalidatePropertyDocument(name)
		return ops.SetResourceProperties.NewResponse(), nil
	})

	e.handleNamed(ops.SetTerminationTime, func(ctx context.Context, name string, body *xmlutil.Element) (*xmlutil.Element, error) {
		var requested *time.Time
		rtt := body.Find(wsrf.NSRL, "RequestedTerminationTime")
		if rtt != nil && rtt.AttrValue("", "nil") != "true" {
			t, err := time.Parse(time.RFC3339Nano, rtt.Text())
			if err != nil {
				return nil, &core.InvalidExpressionFault{Detail: "bad RequestedTerminationTime: " + err.Error()}
			}
			requested = &t
		}
		newTT, current, err := reg.SetTerminationTime(name, requested)
		if err != nil {
			return nil, wsrfErr(err)
		}
		resp := ops.SetTerminationTime.NewResponse()
		nt := resp.Add(wsrf.NSRL, "NewTerminationTime")
		if newTT == nil {
			nt.SetAttr("", "nil", "true")
		} else {
			nt.SetText(newTT.UTC().Format(time.RFC3339Nano))
		}
		resp.AddText(wsrf.NSRL, "CurrentTime", current.UTC().Format(time.RFC3339Nano))
		return resp, nil
	})

	e.handleNamed(ops.WSRFDestroy, func(ctx context.Context, name string, body *xmlutil.Element) (*xmlutil.Element, error) {
		if err := reg.Destroy(name); err != nil {
			return nil, wsrfErr(err)
		}
		return ops.WSRFDestroy.NewResponse(), nil
	})
}

// wrapConfig wraps a single property element in a ConfigurationDocument
// so the shared core parser can validate it.
func wrapConfig(p *xmlutil.Element) *xmlutil.Element {
	doc := xmlutil.NewElement(NSDAI, "ConfigurationDocument")
	cp := xmlutil.NewElement(NSDAI, p.Name.Local)
	cp.SetText(p.Text())
	doc.AppendChild(cp)
	return doc
}

// wsrfErr maps registry errors to DAIS faults.
func wsrfErr(err error) error {
	if _, ok := err.(*wsrf.UnknownResourceError); ok {
		return &core.InvalidResourceNameFault{Name: err.Error()}
	}
	if core.FaultName(err) != "" {
		return err
	}
	return &core.InvalidExpressionFault{Detail: err.Error()}
}

// nsOfProperty resolves the namespace for a property QName: DAIS
// properties live in NSDAI; prefixed names select the realisation or
// lifetime namespaces.
func nsOfProperty(q string) string {
	switch {
	case len(q) > 5 && q[:5] == "dair:":
		return NSDAIR
	case len(q) > 5 && q[:5] == "daix:":
		return NSDAIX
	case len(q) > 5 && q[:5] == "wsrl:":
		return wsrf.NSRL
	}
	return NSDAI
}
