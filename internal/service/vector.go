package service

import (
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
)

// Metric names for the engine's columnar execution core. Bound here for
// the same reason as the plan-cache metrics: sqlengine sits below
// telemetry in the import graph, so the service layer is the one place
// that connects engine counters to a registry.
const (
	// MetricVectorBatches counts column chunks evaluated by vectorised
	// kernels (chunks skipped via zone maps are not included).
	MetricVectorBatches = "dais_vector_batches_total"
	// MetricVectorChunksSkipped counts column chunks skipped entirely
	// because their zone maps proved no row could match the predicate.
	MetricVectorChunksSkipped = "dais_vector_chunks_skipped_total"
)

// RegisterVectorMetrics exposes an engine's columnar-execution counters
// on the registry as scrape-time samples, labelled with the engine
// (database) name. A nil registry or engine is a no-op.
func RegisterVectorMetrics(reg *telemetry.Registry, eng *sqlengine.Engine) {
	if reg == nil || eng == nil {
		return
	}
	labels := map[string]string{"engine": eng.Database().Name()}
	reg.RegisterCollector(func(emit func(telemetry.Sample)) {
		stats := eng.VectorStats()
		emit(telemetry.Sample{Name: MetricVectorBatches, Labels: labels, Value: float64(stats.Batches)})
		emit(telemetry.Sample{Name: MetricVectorChunksSkipped, Labels: labels, Value: float64(stats.ChunksSkipped)})
	})
}
