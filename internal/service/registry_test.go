package service_test

import (
	"context"
	"strings"
	"testing"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/service"
	"dais/internal/xmlutil"
)

// TestRegistryCoversCatalog checks the endpoint registers exactly the
// declarative catalog: a full endpoint (all interface classes plus the
// WSRF layer) exposes every spec, each under its unique wsa:Action.
func TestRegistryCoversCatalog(t *testing.T) {
	svc := core.NewDataService("full")
	ep := service.NewEndpoint(svc, service.WithWSRF())

	registered := map[string]bool{}
	for _, s := range ep.Operations() {
		if registered[s.Action] {
			t.Errorf("action %q registered twice", s.Action)
		}
		registered[s.Action] = true
	}
	for _, s := range ops.Catalog() {
		if !registered[s.Action] {
			t.Errorf("catalog spec %s (%s) is not registered", s.Op, s.Action)
		}
	}
	if got, want := len(ep.Operations()), len(ops.Catalog()); got != want {
		t.Errorf("endpoint registers %d operations, catalog declares %d", got, want)
	}
}

// TestRegistryGatesInterfaces checks a restricted endpoint registers
// only the specs whose interface class is enabled (the paper's §4.3
// composability: "the proposed interfaces may be used in isolation or
// in conjunction with others").
func TestRegistryGatesInterfaces(t *testing.T) {
	svc := core.NewDataService("limited")
	ep := service.NewEndpoint(svc, service.WithInterfaces(service.SQLRowsetAccess))
	for _, s := range ep.Operations() {
		if s.Class != "SQLRowsetAccess" {
			t.Errorf("restricted endpoint registered %s (class %s)", s.Op, s.Class)
		}
	}
	if len(ep.Operations()) == 0 {
		t.Fatal("restricted endpoint registered nothing")
	}
}

// TestWSDLGeneratedFromRegistry checks the served WSDL is derived from
// the registry: every registered operation appears as a portType
// operation annotated with its wsa:Action, its messages, its binding
// operation with the matching soapAction, and its interface class.
func TestWSDLGeneratedFromRegistry(t *testing.T) {
	svc := core.NewDataService("full")
	ep := service.NewEndpoint(svc, service.WithWSRF())
	doc := ep.DescriptionDocument()

	const nsWSDL = "http://schemas.xmlsoap.org/wsdl/"
	wsdl := string(xmlutil.MarshalIndent(doc))

	var pt *xmlutil.Element
	for _, el := range doc.FindAll(nsWSDL, "portType") {
		pt = el
	}
	if pt == nil {
		t.Fatal("WSDL has no portType")
	}
	opsByName := map[string]*xmlutil.Element{}
	for _, op := range pt.FindAll(nsWSDL, "operation") {
		opsByName[op.AttrValue("", "name")] = op
	}
	for _, s := range ep.Operations() {
		op := opsByName[s.Op]
		if op == nil {
			t.Errorf("WSDL portType is missing operation %s", s.Op)
			continue
		}
		in := op.Find(nsWSDL, "input")
		if in == nil || in.AttrValue("http://www.w3.org/2006/05/addressing/wsdl", "Action") != s.Action {
			t.Errorf("%s: input wsaw:Action does not match spec %q", s.Op, s.Action)
		}
		if doc := op.FindText(nsWSDL, "documentation"); !strings.Contains(doc, s.Class) {
			t.Errorf("%s: documentation %q does not name interface class %s", s.Op, doc, s.Class)
		}
		if !strings.Contains(wsdl, `soapAction="`+s.Action+`"`) {
			t.Errorf("%s: binding is missing soapAction %q", s.Op, s.Action)
		}
		if !strings.Contains(wsdl, `name="`+s.Op+`Request"`) {
			t.Errorf("%s: WSDL is missing the request message", s.Op)
		}
	}
	if got, want := len(opsByName), len(ep.Operations()); got != want {
		t.Errorf("WSDL lists %d operations, registry has %d", got, want)
	}
}

// TestCanonicalTypeFault checks a live dispatch path reports a
// wrong-realisation resource with the registry's one canonical fault
// detail.
func TestCanonicalTypeFault(t *testing.T) {
	// The relational service hosts an SQL resource; addressing it with a
	// rowset-only operation must raise the canonical type fault.
	_, _, ref, c := relationalFixture(t)
	_, _, err := c.GetTuples(context.Background(), ref, 1, 1)
	if err == nil {
		t.Fatal("GetTuples on an SQL resource succeeded")
	}
	fault, ok := err.(*core.InvalidResourceNameFault)
	if !ok {
		t.Fatalf("got %T (%v), want InvalidResourceNameFault", err, err)
	}
	if want := "(not a SQLRowset resource)"; !strings.Contains(fault.Name, want) {
		t.Errorf("fault detail %q does not contain %q", fault.Name, want)
	}
}
